package benchmarks

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/coax-index/coax/internal/colfiles"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/theory"
	"github.com/coax-index/coax/internal/unigrid"
	"github.com/coax-index/coax/internal/workload"
)

// TestAllIndexesAgreeOnAirline is the cross-system integration test: every
// index in the repository answers the same workloads over the same data
// and must produce identical counts.
func TestAllIndexesAgreeOnAirline(t *testing.T) {
	tab := dataset.GenerateAirline(dataset.DefaultAirlineConfig(30000))
	oracle := scan.New(tab)

	opt := core.DefaultOptions()
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	cx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rtree.Bulk(tab, rtree.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fg, err := unigrid.Build(tab, 4)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := colfiles.Build(tab, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	indexes := []index.Interface{cx, rt, fg, cf}

	gen := workload.NewGenerator(tab, 99)
	var queries []index.Rect
	queries = append(queries, gen.KNNRects(20, 500)...)
	queries = append(queries, gen.PointQueries(20)...)
	sel, err := gen.SelectivityRects(10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	queries = append(queries, sel...)
	queries = append(queries, gen.PartialRects(10, []int{dataset.AirAirTime}, 0.1)...)

	for qi, q := range queries {
		want := index.Count(oracle, q)
		for _, idx := range indexes {
			if got := index.Count(idx, q); got != want {
				t.Errorf("query %d: %s returned %d, oracle %d", qi, idx.Name(), got, want)
			}
		}
	}
}

func TestAllIndexesAgreeOnOSM(t *testing.T) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(30000))
	oracle := scan.New(tab)

	cx, err := core.Build(tab, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := rtree.Bulk(tab, rtree.Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	fg, err := unigrid.Build(tab, 12)
	if err != nil {
		t.Fatal(err)
	}
	indexes := []index.Interface{cx, rt, fg}

	gen := workload.NewGenerator(tab, 101)
	var queries []index.Rect
	queries = append(queries, gen.KNNRects(20, 500)...)
	queries = append(queries, gen.PointQueries(20)...)
	// Timestamp-only queries force translation.
	queries = append(queries, gen.PartialRects(10, []int{1}, 0.05)...)

	for qi, q := range queries {
		want := index.Count(oracle, q)
		for _, idx := range indexes {
			if got := index.Count(idx, q); got != want {
				t.Errorf("query %d: %s returned %d, oracle %d", qi, idx.Name(), got, want)
			}
		}
	}
}

// TestConcurrentReaders verifies the documented guarantee that a built
// COAX index is safe for concurrent readers. Run with -race to make this
// meaningful.
func TestConcurrentReaders(t *testing.T) {
	tab := dataset.GenerateAirline(dataset.DefaultAirlineConfig(20000))
	opt := core.DefaultOptions()
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	cx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(tab, 5)
	queries := gen.KNNRects(16, 200)
	oracle := scan.New(tab)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = index.Count(oracle, q)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for iter := 0; iter < 50; iter++ {
				qi := rng.Intn(len(queries))
				if got := index.Count(cx, queries[qi]); got != want[qi] {
					t.Errorf("worker %d query %d: %d, want %d", worker, qi, got, want[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestExperimentPipelinesSmoke exercises each experiment's computational
// path at tiny scale so a broken experiment fails in `go test`, not only
// when someone runs coaxbench.
func TestExperimentPipelinesSmoke(t *testing.T) {
	air := dataset.GenerateAirline(dataset.DefaultAirlineConfig(5000))
	osm := dataset.GenerateOSM(dataset.DefaultOSMConfig(5000))

	// Table 1 path: detection + stats on both datasets.
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 3000
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	cx, err := core.Build(air, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := cx.BuildStats()
	if st.Rows != 5000 || st.PrimaryRatio <= 0 || st.PrimaryRatio > 1 {
		t.Errorf("airline stats implausible: %+v", st)
	}

	// Fig 4a path: cell-size distribution of a 2-D OSM grid.
	g, err := gridfile.Build(osm, gridfile.Config{
		GridDims: []int{2, 3}, SortDim: -1, CellsPerDim: 8, Mode: gridfile.Quantile,
	})
	if err != nil {
		t.Fatal(err)
	}
	sizes := g.CellSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != osm.Len() {
		t.Errorf("fig4a cell sizes sum to %d, want %d", total, osm.Len())
	}

	// Fig 6/7 paths: every workload generator output runs against COAX.
	gen := workload.NewGenerator(air, 1)
	for _, q := range gen.KNNRects(5, 100) {
		index.Count(cx, q)
	}
	for _, q := range gen.PointQueries(5) {
		index.Count(cx, q)
	}
	if sel, err := gen.SelectivityRects(5, 200); err != nil {
		t.Errorf("selectivity workload: %v", err)
	} else {
		for _, q := range sel {
			index.Count(cx, q)
		}
	}

	// Theory paths.
	rng := rand.New(rand.NewSource(3))
	dist := theory.GapDist{Kind: theory.GapNormal, Mu: 1, Sigma: 0.5}
	if m := theory.MeasureMFET(dist, 1, 5, 50, rng); m.Mean <= 0 {
		t.Error("MFET measurement returned nothing")
	}
	if s := theory.CountSegments(dist, 1, 5, 10000, rng); s < 1 {
		t.Error("segment count must be ≥ 1")
	}
	if eff, err := theory.EmpiricalEffectiveness(2, 10, 50, 1000, 20000, rng); err != nil || eff <= 0 || eff > 1 {
		t.Errorf("effectiveness simulation: %g, %v", eff, err)
	}
}

// TestSplineEndToEndOnAirline checks the spline model kind against the
// real airline generator (whose dependencies are close to linear — the
// spline should degrade gracefully to few segments, not reject).
func TestSplineEndToEndOnAirline(t *testing.T) {
	tab := dataset.GenerateAirline(dataset.DefaultAirlineConfig(20000))
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 8000
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	opt.SoftFD.Kind = softfd.ModelSpline
	cx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(cx.BuildStats().Groups) == 0 {
		t.Fatal("spline detector found nothing on airline data")
	}
	oracle := scan.New(tab)
	gen := workload.NewGenerator(tab, 11)
	for qi, q := range gen.KNNRects(20, 300) {
		if got, want := index.Count(cx, q), index.Count(oracle, q); got != want {
			t.Errorf("query %d: %d, want %d", qi, got, want)
		}
	}
}
