package main

// Tests for the /query aggregation surface: pushdown answers match a
// rows-collected fold, grouped results come back sorted, cache keys keep
// agg and row answers apart, invalid shapes are 400s, and /batch rejects
// aggregates outright.

import (
	"math"
	"net/http"
	"testing"

	"github.com/coax-index/coax/coax"
)

func postAgg(t *testing.T, url string, q rectRequest) (queryResponse, *http.Response) {
	t.Helper()
	var out queryResponse
	resp := postJSON(t, url+"/query", q, &out)
	return out, resp
}

func TestQueryAggEndToEnd(t *testing.T) {
	idx, _, srv := testServerHardened(t, 256, nil)

	// Baseline: collect every row, fold in the test.
	var all queryResponse
	neg := -1
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &neg}, &all)
	var sum float64
	for _, row := range all.Rows {
		sum += row[3] // lon
	}

	count, resp := postAgg(t, srv.URL, rectRequest{Agg: &aggRequest{Op: "count"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d", resp.StatusCode)
	}
	if count.Agg == nil || count.Agg.Count != int64(idx.Len()) || count.Count != idx.Len() {
		t.Fatalf("count response %+v, want %d rows", count.Agg, idx.Len())
	}
	if len(count.Rows) != 0 {
		t.Fatal("aggregate response carried rows")
	}
	if !count.Agg.Complete || count.Agg.Value == nil || *count.Agg.Value != float64(idx.Len()) {
		t.Fatalf("count agg %+v", count.Agg)
	}

	col := "lon"
	sumResp, _ := postAgg(t, srv.URL, rectRequest{Agg: &aggRequest{Op: "sum", Col: &col}})
	if sumResp.Agg == nil || sumResp.Agg.Value == nil {
		t.Fatalf("sum response %+v", sumResp.Agg)
	}
	if rel := math.Abs(*sumResp.Agg.Value-sum) / math.Max(math.Abs(sum), 1); rel > 1e-9 {
		t.Fatalf("sum %v vs folded %v", *sumResp.Agg.Value, sum)
	}

	// The agg answer must be cached under a key distinct from the row
	// query's: re-ask both and check neither shape bleeds into the other.
	again, _ := postAgg(t, srv.URL, rectRequest{Agg: &aggRequest{Op: "count"}})
	if again.Agg == nil || again.Agg.Count != count.Agg.Count {
		t.Fatalf("cached agg replay %+v, want %+v", again.Agg, count.Agg)
	}
	var rowsAgain queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &neg}, &rowsAgain)
	if rowsAgain.Agg != nil || rowsAgain.Count != all.Count {
		t.Fatal("row query answered from an agg cache line")
	}
}

func TestQueryAggGroupBy(t *testing.T) {
	_, _, srv := testServerHardened(t, 0, nil)

	dim, group := 3, 2 // avg(lon) grouped by lat: not meaningful, but exercises dims
	res, resp := postAgg(t, srv.URL, rectRequest{
		Agg: &aggRequest{Op: "avg", Dim: &dim, GroupByDim: &group},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("group-by status %d", resp.StatusCode)
	}
	if res.Agg == nil || len(res.Agg.Groups) == 0 {
		t.Fatalf("grouped response %+v", res.Agg)
	}
	if res.Agg.Value != nil {
		t.Fatal("grouped response carried an ungrouped value")
	}
	prev := math.Inf(-1)
	var n int64
	for _, g := range res.Agg.Groups {
		if g.Key <= prev {
			t.Fatalf("group keys not ascending: %g after %g", g.Key, prev)
		}
		prev = g.Key
		n += g.Count
	}
	if n != res.Agg.Count {
		t.Fatalf("group counts sum to %d, total says %d", n, res.Agg.Count)
	}
}

func TestQueryAggExplain(t *testing.T) {
	_, _, srv := testServerHardened(t, 0, nil)
	var out queryResponse
	col := "lon"
	postJSON(t, srv.URL+"/query?explain=true", rectRequest{Agg: &aggRequest{Op: "sum", Col: &col}}, &out)
	if out.Explain == nil || out.Explain.Agg == nil {
		t.Fatalf("explain missing agg section: %+v", out.Explain)
	}
	a := out.Explain.Agg
	if a.Op != "sum" || a.Column != "lon" || a.PrimaryKernel == "" || a.Batches == 0 {
		t.Fatalf("agg explain %+v", a)
	}
}

func TestQueryAggBadRequests(t *testing.T) {
	_, _, srv := testServerHardened(t, 0, nil)
	col, bad := "lon", "nope"
	one := 1
	cases := []rectRequest{
		{Agg: &aggRequest{Op: "sum"}},                             // sum needs a column
		{Agg: &aggRequest{Op: "frobnicate"}},                      // unknown op
		{Agg: &aggRequest{Op: "count", Col: &col}},                // count takes none
		{Agg: &aggRequest{Op: "sum", Col: &bad}},                  // unknown column
		{Agg: &aggRequest{Op: "count"}, Early: true, Limit: &one}, // early ∧ agg
	}
	for i, q := range cases {
		if resp := postJSON(t, srv.URL+"/query", q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}

	// /batch rejects aggregates.
	b := batchRequest{Queries: []rectRequest{{Agg: &aggRequest{Op: "count"}}}}
	if resp := postJSON(t, srv.URL+"/batch", b, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("/batch with agg: status %d, want 400", resp.StatusCode)
	}
}

// TestQueryAggMatchesLibrary pins the HTTP path to the library path.
func TestQueryAggMatchesLibrary(t *testing.T) {
	idx, _, srv := testServerHardened(t, 0, nil)
	col := "lat"
	lo, hi := 46.0, 49.0
	q := rectRequest{
		Min: []*float64{nil, nil, f(lo), nil},
		Max: []*float64{nil, nil, f(hi), nil},
		Agg: &aggRequest{Op: "min", Col: &col},
	}
	got, _ := postAgg(t, srv.URL, q)
	r := coax.FullRect(4)
	r.Min[2], r.Max[2] = lo, hi
	want, err := coax.FromRect(r).Aggregate(idx, coax.Min("lat"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Agg == nil || got.Agg.Count != want.Count {
		t.Fatalf("HTTP %+v vs library %+v", got.Agg, want)
	}
	if want.Valid != (got.Agg.Value != nil) ||
		(want.Valid && math.Float64bits(*got.Agg.Value) != math.Float64bits(want.Value)) {
		t.Fatalf("HTTP min %v vs library %v", got.Agg.Value, want.Value)
	}
}
