package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/snapshot"
)

// defaultRowLimit bounds how many rows a query returns when the request
// does not say; counts are always exact regardless of the limit.
const defaultRowLimit = 1000

// Abuse bounds: a request body larger than maxRequestBytes or a batch
// wider than maxBatchQueries is rejected before it can drive the engine
// into buffering an unbounded result set.
const (
	maxRequestBytes = 8 << 20
	maxBatchQueries = 1024
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	th := lifecycle.DefaultThresholds()
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		in      = fs.String("in", "", "serve from this snapshot (sharded or single-index)")
		ds      = fs.String("dataset", "osm", "synthetic dataset when -in is empty: osm|airline")
		rows    = fs.Int("rows", 500000, "synthetic dataset size")
		csvPath = fs.String("csv", "", "build the startup index from a CSV file ('-': stdin) instead of a synthetic dataset")
		sample  = fs.Int("sample", 0, "streaming startup build: detect soft FDs on this many sampled rows and stream chunks straight to the shard builders (0: materialize first)")
		shards  = fs.Int("shards", 0, "shard count (0: one per CPU)")
		workers = fs.Int("workers", 0, "query fan-out workers (0: one per CPU)")
		save    = fs.String("save", "", "persist the index as a sharded snapshot before serving")
		sweep   = fs.Duration("compact-interval", 30*time.Second, "background compactor poll interval (0 disables self-healing; /compact still works)")

		debugAddr = fs.String("debug-addr", "", "serve pprof/expvar/metrics on this extra address (empty: disabled)")
		slowThr   = fs.Duration("slowlog-threshold", 0, "log queries slower than this to /debug/slowlog with their EXPLAIN (0 disables)")
		slowSize  = fs.Int("slowlog-size", 128, "slow-query ring-buffer capacity")
		accessLog = fs.Bool("access-log", false, "log every request to stderr with status and latency")
		drain     = fs.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")

		cacheSize    = fs.Int("cache-size", 4096, "result-cache capacity in entries; hot repeated queries are answered from cache until a mutation invalidates them (0 disables caching and coalescing)")
		maxInflight  = fs.Int("max-inflight", 0, "admission control: queries executing concurrently before new ones queue (0 disables)")
		maxQueue     = fs.Int("max-queue", -1, "admission control: requests allowed to wait for a slot before shedding with 429 (-1: twice -max-inflight)")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission control: longest a queued request waits for a slot before shedding with 429")
	)
	fs.Float64Var(&th.MaxOutlierRatio, "max-outlier-ratio", th.MaxOutlierRatio, "outlier fraction marking a shard stale")
	fs.Float64Var(&th.MinOutlierGain, "min-outlier-gain", th.MinOutlierGain, "required outlier-ratio growth over the build-time baseline (guards against rebuild loops; 0 disables)")
	fs.Float64Var(&th.MaxTombstoneRatio, "max-tombstone-ratio", th.MaxTombstoneRatio, "tombstone fraction marking a shard stale")
	fs.Float64Var(&th.MaxResidualDrift, "max-residual-drift", th.MaxResidualDrift, "normalised model-residual drift marking a shard stale")
	fs.Int64Var(&th.MinMutations, "min-mutations", th.MinMutations, "mutations required before staleness is evaluated")
	fs.Parse(args)

	idx, err := openIndex(*in, *ds, *csvPath, *rows, *shards, *workers, *sample)
	if err != nil {
		return err
	}
	if *save != "" {
		if err := coax.SaveShardedFile(*save, idx); err != nil {
			return fmt.Errorf("saving %s: %w", *save, err)
		}
		fmt.Printf("saved sharded snapshot to %s\n", *save)
	}

	compactor := lifecycle.NewCompactor(idx, th, *sweep)
	if *sweep > 0 {
		if err := compactor.Start(); err != nil {
			return err
		}
		defer compactor.Stop()
	}

	bst := idx.BuildStats()
	fmt.Printf("serving %d rows × %d dims on %d %s shard(s) at %s (compactor: %v)\n",
		bst.Rows, bst.Dims, bst.Shards, bst.Partition, *addr, *sweep)

	st := newServerState(idx, compactor, th)
	st.accessLog = *accessLog
	if *slowThr > 0 {
		st.slowlog = newSlowLog(*slowThr, *slowSize)
	}
	if *in != "" {
		st.snapVersion = snapshotVersionOf(*in)
	}
	if *cacheSize > 0 {
		st.qcache = serve.NewQueryCache(idx, *cacheSize)
	}
	if *maxInflight > 0 {
		q := *maxQueue
		if q < 0 {
			q = 2 * *maxInflight
		}
		st.adm = serve.NewAdmission(*maxInflight, q, *queueTimeout)
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           newDebugMux(st),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "debug endpoints (pprof, expvar, metrics) at %s\n", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "debug server: %v\n", err)
			}
		}()
		defer dbg.Close()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServerMux(st),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveUntilShutdown(srv, nil, ctx, *drain)
}

// snapshotVersionOf reads the format version of the snapshot at path, or 0
// ("unknown") when the header cannot be read. Reporting the current format
// version here would claim knowledge the server does not have — an operator
// checking /healthz after a format migration would see the new version even
// for a file whose header never parsed. The index was still loaded, so
// serving proceeds; only the reported version degrades to unknown.
func snapshotVersionOf(path string) uint32 {
	v, err := coax.PeekSnapshotVersion(path)
	if err != nil {
		return 0
	}
	if v == coax.SnapshotVersionV3 {
		return v
	}
	// v1/v2: run the streaming frame walk so a torn file still degrades to
	// unknown rather than echoing a header the body contradicts.
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	info, err := snapshot.Inspect(f)
	if err != nil {
		return 0
	}
	return info.Version
}

// openSnapshot opens the snapshot at path for serving, whatever its format
// version: v3 files are memory-mapped (heap fallback where mmap is
// unavailable), v1/v2 files decode onto the heap. Either layout comes back
// as a sharded serving layer; the returned Snapshot owns a v3 file's
// mapping and must stay referenced for the life of the server.
func openSnapshot(in string, workers int) (*coax.ShardedIndex, *coax.Snapshot, error) {
	sn, err := coax.OpenFile(in)
	if err != nil {
		return nil, nil, fmt.Errorf("loading %s: %w", in, err)
	}
	idx, err := sn.Serving(workers)
	if err != nil {
		return nil, nil, err
	}
	if sn.Version() == coax.SnapshotVersionV3 {
		how := "memory-mapped"
		if !sn.Mapped() {
			how = "aligned heap read (mmap unavailable)"
		}
		fmt.Fprintf(os.Stderr, "opened %s as format v3: %s\n", in, how)
	}
	return idx, sn, nil
}

// openIndex loads a sharded snapshot, wraps a single-index snapshot into a
// one-shard serving layer, or builds a sharded index at startup — from a
// CSV file/stdin or a synthetic generator, streamed straight into the
// per-shard builders when -sample is set.
func openIndex(in, ds, csvPath string, rows, shards, workers, sample int) (*coax.ShardedIndex, error) {
	if in != "" {
		idx, _, err := openSnapshot(in, workers)
		return idx, err
	}

	var (
		src      coax.RowSource
		closeSrc = func() error { return nil }
	)
	switch {
	case csvPath == "-" && sample > 0:
		// A sampled build over raw stdin would train detection, grid
		// boundaries, AND the range-shard cut points on a stream prefix —
		// on ordered input (ids, timestamps) the cuts collapse and one
		// shard swallows the tail. Spill stdin to a temp file so the
		// two-pass reservoir samples uniformly, exactly as coaxstore does.
		fileSrc, n, err := coax.SpillCSV(bufio.NewReaderSize(os.Stdin, 1<<20), 0)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "spilled %.1f MiB of stdin to a temp file for two-pass sampling\n", float64(n)/(1<<20))
		src, closeSrc = fileSrc, fileSrc.Close
	case csvPath == "-":
		csvSrc, err := coax.NewCSVSource(bufio.NewReaderSize(os.Stdin, 1<<20), 0)
		if err != nil {
			return nil, err
		}
		src = csvSrc
	case csvPath != "":
		fileSrc, err := coax.OpenCSVFile(csvPath, 0)
		if err != nil {
			return nil, err
		}
		src, closeSrc = fileSrc, fileSrc.Close
	case ds == "osm":
		src = coax.NewOSMSource(coax.DefaultOSMConfig(rows), 0)
	case ds == "airline":
		src = coax.NewAirlineSource(coax.DefaultAirlineConfig(rows), 0)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want osm or airline)", ds)
	}
	defer closeSrc()

	so := coax.DefaultShardOptions()
	so.NumShards = shards
	so.Workers = workers
	b := coax.NewBuilder(coax.ColumnsSchema(src.Columns()), coax.DefaultOptions())
	if sample > 0 {
		b.SampleSize(sample)
	}
	t0 := time.Now()
	idx, err := b.BuildSharded(src, so)
	if err != nil {
		return nil, err
	}
	mode := "materialized"
	if sample > 0 {
		mode = fmt.Sprintf("streaming, sample %d", sample)
	}
	fmt.Fprintf(os.Stderr, "built %d rows on %d shards in %v (%s)\n",
		idx.Len(), idx.NumShards(), time.Since(t0).Round(time.Millisecond), mode)
	return idx, nil
}

func makeTable(ds string, rows int) (*coax.Table, error) {
	switch ds {
	case "osm":
		return coax.GenerateOSM(coax.DefaultOSMConfig(rows)), nil
	case "airline":
		return coax.GenerateAirline(coax.DefaultAirlineConfig(rows)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want osm or airline)", ds)
	}
}

// --- HTTP surface ---

// rectRequest is one rectangle in wire form: per-dimension bounds where
// null (or a missing array) leaves the side unconstrained, plus an
// optional row cap — limit 0 returns counts only, a negative limit streams
// every matching row, omitted defaults to defaultRowLimit. With
// "early": true the engine stops scanning once limit rows are found
// (count then equals the rows returned, not the total matches) — the
// Query-API-v2 early-termination path.
type rectRequest struct {
	Min   []*float64 `json:"min"`
	Max   []*float64 `json:"max"`
	Limit *int       `json:"limit"`
	Early bool       `json:"early"`
	// Agg turns the query into an aggregation pushdown: instead of rows the
	// response carries one aggregate (or one per group) folded inside the
	// engine's batch scan kernels. Limit is ignored (aggregates consume
	// every match) and "early" is rejected.
	Agg *aggRequest `json:"agg,omitempty"`
}

// aggRequest is the wire form of an aggregation: an op ("count", "sum",
// "min", "max", "avg"), the value column by name or position (except
// count), and an optional categorical group-by column.
type aggRequest struct {
	Op         string  `json:"op"`
	Col        *string `json:"col,omitempty"`
	Dim        *int    `json:"dim,omitempty"`
	GroupBy    *string `json:"group_by,omitempty"`
	GroupByDim *int    `json:"group_by_dim,omitempty"`
}

// aggregation translates the wire form into the coax builder pieces,
// rejecting shapes that cannot mean anything (unknown op, sum without a
// column, count of a column).
func (a *aggRequest) aggregation() (coax.Aggregation, error) {
	named, positional := a.Col != nil, a.Dim != nil
	if named && positional {
		return coax.Aggregation{}, fmt.Errorf(`"col" and "dim" are mutually exclusive`)
	}
	switch a.Op {
	case "count":
		if named || positional {
			return coax.Aggregation{}, fmt.Errorf(`"count" takes no column; drop "col"/"dim"`)
		}
		return coax.CountRows(), nil
	case "sum", "min", "max", "avg":
		byName := map[string]func(string) coax.Aggregation{
			"sum": coax.Sum, "min": coax.Min, "max": coax.Max, "avg": coax.Avg,
		}
		byDim := map[string]func(int) coax.Aggregation{
			"sum": coax.SumDim, "min": coax.MinDim, "max": coax.MaxDim, "avg": coax.AvgDim,
		}
		if named {
			return byName[a.Op](*a.Col), nil
		}
		if positional {
			return byDim[a.Op](*a.Dim), nil
		}
		return coax.Aggregation{}, fmt.Errorf("%q needs a value column: set \"col\" or \"dim\"", a.Op)
	default:
		return coax.Aggregation{}, fmt.Errorf("unknown aggregation op %q (want count, sum, min, max, or avg)", a.Op)
	}
}

// descriptor canonicalizes the aggregation for the result-cache key. Col
// and Dim deliberately stay distinct even when they name the same column —
// a spurious cache miss is harmless, a collision would not be.
func (a *aggRequest) descriptor() string {
	var sb strings.Builder
	sb.WriteString(a.Op)
	switch {
	case a.Col != nil:
		fmt.Fprintf(&sb, "(%s)", *a.Col)
	case a.Dim != nil:
		fmt.Fprintf(&sb, "(#%d)", *a.Dim)
	}
	switch {
	case a.GroupBy != nil:
		fmt.Fprintf(&sb, " by %s", *a.GroupBy)
	case a.GroupByDim != nil:
		fmt.Fprintf(&sb, " by #%d", *a.GroupByDim)
	}
	return sb.String()
}

type batchRequest struct {
	Queries []rectRequest `json:"queries"`
}

type queryResponse struct {
	Count   int           `json:"count"`
	Rows    [][]float64   `json:"rows,omitempty"`
	Agg     *aggResponse  `json:"agg,omitempty"`
	Explain *coax.Explain `json:"explain,omitempty"`
}

// aggResponse carries an aggregate answer: "value" is omitted when the
// aggregate is undefined (min/max/avg over zero rows) or when the result
// is grouped — grouped answers live in "groups", sorted by ascending key.
type aggResponse struct {
	Op       string     `json:"op"`
	Count    int64      `json:"count"`
	Value    *float64   `json:"value,omitempty"`
	Groups   []aggGroup `json:"groups,omitempty"`
	Complete bool       `json:"complete"`
}

type aggGroup struct {
	Key   float64 `json:"key"`
	Count int64   `json:"count"`
	Value float64 `json:"value"`
}

type batchResponse struct {
	Results []queryResponse `json:"results"`
}

type insertRequest struct {
	Row []float64 `json:"row"`
}

type updateRequest struct {
	Old []float64 `json:"old"`
	New []float64 `json:"new"`
}

type statsResponse struct {
	Rows            int    `json:"rows"`
	Dims            int    `json:"dims"`
	Shards          int    `json:"shards"`
	Partition       string `json:"partition"`
	RangeColumn     int    `json:"range_column"`
	RowsPerShard    []int  `json:"rows_per_shard"`
	MemoryOverheadB int64  `json:"memory_overhead_bytes"`

	// Index-health signals: aggregated lifecycle counters (outlier ratio,
	// tombstone ratio, drift, mutation counts), the per-shard rebuild
	// epochs, and whether the engine is stale under the serving thresholds
	// — what an operator watches to see drift and self-healing happen.
	Lifecycle    lifecycle.Stats        `json:"lifecycle"`
	ShardEpochs  []uint64               `json:"shard_epochs"`
	Stale        bool                   `json:"stale"`
	StaleReasons []string               `json:"stale_reasons,omitempty"`
	LastSweep    *lifecycle.SweepResult `json:"last_sweep,omitempty"`

	// Serving-tier hardening state: result-cache occupancy and hit/eviction
	// counters, and the admission controller's inflight/queued/shed numbers.
	// Absent when the corresponding layer is disabled.
	Cache     *serve.CacheStats     `json:"cache,omitempty"`
	Admission *serve.AdmissionStats `json:"admission,omitempty"`
}

type compactResponse struct {
	Forced  bool     `json:"forced"`
	Stale   []int    `json:"stale,omitempty"`
	Rebuilt []int    `json:"rebuilt,omitempty"`
	Errors  []string `json:"errors,omitempty"`
	Epochs  []uint64 `json:"epochs"`
}

func (q *rectRequest) rect(dims int) (coax.Rect, error) {
	r := coax.FullRect(dims)
	fill := func(dst []float64, src []*float64, side string) error {
		if src == nil {
			return nil
		}
		if len(src) != dims {
			return fmt.Errorf("%s has %d bounds, index has %d dims", side, len(src), dims)
		}
		for i, v := range src {
			if v == nil {
				continue
			}
			if math.IsNaN(*v) {
				return fmt.Errorf("%s[%d] is NaN", side, i)
			}
			dst[i] = *v
		}
		return nil
	}
	if err := fill(r.Min, q.Min, "min"); err != nil {
		return r, err
	}
	if err := fill(r.Max, q.Max, "max"); err != nil {
		return r, err
	}
	// Inverted bounds would silently match nothing; that is never what a
	// client meant, so reject them up front.
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return r, fmt.Errorf("dimension %d has inverted bounds: min %g > max %g", i, r.Min[i], r.Max[i])
		}
	}
	return r, nil
}

func (q *rectRequest) limit() int {
	if q.Limit == nil {
		return defaultRowLimit
	}
	return *q.Limit
}

// validate rejects request shapes that cannot mean what the client asked
// for. "early": true promises to stop after limit rows, which needs a
// positive limit — with limit 0 (count only) or negative (stream all) the
// engine would have to silently ignore the flag and run a full scan, so the
// combination is an error rather than a surprise.
func (q *rectRequest) validate() error {
	if q.Early && q.limit() <= 0 {
		return fmt.Errorf(`"early" requires a positive limit, got %d`, q.limit())
	}
	if q.Agg != nil {
		if q.Early {
			return fmt.Errorf(`"early" cannot combine with "agg": an aggregate consumes every matching row`)
		}
		if _, err := q.Agg.aggregation(); err != nil {
			return err
		}
	}
	return nil
}

// healthzResponse is the verbose /healthz body.
type healthzResponse struct {
	Status          string  `json:"status"`
	Epoch           uint64  `json:"epoch"`
	StaleShards     int     `json:"stale_shards"`
	SnapshotVersion uint32  `json:"snapshot_version"`
	Rows            int     `json:"rows"`
	Shards          int     `json:"shards"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
}

// newServerMux wires the HTTP surface over the server state. ShardedIndex
// is safe for fully concurrent use, so handlers need no extra locking. The
// returned handler carries the request-metrics middleware, so everything a
// test or the bench drives through it lands in the HTTP metric families.
func newServerMux(st *serverState) http.Handler {
	idx, compactor, th := st.idx, st.compactor, st.th
	registerIndexGauges(st)
	mux := http.NewServeMux()
	addObsEndpoints(mux, st)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("verbose") != "1" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		life := idx.LifecycleStats()
		writeJSON(w, http.StatusOK, healthzResponse{
			Status:          "ok",
			Epoch:           life.Epoch,
			StaleShards:     len(idx.StaleShards(th)),
			SnapshotVersion: st.snapVersion,
			Rows:            idx.Len(),
			Shards:          idx.NumShards(),
			UptimeSeconds:   time.Since(st.start).Seconds(),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		bst := idx.BuildStats()
		// One per-shard stats pass serves both views: the aggregate is
		// merged from it rather than recomputed by LifecycleStats (which
		// would take every shard lock a second time).
		per := idx.ShardLifecycleStats()
		life := lifecycle.Merge(per)
		epochs := make([]uint64, len(per))
		// Staleness is a per-shard property (that is what the compactor
		// rebuilds); aggregating first would let one badly drifted shard
		// hide behind healthy neighbours and report stale=false while
		// epochs visibly advance.
		var (
			stale   bool
			reasons []string
		)
		for i, p := range per {
			epochs[i] = p.Epoch
			if s, rs := p.Stale(th); s {
				stale = true
				for _, r := range rs {
					reasons = append(reasons, fmt.Sprintf("shard %d: %s", i, r))
				}
			}
		}
		resp := statsResponse{
			Rows:            bst.Rows,
			Dims:            bst.Dims,
			Shards:          bst.Shards,
			Partition:       bst.Partition,
			RangeColumn:     bst.RangeColumn,
			RowsPerShard:    bst.RowsPerShard,
			MemoryOverheadB: bst.MemoryOverheadB,
			Lifecycle:       life,
			ShardEpochs:     epochs,
			Stale:           stale,
			StaleReasons:    reasons,
		}
		if last := compactor.Last(); !last.At.IsZero() {
			resp.LastSweep = &last
		}
		if st.qcache != nil {
			cs := st.qcache.Stats()
			resp.Cache = &cs
		}
		if st.adm != nil {
			as := st.adm.Stats()
			resp.Admission = &as
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, req *http.Request) {
		var q rectRequest
		if !readJSON(w, req, &q) {
			return
		}
		if err := q.validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		r, err := q.rect(idx.Dims())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := st.adm.Acquire(req.Context()); err != nil {
			writeOverloaded(w, st.adm, err)
			return
		}
		defer st.adm.Release()
		if q.Agg != nil {
			resp, status, err := answerAgg(st, req, r, q.Agg)
			if err != nil {
				if status != 0 {
					writeError(w, status, err)
				}
				// status 0: the client is gone, nobody to answer.
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp, err := answerQuery(st, req, r, q.limit(), q.Early)
		if err != nil {
			// The request context is the only error source here: the
			// client is gone, so there is nobody to answer.
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, req *http.Request) {
		var b batchRequest
		if !readJSON(w, req, &b) {
			return
		}
		if len(b.Queries) > maxBatchQueries {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch has %d queries, limit is %d", len(b.Queries), maxBatchQueries))
			return
		}
		rects := make([]coax.Rect, len(b.Queries))
		limits := make([]int, len(b.Queries))
		early := false
		for i := range b.Queries {
			if b.Queries[i].Agg != nil {
				// The batch fan-out shares one row visitor across queries;
				// aggregates belong on /query, one at a time.
				writeError(w, http.StatusBadRequest,
					fmt.Errorf(`query %d: "agg" is not supported in /batch; use /query`, i))
				return
			}
			if err := b.Queries[i].validate(); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			r, err := b.Queries[i].rect(idx.Dims())
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			rects[i] = r
			limits[i] = b.Queries[i].limit()
			early = early || b.Queries[i].Early
		}
		if err := st.adm.Acquire(req.Context()); err != nil {
			writeOverloaded(w, st.adm, err)
			return
		}
		defer st.adm.Release()
		// Per-query explain reports (or any early-termination request)
		// need per-query executions; a plain batch keeps the amortised
		// single fan-out.
		if explainRequested(req) || early {
			resp := batchResponse{Results: make([]queryResponse, len(rects))}
			for i := range rects {
				res, err := runQuery(st, req, rects[i], limits[i], b.Queries[i].Early)
				if err != nil {
					return // client gone
				}
				resp.Results[i] = res
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		resp := batchResponse{Results: make([]queryResponse, len(rects))}
		idx.BatchQuery(rects, func(qi int, row []float64) {
			res := &resp.Results[qi]
			res.Count++
			if limits[qi] < 0 || len(res.Rows) < limits[qi] {
				res.Rows = append(res.Rows, row) // rows are stable copies
			}
		})
		writeJSON(w, http.StatusOK, resp)
	})

	// Mutations validate inside the engine (the shared
	// lifecycle.ValidateRow path), so the handlers just map error kinds to
	// status codes.
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, req *http.Request) {
		var ins insertRequest
		if !readJSON(w, req, &ins) {
			return
		}
		if err := idx.Insert(ins.Row); err != nil {
			writeMutationError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": idx.Len()})
	})

	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, req *http.Request) {
		var del insertRequest
		if !readJSON(w, req, &del) {
			return
		}
		if err := idx.Delete(del.Row); err != nil {
			writeMutationError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": idx.Len()})
	})

	mux.HandleFunc("POST /update", func(w http.ResponseWriter, req *http.Request) {
		var up updateRequest
		if !readJSON(w, req, &up) {
			return
		}
		if err := idx.Update(up.Old, up.New); err != nil {
			writeMutationError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": idx.Len()})
	})

	// /compact rebuilds stale shards now (?force=true rebuilds all). The
	// rebuilds run online — queries keep being served from the old epochs
	// while replacements are built.
	mux.HandleFunc("POST /compact", func(w http.ResponseWriter, req *http.Request) {
		resp := compactResponse{Forced: req.URL.Query().Get("force") == "true"}
		if resp.Forced {
			// Route through the compactor so a forced rebuild serialises
			// with any in-flight periodic sweep instead of colliding with
			// it shard by shard.
			sweep, _ := compactor.ForceSweep()
			resp.Rebuilt, resp.Errors = sweep.Rebuilt, sweep.Errs
		} else {
			sweep := compactor.Kick()
			resp.Stale, resp.Rebuilt, resp.Errors = sweep.Stale, sweep.Rebuilt, sweep.Errs
		}
		resp.Epochs = idx.Epochs()
		writeJSON(w, http.StatusOK, resp)
	})

	return st.instrument(mux)
}

// writeMutationError maps engine errors to HTTP statuses: invalid rows are
// the client's fault, a missing row is 404, anything else is internal.
func writeMutationError(w http.ResponseWriter, err error) {
	var rowErr *lifecycle.RowError
	switch {
	case errors.As(err, &rowErr):
		writeError(w, http.StatusBadRequest, err)
	case errors.Is(err, core.ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// explainRequested reports whether the request asked for an execution
// report via the explain=true query parameter.
func explainRequested(req *http.Request) bool {
	return req.URL.Query().Get("explain") == "true"
}

// answerQuery serves one /query rectangle through the hardening layer:
// cache hit, or single-flight coalesced execution whose result the cache
// retains. Explain requests bypass the cache — an execution report describes
// one particular run, and attaching a cached one would be a lie. A coalesced
// error usually means the leader's client disconnected and cancelled the
// shared scan; a caller whose own request is still live retries directly
// instead of inheriting that cancellation.
func answerQuery(st *serverState, req *http.Request, r coax.Rect, limit int, early bool) (queryResponse, error) {
	if st.qcache == nil || explainRequested(req) {
		return runQuery(st, req, r, limit, early)
	}
	v, _, err := st.qcache.Do(serve.Key(r, limit, early, ""), r, func() (any, error) {
		resp, rerr := runQuery(st, req, r, limit, early)
		if rerr != nil {
			return nil, rerr
		}
		return &resp, nil
	})
	if err != nil {
		if req.Context().Err() != nil {
			return queryResponse{}, err
		}
		return runQuery(st, req, r, limit, early)
	}
	// The cached response is shared by every coalesced caller and future
	// hits; it is only ever serialized, never mutated.
	return *v.(*queryResponse), nil
}

// answerAgg serves one /query aggregation through the same hardening layer
// as answerQuery: cache hit or coalesced execution, with explain requests
// bypassing the cache. The status is the HTTP error code to write when err
// is non-nil; status 0 means the client disconnected and there is nobody
// to answer.
func answerAgg(st *serverState, req *http.Request, r coax.Rect, a *aggRequest) (queryResponse, int, error) {
	if st.qcache == nil || explainRequested(req) {
		return runAgg(st, req, r, a)
	}
	var status int
	v, _, err := st.qcache.Do(serve.Key(r, 0, false, a.descriptor()), r, func() (any, error) {
		resp, rstatus, rerr := runAgg(st, req, r, a)
		if rerr != nil {
			status = rstatus
			return nil, rerr
		}
		return &resp, nil
	})
	if err != nil {
		if status != 0 {
			return queryResponse{}, status, err
		}
		if req.Context().Err() != nil {
			return queryResponse{}, 0, err
		}
		// Coalesced cancellation from another caller's context; our own
		// request is still live, so retry directly.
		return runAgg(st, req, r, a)
	}
	return *v.(*queryResponse), 0, nil
}

// runAgg answers one aggregation through the pushdown engine. A column
// that fails to resolve is the client's fault (400); a cancelled request
// context surfaces as err with status 0, like runQuery.
func runAgg(st *serverState, req *http.Request, r coax.Rect, a *aggRequest) (queryResponse, int, error) {
	agg, err := a.aggregation()
	if err != nil {
		// validate() already vetted the shape; this is unreachable.
		return queryResponse{}, http.StatusBadRequest, err
	}
	q := coax.FromRect(r).WithContext(req.Context())
	switch {
	case a.GroupBy != nil:
		q.GroupBy(*a.GroupBy)
	case a.GroupByDim != nil:
		q.GroupByDim(*a.GroupByDim)
	}
	wantExplain := explainRequested(req)
	if wantExplain || st.slowlog != nil {
		q.WithExplain()
	}
	res, err := q.Aggregate(st.idx, agg)
	if err != nil {
		if res == nil {
			// Compile/resolution failure: unknown column, bad dim.
			return queryResponse{}, http.StatusBadRequest, err
		}
		// A partial result with an error is a cancelled context.
		return queryResponse{}, 0, err
	}
	ar := &aggResponse{Op: res.Op, Count: res.Count, Complete: res.Complete}
	if res.Valid {
		v := res.Value
		ar.Value = &v
	}
	if res.Groups != nil {
		ar.Groups = make([]aggGroup, len(res.Groups))
		for i, g := range res.Groups {
			ar.Groups[i] = aggGroup{Key: g.Key, Count: g.Count, Value: g.Value}
		}
	}
	resp := queryResponse{Count: int(res.Count), Agg: ar}
	st.slowlog.observe(res.Explain)
	if wantExplain {
		resp.Explain = res.Explain
	}
	return resp, 0, nil
}

// runQuery answers one rectangle through the v2 engine: the request
// context cancels an in-flight fan-out when the client disconnects, and
// early mode stops the scan once limit rows are found instead of counting
// every match. The returned error is non-nil only on cancellation. When
// the slow-query log is armed, every query runs with EXPLAIN so a slow one
// can be logged with its full execution report; the report only reaches
// the response when the client asked for it.
func runQuery(st *serverState, req *http.Request, r coax.Rect, limit int, early bool) (queryResponse, error) {
	// Stable() makes retained rows private copies; for the sharded engine
	// that guarantee is free (its merge boundary copies anyway), so this
	// does not add a second copy per row.
	q := coax.FromRect(r).WithContext(req.Context()).Stable()
	wantExplain := explainRequested(req)
	if wantExplain || st.slowlog != nil {
		q.WithExplain()
	}
	if early && limit > 0 {
		q.Limit(limit)
	}
	var resp queryResponse
	res, err := q.Run(st.idx, func(row []float64) bool {
		resp.Count++
		if limit < 0 || len(resp.Rows) < limit {
			resp.Rows = append(resp.Rows, row) // stable: rows are private copies
		}
		return true
	})
	if err != nil {
		return resp, err
	}
	st.slowlog.observe(res.Explain)
	if wantExplain {
		resp.Explain = res.Explain
	}
	return resp, nil
}

func readJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	req.Body = http.MaxBytesReader(w, req.Body, maxRequestBytes)
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

// writeOverloaded maps an admission failure onto the wire: a shed request
// gets 429 with a Retry-After derived from the queue deadline; a context
// error means the client already went away and there is nobody to answer.
func writeOverloaded(w http.ResponseWriter, adm *serve.Admission, err error) {
	if !errors.Is(err, serve.ErrOverloaded) {
		return
	}
	secs := int(math.Ceil(adm.RetryAfter().Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, http.StatusTooManyRequests, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already committed (status line sent), so the error
		// cannot reach the client as a status — count it and log it instead
		// of discarding it. Typical causes: the client hung up mid-body, or
		// an unencodable value (NaN) reached the response path.
		httpRespErrors.Inc()
		fmt.Fprintf(os.Stderr, "writing response: %v\n", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
