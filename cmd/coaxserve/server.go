package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/shard"
)

// defaultRowLimit bounds how many rows a query returns when the request
// does not say; counts are always exact regardless of the limit.
const defaultRowLimit = 1000

// Abuse bounds: a request body larger than maxRequestBytes or a batch
// wider than maxBatchQueries is rejected before it can drive the engine
// into buffering an unbounded result set.
const (
	maxRequestBytes = 8 << 20
	maxBatchQueries = 1024
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		in      = fs.String("in", "", "serve from this snapshot (sharded or single-index)")
		ds      = fs.String("dataset", "osm", "synthetic dataset when -in is empty: osm|airline")
		rows    = fs.Int("rows", 500000, "synthetic dataset size")
		shards  = fs.Int("shards", 0, "shard count (0: one per CPU)")
		workers = fs.Int("workers", 0, "query fan-out workers (0: one per CPU)")
		save    = fs.String("save", "", "persist the index as a sharded snapshot before serving")
	)
	fs.Parse(args)

	idx, err := openIndex(*in, *ds, *rows, *shards, *workers)
	if err != nil {
		return err
	}
	if *save != "" {
		if err := coax.SaveShardedFile(*save, idx); err != nil {
			return fmt.Errorf("saving %s: %w", *save, err)
		}
		fmt.Printf("saved sharded snapshot to %s\n", *save)
	}
	st := idx.BuildStats()
	fmt.Printf("serving %d rows × %d dims on %d %s shard(s) at %s\n",
		st.Rows, st.Dims, st.Shards, st.Partition, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServerMux(idx),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return srv.ListenAndServe()
}

// openIndex loads a sharded snapshot, wraps a single-index snapshot into a
// one-shard serving layer, or builds a synthetic sharded index.
func openIndex(in, ds string, rows, shards, workers int) (*coax.ShardedIndex, error) {
	if in != "" {
		idx, err := coax.LoadShardedFile(in)
		if err == nil {
			return idx, nil
		}
		single, serr := coax.LoadFile(in)
		if serr != nil {
			return nil, fmt.Errorf("loading %s: %w", in, errors.Join(err, serr))
		}
		return shard.Reassemble([]*core.COAX{single}, shard.ByHash, -1, nil, workers)
	}
	tab, err := makeTable(ds, rows)
	if err != nil {
		return nil, err
	}
	so := coax.DefaultShardOptions()
	so.NumShards = shards
	so.Workers = workers
	t0 := time.Now()
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "built %d rows on %d shards in %v\n",
		tab.Len(), idx.NumShards(), time.Since(t0).Round(time.Millisecond))
	return idx, nil
}

func makeTable(ds string, rows int) (*coax.Table, error) {
	switch ds {
	case "osm":
		return coax.GenerateOSM(coax.DefaultOSMConfig(rows)), nil
	case "airline":
		return coax.GenerateAirline(coax.DefaultAirlineConfig(rows)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want osm or airline)", ds)
	}
}

// --- HTTP surface ---

// rectRequest is one rectangle in wire form: per-dimension bounds where
// null (or a missing array) leaves the side unconstrained, plus an
// optional row cap — limit 0 returns counts only, a negative limit streams
// every matching row, omitted defaults to defaultRowLimit.
type rectRequest struct {
	Min   []*float64 `json:"min"`
	Max   []*float64 `json:"max"`
	Limit *int       `json:"limit"`
}

type batchRequest struct {
	Queries []rectRequest `json:"queries"`
}

type queryResponse struct {
	Count int         `json:"count"`
	Rows  [][]float64 `json:"rows,omitempty"`
}

type batchResponse struct {
	Results []queryResponse `json:"results"`
}

type insertRequest struct {
	Row []float64 `json:"row"`
}

type statsResponse struct {
	Rows            int    `json:"rows"`
	Dims            int    `json:"dims"`
	Shards          int    `json:"shards"`
	Partition       string `json:"partition"`
	RangeColumn     int    `json:"range_column"`
	RowsPerShard    []int  `json:"rows_per_shard"`
	MemoryOverheadB int64  `json:"memory_overhead_bytes"`
}

func (q *rectRequest) rect(dims int) (coax.Rect, error) {
	r := coax.FullRect(dims)
	fill := func(dst []float64, src []*float64, side string) error {
		if src == nil {
			return nil
		}
		if len(src) != dims {
			return fmt.Errorf("%s has %d bounds, index has %d dims", side, len(src), dims)
		}
		for i, v := range src {
			if v == nil {
				continue
			}
			if math.IsNaN(*v) {
				return fmt.Errorf("%s[%d] is NaN", side, i)
			}
			dst[i] = *v
		}
		return nil
	}
	if err := fill(r.Min, q.Min, "min"); err != nil {
		return r, err
	}
	if err := fill(r.Max, q.Max, "max"); err != nil {
		return r, err
	}
	return r, nil
}

func (q *rectRequest) limit() int {
	if q.Limit == nil {
		return defaultRowLimit
	}
	return *q.Limit
}

// newServerMux wires the HTTP surface over idx. ShardedIndex is safe for
// fully concurrent use, so handlers need no extra locking.
func newServerMux(idx *coax.ShardedIndex) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		st := idx.BuildStats()
		writeJSON(w, http.StatusOK, statsResponse{
			Rows:            st.Rows,
			Dims:            st.Dims,
			Shards:          st.Shards,
			Partition:       st.Partition,
			RangeColumn:     st.RangeColumn,
			RowsPerShard:    st.RowsPerShard,
			MemoryOverheadB: st.MemoryOverheadB,
		})
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, req *http.Request) {
		var q rectRequest
		if !readJSON(w, req, &q) {
			return
		}
		r, err := q.rect(idx.Dims())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp := runQuery(idx, r, q.limit())
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, req *http.Request) {
		var b batchRequest
		if !readJSON(w, req, &b) {
			return
		}
		if len(b.Queries) > maxBatchQueries {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch has %d queries, limit is %d", len(b.Queries), maxBatchQueries))
			return
		}
		rects := make([]coax.Rect, len(b.Queries))
		limits := make([]int, len(b.Queries))
		for i := range b.Queries {
			r, err := b.Queries[i].rect(idx.Dims())
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			rects[i] = r
			limits[i] = b.Queries[i].limit()
		}
		resp := batchResponse{Results: make([]queryResponse, len(rects))}
		idx.BatchQuery(rects, func(qi int, row []float64) {
			res := &resp.Results[qi]
			res.Count++
			if limits[qi] < 0 || len(res.Rows) < limits[qi] {
				res.Rows = append(res.Rows, row) // rows are stable copies
			}
		})
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, req *http.Request) {
		var ins insertRequest
		if !readJSON(w, req, &ins) {
			return
		}
		for i, v := range ins.Row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				writeError(w, http.StatusBadRequest, fmt.Errorf("row[%d] is not finite", i))
				return
			}
		}
		if err := idx.Insert(ins.Row); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"rows": idx.Len()})
	})

	return mux
}

func runQuery(idx *coax.ShardedIndex, r coax.Rect, limit int) queryResponse {
	var resp queryResponse
	idx.Query(r, func(row []float64) {
		resp.Count++
		if limit < 0 || len(resp.Rows) < limit {
			resp.Rows = append(resp.Rows, row) // rows are stable copies
		}
	})
	return resp
}

func readJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	req.Body = http.MaxBytesReader(w, req.Body, maxRequestBytes)
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
