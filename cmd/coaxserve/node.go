package main

// The node mode of the distributed deployment: one process hosting its
// consistent-hash share of the cluster's global shards behind the binary
// wire protocol (internal/wire), serving scatter-gather requests from any
// number of router processes (see router.go).
//
// Every node derives its shard assignment from the same inputs — the full
// peer list, the global shard count K, and the replication factor — so no
// coordinator hands out placements: NewRing(peers).HostedShards(self) is
// the whole membership protocol. The synthetic dataset is deterministic
// and rows route to global shards by value (cluster.RouteRow), so every
// replica of a shard materializes identical rows without talking to
// anyone.

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/cluster"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/shard"
)

func cmdNode(args []string) error {
	fs := flag.NewFlagSet("node", flag.ExitOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:7401", "wire-protocol listen address")
		name   = fs.String("name", "", "this node's identity in -peers (default: -addr); routers must dial it under exactly this address")
		peers  = fs.String("peers", "", "comma-separated addresses of every node in the cluster, including this one (default: just -name)")
		shards = fs.Int("shards", 16, "cluster-wide global shard count K; must match every node and router")
		rf     = fs.Int("replication", 2, "replication factor; must match the peers and routers")
		ds     = fs.String("dataset", "osm", "synthetic dataset: osm|airline (identical on every node; rows route by value)")
		rows   = fs.Int("rows", 100000, "synthetic dataset size")
		in     = fs.String("in", "", "build this node's shards from a snapshot (any format version; every node must use the same file) instead of a synthetic dataset")

		localShards = fs.Int("local-shards", 2, "local sub-shards per hosted global shard (the in-process fan-out width)")
		workers     = fs.Int("workers", 0, "query fan-out workers per local engine (0: one per CPU)")

		maxInflight  = fs.Int("max-inflight", 0, "admission control: requests executing concurrently before new ones queue (0 disables)")
		maxQueue     = fs.Int("max-queue", -1, "admission control: requests allowed to wait for a slot before shedding (-1: twice -max-inflight)")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission control: longest a queued request waits before shedding")

		straggler = fs.Duration("straggler", 0, "fault injection: delay every request by this much (demonstrates hedged reads)")
	)
	fs.Parse(args)

	self := *name
	if self == "" {
		self = *addr
	}
	peerList := splitAddrs(*peers)
	if len(peerList) == 0 {
		peerList = []string{self}
	}
	found := false
	for _, p := range peerList {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("node %s is not in -peers %q; every node must appear in the shared peer list", self, *peers)
	}

	ring, err := cluster.NewRing(peerList, 0)
	if err != nil {
		return err
	}
	hosted := ring.HostedShards(self, *shards, *rf)
	if len(hosted) == 0 {
		return fmt.Errorf("placement assigns node %s no shards (K=%d, rf=%d, %d peers)", self, *shards, *rf, len(peerList))
	}

	var tab *coax.Table
	if *in != "" {
		tab, err = tableFromSnapshot(*in, *workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "node %s: materialized %d rows × %d dims from snapshot %s\n",
			self, tab.Len(), tab.Dims(), *in)
	} else {
		tab, err = makeTable(*ds, *rows)
		if err != nil {
			return err
		}
	}
	so := coax.DefaultShardOptions()
	so.NumShards = *localShards
	so.Workers = *workers
	t0 := time.Now()
	engines, err := cluster.BuildShards(tab, hosted, *shards, coax.DefaultOptions(), so)
	if err != nil {
		return err
	}

	var opts []cluster.NodeOption
	if *maxInflight > 0 {
		q := *maxQueue
		if q < 0 {
			q = 2 * *maxInflight
		}
		opts = append(opts, cluster.WithAdmission(serve.NewAdmission(*maxInflight, q, *queueTimeout)))
	}
	node, err := cluster.NewNode(engines, *shards, opts...)
	if err != nil {
		return err
	}
	if *straggler > 0 {
		node.SetDelay(*straggler)
		fmt.Fprintf(os.Stderr, "fault injection: delaying every request by %v\n", *straggler)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The ready line is a protocol: the integration test and clustersmoke.sh
	// wait for it before wiring a router up.
	fmt.Printf("node %s ready: %d/%d global shards (%d rows) built in %v, rf=%d, %d peer(s)\n",
		self, len(hosted), *shards, node.Rows(), time.Since(t0).Round(time.Millisecond), *rf, len(peerList))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "node: shutting down")
		node.Close()
	}()
	if err := node.Serve(ln); err != net.ErrClosed {
		return err
	}
	return nil
}

// tableFromSnapshot materializes the live rows of a snapshot into a table
// the shard-placement pipeline can split. A v3 file is memory-mapped only
// for the duration of the scan — nodes re-partition rows by value into
// their hosted global shards, so the rows must land on the heap anyway.
// Placement hashes row values, not row order, so every node loading the
// same file materializes identical shard contents.
func tableFromSnapshot(path string, workers int) (*coax.Table, error) {
	idx, sn, err := openSnapshot(path, workers)
	if err != nil {
		return nil, err
	}
	defer sn.Close()
	tab := coax.NewTable(idx.Columns())
	tab.Grow(idx.Len())
	if _, err := coax.FromRect(coax.FullRect(idx.Dims())).Run(idx, func(row []float64) bool {
		tab.Append(row) // Append copies the values; the mapping can close after
		return true
	}); err != nil {
		return nil, err
	}
	if err := sn.PageErr(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return tab, nil
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// buildOracle builds the single-process reference engine over the same
// table a cluster serves — the comparison target for tests and smoke
// checks: a cluster answer must be a multiset-identical to the oracle's.
func buildOracle(tab *coax.Table, localShards, workers int) (*shard.Sharded, error) {
	so := coax.DefaultShardOptions()
	so.NumShards = localShards
	so.Workers = workers
	return shard.Build(tab, coax.DefaultOptions(), so)
}
