package main

// Multi-process cluster integration test: real node processes behind real
// TCP sockets, an in-process router (so the race detector watches the
// scatter-gather machinery), and a single-process shard.Sharded oracle
// built over the identical table. Every distributed answer must be
// multiset-identical to the oracle's — including after one node process is
// SIGKILLed mid-test.
//
// The node processes are this test binary re-exec'ed: TestMain intercepts
// COAXSERVE_NODE_ARGS and runs cmdNode instead of the test suite, the
// same re-exec idiom the standard library uses for exec tests.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/cluster"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

func TestMain(m *testing.M) {
	if args := os.Getenv("COAXSERVE_NODE_ARGS"); args != "" {
		if err := cmdNode(strings.Fields(args)); err != nil {
			fmt.Fprintln(os.Stderr, "coaxserve node:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// reserveAddrs picks n free loopback ports by binding and releasing them.
// The window between release and the child's bind is a benign race on a
// loopback interface.
func reserveAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// waitForRouter retries NewRouter until every node process has built its
// shards and is accepting connections.
func waitForRouter(t *testing.T, addrs []string, shards, rf int, timeout time.Duration) *cluster.Router {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		rt, err := cluster.NewRouter(addrs, shards, rf)
		if err == nil {
			return rt
		}
		lastErr = err
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatalf("cluster did not come up within %v: %v", timeout, lastErr)
	return nil
}

// collectSorted gathers every row a query execution yields into a flat,
// deterministically sorted buffer for multiset comparison.
func sortFlatRows(flat []float64, dims int) {
	n := len(flat) / dims
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dims : (i+1)*dims]
	}
	sort.Slice(rows, func(a, b int) bool {
		for d := 0; d < dims; d++ {
			if rows[a][d] != rows[b][d] {
				return rows[a][d] < rows[b][d]
			}
		}
		return false
	})
	out := make([]float64, 0, len(flat))
	for _, r := range rows {
		out = append(out, r...)
	}
	copy(flat, out)
}

func flatRowsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestClusterMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	const (
		rows        = 20000
		gshards     = 12
		rf          = 2
		numNodes    = 3
		localShards = 2
	)
	addrs := reserveAddrs(t, numNodes)
	peers := strings.Join(addrs, ",")

	procs := make([]*exec.Cmd, numNodes)
	for i, a := range addrs {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), fmt.Sprintf(
			"COAXSERVE_NODE_ARGS=-addr %s -peers %s -shards %d -replication %d -dataset osm -rows %d -local-shards %d",
			a, peers, gshards, rf, rows, localShards))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		procs[i] = cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
			p.Wait()
		}
	})

	rt := waitForRouter(t, addrs, gshards, rf, 120*time.Second)
	defer rt.Close()

	// The oracle: the exact table every node generated, on one engine.
	tab, err := makeTable("osm", rows)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := buildOracle(tab, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	dims := oracle.Dims()

	collectRouter := func(r index.Rect, limit int) ([]float64, bool) {
		t.Helper()
		var flat []float64
		complete, err := rt.Exec(r, index.Spec{Limit: limit}, func(row []float64) bool {
			flat = append(flat, row...)
			return true
		})
		if err != nil {
			t.Fatalf("router Exec: %v", err)
		}
		return flat, complete
	}
	collectOracle := func(r index.Rect) []float64 {
		var flat []float64
		oracle.Query(r, func(row []float64) { flat = append(flat, row...) })
		return flat
	}
	checkQueries := func(label string, n int, seed int64) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			r := workload.RandRect(rng, tab)
			got, complete := collectRouter(r, 0)
			want := collectOracle(r)
			if !complete {
				t.Fatalf("%s query %d: distributed scan incomplete", label, i)
			}
			sortFlatRows(got, dims)
			sortFlatRows(want, dims)
			if !flatRowsEqual(got, want) {
				t.Fatalf("%s query %d: cluster answered %d rows, oracle %d (or row values differ)",
					label, i, len(got)/dims, len(want)/dims)
			}
		}
	}

	t.Run("QueryOracle", func(t *testing.T) { checkQueries("initial", 20, 11) })

	t.Run("LimitK", func(t *testing.T) {
		rng := rand.New(rand.NewSource(12))
		for i := 0; i < 10; i++ {
			r := workload.RandRect(rng, tab)
			all := collectOracle(r)
			total := len(all) / dims
			if total < 2 {
				continue
			}
			k := 1 + rng.Intn(total-1)
			got, _ := collectRouter(r, k)
			if len(got)/dims != k {
				t.Fatalf("Limit(%d) returned %d rows", k, len(got)/dims)
			}
			// Every limited row must exist in the oracle's multiset.
			remaining := map[string]int{}
			for off := 0; off < len(all); off += dims {
				remaining[fmt.Sprint(all[off:off+dims])]++
			}
			for off := 0; off < len(got); off += dims {
				key := fmt.Sprint(got[off : off+dims])
				if remaining[key] == 0 {
					t.Fatalf("Limit(%d) returned a row the oracle never matched: %v", k, got[off:off+dims])
				}
				remaining[key]--
			}
		}
	})

	checkAggs := func(label string, n int, seed int64) {
		t.Helper()
		rng := rand.New(rand.NewSource(seed))
		specs := []index.AggSpec{
			{Op: index.AggCount, Col: -1, Group: -1},
			{Op: index.AggSum, Col: 0, Group: -1},
			{Op: index.AggMin, Col: 1, Group: -1},
		}
		for i := 0; i < n; i++ {
			r := workload.RandRect(rng, tab)
			for _, aspec := range specs {
				got, complete, err := rt.ExecAgg(r, index.Spec{}, aspec)
				if err != nil || !complete {
					t.Fatalf("%s agg %v: err=%v complete=%v", label, aspec, err, complete)
				}
				want, _ := oracle.ExecAgg(r, index.Spec{}, aspec, nil)
				if got.All.Count != want.All.Count {
					t.Fatalf("%s agg %v: count %d vs oracle %d", label, aspec, got.All.Count, want.All.Count)
				}
				if want.All.Count > 0 {
					if got.All.Min != want.All.Min || got.All.Max != want.All.Max {
						t.Fatalf("%s agg %v: extrema (%g,%g) vs oracle (%g,%g)",
							label, aspec, got.All.Min, got.All.Max, want.All.Min, want.All.Max)
					}
					// SUM folds in a different row order across the cluster;
					// only reassociation error is tolerated.
					if diff := math.Abs(got.All.Sum - want.All.Sum); diff > 1e-9*math.Max(1, math.Abs(want.All.Sum)) {
						t.Fatalf("%s agg %v: sum %g vs oracle %g", label, aspec, got.All.Sum, want.All.Sum)
					}
				}
			}
		}
	}

	t.Run("AggregateOracle", func(t *testing.T) { checkAggs("initial", 8, 13) })

	t.Run("Mutations", func(t *testing.T) {
		rng := rand.New(rand.NewSource(14))
		// Inserts: fresh rows derived from real ones, mirrored on the oracle.
		for i := 0; i < 30; i++ {
			row := append([]float64(nil), tab.Row(rng.Intn(tab.Len()))...)
			row[0] += 0.25 + float64(i)
			if err := rt.Insert(row); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
			if err := oracle.Insert(row); err != nil {
				t.Fatalf("oracle insert %d: %v", i, err)
			}
		}
		// Deletes of existing rows.
		for i := 0; i < 15; i++ {
			row := append([]float64(nil), tab.Row(rng.Intn(tab.Len()))...)
			cerr := rt.Delete(row)
			oerr := oracle.Delete(row)
			if (cerr == nil) != (oerr == nil) {
				t.Fatalf("delete %d: cluster err %v, oracle err %v", i, cerr, oerr)
			}
		}
		// A cross-shard update (the delete+insert decomposition).
		old := append([]float64(nil), tab.Row(7)...)
		upd := append([]float64(nil), old...)
		upd[0] += 1234.5
		if err := rt.Update(old, upd); err != nil {
			if errors.Is(err, core.ErrNotFound) {
				// A delete above may have removed row 7 first; mirror that.
				if oerr := oracle.Update(old, upd); !errors.Is(oerr, core.ErrNotFound) {
					t.Fatalf("update: cluster ErrNotFound, oracle %v", oerr)
				}
			} else {
				t.Fatalf("update: %v", err)
			}
		} else if err := oracle.Update(old, upd); err != nil {
			t.Fatalf("oracle update: %v", err)
		}
		// Logical errors must round-trip the wire as engine error types.
		if err := rt.Delete(make([]float64, dims)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("deleting an absent row: got %v, want ErrNotFound", err)
		}
		if err := rt.Insert([]float64{math.NaN()}); err == nil {
			t.Fatal("inserting a short NaN row succeeded")
		}
		checkQueries("post-mutation", 15, 15)
		checkAggs("post-mutation", 5, 16)
	})

	t.Run("NodeKilledMidTest", func(t *testing.T) {
		if err := procs[0].Process.Kill(); err != nil {
			t.Fatalf("killing node 0: %v", err)
		}
		procs[0].Wait()
		// Every global shard still has a live replica (rf=2), so answers
		// must stay oracle-identical — served via failover.
		checkQueries("post-kill", 12, 17)
		checkAggs("post-kill", 4, 18)
	})
}

// TestClusterNodeSnapshotIn boots a multi-process cluster whose nodes all
// build from the same v3 (memory-mapped, compressed) snapshot via `node
// -in` instead of a synthetic dataset, and checks distributed answers
// against an oracle built over the snapshot's table. This is the
// operational path for serving a prepared dataset across a fleet: write
// one v3 file, point every node at it.
func TestClusterNodeSnapshotIn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	const (
		rows        = 8000
		gshards     = 8
		rf          = 2
		numNodes    = 2
		localShards = 2
	)
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(rows))
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	snapPath := fmt.Sprintf("%s/cluster.v3", t.TempDir())
	if err := coax.SaveShardedFileV3(snapPath, idx, true); err != nil {
		t.Fatal(err)
	}

	addrs := reserveAddrs(t, numNodes)
	peers := strings.Join(addrs, ",")
	procs := make([]*exec.Cmd, numNodes)
	for i, a := range addrs {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), fmt.Sprintf(
			"COAXSERVE_NODE_ARGS=-addr %s -peers %s -shards %d -replication %d -in %s -local-shards %d",
			a, peers, gshards, rf, snapPath, localShards))
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		procs[i] = cmd
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p.Process != nil {
				p.Process.Kill()
			}
			p.Wait()
		}
	})

	rt := waitForRouter(t, addrs, gshards, rf, 120*time.Second)
	defer rt.Close()

	// The oracle serves the same table the snapshot encodes.
	oracle, err := buildOracle(tab, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	dims := oracle.Dims()

	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 15; i++ {
		r := workload.RandRect(rng, tab)
		var got []float64
		complete, err := rt.Exec(r, index.Spec{}, func(row []float64) bool {
			got = append(got, row...)
			return true
		})
		if err != nil || !complete {
			t.Fatalf("query %d: err=%v complete=%v", i, err, complete)
		}
		var want []float64
		oracle.Query(r, func(row []float64) { want = append(want, row...) })
		sortFlatRows(got, dims)
		sortFlatRows(want, dims)
		if !flatRowsEqual(got, want) {
			t.Fatalf("query %d: cluster answered %d rows, oracle %d (or row values differ)",
				i, len(got)/dims, len(want)/dims)
		}
		agg, complete, err := rt.ExecAgg(r, index.Spec{}, index.AggSpec{Op: index.AggCount, Col: -1, Group: -1})
		if err != nil || !complete {
			t.Fatalf("agg %d: err=%v complete=%v", i, err, complete)
		}
		if int(agg.All.Count) != len(want)/dims {
			t.Fatalf("agg %d: count %d, oracle %d", i, agg.All.Count, len(want)/dims)
		}
	}
}

// TestRouterModeHTTP drives the router-mode HTTP surface against an
// in-process cluster: the JSON API must behave exactly like serve mode,
// including 429 + Retry-After when every replica sheds.
func TestRouterModeHTTP(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(6000))
	const gshards, rf = 8, 2
	bc, err := startBenchCluster(tab, gshards, 2, rf, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.close()
	rt, err := cluster.NewRouter(bc.addrs, gshards, rf)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	rst := &routerState{rt: rt, start: time.Now()}
	srv := httptest.NewServer(newRouterMux(rst))
	t.Cleanup(srv.Close)

	oracle, err := buildOracle(tab, 4, 0)
	if err != nil {
		t.Fatal(err)
	}

	// /query must agree with the oracle on counts.
	gen := workload.NewGenerator(tab, 5)
	for i, r := range gen.KNNRects(10, 50) {
		var resp queryResponse
		httpResp := postJSON(t, srv.URL+"/query", rectToRequest(r), &resp)
		if httpResp.StatusCode != 200 {
			t.Fatalf("query %d: status %d", i, httpResp.StatusCode)
		}
		want := 0
		oracle.Query(r, func([]float64) { want++ })
		if resp.Count != want {
			t.Fatalf("query %d: count %d, oracle %d", i, resp.Count, want)
		}
	}

	// Aggregation by position; by name must 400.
	dim := 0
	var aggResp queryResponse
	if r := postJSON(t, srv.URL+"/query", rectRequest{Agg: &aggRequest{Op: "sum", Dim: &dim}}, &aggResp); r.StatusCode != 200 {
		t.Fatalf("agg by dim: status %d", r.StatusCode)
	}
	col := "lat"
	if r := postJSON(t, srv.URL+"/query", rectRequest{Agg: &aggRequest{Op: "sum", Col: &col}}, nil); r.StatusCode != 400 {
		t.Fatalf("agg by name: status %d, want 400", r.StatusCode)
	}

	// Mutations flow through to the cluster.
	row := append([]float64(nil), tab.Row(3)...)
	row[0] += 9000.5
	var ins map[string]int64
	if r := postJSON(t, srv.URL+"/insert", insertRequest{Row: row}, &ins); r.StatusCode != 200 {
		t.Fatalf("insert: status %d", r.StatusCode)
	}
	if r := postJSON(t, srv.URL+"/delete", insertRequest{Row: row}, nil); r.StatusCode != 200 {
		t.Fatalf("delete inserted row: status %d", r.StatusCode)
	}
	if r := postJSON(t, srv.URL+"/delete", insertRequest{Row: row}, nil); r.StatusCode != 404 {
		t.Fatalf("delete absent row: status %d, want 404", r.StatusCode)
	}

	// All replicas shedding → 429 carrying the LARGEST Retry-After.
	bc.nodes[0].SetDraining(1500 * time.Millisecond)
	bc.nodes[1].SetDraining(3500 * time.Millisecond)
	resp := postJSON(t, srv.URL+"/query", rectToRequest(gen.KNNRects(1, 50)[0]), nil)
	if resp.StatusCode != 429 {
		t.Fatalf("all draining: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "4" {
		t.Fatalf("Retry-After %q, want \"4\" (ceil of the 3.5s max)", ra)
	}
	if r := postJSON(t, srv.URL+"/insert", insertRequest{Row: row}, nil); r.StatusCode != 429 {
		t.Fatalf("mutation while draining: status %d, want 429", r.StatusCode)
	}
	bc.nodes[0].SetDraining(0)
	bc.nodes[1].SetDraining(0)
	if r := postJSON(t, srv.URL+"/query", rectToRequest(gen.KNNRects(1, 50)[0]), nil); r.StatusCode != 200 {
		t.Fatalf("after drain lifted: status %d", r.StatusCode)
	}
}
