package main

// The router mode of the distributed deployment: the cluster-facing HTTP
// front end. It keeps the single-process serve mode's JSON API — /query,
// /batch, the mutation endpoints, /healthz, /stats, /metrics — and the
// whole serving-tier hardening stack (result cache, request coalescing,
// admission control), but answers from a cluster.Router scatter-gather
// instead of an in-process engine. Clients cannot tell the difference,
// with one exception: the router addresses columns by position (the wire
// protocol carries no schema), so aggregations use "dim"/"group_by_dim"
// rather than column names.
//
// Overload propagates end to end: the router's own admission controller
// sheds with 429 + Retry-After exactly like serve mode, and when every
// replica of a shard sheds a request node-side, the resulting
// cluster.OverloadError surfaces as 429 with the LARGEST Retry-After any
// replica returned — the earliest time the whole request can succeed.

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/coax-index/coax/internal/cluster"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/serve"
)

func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	var (
		addr   = fs.String("addr", ":8080", "HTTP listen address")
		nodes  = fs.String("nodes", "", "comma-separated node addresses (required; must equal every node's -peers list)")
		shards = fs.Int("shards", 16, "cluster-wide global shard count K; must match the nodes")
		rf     = fs.Int("replication", 2, "replication factor; must match the nodes")

		hedge      = fs.Bool("hedge", true, "hedged replica reads: after a per-node p99-based delay, race a shard's next replica against the slow one")
		hedgeDelay = fs.Duration("hedge-delay", 0, "pin the hedge delay instead of adapting to observed node p99 (0: adaptive)")

		cacheSize    = fs.Int("cache-size", 4096, "result-cache capacity in entries (0 disables caching and coalescing)")
		maxInflight  = fs.Int("max-inflight", 0, "admission control: queries executing concurrently before new ones queue (0 disables)")
		maxQueue     = fs.Int("max-queue", -1, "admission control: requests allowed to wait for a slot before shedding with 429 (-1: twice -max-inflight)")
		queueTimeout = fs.Duration("queue-timeout", 100*time.Millisecond, "admission control: longest a queued request waits for a slot before shedding with 429")

		accessLog = fs.Bool("access-log", false, "log every request to stderr with status and latency")
		drain     = fs.Duration("drain-timeout", 10*time.Second, "how long graceful shutdown waits for in-flight requests")
	)
	fs.Parse(args)

	nodeList := splitAddrs(*nodes)
	if len(nodeList) == 0 {
		return fmt.Errorf("router needs -nodes")
	}
	opts := []cluster.RouterOption{cluster.WithHedging(*hedge)}
	if *hedgeDelay > 0 {
		opts = append(opts, cluster.WithHedgeDelay(*hedgeDelay))
	}
	rt, err := cluster.NewRouter(nodeList, *shards, *rf, opts...)
	if err != nil {
		return err
	}
	defer rt.Close()

	rst := &routerState{rt: rt, start: time.Now(), accessLog: *accessLog}
	if *cacheSize > 0 {
		rst.qcache = serve.NewQueryCache(rt, *cacheSize)
	}
	if *maxInflight > 0 {
		q := *maxQueue
		if q < 0 {
			q = 2 * *maxInflight
		}
		rst.adm = serve.NewAdmission(*maxInflight, q, *queueTimeout)
	}

	cs := rt.Stats()
	fmt.Printf("router ready: %d rows on %d node(s), %d global shards, rf=%d, hedging %v, at %s\n",
		cs.Rows, len(nodeList), *shards, *rf, *hedge, *addr)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newRouterMux(rst),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveUntilShutdown(srv, nil, ctx, *drain)
}

// routerState carries what the router-mode HTTP handlers share. qcache and
// adm may be nil (layer disabled), mirroring serverState.
type routerState struct {
	rt        *cluster.Router
	start     time.Time
	accessLog bool
	qcache    *serve.QueryCache
	adm       *serve.Admission
}

// routerStatsResponse is the router's GET /stats body: the cluster shape
// plus the serving-tier hardening counters.
type routerStatsResponse struct {
	cluster.ClusterStats
	Dims      int                   `json:"dims"`
	Cache     *serve.CacheStats     `json:"cache,omitempty"`
	Admission *serve.AdmissionStats `json:"admission,omitempty"`
}

// routerHealthz is the verbose /healthz body: enough cluster shape for an
// operator to see a node drop out without scraping metrics.
type routerHealthz struct {
	Status        string  `json:"status"`
	Rows          int64   `json:"rows"`
	Nodes         int     `json:"nodes"`
	NodesDown     int     `json:"nodes_down"`
	Unanswered    int     `json:"unanswered_shards"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// clusterAggSpec translates the wire aggregation into the engine spec. The
// router knows dimensionality but not column names, so only positional
// references resolve.
func clusterAggSpec(a *aggRequest) (index.AggSpec, error) {
	if a.Col != nil || a.GroupBy != nil {
		return index.AggSpec{}, fmt.Errorf(`the cluster router addresses columns by position: use "dim"/"group_by_dim" instead of "col"/"group_by"`)
	}
	op, err := index.ParseAggOp(a.Op)
	if err != nil {
		return index.AggSpec{}, err
	}
	spec := index.AggSpec{Op: op, Col: -1, Group: -1}
	if a.Dim != nil {
		if !op.NeedsColumn() {
			return index.AggSpec{}, fmt.Errorf(`"count" takes no column; drop "dim"`)
		}
		spec.Col = *a.Dim
	} else if op.NeedsColumn() {
		return index.AggSpec{}, fmt.Errorf("%q needs a value column: set \"dim\"", a.Op)
	}
	if a.GroupByDim != nil {
		spec.Group = *a.GroupByDim
	}
	return spec, nil
}

// newRouterMux wires the cluster-facing HTTP surface. It intentionally
// mirrors newServerMux's endpoints and status mapping so clients written
// against the single-process server keep working unchanged.
func newRouterMux(rst *routerState) http.Handler {
	rt := rst.rt
	obs.PublishExpvar()
	mux := http.NewServeMux()

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("verbose") != "1" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		cs := rt.Stats()
		down := 0
		for _, n := range cs.Nodes {
			if n.Err != "" {
				down++
			}
		}
		status := "ok"
		if cs.Unanswered > 0 {
			status = "degraded"
		}
		writeJSON(w, http.StatusOK, routerHealthz{
			Status:        status,
			Rows:          cs.Rows,
			Nodes:         len(cs.Nodes),
			NodesDown:     down,
			Unanswered:    cs.Unanswered,
			UptimeSeconds: time.Since(rst.start).Seconds(),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, _ *http.Request) {
		resp := routerStatsResponse{ClusterStats: rt.Stats(), Dims: rt.Dims()}
		if rst.qcache != nil {
			cs := rst.qcache.Stats()
			resp.Cache = &cs
		}
		if rst.adm != nil {
			as := rst.adm.Stats()
			resp.Admission = &as
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /query", func(w http.ResponseWriter, req *http.Request) {
		var q rectRequest
		if !readJSON(w, req, &q) {
			return
		}
		if err := q.validate(); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		var aspec index.AggSpec
		if q.Agg != nil {
			var err error
			if aspec, err = clusterAggSpec(q.Agg); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			if err = aspec.Validate(rt.Dims()); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		r, err := q.rect(rt.Dims())
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := rst.adm.Acquire(req.Context()); err != nil {
			writeOverloaded(w, rst.adm, err)
			return
		}
		defer rst.adm.Release()
		if q.Agg != nil {
			resp, err := answerRouterAgg(rst, req, r, q.Agg, aspec)
			writeRouterResult(w, req, resp, err)
			return
		}
		resp, err := answerRouterQuery(rst, req, r, q.limit(), q.Early)
		writeRouterResult(w, req, resp, err)
	})

	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, req *http.Request) {
		var b batchRequest
		if !readJSON(w, req, &b) {
			return
		}
		if len(b.Queries) > maxBatchQueries {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("batch has %d queries, limit is %d", len(b.Queries), maxBatchQueries))
			return
		}
		rects := make([]index.Rect, len(b.Queries))
		for i := range b.Queries {
			if b.Queries[i].Agg != nil {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf(`query %d: "agg" is not supported in /batch; use /query`, i))
				return
			}
			if err := b.Queries[i].validate(); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			r, err := b.Queries[i].rect(rt.Dims())
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
				return
			}
			rects[i] = r
		}
		if err := rst.adm.Acquire(req.Context()); err != nil {
			writeOverloaded(w, rst.adm, err)
			return
		}
		defer rst.adm.Release()
		resp := batchResponse{Results: make([]queryResponse, len(rects))}
		for i := range rects {
			res, err := answerRouterQuery(rst, req, rects[i], b.Queries[i].limit(), b.Queries[i].Early)
			if err != nil {
				writeRouterResult(w, req, res, fmt.Errorf("query %d: %w", i, err))
				return
			}
			resp.Results[i] = res
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mutation := func(apply func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if err := apply(); err != nil {
				writeRouterMutationError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]int64{"rows": rt.Stats().Rows})
		}
	}
	mux.HandleFunc("POST /insert", func(w http.ResponseWriter, req *http.Request) {
		var ins insertRequest
		if !readJSON(w, req, &ins) {
			return
		}
		mutation(func() error { return rt.Insert(ins.Row) })(w, req)
	})
	mux.HandleFunc("POST /delete", func(w http.ResponseWriter, req *http.Request) {
		var del insertRequest
		if !readJSON(w, req, &del) {
			return
		}
		mutation(func() error { return rt.Delete(del.Row) })(w, req)
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, req *http.Request) {
		var up updateRequest
		if !readJSON(w, req, &up) {
			return
		}
		mutation(func() error { return rt.Update(up.Old, up.New) })(w, req)
	})

	return instrumentHandler(mux, rst.accessLog)
}

// writeRouterResult finishes a query request: success, cluster-level
// overload (429 with the largest Retry-After any replica hinted), shard
// unavailability (502 — the cluster, not the client, is at fault), or a
// gone client (nothing to write).
func writeRouterResult(w http.ResponseWriter, req *http.Request, resp queryResponse, err error) {
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, resp)
	case req.Context().Err() != nil:
		// Client disconnected; nobody to answer.
	default:
		var oe *cluster.OverloadError
		if errors.As(err, &oe) {
			writeClusterOverloaded(w, oe)
			return
		}
		writeError(w, http.StatusBadGateway, err)
	}
}

// writeClusterOverloaded maps an all-replicas-shedding failure onto the
// wire with the cluster's aggregated Retry-After hint.
func writeClusterOverloaded(w http.ResponseWriter, oe *cluster.OverloadError) {
	secs := int(math.Ceil(oe.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, http.StatusTooManyRequests, oe)
}

// writeRouterMutationError adds the cluster overload case to the engine
// error mapping the single-process server already uses.
func writeRouterMutationError(w http.ResponseWriter, err error) {
	var oe *cluster.OverloadError
	if errors.As(err, &oe) {
		writeClusterOverloaded(w, oe)
		return
	}
	writeMutationError(w, err)
}

// answerRouterQuery serves one rectangle through the hardening layer —
// cache hit or coalesced scatter-gather — mirroring answerQuery.
func answerRouterQuery(rst *routerState, req *http.Request, r index.Rect, limit int, early bool) (queryResponse, error) {
	if rst.qcache == nil {
		return runRouterQuery(rst, req, r, limit, early)
	}
	v, _, err := rst.qcache.Do(serve.Key(r, limit, early, ""), r, func() (any, error) {
		resp, rerr := runRouterQuery(rst, req, r, limit, early)
		if rerr != nil {
			return nil, rerr
		}
		return &resp, nil
	})
	if err != nil {
		var oe *cluster.OverloadError
		if req.Context().Err() != nil || errors.As(err, &oe) {
			return queryResponse{}, err
		}
		// Coalesced cancellation from another caller; retry directly.
		return runRouterQuery(rst, req, r, limit, early)
	}
	return *v.(*queryResponse), nil
}

// runRouterQuery scatter-gathers one rectangle. Without early mode the
// count covers every match and only limit rows are retained; with it, the
// limit rides into the cluster spec so every node stops scanning once its
// shards have produced enough rows.
func runRouterQuery(rst *routerState, req *http.Request, r index.Rect, limit int, early bool) (queryResponse, error) {
	spec := index.Spec{Ctx: req.Context()}
	if early && limit > 0 {
		spec.Limit = limit
	}
	var resp queryResponse
	_, err := rst.rt.Exec(r, spec, func(row []float64) bool {
		resp.Count++
		if limit < 0 || len(resp.Rows) < limit {
			resp.Rows = append(resp.Rows, row) // rows are stable copies off the wire
		}
		return true
	})
	if err != nil {
		return queryResponse{}, err
	}
	if cerr := req.Context().Err(); cerr != nil {
		return queryResponse{}, cerr
	}
	return resp, nil
}

// answerRouterAgg serves one aggregation through the same hardening layer.
func answerRouterAgg(rst *routerState, req *http.Request, r index.Rect, a *aggRequest, aspec index.AggSpec) (queryResponse, error) {
	if rst.qcache == nil {
		return runRouterAgg(rst, req, r, aspec)
	}
	v, _, err := rst.qcache.Do(serve.Key(r, 0, false, a.descriptor()), r, func() (any, error) {
		resp, rerr := runRouterAgg(rst, req, r, aspec)
		if rerr != nil {
			return nil, rerr
		}
		return &resp, nil
	})
	if err != nil {
		var oe *cluster.OverloadError
		if req.Context().Err() != nil || errors.As(err, &oe) {
			return queryResponse{}, err
		}
		return runRouterAgg(rst, req, r, aspec)
	}
	return *v.(*queryResponse), nil
}

// runRouterAgg scatter-gathers one aggregation and shapes the merged state
// into the same wire form the single-process server produces.
func runRouterAgg(rst *routerState, req *http.Request, r index.Rect, aspec index.AggSpec) (queryResponse, error) {
	st, complete, err := rst.rt.ExecAgg(r, index.Spec{Ctx: req.Context()}, aspec)
	if err != nil {
		return queryResponse{}, err
	}
	if cerr := req.Context().Err(); cerr != nil {
		return queryResponse{}, cerr
	}
	ar := &aggResponse{Op: aspec.Op.String(), Complete: complete}
	if aspec.Group < 0 {
		ar.Count = st.All.Count
		if v, ok := st.All.Value(aspec.Op); ok {
			ar.Value = &v
		}
	} else {
		for _, k := range st.GroupKeys() {
			cell := st.Groups[k]
			ar.Count += cell.Count
			v, _ := cell.Value(aspec.Op)
			ar.Groups = append(ar.Groups, aggGroup{Key: k, Count: cell.Count, Value: v})
		}
	}
	return queryResponse{Count: int(ar.Count), Agg: ar}, nil
}
