package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

// Mutation-mix benchmark: measures query QPS and tail latency before a
// drift-inducing write workload, while the stale shards rebuild online,
// and after the epoch swaps land — the serving-layer cost of self-healing.
// The headline number is p99_during / p99_steady: how much the online
// rebuild disturbs the query tail (the design goal is "a little", since
// detection and construction run off the query path and only the collect
// and swap steps briefly block one shard's writes).

// phaseReport measures one query-loop phase.
type phaseReport struct {
	Phase   string  `json:"phase"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
}

// mutationReport is the JSON shape written to BENCH_mutation.json.
type mutationReport struct {
	Dataset      string               `json:"dataset"`
	Rows         int                  `json:"rows"`
	Shards       int                  `json:"shards"`
	QueryWorkers int                  `json:"query_workers"`
	CPUs         int                  `json:"cpus"`
	Thresholds   lifecycle.Thresholds `json:"thresholds"`

	DriftOps           int     `json:"drift_ops"`
	OutlierRatioBase   float64 `json:"outlier_ratio_base"`
	OutlierRatioDrift  float64 `json:"outlier_ratio_after_drift"`
	OutlierRatioHealed float64 `json:"outlier_ratio_after_rebuild"`
	StaleShards        int     `json:"stale_shards"`
	RebuiltShards      []int   `json:"rebuilt_shards"`
	RebuildMS          float64 `json:"rebuild_ms"`

	Steady  phaseReport `json:"steady"`
	During  phaseReport `json:"during_rebuild"`
	After   phaseReport `json:"after_rebuild"`
	P99Blow float64     `json:"p99_during_over_steady"`
}

func cmdMutBench(args []string) error {
	fs := flag.NewFlagSet("mutbench", flag.ExitOnError)
	th := lifecycle.DefaultThresholds()
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 200000, "dataset size")
		shards  = fs.Int("shards", 4, "shard count")
		queries = fs.Int("queries", 1500, "queries per measured phase")
		knn     = fs.Int("knn", 100, "rectangle size: k nearest records of a random seed row")
		qwork   = fs.Int("query-workers", 4, "concurrent query goroutines")
		maxOps  = fs.Int("max-drift-ops", 0, "cap on drift mutations (0: half the dataset size)")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")
	)
	fs.Float64Var(&th.MaxOutlierRatio, "max-outlier-ratio", th.MaxOutlierRatio, "outlier fraction marking a shard stale")
	fs.Parse(args)

	tab, err := makeTable(*ds, *rows)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		return err
	}
	s, err := shard.BuildWithFD(tab, fd, opt, shard.Options{NumShards: *shards})
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 1)
	rects := gen.KNNRects(*queries, *knn)

	rep := mutationReport{
		Dataset:          *ds,
		Rows:             tab.Len(),
		Shards:           s.NumShards(),
		QueryWorkers:     *qwork,
		CPUs:             runtime.NumCPU(),
		Thresholds:       th,
		OutlierRatioBase: s.LifecycleStats().OutlierRatio,
	}

	// Phase 1 — steady state: queries only, no mutations in flight.
	rep.Steady = measurePhase("steady", s, rects, *qwork, *queries, nil)
	printPhase(rep.Steady)

	// Phase 2 — drift: hammer the engine with a write mix whose inserts
	// deliberately violate the learned models (perturbed on the dependent
	// columns) until every shard trips the outlier-ratio threshold.
	deps := fd.DependentColumns()
	perturb := make([]int, 0, len(deps))
	for c := range deps {
		perturb = append(perturb, c)
	}
	sort.Ints(perturb)
	mix := workload.NewMixGenerator(tab, 2, workload.MixConfig{
		InsertWeight: 6,
		DeleteWeight: 1,
		UpdateWeight: 1,
		OutlierFrac:  0.8,
		PerturbCols:  perturb,
	})
	opCap := *maxOps
	if opCap <= 0 {
		opCap = tab.Len()
	}
	for rep.DriftOps = 0; rep.DriftOps < opCap; rep.DriftOps++ {
		// Drive until the aggregate outlier ratio itself trips the
		// threshold — the degenerate state the rebuild exists to fix.
		if rep.DriftOps%2048 == 0 && s.LifecycleStats().OutlierRatio > th.MaxOutlierRatio {
			break
		}
		if err := applyMixOp(s, mix.Next()); err != nil {
			return fmt.Errorf("drift op %d: %w", rep.DriftOps, err)
		}
	}
	rep.OutlierRatioDrift = s.LifecycleStats().OutlierRatio
	rep.StaleShards = len(s.StaleShards(th))
	fmt.Printf("drift: %d ops, outlier ratio %.3f → %.3f, %d/%d shards stale\n",
		rep.DriftOps, rep.OutlierRatioBase, rep.OutlierRatioDrift, rep.StaleShards, s.NumShards())

	// Phase 3 — rebuild every stale shard online while the query loop
	// keeps running; the phase measures the queries that complete while at
	// least one rebuild is in flight (and keeps going to the query budget
	// so the percentiles are comparable).
	done := make(chan struct{})
	t0 := time.Now()
	var rebuildErr error
	go func() {
		defer close(done)
		rep.RebuiltShards, rebuildErr = s.RebuildStale(th)
	}()
	rep.During = measurePhase("during_rebuild", s, rects, *qwork, *queries, done)
	<-done
	rep.RebuildMS = float64(time.Since(t0).Microseconds()) / 1000
	if rebuildErr != nil {
		return fmt.Errorf("rebuild: %w", rebuildErr)
	}
	printPhase(rep.During)
	rep.OutlierRatioHealed = s.LifecycleStats().OutlierRatio
	fmt.Printf("rebuilt %v in %.0fms, outlier ratio %.3f → %.3f\n",
		rep.RebuiltShards, rep.RebuildMS, rep.OutlierRatioDrift, rep.OutlierRatioHealed)

	// Phase 4 — steady state again on the fresh epochs.
	rep.After = measurePhase("after_rebuild", s, rects, *qwork, *queries, nil)
	printPhase(rep.After)

	if rep.Steady.P99us > 0 {
		rep.P99Blow = rep.During.P99us / rep.Steady.P99us
	}
	fmt.Printf("p99 during rebuild: %.2fx steady-state\n", rep.P99Blow)

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// applyMixOp drives one generated mutation into the engine (queries in the
// mix are executed unmeasured, just for load).
func applyMixOp(s *shard.Sharded, op workload.MixOp) error {
	switch op.Kind {
	case workload.OpInsert:
		return s.Insert(op.Row)
	case workload.OpDelete:
		return s.Delete(op.Row)
	case workload.OpUpdate:
		return s.Update(op.Old, op.New)
	default:
		index.Count(s, op.Rect)
		return nil
	}
}

// measurePhase runs minQueries rectangle queries across workers goroutines
// (round-robin over the workload) and reports throughput and latency
// percentiles. With a non-nil running channel the loop also keeps querying
// until that channel closes, so the phase spans the whole background
// rebuild it is measuring.
func measurePhase(name string, s *shard.Sharded, rects []index.Rect, workers, minQueries int, running <-chan struct{}) phaseReport {
	var (
		next atomic.Int64
		mu   sync.Mutex
		lat  []time.Duration
		wg   sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, minQueries/workers+1)
		loop:
			for {
				i := next.Add(1) - 1
				if i >= int64(minQueries) {
					if running == nil {
						break loop
					}
					select {
					case <-running:
						break loop
					default:
					}
				}
				r := rects[int(i)%len(rects)]
				q0 := time.Now()
				index.Count(s, r)
				local = append(local, time.Since(q0))
			}
			mu.Lock()
			lat = append(lat, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	total := time.Since(t0)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return phaseReport{
		Phase:   name,
		Queries: len(lat),
		QPS:     float64(len(lat)) / total.Seconds(),
		P50us:   us(percentile(lat, 0.50)),
		P99us:   us(percentile(lat, 0.99)),
	}
}

func printPhase(p phaseReport) {
	fmt.Printf("%-16s %7d queries %10.0f qps   p50 %8.1fµs   p99 %8.1fµs\n",
		p.Phase, p.Queries, p.QPS, p.P50us, p.P99us)
}
