package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

// runReport is the measurement of one engine configuration over the whole
// query workload.
type runReport struct {
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"`
	QPS             float64 `json:"qps"`
	P50us           float64 `json:"p50_us"`
	P99us           float64 `json:"p99_us"`
	RowsMatched     int64   `json:"rows_matched"`
	BuildMS         float64 `json:"build_ms"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// serveReport is the JSON shape written to BENCH_serve.json and consumed
// by CI to track the serving-layer perf trajectory. Serial is the
// single-shard one-query-at-a-time baseline every run is compared against.
type serveReport struct {
	Dataset    string      `json:"dataset"`
	Rows       int         `json:"rows"`
	Queries    int         `json:"queries"`
	KNN        int         `json:"knn"`
	CPUs       int         `json:"cpus"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Serial     runReport   `json:"serial"`
	Runs       []runReport `json:"runs"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 500000, "dataset size")
		queries = fs.Int("queries", 2000, "workload size")
		knn     = fs.Int("knn", 100, "rectangles bound the k nearest records of a random seed row (the paper's §8.1.2 range workload)")
		shards  = fs.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
		batch   = fs.String("batch", "1,16,64", "comma-separated batch sizes to sweep")
		workers = fs.Int("workers", 0, "fan-out workers per call (0: one per CPU)")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")

		v2json   = fs.String("v2json", "", "write the Query-API-v2 limit-k early-termination sweep as JSON to this path")
		v2limits = fs.String("v2limits", "1,10,100,1000", "comma-separated limits for the v2 sweep")
		v2knn    = fs.Int("v2knn", 5000, "rectangle selectivity (k-NN) of the v2 sweep workload — broad on purpose, so early termination has rows to skip")
		v2count  = fs.Int("v2queries", 200, "v2 sweep workload size")
	)
	fs.Parse(args)

	shardCounts, err := parseIntList(*shards)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	batchSizes, err := parseIntList(*batch)
	if err != nil {
		return fmt.Errorf("-batch: %w", err)
	}

	tab, err := makeTable(*ds, *rows)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 1)
	rects := gen.KNNRects(*queries, *knn)

	rep := serveReport{
		Dataset:    *ds,
		Rows:       tab.Len(),
		Queries:    len(rects),
		KNN:        *knn,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Serial single-shard baseline: one plain COAX, one query at a time on
	// one goroutine — the engine this PR's serving layer replaces.
	t0 := time.Now()
	single, err := core.BuildWithFD(tab, fd, opt)
	if err != nil {
		return err
	}
	singleBuild := time.Since(t0)
	rep.Serial = measureSerial(single, rects)
	rep.Serial.BuildMS = ms(singleBuild)
	fmt.Printf("dataset %s, %d rows, %d queries (%d-NN rects), %d CPU(s)\n",
		rep.Dataset, rep.Rows, rep.Queries, rep.KNN, rep.CPUs)
	printRun("serial", rep.Serial)

	for _, k := range shardCounts {
		t0 = time.Now()
		s, err := shard.BuildWithFD(tab, fd, opt, shard.Options{NumShards: k, Workers: *workers})
		if err != nil {
			return fmt.Errorf("building %d shards: %w", k, err)
		}
		build := time.Since(t0)
		for _, b := range batchSizes {
			run := measureBatched(s, rects, b)
			run.BuildMS = ms(build)
			run.SpeedupVsSerial = run.QPS / rep.Serial.QPS
			if run.RowsMatched != rep.Serial.RowsMatched {
				return fmt.Errorf("shards=%d batch=%d matched %d rows, serial matched %d",
					k, b, run.RowsMatched, rep.Serial.RowsMatched)
			}
			rep.Runs = append(rep.Runs, run)
			printRun(fmt.Sprintf("shards=%-3d batch=%-3d", k, b), run)
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *v2json != "" {
		limits, err := parseIntList(*v2limits)
		if err != nil {
			return fmt.Errorf("-v2limits: %w", err)
		}
		if err := runLimitSweep(tab, fd, opt, *ds, *v2count, *v2knn, *workers, limits, *v2json); err != nil {
			return fmt.Errorf("v2 sweep: %w", err)
		}
	}
	return nil
}

// limitRun measures one Limit(k) configuration against the full-scan
// Collect baseline over the same workload.
type limitRun struct {
	Limit       int     `json:"limit"`
	FullMS      float64 `json:"full_collect_ms"`
	LimitedMS   float64 `json:"limit_ms"`
	Speedup     float64 `json:"speedup_vs_full_collect"`
	RowsPerFull float64 `json:"avg_rows_full"`
}

// queryV2Report is the JSON shape written to BENCH_query_v2.json: how much
// a Limit(k) query saves over collecting every match, on a sharded index,
// thanks to engine-level early termination.
type queryV2Report struct {
	Dataset string     `json:"dataset"`
	Rows    int        `json:"rows"`
	Queries int        `json:"queries"`
	KNN     int        `json:"knn"`
	Shards  int        `json:"shards"`
	Runs    []limitRun `json:"runs"`
}

// runLimitSweep times full-scan Collect versus Limit(k) Collect through
// the v2 builder over a deliberately broad rectangle workload.
func runLimitSweep(tab *dataset.Table, fd softfd.Result, opt core.Options, ds string, queries, knn, workers int, limits []int, jsonOut string) error {
	s, err := shard.BuildWithFD(tab, fd, opt, shard.Options{Workers: workers})
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 2)
	rects := gen.KNNRects(queries, knn)

	warmup(func(r index.Rect) { index.Count(s, r) }, rects)
	measure := func(run func(r index.Rect)) time.Duration {
		t0 := time.Now()
		for _, r := range rects {
			run(r)
		}
		return time.Since(t0)
	}

	var fullRows int64
	fullTimed := measure(func(r index.Rect) {
		fullRows += int64(len(coax.Collect(s, r)))
	})

	rep := queryV2Report{
		Dataset: ds,
		Rows:    tab.Len(),
		Queries: len(rects),
		KNN:     knn,
		Shards:  s.NumShards(),
	}
	avgFull := float64(fullRows) / float64(len(rects))
	fmt.Printf("v2 sweep: %d queries (%d-NN rects) on %d shards, avg %.0f rows/query\n",
		len(rects), knn, s.NumShards(), avgFull)

	for _, k := range limits {
		limited := measure(func(r index.Rect) {
			if _, err := coax.CollectLimit(s, r, k); err != nil {
				panic(err) // impossible: rect is valid by construction
			}
		})
		run := limitRun{
			Limit:       k,
			FullMS:      ms(fullTimed),
			LimitedMS:   ms(limited),
			RowsPerFull: avgFull,
		}
		if limited > 0 {
			run.Speedup = fullTimed.Seconds() / limited.Seconds()
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("limit=%-6d %10.1f ms  vs full %10.1f ms   %6.2fx speedup\n",
			k, run.LimitedMS, run.FullMS, run.Speedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonOut)
	return nil
}

// measureSerial times one-at-a-time execution on the calling goroutine.
func measureSerial(idx index.Interface, rects []index.Rect) runReport {
	warmup(func(r index.Rect) { index.Count(idx, r) }, rects)
	lat := make([]time.Duration, len(rects))
	var rows int64
	t0 := time.Now()
	for i, r := range rects {
		q0 := time.Now()
		idx.Query(r, func([]float64) { rows++ })
		lat[i] = time.Since(q0)
	}
	total := time.Since(t0)
	return report(1, 1, total, lat, rows)
}

// measureBatched times BatchQuery over consecutive slices of the workload.
// Every query in a batch is assigned the batch's completion latency — the
// time a caller of the batch endpoint would wait for its answer.
func measureBatched(s *shard.Sharded, rects []index.Rect, batch int) runReport {
	warmup(func(r index.Rect) { index.Count(s, r) }, rects)
	lat := make([]time.Duration, 0, len(rects))
	var rows int64
	t0 := time.Now()
	for off := 0; off < len(rects); off += batch {
		end := min(off+batch, len(rects))
		b0 := time.Now()
		s.BatchQuery(rects[off:end], func(int, []float64) { rows++ })
		d := time.Since(b0)
		for i := off; i < end; i++ {
			lat = append(lat, d)
		}
	}
	total := time.Since(t0)
	return report(s.NumShards(), batch, total, lat, rows)
}

// warmup touches the index with a slice of the workload so page faults and
// lazy allocations land outside the measured window.
func warmup(query func(index.Rect), rects []index.Rect) {
	n := min(len(rects), 100)
	for _, r := range rects[:n] {
		query(r)
	}
}

func report(shards, batch int, total time.Duration, lat []time.Duration, rows int64) runReport {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return runReport{
		Shards:      shards,
		Batch:       batch,
		QPS:         float64(len(lat)) / total.Seconds(),
		P50us:       us(percentile(lat, 0.50)),
		P99us:       us(percentile(lat, 0.99)),
		RowsMatched: rows,
	}
}

// percentile returns the p-quantile of ascending-sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func printRun(label string, r runReport) {
	line := fmt.Sprintf("%-22s %10.0f qps   p50 %8.1fµs   p99 %8.1fµs", label, r.QPS, r.P50us, r.P99us)
	if r.SpeedupVsSerial > 0 {
		line += fmt.Sprintf("   %5.2fx vs serial", r.SpeedupVsSerial)
	}
	fmt.Println(line)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be ≥ 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
