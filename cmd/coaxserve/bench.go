package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

// runReport is the measurement of one engine configuration over the whole
// query workload.
type runReport struct {
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"`
	QPS             float64 `json:"qps"`
	P50us           float64 `json:"p50_us"`
	P99us           float64 `json:"p99_us"`
	RowsMatched     int64   `json:"rows_matched"`
	BuildMS         float64 `json:"build_ms"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// serveReport is the JSON shape written to BENCH_serve.json and consumed
// by CI to track the serving-layer perf trajectory. Serial is the
// single-shard one-query-at-a-time baseline every run is compared against.
type serveReport struct {
	Dataset    string          `json:"dataset"`
	Rows       int             `json:"rows"`
	Queries    int             `json:"queries"`
	KNN        int             `json:"knn"`
	CPUs       int             `json:"cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Serial     runReport       `json:"serial"`
	Runs       []runReport     `json:"runs"`
	Obs        *obsBenchReport `json:"obs,omitempty"`
	HotKey     *hotKeyReport   `json:"hotkey,omitempty"`
}

// obsBenchReport measures what the observability layer costs: the same
// one-query-at-a-time workload on the same sharded index with metrics off
// versus on. The acceptance bar is overhead within a few percent of p50.
type obsBenchReport struct {
	DisabledP50us float64 `json:"disabled_p50_us"`
	EnabledP50us  float64 `json:"enabled_p50_us"`
	OverheadPct   float64 `json:"overhead_pct"`
}

// hotKeyReport measures what the result cache buys on a hot-key workload: a
// zipfian draw over a small pool of distinct rectangles (skew s≈1.2, the
// classic hot-key shape) is answered twice with the identical request
// sequence — straight through the engine, then through the serving-tier
// cache. Answers must match exactly; the speedup and hit rate are the
// serving-tier headline numbers CI tracks.
type hotKeyReport struct {
	DistinctRects int     `json:"distinct_rects"`
	Requests      int     `json:"requests"`
	ZipfS         float64 `json:"zipf_s"`
	UncachedQPS   float64 `json:"uncached_qps"`
	UncachedP99us float64 `json:"uncached_p99_us"`
	CachedQPS     float64 `json:"cached_qps"`
	CachedP99us   float64 `json:"cached_p99_us"`
	HitRate       float64 `json:"hit_rate"`
	Speedup       float64 `json:"speedup_vs_uncached"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 500000, "dataset size")
		queries = fs.Int("queries", 2000, "workload size")
		knn     = fs.Int("knn", 100, "rectangles bound the k nearest records of a random seed row (the paper's §8.1.2 range workload)")
		shards  = fs.String("shards", "1,2,4,8", "comma-separated shard counts to sweep")
		batch   = fs.String("batch", "1,16,64", "comma-separated batch sizes to sweep")
		workers = fs.Int("workers", 0, "fan-out workers per call (0: one per CPU)")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")

		v2json   = fs.String("v2json", "", "write the Query-API-v2 limit-k early-termination sweep as JSON to this path")
		v2limits = fs.String("v2limits", "1,10,100,1000", "comma-separated limits for the v2 sweep")
		v2knn    = fs.Int("v2knn", 5000, "rectangle selectivity (k-NN) of the v2 sweep workload — broad on purpose, so early termination has rows to skip")
		v2count  = fs.Int("v2queries", 200, "v2 sweep workload size")

		metricsCheck = fs.Bool("metrics-check", false, "drive /query through an in-process HTTP server and fail unless coax_queries_total advanced by exactly the request count")
		metricsDump  = fs.String("metrics-dump", "", "write the final /metrics scrape (Prometheus text) to this path")
	)
	fs.Parse(args)

	shardCounts, err := parseIntList(*shards)
	if err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	batchSizes, err := parseIntList(*batch)
	if err != nil {
		return fmt.Errorf("-batch: %w", err)
	}

	tab, err := makeTable(*ds, *rows)
	if err != nil {
		return err
	}
	opt := core.DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 1)
	rects := gen.KNNRects(*queries, *knn)

	rep := serveReport{
		Dataset:    *ds,
		Rows:       tab.Len(),
		Queries:    len(rects),
		KNN:        *knn,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Serial single-shard baseline: one plain COAX, one query at a time on
	// one goroutine — the engine this PR's serving layer replaces.
	t0 := time.Now()
	single, err := core.BuildWithFD(tab, fd, opt)
	if err != nil {
		return err
	}
	singleBuild := time.Since(t0)
	rep.Serial = measureSerial(single, rects)
	rep.Serial.BuildMS = ms(singleBuild)
	fmt.Printf("dataset %s, %d rows, %d queries (%d-NN rects), %d CPU(s)\n",
		rep.Dataset, rep.Rows, rep.Queries, rep.KNN, rep.CPUs)
	printRun("serial", rep.Serial)

	// obsIdx is the first sharded index of the sweep, reused for the
	// observability overhead measurement and the metrics consistency check.
	var obsIdx *shard.Sharded
	for _, k := range shardCounts {
		t0 = time.Now()
		s, err := shard.BuildWithFD(tab, fd, opt, shard.Options{NumShards: k, Workers: *workers})
		if err != nil {
			return fmt.Errorf("building %d shards: %w", k, err)
		}
		if obsIdx == nil {
			obsIdx = s
		}
		build := time.Since(t0)
		for _, b := range batchSizes {
			run := measureBatched(s, rects, b)
			run.BuildMS = ms(build)
			run.SpeedupVsSerial = run.QPS / rep.Serial.QPS
			if run.RowsMatched != rep.Serial.RowsMatched {
				return fmt.Errorf("shards=%d batch=%d matched %d rows, serial matched %d",
					k, b, run.RowsMatched, rep.Serial.RowsMatched)
			}
			rep.Runs = append(rep.Runs, run)
			printRun(fmt.Sprintf("shards=%-3d batch=%-3d", k, b), run)
		}
	}

	rep.Obs = measureObsOverhead(obsIdx, rects)
	fmt.Printf("obs overhead: p50 %.1fµs instrumented vs %.1fµs off (%+.2f%%)\n",
		rep.Obs.EnabledP50us, rep.Obs.DisabledP50us, rep.Obs.OverheadPct)

	rep.HotKey, err = measureHotKey(obsIdx, rects)
	if err != nil {
		return err
	}
	fmt.Printf("hot-key sweep: cached %.0f qps vs uncached %.0f qps (%.1fx, hit rate %.0f%%, %d rects, zipf s=%.1f)\n",
		rep.HotKey.CachedQPS, rep.HotKey.UncachedQPS, rep.HotKey.Speedup,
		rep.HotKey.HitRate*100, rep.HotKey.DistinctRects, rep.HotKey.ZipfS)

	if *metricsCheck || *metricsDump != "" {
		if err := runMetricsCheck(obsIdx, *metricsCheck, *metricsDump, rects); err != nil {
			return err
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *v2json != "" {
		limits, err := parseIntList(*v2limits)
		if err != nil {
			return fmt.Errorf("-v2limits: %w", err)
		}
		if err := runLimitSweep(tab, fd, opt, *ds, *v2count, *v2knn, *workers, limits, *v2json); err != nil {
			return fmt.Errorf("v2 sweep: %w", err)
		}
	}
	return nil
}

// limitRun measures one Limit(k) configuration against the full-scan
// Collect baseline over the same workload.
type limitRun struct {
	Limit       int     `json:"limit"`
	FullMS      float64 `json:"full_collect_ms"`
	LimitedMS   float64 `json:"limit_ms"`
	Speedup     float64 `json:"speedup_vs_full_collect"`
	RowsPerFull float64 `json:"avg_rows_full"`
}

// queryV2Report is the JSON shape written to BENCH_query_v2.json: how much
// a Limit(k) query saves over collecting every match, on a sharded index,
// thanks to engine-level early termination.
type queryV2Report struct {
	Dataset string     `json:"dataset"`
	Rows    int        `json:"rows"`
	Queries int        `json:"queries"`
	KNN     int        `json:"knn"`
	Shards  int        `json:"shards"`
	Runs    []limitRun `json:"runs"`
}

// runLimitSweep times full-scan Collect versus Limit(k) Collect through
// the v2 builder over a deliberately broad rectangle workload.
func runLimitSweep(tab *dataset.Table, fd softfd.Result, opt core.Options, ds string, queries, knn, workers int, limits []int, jsonOut string) error {
	s, err := shard.BuildWithFD(tab, fd, opt, shard.Options{Workers: workers})
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 2)
	rects := gen.KNNRects(queries, knn)

	warmup(func(r index.Rect) { index.Count(s, r) }, rects)
	measure := func(run func(r index.Rect)) time.Duration {
		t0 := time.Now()
		for _, r := range rects {
			run(r)
		}
		return time.Since(t0)
	}

	var fullRows int64
	fullTimed := measure(func(r index.Rect) {
		fullRows += int64(len(coax.Collect(s, r)))
	})

	rep := queryV2Report{
		Dataset: ds,
		Rows:    tab.Len(),
		Queries: len(rects),
		KNN:     knn,
		Shards:  s.NumShards(),
	}
	avgFull := float64(fullRows) / float64(len(rects))
	fmt.Printf("v2 sweep: %d queries (%d-NN rects) on %d shards, avg %.0f rows/query\n",
		len(rects), knn, s.NumShards(), avgFull)

	for _, k := range limits {
		limited := measure(func(r index.Rect) {
			if _, err := coax.CollectLimit(s, r, k); err != nil {
				panic(err) // impossible: rect is valid by construction
			}
		})
		run := limitRun{
			Limit:       k,
			FullMS:      ms(fullTimed),
			LimitedMS:   ms(limited),
			RowsPerFull: avgFull,
		}
		if limited > 0 {
			run.Speedup = fullTimed.Seconds() / limited.Seconds()
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("limit=%-6d %10.1f ms  vs full %10.1f ms   %6.2fx speedup\n",
			k, run.LimitedMS, run.FullMS, run.Speedup)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonOut)
	return nil
}

// measureObsOverhead runs the serial workload on the sharded index twice —
// once with the metrics kill-switch off, once on — and reports the p50
// delta. The enabled pass runs second so the process is left in the default
// (instrumented) state.
func measureObsOverhead(s *shard.Sharded, rects []index.Rect) *obsBenchReport {
	obs.SetEnabled(false)
	off := measureSerial(s, rects)
	obs.SetEnabled(true)
	on := measureSerial(s, rects)
	r := &obsBenchReport{DisabledP50us: off.P50us, EnabledP50us: on.P50us}
	if off.P50us > 0 {
		r.OverheadPct = (on.P50us - off.P50us) / off.P50us * 100
	}
	return r
}

// measureHotKey times the identical zipfian request sequence through the
// bare engine and through the result cache. Counts only (the limit-0 wire
// shape), so both passes do the same scan work on a miss and the comparison
// isolates what caching saves. Returns an error when the two passes
// disagree on any answer — a cached result may be faster, never different.
func measureHotKey(s *shard.Sharded, rects []index.Rect) (*hotKeyReport, error) {
	const (
		poolSize = 64
		requests = 4000
		zipfS    = 1.2
	)
	pool := rects[:min(poolSize, len(rects))]
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(pool)-1))
	seq := make([]int, requests)
	for i := range seq {
		seq[i] = int(zipf.Uint64())
	}
	count := func(r index.Rect) int {
		n := 0
		s.Query(r, func([]float64) { n++ })
		return n
	}
	warmup(func(r index.Rect) { count(r) }, pool)

	uncachedAns := make([]int, requests)
	lat := make([]time.Duration, requests)
	t0 := time.Now()
	for i, qi := range seq {
		q0 := time.Now()
		uncachedAns[i] = count(pool[qi])
		lat[i] = time.Since(q0)
	}
	uncachedTotal := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep := &hotKeyReport{
		DistinctRects: len(pool),
		Requests:      requests,
		ZipfS:         zipfS,
		UncachedQPS:   float64(requests) / uncachedTotal.Seconds(),
		UncachedP99us: us(percentile(lat, 0.99)),
	}

	qc := serve.NewQueryCache(s, 4096)
	keys := make([]string, len(pool))
	for i, r := range pool {
		keys[i] = serve.Key(r, 0, false, "")
	}
	lat = make([]time.Duration, requests)
	t0 = time.Now()
	for i, qi := range seq {
		q0 := time.Now()
		r := pool[qi]
		v, _, err := qc.Do(keys[qi], r, func() (any, error) { return count(r), nil })
		if err != nil {
			return nil, err
		}
		lat[i] = time.Since(q0)
		if v.(int) != uncachedAns[i] {
			return nil, fmt.Errorf("hot-key sweep: request %d answered %d cached vs %d uncached", i, v.(int), uncachedAns[i])
		}
	}
	cachedTotal := time.Since(t0)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.CachedQPS = float64(requests) / cachedTotal.Seconds()
	rep.CachedP99us = us(percentile(lat, 0.99))
	if st := qc.Stats(); st.Hits+st.Misses > 0 {
		rep.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	if uncachedTotal > 0 && cachedTotal > 0 {
		rep.Speedup = uncachedTotal.Seconds() / cachedTotal.Seconds()
	}
	return rep, nil
}

// runMetricsCheck stands up the real serving mux on a loopback listener,
// posts the workload through POST /query, and scrapes GET /metrics before
// and after: coax_queries_total must advance by exactly the request count.
// With dump set, the final scrape is also written to disk so CI can archive
// the full exposition alongside the perf reports.
func runMetricsCheck(s *shard.Sharded, check bool, dump string, rects []index.Rect) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	th := coax.DefaultThresholds()
	st := newServerState(s, coax.NewCompactor(s, th, 0), th)
	srv := &http.Server{Handler: newServerMux(st)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	_, before, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	n := min(len(rects), 200)
	for _, r := range rects[:n] {
		blob, err := json.Marshal(rectToRequest(r))
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("metrics check: POST /query returned %d", resp.StatusCode)
		}
	}
	body, after, err := scrapeMetrics(base)
	if err != nil {
		return err
	}
	if check && after-before != float64(n) {
		return fmt.Errorf("metrics check FAILED: coax_queries_total advanced by %.0f over %d requests", after-before, n)
	}
	fmt.Printf("metrics check: coax_queries_total advanced by %.0f over %d requests\n", after-before, n)
	if dump != "" {
		if err := os.WriteFile(dump, []byte(body), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dump)
	}
	return nil
}

// scrapeMetrics fetches /metrics and extracts coax_queries_total.
func scrapeMetrics(base string) (body string, queries float64, err error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	body = string(blob)
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "coax_queries_total "); ok {
			v, perr := strconv.ParseFloat(rest, 64)
			if perr != nil {
				return body, 0, fmt.Errorf("unparseable coax_queries_total sample %q", line)
			}
			return body, v, nil
		}
	}
	return body, 0, nil
}

// rectToRequest converts a workload rectangle into its wire form, counting
// only (limit 0) so the check measures query accounting, not row transfer.
func rectToRequest(r index.Rect) rectRequest {
	lim := 0
	req := rectRequest{
		Limit: &lim,
		Min:   make([]*float64, len(r.Min)),
		Max:   make([]*float64, len(r.Max)),
	}
	for i := range r.Min {
		if !math.IsInf(r.Min[i], -1) {
			v := r.Min[i]
			req.Min[i] = &v
		}
		if !math.IsInf(r.Max[i], 1) {
			v := r.Max[i]
			req.Max[i] = &v
		}
	}
	return req
}

// measureSerial times one-at-a-time execution on the calling goroutine.
func measureSerial(idx index.Interface, rects []index.Rect) runReport {
	warmup(func(r index.Rect) { index.Count(idx, r) }, rects)
	lat := make([]time.Duration, len(rects))
	var rows int64
	t0 := time.Now()
	for i, r := range rects {
		q0 := time.Now()
		idx.Query(r, func([]float64) { rows++ })
		lat[i] = time.Since(q0)
	}
	total := time.Since(t0)
	return report(1, 1, total, lat, rows)
}

// measureBatched times BatchQuery over consecutive slices of the workload.
// Every query in a batch is assigned the batch's completion latency — the
// time a caller of the batch endpoint would wait for its answer.
func measureBatched(s *shard.Sharded, rects []index.Rect, batch int) runReport {
	warmup(func(r index.Rect) { index.Count(s, r) }, rects)
	lat := make([]time.Duration, 0, len(rects))
	var rows int64
	t0 := time.Now()
	for off := 0; off < len(rects); off += batch {
		end := min(off+batch, len(rects))
		b0 := time.Now()
		s.BatchQuery(rects[off:end], func(int, []float64) { rows++ })
		d := time.Since(b0)
		for i := off; i < end; i++ {
			lat = append(lat, d)
		}
	}
	total := time.Since(t0)
	return report(s.NumShards(), batch, total, lat, rows)
}

// warmup touches the index with a slice of the workload so page faults and
// lazy allocations land outside the measured window.
func warmup(query func(index.Rect), rects []index.Rect) {
	n := min(len(rects), 100)
	for _, r := range rects[:n] {
		query(r)
	}
}

func report(shards, batch int, total time.Duration, lat []time.Duration, rows int64) runReport {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return runReport{
		Shards:      shards,
		Batch:       batch,
		QPS:         float64(len(lat)) / total.Seconds(),
		P50us:       us(percentile(lat, 0.50)),
		P99us:       us(percentile(lat, 0.99)),
		RowsMatched: rows,
	}
}

// percentile returns the p-quantile of ascending-sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func printRun(label string, r runReport) {
	line := fmt.Sprintf("%-22s %10.0f qps   p50 %8.1fµs   p99 %8.1fµs", label, r.QPS, r.P50us, r.P99us)
	if r.SpeedupVsSerial > 0 {
		line += fmt.Sprintf("   %5.2fx vs serial", r.SpeedupVsSerial)
	}
	fmt.Println(line)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1000 }

func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be ≥ 1", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
