// Command coaxserve serves a sharded COAX index over HTTP/JSON and
// benchmarks the sharded engine under load.
//
// Usage:
//
//	coaxserve serve -dataset osm -rows 500000 -shards 8 -addr :8080 -save osm-sharded.coax
//	coaxserve serve -in osm-sharded.coax -compact-interval 30s
//	coaxserve serve -in osm.v3 -addr :8080      # v3 snapshots serve memory-mapped
//	coaxserve serve -in osm-sharded.coax -debug-addr :6060 -slowlog-threshold 50ms -access-log
//	coaxserve serve -in osm-sharded.coax -cache-size 8192 -max-inflight 64 -queue-timeout 100ms
//	coaxserve bench -rows 500000 -shards 1,2,4,8 -batch 1,16,64 -json BENCH_serve.json -metrics-check
//	coaxserve mutbench -rows 200000 -shards 4 -json BENCH_mutation.json
//	coaxserve aggbench -rows 200000 -selectivities 0.01,0.1,0.5 -json BENCH_agg.json
//	coaxserve node -addr 127.0.0.1:7401 -peers 127.0.0.1:7401,127.0.0.1:7402 -shards 16 -replication 2
//	coaxserve node -addr 127.0.0.1:7401 -peers ... -in osm.v3   # every node builds from one snapshot
//	coaxserve router -addr :8080 -nodes 127.0.0.1:7401,127.0.0.1:7402 -shards 16 -replication 2
//	coaxserve clusterbench -rows 100000 -nodes 1,2,3 -straggler 30ms -json BENCH_cluster.json
//
// The serve mode loads a sharded snapshot (or builds one over a synthetic
// dataset at startup) and answers:
//
//	GET  /healthz  liveness probe; ?verbose=1 adds lifecycle epoch, stale
//	               shard count, snapshot version, rows/shards, and uptime
//	GET  /stats    index shape plus lifecycle health: outlier/tombstone
//	               ratios, model drift, per-shard rebuild epochs, staleness
//	GET  /metrics  Prometheus text exposition of every metric family:
//	               query (latency, pages/rows scanned, early stops),
//	               mutation (insert/delete/update, compactions), lifecycle
//	               (rebuilds, replay sizes, compactor sweeps), build
//	               (rows/sec, phase durations, peak heap), HTTP, and the
//	               index-health gauges (outlier/tombstone ratio, epoch)
//	GET  /debug/vars
//	               the same registry as an expvar JSON map (under "coax")
//	GET  /debug/slowlog
//	               ring buffer of the most recent queries slower than
//	               -slowlog-threshold, each with its full EXPLAIN report
//	POST /query    {"min":[...],"max":[...],"limit":100} — null bounds are
//	               unconstrained; responds {"count":N,"rows":[[...],...]}.
//	               "early":true stops the scan once limit rows are found
//	               (count then equals rows returned) and requires a positive
//	               limit — "early" with limit ≤ 0 is a 400; ?explain=true
//	               adds an execution report (soft-FD constraint translation,
//	               primary/outlier scan split, shards pruned, wall time) and
//	               bypasses the result cache. NaN, inverted, or
//	               wrong-dimension bounds are a 400. "agg" switches the
//	               query to an aggregation pushdown: {"agg":{"op":"sum",
//	               "col":"lon"}} (ops count/sum/min/max/avg, optional
//	               "group_by") answers {"count":N,"agg":{...}} with no rows,
//	               folded inside the batch scan kernels; "agg" with "early"
//	               is a 400.
//	POST /batch    {"queries":[{...},...]} — one fan-out for the whole
//	               batch (?explain=true or "early" run per-query instead)
//	POST /insert   {"row":[...]} — routes the row to its shard
//	POST /delete   {"row":[...]} — removes one exact-match row (404 if absent)
//	POST /update   {"old":[...],"new":[...]} — replaces one row
//	POST /compact  rebuild stale shards online now (?force=true: all shards)
//
// A background compactor (-compact-interval) polls the same staleness
// thresholds and rebuilds drifted shards automatically — the self-healing
// loop; queries keep being served from the old epoch during every rebuild.
//
// The serving tier hardens /query and /batch (internal/serve): -cache-size
// bounds a sharded-LRU result cache keyed on the canonicalized rectangle
// and invalidated by per-shard mutation versions — a cached answer is never
// stale; identical concurrent /query misses coalesce onto one engine
// fan-out. -max-inflight caps concurrently executing queries: excess
// requests wait in a bounded queue (-max-queue, -queue-timeout) and are
// shed with 429 + Retry-After when it overflows or the deadline passes.
// /stats reports cache hit/eviction and admission shed counters alongside
// the matching /metrics families.
//
// -debug-addr serves net/http/pprof, expvar, and /metrics on a second
// listener kept off the query port. -access-log writes one line per request
// to stderr. Shutdown is graceful: SIGINT/SIGTERM stop the listener and
// drain in-flight requests for up to -drain-timeout.
//
// The bench mode generates a rectangle workload, measures a serial
// single-shard baseline, then sweeps shard count × batch size through
// BatchQuery, reporting QPS and p50/p99 latency (see BENCH_serve.json). It
// also measures the observability overhead (instrumented vs kill-switched
// p50, the report's "obs" section) and, with -metrics-check, serves the
// workload through an in-process HTTP server and fails unless
// coax_queries_total advanced by exactly the request count
// (-metrics-dump archives the final scrape).
// The mutbench mode measures query QPS/p99 before a drift-inducing write
// workload, during the online rebuild it triggers, and after the epoch
// swap (see BENCH_mutation.json).
//
// The aggbench mode measures the aggregation pushdown (POST /query with
// "agg", Query.Aggregate in the library) against the Collect-then-fold
// idiom it replaces: COUNT and SUM across a selectivity sweep, a GROUP BY
// on the airline carrier column, and a sharded repeat, failing unless both
// paths agree on every answer (see BENCH_agg.json).
//
// The node and router modes deploy the engine as a cluster
// (internal/cluster): each node process hosts the global shards consistent
// hashing assigns it behind the binary wire protocol, and the router
// scatter-gathers queries across nodes — with hedged replica reads, circuit
// breaking, and failover — while serving the same HTTP/JSON API as serve
// mode, including its result cache, request coalescing, and admission
// control. The clusterbench mode sweeps node count and measures what
// hedging buys under an injected straggler (see BENCH_cluster.json).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "mutbench":
		err = cmdMutBench(os.Args[2:])
	case "aggbench":
		err = cmdAggBench(os.Args[2:])
	case "node":
		err = cmdNode(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "clusterbench":
		err = cmdClusterBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "coaxserve: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coaxserve:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `coaxserve — sharded concurrent COAX query serving

subcommands:
  serve        answer HTTP/JSON queries and mutations from a sharded index
  bench        measure QPS and latency vs. shard count and batch size
  mutbench     measure query latency before/during/after an online rebuild
  aggbench     measure aggregation pushdown vs. Collect-then-fold
  node         host this process's consistent-hash share of a cluster's
               shards behind the binary wire protocol
  router       serve the HTTP/JSON API by scatter-gathering across cluster
               nodes, with hedged replica reads and failover
  clusterbench measure cluster QPS vs. node count and hedged-read p99
               under an injected straggler

run 'coaxserve <subcommand> -h' for flags`)
}
