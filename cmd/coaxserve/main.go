// Command coaxserve serves a sharded COAX index over HTTP/JSON and
// benchmarks the sharded engine under load.
//
// Usage:
//
//	coaxserve serve -dataset osm -rows 500000 -shards 8 -addr :8080 -save osm-sharded.coax
//	coaxserve serve -in osm-sharded.coax
//	coaxserve bench -rows 500000 -shards 1,2,4,8 -batch 1,16,64 -json BENCH_serve.json
//
// The serve mode loads a sharded snapshot (or builds one over a synthetic
// dataset at startup) and answers:
//
//	GET  /healthz  liveness probe
//	GET  /stats    index shape: rows, dims, shards, partition, overheads
//	POST /query    {"min":[...],"max":[...],"limit":100} — null bounds are
//	               unconstrained; responds {"count":N,"rows":[[...],...]}
//	POST /batch    {"queries":[{...},...]} — one fan-out for the whole batch
//	POST /insert   {"row":[...]} — routes the row to its shard
//
// The bench mode generates a rectangle workload, measures a serial
// single-shard baseline, then sweeps shard count × batch size through
// BatchQuery, reporting QPS and p50/p99 latency (see BENCH_serve.json).
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "coaxserve: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coaxserve:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `coaxserve — sharded concurrent COAX query serving

subcommands:
  serve   answer HTTP/JSON queries from a sharded index
  bench   measure QPS and latency vs. shard count and batch size

run 'coaxserve <subcommand> -h' for flags`)
}
