package main

// Serving-tier observability tests: /metrics exposition format, slow-query
// capture, verbose health, and graceful drain. The metric registry is
// process-global, so counter assertions work on deltas, never absolutes.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/snapshot"
)

// scrape fetches /metrics and returns the body plus the value of one sample
// (0 when the series has not appeared yet).
func scrape(t *testing.T, base, sample string) (string, float64) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(blob)
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return body, v
		}
	}
	return body, 0
}

func TestMetricsExposition(t *testing.T) {
	idx, srv := testServer(t)

	_, before := scrape(t, srv.URL, "coax_queries_total")
	const n = 7
	lim := 0
	for i := 0; i < n; i++ {
		var resp queryResponse
		postJSON(t, srv.URL+"/query", rectRequest{Limit: &lim}, &resp)
		if resp.Count != idx.Len() {
			t.Fatalf("query %d count = %d, want %d", i, resp.Count, idx.Len())
		}
	}
	body, after := scrape(t, srv.URL, "coax_queries_total")

	if after-before != n {
		t.Errorf("coax_queries_total advanced by %v, want %d", after-before, n)
	}

	// Every plane's families are present: query, mutation, lifecycle,
	// build, and HTTP.
	for _, fam := range []string{
		"coax_queries_total", "coax_query_seconds", "coax_shard_scan_seconds",
		"coax_scan_pages_total", "coax_inserts_total", "coax_compactions_total",
		"coax_rebuilds_total", "coax_builds_total", "coax_build_phase_seconds",
		"coax_http_requests_total", "coax_http_request_seconds",
		"coax_live_rows", "coax_outlier_ratio", "coax_tombstone_ratio",
	} {
		if c := strings.Count(body, "# HELP "+fam+" "); c != 1 {
			t.Errorf("family %s: %d HELP lines, want 1", fam, c)
		}
		if c := strings.Count(body, "# TYPE "+fam+" "); c != 1 {
			t.Errorf("family %s: %d TYPE lines, want 1", fam, c)
		}
	}

	// Histogram exposition is well formed: cumulative monotone buckets
	// ending at +Inf == _count.
	var (
		lastBucket float64
		infSeen    bool
		count      = -1.0
	)
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, `coax_http_request_seconds_bucket{le="`); ok {
			le, valStr, _ := strings.Cut(rest, `"} `)
			v, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < lastBucket {
				t.Errorf("bucket le=%s value %v below previous %v (not cumulative)", le, v, lastBucket)
			}
			lastBucket = v
			if le == "+Inf" {
				infSeen = true
			}
		}
		if rest, ok := strings.CutPrefix(line, "coax_http_request_seconds_count "); ok {
			count, _ = strconv.ParseFloat(rest, 64)
		}
	}
	if !infSeen {
		t.Error("coax_http_request_seconds has no +Inf bucket")
	}
	if count < 0 || count != lastBucket {
		t.Errorf("coax_http_request_seconds _count %v != +Inf bucket %v", count, lastBucket)
	}

	// The live-rows gauge reflects this server's index (gauges re-register
	// onto the newest server).
	if _, rows := scrape(t, srv.URL, "coax_live_rows"); int(rows) != idx.Len() {
		t.Errorf("coax_live_rows = %v, index holds %d", rows, idx.Len())
	}

	// expvar mirrors the same registry under the "coax" var.
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		Coax map[string]any `json:"coax"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	resp.Body.Close()
	if _, ok := vars.Coax["coax_queries_total"]; !ok {
		t.Error("/debug/vars has no coax.coax_queries_total")
	}
}

func TestSlowlogCapture(t *testing.T) {
	idx, srv := testServer(t)

	// The shared test server has no slowlog: the endpoint says so.
	resp, err := http.Get(srv.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled slowlog status %d, want 404", resp.StatusCode)
	}

	// Arm a 1ns threshold: every query is slow, capacity 3 forces the ring
	// to wrap.
	th := coax.DefaultThresholds()
	st := newServerState(idx, coax.NewCompactor(idx, th, 0), th)
	st.slowlog = newSlowLog(time.Nanosecond, 3)
	slow := httptest.NewServer(newServerMux(st))
	t.Cleanup(slow.Close)

	lim := 0
	for i := 0; i < 5; i++ {
		postJSON(t, slow.URL+"/query", rectRequest{Limit: &lim}, nil)
	}

	resp, err = http.Get(slow.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	var log slowlogResponse
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatalf("decoding slowlog: %v", err)
	}
	resp.Body.Close()

	if log.Total != 5 {
		t.Errorf("slowlog total = %d, want 5", log.Total)
	}
	if len(log.Entries) != 3 {
		t.Fatalf("slowlog holds %d entries, ring capacity is 3", len(log.Entries))
	}
	for i, e := range log.Entries {
		if e.Explain == nil {
			t.Fatalf("entry %d has no explain report", i)
		}
		if got := e.Explain.Primary.RowsMatched + e.Explain.Outlier.RowsMatched; got != int64(idx.Len()) {
			t.Errorf("entry %d explain matched %d rows, index holds %d", i, got, idx.Len())
		}
		if i > 0 && e.At.After(log.Entries[i-1].At) {
			t.Errorf("entries not newest-first: [%d] %v after [%d] %v", i, e.At, i-1, log.Entries[i-1].At)
		}
	}

	// The clients never asked for explain, so no report leaked into the
	// query responses — verify on one more query.
	var qr queryResponse
	postJSON(t, slow.URL+"/query", rectRequest{Limit: &lim}, &qr)
	if qr.Explain != nil {
		t.Error("slowlog-armed query returned an explain report without explain=true")
	}
}

func TestHealthzVerbose(t *testing.T) {
	idx, srv := testServer(t)
	resp, err := http.Get(srv.URL + "/healthz?verbose=1")
	if err != nil {
		t.Fatal(err)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" {
		t.Errorf("status %q", h.Status)
	}
	if h.Rows != idx.Len() || h.Shards != idx.NumShards() {
		t.Errorf("healthz rows/shards = %d/%d, index = %d/%d", h.Rows, h.Shards, idx.Len(), idx.NumShards())
	}
	if h.SnapshotVersion != snapshot.Version {
		t.Errorf("snapshot version %d, want %d (built at startup)", h.SnapshotVersion, snapshot.Version)
	}
	if h.Epoch != idx.LifecycleStats().Epoch {
		t.Errorf("healthz epoch %d, engine reports %d", h.Epoch, idx.LifecycleStats().Epoch)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", h.UptimeSeconds)
	}
}

func TestDebugMux(t *testing.T) {
	idx, _ := testServer(t)
	th := coax.DefaultThresholds()
	dbg := httptest.NewServer(newDebugMux(newServerState(idx, coax.NewCompactor(idx, th, 0), th)))
	t.Cleanup(dbg.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/metrics", "/debug/vars"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestGracefulDrain triggers shutdown while a request is in flight and
// checks that the request still completes and the server exits cleanly.
func TestGracefulDrain(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "drained")
	})
	srv := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	served := make(chan error, 1)
	go func() { served <- serveUntilShutdown(srv, ln, ctx, 5*time.Second) }()

	got := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		got <- resp.Status + " " + string(body)
	}()

	// Shutdown begins while the request is parked in the handler, then the
	// handler is released — a clean drain serves it to completion.
	<-inHandler
	cancel()
	time.Sleep(50 * time.Millisecond) // let Shutdown begin before releasing
	close(release)

	select {
	case body := <-got:
		if body != "200 OK drained" {
			t.Errorf("in-flight request got %q, want it served to completion", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("serveUntilShutdown returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilShutdown never returned")
	}
}

// TestDrainTimeout: a handler that outlives the drain window surfaces as an
// error instead of hanging shutdown forever.
func TestDrainTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inHandler := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, _ *http.Request) {
		close(inHandler)
		<-release
	})
	srv := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())

	served := make(chan error, 1)
	go func() { served <- serveUntilShutdown(srv, ln, ctx, 20*time.Millisecond) }()
	go http.Get("http://" + ln.Addr().String() + "/stuck")

	<-inHandler
	cancel()
	select {
	case err := <-served:
		if err == nil || !strings.Contains(err.Error(), "drain timeout") {
			t.Errorf("stuck handler: serveUntilShutdown returned %v, want drain-timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilShutdown hung past the drain timeout")
	}
}
