package main

// Tests for the serving-tier hardening layer as mounted on the HTTP
// surface: result-cache hits and mutation invalidation end to end, 429
// shedding with Retry-After, the early+non-positive-limit rejection, the
// unknown-snapshot-version report, and the response-encode error counter.

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/serve"
)

// testServerHardened is testServer with the hardening layer switched on.
func testServerHardened(t *testing.T, cacheSize int, adm *serve.Admission) (*coax.ShardedIndex, *serverState, *httptest.Server) {
	t.Helper()
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(8000))
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	th := coax.DefaultThresholds()
	st := newServerState(idx, coax.NewCompactor(idx, th, 0), th)
	if cacheSize > 0 {
		st.qcache = serve.NewQueryCache(idx, cacheSize)
	}
	st.adm = adm
	srv := httptest.NewServer(newServerMux(st))
	t.Cleanup(srv.Close)
	return idx, st, srv
}

func getStats(t *testing.T, base string) statsResponse {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// A repeated query is served from cache; a mutation invalidates it and the
// next response reflects the new data — the end-to-end stale-answer check.
func TestQueryCacheEndToEnd(t *testing.T) {
	idx, _, srv := testServerHardened(t, 256, nil)

	one := 1
	var first queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &one}, &first)
	if first.Count != idx.Len() || len(first.Rows) != 1 {
		t.Fatalf("seed query: count %d rows %d", first.Count, len(first.Rows))
	}

	var second queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &one}, &second)
	if second.Count != first.Count {
		t.Fatalf("repeat query count %d, want %d", second.Count, first.Count)
	}
	st := getStats(t, srv.URL)
	if st.Cache == nil {
		t.Fatal("/stats has no cache section with the cache enabled")
	}
	if st.Cache.Hits < 1 || st.Cache.Entries < 1 {
		t.Fatalf("cache stats after repeat = %+v, want ≥1 hit and ≥1 entry", *st.Cache)
	}

	// Insert a duplicate of a live row: the full-rect entry must be
	// invalidated, not served, and the new count must include the insert.
	row := first.Rows[0]
	postJSON(t, srv.URL+"/insert", insertRequest{Row: row}, nil)
	var third queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &one}, &third)
	if third.Count != first.Count+1 {
		t.Fatalf("post-insert count %d, want %d (stale cache answer?)", third.Count, first.Count+1)
	}
	if st := getStats(t, srv.URL); st.Cache.StaleEvictions < 1 {
		t.Fatalf("no stale eviction recorded after mutation: %+v", *st.Cache)
	}

	// Explain requests bypass the cache and still carry a report.
	var explained queryResponse
	postJSON(t, srv.URL+"/query?explain=true", rectRequest{Limit: &one}, &explained)
	if explained.Explain == nil {
		t.Fatal("explain=true response has no report")
	}
}

// With one execution slot held and no queue, /query and /batch shed with
// 429 and a Retry-After hint; releasing the slot restores service.
func TestAdmissionSheds429(t *testing.T) {
	adm := serve.NewAdmission(1, 0, 50*time.Millisecond)
	_, _, srv := testServerHardened(t, 0, adm)

	if err := adm.Acquire(nil); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, srv.URL+"/query", rectRequest{}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("/query under overload: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	resp = postJSON(t, srv.URL+"/batch", batchRequest{Queries: []rectRequest{{}}}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("/batch under overload: status %d, want 429", resp.StatusCode)
	}
	adm.Release()

	var ok queryResponse
	if resp := postJSON(t, srv.URL+"/query", rectRequest{}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
	st := getStats(t, srv.URL)
	if st.Admission == nil || st.Admission.MaxInflight != 1 {
		t.Fatalf("/stats admission section = %+v", st.Admission)
	}
}

// Regression: "early": true used to be silently ignored when the limit was
// not positive (the engine only arms early termination for limit > 0). It
// is now a 400 on /query and on each /batch element.
func TestEarlyRequiresPositiveLimit(t *testing.T) {
	_, srv := testServer(t)

	zero, neg, seven := 0, -1, 7
	for _, q := range []rectRequest{
		{Early: true, Limit: &zero},
		{Early: true, Limit: &neg},
	} {
		if resp := postJSON(t, srv.URL+"/query", q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("early with limit %d: status %d, want 400", *q.Limit, resp.StatusCode)
		}
	}
	// A positive limit stays valid, as does early with the default limit.
	var ok queryResponse
	if resp := postJSON(t, srv.URL+"/query", rectRequest{Early: true, Limit: &seven}, &ok); resp.StatusCode != http.StatusOK {
		t.Fatalf("early with limit 7: status %d", resp.StatusCode)
	}
	if ok.Count != 7 || len(ok.Rows) != 7 {
		t.Errorf("early response count %d rows %d, want 7/7", ok.Count, len(ok.Rows))
	}

	b := batchRequest{Queries: []rectRequest{{Limit: &seven}, {Early: true, Limit: &zero}}}
	if resp := postJSON(t, srv.URL+"/batch", b, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch with early+limit=0 element: status %d, want 400", resp.StatusCode)
	}
}

// Regression: an unreadable snapshot header used to report the *current*
// format version — claiming knowledge the server does not have. It now
// reports 0 ("unknown").
func TestSnapshotVersionUnknown(t *testing.T) {
	if v := snapshotVersionOf(filepath.Join(t.TempDir(), "missing.coax")); v != 0 {
		t.Errorf("missing file: version %d, want 0", v)
	}
	garbled := filepath.Join(t.TempDir(), "garbled.coax")
	if err := os.WriteFile(garbled, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if v := snapshotVersionOf(garbled); v != 0 {
		t.Errorf("garbled header: version %d, want 0", v)
	}
}

// Regression: writeJSON used to discard encoding errors. An unencodable
// value must land in coax_http_response_errors_total.
func TestWriteJSONErrorCounted(t *testing.T) {
	before := httpRespErrors.Value()
	writeJSON(httptest.NewRecorder(), http.StatusOK, math.NaN())
	if got := httpRespErrors.Value() - before; got != 1 {
		t.Fatalf("response-error counter advanced by %v, want 1", got)
	}
}
