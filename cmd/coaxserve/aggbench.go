package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

// The aggbench mode measures what aggregation pushdown buys over the
// Collect-then-fold idiom it replaces: the same rectangle workload answered
// twice, once by materializing every matching row and folding the aggregate
// in the caller, once through Query.Aggregate where the batch kernels fold
// selection bitmaps and no row is ever built. The sweep crosses selectivity
// (via k-NN rectangle size) with COUNT and SUM, runs a GROUP BY on the
// airline carrier column, and repeats the headline point on a sharded
// engine. Answers must agree — bit-identically on the single-index runs,
// where the batch fold visits rows in exactly the row path's order — or the
// bench fails, so CI tracks speedups only over proven-correct kernels.

// aggSweepRun is one (selectivity, op) cell of the pushdown sweep.
type aggSweepRun struct {
	TargetSelectivity float64 `json:"target_selectivity"`
	KNN               int     `json:"knn"`
	Op                string  `json:"op"`
	AvgRowsMatched    float64 `json:"avg_rows_matched"`
	CollectFoldMS     float64 `json:"collect_fold_ms"`
	PushdownMS        float64 `json:"pushdown_ms"`
	Speedup           float64 `json:"speedup_vs_collect_fold"`
	BitIdentical      bool    `json:"bit_identical"`
}

// aggGroupByRun measures a grouped aggregate against Collect plus a
// caller-side map fold.
type aggGroupByRun struct {
	Dataset       string  `json:"dataset"`
	Rows          int     `json:"rows"`
	Op            string  `json:"op"`
	Column        string  `json:"column"`
	GroupBy       string  `json:"group_by"`
	Groups        int     `json:"groups"`
	CollectFoldMS float64 `json:"collect_fold_ms"`
	PushdownMS    float64 `json:"pushdown_ms"`
	Speedup       float64 `json:"speedup_vs_collect_fold"`
	BitIdentical  bool    `json:"bit_identical"`
}

// aggShardedRun repeats one sweep point on the sharded engine, whose
// gather-point merge keeps the pushdown deterministic but whose concurrent
// Collect baseline folds in arrival order — so SUM is checked within a
// relative tolerance instead of bitwise.
type aggShardedRun struct {
	Shards        int     `json:"shards"`
	KNN           int     `json:"knn"`
	Op            string  `json:"op"`
	CollectFoldMS float64 `json:"collect_fold_ms"`
	PushdownMS    float64 `json:"pushdown_ms"`
	Speedup       float64 `json:"speedup_vs_collect_fold"`
	MaxRelError   float64 `json:"max_rel_error"`
}

// aggReport is the JSON shape written to BENCH_agg.json and consumed by CI
// to track the aggregation-pushdown perf trajectory.
type aggReport struct {
	Dataset    string          `json:"dataset"`
	Rows       int             `json:"rows"`
	Queries    int             `json:"queries"`
	SumColumn  string          `json:"sum_column"`
	CPUs       int             `json:"cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Runs       []aggSweepRun   `json:"runs"`
	GroupBy    *aggGroupByRun  `json:"group_by,omitempty"`
	Sharded    []aggShardedRun `json:"sharded,omitempty"`
}

func cmdAggBench(args []string) error {
	fs := flag.NewFlagSet("aggbench", flag.ExitOnError)
	var (
		rows    = fs.Int("rows", 200000, "OSM dataset size")
		queries = fs.Int("queries", 30, "rectangles per sweep point")
		sels    = fs.String("selectivities", "0.01,0.1,0.5", "comma-separated target selectivities (fraction of rows per rectangle)")
		sumCol  = fs.String("sumcol", "lon", "column SUM aggregates over")
		shards  = fs.Int("shards", 4, "shard count for the sharded repeat (0 skips it)")
		grpRows = fs.Int("grouprows", 200000, "airline dataset size for the GROUP BY run (0 skips it)")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")
	)
	fs.Parse(args)

	fractions, err := parseFloatList(*sels)
	if err != nil {
		return fmt.Errorf("-selectivities: %w", err)
	}

	tab, err := makeTable("osm", *rows)
	if err != nil {
		return err
	}
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		return err
	}
	rep := aggReport{
		Dataset:    "osm",
		Rows:       tab.Len(),
		Queries:    *queries,
		SumColumn:  *sumCol,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	fmt.Printf("dataset osm, %d rows, %d queries per point, SUM over %q\n",
		rep.Rows, rep.Queries, rep.SumColumn)

	gen := workload.NewGenerator(tab, 7)
	for _, frac := range fractions {
		k := int(frac * float64(tab.Len()))
		if k < 1 {
			k = 1
		}
		rects := gen.KNNRects(*queries, k)
		for _, op := range []string{"count", "sum"} {
			run, err := measureAggSweep(idx, tab.Cols, rects, op, *sumCol, frac, k)
			if err != nil {
				return err
			}
			rep.Runs = append(rep.Runs, run)
			fmt.Printf("sel=%-5.2g %-5s  collect+fold %8.2fms  pushdown %8.2fms  %6.2fx  (%.0f rows/query)\n",
				frac, op, run.CollectFoldMS, run.PushdownMS, run.Speedup, run.AvgRowsMatched)
		}
	}

	if *grpRows > 0 {
		g, err := measureAggGroupBy(*grpRows)
		if err != nil {
			return err
		}
		rep.GroupBy = g
		fmt.Printf("group by %s: avg(%s) over %d groups  collect+fold %8.2fms  pushdown %8.2fms  %6.2fx\n",
			g.GroupBy, g.Column, g.Groups, g.CollectFoldMS, g.PushdownMS, g.Speedup)
	}

	if *shards > 0 {
		// Repeat the 10%-selectivity point (or the sweep's middle fraction)
		// on the sharded engine.
		frac := fractions[len(fractions)/2]
		k := int(frac * float64(tab.Len()))
		rects := gen.KNNRects(*queries, k)
		sidx, err := coax.BuildSharded(tab, coax.DefaultOptions(),
			coax.ShardOptions{NumShards: *shards})
		if err != nil {
			return err
		}
		for _, op := range []string{"count", "sum"} {
			run, err := measureAggSharded(sidx, tab.Cols, rects, op, *sumCol, *shards, k)
			if err != nil {
				return err
			}
			rep.Sharded = append(rep.Sharded, run)
			fmt.Printf("shards=%d %-5s  collect+fold %8.2fms  pushdown %8.2fms  %6.2fx\n",
				*shards, op, run.CollectFoldMS, run.PushdownMS, run.Speedup)
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// aggOf builds the Aggregation for one sweep op.
func aggOf(op, col string) (coax.Aggregation, error) {
	switch op {
	case "count":
		return coax.CountRows(), nil
	case "sum":
		return coax.Sum(col), nil
	default:
		return coax.Aggregation{}, fmt.Errorf("aggbench: unknown op %q", op)
	}
}

// collectFold is the baseline the pushdown is judged against: materialize
// every matching row, then fold the aggregate in the caller.
func collectFold(idx coax.Querier, r coax.Rect, op string, col int) (int64, float64) {
	rows := coax.Collect(idx, r)
	count := int64(len(rows))
	var sum float64
	if op == "sum" {
		for _, row := range rows {
			sum += row[col]
		}
	}
	return count, sum
}

// measureAggSweep times one (selectivity, op) point on the single-index
// engine and insists the two paths agree bit for bit — the batch fold
// visits rows in exactly the order Collect yields them, so even SUM must
// match exactly here.
func measureAggSweep(idx *coax.Index, cols []string, rects []index.Rect, op, sumCol string, frac float64, k int) (aggSweepRun, error) {
	run := aggSweepRun{TargetSelectivity: frac, KNN: k, Op: op, BitIdentical: true}
	agg, err := aggOf(op, sumCol)
	if err != nil {
		return run, err
	}
	col := colIndex(cols, sumCol)
	if op == "sum" && col < 0 {
		return run, fmt.Errorf("aggbench: unknown sum column %q", sumCol)
	}

	// Warmup both paths once so neither pays first-touch costs.
	collectFold(idx, rects[0], op, col)
	if _, err := coax.FromRect(rects[0]).Aggregate(idx, agg); err != nil {
		return run, err
	}

	baseCount := make([]int64, len(rects))
	baseSum := make([]float64, len(rects))
	t0 := time.Now()
	var totalRows int64
	for i, r := range rects {
		baseCount[i], baseSum[i] = collectFold(idx, r, op, col)
		totalRows += baseCount[i]
	}
	run.CollectFoldMS = ms(time.Since(t0))
	run.AvgRowsMatched = float64(totalRows) / float64(len(rects))

	t0 = time.Now()
	for i, r := range rects {
		res, err := coax.FromRect(r).Aggregate(idx, agg)
		if err != nil {
			return run, err
		}
		if res.Count != baseCount[i] {
			return run, fmt.Errorf("aggbench: %s query %d counted %d pushed down vs %d collected",
				op, i, res.Count, baseCount[i])
		}
		if op == "sum" && baseCount[i] > 0 &&
			math.Float64bits(res.Value) != math.Float64bits(baseSum[i]) {
			return run, fmt.Errorf("aggbench: sum query %d got %x pushed down vs %x collected",
				i, math.Float64bits(res.Value), math.Float64bits(baseSum[i]))
		}
	}
	run.PushdownMS = ms(time.Since(t0))
	if run.PushdownMS > 0 {
		run.Speedup = run.CollectFoldMS / run.PushdownMS
	}
	return run, nil
}

// measureAggGroupBy times avg(airtime) grouped by carrier on the airline
// dataset against Collect plus a caller-side map fold.
func measureAggGroupBy(rows int) (*aggGroupByRun, error) {
	run := &aggGroupByRun{
		Dataset: "airline", Rows: rows,
		Op: "avg", Column: "airtime", GroupBy: "carrier",
		BitIdentical: true,
	}
	tab, err := makeTable("airline", rows)
	if err != nil {
		return nil, err
	}
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		return nil, err
	}
	cols := tab.Cols
	airtime, carrier := colIndex(cols, run.Column), colIndex(cols, run.GroupBy)
	if airtime < 0 || carrier < 0 {
		return nil, fmt.Errorf("aggbench: airline table lacks %q/%q", run.Column, run.GroupBy)
	}
	r := coax.FullRect(tab.Dims())

	type cell struct {
		n   int64
		sum float64
	}
	fold := func() map[float64]*cell {
		groups := map[float64]*cell{}
		for _, row := range coax.Collect(idx, r) {
			c := groups[row[carrier]]
			if c == nil {
				c = &cell{}
				groups[row[carrier]] = c
			}
			c.n++
			c.sum += row[airtime]
		}
		return groups
	}
	fold() // warmup
	t0 := time.Now()
	groups := fold()
	run.CollectFoldMS = ms(time.Since(t0))

	q := func() (*coax.AggResult, error) {
		return coax.FromRect(r).GroupBy(run.GroupBy).Aggregate(idx, coax.Avg(run.Column))
	}
	if _, err := q(); err != nil { // warmup
		return nil, err
	}
	t0 = time.Now()
	res, err := q()
	if err != nil {
		return nil, err
	}
	run.PushdownMS = ms(time.Since(t0))
	run.Groups = len(res.Groups)
	if len(res.Groups) != len(groups) {
		return nil, fmt.Errorf("aggbench: group by found %d groups pushed down vs %d collected",
			len(res.Groups), len(groups))
	}
	for _, g := range res.Groups {
		c := groups[g.Key]
		if c == nil || c.n != g.Count ||
			math.Float64bits(c.sum/float64(c.n)) != math.Float64bits(g.Value) {
			return nil, fmt.Errorf("aggbench: group %g disagrees between paths", g.Key)
		}
	}
	if run.PushdownMS > 0 {
		run.Speedup = run.CollectFoldMS / run.PushdownMS
	}
	return run, nil
}

// measureAggSharded repeats one sweep point on the sharded engine. The
// concurrent Collect baseline folds rows in arrival order, so SUM is held
// to a relative tolerance; COUNT must still match exactly.
func measureAggSharded(idx *coax.ShardedIndex, cols []string, rects []index.Rect, op, sumCol string, shards, k int) (aggShardedRun, error) {
	run := aggShardedRun{Shards: shards, KNN: k, Op: op}
	agg, err := aggOf(op, sumCol)
	if err != nil {
		return run, err
	}
	col := colIndex(cols, sumCol)

	collectFold(idx, rects[0], op, col)
	if _, err := coax.FromRect(rects[0]).Aggregate(idx, agg); err != nil {
		return run, err
	}

	baseCount := make([]int64, len(rects))
	baseSum := make([]float64, len(rects))
	t0 := time.Now()
	for i, r := range rects {
		baseCount[i], baseSum[i] = collectFold(idx, r, op, col)
	}
	run.CollectFoldMS = ms(time.Since(t0))

	t0 = time.Now()
	for i, r := range rects {
		res, err := coax.FromRect(r).Aggregate(idx, agg)
		if err != nil {
			return run, err
		}
		if res.Count != baseCount[i] {
			return run, fmt.Errorf("aggbench: sharded %s query %d counted %d pushed down vs %d collected",
				op, i, res.Count, baseCount[i])
		}
		if op == "sum" && baseCount[i] > 0 {
			rel := math.Abs(res.Value-baseSum[i]) / math.Max(math.Abs(baseSum[i]), 1)
			if rel > run.MaxRelError {
				run.MaxRelError = rel
			}
			if rel > 1e-9 {
				return run, fmt.Errorf("aggbench: sharded sum query %d off by %g relative", i, rel)
			}
		}
	}
	run.PushdownMS = ms(time.Since(t0))
	if run.PushdownMS > 0 {
		run.Speedup = run.CollectFoldMS / run.PushdownMS
	}
	return run, nil
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if c == name {
			return i
		}
	}
	return -1
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("selectivity %g outside (0,1]", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
