package main

// Serving-tier observability: the HTTP metric families, the request
// middleware (latency, in-flight, access log), the slow-query ring buffer,
// the opt-in debug listener (pprof/expvar/metrics), and the graceful-
// shutdown helper. The engine-side families live in internal/obs/metrics.go
// and are updated by the engine itself; this file only adds what the HTTP
// layer can see.

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/snapshot"
)

// HTTP-plane metric families.
var (
	httpRequests   = obs.NewCounter("coax_http_requests_total", "HTTP requests served.")
	httpErrors     = obs.NewCounter("coax_http_errors_total", "HTTP responses with a 4xx or 5xx status.")
	httpRespErrors = obs.NewCounter("coax_http_response_errors_total", "Responses whose body failed to encode or send after the status was committed.")
	httpSeconds    = obs.NewHistogram("coax_http_request_seconds", "HTTP request latency in seconds.", 1e-5, 60)
	httpInflight   = obs.NewGauge("coax_http_inflight_requests", "HTTP requests currently being served.")
	slowQueries    = obs.NewCounter("coax_slow_queries_total", "Queries slower than the slow-query threshold.")
)

// serverState carries everything the HTTP handlers share: the index and its
// maintenance machinery, plus the serving-tier observability state.
type serverState struct {
	idx       *coax.ShardedIndex
	compactor *lifecycle.Compactor
	th        lifecycle.Thresholds

	start time.Time
	// snapVersion is the format version of the snapshot the server loaded,
	// or the current format version when the index was built at startup.
	snapVersion uint32

	slowlog   *slowLog // nil: slow-query logging disabled
	accessLog bool

	// Serving-tier hardening; either may be nil (layer disabled). The
	// zero-value state serves correctly without them — tests and the bench
	// opt in per scenario.
	qcache *serve.QueryCache
	adm    *serve.Admission
}

// newServerState wires a state with defaults (no slowlog, no access log) —
// the shape tests and the bench's in-process server use.
func newServerState(idx *coax.ShardedIndex, compactor *lifecycle.Compactor, th lifecycle.Thresholds) *serverState {
	return &serverState{
		idx:         idx,
		compactor:   compactor,
		th:          th,
		start:       time.Now(),
		snapVersion: snapshot.Version,
	}
}

// registerIndexGauges (re-)registers the callback-backed index-health
// gauges over st's index. Re-registration replaces the callbacks, so the
// most recently started server (last test server, in-process bench server)
// is the one the gauges describe.
func registerIndexGauges(st *serverState) {
	idx := st.idx
	obs.NewGaugeFunc("coax_live_rows", "Live rows across all shards.",
		func() float64 { return float64(idx.Len()) })
	obs.NewGaugeFunc("coax_outlier_ratio", "Fraction of live rows in the outlier partitions.",
		func() float64 { return idx.LifecycleStats().OutlierRatio })
	obs.NewGaugeFunc("coax_tombstone_ratio", "Fraction of stored rows that are tombstones.",
		func() float64 { return idx.LifecycleStats().TombstoneRatio })
	obs.NewGaugeFunc("coax_index_epoch", "Sum of shard rebuild epochs (advances on every rebuild).",
		func() float64 { return float64(idx.LifecycleStats().Epoch) })
	obs.NewGaugeFunc("coax_memory_overhead_bytes", "Index directory overhead beyond row payload.",
		func() float64 { return float64(idx.MemoryOverhead()) })
	obs.NewGaugeFunc("coax_primary_pages", "Grid pages across all primary partitions.",
		func() float64 {
			var pages int
			for i := 0; i < idx.NumShards(); i++ {
				idx.WithShard(i, func(c *core.COAX) error {
					if c.HasPrimary() {
						pages += c.Primary().NumCells()
					}
					return nil
				})
			}
			return float64(pages)
		})
	th := st.th
	obs.NewGaugeFunc("coax_stale_shards", "Shards currently stale under the serving thresholds.",
		func() float64 { return float64(len(idx.StaleShards(th))) })
}

// --- request middleware ---

// statusWriter captures the response status for metrics and access logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps h with the HTTP-plane metrics and, when enabled, a
// per-request access log line on stderr.
func (st *serverState) instrument(h http.Handler) http.Handler {
	return instrumentHandler(h, st.accessLog)
}

// instrumentHandler is the shared request middleware behind both the
// single-process serve mode and the cluster router mode.
func instrumentHandler(h http.Handler, accessLog bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		httpInflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		httpInflight.Add(-1)
		httpRequests.Inc()
		httpSeconds.Observe(elapsed.Seconds())
		if sw.status >= 400 {
			httpErrors.Inc()
		}
		if accessLog {
			fmt.Fprintf(os.Stderr, "%s %s %s %d %v\n",
				start.Format(time.RFC3339), req.Method, req.URL.Path, sw.status, elapsed.Round(time.Microsecond))
		}
	})
}

// --- slow-query log ---

// slowEntry is one logged slow query: when it ran, how long it took, and
// its full EXPLAIN report.
type slowEntry struct {
	At        time.Time     `json:"at"`
	ElapsedMS float64       `json:"elapsed_ms"`
	Explain   *coax.Explain `json:"explain"`
}

// slowLog is a fixed-size ring buffer of the most recent slow queries.
// Old entries are overwritten; Total keeps counting.
type slowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	buf   []slowEntry
	next  int
	total int64
}

func newSlowLog(threshold time.Duration, size int) *slowLog {
	if size <= 0 {
		size = 128
	}
	return &slowLog{threshold: threshold, buf: make([]slowEntry, 0, size)}
}

// observe records exp when the query exceeded the threshold.
func (l *slowLog) observe(exp *coax.Explain) {
	if l == nil || exp == nil || exp.Elapsed < l.threshold {
		return
	}
	slowQueries.Inc()
	e := slowEntry{At: time.Now(), ElapsedMS: float64(exp.Elapsed) / float64(time.Millisecond), Explain: exp}
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % len(l.buf)
	}
	l.total++
	l.mu.Unlock()
}

// entries returns the logged queries, newest first.
func (l *slowLog) entries() (out []slowEntry, total int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out = make([]slowEntry, 0, len(l.buf))
	// The ring holds [next..end) then [0..next) in age order; walk it
	// backwards for newest-first.
	for i := 0; i < len(l.buf); i++ {
		pos := (l.next - 1 - i + 2*len(l.buf)) % len(l.buf)
		out = append(out, l.buf[pos])
	}
	return out, l.total
}

type slowlogResponse struct {
	ThresholdMS float64     `json:"threshold_ms"`
	Total       int64       `json:"total"`
	Entries     []slowEntry `json:"entries"`
}

// --- endpoints ---

// addObsEndpoints mounts the observability surface on mux: /metrics
// (Prometheus text), /debug/vars (expvar), and /debug/slowlog.
func addObsEndpoints(mux *http.ServeMux, st *serverState) {
	obs.PublishExpvar()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.Default.WritePrometheus(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/slowlog", func(w http.ResponseWriter, _ *http.Request) {
		if st.slowlog == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("slow-query log disabled; start with -slowlog-threshold"))
			return
		}
		entries, total := st.slowlog.entries()
		writeJSON(w, http.StatusOK, slowlogResponse{
			ThresholdMS: float64(st.slowlog.threshold) / float64(time.Millisecond),
			Total:       total,
			Entries:     entries,
		})
	})
}

// newDebugMux builds the opt-in debug listener's handler: pprof, expvar,
// metrics, and the slowlog. Handlers are mounted explicitly so nothing
// leaks onto http.DefaultServeMux and nothing is served unless the
// operator passed -debug-addr.
func newDebugMux(st *serverState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	addObsEndpoints(mux, st)
	return mux
}

// serveUntilShutdown runs srv until it fails or ctx is cancelled (the
// SIGINT/SIGTERM path), then drains in-flight requests for at most drain
// before forcing the listener closed. A clean drain returns nil. ln may be
// nil, in which case srv listens on its own Addr; tests pass an ephemeral
// listener so they know the port.
func serveUntilShutdown(srv *http.Server, ln net.Listener, ctx context.Context, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if ln != nil {
			errc <- srv.Serve(ln)
		} else {
			errc <- srv.ListenAndServe()
		}
	}()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "shutting down: draining in-flight requests (up to %v)\n", drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("drain timeout exceeded: %w", err)
		}
		return nil
	}
}
