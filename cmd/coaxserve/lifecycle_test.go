package main

import (
	"encoding/json"
	"net/http"
	"os"
	"testing"
)

func TestDeleteAndUpdateEndpoints(t *testing.T) {
	idx, srv := testServer(t)
	before := idx.Len()

	row := []float64{10, 20, 30, 40}
	var ok map[string]int
	postJSON(t, srv.URL+"/insert", insertRequest{Row: row}, &ok)
	if ok["rows"] != before+1 {
		t.Fatalf("insert: rows=%d", ok["rows"])
	}

	// Update the row, then delete the replacement.
	repl := []float64{11, 21, 31, 41}
	postJSON(t, srv.URL+"/update", updateRequest{Old: row, New: repl}, &ok)
	if ok["rows"] != before+1 || idx.Len() != before+1 {
		t.Fatalf("update changed row count: %d", ok["rows"])
	}
	if resp := postJSON(t, srv.URL+"/delete", insertRequest{Row: row}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleting the pre-update row: status %d, want 404", resp.StatusCode)
	}
	postJSON(t, srv.URL+"/delete", insertRequest{Row: repl}, &ok)
	if ok["rows"] != before || idx.Len() != before {
		t.Fatalf("delete: rows=%d, want %d", ok["rows"], before)
	}

	// Malformed mutations are 400s.
	if resp := postJSON(t, srv.URL+"/delete", insertRequest{Row: []float64{1}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short delete row: status %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/update", updateRequest{Old: repl, New: []float64{1}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short update row: status %d", resp.StatusCode)
	}
}

func TestStatsReportsLifecycle(t *testing.T) {
	idx, srv := testServer(t)

	// A few mutations so the counters are visibly non-zero.
	row := []float64{1, 2, 3, 4}
	if err := idx.Insert(row); err != nil {
		t.Fatal(err)
	}
	if err := idx.Delete(row); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Lifecycle.Inserts != 1 || st.Lifecycle.Deletes != 1 {
		t.Fatalf("lifecycle counters: %+v", st.Lifecycle)
	}
	if st.Lifecycle.LiveRows != idx.Len() {
		t.Fatalf("live rows %d, engine %d", st.Lifecycle.LiveRows, idx.Len())
	}
	if len(st.ShardEpochs) != idx.NumShards() {
		t.Fatalf("%d shard epochs for %d shards", len(st.ShardEpochs), idx.NumShards())
	}
}

func TestCompactEndpoint(t *testing.T) {
	idx, srv := testServer(t)

	// Nothing stale yet: a plain compact rebuilds nothing.
	var resp compactResponse
	postJSON(t, srv.URL+"/compact", struct{}{}, &resp)
	if len(resp.Rebuilt) != 0 || resp.Forced {
		t.Fatalf("idle compact: %+v", resp)
	}

	// Forced compaction rebuilds every shard and bumps every epoch.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/compact?force=true", nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	resp = compactResponse{}
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Forced || len(resp.Rebuilt) != idx.NumShards() {
		t.Fatalf("forced compact: %+v", resp)
	}
	for i, e := range resp.Epochs {
		if e != 1 {
			t.Fatalf("shard %d epoch %d after forced rebuild, want 1", i, e)
		}
	}
}

func TestMutBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("mutbench smoke is not short")
	}
	out := t.TempDir() + "/BENCH_mutation.json"
	err := cmdMutBench([]string{
		"-rows", "30000", "-shards", "2", "-queries", "150", "-knn", "50",
		"-query-workers", "2", "-json", out,
	})
	if err != nil {
		t.Fatalf("cmdMutBench: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep mutationReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Steady.QPS <= 0 || rep.During.QPS <= 0 || rep.After.QPS <= 0 {
		t.Fatalf("phase throughput missing: %+v", rep)
	}
	if rep.DriftOps == 0 || len(rep.RebuiltShards) == 0 {
		t.Fatalf("no drift or no rebuild: ops=%d rebuilt=%v", rep.DriftOps, rep.RebuiltShards)
	}
	if rep.OutlierRatioDrift <= rep.Thresholds.MaxOutlierRatio {
		t.Fatalf("drift never crossed the threshold: %+v", rep)
	}
	if rep.OutlierRatioHealed >= rep.OutlierRatioDrift {
		t.Fatalf("rebuild did not reduce the outlier ratio: %.3f → %.3f",
			rep.OutlierRatioDrift, rep.OutlierRatioHealed)
	}
	if rep.P99Blow <= 0 {
		t.Fatalf("p99 ratio not recorded: %+v", rep)
	}
}
