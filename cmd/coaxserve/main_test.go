package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"github.com/coax-index/coax/coax"
)

func testServer(t *testing.T) (*coax.ShardedIndex, *httptest.Server) {
	t.Helper()
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(8000))
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	th := coax.DefaultThresholds()
	srv := httptest.NewServer(newServerMux(newServerState(idx, coax.NewCompactor(idx, th, 0), th)))
	t.Cleanup(srv.Close)
	return idx, srv
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

func f(v float64) *float64 { return &v }

func TestHealthzAndStats(t *testing.T) {
	idx, srv := testServer(t)

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Rows != idx.Len() || st.Shards != idx.NumShards() || st.Dims != idx.Dims() {
		t.Errorf("stats = %+v, index = %d/%d/%d", st, idx.Len(), idx.NumShards(), idx.Dims())
	}
}

func TestQueryEndpoint(t *testing.T) {
	idx, srv := testServer(t)

	// Unconstrained query counts everything; default limit caps rows.
	var full queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{}, &full)
	if full.Count != idx.Len() {
		t.Errorf("full count = %d, want %d", full.Count, idx.Len())
	}
	if len(full.Rows) != defaultRowLimit {
		t.Errorf("default limit returned %d rows, want %d", len(full.Rows), defaultRowLimit)
	}

	// limit 0 means count only; the count must agree with the engine.
	lim := 0
	var countOnly queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &lim}, &countOnly)
	if countOnly.Count != idx.Len() || countOnly.Rows != nil {
		t.Errorf("count-only response: %+v", countOnly)
	}

	// A one-dimension window must match the engine's own answer.
	q := rectRequest{
		Min:   []*float64{nil, f(0), nil, nil},
		Max:   []*float64{nil, f(50000), nil, nil},
		Limit: &lim,
	}
	r := coax.FullRect(idx.Dims())
	r.Min[1], r.Max[1] = 0, 50000
	var window queryResponse
	postJSON(t, srv.URL+"/query", q, &window)
	if want := coax.Count(idx, r); window.Count != want {
		t.Errorf("window count = %d, want %d", window.Count, want)
	}

	// Malformed requests are 400s, not 500s.
	for _, bad := range []rectRequest{
		{Min: []*float64{f(1)}},                         // wrong dims
		{Max: []*float64{f(1), f(2), f(3), f(4), f(5)}}, // wrong dims
	} {
		if resp := postJSON(t, srv.URL+"/query", bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %+v: status %d", bad, resp.StatusCode)
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	idx, srv := testServer(t)
	lim := 5
	zero := 0
	req := batchRequest{Queries: []rectRequest{
		{Limit: &zero},
		{Min: []*float64{nil, f(1e12), nil, nil}, Limit: &zero}, // matches nothing
		{Limit: &lim},
	}}
	var resp batchResponse
	postJSON(t, srv.URL+"/batch", req, &resp)
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Count != idx.Len() {
		t.Errorf("batch[0] count = %d, want %d", resp.Results[0].Count, idx.Len())
	}
	if resp.Results[1].Count != 0 {
		t.Errorf("batch[1] count = %d, want 0", resp.Results[1].Count)
	}
	if resp.Results[2].Count != idx.Len() || len(resp.Results[2].Rows) != lim {
		t.Errorf("batch[2] = count %d rows %d, want count %d rows %d",
			resp.Results[2].Count, len(resp.Results[2].Rows), idx.Len(), lim)
	}

	// Oversized batches are rejected before they reach the engine.
	wide := batchRequest{Queries: make([]rectRequest, maxBatchQueries+1)}
	if r := postJSON(t, srv.URL+"/batch", wide, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch accepted: %d", r.StatusCode)
	}
}

func TestInsertEndpoint(t *testing.T) {
	idx, srv := testServer(t)
	before := idx.Len()
	var ok map[string]int
	postJSON(t, srv.URL+"/insert", insertRequest{Row: []float64{1, 2, 3, 4}}, &ok)
	if ok["rows"] != before+1 || idx.Len() != before+1 {
		t.Errorf("rows after insert = %d (engine %d), want %d", ok["rows"], idx.Len(), before+1)
	}
	// Wrong arity and non-finite values are rejected.
	if resp := postJSON(t, srv.URL+"/insert", insertRequest{Row: []float64{1}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short row accepted: %d", resp.StatusCode)
	}
	var naughty struct {
		Row []any `json:"row"`
	}
	naughty.Row = []any{1.0, "NaN", 3.0, 4.0}
	if resp := postJSON(t, srv.URL+"/insert", naughty, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric row accepted: %d", resp.StatusCode)
	}
}

func TestOpenIndexWrapsSingleSnapshot(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(3000))
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/single.coax"
	if err := coax.SaveFile(path, single); err != nil {
		t.Fatal(err)
	}
	idx, err := openIndex(path, "", "", 0, 0, 2, 0)
	if err != nil {
		t.Fatalf("openIndex(single snapshot): %v", err)
	}
	if idx.NumShards() != 1 || idx.Len() != tab.Len() {
		t.Errorf("wrapped index: %d shards, %d rows", idx.NumShards(), idx.Len())
	}
}

// TestOpenIndexServesV3Snapshot covers serve mode's -in path for the v3
// memory-mapped format: openIndex must return a serving layer whose
// answers match the in-memory engine it was saved from, and /healthz
// version reporting must say 3.
func TestOpenIndexServesV3Snapshot(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(4000))
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		path := fmt.Sprintf("%s/v3-%v.coax", t.TempDir(), compress)
		if err := coax.SaveFileV3(path, single, compress); err != nil {
			t.Fatal(err)
		}
		idx, err := openIndex(path, "", "", 0, 0, 2, 0)
		if err != nil {
			t.Fatalf("openIndex(v3, compress=%v): %v", compress, err)
		}
		if idx.Len() != tab.Len() {
			t.Errorf("compress=%v: served %d rows, want %d", compress, idx.Len(), tab.Len())
		}
		r := coax.FullRect(tab.Dims())
		r.Max[0] = tab.Row(tab.Len() / 2)[0] // a real value: a nonempty partial rect
		nMapped, err := coax.FromRect(r).Count(idx)
		if err != nil {
			t.Fatal(err)
		}
		nHeap, err := coax.FromRect(r).Count(single)
		if err != nil {
			t.Fatal(err)
		}
		if nMapped != nHeap {
			t.Errorf("compress=%v: mapped count %d, heap %d", compress, nMapped, nHeap)
		}
		if v := snapshotVersionOf(path); v != coax.SnapshotVersionV3 {
			t.Errorf("compress=%v: snapshotVersionOf = %d, want %d", compress, v, coax.SnapshotVersionV3)
		}
	}
}

func TestBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	dir := t.TempDir()
	out := dir + "/BENCH_serve.json"
	prom := dir + "/metrics.prom"
	err := cmdBench([]string{
		"-rows", "20000", "-queries", "60", "-knn", "50",
		"-shards", "1,2", "-batch", "1,8", "-json", out,
		"-metrics-check", "-metrics-dump", prom,
	})
	if err != nil {
		t.Fatalf("cmdBench: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep serveReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Serial.QPS <= 0 || len(rep.Runs) != 4 {
		t.Errorf("report shape: serial qps %v, %d runs", rep.Serial.QPS, len(rep.Runs))
	}
	for _, run := range rep.Runs {
		if run.RowsMatched != rep.Serial.RowsMatched {
			t.Errorf("run %+v matched %d rows, serial %d", run, run.RowsMatched, rep.Serial.RowsMatched)
		}
	}
	if rep.Obs == nil || rep.Obs.EnabledP50us <= 0 || rep.Obs.DisabledP50us <= 0 {
		t.Errorf("obs overhead section missing or empty: %+v", rep.Obs)
	}
	if rep.HotKey == nil {
		t.Fatal("hotkey section missing")
	}
	if rep.HotKey.CachedQPS <= 0 || rep.HotKey.UncachedQPS <= 0 || rep.HotKey.Requests <= 0 {
		t.Errorf("hotkey section empty: %+v", *rep.HotKey)
	}
	if rep.HotKey.HitRate <= 0.5 {
		t.Errorf("hot-key hit rate %.2f — the zipfian pool should hit far more than half", rep.HotKey.HitRate)
	}
	dump, err := os.ReadFile(prom)
	if err != nil {
		t.Fatalf("-metrics-dump wrote nothing: %v", err)
	}
	if !bytes.Contains(dump, []byte("# TYPE coax_queries_total counter")) {
		t.Error("metrics dump has no coax_queries_total family")
	}
}

// TestQueryValidationRejectsInvertedBounds is the regression test for the
// v2 validation rule: a rectangle whose min exceeds its max on any
// dimension would silently match nothing, so it is rejected with a 400.
func TestQueryValidationRejectsInvertedBounds(t *testing.T) {
	_, srv := testServer(t)
	bad := rectRequest{
		Min: []*float64{nil, f(100), nil, nil},
		Max: []*float64{nil, f(50), nil, nil},
	}
	if resp := postJSON(t, srv.URL+"/query", bad, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted bounds accepted with status %d", resp.StatusCode)
	}
	// The same rule holds inside a batch.
	wide := batchRequest{Queries: []rectRequest{{}, bad}}
	if resp := postJSON(t, srv.URL+"/batch", wide, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batched inverted bounds accepted with status %d", resp.StatusCode)
	}
}

// TestQueryExplain exercises the explain=true flag: the response gains an
// execution report showing the fan-out and scan counters.
func TestQueryExplain(t *testing.T) {
	idx, srv := testServer(t)
	lim := 0
	var resp queryResponse
	postJSON(t, srv.URL+"/query?explain=true", rectRequest{Limit: &lim}, &resp)
	if resp.Explain == nil {
		t.Fatal("explain=true returned no report")
	}
	exp := resp.Explain
	if exp.ShardsProbed+exp.ShardsPruned != idx.NumShards() {
		t.Errorf("explain shards probed %d + pruned %d, want %d total",
			exp.ShardsProbed, exp.ShardsPruned, idx.NumShards())
	}
	if got := exp.Primary.RowsMatched + exp.Outlier.RowsMatched; got != int64(idx.Len()) {
		t.Errorf("explain matched %d rows, index holds %d", got, idx.Len())
	}
	if !exp.Complete {
		t.Error("full scan reported incomplete")
	}

	// Without the flag there is no report.
	var plain queryResponse
	postJSON(t, srv.URL+"/query", rectRequest{Limit: &lim}, &plain)
	if plain.Explain != nil {
		t.Error("explain report returned without explain=true")
	}

	// Batch explain: one report per query.
	var batch batchResponse
	postJSON(t, srv.URL+"/batch?explain=true", batchRequest{Queries: []rectRequest{{Limit: &lim}, {Limit: &lim}}}, &batch)
	if len(batch.Results) != 2 {
		t.Fatalf("%d batch results, want 2", len(batch.Results))
	}
	for i, res := range batch.Results {
		if res.Explain == nil {
			t.Errorf("batch[%d] has no explain report", i)
		}
	}
}

// TestQueryEarlyTermination exercises "early": true — the scan stops once
// limit rows are found, and the count reflects the rows returned.
func TestQueryEarlyTermination(t *testing.T) {
	idx, srv := testServer(t)
	lim := 7
	var resp queryResponse
	postJSON(t, srv.URL+"/query?explain=true", rectRequest{Limit: &lim, Early: true}, &resp)
	if resp.Count != lim || len(resp.Rows) != lim {
		t.Fatalf("early query = count %d, %d rows; want %d of an index of %d",
			resp.Count, len(resp.Rows), lim, idx.Len())
	}
	if resp.Explain == nil || !resp.Explain.Limited || resp.Explain.Complete {
		t.Errorf("early explain = %+v, want limited incomplete", resp.Explain)
	}
}
