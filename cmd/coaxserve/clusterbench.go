package main

// The clusterbench mode measures the distributed tier (internal/cluster):
// query QPS and latency as the node count grows with the dataset fixed,
// and what hedged replica reads buy under an injected straggler — one
// replica delaying every request while the router either waits for it
// (hedging off) or races the shard's backup replica after a fixed delay
// (hedging on). Nodes and router run in one process over loopback TCP, so
// the numbers include the full wire protocol but no physical network.
//
// The report lands in BENCH_cluster.json (CI's perf-reports-cluster
// artifact) and is diffed by scripts/benchdiff in the benchgate macro
// phase: qps must not drop, p50/p99 must not grow.

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/cluster"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

// clusterLatRun is one measured configuration's latency profile.
type clusterLatRun struct {
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

// clusterRun is one point of the node-count sweep. The qps lane streams
// every matching row through the wire protocol (transfer-bound: more
// nodes mostly add protocol overhead when they share one machine); the
// agg_qps lane pushes a COUNT down to the nodes, so only per-shard
// partials cross the wire and the scan parallelism of extra nodes shows.
type clusterRun struct {
	Nodes       int     `json:"nodes"`
	Replication int     `json:"replication"`
	QPS         float64 `json:"qps"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	AggQPS      float64 `json:"agg_qps"`
	AggP50us    float64 `json:"agg_p50_us"`
	AggP99us    float64 `json:"agg_p99_us"`
	Speedup     float64 `json:"speedup_vs_first,omitempty"`
	AggSpeedup  float64 `json:"agg_speedup_vs_first,omitempty"`
}

// hedgeReport compares hedged against unhedged reads under a straggler.
// straggler_ms and hedge_delay_ms are sweep parameters, not measurements —
// benchdiff skips them explicitly.
type hedgeReport struct {
	Nodes        int           `json:"nodes"`
	Replication  int           `json:"replication"`
	StragglerMS  float64       `json:"straggler_ms"`
	HedgeDelayMS float64       `json:"hedge_delay_ms"`
	Unhedged     clusterLatRun `json:"unhedged"`
	Hedged       clusterLatRun `json:"hedged"`
	P99Speedup   float64       `json:"p99_speedup"`
}

// clusterReport is the JSON shape written to BENCH_cluster.json.
type clusterReport struct {
	Dataset      string       `json:"dataset"`
	Rows         int          `json:"rows"`
	Queries      int          `json:"queries"`
	KNN          int          `json:"knn"`
	GlobalShards int          `json:"global_shards"`
	Concurrency  int          `json:"concurrency"`
	Runs         []clusterRun `json:"runs"`
	Hedge        *hedgeReport `json:"hedge,omitempty"`
}

func cmdClusterBench(args []string) error {
	fs := flag.NewFlagSet("clusterbench", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 100000, "dataset size")
		queries = fs.Int("queries", 300, "workload size")
		knn     = fs.Int("knn", 200, "rectangles bound the k nearest records of a random seed row")
		shards  = fs.Int("shards", 16, "cluster-wide global shard count K")
		nodes   = fs.String("nodes", "1,2,3", "comma-separated node counts to sweep")
		rf      = fs.Int("replication", 2, "replication factor (clamped to the node count per sweep point)")
		conc    = fs.Int("concurrency", 8, "client goroutines driving the router")

		localShards = fs.Int("local-shards", 2, "local sub-shards per hosted global shard")
		straggler   = fs.Duration("straggler", 30*time.Millisecond, "injected per-request delay on one replica for the hedged-vs-unhedged comparison (0 skips it)")
		hedgeDelay  = fs.Duration("hedge-delay", 5*time.Millisecond, "fixed hedge delay for the comparison (adaptive p99 needs a warm history a short bench does not have)")
		jsonOut     = fs.String("json", "", "also write the report as JSON to this path")
	)
	fs.Parse(args)

	nodeCounts, err := parseIntList(*nodes)
	if err != nil {
		return fmt.Errorf("-nodes: %w", err)
	}
	sort.Ints(nodeCounts)

	tab, err := makeTable(*ds, *rows)
	if err != nil {
		return err
	}
	gen := workload.NewGenerator(tab, 1)
	rects := gen.KNNRects(*queries, *knn)

	rep := clusterReport{
		Dataset:      *ds,
		Rows:         tab.Len(),
		Queries:      len(rects),
		KNN:          *knn,
		GlobalShards: *shards,
		Concurrency:  *conc,
	}
	fmt.Printf("cluster sweep: %s, %d rows, %d global shards, %d queries (%d-NN rects), %d client(s)\n",
		*ds, tab.Len(), *shards, len(rects), *knn, *conc)

	var firstRows int64 = -1
	for _, n := range nodeCounts {
		rfEff := min(*rf, n)
		bc, err := startBenchCluster(tab, *shards, n, rfEff, *localShards)
		if err != nil {
			return fmt.Errorf("starting %d-node cluster: %w", n, err)
		}
		rt, err := cluster.NewRouter(bc.addrs, *shards, rfEff)
		if err != nil {
			bc.close()
			return err
		}
		lat, matched, err := measureCluster(rt, rects, *conc)
		var aggLat clusterLatRun
		var aggMatched int64
		if err == nil {
			aggLat, aggMatched, err = measureClusterAgg(rt, rects, *conc)
		}
		rt.Close()
		bc.close()
		if err != nil {
			return fmt.Errorf("%d-node sweep: %w", n, err)
		}
		// Every configuration answers the identical workload; a drifting
		// row count means the distributed scan dropped or duplicated rows.
		if matched != aggMatched {
			return fmt.Errorf("%d-node sweep: row streaming matched %d rows, COUNT pushdown %d", n, matched, aggMatched)
		}
		if firstRows < 0 {
			firstRows = matched
		} else if matched != firstRows {
			return fmt.Errorf("%d-node sweep matched %d rows, first sweep matched %d", n, matched, firstRows)
		}
		run := clusterRun{
			Nodes: n, Replication: rfEff,
			QPS: lat.QPS, P50us: lat.P50us, P99us: lat.P99us,
			AggQPS: aggLat.QPS, AggP50us: aggLat.P50us, AggP99us: aggLat.P99us,
		}
		if len(rep.Runs) > 0 {
			run.Speedup = lat.QPS / rep.Runs[0].QPS
			run.AggSpeedup = aggLat.QPS / rep.Runs[0].AggQPS
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Printf("nodes=%-2d rf=%d   rows %9.0f qps (p99 %8.1fµs)   count %9.0f qps (p99 %8.1fµs)",
			n, rfEff, lat.QPS, lat.P99us, aggLat.QPS, aggLat.P99us)
		if run.AggSpeedup > 0 {
			fmt.Printf("   %5.2fx vs %d node(s)", run.AggSpeedup, rep.Runs[0].Nodes)
		}
		fmt.Println()
	}

	// Hedged vs unhedged under a straggler needs a second replica to race,
	// so it runs on the largest swept cluster that supports rf >= 2.
	maxNodes := nodeCounts[len(nodeCounts)-1]
	if *straggler > 0 && maxNodes >= 2 && *rf >= 2 {
		h, err := measureHedging(tab, rects, *shards, maxNodes, min(*rf, maxNodes), *localShards, *conc, *straggler, *hedgeDelay)
		if err != nil {
			return err
		}
		rep.Hedge = h
		fmt.Printf("straggler %v on one replica (hedge delay %v):\n", *straggler, *hedgeDelay)
		fmt.Printf("  unhedged   %10.0f qps   p50 %8.1fµs   p99 %8.1fµs\n", h.Unhedged.QPS, h.Unhedged.P50us, h.Unhedged.P99us)
		fmt.Printf("  hedged     %10.0f qps   p50 %8.1fµs   p99 %8.1fµs   (p99 %.1fx better)\n",
			h.Hedged.QPS, h.Hedged.P50us, h.Hedged.P99us, h.P99Speedup)
	} else if *straggler > 0 {
		fmt.Println("hedging comparison skipped: needs at least 2 nodes and -replication 2")
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}

// benchCluster is an in-process cluster: n nodes on loopback listeners.
type benchCluster struct {
	nodes []*cluster.Node
	addrs []string
}

func (bc *benchCluster) close() {
	for _, n := range bc.nodes {
		n.Close()
	}
}

// startBenchCluster builds and serves an n-node cluster over tab: each
// node materializes exactly the global shards consistent hashing assigns
// it, identical to what n separate processes would build.
func startBenchCluster(tab *coax.Table, shards, n, rf, localShards int) (*benchCluster, error) {
	bc := &benchCluster{}
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			bc.close()
			return nil, err
		}
		lns[i] = ln
		bc.addrs = append(bc.addrs, ln.Addr().String())
	}
	ring, err := cluster.NewRing(bc.addrs, 0)
	if err != nil {
		bc.close()
		return nil, err
	}
	so := coax.DefaultShardOptions()
	so.NumShards = localShards
	for i, addr := range bc.addrs {
		hosted := ring.HostedShards(addr, shards, rf)
		engines, err := cluster.BuildShards(tab, hosted, shards, coax.DefaultOptions(), so)
		if err != nil {
			bc.close()
			return nil, err
		}
		node, err := cluster.NewNode(engines, shards)
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.nodes = append(bc.nodes, node)
		go node.Serve(lns[i])
	}
	return bc, nil
}

// measureCluster drives the workload through the router from conc client
// goroutines, streaming every matching row, and reports QPS and the
// per-query latency percentiles.
func measureCluster(rt *cluster.Router, rects []index.Rect, conc int) (clusterLatRun, int64, error) {
	return measureWorkload(func(r index.Rect) (int64, error) {
		var n int64
		_, err := rt.Exec(r, index.Spec{}, func([]float64) bool { n++; return true })
		return n, err
	}, rects, conc)
}

// measureClusterAgg runs the same workload as COUNT pushdowns: nodes fold
// their shards locally and only partials cross the wire.
func measureClusterAgg(rt *cluster.Router, rects []index.Rect, conc int) (clusterLatRun, int64, error) {
	aspec := index.AggSpec{Op: index.AggCount, Col: -1, Group: -1}
	return measureWorkload(func(r index.Rect) (int64, error) {
		st, _, err := rt.ExecAgg(r, index.Spec{}, aspec)
		if err != nil {
			return 0, err
		}
		return st.All.Count, nil
	}, rects, conc)
}

// measureWorkload times one query shape over the workload from conc
// client goroutines, summing whatever per-query count do reports.
func measureWorkload(do func(index.Rect) (int64, error), rects []index.Rect, conc int) (clusterLatRun, int64, error) {
	for _, r := range rects[:min(len(rects), 50)] {
		if _, err := do(r); err != nil {
			return clusterLatRun{}, 0, err
		}
	}

	lat := make([]time.Duration, len(rects))
	var (
		next, rows atomic.Int64
		mu         sync.Mutex
		firstErr   error
		wg         sync.WaitGroup
	)
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rects) {
					return
				}
				q0 := time.Now()
				n, err := do(rects[i])
				lat[i] = time.Since(q0)
				rows.Add(n)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	total := time.Since(t0)
	if firstErr != nil {
		return clusterLatRun{}, 0, firstErr
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return clusterLatRun{
		QPS:   float64(len(rects)) / total.Seconds(),
		P50us: us(percentile(lat, 0.50)),
		P99us: us(percentile(lat, 0.99)),
	}, rows.Load(), nil
}

// measureHedging runs the same workload twice against one cluster with a
// straggling first node: once with hedging off (every query touching the
// slow node waits out the injected delay) and once racing the backup
// replica after hedgeDelay.
func measureHedging(tab *coax.Table, rects []index.Rect, shards, n, rf, localShards, conc int, straggler, hedgeDelay time.Duration) (*hedgeReport, error) {
	bc, err := startBenchCluster(tab, shards, n, rf, localShards)
	if err != nil {
		return nil, err
	}
	defer bc.close()
	bc.nodes[0].SetDelay(straggler)

	rep := &hedgeReport{
		Nodes:        n,
		Replication:  rf,
		StragglerMS:  float64(straggler) / float64(time.Millisecond),
		HedgeDelayMS: float64(hedgeDelay) / float64(time.Millisecond),
	}
	run := func(opts ...cluster.RouterOption) (clusterLatRun, error) {
		rt, err := cluster.NewRouter(bc.addrs, shards, rf, opts...)
		if err != nil {
			return clusterLatRun{}, err
		}
		defer rt.Close()
		lat, _, err := measureCluster(rt, rects, conc)
		return lat, err
	}
	if rep.Unhedged, err = run(cluster.WithHedging(false)); err != nil {
		return nil, fmt.Errorf("unhedged run: %w", err)
	}
	if rep.Hedged, err = run(cluster.WithHedgeDelay(hedgeDelay)); err != nil {
		return nil, fmt.Errorf("hedged run: %w", err)
	}
	if rep.Hedged.P99us > 0 {
		rep.P99Speedup = rep.Unhedged.P99us / rep.Hedged.P99us
	}
	return rep, nil
}
