// Command fdscan discovers soft functional dependencies in a CSV file and
// prints the accepted pairs and merged groups — the automatic detection
// step that the paper contrasts with HERMIT-style hand-specified FDs.
//
// Usage:
//
//	fdscan [-sample 20000] [-minr2 0.75] [-exclude 6,7] data.csv
//
// The CSV must have a header row and numeric fields.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/coax-index/coax/internal/bench"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/softfd"
)

func main() {
	var (
		sample  = flag.Int("sample", 20000, "detection sample size")
		minR2   = flag.Float64("minr2", 0.75, "minimum inlier-band R² to accept a dependency")
		maxFrac = flag.Float64("maxmargin", 0.30, "maximum total margin as a fraction of the dependent range")
		exclude = flag.String("exclude", "", "comma-separated column indices to skip (categoricals)")
		seed    = flag.Int64("seed", 42, "sampling seed")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdscan [flags] data.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tab, err := dataset.ReadCSV(f)
	if err != nil {
		fatal(err)
	}

	cfg := softfd.DefaultConfig()
	cfg.SampleCount = *sample
	cfg.MinR2 = *minR2
	cfg.MaxMarginFrac = *maxFrac
	cfg.Seed = *seed
	if *exclude != "" {
		for _, part := range strings.Split(*exclude, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -exclude entry %q: %w", part, err))
			}
			cfg.ExcludeCols = append(cfg.ExcludeCols, c)
		}
	}

	res, err := softfd.Detect(tab, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scanned %d rows x %d columns (%s)\n", tab.Len(), tab.Dims(), flag.Arg(0))

	pairs := bench.NewTable("accepted soft FDs (X → D means X predicts D)",
		"X", "D", "slope", "intercept", "epsLB", "epsUB", "R2(inliers)", "inlier%")
	for _, p := range res.Pairs {
		pairs.Add(tab.Cols[p.X], tab.Cols[p.D],
			fmt.Sprintf("%.5g", p.Model.Slope),
			fmt.Sprintf("%.5g", p.Model.Intercept),
			fmt.Sprintf("%.4g", p.EpsLB),
			fmt.Sprintf("%.4g", p.EpsUB),
			fmt.Sprintf("%.3f", p.R2),
			fmt.Sprintf("%.1f%%", p.Inlier*100))
	}
	pairs.Fprint(os.Stdout)

	groups := bench.NewTable("merged groups (one predictor per group)",
		"predictor", "dependents")
	for _, g := range res.Groups {
		deps := make([]string, 0, len(g.Members)-1)
		for _, d := range g.Dependents() {
			deps = append(deps, tab.Cols[d])
		}
		groups.Add(tab.Cols[g.Predictor], strings.Join(deps, ", "))
	}
	groups.Fprint(os.Stdout)
	if len(res.Groups) == 0 {
		fmt.Println("\nno soft functional dependencies detected")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdscan:", err)
	os.Exit(1)
}
