package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/coax-index/coax/coax"
)

// TestBuildInfoQueryBench drives the full CLI flow against a temp
// directory: build → save, then info / query / bench answer from the
// snapshot alone.
func TestBuildInfoQueryBench(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "osm.coax")

	if err := cmdBuild([]string{"-dataset", "osm", "-rows", "20000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if err := cmdInfo([]string{"-in", snap, "-metrics"}); err != nil {
		t.Fatalf("info: %v", err)
	}
	// The offline metric rendering uses the exact series names coaxserve
	// exports at /metrics, so the two views can be diffed name for name.
	idx, err := coax.LoadFile(snap)
	if err != nil {
		t.Fatalf("reloading snapshot: %v", err)
	}
	var prom bytes.Buffer
	writeOfflineMetrics(&prom, idx)
	for _, series := range []string{
		"coax_live_rows", "coax_outlier_ratio", "coax_tombstone_ratio",
		"coax_index_epoch", "coax_memory_overhead_bytes", "coax_primary_pages",
	} {
		if !strings.Contains(prom.String(), "# TYPE "+series+" gauge") {
			t.Errorf("offline metrics missing %s:\n%s", series, prom.String())
		}
	}
	if !strings.Contains(prom.String(), fmt.Sprintf("coax_live_rows %d", idx.Len())) {
		t.Errorf("coax_live_rows disagrees with the index (%d rows):\n%s", idx.Len(), prom.String())
	}
	// Constrain the timestamp (a dependent column): answering requires the
	// persisted soft-FD models, not a re-detection.
	if err := cmdQuery([]string{"-in", snap, "-min", "_,100,_,_", "-max", "_,5000,_,_"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "10,_,_,_", "-max", "200,_,_,_", "-limit", "3"}); err != nil {
		t.Fatalf("query with limit: %v", err)
	}

	report := filepath.Join(dir, "BENCH_snapshot.json")
	if err := cmdBench([]string{"-rows", "20000", "-json", report}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	blob, err := os.ReadFile(report)
	if err != nil || len(blob) == 0 {
		t.Fatalf("bench report: %v (%d bytes)", err, len(blob))
	}
}

func TestQueryBadBounds(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "x.coax")
	if err := cmdBuild([]string{"-dataset", "osm", "-rows", "5000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "1,2"}); err == nil {
		t.Fatal("wrong-arity -min accepted")
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "a,_,_,_"}); err == nil {
		t.Fatal("non-numeric bound accepted")
	}
}

// TestExplainSubcommand builds an airline snapshot and asserts the explain
// subcommand runs against both name-based and rectangle constraints, on
// single and (via coaxserve-style save) sharded-free snapshots.
func TestExplainSubcommand(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "air.coax")
	if err := cmdBuild([]string{"-dataset", "airline", "-rows", "30000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	// Name-based predicate on a dependent column, with a limit.
	if err := cmdExplain([]string{"-in", snap, "-where", "airtime:60:90", "-limit", "25"}); err != nil {
		t.Fatalf("explain -where: %v", err)
	}
	// Rectangle bounds plus JSON output.
	if err := cmdExplain([]string{"-in", snap, "-min", "_,_,60,_,_,_,_,_", "-max", "_,_,90,_,_,_,_,_", "-json"}); err != nil {
		t.Fatalf("explain -min/-max -json: %v", err)
	}
	// Unknown column names fail loudly instead of matching nothing.
	if err := cmdExplain([]string{"-in", snap, "-where", "altitude:0:1"}); err == nil {
		t.Fatal("explain accepted an unknown column")
	}
}

// TestStreamingBuildSubcommand exercises the v2 ingestion surface of the
// CLI: a sampled streaming build from a CSV file must produce an index
// that counts identically to the materialized build of the same data.
func TestStreamingBuildSubcommand(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "osm.csv")
	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(20000))
	if err := coax.WriteCSV(f, tab); err != nil {
		t.Fatal(err)
	}
	f.Close()

	exact := filepath.Join(dir, "exact.coax")
	streamed := filepath.Join(dir, "streamed.coax")
	if err := cmdBuild([]string{"-csv", csvPath, "-out", exact, "-q"}); err != nil {
		t.Fatalf("materialized build: %v", err)
	}
	if err := cmdBuild([]string{"-csv", csvPath, "-sample", "2000", "-out", streamed, "-q"}); err != nil {
		t.Fatalf("streaming build: %v", err)
	}

	a, err := coax.LoadFile(exact)
	if err != nil {
		t.Fatal(err)
	}
	b, err := coax.LoadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	r := coax.FullRect(4)
	r.Min[1], r.Max[1] = 5000, 30000
	if ca, cb := coax.Count(a, r), coax.Count(b, r); ca != cb {
		t.Fatalf("streamed snapshot counts %d, exact counts %d", cb, ca)
	}
}

// TestBuildBenchSubcommand smoke-runs the sweep at tiny scale and checks
// the JSON report parses with a passing guard.
func TestBuildBenchSubcommand(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "BENCH_build.json")
	err := cmdBuildBench([]string{
		"-dataset", "osm", "-rows", "30000", "-rates", "0.05",
		"-queries", "20", "-json", jsonPath, "-guard",
	})
	if err != nil {
		t.Fatalf("buildbench: %v", err)
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep buildBenchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report: %v", err)
	}
	if !rep.GuardOK || len(rep.Streaming) != 1 || rep.Streaming[0].CountMismatches != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}
