package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestBuildInfoQueryBench drives the full CLI flow against a temp
// directory: build → save, then info / query / bench answer from the
// snapshot alone.
func TestBuildInfoQueryBench(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "osm.coax")

	if err := cmdBuild([]string{"-dataset", "osm", "-rows", "20000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if err := cmdInfo([]string{"-in", snap}); err != nil {
		t.Fatalf("info: %v", err)
	}
	// Constrain the timestamp (a dependent column): answering requires the
	// persisted soft-FD models, not a re-detection.
	if err := cmdQuery([]string{"-in", snap, "-min", "_,100,_,_", "-max", "_,5000,_,_"}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "10,_,_,_", "-max", "200,_,_,_", "-limit", "3"}); err != nil {
		t.Fatalf("query with limit: %v", err)
	}

	report := filepath.Join(dir, "BENCH_snapshot.json")
	if err := cmdBench([]string{"-rows", "20000", "-json", report}); err != nil {
		t.Fatalf("bench: %v", err)
	}
	blob, err := os.ReadFile(report)
	if err != nil || len(blob) == 0 {
		t.Fatalf("bench report: %v (%d bytes)", err, len(blob))
	}
}

func TestQueryBadBounds(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "x.coax")
	if err := cmdBuild([]string{"-dataset", "osm", "-rows", "5000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "1,2"}); err == nil {
		t.Fatal("wrong-arity -min accepted")
	}
	if err := cmdQuery([]string{"-in", snap, "-min", "a,_,_,_"}); err == nil {
		t.Fatal("non-numeric bound accepted")
	}
}

// TestExplainSubcommand builds an airline snapshot and asserts the explain
// subcommand runs against both name-based and rectangle constraints, on
// single and (via coaxserve-style save) sharded-free snapshots.
func TestExplainSubcommand(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "air.coax")
	if err := cmdBuild([]string{"-dataset", "airline", "-rows", "30000", "-out", snap}); err != nil {
		t.Fatalf("build: %v", err)
	}
	// Name-based predicate on a dependent column, with a limit.
	if err := cmdExplain([]string{"-in", snap, "-where", "airtime:60:90", "-limit", "25"}); err != nil {
		t.Fatalf("explain -where: %v", err)
	}
	// Rectangle bounds plus JSON output.
	if err := cmdExplain([]string{"-in", snap, "-min", "_,_,60,_,_,_,_,_", "-max", "_,_,90,_,_,_,_,_", "-json"}); err != nil {
		t.Fatalf("explain -min/-max -json: %v", err)
	}
	// Unknown column names fail loudly instead of matching nothing.
	if err := cmdExplain([]string{"-in", snap, "-where", "altitude:0:1"}); err == nil {
		t.Fatal("explain accepted an unknown column")
	}
}
