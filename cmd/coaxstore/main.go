// Command coaxstore builds, persists, inspects, and queries COAX indexes
// on disk, so the expensive build (soft-FD detection + index construction)
// runs once while every later process answers queries straight from a
// snapshot.
//
// Usage:
//
//	coaxstore build -dataset osm -rows 1000000 -out osm.coax
//	coaxstore build -csv flights.csv -outlier rtree -out flights.coax
//	coaxstore build -csv flights.csv -sample 50000 -out flights.coax   # streaming, bounded memory
//	coaxgen -dataset osm -n 10000000 -stream | coaxstore build -csv - -sample 50000
//	coaxstore buildbench -rows 200000 -json BENCH_build.json -guard
//	coaxstore convert -in osm.coax -out osm.coax3 -compress   # v2 → mapped v3
//	coaxstore info -in osm.coax
//	coaxstore info -in osm.coax -metrics   # health gauges, same names as coaxserve /metrics
//	coaxstore query -in osm.coax -min '_,0,40,-75' -max '_,5000,41,-74'
//	coaxstore query -in osm.coax -min '_,60,_,_' -max '_,90,_,_' -limit 5
//	coaxstore explain -in flights.coax -where airtime:60:90
//	coaxstore bench -rows 200000 -json BENCH_snapshot.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/mmapsnap"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "buildbench":
		err = cmdBuildBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "coaxstore: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "coaxstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `coaxstore — build once, query many times from disk

subcommands:
  build    build a COAX index and save it as a snapshot
  convert  rewrite a snapshot between format versions (v2 heap-decoded ↔
           v3 memory-mapped; -compress packs v3 grid pages columnar)
  info     describe a snapshot file (format frame + index stats); for v3,
           per-section on-disk vs decoded sizes and compression ratios;
           -metrics adds the health gauges in Prometheus text form
  query    answer a range/point query from a snapshot
  explain  run a query and report how it executed: soft-FD constraint
           translation, primary/outlier scan split, pages and rows touched
  bench    time build/save/load and optionally emit JSON
  buildbench
           sweep streaming-build sample rates against the in-memory build:
           build time, peak heap, outlier-ratio drift, query agreement
           (emits BENCH_build.json; -guard fails on memory regression)

run 'coaxstore <subcommand> -h' for flags`)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "synthetic dataset to generate: osm|airline (ignored with -csv)")
		rows    = fs.Int("rows", 100000, "synthetic dataset size")
		seed    = fs.Int64("seed", 0, "override generator seed (0 keeps the default)")
		csvPath = fs.String("csv", "", "build from a CSV file instead of a synthetic dataset; '-' streams stdin")
		out     = fs.String("out", "index.coax", "snapshot output path")
		outlier = fs.String("outlier", "grid", "outlier index kind: grid|rtree")
		cells   = fs.Int("cells", 0, "primary grid cells per dimension (0 keeps the default)")
		sample  = fs.Int("sample", 0, "streaming build: detect soft FDs on this many sampled rows and stream placement in bounded memory (0: materialize and build exactly)")
		chunk   = fs.Int("chunk", 0, "rows per ingest chunk (0: default)")
		noSpill = fs.Bool("no-spill", false, "sampled stdin builds: keep the one-pass prefix sample instead of spilling stdin to a temp file for an unbiased two-pass reservoir")
		quiet   = fs.Bool("q", false, "suppress progress reporting on stderr")
	)
	fs.Parse(args)

	opt := coax.DefaultOptions()
	switch *outlier {
	case "grid":
		opt.OutlierKind = coax.OutlierGrid
	case "rtree":
		opt.OutlierKind = coax.OutlierRTree
	default:
		return fmt.Errorf("unknown outlier kind %q (want grid or rtree)", *outlier)
	}
	if *cells > 0 {
		opt.PrimaryCellsPerDim = *cells
	}

	var (
		src      coax.RowSource
		closeSrc func() error
		err      error
	)
	// A sampled build over stdin would have to train on a stream prefix —
	// badly biased when the input is ordered (ids, timestamps). Spilling
	// stdin to a temporary file first keeps memory bounded, costs one file
	// of disk, and buys a true uniform reservoir over the whole input.
	if *csvPath == "-" && *sample > 0 && !*noSpill {
		src, closeSrc, err = spillStdin(*chunk, *quiet)
	} else {
		src, closeSrc, err = openSource(*csvPath, *ds, *rows, *seed, *chunk)
	}
	if err != nil {
		return err
	}
	defer closeSrc()

	b := coax.NewBuilder(coax.ColumnsSchema(src.Columns()), opt)
	if *sample > 0 {
		b.SampleSize(*sample)
	}
	if !*quiet {
		b.Progress(progressPrinter())
	}

	mw := watchMem()
	t0 := time.Now()
	idx, err := b.Build(src)
	if err != nil {
		return err
	}
	buildDur := time.Since(t0)
	base, peak := mw.Stop()

	t0 = time.Now()
	if err := coax.SaveFile(*out, idx); err != nil {
		return err
	}
	saveDur := time.Since(t0)
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}

	s := idx.BuildStats()
	mode := "materialized"
	if *sample > 0 {
		mode = fmt.Sprintf("streaming (sample %d)", *sample)
	}
	fmt.Printf("built  %d rows × %d dims in %v (%s)\n", s.Rows, s.Dims, buildDur.Round(time.Millisecond), mode)
	fmt.Printf("groups %d (dependent dims %d), primary ratio %.1f%%, sort dim %d\n",
		len(s.Groups), s.DependentDims, 100*s.PrimaryRatio, s.SortDim)
	fmt.Printf("memory peak heap +%.1f MiB during build", mib(peak-base))
	if hwm := vmHWM(); hwm > 0 {
		fmt.Printf(" (process VmHWM %.1f MiB)", mib(uint64(hwm)))
	}
	fmt.Println()
	fmt.Printf("saved  %s (%d bytes) in %v\n", *out, fi.Size(), saveDur.Round(time.Millisecond))
	return nil
}

// spillStdin routes stdin through coax.SpillCSV so a sampled build can run
// its two-pass reservoir over the whole input instead of training on a
// biased prefix.
func spillStdin(chunk int, quiet bool) (coax.RowSource, func() error, error) {
	src, n, err := coax.SpillCSV(bufio.NewReaderSize(os.Stdin, 1<<20), chunk)
	if err != nil {
		return nil, func() error { return nil }, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "coaxstore: spilled %.1f MiB of stdin to a temp file for two-pass sampling (-no-spill to stream one-pass)\n",
			float64(n)/(1<<20))
	}
	return src, src.Close, nil
}

// openSource resolves the build input to a streaming RowSource: stdin
// ('-'), a CSV file (replayable, so sampled builds get a true two-pass
// reservoir), or a synthetic generator.
func openSource(csvPath, ds string, rows int, seed int64, chunk int) (coax.RowSource, func() error, error) {
	noop := func() error { return nil }
	switch {
	case csvPath == "-":
		src, err := coax.NewCSVSource(bufio.NewReaderSize(os.Stdin, 1<<20), chunk)
		return src, noop, err
	case csvPath != "":
		src, err := coax.OpenCSVFile(csvPath, chunk)
		if err != nil {
			return nil, noop, err
		}
		return src, src.Close, nil
	}
	switch ds {
	case "osm":
		cfg := coax.DefaultOSMConfig(rows)
		if seed != 0 {
			cfg.Seed = seed
		}
		return coax.NewOSMSource(cfg, chunk), noop, nil
	case "airline":
		cfg := coax.DefaultAirlineConfig(rows)
		if seed != 0 {
			cfg.Seed = seed
		}
		return coax.NewAirlineSource(cfg, chunk), noop, nil
	default:
		return nil, noop, fmt.Errorf("unknown dataset %q (want osm or airline)", ds)
	}
}

// progressPrinter reports build phases to stderr, throttled to one line
// per phase change or half second.
func progressPrinter() func(coax.BuildProgress) {
	var (
		lastPhase string
		lastPrint time.Time
	)
	return func(p coax.BuildProgress) {
		if p.Phase == lastPhase && time.Since(lastPrint) < 500*time.Millisecond {
			return
		}
		lastPhase, lastPrint = p.Phase, time.Now()
		if p.Total > 0 {
			fmt.Fprintf(os.Stderr, "coaxstore: %-7s %d/%d rows\n", p.Phase, p.Rows, p.Total)
		} else {
			fmt.Fprintf(os.Stderr, "coaxstore: %-7s %d rows\n", p.Phase, p.Rows)
		}
	}
}

func loadTable(csvPath, ds string, rows int, seed int64) (*coax.Table, error) {
	if csvPath != "" {
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return coax.ReadCSV(f)
	}
	switch ds {
	case "osm":
		cfg := coax.DefaultOSMConfig(rows)
		if seed != 0 {
			cfg.Seed = seed
		}
		return coax.GenerateOSM(cfg), nil
	case "airline":
		cfg := coax.DefaultAirlineConfig(rows)
		if seed != 0 {
			cfg.Seed = seed
		}
		return coax.GenerateAirline(cfg), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (want osm or airline)", ds)
	}
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "index.coax", "snapshot path")
	metrics := fs.Bool("metrics", false, "also print the index-health gauges in Prometheus text form, under the same series names coaxserve exports at /metrics")
	verify := fs.Bool("verify", false, "v3 snapshots: check every section CRC and decode every compressed page before reporting")
	fs.Parse(args)

	if v, err := coax.PeekSnapshotVersion(*in); err == nil && v == coax.SnapshotVersionV3 {
		return infoV3(*in, *metrics, *verify)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	info, err := snapshot.Inspect(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("%s: COAX snapshot, format version %d\n", *in, info.Version)
	for _, s := range info.Sections {
		fmt.Printf("  section %q  %10d bytes  crc32c %08x\n", s.ID, s.Len, s.CRC)
	}

	t0 := time.Now()
	idx, err := coax.LoadFile(*in)
	if err != nil {
		return err
	}
	loadDur := time.Since(t0)
	s := idx.BuildStats()
	fmt.Printf("loaded in %v\n", loadDur.Round(time.Microsecond))
	fmt.Printf("  rows %d, dims %d, sort dim %d\n", s.Rows, s.Dims, s.SortDim)
	fmt.Printf("  primary rows %d (%.1f%%), outlier rows %d\n", s.PrimaryRows, 100*s.PrimaryRatio, s.OutlierRows)
	for _, g := range s.Groups {
		fmt.Printf("  group: predictor col %d → members %v\n", g.Predictor, g.Members)
	}
	fmt.Printf("  directory overhead: primary %dB, outlier %dB, models %dB\n",
		s.PrimaryOverheadB, s.OutlierOverheadB, s.ModelOverheadB)
	if *metrics {
		fmt.Println()
		writeOfflineMetrics(os.Stdout, idx)
	}
	return nil
}

// infoV3 describes a memory-mapped (format v3) snapshot: the section table
// with per-section on-disk vs decoded sizes and compression ratios, then
// the index stats from a mapped open.
func infoV3(path string, metrics, verify bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	st, err := mmapsnap.Inspect(data)
	if err != nil {
		return err
	}
	fmt.Printf("%s: COAX snapshot, format version %d (memory-mapped), %d bytes\n", path, st.Version, st.Bytes)
	printSections := func(indent string, s mmapsnap.Stat) {
		for _, sec := range s.Sections {
			line := fmt.Sprintf("%ssection %q  %10d bytes on disk", indent, sec.ID, sec.Len)
			if sec.Compressed {
				ratio := float64(sec.DecodedBytes) / float64(sec.Len)
				line += fmt.Sprintf("  → %10d decoded  (%.2fx, %d cells)", sec.DecodedBytes, ratio, sec.Cells)
			} else if sec.Cells > 0 {
				line += fmt.Sprintf("  (raw pages, %d cells)", sec.Cells)
			}
			fmt.Println(line)
		}
	}
	printSections("  ", st)
	for i, sh := range st.Shards {
		fmt.Printf("  shard %d:\n", i)
		printSections("    ", sh)
	}

	if verify {
		t0 := time.Now()
		if err := mmapsnap.Verify(data); err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		fmt.Printf("verified every section CRC and page in %v\n", time.Since(t0).Round(time.Microsecond))
	}

	t0 := time.Now()
	sn, err := coax.OpenFile(path)
	if err != nil {
		return err
	}
	defer sn.Close()
	openDur := time.Since(t0)
	how := "heap fallback"
	if sn.Mapped() {
		how = "mapped"
	}
	fmt.Printf("opened in %v (%s)\n", openDur.Round(time.Microsecond), how)
	if sh := sn.Sharded(); sh != nil {
		fmt.Printf("  sharded index: %d shards, %d live rows, %d dims\n", sh.NumShards(), sh.Len(), sh.Dims())
		return nil
	}
	idx := sn.Index()
	s := idx.BuildStats()
	fmt.Printf("  rows %d, dims %d, sort dim %d\n", s.Rows, s.Dims, s.SortDim)
	fmt.Printf("  primary rows %d (%.1f%%), outlier rows %d\n", s.PrimaryRows, 100*s.PrimaryRatio, s.OutlierRows)
	for _, g := range s.Groups {
		fmt.Printf("  group: predictor col %d → members %v\n", g.Predictor, g.Members)
	}
	if metrics {
		fmt.Println()
		writeOfflineMetrics(os.Stdout, idx)
	}
	return nil
}

// writeOfflineMetrics renders the loaded snapshot's health gauges with the
// exact series names coaxserve exports live, so an offline inspection and a
// /metrics scrape can be compared name for name. A fresh registry keeps
// this scoped to the snapshot at hand.
func writeOfflineMetrics(w io.Writer, idx *coax.Index) {
	reg := obs.NewRegistry()
	life := idx.LifecycleStats()
	reg.Gauge("coax_live_rows", "Live rows across all shards.").Set(float64(idx.Len()))
	reg.Gauge("coax_outlier_ratio", "Fraction of live rows in the outlier partitions.").Set(life.OutlierRatio)
	reg.Gauge("coax_tombstone_ratio", "Fraction of stored rows that are tombstones.").Set(life.TombstoneRatio)
	reg.Gauge("coax_index_epoch", "Sum of shard rebuild epochs (advances on every rebuild).").Set(float64(life.Epoch))
	reg.Gauge("coax_memory_overhead_bytes", "Index directory overhead beyond row payload.").Set(float64(idx.MemoryOverhead()))
	pages := 0
	if idx.HasPrimary() {
		pages = idx.Primary().NumCells()
	}
	reg.Gauge("coax_primary_pages", "Grid pages across all primary partitions.").Set(float64(pages))
	reg.WritePrometheus(w)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	var (
		in    = fs.String("in", "index.coax", "snapshot path")
		min   = fs.String("min", "", "comma-separated lower bounds; '_' leaves a dimension unconstrained")
		max   = fs.String("max", "", "comma-separated upper bounds; '_' leaves a dimension unconstrained")
		limit = fs.Int("limit", 0, "print up to this many matching rows (0: count only)")
	)
	fs.Parse(args)

	t0 := time.Now()
	idx, sn, err := loadAnyIndex(*in)
	if err != nil {
		return err
	}
	loadDur := time.Since(t0)

	r := coax.FullRect(idx.Dims())
	if err := fillBounds(r.Min, *min, math.Inf(-1), idx.Dims()); err != nil {
		return fmt.Errorf("-min: %w", err)
	}
	if err := fillBounds(r.Max, *max, math.Inf(1), idx.Dims()); err != nil {
		return fmt.Errorf("-max: %w", err)
	}

	t0 = time.Now()
	count := 0
	idx.Query(r, func(row []float64) {
		if count < *limit {
			fmt.Println(formatRow(row))
		}
		count++
	})
	queryDur := time.Since(t0)
	if err := sn.PageErr(); err != nil {
		return fmt.Errorf("%s: corrupt page touched during query: %w", *in, err)
	}
	fmt.Printf("%d rows matched %v (load %v, query %v)\n",
		count, r, loadDur.Round(time.Microsecond), queryDur.Round(time.Microsecond))
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		in      = fs.String("in", "index.coax", "snapshot path (single-index or sharded)")
		min     = fs.String("min", "", "comma-separated lower bounds; '_' leaves a dimension unconstrained")
		max     = fs.String("max", "", "comma-separated upper bounds; '_' leaves a dimension unconstrained")
		wheres  = fs.String("where", "", "comma-separated name-based predicates col:lo:hi ('_' for an open side), e.g. airtime:60:90")
		limit   = fs.Int("limit", 0, "stop the scan after this many rows (0: scan everything)")
		jsonOut = fs.Bool("json", false, "print the report as JSON instead of text")
	)
	fs.Parse(args)

	idx, sn, err := loadAnyIndex(*in)
	if err != nil {
		return err
	}

	r := coax.FullRect(idx.Dims())
	if err := fillBounds(r.Min, *min, math.Inf(-1), idx.Dims()); err != nil {
		return fmt.Errorf("-min: %w", err)
	}
	if err := fillBounds(r.Max, *max, math.Inf(1), idx.Dims()); err != nil {
		return fmt.Errorf("-max: %w", err)
	}
	q := coax.FromRect(r)
	if *wheres != "" {
		for _, clause := range strings.Split(*wheres, ",") {
			parts := strings.SplitN(strings.TrimSpace(clause), ":", 3)
			if len(parts) != 3 {
				return fmt.Errorf("-where clause %q: want col:lo:hi", clause)
			}
			lo, hi := math.Inf(-1), math.Inf(1)
			if p := strings.TrimSpace(parts[1]); p != "_" && p != "" {
				if lo, err = strconv.ParseFloat(p, 64); err != nil {
					return fmt.Errorf("-where clause %q: %w", clause, err)
				}
			}
			if p := strings.TrimSpace(parts[2]); p != "_" && p != "" {
				if hi, err = strconv.ParseFloat(p, 64); err != nil {
					return fmt.Errorf("-where clause %q: %w", clause, err)
				}
			}
			q.Where(parts[0], coax.Between(lo, hi))
		}
	}
	if *limit > 0 {
		q.Limit(*limit)
	}

	exp, err := q.Explain(idx)
	if err != nil {
		return err
	}
	if err := sn.PageErr(); err != nil {
		return fmt.Errorf("%s: corrupt page touched during query: %w", *in, err)
	}
	if *jsonOut {
		blob, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(blob))
		return nil
	}
	fmt.Println(exp)
	return nil
}

// loadAnyIndex opens a snapshot whichever layout or format version it
// holds: a single index or a sharded one, heap-decoded (v1/v2) or
// memory-mapped (v3). The mapping of a v3 file stays valid until process
// exit — the one-shot subcommands never unmap. Callers must check the
// returned snapshot's PageErr after querying: compressed v3 pages are
// CRC-verified lazily, so a corrupt page surfaces there, not at open.
func loadAnyIndex(path string) (coax.Querier, *coax.Snapshot, error) {
	sn, err := coax.OpenFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("loading %s: %w", path, err)
	}
	if idx := sn.Index(); idx != nil {
		return idx, sn, nil
	}
	return sn.Sharded(), sn, nil
}

// fillBounds parses a comma-separated bound list into dst; '_' (or an empty
// field) keeps the unconstrained default.
func fillBounds(dst []float64, spec string, unconstrained float64, dims int) error {
	if spec == "" {
		return nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != dims {
		return fmt.Errorf("%d bounds for a %d-dimensional index", len(parts), dims)
	}
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "_" || p == "" {
			dst[i] = unconstrained
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return fmt.Errorf("bound %d: %w", i, err)
		}
		dst[i] = v
	}
	return nil
}

func formatRow(row []float64) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

// benchReport is the JSON shape consumed by CI to track the perf
// trajectory of the persistence subsystem. The heap columns time the v2
// decode path; the mapped columns time a v3 OpenFile (raw and compressed),
// with rss_bytes reporting the Go-heap residency each open pins — the
// mapped open leaves row data in the file mapping, so its residency is the
// directory, not the rows.
type benchReport struct {
	Dataset       string  `json:"dataset"`
	Rows          int     `json:"rows"`
	BuildMS       float64 `json:"build_ms"`
	SaveMS        float64 `json:"save_ms"`
	LoadMS        float64 `json:"load_ms"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	LoadSpeedup   float64 `json:"load_speedup_vs_build"`

	HeapRSSBytes       int64   `json:"heap_rss_bytes"`
	HeapFileBytes      int64   `json:"heap_file_bytes"`
	MappedOpenMS       float64 `json:"mapped_open_ms"`
	MappedRSSBytes     int64   `json:"mapped_rss_bytes"`
	MappedFileBytes    int64   `json:"mapped_file_bytes"`
	MappedZipOpenMS    float64 `json:"mapped_compressed_open_ms"`
	MappedZipFileBytes int64   `json:"mapped_compressed_file_bytes"`
	MappedOpenSpeedup  float64 `json:"mapped_open_speedup_vs_load"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 200000, "dataset size")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")
	)
	fs.Parse(args)

	tab, err := loadTable("", *ds, *rows, 0)
	if err != nil {
		return err
	}

	t0 := time.Now()
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		return err
	}
	buildDur := time.Since(t0)

	tmp, err := os.CreateTemp("", "coax-bench-*.coax")
	if err != nil {
		return err
	}
	path := tmp.Name()
	tmp.Close()
	defer os.Remove(path)

	t0 = time.Now()
	if err := coax.SaveFile(path, idx); err != nil {
		return err
	}
	saveDur := time.Since(t0)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}

	heapBase := heapInUse()
	t0 = time.Now()
	loaded, err := coax.LoadFile(path)
	if err != nil {
		return err
	}
	loadDur := time.Since(t0)
	heapRSS := max(heapInUse()-heapBase, 0)

	// Sanity: the loaded index must agree with the built one.
	full := coax.FullRect(idx.Dims())
	if b, l := coax.Count(idx, full), coax.Count(loaded, full); b != l {
		return fmt.Errorf("loaded index counts %d rows, built counts %d", l, b)
	}

	// Memory-mapped format: save both v3 encodings and time an OpenFile of
	// each — O(directory) opens against the v2 decode's O(rows).
	path3, path3c := path+"3", path+"3c"
	defer os.Remove(path3)
	defer os.Remove(path3c)
	if err := coax.SaveFileV3(path3, idx, false); err != nil {
		return err
	}
	if err := coax.SaveFileV3(path3c, idx, true); err != nil {
		return err
	}
	fi3, err := os.Stat(path3)
	if err != nil {
		return err
	}
	fi3c, err := os.Stat(path3c)
	if err != nil {
		return err
	}
	loaded = nil
	mappedBase := heapInUse()
	t0 = time.Now()
	mapped, err := coax.OpenFile(path3)
	if err != nil {
		return err
	}
	mappedOpenDur := time.Since(t0)
	mappedRSS := max(heapInUse()-mappedBase, 0)
	if m := coax.Count(mapped.Index(), full); m != coax.Count(idx, full) {
		return fmt.Errorf("mapped index counts %d rows, built counts %d", m, coax.Count(idx, full))
	}
	mapped.Close()
	t0 = time.Now()
	mappedZip, err := coax.OpenFile(path3c)
	if err != nil {
		return err
	}
	mappedZipOpenDur := time.Since(t0)
	if m := coax.Count(mappedZip.Index(), full); m != coax.Count(idx, full) {
		return fmt.Errorf("compressed mapped index counts %d rows, built counts %d", m, coax.Count(idx, full))
	}
	mappedZip.Close()

	rep := benchReport{
		Dataset:       *ds,
		Rows:          *rows,
		BuildMS:       float64(buildDur.Microseconds()) / 1000,
		SaveMS:        float64(saveDur.Microseconds()) / 1000,
		LoadMS:        float64(loadDur.Microseconds()) / 1000,
		SnapshotBytes: fi.Size(),

		HeapRSSBytes:       heapRSS,
		HeapFileBytes:      fi.Size(),
		MappedOpenMS:       float64(mappedOpenDur.Microseconds()) / 1000,
		MappedRSSBytes:     mappedRSS,
		MappedFileBytes:    fi3.Size(),
		MappedZipOpenMS:    float64(mappedZipOpenDur.Microseconds()) / 1000,
		MappedZipFileBytes: fi3c.Size(),
	}
	if rep.LoadMS > 0 {
		rep.LoadSpeedup = rep.BuildMS / rep.LoadMS
	}
	if rep.MappedOpenMS > 0 {
		rep.MappedOpenSpeedup = rep.LoadMS / rep.MappedOpenMS
	}
	fmt.Printf("dataset %s, %d rows\n", rep.Dataset, rep.Rows)
	fmt.Printf("build %8.1f ms\n", rep.BuildMS)
	fmt.Printf("save  %8.1f ms  (%d bytes)\n", rep.SaveMS, rep.SnapshotBytes)
	fmt.Printf("load  %8.1f ms  (%.0fx faster than build, +%.1f MiB heap)\n", rep.LoadMS, rep.LoadSpeedup, mib(uint64(heapRSS)))
	fmt.Printf("mmap  %8.1f ms  (%.0fx faster than load, +%.1f MiB heap, %d bytes raw / %d compressed, compressed open %.1f ms)\n",
		rep.MappedOpenMS, rep.MappedOpenSpeedup, mib(uint64(mappedRSS)), rep.MappedFileBytes, rep.MappedZipFileBytes, rep.MappedZipOpenMS)
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	return nil
}
