package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/coax-index/coax/coax"
)

// buildBenchReport is the BENCH_build.json shape consumed by CI: the
// in-memory baseline against a sweep of streaming sample rates, with peak
// heap, outlier-ratio drift, and query agreement per entry.
type buildBenchReport struct {
	Dataset   string  `json:"dataset"`
	Rows      int     `json:"rows"`
	Dims      int     `json:"dims"`
	ChunkRows int     `json:"chunk_rows"`
	DataBytes int64   `json:"data_bytes"`
	Queries   int     `json:"queries"`
	GuardOK   bool    `json:"guard_ok"`
	VmHWMMiB  float64 `json:"vm_hwm_mib"`

	Legacy    buildBenchEntry   `json:"legacy"`
	Streaming []buildBenchEntry `json:"streaming"`
}

type buildBenchEntry struct {
	Mode            string  `json:"mode"` // "legacy" or "stream"
	SampleRate      float64 `json:"sample_rate,omitempty"`
	SampleRows      int     `json:"sample_rows,omitempty"`
	IngestBuildMS   float64 `json:"ingest_build_ms"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	PeakOverDataX   float64 `json:"peak_over_data_x"` // peak heap growth / raw data bytes
	IndexBytes      int64   `json:"index_bytes"`      // row payload + directory overhead
	OverheadBytes   int64   `json:"overhead_bytes"`   // peak growth beyond the index
	OverheadChunksX float64 `json:"overhead_chunks_x"`
	Groups          int     `json:"groups"`
	OutlierRatio    float64 `json:"outlier_ratio"`
	OutlierDelta    float64 `json:"outlier_ratio_delta,omitempty"`
	QueryP50US      float64 `json:"query_p50_us"`
	CountMismatches int     `json:"count_mismatches"`
	PeakVsLegacyX   float64 `json:"peak_vs_legacy_x,omitempty"`
}

func cmdBuildBench(args []string) error {
	fs := flag.NewFlagSet("buildbench", flag.ExitOnError)
	var (
		ds      = fs.String("dataset", "osm", "dataset: osm|airline")
		rows    = fs.Int("rows", 200000, "dataset size")
		rates   = fs.String("rates", "0.01,0.1", "comma-separated streaming sample rates")
		chunk   = fs.Int("chunk", 0, "rows per ingest chunk (0: library default)")
		queries = fs.Int("queries", 200, "random range queries for the agreement check")
		jsonOut = fs.String("json", "", "also write the report as JSON to this path")
		guard   = fs.Bool("guard", false, "exit non-zero if any streaming build peaks above the in-memory build")
	)
	fs.Parse(args)

	chunkRows := *chunk
	if chunkRows <= 0 {
		chunkRows = coax.DefaultChunkRows
	}
	var rateList []float64
	for _, f := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || r <= 0 || r > 1 {
			return fmt.Errorf("bad sample rate %q", f)
		}
		rateList = append(rateList, r)
	}

	newSource := func() (coax.RowSource, error) {
		src, closer, err := openSource("", *ds, *rows, 0, chunkRows)
		_ = closer // generator sources hold no resources
		return src, err
	}
	opt := coax.DefaultOptions()

	// In-memory baseline: materialize (the v1 ingest) + Build, under the
	// heap watcher.
	src, err := newSource()
	if err != nil {
		return err
	}
	mw := watchMem()
	t0 := time.Now()
	legacyIdx, err := coax.NewBuilder(coax.ColumnsSchema(src.Columns()), opt).Build(src)
	if err != nil {
		return err
	}
	legacyMS := float64(time.Since(t0).Microseconds()) / 1000
	base, peak := mw.Stop()

	dims := legacyIdx.Dims()
	dataBytes := int64(*rows) * int64(dims) * 8
	chunkBytes := int64(chunkRows) * int64(dims) * 8

	// Query workload: random rectangles with legacy answers as the oracle.
	rng := rand.New(rand.NewSource(77))
	pivot := samplePivotRows(rng, legacyIdx, dims)
	rects := make([]coax.Rect, *queries)
	want := make([]int, *queries)
	for i := range rects {
		rects[i] = benchRect(rng, pivot, dims)
		want[i] = coax.Count(legacyIdx, rects[i])
	}

	rep := buildBenchReport{
		Dataset:   *ds,
		Rows:      *rows,
		Dims:      dims,
		ChunkRows: chunkRows,
		DataBytes: dataBytes,
		Queries:   *queries,
		GuardOK:   true,
	}
	rep.Legacy = summarize("legacy", legacyIdx, legacyMS, base, peak, dataBytes, chunkBytes, rects, want)
	rep.Legacy.OutlierDelta = 0
	legacyRatio := rep.Legacy.OutlierRatio
	fmt.Printf("dataset %s, %d rows × %d dims (%.1f MiB raw), chunk %d rows\n",
		*ds, *rows, dims, float64(dataBytes)/(1<<20), chunkRows)
	printEntry(rep.Legacy)

	for _, rate := range rateList {
		sampleRows := int(float64(*rows) * rate)
		src, err := newSource()
		if err != nil {
			return err
		}
		runtime.GC()
		mw := watchMem()
		t0 := time.Now()
		idx, err := coax.NewBuilder(coax.ColumnsSchema(src.Columns()), opt).
			SampleSize(sampleRows).
			Build(src)
		if err != nil {
			return err
		}
		ms := float64(time.Since(t0).Microseconds()) / 1000
		base, peak := mw.Stop()

		e := summarize("stream", idx, ms, base, peak, dataBytes, chunkBytes, rects, want)
		e.SampleRate = rate
		e.SampleRows = sampleRows
		e.OutlierDelta = e.OutlierRatio - legacyRatio
		if rep.Legacy.PeakHeapBytes > 0 {
			e.PeakVsLegacyX = float64(e.PeakHeapBytes) / float64(rep.Legacy.PeakHeapBytes)
		}
		if e.PeakHeapBytes > rep.Legacy.PeakHeapBytes {
			rep.GuardOK = false
		}
		if e.CountMismatches > 0 {
			rep.GuardOK = false
		}
		rep.Streaming = append(rep.Streaming, e)
		printEntry(e)
	}
	if hwm := vmHWM(); hwm > 0 {
		rep.VmHWMMiB = mib(uint64(hwm))
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *guard && !rep.GuardOK {
		return fmt.Errorf("memory regression guard failed: a streaming build peaked above the in-memory build (or disagreed on query counts)")
	}
	return nil
}

// summarize measures one built index against the shared query workload.
func summarize(mode string, idx *coax.Index, ms float64, base, peak uint64, dataBytes, chunkBytes int64, rects []coax.Rect, want []int) buildBenchEntry {
	s := idx.BuildStats()
	e := buildBenchEntry{
		Mode:          mode,
		IngestBuildMS: ms,
		PeakHeapBytes: peak - base,
		Groups:        len(s.Groups),
		IndexBytes:    dataBytes + idx.MemoryOverhead(),
	}
	if s.Rows > 0 {
		e.OutlierRatio = float64(s.OutlierRows) / float64(s.Rows)
	}
	if dataBytes > 0 {
		e.PeakOverDataX = float64(e.PeakHeapBytes) / float64(dataBytes)
	}
	e.OverheadBytes = int64(e.PeakHeapBytes) - e.IndexBytes
	if chunkBytes > 0 {
		e.OverheadChunksX = float64(e.OverheadBytes) / float64(chunkBytes)
	}

	lat := make([]float64, len(rects))
	for i, r := range rects {
		t0 := time.Now()
		got := coax.Count(idx, r)
		lat[i] = float64(time.Since(t0).Nanoseconds()) / 1000
		if got != want[i] {
			e.CountMismatches++
		}
	}
	sort.Float64s(lat)
	if len(lat) > 0 {
		e.QueryP50US = lat[len(lat)/2]
	}
	return e
}

func printEntry(e buildBenchEntry) {
	tag := e.Mode
	if e.Mode == "stream" {
		tag = fmt.Sprintf("stream %4.1f%%", 100*e.SampleRate)
	}
	fmt.Printf("%-12s  build %8.1f ms  peak heap +%7.1f MiB (%.2fx data, overhead %.1f chunks)  outliers %.2f%%  p50 %6.1f µs  mismatches %d\n",
		tag, e.IngestBuildMS, mib(e.PeakHeapBytes), e.PeakOverDataX, e.OverheadChunksX,
		100*e.OutlierRatio, e.QueryP50US, e.CountMismatches)
}

// samplePivotRows draws ~512 rows from the index in one scan; benchRect
// uses their values as realistic query bounds.
func samplePivotRows(rng *rand.Rand, idx *coax.Index, dims int) [][]float64 {
	var rows [][]float64
	keep := 512.0 / float64(idx.Len()+1)
	idx.Query(coax.FullRect(dims), func(row []float64) {
		if len(rows) < 512 && rng.Float64() < keep {
			rows = append(rows, append([]float64(nil), row...))
		}
	})
	if len(rows) == 0 {
		rows = append(rows, make([]float64, dims))
	}
	return rows
}

// benchRect draws a random rectangle constraining 1–2 dimensions between
// values of two sampled rows.
func benchRect(rng *rand.Rand, pivot [][]float64, dims int) coax.Rect {
	r := coax.FullRect(dims)
	constrained := 1 + rng.Intn(2)
	for c := 0; c < constrained; c++ {
		d := rng.Intn(dims)
		a := pivot[rng.Intn(len(pivot))][d]
		b := pivot[rng.Intn(len(pivot))][d]
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}
