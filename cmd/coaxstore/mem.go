package main

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// memWatch polls the Go heap while a build runs so the tool can report the
// peak allocation the build actually reached, not just where it ended.
type memWatch struct {
	base uint64 // HeapAlloc after a GC, before the watched work
	peak uint64
	stop chan struct{}
	done chan struct{}
	mu   sync.Mutex
}

// watchMem garbage-collects, records the baseline heap, and starts
// sampling HeapAlloc every 10ms.
func watchMem() *memWatch {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w := &memWatch{base: ms.HeapAlloc, peak: ms.HeapAlloc, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.sample()
			}
		}
	}()
	return w
}

func (w *memWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.mu.Lock()
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	w.mu.Unlock()
}

// Stop ends sampling and returns (baseline, peak) heap bytes.
func (w *memWatch) Stop() (base, peak uint64) {
	w.sample()
	close(w.stop)
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base, w.peak
}

// vmHWM reads the process peak resident set (kernel-accounted, in bytes)
// from /proc/self/status; -1 where unavailable (non-Linux).
func vmHWM() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return -1
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return -1
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return -1
		}
		return kb * 1024
	}
	return -1
}

// mib renders bytes as mebibytes for human output.
func mib(b uint64) float64 { return float64(b) / (1 << 20) }

// heapInUse garbage-collects and reports the live Go heap, so a
// before/after delta isolates what one load pinned in memory.
func heapInUse() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}
