package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/coax-index/coax/coax"
)

// cmdConvert rewrites a snapshot between format versions: v1/v2 (the
// streaming heap-decoded container) and v3 (the page-aligned memory-mapped
// container). Either direction works — the opened index is re-encoded in
// the target format, so a fleet can migrate to mapped serving with
// `convert -to 3` and roll back with `convert -to 2`.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "input snapshot path (any format version)")
		out      = fs.String("out", "", "output snapshot path")
		to       = fs.Int("to", 3, "target format version: 2|3")
		compress = fs.Bool("compress", false, "v3 only: store grid pages columnar-compressed, decoded lazily per page at query time")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("convert needs -in and -out")
	}

	from, err := coax.PeekSnapshotVersion(*in)
	if err != nil {
		return err
	}
	t0 := time.Now()
	sn, err := coax.OpenFile(*in)
	if err != nil {
		return err
	}
	defer sn.Close()
	openDur := time.Since(t0)

	t0 = time.Now()
	switch *to {
	case 3:
		if sh := sn.Sharded(); sh != nil {
			err = coax.SaveShardedFileV3(*out, sh, *compress)
		} else {
			err = coax.SaveFileV3(*out, sn.Index(), *compress)
		}
	case 2:
		if sh := sn.Sharded(); sh != nil {
			err = coax.SaveShardedFile(*out, sh)
		} else {
			err = coax.SaveFile(*out, sn.Index())
		}
	default:
		return fmt.Errorf("unsupported target version %d (want 2 or 3)", *to)
	}
	if err != nil {
		return err
	}
	saveDur := time.Since(t0)

	inFi, err := os.Stat(*in)
	if err != nil {
		return err
	}
	outFi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("converted %s (v%d, %d bytes) → %s (v%d, %d bytes)\n",
		*in, from, inFi.Size(), *out, *to, outFi.Size())
	fmt.Printf("opened in %v, wrote in %v\n", openDur.Round(time.Millisecond), saveDur.Round(time.Millisecond))
	return nil
}
