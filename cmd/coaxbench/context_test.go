package main

import (
	"strings"
	"testing"

	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/softfd"
)

func TestDescribeGroups(t *testing.T) {
	cols := []string{"a", "b", "c"}
	groups := []softfd.Group{{
		Predictor: 1,
		Members:   []int{0, 1},
		Models:    []softfd.PairModel{{X: 1, D: 0, Model: model.Linear{Slope: 1}}},
	}}
	s := describeGroups(groups, cols)
	if !strings.Contains(s, "b*") {
		t.Errorf("predictor not starred: %q", s)
	}
	if !strings.Contains(s, "a") {
		t.Errorf("member missing: %q", s)
	}
	if describeGroups(nil, cols) != "none" {
		t.Error("empty groups should render as none")
	}
}

func TestRunContextLaziness(t *testing.T) {
	ctx := newRunContext(1000, 5, 10, 1)
	a1 := ctx.airline()
	a2 := ctx.airline()
	if a1 != a2 {
		t.Error("airline table must be built once and cached")
	}
	if a1.Len() != 1000 || a1.Dims() != 8 {
		t.Errorf("airline shape %dx%d", a1.Len(), a1.Dims())
	}
	o := ctx.osm()
	if o.Len() != 1000 || o.Dims() != 4 {
		t.Errorf("osm shape %dx%d", o.Len(), o.Dims())
	}
}

func TestBuildersProduceWorkingIndexes(t *testing.T) {
	ctx := newRunContext(2000, 5, 10, 1)
	tab := ctx.airline()
	fg := ctx.buildFullGrid(tab)
	cf := ctx.buildColumnFiles(tab)
	rt := ctx.buildRTree(tab)
	if fg.Len() != 2000 || cf.Len() != 2000 || rt.Len() != 2000 {
		t.Error("builders lost rows")
	}
	// The memory rule: no baseline directory may exceed the data size.
	if fg.MemoryOverhead() > tab.SizeBytes() {
		t.Errorf("full grid directory %d exceeds data %d", fg.MemoryOverhead(), tab.SizeBytes())
	}
	if cf.MemoryOverhead() > tab.SizeBytes() {
		t.Errorf("column files directory %d exceeds data %d", cf.MemoryOverhead(), tab.SizeBytes())
	}
}
