package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/coax-index/coax/internal/bench"
	"github.com/coax-index/coax/internal/colfiles"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/theory"
	"github.com/coax-index/coax/internal/workload"
)

func scanOf(t *dataset.Table) index.Interface { return scan.New(t) }

// runFig8 reproduces Figure 8: the runtime-versus-memory-overhead
// trade-off, sweeping the grid resolution for COAX and Column Files and
// the node capacity for the R-tree, on both datasets.
func (c *runContext) runFig8() {
	type ds struct {
		name string
		tab  *dataset.Table
		opt  core.Options
	}
	for _, d := range []ds{
		{"Airline", c.airline(), airlineOptions()},
		{"OSM", c.osm(), osmOptions()},
	} {
		t := bench.NewTable(
			fmt.Sprintf("Figure 8 (%s, n=%d): runtime vs memory overhead", d.name, d.tab.Len()),
			"series", "config", "mem overhead", "avg/query")
		gen := workload.NewGenerator(d.tab, c.seed)
		queries := gen.KNNRects(c.queries, c.k)

		for _, cells := range []int{2, 4, 8, 16, 32, 64} {
			opt := d.opt
			opt.PrimaryCellsPerDim = cells
			cx := c.buildCOAX(d.tab, opt)
			s := bench.MeasureIndex(cx, queries)
			t.Add("COAX (total)", fmt.Sprintf("%d cells/dim", cells),
				bench.FormatBytes(cx.MemoryOverhead()), bench.FormatNs(s.AvgNs()))
			if cells == 16 {
				// Report the split once at a representative resolution.
				t.Add("COAX (primary)", fmt.Sprintf("%d cells/dim", cells),
					bench.FormatBytes(cx.PrimaryMemoryOverhead()), "")
				t.Add("COAX (outliers)", fmt.Sprintf("%d cells/dim", cells),
					bench.FormatBytes(cx.OutlierMemoryOverhead()), "")
			}
		}
		for _, cells := range []int{2, 3, 4, 6, 8} {
			cf, err := colfiles.Build(d.tab, cells, 0)
			if err != nil {
				fatalf("fig8 column files: %v", err)
			}
			if cf.MemoryOverhead() > d.tab.SizeBytes() {
				continue // paper's memory rule: directory must not exceed data
			}
			s := bench.MeasureIndex(cf, queries)
			t.Add("ColumnFiles", fmt.Sprintf("%d cells/dim", cells),
				bench.FormatBytes(cf.MemoryOverhead()), bench.FormatNs(s.AvgNs()))
		}
		for _, capEntries := range []int{4, 8, 16, 32} {
			rt, err := rtree.Bulk(d.tab, rtree.Config{MaxEntries: capEntries})
			if err != nil {
				fatalf("fig8 rtree: %v", err)
			}
			s := bench.MeasureIndex(rt, queries)
			t.Add("RTree", fmt.Sprintf("cap %d", capEntries),
				bench.FormatBytes(rt.MemoryOverhead()), bench.FormatNs(s.AvgNs()))
		}
		t.Fprint(os.Stdout)
	}
}

// runEffectiveness validates Eq. 5: effectiveness = qy/(2ε+qy), comparing
// the closed form against a simulation of the translated scan.
func (c *runContext) runEffectiveness() {
	rng := rand.New(rand.NewSource(c.seed))
	t := bench.NewTable("Eq. 5: margin effectiveness (theory vs simulation)",
		"eps", "qy", "theory", "simulated")
	for _, eps := range []float64{5, 20, 50, 100, 200} {
		for _, qy := range []float64{100, 400} {
			sim, err := theory.EmpiricalEffectiveness(2.0, eps, qy, 10000, 200000, rng)
			if err != nil {
				fatalf("effectiveness: %v", err)
			}
			t.Add(fmt.Sprint(eps), fmt.Sprint(qy),
				fmt.Sprintf("%.3f", theory.Effectiveness(qy, eps)),
				fmt.Sprintf("%.3f", sim))
		}
	}
	t.Fprint(os.Stdout)
}

// runTheory validates Theorems 7.1, 7.3 and 7.4 by simulating the CSM
// random walk.
func (c *runContext) runTheory() {
	rng := rand.New(rand.NewSource(c.seed))
	dist := theory.GapDist{Kind: theory.GapNormal, Mu: 1.0, Sigma: 0.5}

	t := bench.NewTable("Theorems 7.1 & 7.3: keys covered by one linear segment (mu=1, sigma=0.5)",
		"eps", "E[keys] theory", "E[keys] measured", "Var theory", "Var measured")
	for _, eps := range []float64{5, 10, 20, 40} {
		m := theory.MeasureMFET(dist, dist.Mu, eps, 4000, rng)
		t.Add(fmt.Sprint(eps),
			fmt.Sprintf("%.0f", theory.TheoremMFET(eps, dist.Sigma)),
			fmt.Sprintf("%.0f", m.Mean),
			fmt.Sprintf("%.0f", theory.TheoremMFETVariance(eps, dist.Sigma)),
			fmt.Sprintf("%.0f", m.Variance))
	}
	t.Fprint(os.Stdout)

	t2 := bench.NewTable("Theorem 7.4: segments needed to cover a stream (mu=1, sigma=0.5)",
		"n", "eps", "theory n*sigma^2/eps^2", "measured")
	for _, n := range []int{100000, 1000000} {
		for _, eps := range []float64{5, 10, 20} {
			got := theory.CountSegments(dist, dist.Mu, eps, n, rng)
			t2.Add(fmt.Sprint(n), fmt.Sprint(eps),
				fmt.Sprintf("%.0f", theory.TheoremSegments(n, eps, dist.Sigma)),
				fmt.Sprint(got))
		}
	}
	t2.Fprint(os.Stdout)
}

// runSummary prints the paper's two headline claims measured on this
// machine: the lookup-time advantage over the best conventional baseline
// and the directory-size reduction.
func (c *runContext) runSummary() {
	air := c.airline()
	cx := c.buildCOAX(air, airlineOptions())
	rt := c.buildRTree(air)
	fg := c.buildFullGrid(air)
	gen := workload.NewGenerator(air, c.seed)
	queries := gen.KNNRects(c.queries, c.k)

	coaxStats := bench.MeasureIndex(cx, queries)
	rtStats := bench.MeasureIndex(rt, queries)
	fgStats := bench.MeasureIndex(fg, queries)

	bestBaselineNs := rtStats.AvgNs()
	bestBaseline := "RTree"
	if fgStats.AvgNs() < bestBaselineNs {
		bestBaselineNs, bestBaseline = fgStats.AvgNs(), "FullGrid"
	}

	t := bench.NewTable(fmt.Sprintf("Headline claims (airline, n=%d)", c.n),
		"metric", "COAX", "baseline", "ratio")
	t.Add("range lookup avg",
		bench.FormatNs(coaxStats.AvgNs()),
		fmt.Sprintf("%s %s", bestBaseline, bench.FormatNs(bestBaselineNs)),
		fmt.Sprintf("%.2fx faster", bestBaselineNs/coaxStats.AvgNs()))
	t.Add("directory size",
		bench.FormatBytes(cx.MemoryOverhead()),
		fmt.Sprintf("RTree %s", bench.FormatBytes(rt.MemoryOverhead())),
		fmt.Sprintf("%.0fx smaller", float64(rt.MemoryOverhead())/float64(cx.MemoryOverhead())))
	t.Add("", "", fmt.Sprintf("FullGrid %s", bench.FormatBytes(fg.MemoryOverhead())),
		fmt.Sprintf("%.0fx smaller", float64(fg.MemoryOverhead())/float64(cx.MemoryOverhead())))
	t.Fprint(os.Stdout)
	fmt.Println("\nPaper claims: ~25% faster lookups; directory up to 4 orders of magnitude smaller.")
}
