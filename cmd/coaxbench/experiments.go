package main

import (
	"fmt"
	"os"
	"strings"

	"github.com/coax-index/coax/internal/bench"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

// runTable1 reproduces Table 1: dataset characteristics including the
// primary-index ratio at the default tolerance.
func (c *runContext) runTable1() {
	t := bench.NewTable("Table 1: dataset characteristics",
		"", "Airline", "OSM")

	air := c.airline()
	osm := c.osm()
	airIdx := c.buildCOAX(air, airlineOptions())
	osmIdx := c.buildCOAX(osm, osmOptions())
	airSt := airIdx.BuildStats()
	osmSt := osmIdx.BuildStats()

	t.Addf("Count", air.Len(), osm.Len())
	t.Add("Key Type", "float", "float")
	t.Addf("Dimensions", air.Dims(), osm.Dims())
	t.Add("Correlated Groups (predictor*)",
		describeGroups(airSt.Groups, air.Cols),
		describeGroups(osmSt.Groups, osm.Cols))
	t.Addf("Dependent Dimensions", airSt.DependentDims, osmSt.DependentDims)
	t.Addf("Indexed Dimensions (soft-FD index)", airSt.IndexedDims, osmSt.IndexedDims)
	t.Addf("Primary Grid Dimensions (n-m-1)", airSt.GridDims, osmSt.GridDims)
	t.Add("Primary Index Ratio",
		fmt.Sprintf("%.1f%%", airSt.PrimaryRatio*100),
		fmt.Sprintf("%.1f%%", osmSt.PrimaryRatio*100))
	t.Fprint(os.Stdout)
}

// runFig4a reproduces Figure 4a: the non-uniform distribution of page
// (cell) lengths of a 2-D grid over the skewed OSM coordinates.
func (c *runContext) runFig4a() {
	osm := c.osm()
	g, err := gridfile.Build(osm, gridfile.Config{
		GridDims:    []int{2, 3}, // lat, lon
		SortDim:     -1,
		CellsPerDim: 32,
		Mode:        gridfile.Quantile,
		Label:       "osm-2d",
	})
	if err != nil {
		fatalf("fig4a grid: %v", err)
	}
	sizes := g.CellSizes()
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	const bins = 16
	hist := make([]int, bins)
	for _, s := range sizes {
		b := s * bins / (maxSize + 1)
		hist[b]++
	}
	t := bench.NewTable("Figure 4a: distribution of 2-D grid page lengths (OSM lat/lon, 32x32 quantile grid)",
		"page length", "cells", "")
	histMax := 0
	for _, h := range hist {
		if h > histMax {
			histMax = h
		}
	}
	for b := 0; b < bins; b++ {
		lo := b * (maxSize + 1) / bins
		hi := (b+1)*(maxSize+1)/bins - 1
		bar := ""
		if histMax > 0 {
			bar = strings.Repeat("#", hist[b]*40/histMax)
		}
		t.Addf(fmt.Sprintf("%d-%d", lo, hi), hist[b], bar)
	}
	t.Fprint(os.Stdout)
}

// fig6Row measures every index on one workload and adds rows to the table.
func fig6Rows(t *bench.Table, label string, queries []index.Rect,
	cx *core.COAX, baselines []index.Interface) {
	p := bench.Measure("COAX (primary)", queries, func(q index.Rect) int {
		n := 0
		cx.QueryPrimary(q, func([]float64) { n++ })
		return n
	})
	o := bench.Measure("COAX (outliers)", queries, func(q index.Rect) int {
		n := 0
		cx.QueryOutliers(q, func([]float64) { n++ })
		return n
	})
	tot := bench.MeasureIndex(cx, queries)
	t.Add(label, "COAX (primary)", bench.FormatNs(p.AvgNs()), fmt.Sprint(p.Matches))
	t.Add("", "COAX (outliers)", bench.FormatNs(o.AvgNs()), fmt.Sprint(o.Matches))
	t.Add("", "COAX (total)", bench.FormatNs(tot.AvgNs()), fmt.Sprint(tot.Matches))
	for _, b := range baselines {
		s := bench.MeasureIndex(b, queries)
		t.Add("", b.Name(), bench.FormatNs(s.AvgNs()), fmt.Sprint(s.Matches))
	}
}

// runFig6 reproduces Figure 6: point- and range-query runtime on both
// datasets for COAX, R-Tree, Full Grid, and Full Scan.
func (c *runContext) runFig6() {
	t := bench.NewTable(
		fmt.Sprintf("Figure 6: query runtime (n=%d, %d queries, K=%d)", c.n, c.queries, c.k),
		"workload", "index", "avg/query", "matches")

	type ds struct {
		name string
		tab  *dataset.Table
		opt  core.Options
	}
	for _, d := range []ds{
		{"Airline", c.airline(), airlineOptions()},
		{"OSM", c.osm(), osmOptions()},
	} {
		cx := c.buildCOAX(d.tab, d.opt)
		baselines := []index.Interface{
			c.buildRTree(d.tab),
			c.buildFullGrid(d.tab),
			newScan(d.tab),
		}
		gen := workload.NewGenerator(d.tab, c.seed)
		fig6Rows(t, d.name+" (range)", gen.KNNRects(c.queries, c.k), cx, baselines)
		fig6Rows(t, d.name+" (point)", gen.PointQueries(c.queries), cx, baselines)
	}
	t.Fprint(os.Stdout)
}

// runFig7 reproduces Figure 7: range-query runtime across selectivities on
// the airline data, for COAX (primary/outliers), R-Tree, and Column Files.
// The paper's selectivities {35K, 150K, 750K, 1.5M} on 7M rows are scaled
// to the same fractions of -n.
func (c *runContext) runFig7() {
	air := c.airline()
	cx := c.buildCOAX(air, airlineOptions())
	rt := c.buildRTree(air)
	cf := c.buildColumnFiles(air)
	gen := workload.NewGenerator(air, c.seed)

	fractions := []struct {
		label string
		frac  float64
	}{
		{"35K/7M (0.5%)", 0.005},
		{"150K/7M (2.1%)", 0.0214},
		{"750K/7M (10.7%)", 0.107},
		{"1.5M/7M (21.4%)", 0.214},
	}
	t := bench.NewTable(
		fmt.Sprintf("Figure 7: runtime vs selectivity, airline (n=%d, %d queries/point)", c.n, c.queries),
		"selectivity", "index", "avg/query", "matches")
	for _, f := range fractions {
		target := int(f.frac * float64(air.Len()))
		if target < 1 {
			target = 1
		}
		qs, err := gen.SelectivityRects(c.queries, target)
		if err != nil {
			fatalf("fig7 workload: %v", err)
		}
		p := bench.Measure("COAX (primary)", qs, func(q index.Rect) int {
			n := 0
			cx.QueryPrimary(q, func([]float64) { n++ })
			return n
		})
		o := bench.Measure("COAX (outliers)", qs, func(q index.Rect) int {
			n := 0
			cx.QueryOutliers(q, func([]float64) { n++ })
			return n
		})
		rts := bench.MeasureIndex(rt, qs)
		cfs := bench.MeasureIndex(cf, qs)
		t.Add(f.label, "COAX (primary)", bench.FormatNs(p.AvgNs()), fmt.Sprint(p.Matches))
		t.Add("", "COAX (outliers)", bench.FormatNs(o.AvgNs()), fmt.Sprint(o.Matches))
		t.Add("", "RTree", bench.FormatNs(rts.AvgNs()), fmt.Sprint(rts.Matches))
		t.Add("", "ColumnFiles", bench.FormatNs(cfs.AvgNs()), fmt.Sprint(cfs.Matches))
	}
	t.Fprint(os.Stdout)
}

// newScan adapts a table to index.Interface without importing scan in
// every experiment file.
func newScan(t *dataset.Table) index.Interface { return scanOf(t) }
