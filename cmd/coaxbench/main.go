// Command coaxbench regenerates every table and figure of the COAX paper's
// evaluation (§8) on synthetic stand-ins for the OSM and Airline datasets.
//
// Usage:
//
//	coaxbench -exp all            # run every experiment
//	coaxbench -exp fig6 -n 500000 # one experiment at a chosen scale
//
// Experiments: table1, fig4a, fig6, fig7, fig8, effectiveness, theory,
// summary, all. Absolute numbers depend on the machine; the claim shapes
// (who wins, by what factor) are what the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|fig4a|fig6|fig7|fig8|effectiveness|theory|summary|all")
		n       = flag.Int("n", 200000, "base dataset size in rows")
		queries = flag.Int("queries", 200, "queries per workload")
		k       = flag.Int("k", 1000, "K for KNN-rectangle range queries")
		seed    = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	ctx := newRunContext(*n, *queries, *k, *seed)

	runners := map[string]func(){
		"table1":        ctx.runTable1,
		"fig4a":         ctx.runFig4a,
		"fig6":          ctx.runFig6,
		"fig7":          ctx.runFig7,
		"fig8":          ctx.runFig8,
		"effectiveness": ctx.runEffectiveness,
		"theory":        ctx.runTheory,
		"summary":       ctx.runSummary,
	}
	order := []string{"table1", "fig4a", "fig6", "fig7", "fig8", "effectiveness", "theory", "summary"}

	which := strings.ToLower(*exp)
	if which == "all" {
		for _, name := range order {
			runners[name]()
		}
		return
	}
	run, ok := runners[which]
	if !ok {
		fmt.Fprintf(os.Stderr, "coaxbench: unknown experiment %q (want one of %s, all)\n",
			*exp, strings.Join(order, ", "))
		os.Exit(2)
	}
	run()
}
