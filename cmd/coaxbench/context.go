package main

import (
	"fmt"
	"os"
	"sync"

	"github.com/coax-index/coax/internal/colfiles"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/unigrid"
)

// runContext lazily materialises datasets and indexes shared between
// experiments so `-exp all` builds each of them once.
type runContext struct {
	n       int
	queries int
	k       int
	seed    int64

	once struct {
		airline, osm sync.Once
	}
	airlineTab *dataset.Table
	osmTab     *dataset.Table
}

func newRunContext(n, queries, k int, seed int64) *runContext {
	return &runContext{n: n, queries: queries, k: k, seed: seed}
}

func (c *runContext) airline() *dataset.Table {
	c.once.airline.Do(func() {
		c.airlineTab = dataset.GenerateAirline(dataset.DefaultAirlineConfig(c.n))
	})
	return c.airlineTab
}

func (c *runContext) osm() *dataset.Table {
	c.once.osm.Do(func() {
		c.osmTab = dataset.GenerateOSM(dataset.DefaultOSMConfig(c.n))
	})
	return c.osmTab
}

// airlineOptions returns the COAX build options used for the airline
// dataset: categorical columns are excluded from FD detection.
func airlineOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	return opt
}

func osmOptions() core.Options {
	return core.DefaultOptions()
}

func (c *runContext) buildCOAX(t *dataset.Table, opt core.Options) *core.COAX {
	idx, err := core.Build(t, opt)
	if err != nil {
		fatalf("building COAX: %v", err)
	}
	return idx
}

// buildFullGrid builds the uniform-grid baseline with the largest
// cells-per-dim whose directory stays below the data size (the paper's
// memory rule in §8.2.1).
func (c *runContext) buildFullGrid(t *dataset.Table) *gridfile.GridFile {
	cells := gridfile.DirectoryBoundedCells(t.Dims(), t.SizeBytes())
	g, err := unigrid.Build(t, cells)
	if err != nil {
		fatalf("building full grid: %v", err)
	}
	return g
}

// buildColumnFiles builds the column-files baseline, sorting on the first
// column and gridding the rest under the same memory rule.
func (c *runContext) buildColumnFiles(t *dataset.Table) *gridfile.GridFile {
	cells := gridfile.DirectoryBoundedCells(t.Dims()-1, t.SizeBytes())
	g, err := colfiles.Build(t, cells, 0)
	if err != nil {
		fatalf("building column files: %v", err)
	}
	return g
}

func (c *runContext) buildRTree(t *dataset.Table) *rtree.RTree {
	rt, err := rtree.Bulk(t, rtree.DefaultConfig())
	if err != nil {
		fatalf("building R-tree: %v", err)
	}
	return rt
}

func describeGroups(groups []softfd.Group, cols []string) string {
	if len(groups) == 0 {
		return "none"
	}
	out := ""
	for i, g := range groups {
		if i > 0 {
			out += "; "
		}
		out += "("
		for j, m := range g.Members {
			if j > 0 {
				out += ", "
			}
			out += cols[m]
			if m == g.Predictor {
				out += "*"
			}
		}
		out += ")"
	}
	return out
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "coaxbench: "+format+"\n", args...)
	os.Exit(1)
}
