// Command coaxgen emits the synthetic benchmark datasets as CSV so they
// can be inspected, fed to fdscan, or loaded into other systems.
//
// Usage:
//
//	coaxgen -dataset airline -n 100000 -o airline.csv
//	coaxgen -dataset osm -n 100000           # writes to stdout
//	coaxgen -dataset osm -n 10000000 -stream | coaxstore build -csv - -sample 50000
//
// With -stream the generator emits CSV chunk by chunk in constant memory,
// so arbitrarily large datasets pipe straight into a streaming build.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/coax-index/coax/internal/dataset"
)

func main() {
	var (
		kind   = flag.String("dataset", "airline", "dataset to generate: airline|osm")
		n      = flag.Int("n", 100000, "number of rows")
		out    = flag.String("o", "", "output file (default stdout)")
		seed   = flag.Int64("seed", 0, "override generator seed (0 keeps the default)")
		stream = flag.Bool("stream", false, "emit chunk by chunk in constant memory instead of materializing the table")
		chunk  = flag.Int("chunk", 0, "rows per chunk in -stream mode (0: default)")
	)
	flag.Parse()

	var (
		src dataset.RowSource
		tab *dataset.Table
	)
	switch *kind {
	case "airline":
		cfg := dataset.DefaultAirlineConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *stream {
			src = dataset.NewAirlineSource(cfg, *chunk)
		} else {
			tab = dataset.GenerateAirline(cfg)
		}
	case "osm":
		cfg := dataset.DefaultOSMConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if *stream {
			src = dataset.NewOSMSource(cfg, *chunk)
		} else {
			tab = dataset.GenerateOSM(cfg)
		}
	default:
		fmt.Fprintf(os.Stderr, "coaxgen: unknown dataset %q (want airline or osm)\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	rows := 0
	if *stream {
		var err error
		if rows, err = dataset.StreamCSV(w, src); err != nil {
			fatal(err)
		}
	} else {
		if err := dataset.WriteCSV(w, tab); err != nil {
			fatal(err)
		}
		rows = tab.Len()
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows to %s\n", rows, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coaxgen:", err)
	os.Exit(1)
}
