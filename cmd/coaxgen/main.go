// Command coaxgen emits the synthetic benchmark datasets as CSV so they
// can be inspected, fed to fdscan, or loaded into other systems.
//
// Usage:
//
//	coaxgen -dataset airline -n 100000 -o airline.csv
//	coaxgen -dataset osm -n 100000           # writes to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/coax-index/coax/internal/dataset"
)

func main() {
	var (
		kind = flag.String("dataset", "airline", "dataset to generate: airline|osm")
		n    = flag.Int("n", 100000, "number of rows")
		out  = flag.String("o", "", "output file (default stdout)")
		seed = flag.Int64("seed", 0, "override generator seed (0 keeps the default)")
	)
	flag.Parse()

	var tab *dataset.Table
	switch *kind {
	case "airline":
		cfg := dataset.DefaultAirlineConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		tab = dataset.GenerateAirline(cfg)
	case "osm":
		cfg := dataset.DefaultOSMConfig(*n)
		if *seed != 0 {
			cfg.Seed = *seed
		}
		tab = dataset.GenerateOSM(cfg)
	default:
		fmt.Fprintf(os.Stderr, "coaxgen: unknown dataset %q (want airline or osm)\n", *kind)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if err := dataset.WriteCSV(w, tab); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d rows x %d cols to %s\n", tab.Len(), tab.Dims(), *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coaxgen:", err)
	os.Exit(1)
}
