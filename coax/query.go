package coax

// Query API v2: a composable, name-based query surface over *Index and
// *ShardedIndex. A Query is built from predicates on named (or positional)
// columns, optionally bounded by Limit, cancelled through a context, and
// executed with Run, Count, Collect, or Explain. Internally it compiles to
// the same index.Rect plan the legacy Query(Rect, Visitor) call uses, so
// both surfaces answer identically; the v2 path additionally supports
// early termination (a satisfied Limit or a false-returning visitor stops
// the scan, across every shard of a sharded index), context cancellation,
// a uniform row-ownership rule (Stable), and EXPLAIN reports.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/shard"
)

// Yield is the v2 visitor: it receives one matching row per call and
// reports whether the scan should continue — returning false stops it,
// including every worker of a sharded fan-out. Unless the query was built
// with Stable(), the row slice is only valid for the duration of the call.
type Yield = index.Yield

// Predicate is one constraint on a single column, built with Between, Eq,
// AtLeast, or AtMost.
type Predicate struct {
	lo, hi float64
	err    error
}

// Between constrains a column to [lo, hi], inclusive on both bounds.
func Between(lo, hi float64) Predicate {
	switch {
	case math.IsNaN(lo) || math.IsNaN(hi):
		return Predicate{err: fmt.Errorf("Between(%g, %g): NaN bound", lo, hi)}
	case lo > hi:
		return Predicate{err: fmt.Errorf("Between(%g, %g): inverted bounds", lo, hi)}
	}
	return Predicate{lo: lo, hi: hi}
}

// Eq constrains a column to exactly v.
func Eq(v float64) Predicate {
	if math.IsNaN(v) {
		return Predicate{err: fmt.Errorf("Eq(%g): NaN bound", v)}
	}
	return Predicate{lo: v, hi: v}
}

// AtLeast constrains a column to [v, +∞).
func AtLeast(v float64) Predicate {
	if math.IsNaN(v) {
		return Predicate{err: fmt.Errorf("AtLeast(%g): NaN bound", v)}
	}
	return Predicate{lo: v, hi: math.Inf(1)}
}

// AtMost constrains a column to (-∞, v].
func AtMost(v float64) Predicate {
	if math.IsNaN(v) {
		return Predicate{err: fmt.Errorf("AtMost(%g): NaN bound", v)}
	}
	return Predicate{lo: math.Inf(-1), hi: v}
}

// pred is one predicate bound to a column by name or position.
type pred struct {
	name string // resolved at compile time; "" when positional
	dim  int    // -1 when named
	p    Predicate
}

// Query is a composable description of a range scan. Build one with
// NewQuery (or FromRect), refine it with the chainable With/Where methods,
// and execute it with Run, Count, Collect, or Explain. A Query value is
// not safe for concurrent mutation but may be executed any number of
// times, concurrently, once built.
type Query struct {
	rect    *Rect // optional base rectangle (FromRect)
	preds   []pred
	limit   int
	ctx     context.Context
	stable  bool
	explain bool
	group   *colRef // aggregation grouping (agg.go); nil when ungrouped
}

// NewQuery returns an empty query matching every row.
func NewQuery() *Query { return &Query{} }

// FromRect returns a query over an explicit rectangle — the bridge from
// the legacy plan representation; Where predicates intersect with it.
func FromRect(r Rect) *Query {
	cl := r.Clone()
	return &Query{rect: &cl}
}

// clone returns a private copy so the execution helpers can set options
// without mutating the caller's builder.
func (q *Query) clone() *Query {
	cp := *q
	cp.preds = append([]pred(nil), q.preds...)
	return &cp
}

// Where adds a predicate on the named column. The name is resolved against
// the index's column names at execution time; constraining the same column
// twice intersects the predicates.
func (q *Query) Where(col string, p Predicate) *Query {
	q.preds = append(q.preds, pred{name: col, dim: -1, p: p})
	return q
}

// WhereDim adds a predicate on the column at position dim — for tables
// built without column names.
func (q *Query) WhereDim(dim int, p Predicate) *Query {
	q.preds = append(q.preds, pred{dim: dim, p: p})
	return q
}

// Limit caps the number of rows delivered; the scan stops — across every
// shard — once k rows have been yielded. k ≤ 0 removes the cap.
func (q *Query) Limit(k int) *Query {
	q.limit = k
	return q
}

// WithContext attaches a cancellation context: when it is done, the scan
// (including a sharded fan-out already in flight) stops within about one
// page of work, and the execution call returns the context's error.
func (q *Query) WithContext(ctx context.Context) *Query {
	q.ctx = ctx
	return q
}

// Stable requires every row handed to the visitor to be a private copy
// that stays valid after the call returns. This is the one ownership rule
// both *Index and *ShardedIndex honor identically; without it, rows are
// only valid for the duration of the visitor call, whichever index
// answers.
func (q *Query) Stable() *Query {
	q.stable = true
	return q
}

// WithExplain makes execution fill Result.Explain with the query's
// execution report.
func (q *Query) WithExplain() *Query {
	q.explain = true
	return q
}

// columnsOf reports the column names an index carries, or nil.
func columnsOf(idx Querier) []string {
	if c, ok := idx.(interface{ Columns() []string }); ok {
		return c.Columns()
	}
	return nil
}

// Compile resolves the query against idx into the rectangle plan the
// engine probes. It fails on an invalid predicate, an unknown column name,
// or a positional predicate out of range.
func (q *Query) Compile(idx Querier) (Rect, error) {
	dims := idx.Dims()
	var r Rect
	if q.rect != nil {
		if q.rect.Dims() != dims {
			return r, fmt.Errorf("coax: query rectangle has %d dims, index has %d", q.rect.Dims(), dims)
		}
		if err := q.rect.Validate(); err != nil {
			return r, err
		}
		r = q.rect.Clone()
	} else {
		r = FullRect(dims)
	}
	var cols []string
	for _, pr := range q.preds {
		label := pr.name
		if label == "" {
			label = fmt.Sprintf("column %d", pr.dim)
		}
		if pr.p.err != nil {
			return r, fmt.Errorf("coax: predicate on %s: %w", label, pr.p.err)
		}
		d := pr.dim
		if pr.name != "" {
			if cols == nil {
				cols = columnsOf(idx)
			}
			d = -1
			for i, c := range cols {
				if c == pr.name {
					d = i
					break
				}
			}
			if d < 0 {
				if len(cols) == 0 {
					return r, fmt.Errorf("coax: index has no column names; use WhereDim for %q", pr.name)
				}
				return r, fmt.Errorf("coax: unknown column %q (have %s)", pr.name, strings.Join(cols, ", "))
			}
		}
		if d < 0 || d >= dims {
			return r, fmt.Errorf("coax: %s out of range [0,%d)", label, dims)
		}
		// Intersect with any earlier constraint on the same column; the
		// result may be empty, which legitimately matches nothing.
		if pr.p.lo > r.Min[d] {
			r.Min[d] = pr.p.lo
		}
		if pr.p.hi < r.Max[d] {
			r.Max[d] = pr.p.hi
		}
	}
	return r, nil
}

// Result summarises one query execution.
type Result struct {
	// Rows is the number of rows delivered to the visitor.
	Rows int
	// Complete reports whether the scan visited every matching row; false
	// when a Limit, a false-returning visitor, or a cancelled context
	// stopped it early.
	Complete bool
	// Explain is the execution report, non-nil when the query was built
	// with WithExplain.
	Explain *Explain
}

// Run compiles and executes the query, invoking visit for every matching
// row until the Limit is reached, visit returns false, or the context is
// cancelled — whichever comes first. On cancellation it returns the
// context's error alongside the partial result. The visitor must not
// mutate the index being scanned (a sharded scan holds shard read locks
// while it runs, so a reentrant Insert/Delete/Update deadlocks): collect
// first, then mutate.
func (q *Query) Run(idx Querier, visit Yield) (Result, error) {
	r, err := q.Compile(idx)
	if err != nil {
		return Result{}, err
	}
	res := Result{}
	var exp *Explain
	if q.explain {
		exp = newExplain(idx, r)
		res.Explain = exp
	}
	spec := index.Spec{Ctx: q.ctx, Limit: q.limit, Stable: q.stable}

	limited := false
	yield := func(row []float64) bool {
		res.Rows++
		if !visit(row) {
			return false
		}
		if q.limit > 0 && res.Rows >= q.limit {
			limited = true
			return false
		}
		return true
	}

	// Sharded executions count their own query metrics inside shard.Exec
	// (that layer also answers the legacy batch path, so it owns the
	// counters); the single-index and generic paths are counted here — the
	// only layer that sees those queries whole.
	track := obs.On()
	var crep *core.ProbeReport

	start := time.Now()
	switch ix := idx.(type) {
	case *ShardedIndex:
		var rep *shard.Report
		if exp != nil {
			rep = &shard.Report{}
			// A trace turns the EXPLAIN's shard totals into a per-shard
			// breakdown: each fan-out worker records one timed span.
			spec.Trace = obs.NewTrace()
		}
		res.Complete = ix.Exec(r, spec, yield, rep)
		if exp != nil {
			exp.fromShard(rep)
			exp.fromTrace(spec.Trace)
		}
	case *Index:
		if exp != nil || track {
			crep = &core.ProbeReport{}
		}
		res.Complete = ix.Exec(r, spec, yield, crep)
		if exp != nil {
			exp.fromCore(crep)
		}
		if track {
			q.observe(start, res, crep)
		}
	default:
		res.Complete = runGeneric(idx, r, spec, yield)
		if track {
			q.observe(start, res, nil)
		}
	}
	if exp != nil {
		exp.Elapsed = time.Since(start)
		exp.RowsEmitted = res.Rows
		exp.Limited = limited
		exp.Complete = res.Complete
	}
	if q.ctx != nil && q.ctx.Err() != nil {
		res.Complete = false
		if exp != nil {
			exp.Cancelled = true
			exp.Complete = false
		}
		return res, q.ctx.Err()
	}
	return res, nil
}

// observe records one finished non-sharded execution in the query-plane
// metrics. crep may be nil (generic path: no probe report exists).
func (q *Query) observe(start time.Time, res Result, crep *core.ProbeReport) {
	obs.Queries.Inc()
	obs.QuerySeconds.Observe(time.Since(start).Seconds())
	obs.QueryRows.Add(int64(res.Rows))
	switch {
	case q.ctx != nil && q.ctx.Err() != nil:
		obs.QueryCancelled.Inc()
	case !res.Complete:
		obs.EarlyStops.Inc()
	}
	core.ObserveProbe(crep)
}

// runGeneric executes the plan against a plain Querier that offers only
// the legacy visitor. The limit, context, and stability options are still
// honored at the visitor boundary, but the underlying scan cannot be
// aborted, so early termination saves no work here.
func runGeneric(idx Querier, r Rect, spec index.Spec, yield Yield) bool {
	stopped := false
	idx.Query(r, func(row []float64) {
		if stopped || spec.Done() {
			stopped = true
			return
		}
		if spec.Stable {
			cp := make([]float64, len(row))
			copy(cp, row)
			row = cp
		}
		if !yield(row) {
			stopped = true
		}
	})
	return !stopped
}

// Count executes the query and returns the number of matching rows —
// capped at the Limit when one is set.
func (q *Query) Count(idx Querier) (int, error) {
	res, err := q.Run(idx, func([]float64) bool { return true })
	return res.Rows, err
}

// Collect executes the query and returns the matching rows, capped at the
// Limit when one is set. Returned rows are always stable private copies,
// whichever index answers. The result is preallocated from the limit (or
// a bounded row-count hint) as its sizing hint.
func (q *Query) Collect(idx Querier) ([][]float64, error) {
	out := make([][]float64, 0, collectHint(idx.Len(), q.limit))
	qq := q.clone().Stable()
	_, err := qq.Run(idx, func(row []float64) bool {
		out = append(out, row) // stable: rows are private copies
		return true
	})
	return out, err
}

// Explain executes the query, discarding rows, and returns its
// execution report — the EXPLAIN ANALYZE of the builder. The scan honors
// Limit and the context exactly as Run does, so the report describes the
// work a real execution performs.
func (q *Query) Explain(idx Querier) (*Explain, error) {
	qq := q.clone()
	qq.explain = true
	res, err := qq.Run(idx, func([]float64) bool { return true })
	return res.Explain, err
}

// collectHint sizes a result slice. A Limit is an exact upper bound on the
// result, so it (capped by the row count) is used directly; without one
// the result size is unknown, so start small and let append's geometric
// growth take over — preallocating from the full row count would spend a
// slice header per indexed row on a query that may match one.
func collectHint(rows, limit int) int {
	const (
		unknownHint = 64
		maxHint     = 4096 // a huge Limit on a selective query must not preallocate it all
	)
	if limit > 0 {
		return min(limit, rows, maxHint)
	}
	return min(rows, unknownHint)
}
