// Ingestion & Build API v2: a streaming, schema-aware Builder.
//
// The v1 surface (Build, BuildSharded, ReadCSV) demands a fully
// materialized Table, so build memory is a multiple of the dataset. The
// Builder instead consumes a RowSource — chunks of rows from a CSV stream,
// an in-memory table, or a generator — and, when a sample size is set,
// runs the paper's pipeline in two bounded-memory phases: reservoir-sample
// the stream, detect soft FDs and fit predictors on the sample, then
// stream every row exactly once into its final primary/outlier placement.
// Inputs no larger than the sample take the exact in-memory path, so small
// builds stay bit-for-bit identical to Build.
//
//	schema, _ := coax.NewSchema(
//		coax.Float("distance"), coax.Float("elapsed"), coax.Float("airtime"),
//		coax.Float("deptime"), coax.Float("arrtime"), coax.Float("schedarr"),
//		coax.Int("dayofweek"), coax.Categorical("carrier"),
//	)
//	src, _ := coax.OpenCSVFile("flights.csv", 0)
//	defer src.Close()
//	idx, err := coax.NewBuilder(schema, coax.DefaultOptions()).
//		SampleSize(50_000).
//		Build(src)
package coax

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/stats"
)

// ColumnKind declares what a column holds, steering detection: categorical
// codes carry no orderable structure for a soft FD to exploit and are
// excluded from dependency candidates automatically.
type ColumnKind int

const (
	// KindFloat is a continuous numeric column — the default, FD-eligible.
	KindFloat ColumnKind = iota
	// KindInt is an integer-valued column (ids, counts, timestamps);
	// FD-eligible — integer sequences are exactly the id→timestamp
	// dependencies the paper exploits.
	KindInt
	// KindCategorical is a category code (carrier, day-of-week): excluded
	// from soft-FD detection, indexed like any other dimension.
	KindCategorical
)

// SchemaColumn is one typed column declaration.
type SchemaColumn struct {
	Name string
	Kind ColumnKind
}

// Float declares a continuous numeric column.
func Float(name string) SchemaColumn { return SchemaColumn{Name: name, Kind: KindFloat} }

// Int declares an integer-valued column.
func Int(name string) SchemaColumn { return SchemaColumn{Name: name, Kind: KindInt} }

// Categorical declares a category-code column, excluded from soft-FD
// detection.
func Categorical(name string) SchemaColumn { return SchemaColumn{Name: name, Kind: KindCategorical} }

// Schema is an ordered set of typed column declarations.
type Schema struct {
	cols []SchemaColumn
}

// NewSchema validates the declarations: at least one column, every name
// non-empty and unique.
func NewSchema(cols ...SchemaColumn) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("coax: schema needs at least one column")
	}
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("coax: schema column %d has an empty name", i)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("coax: schema column %q declared twice", c.Name)
		}
		seen[c.Name] = true
	}
	return &Schema{cols: append([]SchemaColumn(nil), cols...)}, nil
}

// TableSchema derives an all-Float schema from a table's column names —
// the migration bridge for v1 callers (and the basis of the legacy Build
// shim). Unlike NewSchema it accepts empty or duplicate names, preserving
// v1's indifference to them.
func TableSchema(t *Table) *Schema {
	cols := make([]SchemaColumn, t.Dims())
	for i := range cols {
		if i < len(t.Cols) {
			cols[i].Name = t.Cols[i]
		}
	}
	return &Schema{cols: cols}
}

// ColumnsSchema derives an all-Float schema from raw column names, with
// TableSchema's leniency — the bridge for tools that stream from sources
// (CSV headers) whose names they do not control.
func ColumnsSchema(names []string) *Schema {
	cols := make([]SchemaColumn, len(names))
	for i, n := range names {
		cols[i].Name = n
	}
	return &Schema{cols: cols}
}

// Names returns the declared column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Len reports the number of declared columns.
func (s *Schema) Len() int { return len(s.cols) }

// categoricalDims lists the positions declared KindCategorical.
func (s *Schema) categoricalDims() []int {
	var out []int
	for i, c := range s.cols {
		if c.Kind == KindCategorical {
			out = append(out, i)
		}
	}
	return out
}

// Streaming source surface, re-exported from internal/dataset.

// RowSource is the streaming ingestion contract: named columns plus a
// sequence of row chunks ending in io.EOF. Chunk buffers may be reused
// between calls; see Chunk. Sources may additionally implement SizeHint()
// int (expected total rows, -1 unknown) and Reset() error (replayable —
// lets the sampled build stream twice instead of buffering a prefix).
type RowSource = dataset.RowSource

// Chunk is one block of rows from a RowSource; Data is row-major and valid
// only until the next call to Next.
type Chunk = dataset.Chunk

// NewTableSource streams an in-memory table in chunks without copying.
// chunkRows ≤ 0 picks the default granularity.
func NewTableSource(t *Table, chunkRows int) RowSource { return dataset.NewTableSource(t, chunkRows) }

// DefaultChunkRows is the chunk granularity sources use when a
// constructor's chunkRows argument is ≤ 0.
const DefaultChunkRows = dataset.DefaultChunkRows

// NewCSVSource streams CSV with a header row from r, parsing chunkRows
// rows at a time; every field must parse as float64.
func NewCSVSource(r io.Reader, chunkRows int) (RowSource, error) {
	s, err := dataset.NewCSVSource(r, chunkRows)
	if err != nil {
		return nil, err // a typed-nil *CSVSource must not leak into the interface
	}
	return s, nil
}

// CSVFileSource is a replayable, size-estimating CSV source over a file.
type CSVFileSource = dataset.CSVSource

// OpenCSVFile opens path as a replayable CSV source whose row-count
// estimate sharpens as it is read; the caller owns Close.
func OpenCSVFile(path string, chunkRows int) (*CSVFileSource, error) {
	return dataset.OpenCSVFile(path, chunkRows)
}

// SpillCSV copies r (typically a pipe) to a temporary CSV file and opens
// it as a replayable source whose Close also removes the file, so a
// sampled build can reservoir-sample the whole input instead of training
// on a biased prefix. Returns the byte count spilled.
func SpillCSV(r io.Reader, chunkRows int) (*CSVFileSource, int64, error) {
	return dataset.SpillCSV(r, chunkRows)
}

// NewOSMSource streams the synthetic OSM workload without materializing it.
func NewOSMSource(cfg OSMConfig, chunkRows int) RowSource {
	return dataset.NewOSMSource(cfg, chunkRows)
}

// NewAirlineSource streams the synthetic airline workload without
// materializing it.
func NewAirlineSource(cfg AirlineConfig, chunkRows int) RowSource {
	return dataset.NewAirlineSource(cfg, chunkRows)
}

// BuildProgress is one progress report from a streaming build.
type BuildProgress struct {
	// Phase is "sample" (drawing the row sample), "detect" (fitting soft
	// FDs), "place" (streaming rows into the index), or "finish"
	// (assembling structures).
	Phase string
	// Rows processed so far in this phase.
	Rows int
	// Total expected rows, or -1 when the source cannot estimate it.
	Total int
}

// Builder is the v2 build surface. Configure it fluently, then call Build
// or BuildSharded with a RowSource. A Builder is single-use per Build call
// but carries no per-build state, so it may be reused sequentially.
type Builder struct {
	schema     *Schema
	opt        Options
	sampleSize int
	progress   func(BuildProgress)
	// track is the per-build metrics observer. Build/BuildSharded set it on
	// a private copy of the builder, so the caller's Builder stays free of
	// per-build state and sequential reuse keeps working.
	track *buildObs
}

// NewBuilder creates a builder over schema. Categorical columns are merged
// into the detector's exclusion list.
func NewBuilder(schema *Schema, opt Options) *Builder {
	return &Builder{schema: schema, opt: opt}
}

// SampleSize sets the row-sample budget for soft-FD detection and grid
// boundary estimation. 0 (the default) disables sampling: the whole input
// is materialized and built exactly as v1's Build would. With n > 0,
// inputs of at most n rows still take the exact path — sampling only
// engages, and memory stays bounded, once the input outgrows the sample.
func (b *Builder) SampleSize(n int) *Builder { b.sampleSize = n; return b }

// Progress installs a callback invoked once per chunk and phase change on
// the building goroutine; keep it cheap.
func (b *Builder) Progress(fn func(BuildProgress)) *Builder { b.progress = fn; return b }

// report invokes the progress callback, if any, and feeds the build-plane
// metrics observer.
func (b *Builder) report(phase string, rows, total int) {
	b.track.observe(phase)
	if b.progress != nil {
		b.progress(BuildProgress{Phase: phase, Rows: rows, Total: total})
	}
}

// instrumented returns the builder to run a build with: a private copy
// carrying a fresh metrics observer when instrumentation is on, the
// receiver itself otherwise.
func (b *Builder) instrumented() *Builder {
	if !obs.On() {
		return b
	}
	cp := *b
	cp.track = &buildObs{start: time.Now()}
	return &cp
}

// buildObs accumulates one build's metrics: per-phase durations (cut at
// phase transitions seen by report), a periodically sampled peak-heap
// reading during the place phase, and the end-to-end totals flushed by
// finish. Builds run on one goroutine, so no locking is needed.
type buildObs struct {
	start      time.Time
	phase      string
	phaseStart time.Time
	peakHeap   uint64
	chunks     int
}

// heapSampleEvery is how many place-phase progress reports (chunks) pass
// between runtime.ReadMemStats samples — the reading briefly stops the
// world, so it must not run per chunk.
const heapSampleEvery = 16

func (o *buildObs) observe(phase string) {
	if o == nil {
		return
	}
	now := time.Now()
	if phase != o.phase {
		o.flushPhase(now)
		o.phase, o.phaseStart = phase, now
		o.chunks = 0
	}
	o.chunks++
	if phase == "place" && o.chunks%heapSampleEvery == 1 {
		o.sampleHeap()
	}
}

func (o *buildObs) flushPhase(now time.Time) {
	if o.phase == "" {
		return
	}
	if h := obs.BuildPhase(o.phase); h != nil {
		h.Observe(now.Sub(o.phaseStart).Seconds())
	}
}

func (o *buildObs) sampleHeap() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > o.peakHeap {
		o.peakHeap = ms.HeapAlloc
	}
}

// finish flushes the observer after a successful build. sampleLen/-Budget
// describe the sampling reservoir (budget ≤ 0: the build did not sample).
func (o *buildObs) finish(rows, sampleLen, sampleBudget int) {
	if o == nil {
		return
	}
	o.sampleHeap()
	o.flushPhase(time.Now())
	o.phase = ""
	obs.Builds.Inc()
	obs.BuildRows.Add(int64(rows))
	obs.BuildSeconds.Observe(time.Since(o.start).Seconds())
	if sampleBudget > 0 {
		fill := float64(sampleLen) / float64(sampleBudget)
		if fill > 1 {
			fill = 1
		}
		obs.BuildReservoir.Set(fill)
	}
	obs.BuildPeakHeap.Set(float64(o.peakHeap))
}

// prepare validates the source against the schema and returns the
// effective options (categorical exclusions merged) and column names.
func (b *Builder) prepare(src RowSource) (Options, []string, error) {
	opt := b.opt
	if b.schema == nil {
		return opt, nil, fmt.Errorf("coax: builder has no schema")
	}
	names := b.schema.Names()
	got := src.Columns()
	if len(got) != len(names) {
		return opt, nil, fmt.Errorf("coax: source has %d columns, schema declares %d", len(got), len(names))
	}
	for i, want := range names {
		if want != "" && got[i] != "" && got[i] != want {
			return opt, nil, fmt.Errorf("coax: source column %d is %q, schema declares %q", i, got[i], want)
		}
	}
	if cats := b.schema.categoricalDims(); len(cats) > 0 {
		merged := append([]int(nil), opt.SoftFD.ExcludeCols...)
		have := make(map[int]bool, len(merged))
		for _, c := range merged {
			have[c] = true
		}
		for _, c := range cats {
			if !have[c] {
				merged = append(merged, c)
			}
		}
		opt.SoftFD.ExcludeCols = merged
	}
	return opt, names, nil
}

// sampled holds the outcome of the sampling phase of a streaming build.
type sampled struct {
	sample *Table        // the row sample (or the entire small input)
	fd     softfd.Result // dependencies detected on the sample
	total  int           // rows seen in the sampling pass, -1 in prefix mode
	whole  bool          // sample IS the whole input: take the exact path
	prefix *Table        // prefix mode: buffered rows that must be replayed
}

// samplePhase draws the row sample. Replayable sources get a true uniform
// reservoir over the full stream (then rewind); one-shot sources get a
// buffered prefix — biased if the stream is ordered, but the only option
// without a second pass, and exact whenever the input fits the sample.
func (b *Builder) samplePhase(src RowSource, opt Options, names []string) (*sampled, error) {
	k := b.sampleSize
	dims := len(names)

	if dataset.CanReset(src) {
		resetter := src.(dataset.Resetter)
		rng := rand.New(rand.NewSource(opt.SoftFD.Seed))
		res := stats.NewRowReservoir(k, dims, rng)
		total := 0
		for {
			c, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			for i := 0; i < c.Rows(); i++ {
				res.Push(c.Row(i))
			}
			total += c.Rows()
			b.report("sample", total, dataset.SizeHint(src))
		}
		sample := dataset.View(names, res.Rows())
		if !res.Saturated() {
			// The reservoir holds every row in arrival order: the input is
			// small — take the exact in-memory path on it.
			return &sampled{sample: sample, whole: true, total: total}, nil
		}
		if err := resetter.Reset(); err != nil {
			return nil, fmt.Errorf("coax: rewinding source for placement pass: %w", err)
		}
		b.report("detect", 0, total)
		fd, err := softfd.DetectSample(sample, opt.SoftFD)
		if err != nil {
			return nil, fmt.Errorf("coax: soft-FD detection: %w", err)
		}
		return &sampled{sample: sample, fd: fd, total: total}, nil
	}

	// One-shot source: buffer the first k rows (rounded up to a chunk) as
	// both sample and staged prefix.
	prefix := dataset.NewTable(names)
	prefix.Grow(k)
	for prefix.Len() <= k {
		c, err := src.Next()
		if err == io.EOF {
			// Whole input fits the sample budget: exact path.
			return &sampled{sample: prefix, whole: true, total: prefix.Len()}, nil
		}
		if err != nil {
			return nil, err
		}
		// Growing by exactly the chunk (a no-op until the k-row capacity
		// runs out) avoids the append-doubling copy that would otherwise
		// hit on the chunk that overflows the sample budget.
		prefix.Grow(c.Rows())
		prefix.Data = append(prefix.Data, c.Data...)
		b.report("sample", prefix.Len(), dataset.SizeHint(src))
	}
	b.report("detect", 0, dataset.SizeHint(src))
	fd, err := softfd.DetectSample(prefix, opt.SoftFD)
	if err != nil {
		return nil, fmt.Errorf("coax: soft-FD detection: %w", err)
	}
	return &sampled{sample: prefix, fd: fd, total: -1, prefix: prefix}, nil
}

// Build constructs a single COAX index from src.
func (b *Builder) Build(src RowSource) (*Index, error) {
	b = b.instrumented()
	opt, names, err := b.prepare(src)
	if err != nil {
		return nil, err
	}
	if b.sampleSize <= 0 {
		t, err := dataset.Materialize(src)
		if err != nil {
			return nil, err
		}
		b.report("place", t.Len(), t.Len())
		idx, err := core.Build(t, opt)
		if err == nil {
			b.track.finish(t.Len(), 0, 0)
		}
		return idx, err
	}

	sp, err := b.samplePhase(src, opt, names)
	if err != nil {
		return nil, err
	}
	if sp.whole {
		b.report("place", sp.sample.Len(), sp.sample.Len())
		idx, err := core.Build(sp.sample, opt)
		if err == nil {
			b.track.finish(sp.sample.Len(), sp.sample.Len(), b.sampleSize)
		}
		return idx, err
	}

	totalHint := sp.total
	if totalHint < 0 {
		totalHint = dataset.SizeHint(src)
	}
	sb, err := core.NewStreamBuilder(names, sp.fd, sp.sample, opt, totalHint)
	if err != nil {
		return nil, err
	}
	place := func(row []float64) { sb.Add(row) }
	if err := b.placePhase(src, sp, place, func() int { return sb.Rows() }); err != nil {
		return nil, err
	}
	b.report("finish", sb.Rows(), sb.Rows())
	idx, err := sb.Finish()
	if err == nil {
		b.track.finish(sb.Rows(), sp.sample.Len(), b.sampleSize)
	}
	return idx, err
}

// BuildSharded constructs a sharded COAX index from src, routing chunks to
// per-shard streaming builders on a worker pool — the whole table is never
// held in one place.
func (b *Builder) BuildSharded(src RowSource, so ShardOptions) (*ShardedIndex, error) {
	b = b.instrumented()
	opt, names, err := b.prepare(src)
	if err != nil {
		return nil, err
	}
	if b.sampleSize <= 0 {
		t, err := dataset.Materialize(src)
		if err != nil {
			return nil, err
		}
		b.report("place", t.Len(), t.Len())
		idx, err := shard.Build(t, opt, so)
		if err == nil {
			b.track.finish(t.Len(), 0, 0)
		}
		return idx, err
	}

	sp, err := b.samplePhase(src, opt, names)
	if err != nil {
		return nil, err
	}
	if sp.whole {
		b.report("place", sp.sample.Len(), sp.sample.Len())
		idx, err := shard.Build(sp.sample, opt, so)
		if err == nil {
			b.track.finish(sp.sample.Len(), sp.sample.Len(), b.sampleSize)
		}
		return idx, err
	}

	totalHint := sp.total
	if totalHint < 0 {
		totalHint = dataset.SizeHint(src)
	}
	sb, err := shard.NewStreamBuilder(names, sp.fd, sp.sample, opt, so, totalHint)
	if err != nil {
		return nil, err
	}
	if err := b.placePhaseChunks(src, sp, sb); err != nil {
		return nil, err
	}
	b.report("finish", sb.Rows(), sb.Rows())
	idx, err := sb.Finish()
	if err == nil {
		b.track.finish(sb.Rows(), sp.sample.Len(), b.sampleSize)
	}
	return idx, err
}

// placePhase streams the prefix (if any) and the remainder of src through
// place, reporting progress per chunk.
func (b *Builder) placePhase(src RowSource, sp *sampled, place func([]float64), placed func() int) error {
	if sp.prefix != nil {
		for i := 0; i < sp.prefix.Len(); i++ {
			place(sp.prefix.Row(i))
		}
		b.report("place", placed(), dataset.SizeHint(src))
	}
	for {
		c, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for i := 0; i < c.Rows(); i++ {
			place(c.Row(i))
		}
		b.report("place", placed(), dataset.SizeHint(src))
	}
}

// placePhaseChunks is placePhase for the sharded builder, which accepts
// whole chunks (it re-batches per shard internally).
func (b *Builder) placePhaseChunks(src RowSource, sp *sampled, sb *shard.StreamBuilder) error {
	if sp.prefix != nil {
		if err := sb.Add(dataset.Chunk{Cols: sp.prefix.Dims(), Data: sp.prefix.Data}); err != nil {
			return err
		}
		b.report("place", sb.Rows(), dataset.SizeHint(src))
	}
	for {
		c, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sb.Add(c); err != nil {
			return err
		}
		b.report("place", sb.Rows(), dataset.SizeHint(src))
	}
}
