package coax_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"github.com/coax-index/coax/coax"
)

// Property: a snapshot serves bit-identical answers no matter how it is
// opened. For every engine shape (single vs sharded, grid vs R-tree
// outliers) and both v3 encodings (raw pages and per-page columnar
// compression), OpenFile over the mapped v3 file must return exactly the
// rows and aggregate values of the heap-decoded v2 load — bitwise, query
// by query — including under concurrent readers (CI runs this under
// -race, which exercises the shared decoded-page cache).

func TestPropertyMappedMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(12000))

	type saved struct {
		v2, v3, v3c string // heap format, v3 raw, v3 compressed
	}
	shapes := map[string]func(t *testing.T, dir string) saved{
		"single/grid": func(t *testing.T, dir string) saved {
			return saveSingle(t, dir, tab, coax.OutlierGrid)
		},
		"single/rtree": func(t *testing.T, dir string) saved {
			return saveSingle(t, dir, tab, coax.OutlierRTree)
		},
		"sharded/grid": func(t *testing.T, dir string) saved {
			opt := coax.DefaultOptions()
			so := coax.DefaultShardOptions()
			so.NumShards = 4
			idx, err := coax.BuildSharded(copyOSM(tab), opt, so)
			if err != nil {
				t.Fatal(err)
			}
			s := saved{
				v2:  filepath.Join(dir, "s.v2"),
				v3:  filepath.Join(dir, "s.v3"),
				v3c: filepath.Join(dir, "s.v3c"),
			}
			if err := coax.SaveShardedFile(s.v2, idx); err != nil {
				t.Fatal(err)
			}
			if err := coax.SaveShardedFileV3(s.v3, idx, false); err != nil {
				t.Fatal(err)
			}
			if err := coax.SaveShardedFileV3(s.v3c, idx, true); err != nil {
				t.Fatal(err)
			}
			return s
		},
	}

	for name, save := range shapes {
		t.Run(name, func(t *testing.T) {
			s := save(t, t.TempDir())
			heap := openSnap(t, s.v2)
			defer heap.Close()
			if heap.Mapped() {
				t.Fatal("v2 snapshot reports mapped")
			}
			queries := make([]coax.Rect, 0, 21)
			for i := 0; i < 20; i++ {
				queries = append(queries, randOSMRect(rng, tab))
			}
			queries = append(queries, coax.FullRect(tab.Dims()))

			for _, path := range []string{s.v3, s.v3c} {
				mapped := openSnap(t, path)
				if mapped.Version() != coax.SnapshotVersionV3 {
					t.Fatalf("%s: version %d", path, mapped.Version())
				}
				for qi, r := range queries {
					requireSameAnswers(t, heap, mapped, r, qi)
				}
				concurrentCompare(t, heap, mapped, queries)
				if err := mapped.PageErr(); err != nil {
					t.Fatalf("%s: page error: %v", path, err)
				}
				if err := mapped.Close(); err != nil {
					t.Fatalf("%s: close: %v", path, err)
				}
			}
		})
	}
}

func saveSingle(t *testing.T, dir string, tab *coax.Table, kind coax.OutlierIndexKind) (s struct{ v2, v3, v3c string }) {
	t.Helper()
	opt := coax.DefaultOptions()
	opt.OutlierKind = kind
	idx, err := coax.Build(copyOSM(tab), opt)
	if err != nil {
		t.Fatal(err)
	}
	s.v2 = filepath.Join(dir, "i.v2")
	s.v3 = filepath.Join(dir, "i.v3")
	s.v3c = filepath.Join(dir, "i.v3c")
	if err := coax.SaveFile(s.v2, idx); err != nil {
		t.Fatal(err)
	}
	if err := coax.SaveFileV3(s.v3, idx, false); err != nil {
		t.Fatal(err)
	}
	if err := coax.SaveFileV3(s.v3c, idx, true); err != nil {
		t.Fatal(err)
	}
	return s
}

func openSnap(t *testing.T, path string) *coax.Snapshot {
	t.Helper()
	sn, err := coax.OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return sn
}

// querierOf returns whichever index shape the snapshot holds.
func querierOf(t *testing.T, sn *coax.Snapshot) coax.Querier {
	t.Helper()
	if idx := sn.Index(); idx != nil {
		return idx
	}
	if sh := sn.Sharded(); sh != nil {
		return sh
	}
	t.Fatal("snapshot holds no index")
	return nil
}

// requireSameAnswers compares rows and every aggregate of one rectangle,
// bitwise.
func requireSameAnswers(t *testing.T, heap, mapped *coax.Snapshot, r coax.Rect, qi int) {
	t.Helper()
	hq, mq := querierOf(t, heap), querierOf(t, mapped)

	hr, err := coax.FromRect(r).Collect(hq)
	if err != nil {
		t.Fatalf("query %d: heap collect: %v", qi, err)
	}
	mr, err := coax.FromRect(r).Collect(mq)
	if err != nil {
		t.Fatalf("query %d: mapped collect: %v", qi, err)
	}
	if len(hr) != len(mr) {
		t.Fatalf("query %d: %d rows heap, %d mapped", qi, len(hr), len(mr))
	}
	sortRowsBits(hr)
	sortRowsBits(mr)
	for i := range hr {
		for k := range hr[i] {
			if math.Float64bits(hr[i][k]) != math.Float64bits(mr[i][k]) {
				t.Fatalf("query %d row %d col %d: %v heap, %v mapped (bit-level)", qi, i, k, hr[i][k], mr[i][k])
			}
		}
	}

	for _, agg := range []coax.Aggregation{
		coax.CountRows(), coax.Sum("lon"), coax.Min("lat"), coax.Max("lon"), coax.Avg("lat"),
	} {
		ha, err := coax.FromRect(r).Aggregate(hq, agg)
		if err != nil {
			t.Fatalf("query %d: heap aggregate: %v", qi, err)
		}
		ma, err := coax.FromRect(r).Aggregate(mq, agg)
		if err != nil {
			t.Fatalf("query %d: mapped aggregate: %v", qi, err)
		}
		if ha.Count != ma.Count || ha.Valid != ma.Valid ||
			math.Float64bits(ha.Value) != math.Float64bits(ma.Value) {
			t.Fatalf("query %d: aggregate heap %+v, mapped %+v", qi, ha, ma)
		}
	}
}

// concurrentCompare runs the whole query set from several goroutines at
// once against the mapped snapshot, checking counts against the heap
// baseline — the race detector watches the shared page cache underneath.
func concurrentCompare(t *testing.T, heap, mapped *coax.Snapshot, queries []coax.Rect) {
	t.Helper()
	hq, mq := querierOf(t, heap), querierOf(t, mapped)
	want := make([]int, len(queries))
	for i, r := range queries {
		n, err := coax.FromRect(r).Count(hq)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, r := range queries {
				n, err := coax.FromRect(r).Count(mq)
				if err != nil {
					t.Errorf("query %d: %v", i, err)
					return
				}
				if n != want[i] {
					t.Errorf("query %d: count %d, want %d", i, n, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func sortRowsBits(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if ab, bb := math.Float64bits(a[k]), math.Float64bits(b[k]); ab != bb {
				return ab < bb
			}
		}
		return false
	})
}
