package coax_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/coax-index/coax/coax"
)

func TestNewSchemaValidation(t *testing.T) {
	if _, err := coax.NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := coax.NewSchema(coax.Float("")); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := coax.NewSchema(coax.Float("a"), coax.Int("a")); err == nil {
		t.Error("duplicate name accepted")
	}
	s, err := coax.NewSchema(coax.Float("a"), coax.Int("b"), coax.Categorical("c"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Names(); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("Names = %v", got)
	}
}

func TestBuilderSchemaMismatch(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(100))
	schema, err := coax.NewSchema(coax.Float("id"), coax.Float("timestamp"), coax.Float("lat"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = coax.NewBuilder(schema, coax.DefaultOptions()).Build(coax.NewTableSource(tab, 0))
	if err == nil || !strings.Contains(err.Error(), "4 columns") {
		t.Fatalf("column-count mismatch not reported: %v", err)
	}

	schema, err = coax.NewSchema(coax.Float("id"), coax.Float("ts"), coax.Float("lat"), coax.Float("lon"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = coax.NewBuilder(schema, coax.DefaultOptions()).Build(coax.NewTableSource(tab, 0))
	if err == nil || !strings.Contains(err.Error(), `"ts"`) {
		t.Fatalf("column-name mismatch not reported: %v", err)
	}
}

// TestCategoricalColumnsExcludedFromFDs declares a perfectly correlated
// column categorical; the detector must then skip it even though a linear
// model would fit it exactly.
func TestCategoricalColumnsExcludedFromFDs(t *testing.T) {
	tab := coax.NewTable([]string{"x", "y", "z"})
	for i := 0; i < 5000; i++ {
		v := float64(i)
		tab.Append([]float64{v, 2 * v, float64(i % 7)})
	}

	schemaAll, _ := coax.NewSchema(coax.Float("x"), coax.Float("y"), coax.Float("z"))
	idx, err := coax.NewBuilder(schemaAll, coax.DefaultOptions()).Build(coax.NewTableSource(tab, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.BuildStats().Groups) == 0 {
		t.Fatal("x→y dependency not detected with an all-float schema")
	}

	schemaCat, _ := coax.NewSchema(coax.Float("x"), coax.Categorical("y"), coax.Categorical("z"))
	idx, err = coax.NewBuilder(schemaCat, coax.DefaultOptions()).Build(coax.NewTableSource(tab, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range idx.BuildStats().Groups {
		for _, m := range g.Members {
			if m == 1 || m == 2 {
				t.Fatalf("categorical column %d appears in group %v", m, g.Members)
			}
		}
	}
}

// TestBuilderPrefixMode streams from a non-replayable reader: the build
// must fall back to prefix sampling and still answer queries exactly.
func TestBuilderPrefixMode(t *testing.T) {
	cfg := coax.DefaultOSMConfig(12000)
	tab := coax.GenerateOSM(cfg)
	var buf bytes.Buffer
	if err := coax.WriteCSV(&buf, tab); err != nil {
		t.Fatal(err)
	}
	src, err := coax.NewCSVSource(bytes.NewReader(buf.Bytes()), 512)
	if err != nil {
		t.Fatal(err)
	}

	idx, err := coax.NewBuilder(coax.TableSchema(tab), coax.DefaultOptions()).
		SampleSize(2000).
		Build(src)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != tab.Len() {
		t.Fatalf("index holds %d rows, want %d", idx.Len(), tab.Len())
	}

	legacy, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := coax.FullRect(4)
	r.Min[1], r.Max[1] = 2000, 9000
	if got, want := coax.Count(idx, r), coax.Count(legacy, r); got != want {
		t.Fatalf("prefix-mode count %d, legacy %d", got, want)
	}
}

// TestBuilderProgressPhases checks the callback walks the documented
// phases in order for a sampled streaming build.
func TestBuilderProgressPhases(t *testing.T) {
	cfg := coax.DefaultOSMConfig(9000)
	schema, err := coax.NewSchema(
		coax.Int("id"), coax.Float("timestamp"), coax.Float("lat"), coax.Float("lon"))
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	_, err = coax.NewBuilder(schema, coax.DefaultOptions()).
		SampleSize(1500).
		Progress(func(p coax.BuildProgress) {
			if len(phases) == 0 || phases[len(phases)-1] != p.Phase {
				phases = append(phases, p.Phase)
			}
		}).
		Build(coax.NewOSMSource(cfg, 1024))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"sample", "detect", "place", "finish"}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

// TestBuilderShardedStreaming drives the direct-to-sharded path through
// the public API and cross-checks counts against the single-index build.
func TestBuilderShardedStreaming(t *testing.T) {
	cfg := coax.DefaultAirlineConfig(15000)
	tab := coax.GenerateAirline(cfg)

	so := coax.DefaultShardOptions()
	so.NumShards = 4
	sharded, err := coax.NewBuilder(coax.TableSchema(tab), coax.DefaultOptions()).
		SampleSize(3000).
		BuildSharded(coax.NewAirlineSource(cfg, 2048), so)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Len() != tab.Len() {
		t.Fatalf("sharded holds %d rows, want %d", sharded.Len(), tab.Len())
	}

	legacy, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := coax.FullRect(8)
	r.Min[2], r.Max[2] = 60, 120 // airtime between 60 and 120 minutes
	if got, want := coax.Count(sharded, r), coax.Count(legacy, r); got != want {
		t.Fatalf("sharded streaming count %d, legacy %d", got, want)
	}
}
