package coax_test

import (
	"testing"

	"github.com/coax-index/coax/coax"
)

// TestSampledFDDegradationBounded quantifies what sampling costs: at 1%
// and 10% sample rates on the OSM- and airline-style workloads, detection
// must still find every correlation group, and the outlier ratio — the
// fraction of rows the weaker sampled models push into the slow path —
// must stay within a small absolute and relative band of the full-scan
// build (measured headroom ≈ 2× the observed drift; see BENCH_build.json
// for the tracked values).
func TestSampledFDDegradationBounded(t *testing.T) {
	const (
		rows      = 60000
		absSlack  = 0.05 // outlier-ratio drift allowed in absolute terms
		relFactor = 1.6  // ...and relative to the full-scan ratio
	)

	type workload struct {
		name   string
		tab    *coax.Table
		source func(chunk int) coax.RowSource
	}
	osmCfg := coax.DefaultOSMConfig(rows)
	airCfg := coax.DefaultAirlineConfig(rows)
	workloads := []workload{
		{"osm", coax.GenerateOSM(osmCfg),
			func(chunk int) coax.RowSource { return coax.NewOSMSource(osmCfg, chunk) }},
		{"airline", coax.GenerateAirline(airCfg),
			func(chunk int) coax.RowSource { return coax.NewAirlineSource(airCfg, chunk) }},
	}

	for _, w := range workloads {
		opt := coax.DefaultOptions()
		full, err := coax.Build(w.tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		fs := full.BuildStats()
		fullRatio := float64(fs.OutlierRows) / float64(fs.Rows)

		for _, rate := range []float64{0.01, 0.10} {
			k := int(float64(rows) * rate)
			idx, err := coax.NewBuilder(coax.TableSchema(w.tab), opt).
				SampleSize(k).
				Build(w.source(4096))
			if err != nil {
				t.Fatalf("%s@%g: %v", w.name, rate, err)
			}
			s := idx.BuildStats()
			if len(s.Groups) != len(fs.Groups) {
				t.Errorf("%s@%g: detected %d groups, full scan finds %d",
					w.name, rate, len(s.Groups), len(fs.Groups))
			}
			ratio := float64(s.OutlierRows) / float64(s.Rows)
			if ratio > fullRatio+absSlack {
				t.Errorf("%s@%g: outlier ratio %.4f exceeds full-scan %.4f + %.2f",
					w.name, rate, ratio, fullRatio, absSlack)
			}
			if ratio > fullRatio*relFactor {
				t.Errorf("%s@%g: outlier ratio %.4f exceeds %.1f× full-scan %.4f",
					w.name, rate, ratio, relFactor, fullRatio)
			}
			// Exactness is non-negotiable at any sample rate.
			if got, want := coax.Count(idx, coax.FullRect(w.tab.Dims())), w.tab.Len(); got != want {
				t.Errorf("%s@%g: index holds %d rows, want %d", w.name, rate, got, want)
			}
		}
	}
}
