package coax_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/workload"
)

// queryV2Indexes builds the four engine configurations the v2 surface must
// agree on: single and sharded, each with grid and R-tree outliers.
func queryV2Indexes(t *testing.T, tab *coax.Table) map[string]coax.Querier {
	t.Helper()
	out := make(map[string]coax.Querier)
	for _, kind := range []struct {
		name string
		k    coax.OutlierIndexKind
	}{{"grid", coax.OutlierGrid}, {"rtree", coax.OutlierRTree}} {
		opt := coax.DefaultOptions()
		opt.SoftFD.SampleCount = 5000
		opt.OutlierKind = kind.k
		single, err := coax.Build(tab, opt)
		if err != nil {
			t.Fatalf("Build(%s): %v", kind.name, err)
		}
		out["single-"+kind.name] = single

		so := coax.DefaultShardOptions()
		so.NumShards = 4
		so.Workers = 4
		sharded, err := coax.BuildSharded(tab, opt, so)
		if err != nil {
			t.Fatalf("BuildSharded(%s): %v", kind.name, err)
		}
		out["sharded-"+kind.name] = sharded
	}
	return out
}

// rowKey renders a row for multiset comparison.
func rowKey(row []float64) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = fmt.Sprintf("%x", math.Float64bits(v))
	}
	return strings.Join(parts, ",")
}

func sortedKeys(rows [][]float64) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = rowKey(r)
	}
	sort.Strings(keys)
	return keys
}

// TestV2EquivalentToLegacy is the property test of the acceptance
// criteria: for random rectangles, the v2 builder — via FromRect and via
// per-dimension predicates — returns exactly the multiset the legacy
// Query(Rect, Visitor) path returns, on single and sharded indexes with
// both outlier kinds, and Limit(k) returns exactly min(k, total) rows all
// of which belong to that multiset.
func TestV2EquivalentToLegacy(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(12000))
	indexes := queryV2Indexes(t, tab)
	rng := rand.New(rand.NewSource(99))

	for trial := 0; trial < 60; trial++ {
		r := workload.RandRect(rng, tab)
		for name, idx := range indexes {
			legacy := coax.Collect(idx, r)
			want := sortedKeys(legacy)

			// Path 1: FromRect.
			got, err := coax.FromRect(r).Collect(idx)
			if err != nil {
				t.Fatalf("%s: FromRect.Collect: %v", name, err)
			}
			if g := sortedKeys(got); fmt.Sprint(g) != fmt.Sprint(want) {
				t.Fatalf("%s rect %v: FromRect returned %d rows, legacy %d", name, r, len(got), len(legacy))
			}

			// Path 2: the same plan expressed as positional predicates.
			q := coax.NewQuery()
			for d := 0; d < r.Dims(); d++ {
				if math.IsInf(r.Min[d], -1) && math.IsInf(r.Max[d], 1) {
					continue
				}
				q.WhereDim(d, coax.Between(r.Min[d], r.Max[d]))
			}
			n, err := q.Count(idx)
			if err != nil {
				t.Fatalf("%s: builder Count: %v", name, err)
			}
			if n != len(legacy) {
				t.Fatalf("%s rect %v: builder counted %d, legacy %d", name, r, n, len(legacy))
			}

			// Limit(k): exactly min(k, total) rows, all from the legacy set.
			k := 1 + rng.Intn(20)
			limited, err := coax.CollectLimit(idx, r, k)
			if err != nil {
				t.Fatalf("%s: CollectLimit: %v", name, err)
			}
			if wantN := min(k, len(legacy)); len(limited) != wantN {
				t.Fatalf("%s rect %v: Limit(%d) returned %d rows, want %d", name, r, k, len(limited), wantN)
			}
			set := make(map[string]int, len(legacy))
			for _, row := range legacy {
				set[rowKey(row)]++
			}
			for _, row := range limited {
				key := rowKey(row)
				if set[key] == 0 {
					t.Fatalf("%s rect %v: Limit(%d) returned row %v outside the legacy result", name, r, k, row)
				}
				set[key]--
			}
		}
	}
}

// TestWhereByName resolves predicates against column names on every
// engine, including after a snapshot round trip.
func TestWhereByName(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(8000))
	opt := coax.DefaultOptions()
	opt.SoftFD.SampleCount = 4000
	idx, err := coax.Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}

	// osm columns: id, timestamp, lat, lon.
	q := coax.NewQuery().Where("lat", coax.Between(-10, 10)).Where("lon", coax.AtLeast(0))
	n, err := q.Count(idx)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < tab.Len(); i++ {
		row := tab.Row(i)
		if row[2] >= -10 && row[2] <= 10 && row[3] >= 0 {
			want++
		}
	}
	if n != want {
		t.Fatalf("name-based Count = %d, want %d", n, want)
	}

	// Unknown names and invalid predicates are compile errors.
	if _, err := coax.NewQuery().Where("altitude", coax.Eq(1)).Count(idx); err == nil {
		t.Error("unknown column did not error")
	}
	if _, err := coax.NewQuery().Where("lat", coax.Between(5, 4)).Count(idx); err == nil {
		t.Error("inverted Between did not error")
	}
	if _, err := coax.NewQuery().Where("lat", coax.Eq(math.NaN())).Count(idx); err == nil {
		t.Error("NaN predicate did not error")
	}
	if _, err := coax.NewQuery().WhereDim(9, coax.Eq(1)).Count(idx); err == nil {
		t.Error("out-of-range WhereDim did not error")
	}

	// Names survive the snapshot round trip (the "cols" section).
	path := t.TempDir() + "/named.coax"
	if err := coax.SaveFile(path, idx); err != nil {
		t.Fatal(err)
	}
	back, err := coax.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := q.Count(back)
	if err != nil {
		t.Fatalf("name-based query on loaded snapshot: %v", err)
	}
	if n2 != want {
		t.Fatalf("loaded snapshot counted %d, want %d", n2, want)
	}
}

// TestShardedCancellation asserts the fan-out contract: a cancelled
// context stops a sharded scan promptly — no further rows are delivered
// after cancellation, and the call returns the context's error.
func TestShardedCancellation(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(40000))
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	so.Workers = 4 // force the parallel streaming path even on 1 CPU
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}

	// Pre-cancelled: nothing may be delivered.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := coax.NewQuery().WithContext(done).Run(idx, func([]float64) bool {
		t.Error("row delivered on a cancelled context")
		return true
	})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled Run error = %v, want context.Canceled", err)
	}
	if res.Complete || res.Rows != 0 {
		t.Fatalf("pre-cancelled Run = %+v, want 0 incomplete rows", res)
	}

	// Cancelled mid-scan by the visitor: the fan-out stops within one page
	// (one 128-row delivery chunk — the context is polled at chunk
	// boundaries) instead of streaming the remaining tens of thousands of
	// rows.
	ctx, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	res, err = coax.NewQuery().WithContext(ctx).Run(idx, func([]float64) bool {
		cancel2()
		return true
	})
	if err != context.Canceled {
		t.Fatalf("mid-scan Run error = %v, want context.Canceled", err)
	}
	if res.Complete {
		t.Error("cancelled scan reported Complete")
	}
	const pageRows = 128 // internal/shard scanChunkRows
	if res.Rows < 1 || res.Rows > pageRows {
		t.Fatalf("rows delivered after mid-scan cancellation = %d, want within one %d-row page", res.Rows, pageRows)
	}
}

// TestLimitStopsScanWork asserts early termination saves engine work, not
// just visitor calls: on a single index (deterministic, single-threaded) a
// Limit(5) scan examines far fewer rows than the full scan does.
func TestLimitStopsScanWork(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(30000))
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	full, err := coax.NewQuery().Explain(idx)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := coax.NewQuery().Limit(5).Explain(idx)
	if err != nil {
		t.Fatal(err)
	}
	fullWork := full.Primary.RowsScanned + full.Outlier.RowsScanned
	limitedWork := limited.Primary.RowsScanned + limited.Outlier.RowsScanned
	if fullWork < int64(tab.Len()) {
		t.Fatalf("full scan examined %d rows of %d", fullWork, tab.Len())
	}
	if limitedWork*100 > fullWork {
		t.Fatalf("Limit(5) examined %d rows, full scan %d — early termination saved no work", limitedWork, fullWork)
	}
	if !limited.Limited || limited.Complete {
		t.Fatalf("limited explain = limited:%v complete:%v, want limited, incomplete", limited.Limited, limited.Complete)
	}
	if limited.RowsEmitted != 5 {
		t.Fatalf("RowsEmitted = %d, want 5", limited.RowsEmitted)
	}
}

// TestExplainAirline is the acceptance scenario: an airline-style query on
// a dependent column shows the predictor-interval translation and the
// primary/outlier row-scan split.
func TestExplainAirline(t *testing.T) {
	tab := coax.GenerateAirline(coax.DefaultAirlineConfig(40000))
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := idx.BuildStats()
	if len(st.Groups) == 0 {
		t.Fatal("no soft-FD groups detected on the airline table")
	}

	q := coax.NewQuery().Where("airtime", coax.Between(60, 90)).WithExplain()
	var rows int
	res, err := q.Run(idx, func([]float64) bool { rows++; return true })
	if err != nil {
		t.Fatal(err)
	}
	exp := res.Explain
	if exp == nil {
		t.Fatal("WithExplain produced no report")
	}
	if len(exp.Translations) == 0 {
		t.Fatal("explain shows no dependency translation for the airtime constraint")
	}
	tr := exp.Translations[0]
	if tr.Dependent != "airtime" {
		t.Errorf("translation dependent = %q, want airtime", tr.Dependent)
	}
	if !tr.Feasible || tr.PredictorMin == nil || tr.PredictorMax == nil {
		t.Fatalf("translation %+v: want a feasible finite predictor interval", tr)
	}
	if *tr.PredictorMin >= *tr.PredictorMax {
		t.Errorf("degenerate predictor interval [%g, %g]", *tr.PredictorMin, *tr.PredictorMax)
	}
	if !exp.PrimaryProbed || exp.Primary.RowsScanned == 0 {
		t.Errorf("primary probe missing from explain: %+v", exp.Primary)
	}
	if !exp.OutlierProbed || exp.Outlier.RowsScanned == 0 {
		t.Errorf("outlier probe missing from explain: %+v", exp.Outlier)
	}
	if got := exp.Primary.RowsMatched + exp.Outlier.RowsMatched; got != int64(rows) {
		t.Errorf("explain matched %d rows, visitor saw %d", got, rows)
	}
	if legacy := coax.Count(idx, mustCompile(t, q, idx)); legacy != rows {
		t.Errorf("v2 delivered %d rows, legacy %d", rows, legacy)
	}

	// The sharded engine reports its fan-out on top of the same numbers.
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	sharded, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	sexp, err := coax.NewQuery().Where("airtime", coax.Between(60, 90)).Explain(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if sexp.ShardsProbed == 0 {
		t.Errorf("sharded explain probed no shards: %+v", sexp)
	}
	if sexp.ShardsProbed+sexp.ShardsPruned != sharded.NumShards() {
		t.Errorf("shards probed %d + pruned %d != %d", sexp.ShardsProbed, sexp.ShardsPruned, sharded.NumShards())
	}
	if len(sexp.Translations) == 0 {
		t.Error("sharded explain lost the translation steps")
	}
}

func mustCompile(t *testing.T, q *coax.Query, idx coax.Querier) coax.Rect {
	t.Helper()
	r, err := q.Compile(idx)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStableOwnership asserts the unified contract: rows from a Stable()
// query survive later index mutation and compaction on both engines.
func TestStableOwnership(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(5000))
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	so := coax.DefaultShardOptions()
	so.NumShards = 2
	sharded, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}

	for name, idx := range map[string]coax.Querier{"single": single, "sharded": sharded} {
		var retained [][]float64
		var copies [][]float64
		_, err := coax.NewQuery().Stable().Limit(50).Run(idx, func(row []float64) bool {
			retained = append(retained, row)
			cp := make([]float64, len(row))
			copy(cp, row)
			copies = append(copies, cp)
			return true
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Mutate and compact: aliasing rows would be rewritten.
		mut := idx.(interface {
			Insert(row []float64) error
			Delete(row []float64) error
		})
		for i := 0; i < 100; i++ {
			if err := mut.Insert([]float64{float64(i), float64(i), 0, 0}); err != nil {
				t.Fatal(err)
			}
		}
		if c, ok := idx.(interface{ Compact() }); ok {
			c.Compact()
		}
		for i := range retained {
			if rowKey(retained[i]) != rowKey(copies[i]) {
				t.Fatalf("%s: stable row %d changed after mutation", name, i)
			}
		}
	}
}

// TestMutatingVisitorDoesNotDeadlock regression-tests the streaming
// fan-out's lock discipline: a worker never blocks on delivery while
// holding its shard's read lock, so a visitor that mutates the index —
// discouraged, but possible — waits for the in-flight probe instead of
// deadlocking against it.
func TestMutatingVisitorDoesNotDeadlock(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(3000))
	so := coax.DefaultShardOptions()
	so.NumShards = 4
	so.Workers = 4
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	deleted := 0
	res, err := coax.NewQuery().Limit(200).Run(idx, func(row []float64) bool {
		if err := idx.Delete(row); err == nil { // rows are stable copies
			deleted++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Error("mutating visitor deleted nothing")
	}
	if idx.Len() != tab.Len()-deleted {
		t.Errorf("index holds %d rows after %d deletes of %d", idx.Len(), deleted, tab.Len())
	}
	_ = res
}

// TestCancelledZeroMatchScanStops regression-tests page-granularity
// cancellation: a query whose candidate pages match nothing never calls
// the visitor, so a yield-side check alone would let a cancelled scan run
// to completion. The abort hook is polled per page instead — a cancelled
// context must stop the scan before it grinds through the candidates.
func TestCancelledZeroMatchScanStops(t *testing.T) {
	// A bimodal column: every value is 0 or 100, so mode∈[40,60] is inside
	// the index bounds (not prunable) yet matches no row.
	tab := coax.NewTable([]string{"x", "mode"})
	for i := 0; i < 100000; i++ {
		tab.Append([]float64{float64(i), float64((i % 2) * 100)})
	}
	idx, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := coax.NewQuery().Where("mode", coax.Between(40, 60)).WithContext(ctx).WithExplain()
	res, err := q.Run(idx, func([]float64) bool {
		t.Error("visitor called on a zero-match query")
		return true
	})
	if err != context.Canceled {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	scanned := res.Explain.Primary.RowsScanned + res.Explain.Outlier.RowsScanned
	if scanned != 0 {
		t.Fatalf("pre-cancelled zero-match query still scanned %d rows", scanned)
	}

	// Sanity: uncancelled, the same query completes and matches nothing.
	n, err := coax.NewQuery().Where("mode", coax.Between(40, 60)).Count(idx)
	if err != nil || n != 0 {
		t.Fatalf("uncancelled zero-match query = %d, %v", n, err)
	}
}
