package coax_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/coax"
)

// Property: for every engine shape (single vs sharded, grid vs R-tree
// outlier index) in every mutation state (fresh, tombstoned, compacted),
// Query.Aggregate must agree with running the same query and folding the
// rows in the visitor. COUNT/MIN/MAX are order-independent and must match
// bitwise everywhere; SUM must match bitwise on the single-index engines
// (the batch fold visits rows in scan order) and within float tolerance on
// the sharded engine, whose row-path baseline folds in nondeterministic
// arrival order while the pushdown merges per-shard partials in shard
// order. The race detector covers the sharded fan-out when CI runs this
// under -race.

// aggQuerier is the slice of engine surface the property needs.
type aggQuerier interface {
	coax.Querier
	Delete(row []float64) error
	Compact()
}

func TestPropertyAggregateMatchesRowFold(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(20000))

	build := map[string]func(t *testing.T) aggQuerier{
		"single/grid": func(t *testing.T) aggQuerier {
			idx, err := coax.Build(copyOSM(tab), coax.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"single/rtree": func(t *testing.T) aggQuerier {
			opt := coax.DefaultOptions()
			opt.OutlierKind = coax.OutlierRTree
			idx, err := coax.Build(copyOSM(tab), opt)
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"sharded/grid": func(t *testing.T) aggQuerier {
			so := coax.DefaultShardOptions()
			so.NumShards = 4
			idx, err := coax.BuildSharded(copyOSM(tab), coax.DefaultOptions(), so)
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
		"sharded/rtree": func(t *testing.T) aggQuerier {
			opt := coax.DefaultOptions()
			opt.OutlierKind = coax.OutlierRTree
			so := coax.DefaultShardOptions()
			so.NumShards = 4
			idx, err := coax.BuildSharded(copyOSM(tab), opt, so)
			if err != nil {
				t.Fatal(err)
			}
			return idx
		},
	}

	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			idx := mk(t)
			exact := len(name) > 6 && name[:6] == "single"
			states := []struct {
				name string
				prep func()
			}{
				{"fresh", func() {}},
				{"tombstoned", func() {
					for i := 0; i < 3000; i += 3 {
						if err := idx.Delete(tab.Row(i)); err != nil {
							t.Fatal(err)
						}
					}
				}},
				{"compacted", func() { idx.Compact() }},
			}
			for _, state := range states {
				state.prep()
				for qi := 0; qi < 15; qi++ {
					r := randOSMRect(rng, tab)
					checkAggProperty(t, idx, r, name+"/"+state.name, exact)
				}
			}
		})
	}
}

// checkAggProperty compares every aggregate op (plus one GROUP BY) against
// a visitor fold of the same query.
func checkAggProperty(t *testing.T, idx aggQuerier, r coax.Rect, label string, exact bool) {
	t.Helper()
	var n int64
	var sum, minv, maxv float64
	first := true
	if _, err := coax.FromRect(r).Run(idx, func(row []float64) bool {
		v := row[3] // lon
		if first {
			minv, maxv = v, v
			first = false
		} else {
			if v < minv {
				minv = v
			}
			if v > maxv {
				maxv = v
			}
		}
		sum += v
		n++
		return true
	}); err != nil {
		t.Fatalf("%s: row fold: %v", label, err)
	}

	res, err := coax.FromRect(r).Aggregate(idx, coax.CountRows())
	if err != nil {
		t.Fatalf("%s: count: %v", label, err)
	}
	if !res.Complete || res.Count != n || !res.Valid || res.Value != float64(n) {
		t.Fatalf("%s: count %+v, want %d", label, res, n)
	}

	for _, op := range []struct {
		agg  coax.Aggregation
		want float64
	}{
		{coax.Min("lon"), minv},
		{coax.Max("lon"), maxv},
	} {
		res, err := coax.FromRect(r).Aggregate(idx, op.agg)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, res.Op, err)
		}
		if n == 0 {
			if res.Valid {
				t.Fatalf("%s: %s valid over zero rows", label, res.Op)
			}
			continue
		}
		// MIN/MAX are fold-order independent: bitwise equal everywhere.
		if !res.Valid || math.Float64bits(res.Value) != math.Float64bits(op.want) {
			t.Fatalf("%s: %s = %v (valid=%v), want %v", label, res.Op, res.Value, res.Valid, op.want)
		}
	}

	res, err = coax.FromRect(r).Aggregate(idx, coax.Sum("lon"))
	if err != nil {
		t.Fatalf("%s: sum: %v", label, err)
	}
	if res.Count != n {
		t.Fatalf("%s: sum counted %d rows, want %d", label, res.Count, n)
	}
	if n > 0 {
		if exact {
			if math.Float64bits(res.Value) != math.Float64bits(sum) {
				t.Fatalf("%s: sum %x, want %x bitwise", label,
					math.Float64bits(res.Value), math.Float64bits(sum))
			}
		} else if rel := math.Abs(res.Value-sum) / math.Max(math.Abs(sum), 1); rel > 1e-9 {
			t.Fatalf("%s: sum %v vs row fold %v (rel %g)", label, res.Value, sum, rel)
		}
	}
}

// TestPropertyGroupByMatchesRowFold checks the grouped fold on the airline
// carrier column across single and sharded engines.
func TestPropertyGroupByMatchesRowFold(t *testing.T) {
	tab := coax.GenerateAirline(coax.DefaultAirlineConfig(15000))
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	so := coax.DefaultShardOptions()
	so.NumShards = 3
	sharded, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatal(err)
	}

	r := coax.FullRect(tab.Dims())
	type cell struct {
		n   int64
		sum float64
	}
	want := map[float64]*cell{}
	for _, row := range coax.Collect(single, r) {
		c := want[row[7]] // carrier
		if c == nil {
			c = &cell{}
			want[row[7]] = c
		}
		c.n++
		c.sum += row[2] // airtime
	}

	for name, idx := range map[string]coax.Querier{"single": single, "sharded": sharded} {
		res, err := coax.FromRect(r).GroupBy("carrier").Aggregate(idx, coax.Avg("airtime"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Valid {
			t.Fatalf("%s: grouped result claims an ungrouped value", name)
		}
		if len(res.Groups) != len(want) {
			t.Fatalf("%s: %d groups, want %d", name, len(res.Groups), len(want))
		}
		prev := math.Inf(-1)
		for _, g := range res.Groups {
			if g.Key <= prev {
				t.Fatalf("%s: group keys not ascending: %g after %g", name, g.Key, prev)
			}
			prev = g.Key
			w := want[g.Key]
			if w == nil || g.Count != w.n {
				t.Fatalf("%s: group %g count %d, want %+v", name, g.Key, g.Count, w)
			}
			avg := w.sum / float64(w.n)
			if rel := math.Abs(g.Value-avg) / math.Max(math.Abs(avg), 1); rel > 1e-9 {
				t.Fatalf("%s: group %g avg %v, want %v", name, g.Key, g.Value, avg)
			}
		}
	}
}

// copyOSM deep-copies the generated table so each engine mutates its own.
func copyOSM(t *coax.Table) *coax.Table {
	cp := coax.NewTable(t.Cols)
	for i := 0; i < t.Len(); i++ {
		cp.Append(t.Row(i))
	}
	return cp
}

// randOSMRect draws a rectangle between two random data rows, widened a
// little so it matches a few hundred rows on average.
func randOSMRect(rng *rand.Rand, tab *coax.Table) coax.Rect {
	r := coax.FullRect(tab.Dims())
	a := tab.Row(rng.Intn(tab.Len()))
	b := tab.Row(rng.Intn(tab.Len()))
	for d := 0; d < tab.Dims(); d++ {
		lo, hi := a[d], b[d]
		if lo > hi {
			lo, hi = hi, lo
		}
		r.Min[d], r.Max[d] = lo, hi
	}
	return r
}
