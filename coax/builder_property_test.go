package coax_test

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"github.com/coax-index/coax/coax"
)

// snapshotBytes serialises idx with Save.
func snapshotBytes(t *testing.T, idx *coax.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := coax.Save(&buf, idx); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func shardedSnapshotBytes(t *testing.T, idx *coax.ShardedIndex) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := coax.SaveSharded(&buf, idx); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randRect builds a random query rectangle from data values of tab.
func randRect(rng *rand.Rand, tab *coax.Table) coax.Rect {
	r := coax.FullRect(tab.Dims())
	for d := 0; d < tab.Dims(); d++ {
		if rng.Float64() < 0.4 {
			continue
		}
		a := tab.Row(rng.Intn(tab.Len()))[d]
		b := tab.Row(rng.Intn(tab.Len()))[d]
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

func sortedCollect(idx coax.Querier, r coax.Rect) [][]float64 {
	rows := coax.Collect(idx, r)
	sort.Slice(rows, func(i, j int) bool {
		for d := range rows[i] {
			if rows[i][d] != rows[j][d] {
				return rows[i][d] < rows[j][d]
			}
		}
		return false
	})
	return rows
}

func equalRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

// TestPropertyStreamingEquivalentToLegacy is the satellite property test:
// across datasets × outlier kinds, (1) every full-sample Builder path —
// table source, whole-input reservoir, whole-input CSV prefix — produces
// byte-identical snapshots to the legacy in-memory build, and (2) sampled
// streaming builds (models learned on a strict sample) answer every query
// identically to legacy on single and sharded indexes.
func TestPropertyStreamingEquivalentToLegacy(t *testing.T) {
	type dataset struct {
		name string
		tab  *coax.Table
	}
	datasets := []dataset{
		{"osm", coax.GenerateOSM(coax.DefaultOSMConfig(8000))},
		{"airline", coax.GenerateAirline(coax.DefaultAirlineConfig(8000))},
	}

	for _, ds := range datasets {
		for _, kind := range []coax.OutlierIndexKind{coax.OutlierGrid, coax.OutlierRTree} {
			opt := coax.DefaultOptions()
			opt.OutlierKind = kind

			legacy, err := coax.Build(ds.tab, opt)
			if err != nil {
				t.Fatal(err)
			}
			want := snapshotBytes(t, legacy)
			schema := coax.TableSchema(ds.tab)

			// Full-scan builder (the shim path).
			full, err := coax.NewBuilder(schema, opt).Build(coax.NewTableSource(ds.tab, 0))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, snapshotBytes(t, full)) {
				t.Fatalf("%s/%d: full-scan builder snapshot differs from legacy", ds.name, kind)
			}

			// Sampled mode whose budget covers the whole input: the
			// reservoir keeps every row in order, so this must also be
			// bit-for-bit.
			whole, err := coax.NewBuilder(schema, opt).
				SampleSize(ds.tab.Len() + 1).
				Build(coax.NewTableSource(ds.tab, 1024))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, snapshotBytes(t, whole)) {
				t.Fatalf("%s/%d: whole-sample builder snapshot differs from legacy", ds.name, kind)
			}

			// Same, through a one-shot CSV stream (prefix path; CSV float
			// formatting round-trips exactly).
			var csvBuf bytes.Buffer
			if err := coax.WriteCSV(&csvBuf, ds.tab); err != nil {
				t.Fatal(err)
			}
			csvSrc, err := coax.NewCSVSource(bytes.NewReader(csvBuf.Bytes()), 512)
			if err != nil {
				t.Fatal(err)
			}
			csvWhole, err := coax.NewBuilder(schema, opt).
				SampleSize(ds.tab.Len() + 1).
				Build(csvSrc)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, snapshotBytes(t, csvWhole)) {
				t.Fatalf("%s/%d: CSV whole-prefix builder snapshot differs from legacy", ds.name, kind)
			}

			// Strictly sampled streaming: different models are allowed,
			// different answers are not.
			sampled, err := coax.NewBuilder(schema, opt).
				SampleSize(ds.tab.Len() / 8).
				Build(coax.NewTableSource(ds.tab, 1024))
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(kind)*100 + 7))
			for q := 0; q < 30; q++ {
				r := randRect(rng, ds.tab)
				if !equalRows(sortedCollect(legacy, r), sortedCollect(sampled, r)) {
					t.Fatalf("%s/%d: sampled single query %d differs", ds.name, kind, q)
				}
			}
		}

		// Sharded: legacy vs full-scan builder (bit-for-bit) and sampled
		// streaming (query-equivalent).
		opt := coax.DefaultOptions()
		so := coax.DefaultShardOptions()
		so.NumShards = 3
		legacySharded, err := coax.BuildSharded(ds.tab, opt, so)
		if err != nil {
			t.Fatal(err)
		}
		wantSharded := shardedSnapshotBytes(t, legacySharded)
		schema := coax.TableSchema(ds.tab)

		fullSharded, err := coax.NewBuilder(schema, opt).
			BuildSharded(coax.NewTableSource(ds.tab, 0), so)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantSharded, shardedSnapshotBytes(t, fullSharded)) {
			t.Fatalf("%s: full-scan sharded snapshot differs from legacy", ds.name)
		}

		sampledSharded, err := coax.NewBuilder(schema, opt).
			SampleSize(ds.tab.Len()/8).
			BuildSharded(coax.NewTableSource(ds.tab, 1024), so)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		for q := 0; q < 30; q++ {
			r := randRect(rng, ds.tab)
			if !equalRows(sortedCollect(legacySharded, r), sortedCollect(sampledSharded, r)) {
				t.Fatalf("%s: sampled sharded query %d differs", ds.name, q)
			}
		}
	}
}
