package coax

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/shard"
)

// Explain is the execution report of one query — the paper's mechanism
// made observable. It shows whether (and how) constraints on dependent
// attributes were translated through the learned soft-FD models into
// predictor intervals, how the work split between the reduced-
// dimensionality primary index and the outlier index, how many shards a
// fan-out pruned versus probed, and what stopped the scan. All float
// bounds are pointers so the report marshals to JSON cleanly: nil means
// unbounded (±∞).
type Explain struct {
	// Columns names the index's columns (empty for unnamed tables).
	Columns []string `json:"columns,omitempty"`
	// Min/Max is the compiled query rectangle, one entry per dimension;
	// nil bounds are unconstrained.
	Min []*float64 `json:"min"`
	Max []*float64 `json:"max"`

	// Translations holds one entry per dependent column the query
	// constrains — the application of the paper's Eq. 2.
	Translations []TranslationStep `json:"translations,omitempty"`
	// PrimaryFeasible is false when translation proved no inlier can
	// match, letting the engine skip the primary probe entirely.
	PrimaryFeasible bool `json:"primary_feasible"`

	// PrimaryProbed/OutlierProbed report whether the rectangle overlapped
	// each partition's bounding box (false: that probe was pruned).
	PrimaryProbed bool `json:"primary_probed"`
	OutlierProbed bool `json:"outlier_probed"`
	// Primary and Outlier are the page/row counters of each partition.
	Primary ProbeStats `json:"primary"`
	Outlier ProbeStats `json:"outlier"`

	// ShardsProbed/ShardsPruned describe the fan-out of a sharded index;
	// both are zero when a single index answered.
	ShardsProbed int `json:"shards_probed"`
	ShardsPruned int `json:"shards_pruned"`
	// Shards breaks the fan-out down per probed shard — one timed span per
	// probe, sorted by shard ordinal. Empty when a single index answered.
	Shards []ShardSpan `json:"shards,omitempty"`

	// Agg describes an aggregation execution: the op, the scan kernels
	// dispatched per partition, and the batch-path shape (batches, rows per
	// batch, bitmap selectivity). Nil for row queries.
	Agg *AggExplain `json:"agg,omitempty"`

	// RowsEmitted counts rows delivered to the caller's visitor.
	RowsEmitted int `json:"rows_emitted"`
	// Limited/Cancelled/Complete report what ended the scan: a satisfied
	// Limit, a cancelled context, or exhaustion.
	Limited   bool `json:"limited"`
	Cancelled bool `json:"cancelled"`
	Complete  bool `json:"complete"`
	// Elapsed is the wall time of the execution, in nanoseconds on the
	// wire.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// ProbeStats counts the work of one partition's scan.
type ProbeStats struct {
	// Pages is the number of storage units visited (grid pages, tree
	// nodes).
	Pages int64 `json:"pages"`
	// RowsScanned is the number of candidate rows examined.
	RowsScanned int64 `json:"rows_scanned"`
	// RowsMatched is the number of rows that satisfied the query.
	RowsMatched int64 `json:"rows_matched"`
	// TombstonesFiltered is the number of deleted rows skipped at the
	// visitor boundary.
	TombstonesFiltered int64 `json:"tombstones_filtered"`
	// Batches is the number of selection-bitmap batches the partition's
	// vectorized kernel processed; zero on the row-at-a-time path.
	Batches int64 `json:"batches,omitempty"`
}

// AggExplain is the aggregation-pushdown section of an EXPLAIN: which
// kernel answered each partition and how the batch path shaped up.
type AggExplain struct {
	// Op, Column, and GroupBy describe the aggregate computed (Column is
	// empty for COUNT, GroupBy for ungrouped aggregates).
	Op      string `json:"op"`
	Column  string `json:"column,omitempty"`
	GroupBy string `json:"group_by,omitempty"`
	// PrimaryKernel/OutlierKernel name the scan kernel dispatched per
	// partition ("grid-batch", "rtree-batch", "row-fallback", ...); empty
	// when that partition was pruned.
	PrimaryKernel string `json:"primary_kernel,omitempty"`
	OutlierKernel string `json:"outlier_kernel,omitempty"`
	// Batches is the total selection-bitmap batches processed;
	// RowsPerBatch the mean candidate rows per batch; Selectivity the
	// fraction of scanned rows the bitmaps selected.
	Batches      int64   `json:"batches"`
	RowsPerBatch float64 `json:"rows_per_batch"`
	Selectivity  float64 `json:"selectivity"`
	// Groups counts the distinct group keys of a GroupBy result.
	Groups int `json:"groups,omitempty"`
}

// ShardSpan is the timed record of one shard probe inside a fan-out.
type ShardSpan struct {
	// Shard names the probe ("shard-03").
	Shard string `json:"shard"`
	// Elapsed is the probe's wall time (lock acquisition through scan
	// completion), in nanoseconds on the wire.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Pages and RowsScanned count that shard's share of the work.
	Pages       int64 `json:"pages"`
	RowsScanned int64 `json:"rows_scanned"`
}

// TranslationStep records one dependent-constraint translation: the query
// interval on the dependent column mapped through its learned model into
// an interval on the predictor column.
type TranslationStep struct {
	// Dependent and Predictor identify the columns, by name when the index
	// has names, otherwise as "col<ordinal>".
	Dependent string `json:"dependent"`
	Predictor string `json:"predictor"`
	// DependentMin/Max is the query's constraint on the dependent column.
	DependentMin *float64 `json:"dependent_min"`
	DependentMax *float64 `json:"dependent_max"`
	// PredictorMin/Max is the derived predictor interval the primary probe
	// was routed with.
	PredictorMin *float64 `json:"predictor_min"`
	PredictorMax *float64 `json:"predictor_max"`
	// Feasible is false when the translation proved no inlier can match.
	Feasible bool `json:"feasible"`
}

// finitePtr returns v boxed, or nil when v is infinite — the JSON-safe
// encoding of an unbounded constraint.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) {
		return nil
	}
	cp := v
	return &cp
}

func newExplain(idx Querier, r Rect) *Explain {
	e := &Explain{Columns: columnsOf(idx)}
	allEmpty := true
	for _, c := range e.Columns {
		if c != "" {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		e.Columns = nil
	}
	e.Min = make([]*float64, r.Dims())
	e.Max = make([]*float64, r.Dims())
	for d := range r.Min {
		e.Min[d] = finitePtr(r.Min[d])
		e.Max[d] = finitePtr(r.Max[d])
	}
	return e
}

// colName names column d for the report.
func (e *Explain) colName(d int) string {
	if d >= 0 && d < len(e.Columns) && e.Columns[d] != "" {
		return e.Columns[d]
	}
	return fmt.Sprintf("col%d", d)
}

func (e *Explain) fromCore(rep *core.ProbeReport) {
	e.PrimaryFeasible = rep.PrimaryFeasible
	e.PrimaryProbed = rep.PrimaryProbed
	e.OutlierProbed = rep.OutlierProbed
	e.Primary = ProbeStats{
		Pages:              rep.Primary.Pages,
		RowsScanned:        rep.Primary.Scanned,
		RowsMatched:        rep.Primary.Matched,
		TombstonesFiltered: rep.Primary.Tombstones,
		Batches:            rep.Primary.Batches,
	}
	e.Outlier = ProbeStats{
		Pages:              rep.Outlier.Pages,
		RowsScanned:        rep.Outlier.Scanned,
		RowsMatched:        rep.Outlier.Matched,
		TombstonesFiltered: rep.Outlier.Tombstones,
		Batches:            rep.Outlier.Batches,
	}
	if rep.PrimaryKernel != "" || rep.OutlierKernel != "" {
		if e.Agg == nil {
			e.Agg = &AggExplain{}
		}
		e.Agg.PrimaryKernel = rep.PrimaryKernel
		e.Agg.OutlierKernel = rep.OutlierKernel
	}
	e.Translations = make([]TranslationStep, 0, len(rep.Translations))
	for _, tr := range rep.Translations {
		e.Translations = append(e.Translations, TranslationStep{
			Dependent:    e.colName(tr.Dependent),
			Predictor:    e.colName(tr.Predictor),
			DependentMin: finitePtr(tr.DepMin),
			DependentMax: finitePtr(tr.DepMax),
			PredictorMin: finitePtr(tr.PredMin),
			PredictorMax: finitePtr(tr.PredMax),
			Feasible:     tr.Feasible,
		})
	}
}

func (e *Explain) fromShard(rep *shard.Report) {
	e.fromCore(&rep.Core)
	e.ShardsProbed = rep.ShardsProbed
	e.ShardsPruned = rep.ShardsPruned
}

// fromTrace folds the fan-out's per-shard spans into the report, sorted by
// shard name (spans arrive in completion order, which is not stable).
func (e *Explain) fromTrace(t *obs.Trace) {
	spans := t.Spans()
	if len(spans) == 0 {
		return
	}
	e.Shards = make([]ShardSpan, 0, len(spans))
	for _, sp := range spans {
		e.Shards = append(e.Shards, ShardSpan{
			Shard:       sp.Name,
			Elapsed:     sp.Elapsed,
			Pages:       sp.Pages,
			RowsScanned: sp.Rows,
		})
	}
	sort.Slice(e.Shards, func(i, j int) bool { return e.Shards[i].Shard < e.Shards[j].Shard })
}

// String renders the report for terminals (coaxstore explain).
func (e *Explain) String() string {
	var b strings.Builder
	bound := func(v *float64) string {
		if v == nil {
			return "_"
		}
		return fmt.Sprintf("%g", *v)
	}
	fmt.Fprintf(&b, "query:")
	for d := range e.Min {
		fmt.Fprintf(&b, " %s∈[%s,%s]", e.colName(d), bound(e.Min[d]), bound(e.Max[d]))
	}
	b.WriteByte('\n')
	for _, tr := range e.Translations {
		fmt.Fprintf(&b, "translated: %s∈[%s,%s] → %s∈[%s,%s] via learned model (feasible=%v)\n",
			tr.Dependent, bound(tr.DependentMin), bound(tr.DependentMax),
			tr.Predictor, bound(tr.PredictorMin), bound(tr.PredictorMax), tr.Feasible)
	}
	if e.ShardsProbed+e.ShardsPruned > 0 {
		fmt.Fprintf(&b, "shards: %d probed, %d pruned\n", e.ShardsProbed, e.ShardsPruned)
	}
	for _, sp := range e.Shards {
		fmt.Fprintf(&b, "  %s: %d pages, %d rows scanned, %v\n",
			sp.Shard, sp.Pages, sp.RowsScanned, sp.Elapsed.Round(time.Microsecond))
	}
	part := func(label string, probed bool, p ProbeStats) {
		if !probed {
			if !e.Complete {
				fmt.Fprintf(&b, "%s: not probed (scan stopped early or pruned)\n", label)
			} else {
				fmt.Fprintf(&b, "%s: pruned\n", label)
			}
			return
		}
		fmt.Fprintf(&b, "%s: %d pages, %d rows scanned, %d matched, %d tombstones filtered\n",
			label, p.Pages, p.RowsScanned, p.RowsMatched, p.TombstonesFiltered)
	}
	if !e.PrimaryFeasible {
		fmt.Fprintf(&b, "primary: skipped (translation infeasible)\n")
	} else {
		part("primary", e.PrimaryProbed, e.Primary)
	}
	part("outlier", e.OutlierProbed, e.Outlier)
	if a := e.Agg; a != nil {
		fmt.Fprintf(&b, "aggregate: %s", a.Op)
		if a.Column != "" {
			fmt.Fprintf(&b, "(%s)", a.Column)
		}
		if a.GroupBy != "" {
			fmt.Fprintf(&b, " group by %s (%d groups)", a.GroupBy, a.Groups)
		}
		kernels := a.PrimaryKernel
		if a.OutlierKernel != "" && a.OutlierKernel != kernels {
			if kernels != "" {
				kernels += "+"
			}
			kernels += a.OutlierKernel
		}
		if kernels != "" {
			fmt.Fprintf(&b, " via %s", kernels)
		}
		fmt.Fprintf(&b, ": %d batches, %.1f rows/batch, selectivity %.4f\n",
			a.Batches, a.RowsPerBatch, a.Selectivity)
	}
	status := "complete"
	switch {
	case e.Cancelled:
		status = "cancelled"
	case e.Limited:
		status = "limit reached"
	case !e.Complete:
		status = "stopped early"
	}
	fmt.Fprintf(&b, "result: %d rows emitted, %s, %v", e.RowsEmitted, status, e.Elapsed.Round(time.Microsecond))
	return b.String()
}
