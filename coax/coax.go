// Package coax is the public API of the COAX correlation-aware
// multidimensional index (Hadian et al., "COAX: Correlation-Aware Indexing
// on Multidimensional Data with Soft Functional Dependencies").
//
// COAX detects soft functional dependencies between table columns — cases
// where one attribute approximately determines another, such as an id that
// tracks a timestamp or a flight distance that tracks its air time — and
// exploits them to index fewer dimensions. Rows that respect the learned
// dependencies live in a small reduced-dimensionality primary index; the
// rest live in a conventional multidimensional outlier index. Queries that
// constrain a dependent attribute are translated through the learned model
// into constraints on its predictor, so results remain exact.
//
// Basic usage (Query API v2 — see the Query builder in query.go):
//
//	table := coax.NewTable([]string{"distance", "airtime", "carrier"})
//	// ... table.Append(row) for every row ...
//	idx, err := coax.Build(table, coax.DefaultOptions())
//	if err != nil { ... }
//	rows, err := coax.NewQuery().
//		Where("airtime", coax.Between(60, 90)).
//		Limit(100).
//		Collect(idx)
//
// The legacy rectangle surface remains supported:
//
//	q := coax.FullRect(3)
//	q.Min[1], q.Max[1] = 60, 90 // airtime between 60 and 90 minutes
//	idx.Query(q, func(row []float64) { ... })
package coax

import (
	"bufio"
	"io"
	"os"
	"path/filepath"

	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
	"github.com/coax-index/coax/internal/softfd"
)

// Table is an in-memory, row-major collection of float64 rows. Build one
// with NewTable and Append, or load it with ReadCSV.
type Table = dataset.Table

// NewTable creates an empty table with the given column names.
func NewTable(cols []string) *Table { return dataset.NewTable(cols) }

// ReadCSV loads a table from CSV data with a header row; every field must
// parse as a float64.
func ReadCSV(r io.Reader) (*Table, error) { return dataset.ReadCSV(r) }

// WriteCSV writes a table as CSV with a header row.
func WriteCSV(w io.Writer, t *Table) error { return dataset.WriteCSV(w, t) }

// Rect is an axis-aligned query rectangle with inclusive bounds; use ±Inf
// to leave a dimension unconstrained.
type Rect = index.Rect

// NewRect builds a rectangle from copies of min and max.
func NewRect(min, max []float64) Rect { return index.NewRect(min, max) }

// FullRect returns a rectangle matching every row of a dims-column table.
func FullRect(dims int) Rect { return index.Full(dims) }

// PointQuery returns the degenerate rectangle matching exactly p.
func PointQuery(p []float64) Rect { return index.Point(p) }

// Visitor receives one matching row per call — the legacy query callback.
// Under the unified v2 ownership contract, the slice is only guaranteed
// valid for the duration of the call, whichever index answers; copy rows
// you retain, or build the query with Query.Stable() (or use Collect,
// whose rows are always stable copies). *ShardedIndex happens to pass
// stable copies on this legacy path too — a guarantee kept for
// compatibility, not one the contract extends to new code.
type Visitor = index.Visitor

// Options configures a Build. Start from DefaultOptions.
type Options = core.Options

// SoftFDConfig tunes the dependency detector (sample size, grid
// resolution, margins, acceptance thresholds).
type SoftFDConfig = softfd.Config

// OutlierIndexKind selects the structure holding the rows that violate the
// learned dependencies.
type OutlierIndexKind = core.OutlierIndexKind

// Outlier index kinds.
const (
	OutlierGrid  = core.OutlierGrid
	OutlierRTree = core.OutlierRTree
)

// DefaultOptions returns the recommended build configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultSoftFDConfig returns the recommended detector configuration.
func DefaultSoftFDConfig() SoftFDConfig { return softfd.DefaultConfig() }

// Group is one set of mutually correlated columns with its elected
// predictor.
type Group = softfd.Group

// PairModel is one learned soft functional dependency: column X predicts
// column D within margins [−EpsLB, +EpsUB].
type PairModel = softfd.PairModel

// Stats summarises a build: detected groups, primary/outlier row counts,
// grid dimensionality, and directory overheads.
type Stats = core.Stats

// Index is a built COAX index. It is safe for concurrent readers once
// built, and supports single-writer mutation: Insert, Delete, and Update
// classify each row against the learned models and route it into (or out
// of) the primary or outlier partition; deletes tombstone main-page rows
// and queries filter the tombstones at the visitor boundary. Watch
// LifecycleStats for drift and call Rebuild when the index goes stale; for
// fully concurrent mutation and online self-healing use ShardedIndex.
type Index = core.COAX

// Build learns the soft FDs of t and constructs the index. It is a thin
// shim over the v2 Builder in full-scan mode (see builder.go), kept
// bit-for-bit identical to the v1 behaviour: a fresh table source
// materializes back to t itself and the exact in-memory build runs over
// it.
func Build(t *Table, opt Options) (*Index, error) {
	return NewBuilder(TableSchema(t), opt).Build(NewTableSource(t, 0))
}

// ErrNotFound is returned by Delete and Update when no live row equals the
// given one.
var ErrNotFound = core.ErrNotFound

// ErrRebuildInProgress is returned by ShardedIndex.RebuildShard when that
// shard is already mid-rebuild.
var ErrRebuildInProgress = shard.ErrRebuildInProgress

// LifecycleStats is the mutation-health snapshot of an Index or
// ShardedIndex: live/stored/tombstoned row counts, outlier ratio against
// its build-time baseline, per-dependency model residual drift, mutation
// counters, and the rebuild epoch.
type LifecycleStats = lifecycle.Stats

// GroupDrift reports how far inserted rows have drifted from one learned
// dependency since the last build.
type GroupDrift = lifecycle.GroupDrift

// Thresholds configures when an index counts as stale (outlier ratio,
// tombstone ratio, residual drift, minimum mutation count).
type Thresholds = lifecycle.Thresholds

// DefaultThresholds returns the staleness rules used by the serving layer.
func DefaultThresholds() Thresholds { return lifecycle.DefaultThresholds() }

// Compactor is the background maintenance loop: it polls a ShardedIndex
// for shards stale under its thresholds and rebuilds them online — the
// self-healing loop of cmd/coaxserve.
type Compactor = lifecycle.Compactor

// SweepResult summarises one compactor pass.
type SweepResult = lifecycle.SweepResult

// NewCompactor creates a compactor over idx; call Start for background
// polling, Kick for an immediate sweep, Stop to shut it down.
func NewCompactor(idx *ShardedIndex, th Thresholds, interval time.Duration) *Compactor {
	return lifecycle.NewCompactor(idx, th, interval)
}

// Save writes a built index to w in the versioned COAX snapshot format
// (magic, format version, checksummed sections — see internal/snapshot). A
// loaded snapshot answers queries identically to the index that was saved,
// without re-running soft-FD detection or index construction.
func Save(w io.Writer, idx *Index) error { return snapshot.Encode(w, idx) }

// Load reads an index previously written by Save. Corrupted, truncated, or
// version-incompatible input yields an error, never a panic. The returned
// index is safe for concurrent readers.
func Load(r io.Reader) (*Index, error) { return snapshot.Decode(r) }

// SaveFile writes a built index to path via Save. The write is atomic: the
// snapshot goes to a temporary file in the same directory, is fsynced, and
// is renamed over path only once complete — a crash or full disk midway
// neither leaves a torn snapshot at path nor destroys the previous one.
func SaveFile(path string, idx *Index) error {
	return atomicWriteFile(path, func(w io.Writer) error { return Save(w, idx) })
}

// atomicWriteFile streams emit's output to a temporary file beside path and
// renames it over path only once fully written and fsynced.
func atomicWriteFile(path string, emit func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "." // keep the temp file on path's filesystem, not os.TempDir
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	// CreateTemp's 0600 would silently downgrade a world-readable snapshot
	// on replace; keep the target's existing mode, defaulting to 0644.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(path); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := f.Chmod(mode); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := emit(w); err != nil {
		return fail(err)
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads an index from a file written by SaveFile.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReaderSize(f, 1<<20))
}

// Sharded serving layer. BuildSharded partitions a table into K shards,
// builds an independent COAX per shard in parallel, and answers queries by
// fanning rectangles (or whole batches of rectangles) across shards on a
// bounded worker pool — the path for serving heavy concurrent traffic. See
// internal/shard for the concurrency and visitor-ownership contract.

// ShardedIndex is a partitioned COAX index built by BuildSharded. It
// answers Query interchangeably with *Index, adds BatchQuery for amortised
// fan-out over many rectangles, and — unlike *Index — is safe for fully
// concurrent use: Query, BatchQuery, Insert, Delete, and Update may race
// freely. Shards rebuild independently and online (RebuildShard,
// RebuildStale, or a background Compactor): queries and mutations keep
// running against the old epoch while its replacement is built, a delta
// log catches the swap up, and only that one shard's writes block briefly.
type ShardedIndex = shard.Sharded

// ShardOptions configures BuildSharded. Start from DefaultShardOptions.
type ShardOptions = shard.Options

// ShardPartition selects how rows are assigned to shards.
type ShardPartition = shard.Partition

// Shard partition schemes.
const (
	// ShardByRange splits one column into quantile slabs so queries
	// constraining it probe only overlapping shards.
	ShardByRange = shard.ByRange
	// ShardByHash routes rows by a hash of their bit pattern.
	ShardByHash = shard.ByHash
)

// BatchVisitor receives one matching row per call, tagged with the batch
// position of the query it matched; rows are stable copies.
type BatchVisitor = shard.BatchVisitor

// DefaultShardOptions returns the recommended sharding configuration:
// range partitioning on an automatically chosen column, with one shard and
// one worker per CPU.
func DefaultShardOptions() ShardOptions { return shard.DefaultOptions() }

// BuildSharded learns the soft FDs of t once, partitions the table, and
// constructs one COAX per shard in parallel. Like Build, it is a thin
// bit-for-bit shim over the v2 Builder in full-scan mode.
func BuildSharded(t *Table, opt Options, so ShardOptions) (*ShardedIndex, error) {
	return NewBuilder(TableSchema(t), opt).BuildSharded(NewTableSource(t, 0), so)
}

// SaveSharded writes a sharded index to w in the versioned COAX snapshot
// format: a shard-layout section followed by one checksummed section per
// shard. Encoding takes per-shard read locks, so the index may keep
// serving while it is being saved.
func SaveSharded(w io.Writer, idx *ShardedIndex) error { return snapshot.EncodeSharded(w, idx) }

// LoadSharded reads a sharded index previously written by SaveSharded. The
// returned index is immediately safe for concurrent use. Loading a
// single-index snapshot yields an error directing the caller to Load.
func LoadSharded(r io.Reader) (*ShardedIndex, error) { return snapshot.DecodeSharded(r) }

// SaveShardedFile writes a sharded index to path with the same atomic
// write-then-rename protocol as SaveFile.
func SaveShardedFile(path string, idx *ShardedIndex) error {
	return atomicWriteFile(path, func(w io.Writer) error { return SaveSharded(w, idx) })
}

// LoadShardedFile reads a sharded index from a file written by
// SaveShardedFile.
func LoadShardedFile(path string) (*ShardedIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSharded(bufio.NewReaderSize(f, 1<<20))
}

// Querier is the query surface shared by *Index and *ShardedIndex; Count,
// Collect, and the v2 Query builder accept either. Both implementations
// also offer Columns() (name-based predicates) and the stop-aware v2
// execution path; a third-party Querier still works, but without
// engine-level early termination.
type Querier interface {
	Len() int
	Dims() int
	Query(r Rect, visit Visitor)
}

// Count runs a query and returns the number of matching rows. It is a
// run-to-completion shim over the v2 scan; use FromRect(r).Limit(k) or
// CountLimit to stop counting at a threshold.
func Count(idx Querier, r Rect) int {
	n := 0
	idx.Query(r, func([]float64) { n++ })
	return n
}

// CountLimit counts matching rows, stopping the scan — across every shard
// — once k have been seen; it returns min(k, total). k ≤ 0 counts all.
func CountLimit(idx Querier, r Rect, k int) (int, error) {
	return FromRect(r).Limit(k).Count(idx)
}

// collectBlockRows rows share one backing allocation in Collect.
const collectBlockRows = 256

// Collect runs a query and returns all matching rows. The returned rows
// are always stable private copies, regardless of the backing index — they
// stay valid indefinitely and share nothing with the index internals. The
// result is preallocated from a row-count hint (the index's row count,
// bounded so selective queries stay cheap), and row payloads are carved
// from block allocations rather than one make per row.
func Collect(idx Querier, r Rect) [][]float64 {
	out := make([][]float64, 0, collectHint(idx.Len(), 0))
	var block []float64
	idx.Query(r, func(row []float64) {
		if len(block) < len(row) {
			block = make([]float64, collectBlockRows*len(row))
		}
		cp := block[:len(row):len(row)]
		block = block[len(row):]
		copy(cp, row)
		out = append(out, cp)
	})
	return out
}

// CollectLimit collects up to k matching rows, stopping the scan — across
// every shard — as soon as it has them. Rows are stable copies. k ≤ 0
// collects all.
func CollectLimit(idx Querier, r Rect, k int) ([][]float64, error) {
	return FromRect(r).Limit(k).Collect(idx)
}

// Synthetic dataset generators. The repository's benchmarks run on
// synthetic stand-ins for the paper's OSM and Airline extracts; they are
// exported so applications and examples can generate realistic correlated
// data without shipping multi-gigabyte files.

// OSMConfig configures GenerateOSM.
type OSMConfig = dataset.OSMConfig

// AirlineConfig configures GenerateAirline.
type AirlineConfig = dataset.AirlineConfig

// GenerateOSM builds a synthetic OpenStreetMap-like table
// (id, timestamp, lat, lon) with a strong id→timestamp soft FD and
// clustered coordinates.
func GenerateOSM(cfg OSMConfig) *Table { return dataset.GenerateOSM(cfg) }

// GenerateAirline builds a synthetic US-airlines-like table with two
// three-attribute correlation groups across 8 columns.
func GenerateAirline(cfg AirlineConfig) *Table { return dataset.GenerateAirline(cfg) }

// DefaultOSMConfig returns the benchmark OSM generator settings for n rows.
func DefaultOSMConfig(n int) OSMConfig { return dataset.DefaultOSMConfig(n) }

// DefaultAirlineConfig returns the benchmark airline generator settings
// for n rows.
func DefaultAirlineConfig(n int) AirlineConfig { return dataset.DefaultAirlineConfig(n) }
