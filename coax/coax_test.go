package coax_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/coax"
)

// TestPublicAPIEndToEnd exercises the documented workflow: build a table,
// index it, and query it through every public entry point.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	table := coax.NewTable([]string{"x", "d", "u"})
	for i := 0; i < 15000; i++ {
		x := rng.Float64() * 100
		table.Append([]float64{x, 3*x + rng.NormFloat64(), rng.Float64() * 10})
	}

	opt := coax.DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	idx, err := coax.Build(table, opt)
	if err != nil {
		t.Fatal(err)
	}

	st := idx.BuildStats()
	if len(st.Groups) != 1 {
		t.Fatalf("expected one detected group, got %d", len(st.Groups))
	}
	if st.PrimaryRatio < 0.9 {
		t.Errorf("primary ratio = %g", st.PrimaryRatio)
	}

	// Range query on the dependent column only.
	q := coax.FullRect(3)
	q.Min[1], q.Max[1] = 90, 120
	n := coax.Count(idx, q)

	// Verify against a manual scan of the table.
	want := 0
	for i := 0; i < table.Len(); i++ {
		v := table.Row(i)[1]
		if v >= 90 && v <= 120 {
			want++
		}
	}
	if n != want {
		t.Errorf("Count = %d, want %d", n, want)
	}

	rows := coax.Collect(idx, q)
	if len(rows) != want {
		t.Errorf("Collect returned %d rows, want %d", len(rows), want)
	}
	for _, row := range rows {
		if row[1] < 90 || row[1] > 120 {
			t.Fatalf("row %v outside query range", row)
		}
	}

	// Point query round trip.
	p := coax.PointQuery(table.Row(42))
	if coax.Count(idx, p) < 1 {
		t.Error("point query lost its row")
	}
}

func TestGeneratorsThroughPublicAPI(t *testing.T) {
	osm := coax.GenerateOSM(coax.DefaultOSMConfig(5000))
	if osm.Len() != 5000 || osm.Dims() != 4 {
		t.Errorf("OSM shape %dx%d", osm.Len(), osm.Dims())
	}
	air := coax.GenerateAirline(coax.DefaultAirlineConfig(5000))
	if air.Len() != 5000 || air.Dims() != 8 {
		t.Errorf("airline shape %dx%d", air.Len(), air.Dims())
	}
}

func TestCSVThroughPublicAPI(t *testing.T) {
	table := coax.NewTable([]string{"a", "b"})
	table.Append([]float64{1, 2})
	var buf bytes.Buffer
	if err := coax.WriteCSV(&buf, table); err != nil {
		t.Fatal(err)
	}
	back, err := coax.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 1 || back.Row(0)[1] != 2 {
		t.Error("CSV round trip failed")
	}
}

func TestRectHelpers(t *testing.T) {
	r := coax.NewRect([]float64{0}, []float64{1})
	if !r.Contains([]float64{0.5}) {
		t.Error("NewRect broken")
	}
	f := coax.FullRect(2)
	if !math.IsInf(f.Min[0], -1) || !math.IsInf(f.Max[1], 1) {
		t.Error("FullRect bounds broken")
	}
}

func TestBuildOnRealisticAirline(t *testing.T) {
	table := coax.GenerateAirline(coax.DefaultAirlineConfig(30000))
	opt := coax.DefaultOptions()
	opt.SoftFD.SampleCount = 10000
	// Categorical columns are excluded from FD detection, as a DBA would.
	opt.SoftFD.ExcludeCols = []int{6, 7}
	idx, err := coax.Build(table, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := idx.BuildStats()
	if len(st.Groups) < 1 {
		t.Fatal("no FD groups detected on airline data")
	}
	if st.DependentDims < 1 {
		t.Error("no dependent dims on airline data")
	}
	if st.PrimaryRatio < 0.5 {
		t.Errorf("primary ratio = %g, implausibly low", st.PrimaryRatio)
	}

	// Correctness spot check against manual filtering.
	q := coax.FullRect(8)
	q.Min[0], q.Max[0] = 500, 900 // distance
	q.Min[2], q.Max[2] = 60, 150  // airtime (dependent)
	want := 0
	for i := 0; i < table.Len(); i++ {
		row := table.Row(i)
		if row[0] >= 500 && row[0] <= 900 && row[2] >= 60 && row[2] <= 150 {
			want++
		}
	}
	if got := coax.Count(idx, q); got != want {
		t.Errorf("airline query: %d, want %d", got, want)
	}
}
