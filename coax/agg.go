package coax

// Aggregation API: Count/Sum/Min/Max/Avg over a query's matching rows,
// optionally grouped by a categorical column, executed entirely inside the
// scan kernels — COUNT is a popcount over selection bitmaps, SUM/MIN/MAX
// walk only the set bits of the value column, and no row is ever
// materialized or handed to a visitor. The sharded engine folds one
// partial aggregate per shard and merges them in shard order at the gather
// point, so results are deterministic run to run for a fixed shard layout.
//
//	total, err := coax.NewQuery().
//		Where("lat", coax.Between(45, 50)).
//		Aggregate(idx, coax.Sum("lon"))
//
//	byCarrier, err := coax.NewQuery().
//		GroupBy("carrier").
//		Aggregate(idx, coax.Avg("arr_delay"))

import (
	"fmt"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/shard"
)

// colRef names a column by name or position (dim used when name == "").
type colRef struct {
	name string
	dim  int
}

func (c colRef) label() string {
	if c.name != "" {
		return c.name
	}
	return fmt.Sprintf("column %d", c.dim)
}

// An Aggregation selects the aggregate a query computes; build one with
// CountRows, Sum, Min, Max, or Avg (or their positional Dim variants) and
// pass it to Query.Aggregate.
type Aggregation struct {
	op  index.AggOp
	col colRef
}

// CountRows counts the matching rows. It reads no column at all — on the
// batch path it is a pure popcount over selection bitmaps.
func CountRows() Aggregation { return Aggregation{op: index.AggCount} }

// Sum sums the named column over the matching rows.
func Sum(col string) Aggregation { return Aggregation{op: index.AggSum, col: colRef{name: col}} }

// Min takes the minimum of the named column over the matching rows.
func Min(col string) Aggregation { return Aggregation{op: index.AggMin, col: colRef{name: col}} }

// Max takes the maximum of the named column over the matching rows.
func Max(col string) Aggregation { return Aggregation{op: index.AggMax, col: colRef{name: col}} }

// Avg averages the named column over the matching rows.
func Avg(col string) Aggregation { return Aggregation{op: index.AggAvg, col: colRef{name: col}} }

// SumDim, MinDim, MaxDim, and AvgDim are the positional variants for
// tables built without column names.
func SumDim(dim int) Aggregation { return Aggregation{op: index.AggSum, col: colRef{dim: dim}} }

// MinDim is Min by column position.
func MinDim(dim int) Aggregation { return Aggregation{op: index.AggMin, col: colRef{dim: dim}} }

// MaxDim is Max by column position.
func MaxDim(dim int) Aggregation { return Aggregation{op: index.AggMax, col: colRef{dim: dim}} }

// AvgDim is Avg by column position.
func AvgDim(dim int) Aggregation { return Aggregation{op: index.AggAvg, col: colRef{dim: dim}} }

// GroupBy groups the aggregate by the named column: Aggregate returns one
// GroupResult per distinct value. The column should be categorical — every
// distinct float64 becomes its own group.
func (q *Query) GroupBy(col string) *Query {
	q.group = &colRef{name: col}
	return q
}

// GroupByDim is GroupBy by column position.
func (q *Query) GroupByDim(dim int) *Query {
	q.group = &colRef{dim: dim}
	return q
}

// AggResult is the outcome of one aggregation execution.
type AggResult struct {
	// Op names the aggregate computed ("count", "sum", "min", "max", "avg").
	Op string
	// Count is the number of rows aggregated (summed across groups for a
	// grouped result).
	Count int64
	// Value is the ungrouped aggregate. Valid is false when the value is
	// undefined — MIN/MAX/AVG over zero rows, or any grouped result (see
	// Groups instead).
	Value float64
	Valid bool
	// Groups holds the per-group results sorted by ascending key; non-nil
	// exactly when the query had a GroupBy.
	Groups []GroupResult
	// Complete is false when a cancelled context stopped the scan early, in
	// which case the aggregate covers only the rows folded before the stop.
	Complete bool
	// Explain is the execution report, non-nil when the query was built
	// with WithExplain.
	Explain *Explain
}

// GroupResult is one group of a GroupBy aggregate.
type GroupResult struct {
	// Key is the group's value in the group-by column.
	Key float64
	// Count is the number of rows in the group.
	Count int64
	// Value is the group's aggregate under the requested op.
	Value float64
}

// resolveCol resolves a column reference against the index, mirroring the
// name resolution Compile applies to predicates.
func resolveCol(idx Querier, ref colRef, what string) (int, error) {
	d := ref.dim
	if ref.name != "" {
		cols := columnsOf(idx)
		d = -1
		for i, c := range cols {
			if c == ref.name {
				d = i
				break
			}
		}
		if d < 0 {
			if len(cols) == 0 {
				return 0, fmt.Errorf("coax: index has no column names; use the Dim variant for %s %q", what, ref.name)
			}
			return 0, fmt.Errorf("coax: unknown %s column %q", what, ref.name)
		}
	}
	if d < 0 || d >= idx.Dims() {
		return 0, fmt.Errorf("coax: %s %s out of range [0,%d)", what, ref.label(), idx.Dims())
	}
	return d, nil
}

// Aggregate compiles and executes the query as an aggregation pushdown:
// the engine folds matching rows into the aggregate inside its scan
// kernels and no row reaches this layer. Limit and Stable are ignored
// (aggregates consume every matching row); the context cancels the scan
// exactly as in Run, returning the context's error alongside the partial
// result.
func (q *Query) Aggregate(idx Querier, agg Aggregation) (*AggResult, error) {
	r, err := q.Compile(idx)
	if err != nil {
		return nil, err
	}
	aspec := index.AggSpec{Op: agg.op, Col: -1, Group: -1}
	if agg.op.NeedsColumn() {
		if aspec.Col, err = resolveCol(idx, agg.col, "aggregate"); err != nil {
			return nil, err
		}
	}
	if q.group != nil {
		if aspec.Group, err = resolveCol(idx, *q.group, "group-by"); err != nil {
			return nil, err
		}
	}

	var exp *Explain
	if q.explain {
		exp = newExplain(idx, r)
	}
	spec := index.Spec{Ctx: q.ctx}
	track := obs.On()
	start := time.Now()

	var st *index.AggState
	var complete bool
	switch ix := idx.(type) {
	case *ShardedIndex:
		var rep *shard.Report
		if exp != nil {
			rep = &shard.Report{}
			spec.Trace = obs.NewTrace()
		}
		st, complete = ix.ExecAgg(r, spec, aspec, rep)
		if exp != nil {
			exp.fromShard(rep)
			exp.fromTrace(spec.Trace)
		}
	case *Index:
		st = index.NewAggState(aspec)
		var crep *core.ProbeReport
		if exp != nil || track {
			crep = &core.ProbeReport{}
		}
		complete = ix.ExecAgg(r, spec, st, crep)
		if exp != nil {
			exp.fromCore(crep)
		}
		if track {
			q.observeAgg(start, crep)
		}
	default:
		// Generic Querier: the legacy visitor path with a row-at-a-time
		// fold — correct, but without kernel pushdown or early abort.
		st = index.NewAggState(aspec)
		complete = runGeneric(idx, r, spec, func(row []float64) bool {
			st.FoldRow(row)
			return true
		})
		if track {
			q.observeAgg(start, nil)
		}
	}

	res := newAggResult(agg.op, st, complete)
	if exp != nil {
		exp.Elapsed = time.Since(start)
		exp.Complete = complete
		fillAggExplain(exp, aspec, st)
		res.Explain = exp
	}
	if q.ctx != nil && q.ctx.Err() != nil {
		res.Complete = false
		if exp != nil {
			exp.Cancelled = true
			exp.Complete = false
		}
		return res, q.ctx.Err()
	}
	return res, nil
}

// observeAgg records one finished non-sharded aggregation in the
// query-plane and batch-kernel metrics (the sharded path counts inside
// shard.ExecAgg, the layer owning that fan-out).
func (q *Query) observeAgg(start time.Time, crep *core.ProbeReport) {
	obs.Queries.Inc()
	obs.AggQueries.Inc()
	obs.QuerySeconds.Observe(time.Since(start).Seconds())
	if q.ctx != nil && q.ctx.Err() != nil {
		obs.QueryCancelled.Inc()
	}
	core.ObserveProbe(crep)
	core.ObserveAggKernels(crep)
}

// newAggResult extracts the public result from a folded state.
func newAggResult(op index.AggOp, st *index.AggState, complete bool) *AggResult {
	res := &AggResult{Op: op.String(), Complete: complete}
	if st.Spec.Group < 0 {
		res.Count = st.All.Count
		res.Value, res.Valid = st.All.Value(op)
		return res
	}
	keys := st.GroupKeys()
	res.Groups = make([]GroupResult, 0, len(keys))
	for _, k := range keys {
		c := st.Groups[k]
		v, _ := c.Value(op)
		res.Groups = append(res.Groups, GroupResult{Key: k, Count: c.Count, Value: v})
		res.Count += c.Count
	}
	return res
}

// fillAggExplain completes the EXPLAIN's aggregation section from the
// probe totals (kernels were already recorded by fromCore).
func fillAggExplain(exp *Explain, aspec index.AggSpec, st *index.AggState) {
	if exp.Agg == nil {
		exp.Agg = &AggExplain{}
	}
	a := exp.Agg
	a.Op = aspec.Op.String()
	if aspec.Op.NeedsColumn() {
		a.Column = exp.colName(aspec.Col)
	}
	if aspec.Group >= 0 {
		a.GroupBy = exp.colName(aspec.Group)
		a.Groups = len(st.Groups)
	}
	a.Batches = exp.Primary.Batches + exp.Outlier.Batches
	scanned := exp.Primary.RowsScanned + exp.Outlier.RowsScanned
	matched := exp.Primary.RowsMatched + exp.Outlier.RowsMatched
	if a.Batches > 0 {
		a.RowsPerBatch = float64(scanned) / float64(a.Batches)
	}
	if scanned > 0 {
		a.Selectivity = float64(matched) / float64(scanned)
	}
}
