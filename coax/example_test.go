package coax_test

import (
	"fmt"
	"log"

	"github.com/coax-index/coax/coax"
)

// ExampleQuery shows the v2 builder: name-based predicates compiled
// against the indexed table's columns.
func ExampleQuery() {
	table := coax.NewTable([]string{"seq", "temp", "reading"})
	for i := 0; i < 8000; i++ {
		seq := float64(i)
		table.Append([]float64{seq, 20 + seq*0.01, float64(i % 100)})
	}
	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	n, err := coax.NewQuery().
		Where("reading", coax.Between(10, 19)).
		Where("seq", coax.AtLeast(4000)).
		Count(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output: 400
}

// ExampleQuery_limit stops the scan — across every shard of a sharded
// index — as soon as enough rows are found.
func ExampleQuery_limit() {
	table := coax.NewTable([]string{"seq", "temp", "reading"})
	for i := 0; i < 8000; i++ {
		seq := float64(i)
		table.Append([]float64{seq, 20 + seq*0.01, float64(i % 100)})
	}
	idx, err := coax.BuildSharded(table, coax.DefaultOptions(), coax.DefaultShardOptions())
	if err != nil {
		log.Fatal(err)
	}

	rows, err := coax.NewQuery().
		Where("reading", coax.Eq(7)).
		Limit(3).
		Collect(idx) // rows are stable copies
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rows))
	// Output: 3
}

// ExampleQuery_aggregate computes an aggregate entirely inside the scan
// kernels: COUNT is a popcount over selection bitmaps, SUM/MIN/MAX walk
// only the set bits of the value column, and no row is materialized.
func ExampleQuery_aggregate() {
	table := coax.NewTable([]string{"seq", "temp", "reading"})
	for i := 0; i < 8000; i++ {
		seq := float64(i)
		table.Append([]float64{seq, 20 + seq*0.01, float64(i % 100)})
	}
	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	res, err := coax.NewQuery().
		Where("reading", coax.Between(10, 19)).
		Aggregate(idx, coax.Sum("reading"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count, res.Value)

	res, err = coax.NewQuery().
		Where("seq", coax.AtMost(3999)).
		Aggregate(idx, coax.CountRows())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count)
	// Output:
	// 800 11600
	// 4000
}

// ExampleQuery_groupBy groups an aggregate by a categorical column: one
// result per distinct value, sorted by ascending key.
func ExampleQuery_groupBy() {
	table := coax.NewTable([]string{"seq", "temp", "reading"})
	for i := 0; i < 8000; i++ {
		seq := float64(i)
		table.Append([]float64{seq, 20 + seq*0.01, float64(i % 3)})
	}
	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	res, err := coax.NewQuery().
		GroupBy("reading").
		Aggregate(idx, coax.Avg("temp"))
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Groups {
		fmt.Printf("reading %.0f: %d rows\n", g.Key, g.Count)
	}
	// Output:
	// reading 0: 2667 rows
	// reading 1: 2667 rows
	// reading 2: 2666 rows
}

// ExampleQuery_explain reports how a query on a dependent attribute
// executed: the constraint is translated through the learned soft-FD model
// into a predictor interval, and the report shows the primary/outlier
// scan split.
func ExampleQuery_explain() {
	table := coax.GenerateAirline(coax.DefaultAirlineConfig(40000))
	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	exp, err := coax.NewQuery().
		Where("airtime", coax.Between(60, 90)).
		Explain(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translations:", len(exp.Translations))
	fmt.Println("dependent:", exp.Translations[0].Dependent, "predictor:", exp.Translations[0].Predictor)
	fmt.Println("primary probed:", exp.PrimaryProbed, "outlier probed:", exp.OutlierProbed)
	fmt.Println("complete:", exp.Complete)
	// Output:
	// translations: 1
	// dependent: airtime predictor: elapsed
	// primary probed: true outlier probed: true
	// complete: true
}
