package coax_test

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"

	"github.com/coax-index/coax/coax"
)

func buildShardedOSM(t *testing.T, rows, shards int) (*coax.Table, *coax.ShardedIndex) {
	t.Helper()
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(rows))
	so := coax.DefaultShardOptions()
	so.NumShards = shards
	idx, err := coax.BuildSharded(tab, coax.DefaultOptions(), so)
	if err != nil {
		t.Fatalf("BuildSharded: %v", err)
	}
	return tab, idx
}

func sortedRows(rows [][]float64) [][]float64 {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return rows
}

func TestBuildShardedMatchesBuild(t *testing.T) {
	tab, sharded := buildShardedOSM(t, 20000, 4)
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	queries := []coax.Rect{coax.FullRect(tab.Dims()), coax.PointQuery(tab.Row(17))}
	for i := 0; i < 20; i++ {
		q := coax.FullRect(tab.Dims())
		lo := tab.Row(i * 31 % tab.Len())
		hi := tab.Row(i * 57 % tab.Len())
		for d := 0; d < tab.Dims(); d++ {
			a, b := lo[d], hi[d]
			if a > b {
				a, b = b, a
			}
			q.Min[d], q.Max[d] = a, b
		}
		queries = append(queries, q)
	}
	for qi, q := range queries {
		want := sortedRows(coax.Collect(single, q))
		got := sortedRows(coax.Collect(sharded, q))
		if len(want) != len(got) {
			t.Fatalf("query %d: %d rows, want %d", qi, len(got), len(want))
		}
		for i := range want {
			for k := range want[i] {
				if want[i][k] != got[i][k] {
					t.Fatalf("query %d row %d differs", qi, i)
				}
			}
		}
	}

	// BatchQuery covers the same queries in one fan-out.
	counts := make([]int, len(queries))
	sharded.BatchQuery(queries, func(qi int, _ []float64) { counts[qi]++ })
	for qi, q := range queries {
		if want := coax.Count(single, q); counts[qi] != want {
			t.Fatalf("batch query %d: count %d, want %d", qi, counts[qi], want)
		}
	}
}

func TestShardedSaveLoadRoundTrip(t *testing.T) {
	tab, idx := buildShardedOSM(t, 10000, 3)

	var buf bytes.Buffer
	if err := coax.SaveSharded(&buf, idx); err != nil {
		t.Fatalf("SaveSharded: %v", err)
	}
	loaded, err := coax.LoadSharded(&buf)
	if err != nil {
		t.Fatalf("LoadSharded: %v", err)
	}
	full := coax.FullRect(tab.Dims())
	if w, g := coax.Count(idx, full), coax.Count(loaded, full); w != g {
		t.Fatalf("loaded counts %d, want %d", g, w)
	}

	path := filepath.Join(t.TempDir(), "sharded.coax")
	if err := coax.SaveShardedFile(path, idx); err != nil {
		t.Fatalf("SaveShardedFile: %v", err)
	}
	fromFile, err := coax.LoadShardedFile(path)
	if err != nil {
		t.Fatalf("LoadShardedFile: %v", err)
	}
	if w, g := coax.Count(idx, full), coax.Count(fromFile, full); w != g {
		t.Fatalf("file round trip counts %d, want %d", g, w)
	}

	// Cross-loading must fail with a clear error in both directions.
	if _, err := coax.LoadShardedFile(path); err != nil {
		t.Fatalf("sanity reload: %v", err)
	}
	if _, err := coax.LoadFile(path); err == nil {
		t.Error("Load accepted a sharded snapshot")
	}
	singlePath := filepath.Join(t.TempDir(), "single.coax")
	single, err := coax.Build(tab, coax.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := coax.SaveFile(singlePath, single); err != nil {
		t.Fatal(err)
	}
	if _, err := coax.LoadShardedFile(singlePath); err == nil {
		t.Error("LoadSharded accepted a single-index snapshot")
	}
}

func TestShardedInsertServesConcurrently(t *testing.T) {
	tab, idx := buildShardedOSM(t, 5000, 4)
	row := make([]float64, tab.Dims())
	copy(row, tab.Row(0))
	before := coax.Count(idx, coax.FullRect(tab.Dims()))
	if err := idx.Insert(row); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if got := coax.Count(idx, coax.FullRect(tab.Dims())); got != before+1 {
		t.Fatalf("count after insert = %d, want %d", got, before+1)
	}
}
