package coax_test

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/coax-index/coax/coax"
)

// TestSaveLoadFile exercises the public persistence API end to end: a
// snapshot written by SaveFile and read by LoadFile answers queries
// identically to the index that was saved.
func TestSaveLoadFile(t *testing.T) {
	tab := coax.GenerateAirline(coax.DefaultAirlineConfig(15000))
	opt := coax.DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	idx, err := coax.Build(tab, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	path := filepath.Join(t.TempDir(), "airline.coax")
	if err := coax.SaveFile(path, idx); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := coax.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}

	queries := []coax.Rect{coax.FullRect(tab.Dims())}
	q := coax.FullRect(tab.Dims())
	q.Min[1], q.Max[1] = 60, 120 // elapsed: a dependent column → translated probe
	queries = append(queries, q)
	for i := 0; i < 20; i++ {
		queries = append(queries, coax.PointQuery(tab.Row(i*37)))
	}
	for qi, q := range queries {
		if b, l := coax.Count(idx, q), coax.Count(loaded, q); b != l {
			t.Fatalf("query %d: built %d, loaded %d", qi, b, l)
		}
	}
}

// TestSaveFilePreservesMode ensures replacing a snapshot keeps the file
// mode readers depend on instead of CreateTemp's private 0600.
func TestSaveFilePreservesMode(t *testing.T) {
	tab := coax.GenerateOSM(coax.DefaultOSMConfig(500))
	opt := coax.DefaultOptions()
	opt.SoftFD.SampleCount = 500
	idx, err := coax.Build(tab, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "idx.coax")
	if err := coax.SaveFile(path, idx); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	if fi, _ := os.Stat(path); fi.Mode().Perm() != 0o644 {
		t.Fatalf("fresh snapshot mode %v, want 0644", fi.Mode().Perm())
	}
	if err := os.Chmod(path, 0o664); err != nil {
		t.Fatal(err)
	}
	if err := coax.SaveFile(path, idx); err != nil {
		t.Fatalf("SaveFile over existing: %v", err)
	}
	if fi, _ := os.Stat(path); fi.Mode().Perm() != 0o664 {
		t.Fatalf("replaced snapshot mode %v, want preserved 0664", fi.Mode().Perm())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := coax.LoadFile(filepath.Join(t.TempDir(), "absent.coax")); err == nil {
		t.Fatal("LoadFile of missing path succeeded")
	}
}
