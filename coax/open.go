package coax

import (
	"fmt"
	"io"
	"os"

	"github.com/coax-index/coax/internal/mmapsnap"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
)

// Snapshot format versions. Versions 1 and 2 are the streaming heap-decoded
// container written by Save/SaveFile; version 3 is the page-aligned
// memory-mapped container written by SaveFileV3 (see internal/mmapsnap for
// the layout).
const (
	SnapshotVersion   = snapshot.Version
	SnapshotVersionV3 = mmapsnap.Version
)

// SaveFileV3 writes a built index to path in snapshot format v3: hot
// sections laid out as fixed-width 64-byte-aligned pages that OpenFile can
// serve straight from a memory mapping, without decoding the file onto the
// heap. With compress set, each grid cell page is stored columnar
// (delta/frame-of-reference bit-packed) and decompressed lazily per page
// into a bounded cache on first access. The write is atomic, like SaveFile.
func SaveFileV3(path string, idx *Index, compress bool) error {
	blob, err := mmapsnap.EncodeIndex(idx, mmapsnap.Options{Compress: compress})
	if err != nil {
		return err
	}
	return atomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}

// SaveShardedFileV3 writes a sharded index to path in snapshot format v3;
// every shard becomes a nested page-aligned blob under one mapping. See
// SaveFileV3.
func SaveShardedFileV3(path string, idx *ShardedIndex, compress bool) error {
	blob, err := mmapsnap.EncodeSharded(idx, mmapsnap.Options{Compress: compress})
	if err != nil {
		return err
	}
	return atomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write(blob)
		return err
	})
}

// PeekSnapshotVersion reports the snapshot format version of the file at
// path from its 12-byte header, without loading it.
func PeekSnapshotVersion(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [12]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("coax: reading snapshot header: %w", err)
	}
	return mmapsnap.PeekVersion(head[:])
}

// Snapshot is an index opened from a snapshot file of any format version.
// It holds either a single Index or a ShardedIndex (never both), and — for
// a mapped v3 file — owns the mapping backing them.
type Snapshot struct {
	idx     *Index
	sh      *ShardedIndex
	ms      *mmapsnap.Snapshot
	version uint32
}

// Index returns the single index, or nil when the snapshot is sharded.
func (s *Snapshot) Index() *Index { return s.idx }

// Sharded returns the sharded index, or nil for a single-index snapshot.
func (s *Snapshot) Sharded() *ShardedIndex { return s.sh }

// Version is the on-disk format version the snapshot was opened from.
func (s *Snapshot) Version() uint32 { return s.version }

// Mapped reports whether queries are served from a memory mapping rather
// than decoded heap state. Always false for v1/v2 files and on platforms
// without mmap support.
func (s *Snapshot) Mapped() bool { return s.ms != nil && s.ms.Mapped() }

// PageErr returns the first corruption detected while lazily decompressing
// a v3 page, if any — the scan path reads a corrupt page as empty rather
// than failing mid-query. Callers that need an up-front guarantee should
// verify the file with `coaxstore info -verify` (or mmapsnap.Verify).
func (s *Snapshot) PageErr() error {
	if s.ms == nil {
		return nil
	}
	return s.ms.PageErr()
}

// Close releases the mapping of a v3 snapshot; the indexes obtained from
// this snapshot must not be used afterwards. Closing a heap-loaded snapshot
// is a no-op.
func (s *Snapshot) Close() error {
	if s.ms == nil {
		return nil
	}
	return s.ms.Close()
}

// Serving returns the snapshot's index as a sharded serving layer,
// wrapping a single index into one shard — what cmd/coaxserve serves from.
func (s *Snapshot) Serving(workers int) (*ShardedIndex, error) {
	if s.sh != nil {
		return s.sh, nil
	}
	return shard.Reassemble([]*Index{s.idx}, shard.ByHash, -1, nil, workers)
}

// OpenFile opens a snapshot of any format version from path, dispatching
// on the header: version 3 files are memory-mapped and served in place
// (falling back to an aligned heap read where mmap is unavailable), while
// version 1/2 files are decoded onto the heap exactly as LoadFile does.
//
// Compared to LoadFile, opening a v3 file is O(directory) instead of
// O(rows): startup cost and steady-state resident memory shift to the
// kernel page cache, shared across processes serving the same file. The
// trade-offs run the other way on the query path — uncompressed pages are
// read at mapping speed, compressed pages pay a one-off per-page decode —
// and a v3 Snapshot must be kept open (and its file unmodified) for as
// long as its indexes are in use.
func OpenFile(path string) (*Snapshot, error) {
	return OpenFileOptions(path, OpenOptions{})
}

// OpenOptions tunes OpenFile.
type OpenOptions struct {
	// PageCacheBytes bounds the decoded-page cache of a compressed v3
	// snapshot; 0 means the default (32 MiB).
	PageCacheBytes int64
}

// OpenFileOptions is OpenFile with explicit options.
func OpenFileOptions(path string, opt OpenOptions) (*Snapshot, error) {
	v, err := PeekSnapshotVersion(path)
	if err != nil {
		return nil, err
	}
	if v == mmapsnap.Version {
		ms, err := mmapsnap.OpenFile(path, mmapsnap.OpenOptions{PageCacheBytes: opt.PageCacheBytes})
		if err != nil {
			return nil, err
		}
		return &Snapshot{idx: ms.Index(), sh: ms.Sharded(), ms: ms, version: v}, nil
	}
	if sh, err := LoadShardedFile(path); err == nil {
		return &Snapshot{sh: sh, version: v}, nil
	}
	idx, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Snapshot{idx: idx, version: v}, nil
}
