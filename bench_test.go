// Package benchmarks holds one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablations for the design decisions listed
// in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics attached via b.ReportMetric carry the non-latency numbers
// (primary ratio, directory bytes, matches per query).
package benchmarks

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/coax-index/coax/coax"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/theory"
	"github.com/coax-index/coax/internal/unigrid"
	"github.com/coax-index/coax/internal/workload"
	"math/rand"
)

const benchRows = 100000

var (
	sink int

	benchOnce    sync.Once
	airlineTab   *dataset.Table
	osmTab       *dataset.Table
	airlineCOAX  *core.COAX
	osmCOAX      *core.COAX
	airlineRTree *rtree.RTree
	osmRTree     *rtree.RTree
	airlineGrid  *gridfile.GridFile
	osmGrid      *gridfile.GridFile

	airlineRange, airlinePoint []index.Rect
	osmRange, osmPoint         []index.Rect
)

func airlineOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SoftFD.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	return opt
}

func setup(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		airlineTab = dataset.GenerateAirline(dataset.DefaultAirlineConfig(benchRows))
		osmTab = dataset.GenerateOSM(dataset.DefaultOSMConfig(benchRows))

		var err error
		airlineCOAX, err = core.Build(airlineTab, airlineOptions())
		if err != nil {
			panic(err)
		}
		osmCOAX, err = core.Build(osmTab, core.DefaultOptions())
		if err != nil {
			panic(err)
		}
		airlineRTree, err = rtree.Bulk(airlineTab, rtree.DefaultConfig())
		if err != nil {
			panic(err)
		}
		osmRTree, err = rtree.Bulk(osmTab, rtree.DefaultConfig())
		if err != nil {
			panic(err)
		}
		airlineGrid, err = unigrid.Build(airlineTab, 5)
		if err != nil {
			panic(err)
		}
		osmGrid, err = unigrid.Build(osmTab, 32)
		if err != nil {
			panic(err)
		}

		ag := workload.NewGenerator(airlineTab, 42)
		og := workload.NewGenerator(osmTab, 42)
		airlineRange = ag.KNNRects(64, 1000)
		airlinePoint = ag.PointQueries(64)
		osmRange = og.KNNRects(64, 1000)
		osmPoint = og.PointQueries(64)
	})
}

func benchQueries(b *testing.B, idx index.Interface, queries []index.Rect) {
	b.Helper()
	b.ResetTimer()
	matches := 0
	for i := 0; i < b.N; i++ {
		matches += index.Count(idx, queries[i%len(queries)])
	}
	sink = matches
	b.ReportMetric(float64(matches)/float64(b.N), "matches/query")
}

// BenchmarkTable1PrimaryRatio regenerates Table 1's primary-index ratios:
// the build cost is the measured operation, and the ratios are attached as
// metrics.
func BenchmarkTable1PrimaryRatio(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		cx, err := core.Build(airlineTab, airlineOptions())
		if err != nil {
			b.Fatal(err)
		}
		st := cx.BuildStats()
		b.ReportMetric(st.PrimaryRatio, "airline-primary-ratio")
		b.ReportMetric(float64(st.DependentDims), "airline-dependent-dims")
	}
}

// BenchmarkFig4aPageLengths builds the 2-D OSM grid of Figure 4a and
// reports the skew of its page-length distribution.
func BenchmarkFig4aPageLengths(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		g, err := gridfile.Build(osmTab, gridfile.Config{
			GridDims: []int{2, 3}, SortDim: -1, CellsPerDim: 32, Mode: gridfile.Quantile,
		})
		if err != nil {
			b.Fatal(err)
		}
		sizes := g.CellSizes()
		maxSize, sum := 0, 0
		for _, s := range sizes {
			sum += s
			if s > maxSize {
				maxSize = s
			}
		}
		mean := float64(sum) / float64(len(sizes))
		b.ReportMetric(float64(maxSize)/mean, "max/mean-page-length")
	}
}

// Figure 6: point and range queries on both datasets, one sub-benchmark
// per (workload, index) cell of the figure.
func BenchmarkFig6(b *testing.B) {
	setup(b)
	cases := []struct {
		name    string
		idx     index.Interface
		queries []index.Rect
	}{
		{"AirlineRange/COAX", airlineCOAX, airlineRange},
		{"AirlineRange/RTree", airlineRTree, airlineRange},
		{"AirlineRange/FullGrid", airlineGrid, airlineRange},
		{"AirlineRange/FullScan", scan.New(airlineTab), airlineRange},
		{"AirlinePoint/COAX", airlineCOAX, airlinePoint},
		{"AirlinePoint/RTree", airlineRTree, airlinePoint},
		{"AirlinePoint/FullGrid", airlineGrid, airlinePoint},
		{"AirlinePoint/FullScan", scan.New(airlineTab), airlinePoint},
		{"OSMRange/COAX", osmCOAX, osmRange},
		{"OSMRange/RTree", osmRTree, osmRange},
		{"OSMRange/FullGrid", osmGrid, osmRange},
		{"OSMRange/FullScan", scan.New(osmTab), osmRange},
		{"OSMPoint/COAX", osmCOAX, osmPoint},
		{"OSMPoint/RTree", osmRTree, osmPoint},
		{"OSMPoint/FullGrid", osmGrid, osmPoint},
		{"OSMPoint/FullScan", scan.New(osmTab), osmPoint},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) { benchQueries(b, c.idx, c.queries) })
	}
}

// Figure 7: range queries at the paper's four selectivity levels on the
// airline data, COAX vs R-Tree vs Column Files.
func BenchmarkFig7Selectivity(b *testing.B) {
	setup(b)
	gen := workload.NewGenerator(airlineTab, 7)
	cf, err := gridfile.Build(airlineTab, gridfile.Config{
		GridDims: []int{1, 2, 3, 4, 5, 6, 7}, SortDim: 0,
		CellsPerDim: 4, Mode: gridfile.Quantile, Label: "ColumnFiles",
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range []struct {
		name string
		frac float64
	}{
		{"0.5pct", 0.005}, {"2.1pct", 0.0214}, {"10.7pct", 0.107}, {"21.4pct", 0.214},
	} {
		target := int(sel.frac * float64(airlineTab.Len()))
		queries, err := gen.SelectivityRects(32, target)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sel.name+"/COAX", func(b *testing.B) { benchQueries(b, airlineCOAX, queries) })
		b.Run(sel.name+"/RTree", func(b *testing.B) { benchQueries(b, airlineRTree, queries) })
		b.Run(sel.name+"/ColumnFiles", func(b *testing.B) { benchQueries(b, cf, queries) })
	}
}

// Figure 8: the runtime/memory trade-off — each sub-benchmark reports its
// directory bytes as a metric next to its latency.
func BenchmarkFig8MemoryTradeoff(b *testing.B) {
	setup(b)
	for _, cells := range []int{4, 16, 64} {
		opt := airlineOptions()
		opt.PrimaryCellsPerDim = cells
		cx, err := core.Build(airlineTab, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sprintfCells("COAX", cells), func(b *testing.B) {
			b.ReportMetric(float64(cx.MemoryOverhead()), "dir-bytes")
			benchQueries(b, cx, airlineRange)
		})
	}
	for _, capEntries := range []int{4, 16, 32} {
		rt, err := rtree.Bulk(airlineTab, rtree.Config{MaxEntries: capEntries})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sprintfCells("RTree", capEntries), func(b *testing.B) {
			b.ReportMetric(float64(rt.MemoryOverhead()), "dir-bytes")
			benchQueries(b, rt, airlineRange)
		})
	}
}

func sprintfCells(prefix string, n int) string {
	return prefix + "/" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Ablation: in-cell sorted dimension on vs off (DESIGN.md §5). Without the
// sorted dimension the primary grid needs an extra grid axis and loses the
// binary-search entry point.
func BenchmarkAblationSortedDim(b *testing.B) {
	setup(b)
	on := airlineCOAX
	optOff := airlineOptions()
	optOff.DisableSortDim = true
	off, err := core.Build(airlineTab, optOff)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("SortedDimOn", func(b *testing.B) { benchQueries(b, on, airlineRange) })
	b.Run("SortedDimOff", func(b *testing.B) { benchQueries(b, off, airlineRange) })
}

// Ablation: R-tree vs grid-file outlier index.
func BenchmarkAblationOutlierKind(b *testing.B) {
	setup(b)
	optRT := airlineOptions()
	optRT.OutlierKind = core.OutlierRTree
	rtVariant, err := core.Build(airlineTab, optRT)
	if err != nil {
		b.Fatal(err)
	}
	optGrid := airlineOptions()
	optGrid.OutlierKind = core.OutlierGrid
	gridVariant, err := core.Build(airlineTab, optGrid)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("OutlierRTree", func(b *testing.B) { benchQueries(b, rtVariant, airlineRange) })
	b.Run("OutlierGrid", func(b *testing.B) { benchQueries(b, gridVariant, airlineRange) })
}

// Ablation: query translation on vs off. "Off" probes the primary index
// with the dependent constraints stripped (no predictor tightening) and
// re-filters rows, which is what a correlation-oblivious reduced index
// would have to do.
func BenchmarkAblationTranslation(b *testing.B) {
	setup(b)
	deps := airlineCOAX.FD().DependentColumns()
	stripped := make([]index.Rect, len(airlineRange))
	for i, q := range airlineRange {
		s := q.Clone()
		for d := range deps {
			s.Min[d] = math.Inf(-1)
			s.Max[d] = math.Inf(1)
		}
		stripped[i] = s
	}
	b.Run("WithTranslation", func(b *testing.B) { benchQueries(b, airlineCOAX, airlineRange) })
	b.Run("WithoutTranslation", func(b *testing.B) {
		b.ResetTimer()
		matches := 0
		for i := 0; i < b.N; i++ {
			orig := airlineRange[i%len(airlineRange)]
			probe := stripped[i%len(stripped)]
			n := 0
			airlineCOAX.QueryPrimary(probe, func(row []float64) {
				if orig.Contains(row) {
					n++
				}
			})
			airlineCOAX.QueryOutliers(orig, func([]float64) { n++ })
			matches += n
		}
		sink = matches
	})
}

// Theorem 7.1 as a benchmark: mean first-exit-time measurement, with the
// theoretical prediction attached for comparison.
func BenchmarkTheoremMFET(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dist := theory.GapDist{Kind: theory.GapNormal, Mu: 1, Sigma: 0.5}
	const eps = 10.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := theory.MeasureMFET(dist, dist.Mu, eps, 200, rng)
		b.ReportMetric(m.Mean, "measured-keys/segment")
		b.ReportMetric(theory.TheoremMFET(eps, dist.Sigma), "theory-keys/segment")
	}
}

// Build-cost benchmarks: how expensive is learning + splitting + packing.
func BenchmarkBuildCOAXAirline(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(airlineTab, airlineOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildRTreeAirline(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		if _, err := rtree.Bulk(airlineTab, rtree.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftFDDetect(b *testing.B) {
	setup(b)
	cfg := softfd.DefaultConfig()
	cfg.ExcludeCols = []int{dataset.AirDayOfWeek, dataset.AirCarrier}
	for i := 0; i < b.N; i++ {
		if _, err := softfd.Detect(airlineTab, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryV2Limit measures the Query API v2 early-termination path:
// Limit(k) through the public builder versus a full Collect of the same
// broad rectangle, on the airline COAX index.
func BenchmarkQueryV2Limit(b *testing.B) {
	setup(b)
	gen := workload.NewGenerator(airlineTab, 7)
	rects := gen.KNNRects(32, 5000)
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("limit-%d", k), func(b *testing.B) {
			rows := 0
			for i := 0; i < b.N; i++ {
				got, err := coax.CollectLimit(airlineCOAX, rects[i%len(rects)], k)
				if err != nil {
					b.Fatal(err)
				}
				rows += len(got)
			}
			sink = rows
		})
	}
	b.Run("full-collect", func(b *testing.B) {
		rows := 0
		for i := 0; i < b.N; i++ {
			rows += len(coax.Collect(airlineCOAX, rects[i%len(rects)]))
		}
		sink = rows
	})
}
