package benchmarks

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/workload"
)

// mutableIndex is the mutation surface shared by *core.COAX and
// *shard.Sharded that the interleaving property exercises.
type mutableIndex interface {
	index.Interface
	Insert(row []float64) error
	Delete(row []float64) error
	Update(old, new []float64) error
}

// driftTable plants one strong soft FD (col1 ≈ 2·col0 + 50) with a small
// outlier fraction — the same shape the per-package tests use.
func driftTable(rng *rand.Rand, n int) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u", "v"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < 0.03 {
			d = rng.Float64() * 2100
		} else {
			d = 2*x + 50 + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, rng.Float64() * 100, rng.NormFloat64() * 10})
	}
	return t
}

func lifecycleOptions(kind core.OutlierIndexKind) core.Options {
	opt := core.DefaultOptions()
	opt.OutlierKind = kind
	opt.SoftFD.SampleCount = 4000
	return opt
}

// TestMutationInterleavingsAgainstOracle is the cross-configuration
// interleaving property: random Insert/Delete/Update/Query streams run
// against the single and sharded engines with both outlier-index kinds,
// and every query must match a full scan of the generator's live multiset
// exactly — including across in-place compactions and full epoch rebuilds.
func TestMutationInterleavingsAgainstOracle(t *testing.T) {
	configs := []struct {
		name    string
		sharded bool
		kind    core.OutlierIndexKind
	}{
		{"single/grid-outliers", false, core.OutlierGrid},
		{"single/rtree-outliers", false, core.OutlierRTree},
		{"sharded/grid-outliers", true, core.OutlierGrid},
		{"sharded/rtree-outliers", true, core.OutlierRTree},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(61))
			tab := driftTable(rng, 5000)
			opt := lifecycleOptions(cfg.kind)

			var idx mutableIndex
			var err error
			var sh *shard.Sharded
			if cfg.sharded {
				sh, err = shard.Build(tab, opt, shard.Options{NumShards: 3})
				idx = sh
			} else {
				var c *core.COAX
				c, err = core.Build(tab, opt)
				idx = c
			}
			if err != nil {
				t.Fatal(err)
			}

			mix := workload.NewMixGenerator(tab, 62, workload.MixConfig{
				InsertWeight: 2, DeleteWeight: 1.5, UpdateWeight: 1, QueryWeight: 3,
				OutlierFrac: 0.25, PerturbCols: []int{1},
			})
			for op := 0; op < 3000; op++ {
				o := mix.Next()
				switch o.Kind {
				case workload.OpInsert:
					err = idx.Insert(o.Row)
				case workload.OpDelete:
					err = idx.Delete(o.Row)
				case workload.OpUpdate:
					err = idx.Update(o.Old, o.New)
				case workload.OpQuery:
					got := index.Count(idx, o.Rect)
					want := index.Count(scan.New(mix.LiveView()), o.Rect)
					if got != want {
						t.Fatalf("op %d query: engine %d rows, oracle %d", op, got, want)
					}
				}
				if err != nil {
					t.Fatalf("op %d %v: %v", op, o.Kind, err)
				}
				switch op {
				case 1000:
					// In-place maintenance must be invisible.
					if cfg.sharded {
						sh.Compact()
					} else {
						idx.(*core.COAX).Compact()
					}
				case 2000:
					// A full epoch rebuild must be invisible too.
					if cfg.sharded {
						if _, err := sh.RebuildAll(); err != nil {
							t.Fatalf("op %d rebuild: %v", op, err)
						}
					} else {
						next, err := idx.(*core.COAX).Rebuild()
						if err != nil {
							t.Fatalf("op %d rebuild: %v", op, err)
						}
						idx = next
					}
				}
				if idx.Len() != mix.LiveLen() {
					t.Fatalf("op %d: Len=%d, oracle %d", op, idx.Len(), mix.LiveLen())
				}
			}
		})
	}
}

// TestCompactorHealsDriftUnderConcurrentQueries is the acceptance
// scenario: a drift-inducing write workload pushes the outlier ratio past
// threshold, the background compactor restores it below threshold, and a
// concurrent query loop observes zero incorrect results throughout.
func TestCompactorHealsDriftUnderConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	tab := driftTable(rng, 10000)
	s, err := shard.Build(tab, lifecycleOptions(core.OutlierGrid), shard.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	th := lifecycle.DefaultThresholds()

	// Sentinels far outside the mutation space: every point query must see
	// exactly one copy, at every instant, through every epoch swap.
	sentinels := make([][]float64, 24)
	for i := range sentinels {
		sentinels[i] = []float64{-5e6 - float64(i)*10, -5e6, -5e6, -5e6}
		if err := s.Insert(sentinels[i]); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop    atomic.Bool
		wrong   atomic.Int64
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				sent := sentinels[qrng.Intn(len(sentinels))]
				if got := index.Count(s, index.Point(sent)); got != 1 {
					wrong.Add(1)
				}
				queries.Add(1)
			}
		}(int64(70 + w))
	}

	// Drift: model-violating inserts in a shifted-but-clean regime, so the
	// rebuilt models can absorb them and the ratio genuinely heals.
	for i := 0; i < 8000; i++ {
		x := rng.Float64() * 1000
		row := []float64{x, 2*x + 5000 + rng.NormFloat64()*4, rng.Float64() * 100, rng.NormFloat64() * 10}
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	drifted := s.LifecycleStats().OutlierRatio
	if drifted <= th.MaxOutlierRatio {
		t.Fatalf("drift workload only reached outlier ratio %.3f (threshold %.3f)", drifted, th.MaxOutlierRatio)
	}

	// Only now start the compactor, so the drift measurement above cannot
	// race a rebuild; the query goroutines have been running all along and
	// keep running through every swap it triggers.
	compactor := lifecycle.NewCompactor(s, th, 20*time.Millisecond)
	if err := compactor.Start(); err != nil {
		t.Fatal(err)
	}
	defer compactor.Stop()

	// The compactor must bring the ratio back under threshold on its own.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ratio := s.LifecycleStats().OutlierRatio; ratio <= th.MaxOutlierRatio {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor did not heal drift: ratio still %.3f after 30s (last sweep %+v)",
				s.LifecycleStats().OutlierRatio, compactor.Last())
		}
		time.Sleep(10 * time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	if queries.Load() == 0 {
		t.Fatal("query loop never ran")
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d incorrect results out of %d concurrent queries during self-healing", w, queries.Load())
	}
	if s.LifecycleStats().Epoch == 0 {
		t.Fatal("no shard was actually rebuilt")
	}
	// Every sentinel survived every swap.
	for i, sent := range sentinels {
		if got := index.Count(s, index.Point(sent)); got != 1 {
			t.Fatalf("sentinel %d: %d copies after healing", i, got)
		}
	}
}
