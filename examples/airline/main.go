// Airline scenario: the paper's motivating workload. COAX detects the two
// three-attribute correlation groups of a flights table — (distance,
// elapsed, airtime) and (deptime, arrtime, schedarr) — and answers
// analytical range queries while indexing only half the dimensions.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coax-index/coax/coax"
)

func main() {
	fmt.Println("generating synthetic airline data (500k flights)...")
	table := coax.GenerateAirline(coax.DefaultAirlineConfig(500000))

	opt := coax.DefaultOptions()
	// Categorical codes carry no linear structure; skip them, as a DBA
	// would for any non-numeric column.
	opt.SoftFD.ExcludeCols = []int{6, 7} // dayofweek, carrier

	start := time.Now()
	idx, err := coax.Build(table, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built in %v\n", time.Since(start))

	st := idx.BuildStats()
	for _, g := range st.Groups {
		fmt.Printf("group: predictor %q also stands in for", table.Cols[g.Predictor])
		for _, d := range g.Dependents() {
			fmt.Printf(" %q", table.Cols[d])
		}
		fmt.Println()
	}
	fmt.Printf("primary index: %.1f%% of rows in a %d-dimensional grid (down from %d attributes)\n",
		st.PrimaryRatio*100, st.GridDims, st.Dims)

	// "Which flights flew 800-1200 miles and were airborne 2-3 hours?"
	// Airtime is a dependent attribute — it is not indexed, yet the query
	// is answered exactly via translation through the distance model. The
	// v2 builder names the columns instead of indexing them by position.
	q := coax.NewQuery().
		Where("distance", coax.Between(800, 1200)). // miles
		Where("airtime", coax.Between(120, 180))    // minutes
	start = time.Now()
	n, err := q.Count(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flights 800-1200 mi with 2-3h in the air: %d (%v)\n", n, time.Since(start))

	// EXPLAIN the same query: the report shows the airtime constraint
	// translated into a distance interval and the primary/outlier split.
	exp, err := q.Explain(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(exp)

	// "Evening departures that arrived after midnight" — and just the
	// first 5 of them: Limit stops the scan as soon as it has enough.
	q2 := coax.NewQuery().
		Where("deptime", coax.Between(20*60, 24*60)). // departures 20:00-24:00
		Where("arrtime", coax.Between(24*60, 32*60))  // arrivals past midnight
	start = time.Now()
	n, err = q2.Count(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overnight arrivals after evening departures: %d (%v)\n", n, time.Since(start))
	first5, err := q2.Limit(5).Collect(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d such flights fetched with Limit(5) early termination\n", len(first5))

	fmt.Printf("index directory: %d bytes for %d rows (%.4f bytes/row)\n",
		idx.MemoryOverhead(), table.Len(),
		float64(idx.MemoryOverhead())/float64(table.Len()))
}
