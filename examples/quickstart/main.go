// Quickstart: build a COAX index over a small correlated table and run a
// range query, a point query, and a query on a dependent attribute.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/coax-index/coax/coax"
)

func main() {
	// A tiny sensor log: sequence number, capture timestamp (tracks the
	// sequence number almost perfectly), and a reading.
	table := coax.NewTable([]string{"seq", "captured_at", "reading"})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		seq := float64(i)
		capturedAt := 1000 + seq*0.5 + rng.NormFloat64()*2 // soft FD: seq → time
		reading := rng.NormFloat64() * 10
		table.Append([]float64{seq, capturedAt, reading})
	}

	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	st := idx.BuildStats()
	fmt.Printf("indexed %d rows, %d dims\n", st.Rows, st.Dims)
	fmt.Printf("detected %d correlated group(s); %d dependent dim(s) need no index\n",
		len(st.Groups), st.DependentDims)
	fmt.Printf("primary index holds %.1f%% of rows; directory overhead %d bytes\n",
		st.PrimaryRatio*100, idx.MemoryOverhead())

	// Range query on the *dependent* attribute through the v2 builder:
	// COAX translates the captured_at constraint into a seq constraint via
	// the learned model.
	n, err := coax.NewQuery().
		Where("captured_at", coax.Between(20000, 20100)).
		Count(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows captured in [20000, 20100]: %d\n", n)

	// Predicates over two attributes, fetching only the first 10 matches —
	// Limit stops the scan as soon as it has them.
	rows, err := coax.NewQuery().
		Where("seq", coax.Between(50000, 60000)).
		Where("reading", coax.Between(-5, 5)).
		Limit(10).
		Collect(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seq in [50k, 60k] with |reading| <= 5: fetched first %d rows\n", len(rows))

	// The legacy rectangle surface still works and answers identically.
	p := coax.PointQuery(table.Row(777))
	fmt.Printf("point query found %d row(s)\n", coax.Count(idx, p))
}
