// Tuning walkthrough: how the soft-FD margin and the primary grid
// resolution shape the primary-index ratio, the directory size, and the
// query latency — the trade-offs behind Figures 7 and 8 of the paper.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/coax-index/coax/coax"
)

func main() {
	table := coax.GenerateAirline(coax.DefaultAirlineConfig(200000))

	// A fixed query workload: distance/airtime rectangles.
	rng := rand.New(rand.NewSource(7))
	queries := make([]coax.Rect, 100)
	for i := range queries {
		q := coax.FullRect(8)
		base := 200 + rng.Float64()*2000
		q.Min[0], q.Max[0] = base, base+400 // distance window
		q.Min[2], q.Max[2] = 30, 240        // airtime window
		queries[i] = q
	}

	fmt.Println("MaxMarginFrac sweep (wider margins admit more rows into the primary index):")
	fmt.Printf("%-10s %-14s %-14s %-12s\n", "margin", "primary ratio", "avg query", "directory")
	for _, margin := range []float64{0.05, 0.15, 0.30, 0.50} {
		opt := coax.DefaultOptions()
		opt.SoftFD.ExcludeCols = []int{6, 7}
		opt.SoftFD.MaxMarginFrac = margin
		idx, err := coax.Build(table, opt)
		if err != nil {
			log.Fatal(err)
		}
		st := idx.BuildStats()
		fmt.Printf("%-10.2f %-14s %-14v %-12d\n",
			margin,
			fmt.Sprintf("%.1f%%", st.PrimaryRatio*100),
			timeQueries(idx, queries),
			idx.MemoryOverhead())
	}

	fmt.Println("\nPrimary grid resolution sweep (the Figure 8 sweet spot):")
	fmt.Printf("%-10s %-14s %-12s\n", "cells/dim", "avg query", "directory")
	for _, cells := range []int{2, 8, 24, 48} {
		opt := coax.DefaultOptions()
		opt.SoftFD.ExcludeCols = []int{6, 7}
		opt.PrimaryCellsPerDim = cells
		idx, err := coax.Build(table, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-14v %-12d\n", cells, timeQueries(idx, queries), idx.MemoryOverhead())
	}
}

func timeQueries(idx *coax.Index, queries []coax.Rect) time.Duration {
	start := time.Now()
	total := 0
	for _, q := range queries {
		total += coax.Count(idx, q)
	}
	_ = total
	return time.Since(start) / time.Duration(len(queries))
}
