// OSM scenario: geospatial points whose id and timestamp attributes are
// strongly correlated (node ids are assigned in creation order). COAX
// learns the id→timestamp dependency, so time-window queries ride the id
// index instead of needing their own dimension.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/coax-index/coax/coax"
)

func main() {
	fmt.Println("generating synthetic OSM data (500k nodes: id, timestamp, lat, lon)...")
	table := coax.GenerateOSM(coax.DefaultOSMConfig(500000))

	idx, err := coax.Build(table, coax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	st := idx.BuildStats()
	fmt.Printf("detected groups: %d; primary ratio %.1f%%; grid dims %d\n",
		len(st.Groups), st.PrimaryRatio*100, st.GridDims)

	// Spatial box around a metro area, restricted to an edit-time window.
	// The timestamp constraint is translated onto the id axis.
	q := coax.FullRect(4)
	q.Min[2], q.Max[2] = 40.5, 41.0   // latitude band
	q.Min[3], q.Max[3] = -74.5, -73.5 // longitude band
	tsMax := table.Row(table.Len() - 1)[1]
	q.Min[1], q.Max[1] = tsMax*0.25, tsMax*0.35 // a 10% slice of history

	start := time.Now()
	n := coax.Count(idx, q)
	fmt.Printf("nodes in the box edited during that window: %d (%v)\n", n, time.Since(start))

	// Pure spatial query (no correlated attribute involved).
	q2 := coax.FullRect(4)
	q2.Min[2], q2.Max[2] = 42.2, 42.6
	q2.Min[3], q2.Max[3] = -71.3, -70.8
	start = time.Now()
	n = coax.Count(idx, q2)
	fmt.Printf("nodes in the Boston box: %d (%v)\n", n, time.Since(start))

	// Recent-history query via the dependent attribute only.
	q3 := coax.FullRect(4)
	q3.Min[1] = tsMax * 0.95
	start = time.Now()
	n = coax.Count(idx, q3)
	fmt.Printf("nodes edited in the newest 5%% of history: %d (%v)\n", n, time.Since(start))
}
