#!/usr/bin/env bash
# benchgate.sh — benchstat-gated perf regression check.
#
# Runs the curated microbenchmark set on the current tree and on a base ref,
# compares with benchstat, and fails when any sec/op result regressed by
# more than the threshold with statistical significance (p < 0.05). Noise
# shows up as "~" rows and never fails the gate; only a confident slowdown
# does.
#
# Usage: scripts/benchgate.sh [base-ref]     (default: origin/main)
# Env:   BENCH_PKGS     packages to bench   (default: ./internal/serve ./internal/snapshot)
#        BENCH_PATTERN  -bench regexp       (default: .)
#        BENCH_COUNT    -count              (default: 5)
#        BENCH_TIME     -benchtime          (default: 0.3s)
#        BENCH_MAX_PCT  regression threshold percent (default: 10)
#        BENCH_OUT      output directory    (default: benchgate)
set -euo pipefail

BASE_REF="${1:-origin/main}"
BENCH_PKGS="${BENCH_PKGS:-./internal/serve ./internal/snapshot}"
BENCH_PATTERN="${BENCH_PATTERN:-.}"
BENCH_COUNT="${BENCH_COUNT:-5}"
BENCH_TIME="${BENCH_TIME:-0.3s}"
BENCH_MAX_PCT="${BENCH_MAX_PCT:-10}"
BENCH_OUT="${BENCH_OUT:-benchgate}"

if ! command -v benchstat >/dev/null 2>&1; then
  echo "benchgate: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); skipping gate"
  exit 0
fi

mkdir -p "$BENCH_OUT"

run_bench() {
  # -short keeps the heavier snapshot benchmarks on their small shapes; the
  # gate wants stable relative numbers, not absolute throughput.
  go test -run NONE -bench "$BENCH_PATTERN" -count "$BENCH_COUNT" \
    -benchtime "$BENCH_TIME" -short $BENCH_PKGS
}

echo "== head benchmarks =="
run_bench | tee "$BENCH_OUT/head.txt"

worktree="$(mktemp -d)"
cleanup() { git worktree remove --force "$worktree" >/dev/null 2>&1 || true; }
trap cleanup EXIT

if ! git worktree add --detach "$worktree" "$BASE_REF" >/dev/null 2>&1; then
  echo "benchgate: base ref $BASE_REF unavailable; nothing to compare against"
  exit 0
fi

echo "== base benchmarks ($BASE_REF) =="
# A base that fails to build or bench (e.g. the benchmarks are new in this
# change) is not a regression — there is no baseline to regress from.
if ! (cd "$worktree" && run_bench) | tee "$BENCH_OUT/base.txt"; then
  echo "benchgate: base failed to run the benchmark set; skipping comparison"
  exit 0
fi

echo "== benchstat $BASE_REF vs head =="
benchstat "$BENCH_OUT/base.txt" "$BENCH_OUT/head.txt" | tee "$BENCH_OUT/benchstat.txt"

# Gate on the sec/op table only: memory tables matter but are gated by the
# time they cost, and alloc-count jitter on tiny benchmarks is pure noise.
awk -v max="$BENCH_MAX_PCT" '
  /sec\/op/   { insec = 1 }
  /B\/op/     { if ($0 !~ /sec\/op/) insec = 0 }
  /allocs\/op/{ if ($0 !~ /sec\/op/) insec = 0 }
  insec && /\+[0-9.]+%/ && /p=/ {
    delta = $0; sub(/.*\+/, "", delta); sub(/%.*/, "", delta)
    p = $0; sub(/.*p=/, "", p); sub(/[^0-9.].*/, "", p)
    if (delta + 0 > max && p + 0 < 0.05) {
      print "REGRESSION: " $0
      bad = 1
    }
  }
  END { exit bad }
' "$BENCH_OUT/benchstat.txt" || {
  echo "benchgate: statistically significant regression over ${BENCH_MAX_PCT}% — failing"
  exit 1
}
echo "benchgate: no significant regression over ${BENCH_MAX_PCT}%"
