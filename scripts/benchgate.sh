#!/usr/bin/env bash
# benchgate.sh — perf regression gate: benchstat micro phase + macro sweeps.
#
# Micro phase: runs the curated microbenchmark set on the current tree and
# on a base ref, compares with benchstat, and fails when any sec/op result
# regressed by more than the threshold with statistical significance
# (p < 0.05). Noise shows up as "~" rows and never fails the gate; only a
# confident slowdown does.
#
# Macro phase (BENCH_MACRO=1): builds the bench binaries on both trees,
# runs the BENCH_*.json macro sweeps — serving QPS/latency, mutation mix,
# streaming build, aggregation pushdown, cluster node sweep — on each, and
# diffs the reports
# with scripts/benchdiff: throughput must not drop and latency must not
# grow beyond BENCH_MACRO_MAX_PCT. Macro sweeps run once per side, so the
# threshold is loose by design; a report the base cannot produce (e.g. the
# sweep is new in this change) is skipped, not failed.
#
# Usage: scripts/benchgate.sh [base-ref]     (default: origin/main)
# Env:   BENCH_PKGS     packages to bench   (default: ./internal/serve ./internal/snapshot)
#        BENCH_PATTERN  -bench regexp       (default: .)
#        BENCH_COUNT    -count              (default: 5)
#        BENCH_TIME     -benchtime          (default: 0.3s)
#        BENCH_MAX_PCT  micro regression threshold percent (default: 10)
#        BENCH_OUT      output directory    (default: benchgate)
#        BENCH_MICRO    0 skips the benchstat micro phase (default: 1)
#        BENCH_MACRO    1 enables the macro-sweep diff (default: 0)
#        BENCH_MACRO_ROWS     macro dataset size        (default: 100000)
#        BENCH_MACRO_MAX_PCT  macro regression percent  (default: 25)
set -euo pipefail

BASE_REF="${1:-origin/main}"
BENCH_PKGS="${BENCH_PKGS:-./internal/serve ./internal/snapshot}"
BENCH_PATTERN="${BENCH_PATTERN:-.}"
BENCH_COUNT="${BENCH_COUNT:-5}"
BENCH_TIME="${BENCH_TIME:-0.3s}"
BENCH_MAX_PCT="${BENCH_MAX_PCT:-10}"
BENCH_OUT="${BENCH_OUT:-benchgate}"
BENCH_MICRO="${BENCH_MICRO:-1}"
BENCH_MACRO="${BENCH_MACRO:-0}"
BENCH_MACRO_ROWS="${BENCH_MACRO_ROWS:-100000}"
BENCH_MACRO_MAX_PCT="${BENCH_MACRO_MAX_PCT:-25}"

mkdir -p "$BENCH_OUT"

worktree=""
cleanup() {
  [ -n "$worktree" ] && git worktree remove --force "$worktree" >/dev/null 2>&1 || true
}
trap cleanup EXIT

setup_worktree() {
  [ -n "$worktree" ] && return 0
  worktree="$(mktemp -d)"
  if ! git worktree add --detach "$worktree" "$BASE_REF" >/dev/null 2>&1; then
    worktree=""
    return 1
  fi
}

run_bench() {
  # -short keeps the heavier snapshot benchmarks on their small shapes; the
  # gate wants stable relative numbers, not absolute throughput.
  go test -run NONE -bench "$BENCH_PATTERN" -count "$BENCH_COUNT" \
    -benchtime "$BENCH_TIME" -short $BENCH_PKGS
}

micro_phase() {
  if ! command -v benchstat >/dev/null 2>&1; then
    echo "benchgate: benchstat not installed (go install golang.org/x/perf/cmd/benchstat@latest); skipping micro gate"
    return 0
  fi

  echo "== head benchmarks =="
  run_bench | tee "$BENCH_OUT/head.txt"

  if ! setup_worktree; then
    echo "benchgate: base ref $BASE_REF unavailable; nothing to compare against"
    return 0
  fi

  echo "== base benchmarks ($BASE_REF) =="
  # A base that fails to build or bench (e.g. the benchmarks are new in this
  # change) is not a regression — there is no baseline to regress from.
  if ! (cd "$worktree" && run_bench) | tee "$BENCH_OUT/base.txt"; then
    echo "benchgate: base failed to run the benchmark set; skipping comparison"
    return 0
  fi

  echo "== benchstat $BASE_REF vs head =="
  benchstat "$BENCH_OUT/base.txt" "$BENCH_OUT/head.txt" | tee "$BENCH_OUT/benchstat.txt"

  # Gate on the sec/op table only: memory tables matter but are gated by the
  # time they cost, and alloc-count jitter on tiny benchmarks is pure noise.
  awk -v max="$BENCH_MAX_PCT" '
    /sec\/op/   { insec = 1 }
    /B\/op/     { if ($0 !~ /sec\/op/) insec = 0 }
    /allocs\/op/{ if ($0 !~ /sec\/op/) insec = 0 }
    insec && /\+[0-9.]+%/ && /p=/ {
      delta = $0; sub(/.*\+/, "", delta); sub(/%.*/, "", delta)
      p = $0; sub(/.*p=/, "", p); sub(/[^0-9.].*/, "", p)
      if (delta + 0 > max && p + 0 < 0.05) {
        print "REGRESSION: " $0
        bad = 1
      }
    }
    END { exit bad }
  ' "$BENCH_OUT/benchstat.txt" || {
    echo "benchgate: statistically significant regression over ${BENCH_MAX_PCT}% — failing"
    return 1
  }
  echo "benchgate: no significant micro regression over ${BENCH_MAX_PCT}%"
}

# run_macro <tree-dir> <out-dir>: build the bench binaries from one tree
# and run every macro sweep it supports, writing BENCH_*.json into out-dir.
# Sweeps the tree does not have (older base refs) are skipped.
run_macro() {
  local tree="$1" out="$2"
  mkdir -p "$out"
  out="$(cd "$out" && pwd)"
  (
    cd "$tree"
    bin="$(mktemp -d)"
    go build -o "$bin/coaxstore" ./cmd/coaxstore
    go build -o "$bin/coaxserve" ./cmd/coaxserve
    "$bin/coaxserve" bench -rows "$BENCH_MACRO_ROWS" -queries 500 \
      -shards 1,4 -batch 1,16 -json "$out/BENCH_serve.json" >/dev/null
    "$bin/coaxserve" mutbench -rows "$BENCH_MACRO_ROWS" -shards 4 -queries 500 \
      -json "$out/BENCH_mutation.json" >/dev/null
    "$bin/coaxstore" buildbench -rows "$BENCH_MACRO_ROWS" -rates 0.01,0.1 \
      -json "$out/BENCH_build.json" >/dev/null
    # Snapshot sweep: build/save/load timings, and on trees that know the
    # v3 format also the mapped-open columns (mapped_open_ms, *_rss_bytes,
    # mapped_open_speedup_vs_load) — benchdiff skips keys the base lacks.
    "$bin/coaxstore" bench -rows "$BENCH_MACRO_ROWS" \
      -json "$out/BENCH_snapshot.json" >/dev/null
    if "$bin/coaxserve" aggbench -h 2>&1 | grep -q selectivities; then
      "$bin/coaxserve" aggbench -rows "$BENCH_MACRO_ROWS" -queries 15 \
        -grouprows "$BENCH_MACRO_ROWS" -json "$out/BENCH_agg.json" >/dev/null
    fi
    if "$bin/coaxserve" clusterbench -h 2>&1 | grep -q straggler; then
      "$bin/coaxserve" clusterbench -rows "$BENCH_MACRO_ROWS" -queries 200 \
        -nodes 1,2 -json "$out/BENCH_cluster.json" >/dev/null
    fi
    rm -rf "$bin"
  )
}

macro_phase() {
  if ! setup_worktree; then
    echo "benchgate: base ref $BASE_REF unavailable; skipping macro phase"
    return 0
  fi

  echo "== macro sweeps: head =="
  run_macro "$PWD" "$BENCH_OUT/macro-head"
  echo "== macro sweeps: base ($BASE_REF) =="
  if ! run_macro "$worktree" "$BENCH_OUT/macro-base"; then
    echo "benchgate: base failed to run the macro sweeps; skipping comparison"
    return 0
  fi

  local bad=0 f name
  for f in "$BENCH_OUT"/macro-head/BENCH_*.json; do
    name="$(basename "$f")"
    if [ ! -f "$BENCH_OUT/macro-base/$name" ]; then
      echo "benchgate: $name has no baseline at $BASE_REF; skipping"
      continue
    fi
    echo "== benchdiff $name =="
    go run ./scripts/benchdiff -base "$BENCH_OUT/macro-base/$name" \
      -head "$f" -max-pct "$BENCH_MACRO_MAX_PCT" || bad=1
  done
  if [ "$bad" -ne 0 ]; then
    echo "benchgate: macro sweep regression over ${BENCH_MACRO_MAX_PCT}% — failing"
    return 1
  fi
  echo "benchgate: no macro regression over ${BENCH_MACRO_MAX_PCT}%"
}

if [ "$BENCH_MICRO" = "1" ]; then
  micro_phase
fi
if [ "$BENCH_MACRO" = "1" ]; then
  macro_phase
fi
