#!/usr/bin/env bash
# clustersmoke.sh — end-to-end smoke test of the distributed deployment as
# real processes: 2 node processes + 1 router process on loopback, compared
# against a single-process serve instance over the identical dataset.
#
# The check is behavioral equivalence at the HTTP surface: the same /query
# bodies must produce the same counts from the router (scatter-gathering
# over the wire protocol) as from serve mode (in-process engine), and
# mutations must land. Exercises the whole stack the Go tests cover, but
# across process boundaries with the shipped binary.
#
# Usage: scripts/clustersmoke.sh
# Env:   ROWS   dataset size (default 50000)
#        SHARDS cluster-wide global shard count (default 12)
set -euo pipefail

ROWS="${ROWS:-50000}"
SHARDS="${SHARDS:-12}"

bin="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" >/dev/null 2>&1 || true
  done
  wait >/dev/null 2>&1 || true
  rm -rf "$bin"
}
trap cleanup EXIT

echo "== build =="
go build -o "$bin/coaxserve" ./cmd/coaxserve

# wait_http <url> <tries>: poll until an endpoint answers 200.
wait_http() {
  local url="$1" tries="${2:-120}"
  for _ in $(seq "$tries"); do
    if curl -fsS -o /dev/null "$url" 2>/dev/null; then
      return 0
    fi
    sleep 0.5
  done
  return 1
}

NODE1=127.0.0.1:7461
NODE2=127.0.0.1:7462
PEERS="$NODE1,$NODE2"
ROUTER=127.0.0.1:7460
SERVE=127.0.0.1:7459

echo "== start 2 nodes + router + single-process oracle =="
"$bin/coaxserve" node -addr "$NODE1" -peers "$PEERS" -shards "$SHARDS" \
  -replication 2 -rows "$ROWS" &
pids+=($!)
"$bin/coaxserve" node -addr "$NODE2" -peers "$PEERS" -shards "$SHARDS" \
  -replication 2 -rows "$ROWS" &
pids+=($!)
"$bin/coaxserve" serve -addr "$SERVE" -rows "$ROWS" -shards 4 &
pids+=($!)

wait_http "http://$SERVE/healthz" || {
  echo "clustersmoke: serve oracle never became ready" >&2
  exit 1
}

# The router refuses to start until it can reach every node (its startup
# shape-check dials them all), so starting it IS the readiness probe for
# the nodes: retry until it stays up.
router_up=""
for _ in $(seq 60); do
  "$bin/coaxserve" router -addr "$ROUTER" -nodes "$PEERS" \
    -shards "$SHARDS" -replication 2 2>/dev/null &
  rpid=$!
  pids+=("$rpid")
  if wait_http "http://$ROUTER/healthz" 6; then
    router_up=1
    break
  fi
  kill "$rpid" >/dev/null 2>&1 || true
done
if [ -z "$router_up" ]; then
  echo "clustersmoke: router never became ready" >&2
  exit 1
fi

# query <host> <body>: POST /query and print the count.
query() {
  curl -fsS -X POST "http://$1/query" -H 'Content-Type: application/json' \
    -d "$2" | jq -r .count
}

echo "== compare /query counts: router vs single-process =="
# Columns are id, timestamp, lat (38..47.5), lon (-80.5..-66.9).
queries=(
  '{"min":[null,null,null,null],"max":[null,null,null,null],"limit":0}'
  '{"min":[null,null,40.0,-75.0],"max":[null,null,42.0,-72.0],"limit":0}'
  '{"min":[0,null,null,null],"max":[25000,null,null,null],"limit":0}'
  '{"min":[null,null,44.0,null],"max":[null,null,47.0,-70.0],"limit":0}'
  '{"min":[10000,null,39.0,-80.0],"max":[40000,null,46.0,-68.0],"limit":0}'
)
for q in "${queries[@]}"; do
  got="$(query "$ROUTER" "$q")"
  want="$(query "$SERVE" "$q")"
  if [ "$got" != "$want" ]; then
    echo "clustersmoke: MISMATCH on $q: router=$got serve=$want" >&2
    exit 1
  fi
  echo "ok: $q -> $got rows on both"
done

echo "== aggregation pushdown through the router =="
agg='{"min":[null,null,null,null],"max":[null,null,null,null],"agg":{"op":"count"}}'
got="$(query "$ROUTER" "$agg")"
want="$(query "$SERVE" '{"min":[null,null,null,null],"max":[null,null,null,null],"limit":0}')"
if [ "$got" != "$want" ]; then
  echo "clustersmoke: COUNT pushdown mismatch: agg=$got rows=$want" >&2
  exit 1
fi
echo "ok: COUNT pushdown -> $got"

echo "== mutations through the router =="
total="$(curl -fsS http://$ROUTER/stats | jq -r .rows)"
curl -fsS -X POST "http://$ROUTER/insert" -H 'Content-Type: application/json' \
  -d '{"row":[1.5,2.5,0.5,3.5]}' >/dev/null
after="$(curl -fsS http://$ROUTER/stats | jq -r .rows)"
if [ "$after" != "$((total + 1))" ]; then
  echo "clustersmoke: insert did not land: $total -> $after" >&2
  exit 1
fi
code="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$ROUTER/delete" \
  -H 'Content-Type: application/json' -d '{"row":[1.5,2.5,0.5,3.5]}')"
if [ "$code" != "200" ]; then
  echo "clustersmoke: delete of inserted row answered $code" >&2
  exit 1
fi
code="$(curl -sS -o /dev/null -w '%{http_code}' -X POST "http://$ROUTER/delete" \
  -H 'Content-Type: application/json' -d '{"row":[1.5,2.5,0.5,3.5]}')"
if [ "$code" != "404" ]; then
  echo "clustersmoke: delete of absent row answered $code, want 404" >&2
  exit 1
fi
echo "ok: insert/delete round-trip, 404 on absent row"

echo "clustersmoke: PASS"
