// Command benchdiff compares two macro benchmark reports (the BENCH_*.json
// files emitted by coaxstore bench/buildbench and coaxserve
// bench/mutbench/aggbench/clusterbench) and fails when a headline metric
// regressed beyond a threshold.
//
// It walks the two JSON trees in parallel and classifies every numeric
// leaf by its key: throughput-like keys (qps, speedup, hit_rate, *_per_sec)
// must not drop, latency/size-like keys (*_ms, *_us, p50/p99, *_bytes,
// overhead) must not grow, and everything else — dataset shape, sweep
// parameters, matched-row counts — is ignored. Keys or array slots present
// on one side only are skipped: a new metric has no baseline to regress
// from, and a removed one has nothing to compare.
//
// Macro sweeps run once per side (no benchstat-style resampling), so the
// default threshold is deliberately loose; it exists to catch step-change
// regressions, not noise.
//
// Usage: benchdiff -base old.json -head new.json [-max-pct 25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type direction int

const (
	skip direction = iota
	higherBetter
	lowerBetter
)

// classify maps a JSON key to the direction its value should move.
func classify(key string) direction {
	k := strings.ToLower(key)
	switch {
	// Fault-injection knobs in BENCH_cluster.json: sweep parameters that
	// happen to carry a unit suffix, not measurements. Without these the
	// "_ms" rule below would flag a deliberately larger straggler delay
	// as a latency regression.
	case k == "straggler_ms", k == "hedge_delay_ms":
		return skip
	case strings.Contains(k, "qps"),
		strings.Contains(k, "speedup"),
		strings.Contains(k, "hit_rate"),
		strings.Contains(k, "per_sec"):
		return higherBetter
	case strings.HasSuffix(k, "_ms"),
		strings.HasSuffix(k, "_us"),
		strings.HasSuffix(k, "_ns"),
		strings.HasSuffix(k, "_seconds"),
		strings.HasSuffix(k, "_bytes"),
		strings.Contains(k, "p50"),
		strings.Contains(k, "p99"),
		strings.Contains(k, "overhead"):
		return lowerBetter
	}
	return skip
}

type diff struct {
	path       string
	base, head float64
	pct        float64 // signed percent change in the bad direction
}

// walk descends base and head in lockstep, collecting regressions and
// improvements on the leaves both sides share.
func walk(path, key string, base, head any, maxPct float64, regress, improve *[]diff) {
	switch b := base.(type) {
	case map[string]any:
		h, ok := head.(map[string]any)
		if !ok {
			return
		}
		for k, bv := range b {
			if hv, ok := h[k]; ok {
				walk(path+"."+k, k, bv, hv, maxPct, regress, improve)
			}
		}
	case []any:
		h, ok := head.([]any)
		if !ok {
			return
		}
		n := min(len(b), len(h))
		for i := 0; i < n; i++ {
			walk(fmt.Sprintf("%s[%d]", path, i), key, b[i], h[i], maxPct, regress, improve)
		}
	case float64:
		h, ok := head.(float64)
		if !ok {
			return
		}
		dir := classify(key)
		if dir == skip || b == 0 {
			return
		}
		var pct float64
		switch dir {
		case higherBetter:
			pct = (b - h) / b * 100 // positive: throughput dropped
		case lowerBetter:
			pct = (h - b) / b * 100 // positive: latency grew
		}
		d := diff{path: strings.TrimPrefix(path, "."), base: b, head: h, pct: pct}
		if pct > maxPct {
			*regress = append(*regress, d)
		} else if pct < -maxPct {
			*improve = append(*improve, d)
		}
	}
}

func main() {
	basePath := flag.String("base", "", "baseline report JSON")
	headPath := flag.String("head", "", "candidate report JSON")
	maxPct := flag.Float64("max-pct", 25, "regression threshold percent")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -base and -head are required")
		os.Exit(2)
	}

	load := func(path string) (any, error) {
		blob, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var v any
		if err := json.Unmarshal(blob, &v); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return v, nil
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	head, err := load(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var regress, improve []diff
	walk("", "", base, head, *maxPct, &regress, &improve)

	for _, d := range improve {
		fmt.Printf("improved:   %-50s %12.4g -> %-12.4g (%+.1f%%)\n", d.path, d.base, d.head, -d.pct)
	}
	for _, d := range regress {
		fmt.Printf("REGRESSION: %-50s %12.4g -> %-12.4g (%+.1f%% worse)\n", d.path, d.base, d.head, d.pct)
	}
	if len(regress) > 0 {
		fmt.Printf("benchdiff: %d metric(s) regressed over %.0f%% (%s vs %s)\n",
			len(regress), *maxPct, *basePath, *headPath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regression over %.0f%% (%s vs %s)\n", *maxPct, *basePath, *headPath)
}
