module github.com/coax-index/coax

go 1.24
