package index

import (
	"fmt"
	"math/bits"
	"sort"
)

// Aggregation pushdown. An AggState folds rows into a running aggregate
// without ever materializing them: the batch path folds straight off a
// Batch's selection bitmap (COUNT is a popcount over the selection words;
// SUM/MIN/MAX walk only the set bits of the value column), and the row
// path folds one row at a time through FoldRow. Both paths perform the
// identical floating-point operations in the identical order, so a batch
// execution and a row execution of the same scan produce bit-identical
// aggregates. Partial states from independent scans (the shards of a
// fan-out) merge deterministically with Merge.

// AggOp enumerates the supported aggregates.
type AggOp uint8

const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the op as it appears on the wire ("count", "sum", ...).
func (op AggOp) String() string {
	switch op {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("aggop(%d)", uint8(op))
}

// ParseAggOp inverts String.
func ParseAggOp(s string) (AggOp, error) {
	switch s {
	case "count":
		return AggCount, nil
	case "sum":
		return AggSum, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "avg":
		return AggAvg, nil
	}
	return 0, fmt.Errorf("index: unknown aggregate op %q (want count, sum, min, max, or avg)", s)
}

// NeedsColumn reports whether the op reads a value column (COUNT does not).
func (op AggOp) NeedsColumn() bool { return op != AggCount }

// AggSpec describes one aggregation: the op, the value column it reads
// (ignored for COUNT; use -1), and an optional group-by column (-1 for an
// ungrouped aggregate). The group column should be categorical — every
// distinct value becomes one group.
type AggSpec struct {
	Op    AggOp
	Col   int
	Group int
}

// Validate checks the spec against a row dimensionality.
func (s AggSpec) Validate(dims int) error {
	if s.Op.NeedsColumn() && (s.Col < 0 || s.Col >= dims) {
		return fmt.Errorf("index: aggregate column %d out of range [0,%d)", s.Col, dims)
	}
	if s.Group >= dims {
		return fmt.Errorf("index: group-by column %d out of range [0,%d)", s.Group, dims)
	}
	return nil
}

// AggCell is one running aggregate: every fold maintains count, sum, and
// extrema together, so a single cell answers any op and AVG is free.
type AggCell struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// fold absorbs one value. The operation order (extrema update, then sum,
// then count) is the single definition both the batch and row paths use —
// bit-identical results depend on it.
func (c *AggCell) fold(v float64) {
	if c.Count == 0 {
		c.Min, c.Max = v, v
	} else {
		if v < c.Min {
			c.Min = v
		}
		if v > c.Max {
			c.Max = v
		}
	}
	c.Sum += v
	c.Count++
}

// merge absorbs another cell's state.
func (c *AggCell) merge(o *AggCell) {
	if o.Count == 0 {
		return
	}
	if c.Count == 0 {
		*c = *o
		return
	}
	if o.Min < c.Min {
		c.Min = o.Min
	}
	if o.Max > c.Max {
		c.Max = o.Max
	}
	c.Sum += o.Sum
	c.Count += o.Count
}

// Value extracts the cell's aggregate under op; ok is false when the
// aggregate is undefined (MIN/MAX/AVG over zero rows).
func (c *AggCell) Value(op AggOp) (v float64, ok bool) {
	switch op {
	case AggCount:
		return float64(c.Count), true
	case AggSum:
		return c.Sum, true
	case AggMin:
		return c.Min, c.Count > 0
	case AggMax:
		return c.Max, c.Count > 0
	case AggAvg:
		if c.Count == 0 {
			return 0, false
		}
		return c.Sum / float64(c.Count), true
	}
	return 0, false
}

// AggState is the running state of one aggregation execution (or one
// shard's partial). Not safe for concurrent use; fan-outs give each worker
// its own state and Merge at the gather point.
type AggState struct {
	Spec AggSpec
	// All is the ungrouped aggregate; untouched when Spec.Group >= 0.
	All AggCell
	// Groups maps group key → cell; non-nil exactly when Spec.Group >= 0.
	Groups map[float64]*AggCell
}

// NewAggState returns an empty state for spec.
func NewAggState(spec AggSpec) *AggState {
	st := &AggState{Spec: spec}
	if spec.Group >= 0 {
		st.Groups = make(map[float64]*AggCell)
	}
	return st
}

// cell returns (allocating on first use) the cell for a group key.
func (a *AggState) cell(key float64) *AggCell {
	c := a.Groups[key]
	if c == nil {
		c = &AggCell{}
		a.Groups[key] = c
	}
	return c
}

// FoldBatch folds every selected row of b into the state. Ungrouped COUNT
// never touches the page — it is a popcount over the selection words;
// every other shape walks only the set bits, reading just the columns the
// spec needs.
func (a *AggState) FoldBatch(b *Batch) {
	if a.Spec.Group < 0 {
		if a.Spec.Op == AggCount {
			for _, w := range b.Sel {
				a.All.Count += int64(bits.OnesCount64(w))
			}
			return
		}
		col := a.Spec.Col
		for w, word := range b.Sel {
			base := w << 6
			for word != 0 {
				i := base + bits.TrailingZeros64(word)
				word &= word - 1
				a.All.fold(b.Page[i*b.Dims+col])
			}
		}
		return
	}
	gcol := a.Spec.Group
	counting := a.Spec.Op == AggCount
	col := a.Spec.Col
	for w, word := range b.Sel {
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			off := i * b.Dims
			c := a.cell(b.Page[off+gcol])
			if counting {
				c.Count++
			} else {
				c.fold(b.Page[off+col])
			}
		}
	}
}

// FoldRow folds one row — the row-at-a-time fallback, performing exactly
// the operations FoldBatch performs per selected row.
func (a *AggState) FoldRow(row []float64) {
	if a.Spec.Group < 0 {
		if a.Spec.Op == AggCount {
			a.All.Count++
			return
		}
		a.All.fold(row[a.Spec.Col])
		return
	}
	c := a.cell(row[a.Spec.Group])
	if a.Spec.Op == AggCount {
		c.Count++
		return
	}
	c.fold(row[a.Spec.Col])
}

// Merge absorbs another state's partial into a. Callers merging several
// partials must do so in a deterministic order (the fan-out merges in
// shard order) so floating-point sums reproduce run to run.
func (a *AggState) Merge(o *AggState) {
	if o == nil {
		return
	}
	a.All.merge(&o.All)
	for k, oc := range o.Groups {
		a.cell(k).merge(oc)
	}
}

// Rows reports the number of rows folded so far (total across groups).
func (a *AggState) Rows() int64 {
	if a.Spec.Group < 0 {
		return a.All.Count
	}
	var n int64
	for _, c := range a.Groups {
		n += c.Count
	}
	return n
}

// GroupKeys returns the group keys in ascending order — the deterministic
// presentation order of a grouped result.
func (a *AggState) GroupKeys() []float64 {
	keys := make([]float64, 0, len(a.Groups))
	for k := range a.Groups {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	return keys
}
