// Package index defines the shared contract implemented by every
// multidimensional index in this repository (COAX, grid file, uniform grid,
// column files, R-tree, full scan) together with the axis-aligned rectangle
// type used to express range and point queries.
package index

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Rect is an axis-aligned hyper-rectangle with inclusive bounds. A dimension
// can be left unconstrained by using -Inf / +Inf. Point queries are rectangles
// whose Min and Max coincide in every dimension.
type Rect struct {
	Min []float64
	Max []float64
}

// NewRect copies min and max into a fresh Rect.
func NewRect(min, max []float64) Rect {
	r := Rect{Min: make([]float64, len(min)), Max: make([]float64, len(max))}
	copy(r.Min, min)
	copy(r.Max, max)
	return r
}

// Full returns a rectangle that matches every point in dims dimensions.
func Full(dims int) Rect {
	r := Rect{Min: make([]float64, dims), Max: make([]float64, dims)}
	for i := 0; i < dims; i++ {
		r.Min[i] = math.Inf(-1)
		r.Max[i] = math.Inf(1)
	}
	return r
}

// Point returns the degenerate rectangle containing exactly p.
func Point(p []float64) Rect {
	return NewRect(p, p)
}

// Dims reports the dimensionality of the rectangle.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return NewRect(r.Min, r.Max) }

// Contains reports whether row lies inside r (inclusive on both bounds).
// Only the first Dims() values of row are examined, so rows may carry more
// trailing attributes than the rectangle constrains.
func (r Rect) Contains(row []float64) bool {
	for i := range r.Min {
		v := row[i]
		if v < r.Min[i] || v > r.Max[i] {
			return false
		}
	}
	return true
}

// IsPoint reports whether every dimension has Min == Max.
func (r Rect) IsPoint() bool {
	for i := range r.Min {
		if r.Min[i] != r.Max[i] {
			return false
		}
	}
	return len(r.Min) > 0
}

// Empty reports whether the rectangle can match no point, i.e. some
// dimension has Min > Max.
func (r Rect) Empty() bool {
	for i := range r.Min {
		if r.Min[i] > r.Max[i] {
			return true
		}
	}
	return false
}

// Intersect returns the component-wise intersection of r and o. The result
// may be Empty. Both rectangles must share the same dimensionality.
func (r Rect) Intersect(o Rect) Rect {
	out := r.Clone()
	for i := range out.Min {
		if o.Min[i] > out.Min[i] {
			out.Min[i] = o.Min[i]
		}
		if o.Max[i] < out.Max[i] {
			out.Max[i] = o.Max[i]
		}
	}
	return out
}

// Overlaps reports whether r and o share at least one point.
func (r Rect) Overlaps(o Rect) bool {
	for i := range r.Min {
		if r.Min[i] > o.Max[i] || o.Min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Validate checks structural invariants: matching lengths, at least one
// dimension, and no NaN bounds. Min > Max is legal (an empty rectangle) so
// that intersections can be represented faithfully.
func (r Rect) Validate() error {
	if len(r.Min) == 0 {
		return errors.New("index: rectangle has zero dimensions")
	}
	if len(r.Min) != len(r.Max) {
		return fmt.Errorf("index: rectangle min/max length mismatch: %d vs %d", len(r.Min), len(r.Max))
	}
	for i := range r.Min {
		if math.IsNaN(r.Min[i]) || math.IsNaN(r.Max[i]) {
			return fmt.Errorf("index: rectangle has NaN bound in dimension %d", i)
		}
	}
	return nil
}

// String renders the rectangle as [min,max] pairs per dimension.
func (r Rect) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range r.Min {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "[%g,%g]", r.Min[i], r.Max[i])
	}
	b.WriteByte('}')
	return b.String()
}
