package index

import (
	"context"

	"github.com/coax-index/coax/internal/obs"
)

// Visitor receives one matching row per call. It is the legacy
// run-to-completion contract; new code should use Yield, whose return value
// can stop the scan early.
//
// Ownership contract: the slice must be valid — unread and unwritten by
// any other goroutine — for the full duration of the call. Single-threaded
// indexes (grid file, R-tree, scan, COAX) pass a slice aliasing their
// internals that may be reused after the call returns, so visitors must
// copy rows they retain. Engines that merge results across goroutines
// (internal/shard) may not hand out internal slices at all: they must copy
// each row at the merge boundary before invoking the visitor, which makes
// their rows stable copies that stay valid even after the call.
type Visitor func(row []float64)

// Yield is the v2 visitor contract: it receives one matching row per call
// and reports whether the scan should continue. Returning false stops the
// scan — the index abandons the remaining pages, and a multi-shard engine
// signals every worker to stop. Row ownership follows the same rule as
// Visitor unless the caller requested stable rows (Spec.Stable).
type Yield func(row []float64) bool

// Probe accumulates the execution counters of one scan — the raw material
// of the public Explain report — and optionally carries the scan's abort
// hook. A nil *Probe disables both, so the hot path pays only a pointer
// test.
type Probe struct {
	// Pages counts storage units visited: grid-file main and overflow
	// pages, R-tree nodes, or whole-table scans (one page).
	Pages int64
	// Scanned counts candidate rows examined against the rectangle.
	Scanned int64
	// Matched counts rows handed to the yield.
	Matched int64
	// Tombstones counts deleted rows filtered at the visitor boundary.
	Tombstones int64
	// Batches counts selection-bitmap batches processed by a batch scan;
	// always zero on the row-at-a-time path.
	Batches int64
	// Abort, when non-nil, is polled at page boundaries; returning true
	// stops the scan exactly as a false-returning yield would. This is how
	// cancellation reaches scans whose pages match nothing — a yield-side
	// check alone would never fire on them.
	Abort func() bool
}

// Add accumulates o's counters into p.
func (p *Probe) Add(o Probe) {
	p.Pages += o.Pages
	p.Scanned += o.Scanned
	p.Matched += o.Matched
	p.Tombstones += o.Tombstones
	p.Batches += o.Batches
}

// Aborted reports whether the probe carries an abort hook that has fired;
// implementations poll it once per page.
func (p *Probe) Aborted() bool {
	return p != nil && p.Abort != nil && p.Abort()
}

// Spec carries the execution options of one v2 scan, compiled by the public
// query builder and honored by every engine.
type Spec struct {
	// Ctx cancels the scan when done; nil means no cancellation. Engines
	// check it at page granularity, so a scan stops within about one page
	// of cancellation.
	Ctx context.Context
	// Limit is the maximum number of rows the caller will consume, or ≤ 0
	// for all of them. It is a sizing and short-circuit hint — the caller's
	// yield still enforces the exact cutoff — letting a sharded engine stop
	// each shard after Limit local matches and size its buffers to match.
	Limit int
	// Stable requires every row handed to the yield to be a private copy
	// that stays valid after the call returns, regardless of which engine
	// answers the query.
	Stable bool
	// Abort, when non-nil, is polled at page granularity alongside Ctx;
	// returning true stops the scan. Engines composing engines (the shard
	// fan-out) use it to propagate their shared stop flag into per-shard
	// scans so even match-free probes notice a stop promptly.
	Abort func() bool
	// Trace, when non-nil, collects per-unit timing spans as the query
	// executes (one span per shard probe in the sharded engine). Engines
	// that do not decompose a query into units may ignore it.
	Trace *obs.Trace
}

// Done reports whether the spec's context has been cancelled.
func (s *Spec) Done() bool {
	return s.Ctx != nil && s.Ctx.Err() != nil
}

// Interface is the contract shared by every multidimensional index in this
// repository. Implementations must return exactly the rows matching the
// rectangle — no more, no fewer — regardless of internal over-approximation.
type Interface interface {
	// Name identifies the index variant in benchmark output.
	Name() string
	// Len reports the number of rows indexed.
	Len() int
	// Dims reports the row dimensionality.
	Dims() int
	// Query invokes visit for every indexed row inside r (the legacy
	// run-to-completion entry point, a shim over Scan).
	Query(r Rect, visit Visitor)
	// Scan invokes yield for every indexed row inside r until yield
	// returns false, accumulating execution counters into probe when it is
	// non-nil. It reports whether the scan ran to completion (false: the
	// yield stopped it).
	Scan(r Rect, yield Yield, probe *Probe) bool
	// MemoryOverhead reports the directory size in bytes: everything the
	// index allocates beyond the row payload itself (grid boundaries, cell
	// offset tables, tree nodes, model parameters).
	MemoryOverhead() int64
}

// AsYield adapts a legacy visitor to the v2 contract; the scan never stops.
func AsYield(visit Visitor) Yield {
	return func(row []float64) bool { visit(row); return true }
}

// Count runs the query and returns the number of matching rows.
func Count(idx Interface, r Rect) int {
	n := 0
	idx.Scan(r, func([]float64) bool { n++; return true }, nil)
	return n
}

// Collect runs the query and returns copies of all matching rows.
func Collect(idx Interface, r Rect) [][]float64 {
	var out [][]float64
	idx.Scan(r, func(row []float64) bool {
		cp := make([]float64, len(row))
		copy(cp, row)
		out = append(out, cp)
		return true
	}, nil)
	return out
}
