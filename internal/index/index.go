package index

// Visitor receives one matching row per call.
//
// Ownership contract: the slice must be valid — unread and unwritten by
// any other goroutine — for the full duration of the call. Single-threaded
// indexes (grid file, R-tree, scan, COAX) pass a slice aliasing their
// internals that may be reused after the call returns, so visitors must
// copy rows they retain. Engines that merge results across goroutines
// (internal/shard) may not hand out internal slices at all: they must copy
// each row at the merge boundary before invoking the visitor, which makes
// their rows stable copies that stay valid even after the call.
type Visitor func(row []float64)

// Interface is the contract shared by every multidimensional index in this
// repository. Implementations must return exactly the rows matching the
// rectangle — no more, no fewer — regardless of internal over-approximation.
type Interface interface {
	// Name identifies the index variant in benchmark output.
	Name() string
	// Len reports the number of rows indexed.
	Len() int
	// Dims reports the row dimensionality.
	Dims() int
	// Query invokes visit for every indexed row inside r.
	Query(r Rect, visit Visitor)
	// MemoryOverhead reports the directory size in bytes: everything the
	// index allocates beyond the row payload itself (grid boundaries, cell
	// offset tables, tree nodes, model parameters).
	MemoryOverhead() int64
}

// Count runs the query and returns the number of matching rows.
func Count(idx Interface, r Rect) int {
	n := 0
	idx.Query(r, func([]float64) { n++ })
	return n
}

// Collect runs the query and returns copies of all matching rows.
func Collect(idx Interface, r Rect) [][]float64 {
	var out [][]float64
	idx.Query(r, func(row []float64) {
		cp := make([]float64, len(row))
		copy(cp, row)
		out = append(out, cp)
	})
	return out
}
