package index

import (
	"math"
	"math/bits"
)

// Batch-at-a-time scanning. The row-at-a-time Scan contract pays an
// interface call, a full Contains re-check, and a slice-header copy per
// matching row; ScanBatch amortizes all three by evaluating the rectangle
// as tight per-column loops over a page's rows and handing the caller one
// selection bitmap per batch. Aggregations fold straight off the bitmap
// (COUNT is a popcount; SUM/MIN/MAX walk only the set bits), and row
// consumers recover the exact Scan behaviour through Batch.Each.

// BatchRows is the maximum number of rows in one Batch: large enough to
// amortize per-batch bookkeeping, small enough that a batch's selection
// words and the column values it touches stay cache-resident.
const BatchRows = 1024

// BatchWords returns the number of 64-bit selection words covering rows.
func BatchWords(rows int) int { return (rows + 63) >> 6 }

// Batch is one unit of a batch scan: a window of candidate rows in their
// native row-major page layout plus the selection bitmap the kernel
// computed over them. Bit i of Sel set means row i satisfies the query
// rectangle (and is not tombstoned). Tail bits past Rows are always zero,
// so popcounts over Sel need no edge handling.
//
// Ownership follows the row-scan rule: Page and Sel alias scratch that is
// reused after the yield returns, so consumers must copy anything they
// retain.
type Batch struct {
	// Page is the row-major window: Rows*Dims values, row i occupying
	// Page[i*Dims : (i+1)*Dims].
	Page []float64
	// Dims is the row stride.
	Dims int
	// Rows is the number of candidate rows in the window.
	Rows int
	// Sel is the selection bitmap, BatchWords(Rows) words long.
	Sel []uint64
}

// BatchYield receives one batch per call and reports whether the scan
// should continue, mirroring Yield's contract at batch granularity.
type BatchYield func(b *Batch) bool

// ScanBatcher is the batch-at-a-time contract implemented alongside Scan
// by indexes with vectorized kernels. ScanBatch visits exactly the rows
// Scan(r, ...) would yield — as set bits instead of callbacks — and
// accumulates the same probe counters (pages, rows scanned, matches,
// tombstones) plus Probe.Batches. It reports whether the scan ran to
// completion (false: the yield or the probe's abort hook stopped it).
type ScanBatcher interface {
	ScanBatch(r Rect, yield BatchYield, probe *Probe) bool
}

// Kernel is implemented by indexes that name their vectorized scan kernel
// for EXPLAIN output and the per-kernel dispatch metrics.
type Kernel interface {
	BatchKernel() string
}

// Selected returns the number of set bits in the batch's selection bitmap.
func (b *Batch) Selected() int {
	n := 0
	for _, w := range b.Sel {
		n += bits.OnesCount64(w)
	}
	return n
}

// Row returns row i of the window (aliasing the page).
func (b *Batch) Row(i int) []float64 {
	return b.Page[i*b.Dims : (i+1)*b.Dims : (i+1)*b.Dims]
}

// Each drives a row-at-a-time yield off the selection bitmap — the
// compatibility shim that makes a batch scan behave exactly like Scan. It
// reports whether every selected row was delivered (false: yield stopped
// it).
func (b *Batch) Each(yield Yield) bool {
	for w, word := range b.Sel {
		base := w << 6
		for word != 0 {
			i := base + bits.TrailingZeros64(word)
			word &= word - 1
			if !yield(b.Row(i)) {
				return false
			}
		}
	}
	return true
}

// SelectRect computes the selection bitmap of r over a row-major window:
// bit i of sel is set iff r.Contains(row i). Each constrained dimension is
// evaluated as one tight loop over its column (stride dims), producing
// 64-bit match words that are AND-intersected across dimensions;
// unconstrained dimensions cost nothing. sel must hold BatchWords(rows)
// words; tail bits are left zero. The per-value test is the exact negation
// of Contains' rejection test, so NaN handling matches the row path
// bit-for-bit.
func SelectRect(page []float64, dims, rows int, r Rect, sel []uint64) {
	words := BatchWords(rows)
	first := true
	for d := range r.Min {
		lo, hi := r.Min[d], r.Max[d]
		if math.IsInf(lo, -1) && math.IsInf(hi, 1) {
			continue // unconstrained: every row passes
		}
		if first {
			rangeBitsInit(page, dims, d, rows, lo, hi, sel[:words])
			first = false
		} else {
			rangeBitsAnd(page, dims, d, rows, lo, hi, sel[:words])
		}
	}
	if first {
		// No constrained dimension: all rows selected.
		for w := 0; w < words; w++ {
			sel[w] = ^uint64(0)
		}
		if tail := rows & 63; tail != 0 {
			sel[words-1] = (1 << uint(tail)) - 1
		}
	}
}

// rangeBitsInit writes the match words of one column range test:
// bit i set iff !(v < lo || v > hi) for v = page[i*dims+col].
func rangeBitsInit(page []float64, dims, col, rows int, lo, hi float64, out []uint64) {
	off := col
	for w := range out {
		n := rows - w<<6
		if n > 64 {
			n = 64
		}
		var bits uint64
		for i := 0; i < n; i++ {
			v := page[off]
			off += dims
			if !(v < lo || v > hi) {
				bits |= 1 << uint(i)
			}
		}
		out[w] = bits
	}
}

// rangeBitsAnd intersects one column's match words into out, skipping
// 64-row blocks already dead — the common case on selective queries.
func rangeBitsAnd(page []float64, dims, col, rows int, lo, hi float64, out []uint64) {
	for w := range out {
		have := out[w]
		if have == 0 {
			continue
		}
		n := rows - w<<6
		if n > 64 {
			n = 64
		}
		off := w<<6*dims + col
		var bits uint64
		for i := 0; i < n; i++ {
			v := page[off]
			off += dims
			if !(v < lo || v > hi) {
				bits |= 1 << uint(i)
			}
		}
		out[w] = have & bits
	}
}
