package index

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := NewRect([]float64{0, -1}, []float64{10, 1})
	cases := []struct {
		row  []float64
		want bool
	}{
		{[]float64{5, 0}, true},
		{[]float64{0, -1}, true}, // inclusive lower
		{[]float64{10, 1}, true}, // inclusive upper
		{[]float64{-0.1, 0}, false},
		{[]float64{10.1, 0}, false},
		{[]float64{5, 1.5}, false},
		{[]float64{5, -1.5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.row); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.row, got, c.want)
		}
	}
}

func TestRectContainsIgnoresTrailingAttributes(t *testing.T) {
	r := NewRect([]float64{0}, []float64{1})
	if !r.Contains([]float64{0.5, 999}) {
		t.Error("Contains should only examine the first Dims() values")
	}
}

func TestFullMatchesEverything(t *testing.T) {
	r := Full(3)
	rows := [][]float64{
		{0, 0, 0},
		{math.MaxFloat64, -math.MaxFloat64, 1},
		{-1e300, 1e300, 0},
	}
	for _, row := range rows {
		if !r.Contains(row) {
			t.Errorf("Full(3) should contain %v", row)
		}
	}
}

func TestPointRect(t *testing.T) {
	p := []float64{1, 2, 3}
	r := Point(p)
	if !r.IsPoint() {
		t.Error("Point() should produce IsPoint() == true")
	}
	if !r.Contains(p) {
		t.Error("point rect must contain its own point")
	}
	if r.Contains([]float64{1, 2, 3.0001}) {
		t.Error("point rect must not contain a different point")
	}
	// Mutating the source must not affect the rect (copied).
	p[0] = 99
	if r.Min[0] != 1 {
		t.Error("Point must copy its input")
	}
}

func TestEmptyAndIntersect(t *testing.T) {
	a := NewRect([]float64{0, 0}, []float64{5, 5})
	b := NewRect([]float64{3, 3}, []float64{8, 8})
	got := a.Intersect(b)
	want := NewRect([]float64{3, 3}, []float64{5, 5})
	for i := range want.Min {
		if got.Min[i] != want.Min[i] || got.Max[i] != want.Max[i] {
			t.Fatalf("Intersect = %v, want %v", got, want)
		}
	}
	c := NewRect([]float64{6, 0}, []float64{9, 5})
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection should be Empty")
	}
	if a.Empty() {
		t.Error("a valid rect must not be Empty")
	}
}

func TestOverlapsAndContainsRect(t *testing.T) {
	a := NewRect([]float64{0, 0}, []float64{10, 10})
	inner := NewRect([]float64{2, 2}, []float64{3, 3})
	edge := NewRect([]float64{10, 10}, []float64{12, 12})
	outside := NewRect([]float64{11, 11}, []float64{12, 12})

	if !a.Overlaps(inner) || !a.ContainsRect(inner) {
		t.Error("inner rect should overlap and be contained")
	}
	if !a.Overlaps(edge) {
		t.Error("touching rects overlap (inclusive bounds)")
	}
	if a.ContainsRect(edge) {
		t.Error("edge rect extends outside a")
	}
	if a.Overlaps(outside) {
		t.Error("disjoint rects must not overlap")
	}
}

func TestValidate(t *testing.T) {
	if err := NewRect([]float64{0}, []float64{1}).Validate(); err != nil {
		t.Errorf("valid rect rejected: %v", err)
	}
	if err := (Rect{}).Validate(); err == nil {
		t.Error("zero-dim rect must fail validation")
	}
	if err := (Rect{Min: []float64{0}, Max: []float64{0, 1}}).Validate(); err == nil {
		t.Error("length mismatch must fail validation")
	}
	if err := NewRect([]float64{math.NaN()}, []float64{1}).Validate(); err == nil {
		t.Error("NaN bound must fail validation")
	}
}

func TestRectString(t *testing.T) {
	s := NewRect([]float64{0, 1}, []float64{2, 3}).String()
	if s != "{[0,2], [1,3]}" {
		t.Errorf("String() = %q", s)
	}
}

// Property: Intersect(a, b).Contains(p) ⟺ a.Contains(p) && b.Contains(p).
func TestIntersectSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := 1 + r.Intn(4)
		a := randRect(r, dims)
		b := randRect(r, dims)
		both := a.Intersect(b)
		for trial := 0; trial < 50; trial++ {
			p := make([]float64, dims)
			for d := range p {
				p[d] = r.Float64()*4 - 2
			}
			want := a.Contains(p) && b.Contains(p)
			if both.Contains(p) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func randRect(r *rand.Rand, dims int) Rect {
	min := make([]float64, dims)
	max := make([]float64, dims)
	for d := 0; d < dims; d++ {
		a := r.Float64()*4 - 2
		b := r.Float64()*4 - 2
		if a > b {
			a, b = b, a
		}
		min[d], max[d] = a, b
	}
	return Rect{Min: min, Max: max}
}

func TestCountAndCollect(t *testing.T) {
	idx := fakeIndex{rows: [][]float64{{1}, {2}, {3}}}
	r := NewRect([]float64{1.5}, []float64{3})
	if got := Count(idx, r); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	rows := Collect(idx, r)
	if len(rows) != 2 || rows[0][0] != 2 || rows[1][0] != 3 {
		t.Errorf("Collect = %v", rows)
	}
}

type fakeIndex struct{ rows [][]float64 }

func (f fakeIndex) Name() string          { return "fake" }
func (f fakeIndex) Len() int              { return len(f.rows) }
func (f fakeIndex) Dims() int             { return 1 }
func (f fakeIndex) MemoryOverhead() int64 { return 0 }
func (f fakeIndex) Query(r Rect, visit Visitor) {
	f.Scan(r, AsYield(visit), nil)
}

func (f fakeIndex) Scan(r Rect, yield Yield, probe *Probe) bool {
	for _, row := range f.rows {
		if r.Contains(row) {
			if probe != nil {
				probe.Matched++
			}
			if !yield(row) {
				return false
			}
		}
	}
	return true
}
