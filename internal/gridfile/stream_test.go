package gridfile

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

// collectSorted gathers every row matching r and sorts them for multiset
// comparison.
func collectSorted(g index.Interface, r index.Rect) [][]float64 {
	var out [][]float64
	g.Query(r, func(row []float64) {
		out = append(out, append([]float64(nil), row...))
	})
	sort.Slice(out, func(i, j int) bool {
		for d := range out[i] {
			if out[i][d] != out[j][d] {
				return out[i][d] < out[j][d]
			}
		}
		return false
	})
	return out
}

func rowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

func TestStreamerMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := dataset.NewTable([]string{"a", "b", "c"})
	for i := 0; i < 5000; i++ {
		tab.Append([]float64{rng.NormFloat64() * 10, rng.Float64() * 100, float64(rng.Intn(50))})
	}

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"sorted", Config{GridDims: []int{0, 2}, SortDim: 1, CellsPerDim: 8, Mode: Quantile}},
		{"unsorted", Config{GridDims: []int{0, 1, 2}, SortDim: -1, CellsPerDim: 5, Mode: Quantile}},
		{"no grid dims", Config{GridDims: nil, SortDim: 0, CellsPerDim: 4, Mode: Quantile}},
	} {
		built, err := Build(tab, tc.cfg)
		if err != nil {
			t.Fatalf("%s: Build: %v", tc.name, err)
		}
		// Feed the streamer the same boundaries Build derived, so cell
		// assignment is identical and only the assembly path differs.
		bounds := make([][]float64, len(tc.cfg.GridDims))
		for i := range bounds {
			bounds[i] = built.bounds[i]
		}
		st, err := NewStreamer(tab.Dims(), tc.cfg, bounds, -1)
		if err != nil {
			t.Fatalf("%s: NewStreamer: %v", tc.name, err)
		}
		for i := 0; i < tab.Len(); i++ {
			st.Add(tab.Row(i))
		}
		streamed, err := st.Finish()
		if err != nil {
			t.Fatalf("%s: Finish: %v", tc.name, err)
		}

		if streamed.Len() != built.Len() || streamed.NumCells() != built.NumCells() {
			t.Fatalf("%s: len/cells mismatch: %d/%d vs %d/%d",
				tc.name, streamed.Len(), streamed.NumCells(), built.Len(), built.NumCells())
		}
		// Identical per-cell populations.
		bs, ss := built.CellSizes(), streamed.CellSizes()
		for c := range bs {
			if bs[c] != ss[c] {
				t.Fatalf("%s: cell %d holds %d streamed vs %d built rows", tc.name, c, ss[c], bs[c])
			}
		}
		// Identical query answers on random rectangles.
		qrng := rand.New(rand.NewSource(11))
		for q := 0; q < 50; q++ {
			r := workload.RandRect(qrng, tab)
			if !rowsEqual(collectSorted(built, r), collectSorted(streamed, r)) {
				t.Fatalf("%s: query %d differs", tc.name, q)
			}
		}
	}
}

func TestStreamerSampleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := make([]float64, 10000)
	for i := range full {
		full[i] = rng.ExpFloat64() * 42
	}
	cfg := Config{CellsPerDim: 16, Mode: Quantile}
	b, err := SampleBounds(full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 17 {
		t.Fatalf("got %d boundaries, want 17", len(b))
	}
	if !sort.Float64sAreSorted(b) {
		t.Fatal("boundaries not ascending")
	}
	if _, err := SampleBounds(nil, cfg); err == nil {
		t.Fatal("empty sample must error")
	}
}

func TestStreamerValidation(t *testing.T) {
	good := [][]float64{{0, 1, 2, 3, 4}}
	cases := []struct {
		name   string
		dims   int
		cfg    Config
		bounds [][]float64
	}{
		{"bad cells", 3, Config{CellsPerDim: 0}, nil},
		{"dim out of range", 3, Config{GridDims: []int{3}, SortDim: -1, CellsPerDim: 4}, good},
		{"dup dim", 3, Config{GridDims: []int{1, 1}, SortDim: -1, CellsPerDim: 4}, [][]float64{good[0], good[0]}},
		{"sort is grid", 3, Config{GridDims: []int{1}, SortDim: 1, CellsPerDim: 4}, good},
		{"bounds count", 3, Config{GridDims: []int{0, 1}, SortDim: -1, CellsPerDim: 4}, good},
		{"bounds length", 3, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 7}, good},
		{"descending", 3, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 4}, [][]float64{{4, 3, 2, 1, 0}}},
	}
	for _, tc := range cases {
		if _, err := NewStreamer(tc.dims, tc.cfg, tc.bounds, 0); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Empty finish errors.
	st, err := NewStreamer(3, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 4}, good, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Finish(); err == nil {
		t.Fatal("Finish on an empty streamer must error")
	}
}
