package gridfile

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func randomTable(rng *rand.Rand, n, dims int) *dataset.Table {
	cols := make([]string, dims)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	t := dataset.NewTable(cols)
	row := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := range row {
			row[d] = rng.NormFloat64() * 10
		}
		t.Append(row)
	}
	return t
}

func sortRows(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		for d := range rows[i] {
			if rows[i][d] != rows[j][d] {
				return rows[i][d] < rows[j][d]
			}
		}
		return false
	})
}

func sameRows(t *testing.T, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result count %d, want %d", len(got), len(want))
	}
	sortRows(got)
	sortRows(want)
	for i := range got {
		for d := range got[i] {
			if got[i][d] != want[i][d] {
				t.Fatalf("row %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(1)), 10, 3)
	cases := []Config{
		{GridDims: []int{0}, SortDim: -1, CellsPerDim: 0},           // bad cells
		{GridDims: []int{0, 0}, SortDim: -1, CellsPerDim: 2},        // dup dim
		{GridDims: []int{5}, SortDim: -1, CellsPerDim: 2},           // out of range
		{GridDims: []int{0}, SortDim: 0, CellsPerDim: 2},            // sort == grid
		{GridDims: []int{0}, SortDim: 9, CellsPerDim: 2},            // sort out of range
		{GridDims: []int{0}, SortDim: -1, CellsPerDim: 2, Mode: 99}, // bad mode
	}
	for i, cfg := range cases {
		if _, err := Build(tab, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := Build(dataset.NewTable([]string{"a"}), Config{CellsPerDim: 2, SortDim: -1}); err == nil {
		t.Error("empty table accepted")
	}
}

func TestQueryMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 5000, 3)
	oracle := scan.New(tab)

	configs := []Config{
		{GridDims: []int{0, 1, 2}, SortDim: -1, CellsPerDim: 8, Mode: Quantile},
		{GridDims: []int{0, 1, 2}, SortDim: -1, CellsPerDim: 8, Mode: Uniform},
		{GridDims: []int{0, 1}, SortDim: 2, CellsPerDim: 8, Mode: Quantile},
		{GridDims: []int{1}, SortDim: 0, CellsPerDim: 16, Mode: Quantile},
		{GridDims: nil, SortDim: 0, CellsPerDim: 1, Mode: Quantile},
		{GridDims: nil, SortDim: -1, CellsPerDim: 1, Mode: Quantile},
	}
	for ci, cfg := range configs {
		g, err := Build(tab, cfg)
		if err != nil {
			t.Fatalf("config %d: %v", ci, err)
		}
		if g.Len() != tab.Len() {
			t.Fatalf("config %d: Len = %d", ci, g.Len())
		}
		for trial := 0; trial < 30; trial++ {
			r := randQueryRect(rng, 3)
			sameRows(t, index.Collect(g, r), index.Collect(oracle, r))
		}
		// Point queries on existing rows.
		for trial := 0; trial < 20; trial++ {
			p := index.Point(tab.Row(rng.Intn(tab.Len())))
			if index.Count(g, p) < 1 {
				t.Fatalf("config %d: point query lost its own row", ci)
			}
		}
	}
}

func randQueryRect(rng *rand.Rand, dims int) index.Rect {
	r := index.Full(dims)
	for d := 0; d < dims; d++ {
		if rng.Float64() < 0.3 {
			continue // leave unconstrained
		}
		a := rng.NormFloat64() * 10
		b := rng.NormFloat64() * 10
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

func TestEmptyRectReturnsNothing(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(3)), 100, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := index.NewRect([]float64{5, 0}, []float64{-5, 1}) // Min > Max
	if index.Count(g, r) != 0 {
		t.Error("empty rect must match nothing")
	}
}

func TestCellSizesSumToLen(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(4)), 2000, 2)
	g, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: -1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	sizes := g.CellSizes()
	if len(sizes) != 64 {
		t.Fatalf("NumCells = %d, want 64", len(sizes))
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 2000 {
		t.Errorf("cell sizes sum to %d, want 2000", sum)
	}
}

func TestQuantileModeBalancesCells(t *testing.T) {
	// Heavily skewed 1-D data: quantile boundaries must balance cells
	// while uniform boundaries must not.
	rng := rand.New(rand.NewSource(5))
	tab := dataset.NewTable([]string{"x", "y"})
	for i := 0; i < 10000; i++ {
		v := rng.ExpFloat64() * 100
		tab.Append([]float64{v, rng.Float64()})
	}
	q, err := Build(tab, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 10, Mode: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	u, err := Build(tab, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 10, Mode: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	qmax, umax := 0, 0
	for _, s := range q.CellSizes() {
		if s > qmax {
			qmax = s
		}
	}
	for _, s := range u.CellSizes() {
		if s > umax {
			umax = s
		}
	}
	if qmax > 1400 {
		t.Errorf("quantile cells unbalanced: max = %d", qmax)
	}
	if umax < 3*qmax {
		t.Errorf("uniform grid should be much more skewed: umax=%d qmax=%d", umax, qmax)
	}
}

func TestMemoryOverheadGrowsWithCells(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(6)), 1000, 2)
	small, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: -1, CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: -1, CellsPerDim: 32})
	if err != nil {
		t.Fatal(err)
	}
	if small.MemoryOverhead() >= big.MemoryOverhead() {
		t.Errorf("overhead should grow with cell count: %d vs %d",
			small.MemoryOverhead(), big.MemoryOverhead())
	}
	if small.MemoryOverhead() <= 0 {
		t.Error("overhead must be positive")
	}
}

func TestLabelAndName(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(7)), 10, 1)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 2, Label: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "custom" {
		t.Errorf("Name = %q", g.Name())
	}
	g2, err := Build(tab, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Name() != "GridFile" {
		t.Errorf("default Name = %q", g2.Name())
	}
}

func TestDuplicateValuesAllFound(t *testing.T) {
	// Many identical rows stress boundary assignment consistency.
	tab := dataset.NewTable([]string{"x", "y"})
	for i := 0; i < 500; i++ {
		tab.Append([]float64{5, 5})
	}
	for i := 0; i < 500; i++ {
		tab.Append([]float64{float64(i % 10), float64(i % 7)})
	}
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := index.Count(g, index.Point([]float64{5, 5})); got < 500 {
		t.Errorf("point query on duplicates found %d rows, want ≥ 500", got)
	}
}

// Property: grid file is exactly equivalent to full scan for random tables,
// configurations, and queries.
func TestGridFileEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(4)
		n := 50 + rng.Intn(500)
		tab := randomTable(rng, n, dims)
		oracle := scan.New(tab)

		// Random legal configuration.
		var gridDims []int
		for d := 0; d < dims; d++ {
			if rng.Float64() < 0.6 {
				gridDims = append(gridDims, d)
			}
		}
		sortDim := -1
		if rng.Float64() < 0.5 {
			for d := 0; d < dims; d++ {
				inGrid := false
				for _, gd := range gridDims {
					if gd == d {
						inGrid = true
						break
					}
				}
				if !inGrid {
					sortDim = d
					break
				}
			}
		}
		mode := Quantile
		if rng.Float64() < 0.5 {
			mode = Uniform
		}
		g, err := Build(tab, Config{
			GridDims: gridDims, SortDim: sortDim,
			CellsPerDim: 1 + rng.Intn(12), Mode: mode,
		})
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			r := randQueryRect(rng, dims)
			if index.Count(g, r) != index.Count(oracle, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDirectoryBoundedCells(t *testing.T) {
	// 2 dims, 800 bytes budget: c²·8 ≤ 800 → c ≤ 10.
	if got := DirectoryBoundedCells(2, 800); got != 10 {
		t.Errorf("DirectoryBoundedCells(2, 800) = %d, want 10", got)
	}
	// 8 dims, generous budget still capped at 64.
	if got := DirectoryBoundedCells(1, 1<<40); got != 64 {
		t.Errorf("cap broken: %d", got)
	}
	// Tiny budget degrades to a single cell.
	if got := DirectoryBoundedCells(4, 10); got != 1 {
		t.Errorf("tiny budget: %d, want 1", got)
	}
	// Zero grid dims.
	if got := DirectoryBoundedCells(0, 1000); got != 1 {
		t.Errorf("zero dims: %d, want 1", got)
	}
}
