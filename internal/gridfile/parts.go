package gridfile

import (
	"fmt"
	"math/bits"
)

// Assembly surface for the memory-mapped snapshot layer (internal/mmapsnap).
// A v3 snapshot stores a grid file's directory and pages as fixed-width
// regions that can be aliased straight out of a mapped file; FromParts
// rebuilds a queryable GridFile around those regions without copying the
// row payload, and ExportParts hands an encoder the same pieces.

// PageStore supplies the rows of main cell pages on demand. A store-backed
// grid file holds no resident row payload: cellPage(c) delegates here, so
// compressed snapshot pages can be decoded lazily into a bounded cache.
type PageStore interface {
	// CellPage returns cell c's main page, row-major, exactly
	// offsets[c+1]-offsets[c] rows. The slice is read-only and must stay
	// valid while the caller iterates it (implementations pin it for the
	// duration via their cache). On an unreadable page the store records a
	// sticky error on its side and returns an empty page.
	CellPage(c int) []float64
}

// Parts is the deconstructed state of a grid file. Slices may alias
// read-only mapped memory except Overflow and DeadWords, which the grid
// file mutates in place and therefore owns on heap.
type Parts struct {
	GridDims    []int
	SortDim     int
	CellsPerDim int
	Mode        BoundsMode
	Label       string

	Dims    int
	Bounds  [][]float64 // per grid dim: CellsPerDim+1 ascending boundaries
	Offsets []int64     // per cell starting row; len = cells+1

	// Exactly one of Data and Store backs the main pages: Data holds the
	// resident row-major payload (offsets[cells]*Dims values), Store
	// supplies pages on demand.
	Data  []float64
	Store PageStore

	Overflow  map[int][]float64 // heap-owned overflow pages, may be nil
	DeadWords []uint64          // heap-owned tombstone bitmap, may be nil

	// TrustPages skips the O(rows) sortedness verification of the main
	// pages — for mapped snapshots, which verify each page at decode or
	// open time instead.
	TrustPages bool
}

// FromParts assembles a grid file around p, revalidating every structural
// invariant the regular codec checks (a store-backed assembly defers main
// page content checks to the store). The row count is derived from the
// offset table and overflow pages; tombstoned slots are subtracted from
// Len() exactly as after a SetDeadSlots.
func FromParts(p Parts) (*GridFile, error) {
	if (p.Data != nil) && (p.Store != nil) {
		return nil, fmt.Errorf("gridfile: FromParts needs exactly one of Data and Store, got both")
	}
	g := &GridFile{
		cfg: Config{
			GridDims:    p.GridDims,
			SortDim:     p.SortDim,
			CellsPerDim: p.CellsPerDim,
			Mode:        p.Mode,
			Label:       p.Label,
		},
		dims:    p.Dims,
		bounds:  p.Bounds,
		data:    p.Data,
		offsets: p.Offsets,
		store:   p.Store,
	}
	if len(p.Offsets) == 0 {
		return nil, fmt.Errorf("gridfile: FromParts offsets missing")
	}
	mainRows := int(p.Offsets[len(p.Offsets)-1])
	overflowRows := 0
	for c, page := range p.Overflow {
		if len(page) == 0 {
			return nil, fmt.Errorf("gridfile: empty overflow page for cell %d", c)
		}
		if g.overflow == nil {
			g.overflow = make(map[int]*overflowPage, len(p.Overflow))
		}
		g.overflow[c] = &overflowPage{data: page}
		overflowRows += len(page) / p.Dims
	}
	g.n = mainRows + overflowRows
	if err := g.validateDecoded(!p.TrustPages && p.Store == nil); err != nil {
		return nil, err
	}
	if err := g.installDeadWords(p.DeadWords); err != nil {
		return nil, err
	}
	return g, nil
}

// installDeadWords adopts a tombstone bitmap, validating its width and that
// no bit points past the main pages.
func (g *GridFile) installDeadWords(words []uint64) error {
	if len(words) == 0 {
		return nil
	}
	mainRows := g.mainRows()
	maxWords := (mainRows + 63) / 64
	if len(words) > maxWords {
		return fmt.Errorf("gridfile: tombstone bitmap has %d words, main pages need at most %d", len(words), maxWords)
	}
	count := 0
	for w, word := range words {
		count += bits.OnesCount64(word)
		if word == 0 {
			continue
		}
		if hi := w*64 + 63 - bits.LeadingZeros64(word); hi >= mainRows {
			return fmt.Errorf("gridfile: tombstone slot %d out of range [0,%d)", hi, mainRows)
		}
	}
	// Install the trimmed slice as-is: readers tolerate a short bitmap and
	// setDead grows it on demand, so no mainRows-proportional allocation
	// happens here.
	g.dead = append([]uint64(nil), words...)
	g.deadCount = count
	return nil
}

// DeadWords returns a copy of the tombstone bitmap (nil when no rows are
// tombstoned), trimmed of trailing zero words.
func (g *GridFile) DeadWords() []uint64 {
	if g.deadCount == 0 {
		return nil
	}
	end := len(g.dead)
	for end > 0 && g.dead[end-1] == 0 {
		end--
	}
	out := make([]uint64, end)
	copy(out, g.dead[:end])
	return out
}

// ExportParts returns the grid file's state for an encoder. Bounds and
// Offsets alias internal storage and must not be mutated; Overflow pages
// and DeadWords are copies. Data is nil for a store-backed grid file —
// encoders read pages through CellPages instead.
func (g *GridFile) ExportParts() Parts {
	p := Parts{
		GridDims:    g.cfg.GridDims,
		SortDim:     g.cfg.SortDim,
		CellsPerDim: g.cfg.CellsPerDim,
		Mode:        g.cfg.Mode,
		Label:       g.cfg.Label,
		Dims:        g.dims,
		Bounds:      g.bounds,
		Offsets:     g.offsets,
		Data:        g.data,
		Store:       g.store,
		DeadWords:   g.DeadWords(),
	}
	if len(g.overflow) > 0 {
		p.Overflow = make(map[int][]float64, len(g.overflow))
		for c, page := range g.overflow {
			p.Overflow[c] = append([]float64(nil), page.data...)
		}
	}
	return p
}

// CellPages calls fn with every cell's main page in cell order — the
// encoder-side iterator that works for both resident and store-backed grid
// files without exposing storage details.
func (g *GridFile) CellPages(fn func(c int, page []float64)) {
	for c := 0; c < g.NumCells(); c++ {
		fn(c, g.cellPage(c))
	}
}

// Mapped reports whether the main pages live behind a PageStore rather
// than in resident memory.
func (g *GridFile) Mapped() bool { return g.store != nil }
