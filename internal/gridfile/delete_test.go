package gridfile

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/workload"
)

func TestDeleteMainPageTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 500, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	victim := append([]float64(nil), tab.Row(123)...)
	before := index.Count(g, index.Point(victim))
	if before < 1 {
		t.Fatal("victim row not present")
	}
	if !g.Delete(victim) {
		t.Fatal("Delete returned false for a present row")
	}
	if g.Len() != 499 || g.Tombstones() != 1 || g.StoredRows() != 500 {
		t.Fatalf("Len=%d Tombstones=%d Stored=%d", g.Len(), g.Tombstones(), g.StoredRows())
	}
	if got := index.Count(g, index.Point(victim)); got != before-1 {
		t.Fatalf("point query after delete: %d, want %d", got, before-1)
	}
	if index.Count(g, index.Full(2)) != 499 {
		t.Fatal("full query still sees the tombstoned row")
	}
	// Deleting a row that never existed fails.
	if g.Delete([]float64{1e18, -1e18}) {
		t.Fatal("Delete invented a row")
	}
}

func TestDeleteDuplicatesOneAtATime(t *testing.T) {
	tab := dataset.NewTable([]string{"a", "b"})
	row := []float64{1, 2}
	for i := 0; i < 3; i++ {
		tab.Append(row)
	}
	tab.Append([]float64{5, 5})
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	for want := 2; want >= 0; want-- {
		if !g.Delete(row) {
			t.Fatalf("delete with %d copies left failed", want+1)
		}
		if got := index.Count(g, index.Point(row)); got != want {
			t.Fatalf("after delete: %d copies, want %d", got, want)
		}
	}
	if g.Delete(row) {
		t.Fatal("deleted a fourth copy of a thrice-inserted row")
	}
}

func TestDeleteFromOverflowPage(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := randomTable(rng, 200, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{0.25, 0.75}
	if err := g.Insert(row); err != nil {
		t.Fatal(err)
	}
	if g.Inserted() != 1 {
		t.Fatal("insert did not land in overflow")
	}
	if !g.Delete(row) {
		t.Fatal("Delete missed the overflow row")
	}
	// Overflow deletes are physical: no tombstone, count restored.
	if g.Tombstones() != 0 || g.Inserted() != 0 || g.Len() != 200 {
		t.Fatalf("Tombstones=%d Inserted=%d Len=%d", g.Tombstones(), g.Inserted(), g.Len())
	}
}

func TestCompactDropsTombstones(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tab := randomTable(rng, 1000, 3)
	g, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: 2, CellsPerDim: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the expected live set while mutating the grid.
	mirror := dataset.NewTable(tab.Cols)
	deleted := map[int]bool{}
	for i := 0; i < 300; i++ {
		deleted[rng.Intn(tab.Len())] = true
	}
	for i := 0; i < tab.Len(); i++ {
		if deleted[i] {
			if !g.Delete(tab.Row(i)) {
				t.Fatalf("delete row %d failed", i)
			}
		} else {
			mirror.Append(tab.Row(i))
		}
	}
	extra := randomTable(rng, 100, 3)
	for i := 0; i < extra.Len(); i++ {
		if err := g.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
		mirror.Append(extra.Row(i))
	}

	check := func(stage string) {
		t.Helper()
		oracle := scan.New(mirror)
		for q := 0; q < 50; q++ {
			r := workload.RandRect(rng, mirror)
			if got, want := index.Count(g, r), index.Count(oracle, r); got != want {
				t.Fatalf("%s: rect %d: got %d rows, oracle %d", stage, q, got, want)
			}
		}
		if g.Len() != mirror.Len() {
			t.Fatalf("%s: Len=%d, mirror=%d", stage, g.Len(), mirror.Len())
		}
	}
	check("before compact")
	g.Compact()
	if g.Tombstones() != 0 || g.Inserted() != 0 || g.StoredRows() != mirror.Len() {
		t.Fatalf("after compact: Tombstones=%d Inserted=%d Stored=%d want stored %d",
			g.Tombstones(), g.Inserted(), g.StoredRows(), mirror.Len())
	}
	check("after compact")
}

func TestDeadSlotsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tab := randomTable(rng, 400, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		g.Delete(tab.Row(rng.Intn(tab.Len())))
	}
	slots := g.DeadSlots()
	if len(slots) != g.Tombstones() {
		t.Fatalf("%d slots, %d tombstones", len(slots), g.Tombstones())
	}
	for i := 1; i < len(slots); i++ {
		if slots[i] <= slots[i-1] {
			t.Fatal("DeadSlots not strictly ascending")
		}
	}

	// Rebuild an identical grid and install the slots: queries must agree.
	g2, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SetDeadSlots(slots); err != nil {
		t.Fatal(err)
	}
	if g2.Len() != g.Len() || g2.Tombstones() != g.Tombstones() {
		t.Fatalf("restored Len=%d Tombstones=%d, want %d/%d", g2.Len(), g2.Tombstones(), g.Len(), g.Tombstones())
	}
	for q := 0; q < 30; q++ {
		r := workload.RandRect(rng, tab)
		if index.Count(g, r) != index.Count(g2, r) {
			t.Fatal("restored tombstones answer differently")
		}
	}

	// Bad slot lists are rejected.
	if err := g2.SetDeadSlots([]int64{-1}); err == nil {
		t.Fatal("negative slot accepted")
	}
	if err := g2.SetDeadSlots([]int64{int64(tab.Len())}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
	if err := g2.SetDeadSlots([]int64{3, 3}); err == nil {
		t.Fatal("duplicate slot accepted")
	}
}
