package gridfile

import (
	"fmt"
	"sort"

	"github.com/coax-index/coax/internal/stats"
)

// Streamer builds a grid file one row at a time against pre-computed cell
// boundaries (typically quantile estimates from a sample), so ingestion
// never holds a second full copy of the data: rows accumulate in arrival
// order in what becomes the grid file's own page storage, and Finish
// groups them by cell with an in-place American-flag permutation, looking
// cell ordinals up on the fly instead of materializing a tag array. Peak
// memory beyond the finished index is the per-cell cursor bookkeeping plus
// append slack when no capacity hint was given — O(cells + chunk), never
// O(rows).
type Streamer struct {
	g   *GridFile
	n   int
	tmp []float64
}

// NewStreamer prepares a streaming build of a dims-column grid file.
// bounds supplies the grid lines: one ascending slice of CellsPerDim+1
// boundaries per entry of cfg.GridDims. capacityRows ≥ 0 preallocates
// storage for that many rows.
func NewStreamer(dims int, cfg Config, bounds [][]float64, capacityRows int) (*Streamer, error) {
	if cfg.CellsPerDim < 1 {
		return nil, fmt.Errorf("gridfile: CellsPerDim must be ≥ 1, got %d", cfg.CellsPerDim)
	}
	if dims < 1 {
		return nil, fmt.Errorf("gridfile: dims must be ≥ 1, got %d", dims)
	}
	seen := make(map[int]bool, len(cfg.GridDims))
	for _, d := range cfg.GridDims {
		if d < 0 || d >= dims {
			return nil, fmt.Errorf("gridfile: grid dimension %d out of range [0,%d)", d, dims)
		}
		if seen[d] {
			return nil, fmt.Errorf("gridfile: grid dimension %d listed twice", d)
		}
		seen[d] = true
	}
	if cfg.SortDim >= dims {
		return nil, fmt.Errorf("gridfile: sort dimension %d out of range [0,%d)", cfg.SortDim, dims)
	}
	if cfg.SortDim >= 0 && seen[cfg.SortDim] {
		return nil, fmt.Errorf("gridfile: sort dimension %d must not also be a grid dimension", cfg.SortDim)
	}
	if len(bounds) != len(cfg.GridDims) {
		return nil, fmt.Errorf("gridfile: %d boundary slices for %d grid dimensions", len(bounds), len(cfg.GridDims))
	}

	g := &GridFile{cfg: cfg, dims: dims}
	g.bounds = make([][]float64, len(bounds))
	for i, b := range bounds {
		if len(b) != cfg.CellsPerDim+1 {
			return nil, fmt.Errorf("gridfile: boundary slice %d has %d values, want %d", i, len(b), cfg.CellsPerDim+1)
		}
		if !sort.Float64sAreSorted(b) {
			return nil, fmt.Errorf("gridfile: boundary slice %d is not ascending", i)
		}
		g.bounds[i] = append([]float64(nil), b...)
	}

	nCells := 1
	g.strides = make([]int, len(cfg.GridDims))
	for i := len(cfg.GridDims) - 1; i >= 0; i-- {
		g.strides[i] = nCells
		nCells *= cfg.CellsPerDim
	}

	s := &Streamer{g: g, tmp: make([]float64, dims)}
	if capacityRows > 0 {
		g.data = make([]float64, 0, capacityRows*dims)
	}
	return s, nil
}

// Add appends one row (copied) to the build.
func (s *Streamer) Add(row []float64) {
	if len(row) != s.g.dims {
		panic(fmt.Sprintf("gridfile: row has %d values, streamer has %d dims", len(row), s.g.dims))
	}
	s.g.data = append(s.g.data, row...)
	s.n++
}

// Rows reports how many rows have been added.
func (s *Streamer) Rows() int { return s.n }

// Finish groups the buffered rows by cell in place, sorts each cell page on
// the sort dimension, and returns the completed grid file. The Streamer
// must not be used afterwards.
func (s *Streamer) Finish() (*GridFile, error) {
	g := s.g
	if s.n == 0 {
		return nil, fmt.Errorf("gridfile: cannot build over an empty table")
	}
	g.n = s.n

	nCells := 1
	for range g.cfg.GridDims {
		nCells *= g.cfg.CellsPerDim
	}
	dims := int64(g.dims)
	rowAt := func(i int64) []float64 { return g.data[i*dims : (i+1)*dims] }

	counts := make([]int64, nCells)
	for i := int64(0); i < int64(s.n); i++ {
		counts[g.cellOf(rowAt(i))]++
	}
	g.offsets = make([]int64, nCells+1)
	for c := 0; c < nCells; c++ {
		g.offsets[c+1] = g.offsets[c] + counts[c]
	}

	// In-place American-flag permutation: walk each cell's region and swap
	// misplaced rows directly into their home cell's cursor. Regions before
	// the current one are already complete, so every examined row belongs
	// at or after it; each swap settles one row, making the pass O(n) row
	// moves with no tag array — cell ordinals are recomputed from the row
	// itself.
	cursor := make([]int64, nCells)
	copy(cursor, g.offsets[:nCells])
	for c := 0; c < nCells; c++ {
		for i := cursor[c]; i < g.offsets[c+1]; {
			ri := rowAt(i)
			t := g.cellOf(ri)
			if t == c {
				i++
				cursor[c] = i
				continue
			}
			rj := rowAt(cursor[t])
			copy(s.tmp, ri)
			copy(ri, rj)
			copy(rj, s.tmp)
			cursor[t]++
		}
	}

	if g.cfg.SortDim >= 0 {
		for c := 0; c < nCells; c++ {
			g.sortCell(c)
		}
	}
	return g, nil
}

// SampleBounds derives streaming grid boundaries from sampled column
// values: quantile or uniform placement over the sample, matching the
// boundary rule Build applies to the full data.
func SampleBounds(sampleCol []float64, cfg Config) ([]float64, error) {
	if len(sampleCol) == 0 {
		return nil, fmt.Errorf("gridfile: no sample values to place boundaries on")
	}
	switch cfg.Mode {
	case Quantile:
		return stats.Quantiles(sampleCol, cfg.CellsPerDim), nil
	case Uniform:
		return uniformBounds(sampleCol, cfg.CellsPerDim), nil
	default:
		return nil, fmt.Errorf("gridfile: unknown bounds mode %d", cfg.Mode)
	}
}
