// Package gridfile implements the modified Grid File of the paper's §6: an
// in-memory multidimensional grid whose cell boundaries are placed on
// per-dimension quantiles (or uniformly, for the full-grid baseline), whose
// cells store their rows in contiguous row-store pages, and which may keep
// the rows inside every cell sorted on one additional dimension so that
// dimension needs no grid lines (Flood-style, reducing an n-dimensional
// index to n−1 grid dimensions).
package gridfile

import (
	"fmt"
	"sort"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/stats"
)

// BoundsMode selects how grid lines are placed along each grid dimension.
type BoundsMode int

const (
	// Quantile places boundaries on equal-count quantiles of the data
	// (the paper's choice for COAX and Column Files).
	Quantile BoundsMode = iota
	// Uniform places boundaries at equal spacing between min and max
	// (the full-grid baseline).
	Uniform
)

// Config controls a grid file build.
type Config struct {
	// GridDims lists the columns that receive grid lines. May be empty, in
	// which case the structure degenerates to a single (optionally sorted)
	// page.
	GridDims []int
	// SortDim is the column on which rows are sorted inside each cell, or
	// -1 to disable in-cell sorting. Must not also appear in GridDims.
	SortDim int
	// CellsPerDim is the number of cells along every grid dimension (the
	// paper uses the same number of grid lines for each attribute).
	CellsPerDim int
	// Mode selects quantile or uniform boundary placement.
	Mode BoundsMode
	// Label overrides the Name() reported to the benchmark harness.
	Label string
}

// GridFile is the built index. It copies rows out of the source table into
// per-cell contiguous pages; the source table is not retained.
type GridFile struct {
	cfg     Config
	dims    int
	n       int
	bounds  [][]float64 // per grid dim: CellsPerDim+1 ascending boundaries
	strides []int       // row-major strides over the cell lattice
	data    []float64   // all rows, grouped by cell, row-major
	offsets []int64     // per cell: starting row within data; len = cells+1

	// store, when non-nil, supplies main-page rows instead of data — the
	// hook a memory-mapped snapshot uses to decompress cell pages lazily
	// (see internal/mmapsnap). All read paths go through cellPage, so a
	// store-backed grid file answers queries identically to a resident one.
	store PageStore

	// Insert support (see insert.go): per-cell delta pages merged back by
	// Compact.
	overflow map[int]*overflowPage
	inserted int

	// Delete support (see insert.go): a tombstone bitmap over the main
	// pages' row slots. Queries skip dead slots at the visitor boundary;
	// Compact physically drops them. Overflow-page rows are removed in
	// place instead (the pages are small and mutable), so the bitmap only
	// ever covers len(data)/dims slots.
	dead      []uint64
	deadCount int
}

var _ index.Interface = (*GridFile)(nil)

// Build constructs a grid file over every row of t.
func Build(t *dataset.Table, cfg Config) (*GridFile, error) {
	if err := validate(t, cfg); err != nil {
		return nil, err
	}
	g := &GridFile{cfg: cfg, dims: t.Dims(), n: t.Len()}

	g.bounds = make([][]float64, len(cfg.GridDims))
	for i, d := range cfg.GridDims {
		col := t.Column(d)
		switch cfg.Mode {
		case Quantile:
			g.bounds[i] = stats.Quantiles(col, cfg.CellsPerDim)
		case Uniform:
			g.bounds[i] = uniformBounds(col, cfg.CellsPerDim)
		default:
			return nil, fmt.Errorf("gridfile: unknown bounds mode %d", cfg.Mode)
		}
	}

	nCells := 1
	g.strides = make([]int, len(cfg.GridDims))
	for i := len(cfg.GridDims) - 1; i >= 0; i-- {
		g.strides[i] = nCells
		nCells *= cfg.CellsPerDim
	}

	// Pass 1: count rows per cell.
	counts := make([]int64, nCells)
	for i := 0; i < t.Len(); i++ {
		counts[g.cellOf(t.Row(i))]++
	}
	g.offsets = make([]int64, nCells+1)
	for c := 0; c < nCells; c++ {
		g.offsets[c+1] = g.offsets[c] + counts[c]
	}

	// Pass 2: scatter rows into their cell pages.
	g.data = make([]float64, t.Len()*g.dims)
	cursor := make([]int64, nCells)
	copy(cursor, g.offsets[:nCells])
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		c := g.cellOf(row)
		copy(g.data[cursor[c]*int64(g.dims):], row)
		cursor[c]++
	}

	// Pass 3: sort each cell page on the sort dimension.
	if cfg.SortDim >= 0 {
		for c := 0; c < nCells; c++ {
			g.sortCell(c)
		}
	}
	return g, nil
}

func validate(t *dataset.Table, cfg Config) error {
	if cfg.CellsPerDim < 1 {
		return fmt.Errorf("gridfile: CellsPerDim must be ≥ 1, got %d", cfg.CellsPerDim)
	}
	if t.Len() == 0 {
		return fmt.Errorf("gridfile: cannot build over an empty table")
	}
	seen := make(map[int]bool, len(cfg.GridDims))
	for _, d := range cfg.GridDims {
		if d < 0 || d >= t.Dims() {
			return fmt.Errorf("gridfile: grid dimension %d out of range [0,%d)", d, t.Dims())
		}
		if seen[d] {
			return fmt.Errorf("gridfile: grid dimension %d listed twice", d)
		}
		seen[d] = true
	}
	if cfg.SortDim >= t.Dims() {
		return fmt.Errorf("gridfile: sort dimension %d out of range [0,%d)", cfg.SortDim, t.Dims())
	}
	if cfg.SortDim >= 0 && seen[cfg.SortDim] {
		return fmt.Errorf("gridfile: sort dimension %d must not also be a grid dimension", cfg.SortDim)
	}
	return nil
}

// DirectoryBoundedCells returns the largest cells-per-dim (capped at 64)
// such that a gridDims-dimensional directory of 8-byte slots does not
// exceed dataBytes — the paper's §8.2.1 rule that an index directory must
// not outweigh the data it indexes.
func DirectoryBoundedCells(gridDims int, dataBytes int64) int {
	if gridDims <= 0 {
		return 1
	}
	best := 1
	for c := 2; c <= 64; c++ {
		slots := int64(1)
		overflow := false
		for d := 0; d < gridDims; d++ {
			slots *= int64(c)
			if slots*8 > dataBytes {
				overflow = true
				break
			}
		}
		if overflow {
			break
		}
		best = c
	}
	return best
}

func uniformBounds(col []float64, cells int) []float64 {
	min, max := stats.MinMax(col)
	out := make([]float64, cells+1)
	for i := 0; i <= cells; i++ {
		out[i] = min + (max-min)*float64(i)/float64(cells)
	}
	return out
}

// locate maps a value to its cell slot along grid axis i: the largest slot
// whose lower boundary does not exceed v, clamped to the valid range. Build
// and query use the same function, so assignment is consistent.
func (g *GridFile) locate(i int, v float64) int {
	b := g.bounds[i]
	// First boundary index with b[idx] > v; the cell is the one before it.
	idx := sort.Search(len(b), func(j int) bool { return b[j] > v }) - 1
	if idx < 0 {
		idx = 0
	}
	if idx > g.cfg.CellsPerDim-1 {
		idx = g.cfg.CellsPerDim - 1
	}
	return idx
}

func (g *GridFile) cellOf(row []float64) int {
	c := 0
	for i, d := range g.cfg.GridDims {
		c += g.locate(i, row[d]) * g.strides[i]
	}
	return c
}

type cellSorter struct {
	data []float64
	dims int
	key  int
	tmp  []float64
}

func (s *cellSorter) Len() int { return len(s.data) / s.dims }
func (s *cellSorter) Less(i, j int) bool {
	return s.data[i*s.dims+s.key] < s.data[j*s.dims+s.key]
}
func (s *cellSorter) Swap(i, j int) {
	a := s.data[i*s.dims : (i+1)*s.dims]
	b := s.data[j*s.dims : (j+1)*s.dims]
	copy(s.tmp, a)
	copy(a, b)
	copy(b, s.tmp)
}

func (g *GridFile) sortCell(c int) {
	page := g.cellPage(c)
	if len(page) == 0 {
		return
	}
	sort.Sort(&cellSorter{data: page, dims: g.dims, key: g.cfg.SortDim, tmp: make([]float64, g.dims)})
}

func (g *GridFile) cellPage(c int) []float64 {
	if g.store != nil {
		return g.store.CellPage(c)
	}
	return g.data[g.offsets[c]*int64(g.dims) : g.offsets[c+1]*int64(g.dims)]
}

// mainRows reports the number of row slots in the main pages (live and
// tombstoned), derived from the offset table so it holds for both resident
// and store-backed grid files.
func (g *GridFile) mainRows() int { return int(g.offsets[len(g.offsets)-1]) }

// Name implements index.Interface.
func (g *GridFile) Name() string {
	if g.cfg.Label != "" {
		return g.cfg.Label
	}
	return "GridFile"
}

// Len implements index.Interface: the number of live (non-tombstoned)
// rows a query can match.
func (g *GridFile) Len() int { return g.n - g.deadCount }

// StoredRows reports the number of rows physically held in pages,
// including tombstoned ones awaiting Compact.
func (g *GridFile) StoredRows() int { return g.n }

// Tombstones reports the number of dead rows still occupying main pages.
func (g *GridFile) Tombstones() int { return g.deadCount }

// Dims implements index.Interface.
func (g *GridFile) Dims() int { return g.dims }

// NumCells reports the total number of cells in the lattice.
func (g *GridFile) NumCells() int { return len(g.offsets) - 1 }

// GridDims returns a copy of the columns that receive grid lines.
func (g *GridFile) GridDims() []int {
	out := make([]int, len(g.cfg.GridDims))
	copy(out, g.cfg.GridDims)
	return out
}

// SortDim reports the in-cell sort dimension, or -1 when disabled.
func (g *GridFile) SortDim() int { return g.cfg.SortDim }

// CellSizes returns the row count of every cell (main plus overflow) — the
// "page length" distribution of Figure 4a.
func (g *GridFile) CellSizes() []int {
	out := make([]int, g.NumCells())
	for c := range out {
		out[c] = int(g.offsets[c+1] - g.offsets[c])
		if page := g.overflow[c]; page != nil {
			out[c] += len(page.data) / g.dims
		}
	}
	return out
}

// MemoryOverhead implements index.Interface: the directory only — grid
// boundaries plus the per-cell offset table — excluding the row payload.
func (g *GridFile) MemoryOverhead() int64 {
	var b int64
	for _, bd := range g.bounds {
		b += int64(len(bd) * 8)
	}
	b += int64(len(g.offsets) * 8)
	b += int64(len(g.strides) * 8)
	// Each live overflow page costs a map slot and a slice header; the row
	// payload inside it is data, not directory.
	b += int64(len(g.overflow)) * 48
	b += int64(len(g.dead) * 8) // tombstone bitmap
	return b
}

// Query implements index.Interface: the legacy run-to-completion shim over
// Scan.
func (g *GridFile) Query(r index.Rect, visit index.Visitor) {
	g.Scan(r, index.AsYield(visit), nil)
}

// Scan implements index.Interface. It intersects the rectangle with the
// cell lattice, visits only overlapping cells, uses binary search on the
// in-cell sort dimension when that dimension is constrained, and checks
// every candidate row against the full rectangle. The scan stops — skipping
// every remaining page — as soon as yield returns false.
func (g *GridFile) Scan(r index.Rect, yield index.Yield, probe *index.Probe) bool {
	if r.Empty() {
		return true
	}
	nd := len(g.cfg.GridDims)
	lo := make([]int, nd)
	hi := make([]int, nd)
	for i, d := range g.cfg.GridDims {
		lo[i] = g.locate(i, r.Min[d])
		hi[i] = g.locate(i, r.Max[d])
	}

	// Odometer over the cell sub-lattice [lo, hi].
	idx := make([]int, nd)
	copy(idx, lo)
	for {
		if probe.Aborted() {
			return false // cancelled: stop even if no cell ever matches
		}
		c := 0
		for i := range idx {
			c += idx[i] * g.strides[i]
		}
		if !g.scanCell(c, r, yield, probe) {
			return false
		}
		if g.inserted > 0 {
			if !g.scanOverflow(c, r, yield, probe) {
				return false
			}
		}

		i := nd - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] <= hi[i] {
				break
			}
			idx[i] = lo[i]
		}
		if i < 0 {
			return true
		}
	}
}

// sortSpan returns the row interval [lo, hi) of a page that can hold
// values in [min, max] on the sort dimension — the whole page when in-cell
// sorting is disabled. Every page walk (query and delete, main and
// overflow) locates its candidates through this one helper.
func (g *GridFile) sortSpan(page []float64, min, max float64) (lo, hi int) {
	nRows := len(page) / g.dims
	sd := g.cfg.SortDim
	if sd < 0 {
		return 0, nRows
	}
	lo = sort.Search(nRows, func(i int) bool { return page[i*g.dims+sd] >= min })
	hi = sort.Search(nRows, func(i int) bool { return page[i*g.dims+sd] > max })
	return lo, hi
}

// querySpan is sortSpan over a query rectangle's sort-dimension window.
func (g *GridFile) querySpan(page []float64, r index.Rect) (lo, hi int) {
	if sd := g.cfg.SortDim; sd >= 0 {
		return g.sortSpan(page, r.Min[sd], r.Max[sd])
	}
	return g.sortSpan(page, 0, 0)
}

// rowSpan is sortSpan pinned to one row's sort-dimension value — the
// candidate window an exact-match delete scans.
func (g *GridFile) rowSpan(page []float64, row []float64) (lo, hi int) {
	if sd := g.cfg.SortDim; sd >= 0 {
		return g.sortSpan(page, row[sd], row[sd])
	}
	return g.sortSpan(page, 0, 0)
}

func (g *GridFile) scanCell(c int, r index.Rect, yield index.Yield, probe *index.Probe) bool {
	page := g.cellPage(c)
	if len(page) == 0 {
		return true
	}
	dims := g.dims
	lo, hi := g.querySpan(page, r)
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(hi - lo)
	}
	base := int(g.offsets[c]) // global slot of the page's first row
	for i := lo; i < hi; i++ {
		if g.deadCount > 0 && g.isDead(base+i) {
			if probe != nil {
				probe.Tombstones++
			}
			continue // tombstoned: filtered at the visitor boundary
		}
		row := page[i*dims : (i+1)*dims]
		if r.Contains(row) {
			if probe != nil {
				probe.Matched++
			}
			if !yield(row) {
				return false
			}
		}
	}
	return true
}
