package gridfile

import (
	"math/bits"

	"github.com/coax-index/coax/internal/index"
)

// Batch-at-a-time scanning (the vectorized sibling of Scan in gridfile.go).
// The cell walk is identical — same odometer over the rectangle's cell
// sub-lattice, same binary-searched sort-dimension span per page, same
// probe counter semantics — but instead of yielding rows one at a time
// through an interface call, each span is cut into windows of at most
// index.BatchRows rows whose selection bitmap is computed by per-column
// range loops and masked against the tombstone bitmap before the batch is
// handed to the caller.

// BatchKernel implements index.Kernel.
func (g *GridFile) BatchKernel() string { return "grid-batch" }

var _ index.ScanBatcher = (*GridFile)(nil)

// batchScratch is the per-call scratch of one ScanBatch: the selection
// words and the tombstone window. Allocated once per scan (two 128-byte
// slices), never shared — the grid file stays safe for concurrent readers.
type batchScratch struct {
	sel  []uint64
	dead []uint64
}

// ScanBatch implements index.ScanBatcher. It visits exactly the rows
// Scan(r, ...) yields and accumulates identical probe counters (pages,
// rows scanned, matches, tombstones), plus one Probe.Batches increment per
// batch handed to yield. The scan stops — skipping every remaining page —
// as soon as yield returns false or the probe's abort hook fires.
func (g *GridFile) ScanBatch(r index.Rect, yield index.BatchYield, probe *index.Probe) bool {
	if r.Empty() {
		return true
	}
	scratch := &batchScratch{sel: make([]uint64, index.BatchWords(index.BatchRows))}
	if g.deadCount > 0 {
		scratch.dead = make([]uint64, index.BatchWords(index.BatchRows))
	}

	nd := len(g.cfg.GridDims)
	lo := make([]int, nd)
	hi := make([]int, nd)
	for i, d := range g.cfg.GridDims {
		lo[i] = g.locate(i, r.Min[d])
		hi[i] = g.locate(i, r.Max[d])
	}

	// Odometer over the cell sub-lattice [lo, hi] — the same walk as Scan.
	idx := make([]int, nd)
	copy(idx, lo)
	for {
		if probe.Aborted() {
			return false // cancelled: stop even if no cell ever matches
		}
		c := 0
		for i := range idx {
			c += idx[i] * g.strides[i]
		}
		if !g.batchCell(c, r, yield, probe, scratch) {
			return false
		}
		if g.inserted > 0 {
			if !g.batchOverflow(c, r, yield, probe, scratch) {
				return false
			}
		}

		i := nd - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] <= hi[i] {
				break
			}
			idx[i] = lo[i]
		}
		if i < 0 {
			return true
		}
	}
}

// batchCell is scanCell's batch counterpart: the same span and the same
// counters, with selection and tombstone filtering done word-wise.
func (g *GridFile) batchCell(c int, r index.Rect, yield index.BatchYield, probe *index.Probe, scratch *batchScratch) bool {
	page := g.cellPage(c)
	if len(page) == 0 {
		return true
	}
	dims := g.dims
	lo, hi := g.querySpan(page, r)
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(hi - lo)
	}
	base := int(g.offsets[c]) // global slot of the page's first row
	for s := lo; s < hi; s += index.BatchRows {
		n := hi - s
		if n > index.BatchRows {
			n = index.BatchRows
		}
		words := index.BatchWords(n)
		b := index.Batch{
			Page: page[s*dims : (s+n)*dims],
			Dims: dims,
			Rows: n,
			Sel:  scratch.sel[:words],
		}
		index.SelectRect(b.Page, dims, n, r, b.Sel)
		if g.deadCount > 0 {
			// The row path counts every tombstone in the span — matching or
			// not — before the rectangle check, so count the whole window's
			// dead bits, then clear them from the selection.
			dead := g.deadWindow(base+s, n, scratch.dead[:words])
			if probe != nil {
				probe.Tombstones += int64(dead)
			}
			if dead > 0 {
				for w := range b.Sel {
					b.Sel[w] &^= scratch.dead[w]
				}
			}
		}
		if probe != nil {
			probe.Matched += int64(b.Selected())
			probe.Batches++
		}
		if !yield(&b) {
			return false
		}
	}
	return true
}

// batchOverflow is scanOverflow's batch counterpart. Overflow pages hold
// no tombstones (deletes there are in-place), so no masking is needed.
func (g *GridFile) batchOverflow(c int, r index.Rect, yield index.BatchYield, probe *index.Probe, scratch *batchScratch) bool {
	page := g.overflow[c]
	if page == nil || len(page.data) == 0 {
		return true
	}
	dims := g.dims
	lo, hi := g.querySpan(page.data, r)
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(hi - lo)
	}
	for s := lo; s < hi; s += index.BatchRows {
		n := hi - s
		if n > index.BatchRows {
			n = index.BatchRows
		}
		b := index.Batch{
			Page: page.data[s*dims : (s+n)*dims],
			Dims: dims,
			Rows: n,
			Sel:  scratch.sel[:index.BatchWords(n)],
		}
		index.SelectRect(b.Page, dims, n, r, b.Sel)
		if probe != nil {
			probe.Matched += int64(b.Selected())
			probe.Batches++
		}
		if !yield(&b) {
			return false
		}
	}
	return true
}

// deadWindow extracts n bits of the tombstone bitmap starting at global
// slot start into out (one word per 64 slots, tail bits zeroed) and
// returns the number of set bits. The bitmap may be shorter than the slot
// range — missing words read as zero, exactly as isDead treats them.
func (g *GridFile) deadWindow(start, n int, out []uint64) int {
	base := start >> 6
	off := uint(start) & 63
	count := 0
	for w := range out {
		var word uint64
		k := base + w
		if k < len(g.dead) {
			word = g.dead[k] >> off
			if off != 0 && k+1 < len(g.dead) {
				word |= g.dead[k+1] << (64 - off)
			}
		}
		rem := n - w<<6
		if rem < 64 {
			word &= 1<<uint(rem) - 1
		}
		out[w] = word
		count += bits.OnesCount64(word)
	}
	return count
}
