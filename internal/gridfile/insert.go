package gridfile

import (
	"fmt"
	"sort"

	"github.com/coax-index/coax/internal/index"
)

// Insert support. The paper leaves updates as future work (§9) but sketches
// the mechanism in §5: the bucketed training grid can absorb new samples,
// and the static layout needs a delta area. We implement the classic
// main/delta design: every cell owns a small overflow page that absorbs
// inserts (kept sorted on the sort dimension so lookups stay logarithmic),
// and Compact merges all overflow pages back into the contiguous main
// storage.

// overflow pages are lazily allocated per cell.
type overflowPage struct {
	data []float64 // row-major, sorted by the sort dimension when enabled
}

// Insert adds one row (copied) to the grid file, placing it in its cell's
// overflow page. Queries see the row immediately. Amortised cost is the
// binary search plus a memmove within one overflow page; call Compact once
// a batch of inserts has landed to restore fully contiguous cells.
func (g *GridFile) Insert(row []float64) error {
	if len(row) != g.dims {
		return fmt.Errorf("gridfile: row has %d values, index has %d dims", len(row), g.dims)
	}
	if g.overflow == nil {
		g.overflow = make(map[int]*overflowPage)
	}
	c := g.cellOf(row)
	page := g.overflow[c]
	if page == nil {
		page = &overflowPage{}
		g.overflow[c] = page
	}

	if sd := g.cfg.SortDim; sd >= 0 {
		// Insert in sort-dimension order.
		nRows := len(page.data) / g.dims
		pos := sort.Search(nRows, func(i int) bool {
			return page.data[i*g.dims+sd] >= row[sd]
		})
		page.data = append(page.data, make([]float64, g.dims)...)
		copy(page.data[(pos+1)*g.dims:], page.data[pos*g.dims:len(page.data)-g.dims])
		copy(page.data[pos*g.dims:(pos+1)*g.dims], row)
	} else {
		page.data = append(page.data, row...)
	}
	g.n++
	g.inserted++
	return nil
}

// Inserted reports how many rows live in overflow pages since the last
// Compact.
func (g *GridFile) Inserted() int { return g.inserted }

// Compact merges every overflow page into the main contiguous storage,
// re-sorting affected cells, and drops the overflow map. After Compact the
// grid file is byte-for-byte equivalent to one built over the combined
// data (with the original grid boundaries — boundaries are not recomputed,
// so heavily drifted data distributions may warrant a full rebuild).
func (g *GridFile) Compact() {
	if g.inserted == 0 {
		return
	}
	nCells := g.NumCells()
	newData := make([]float64, 0, g.n*g.dims)
	newOffsets := make([]int64, nCells+1)
	for c := 0; c < nCells; c++ {
		newOffsets[c] = int64(len(newData) / g.dims)
		newData = append(newData, g.cellPage(c)...)
		if page := g.overflow[c]; page != nil {
			newData = append(newData, page.data...)
		}
	}
	newOffsets[nCells] = int64(len(newData) / g.dims)
	g.data = newData
	g.offsets = newOffsets
	g.overflow = nil
	g.inserted = 0
	if g.cfg.SortDim >= 0 {
		for c := 0; c < nCells; c++ {
			g.sortCell(c)
		}
	}
}

// scanOverflow visits matching rows of one cell's overflow page, using the
// same binary-search entry point as the main page.
func (g *GridFile) scanOverflow(c int, r index.Rect, visit index.Visitor) {
	page := g.overflow[c]
	if page == nil || len(page.data) == 0 {
		return
	}
	dims := g.dims
	nRows := len(page.data) / dims
	lo, hi := 0, nRows
	if sd := g.cfg.SortDim; sd >= 0 {
		lo = sort.Search(nRows, func(i int) bool { return page.data[i*dims+sd] >= r.Min[sd] })
		hi = sort.Search(nRows, func(i int) bool { return page.data[i*dims+sd] > r.Max[sd] })
	}
	for i := lo; i < hi; i++ {
		row := page.data[i*dims : (i+1)*dims]
		if r.Contains(row) {
			visit(row)
		}
	}
}
