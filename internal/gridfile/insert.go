package gridfile

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
)

// Mutation support. The paper leaves updates as future work (§9) but
// sketches the mechanism in §5: the bucketed training grid can absorb new
// samples, and the static layout needs a delta area. We implement the
// classic main/delta design plus tombstones: every cell owns a small
// overflow page that absorbs inserts (kept sorted on the sort dimension so
// lookups stay logarithmic); deletes in the contiguous main pages set a bit
// in a tombstone bitmap that the query path skips, while deletes in an
// overflow page remove the row in place; Compact merges all overflow pages
// back into contiguous storage and drops the tombstoned rows.

// overflow pages are lazily allocated per cell.
type overflowPage struct {
	data []float64 // row-major, sorted by the sort dimension when enabled
}

// Insert adds one row (copied) to the grid file, placing it in its cell's
// overflow page. Queries see the row immediately. Amortised cost is the
// binary search plus a memmove within one overflow page; call Compact once
// a batch of inserts has landed to restore fully contiguous cells.
func (g *GridFile) Insert(row []float64) error {
	if len(row) != g.dims {
		return fmt.Errorf("gridfile: row has %d values, index has %d dims", len(row), g.dims)
	}
	if g.overflow == nil {
		g.overflow = make(map[int]*overflowPage)
	}
	c := g.cellOf(row)
	page := g.overflow[c]
	if page == nil {
		page = &overflowPage{}
		g.overflow[c] = page
	}

	if sd := g.cfg.SortDim; sd >= 0 {
		// Insert in sort-dimension order.
		nRows := len(page.data) / g.dims
		pos := sort.Search(nRows, func(i int) bool {
			return page.data[i*g.dims+sd] >= row[sd]
		})
		page.data = append(page.data, make([]float64, g.dims)...)
		copy(page.data[(pos+1)*g.dims:], page.data[pos*g.dims:len(page.data)-g.dims])
		copy(page.data[pos*g.dims:(pos+1)*g.dims], row)
	} else {
		page.data = append(page.data, row...)
	}
	g.n++
	g.inserted++
	return nil
}

// Inserted reports how many rows live in overflow pages since the last
// Compact.
func (g *GridFile) Inserted() int { return g.inserted }

// Delete removes one live row exactly equal to row (all dimensions compared
// bit-for-bit) and reports whether one was found. A main-page match is
// tombstoned — the page stays contiguous and the bitmap filters it out of
// every query until Compact drops it; an overflow-page match is removed in
// place. With duplicate rows exactly one is removed per call.
func (g *GridFile) Delete(row []float64) bool {
	if len(row) != g.dims {
		return false
	}
	c := g.cellOf(row)
	if g.deleteMain(c, row) {
		return true
	}
	return g.deleteOverflow(c, row)
}

// deleteMain tombstones the first live exact match in cell c's main page.
func (g *GridFile) deleteMain(c int, row []float64) bool {
	page := g.cellPage(c)
	dims := g.dims
	lo, hi := g.rowSpan(page, row)
	base := int(g.offsets[c])
	for i := lo; i < hi; i++ {
		if g.deadCount > 0 && g.isDead(base+i) {
			continue
		}
		if lifecycle.RowsEqual(page[i*dims:(i+1)*dims], row) {
			g.setDead(base + i)
			return true
		}
	}
	return false
}

// deleteOverflow removes the first exact match from cell c's overflow page.
func (g *GridFile) deleteOverflow(c int, row []float64) bool {
	page := g.overflow[c]
	if page == nil {
		return false
	}
	dims := g.dims
	lo, hi := g.rowSpan(page.data, row)
	for i := lo; i < hi; i++ {
		if lifecycle.RowsEqual(page.data[i*dims:(i+1)*dims], row) {
			copy(page.data[i*dims:], page.data[(i+1)*dims:])
			page.data = page.data[:len(page.data)-dims]
			if len(page.data) == 0 {
				delete(g.overflow, c)
			}
			g.n--
			g.inserted--
			return true
		}
	}
	return false
}

// --- tombstone bitmap ---

func (g *GridFile) isDead(slot int) bool {
	w := slot >> 6
	if w >= len(g.dead) {
		return false
	}
	return g.dead[w]&(1<<(uint(slot)&63)) != 0
}

func (g *GridFile) setDead(slot int) {
	w := slot >> 6
	if w >= len(g.dead) {
		grown := make([]uint64, (g.mainRows()+63)/64)
		copy(grown, g.dead)
		g.dead = grown
	}
	if g.dead[w]&(1<<(uint(slot)&63)) == 0 {
		g.dead[w] |= 1 << (uint(slot) & 63)
		g.deadCount++
	}
}

// DeadSlots returns the tombstoned main-page row slots in ascending order;
// the snapshot codec persists them so a loaded index resumes mid-lifecycle.
func (g *GridFile) DeadSlots() []int64 {
	if g.deadCount == 0 {
		return nil
	}
	out := make([]int64, 0, g.deadCount)
	for w, word := range g.dead {
		for word != 0 {
			out = append(out, int64(w*64+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return out
}

// SetDeadSlots installs a tombstone set (typically decoded from a
// snapshot). Slots must be unique and within the main pages.
func (g *GridFile) SetDeadSlots(slots []int64) error {
	mainRows := g.mainRows()
	g.dead = nil
	g.deadCount = 0
	for _, s := range slots {
		if s < 0 || s >= int64(mainRows) {
			return fmt.Errorf("gridfile: tombstone slot %d out of range [0,%d)", s, mainRows)
		}
		if g.isDead(int(s)) {
			return fmt.Errorf("gridfile: tombstone slot %d listed twice", s)
		}
		g.setDead(int(s))
	}
	return nil
}

// Compact merges every overflow page into the main contiguous storage,
// drops tombstoned rows, re-sorts affected cells, and clears the overflow
// map and tombstone bitmap. After Compact the grid file is byte-for-byte
// equivalent to one built over the live data (with the original grid
// boundaries — boundaries are not recomputed, so heavily drifted data
// distributions warrant a full rebuild instead; see internal/lifecycle).
func (g *GridFile) Compact() {
	if g.inserted == 0 && g.deadCount == 0 {
		return
	}
	nCells := g.NumCells()
	live := g.Len()
	newData := make([]float64, 0, live*g.dims)
	newOffsets := make([]int64, nCells+1)
	for c := 0; c < nCells; c++ {
		newOffsets[c] = int64(len(newData) / g.dims)
		page := g.cellPage(c)
		base := int(g.offsets[c])
		for i := 0; i*g.dims < len(page); i++ {
			if g.deadCount > 0 && g.isDead(base+i) {
				continue
			}
			newData = append(newData, page[i*g.dims:(i+1)*g.dims]...)
		}
		if page := g.overflow[c]; page != nil {
			newData = append(newData, page.data...)
		}
	}
	newOffsets[nCells] = int64(len(newData) / g.dims)
	g.data = newData
	g.offsets = newOffsets
	g.store = nil // pages are resident again; drop any mapped backing
	g.overflow = nil
	g.inserted = 0
	g.dead = nil
	g.deadCount = 0
	g.n = live
	if g.cfg.SortDim >= 0 {
		for c := 0; c < nCells; c++ {
			g.sortCell(c)
		}
	}
}

// scanOverflow visits matching rows of one cell's overflow page, using the
// same binary-search entry point as the main page; it reports false as soon
// as yield stops the scan.
func (g *GridFile) scanOverflow(c int, r index.Rect, yield index.Yield, probe *index.Probe) bool {
	page := g.overflow[c]
	if page == nil || len(page.data) == 0 {
		return true
	}
	dims := g.dims
	lo, hi := g.querySpan(page.data, r)
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(hi - lo)
	}
	for i := lo; i < hi; i++ {
		row := page.data[i*dims : (i+1)*dims]
		if r.Contains(row) {
			if probe != nil {
				probe.Matched++
			}
			if !yield(row) {
				return false
			}
		}
	}
	return true
}
