package gridfile

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/workload"
)

// rowPath collects rows and counters through the row-at-a-time scan.
func rowPath(g *GridFile, r index.Rect) ([][]float64, index.Probe) {
	var rows [][]float64
	var p index.Probe
	g.Scan(r, func(row []float64) bool {
		rows = append(rows, append([]float64(nil), row...))
		return true
	}, &p)
	return rows, p
}

// batchPath collects rows and counters through the batch kernel, via the
// Each compatibility shim.
func batchPath(g *GridFile, r index.Rect) ([][]float64, index.Probe) {
	var rows [][]float64
	var p index.Probe
	g.ScanBatch(r, func(b *index.Batch) bool {
		return b.Each(func(row []float64) bool {
			rows = append(rows, append([]float64(nil), row...))
			return true
		})
	}, &p)
	return rows, p
}

// sameProbe insists the batch path reproduced the row path's counters
// exactly; Batches is the one field that legitimately differs (always zero
// on the row path).
func sameProbe(t *testing.T, label string, row, batch index.Probe) {
	t.Helper()
	if batch.Pages != row.Pages || batch.Scanned != row.Scanned ||
		batch.Matched != row.Matched || batch.Tombstones != row.Tombstones {
		t.Fatalf("%s: batch probe {pages %d scanned %d matched %d tombstones %d} vs row {%d %d %d %d}",
			label, batch.Pages, batch.Scanned, batch.Matched, batch.Tombstones,
			row.Pages, row.Scanned, row.Matched, row.Tombstones)
	}
	if batch.Matched > 0 && batch.Batches == 0 {
		t.Fatalf("%s: batch path matched %d rows in zero batches", label, batch.Matched)
	}
	if row.Batches != 0 {
		t.Fatalf("%s: row path counted %d batches", label, row.Batches)
	}
}

// TestScanBatchMatchesScan drives both paths over the same grid file in
// every mutation state — fresh, with overflow inserts, with tombstones,
// both, and compacted — and requires identical row multisets and identical
// probe counters.
func TestScanBatchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := randomTable(rng, 4000, 3)
	build := func() *GridFile {
		g, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: 2, CellsPerDim: 6})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	mutate := map[string]func(*GridFile){
		"fresh": func(*GridFile) {},
		"overflow": func(g *GridFile) {
			for i := 0; i < 300; i++ {
				if err := g.Insert([]float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10}); err != nil {
					t.Fatal(err)
				}
			}
		},
		"tombstoned": func(g *GridFile) {
			for i := 0; i < 500; i += 3 {
				g.Delete(tab.Row(i))
			}
		},
		"overflow+tombstoned": func(g *GridFile) {
			for i := 0; i < 200; i++ {
				if err := g.Insert(append([]float64(nil), tab.Row(i)...)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 600; i += 2 {
				g.Delete(tab.Row(i))
			}
		},
		"compacted": func(g *GridFile) {
			for i := 0; i < 500; i += 3 {
				g.Delete(tab.Row(i))
			}
			g.Compact()
		},
	}
	for name, mut := range mutate {
		t.Run(name, func(t *testing.T) {
			g := build()
			mut(g)
			rects := make([]index.Rect, 0, 42)
			for i := 0; i < 40; i++ {
				rects = append(rects, workload.RandRect(rng, tab))
			}
			rects = append(rects, index.Full(3), index.Point(tab.Row(7)))
			for _, r := range rects {
				rowRows, rowProbe := rowPath(g, r)
				batchRows, batchProbe := batchPath(g, r)
				sameRows(t, batchRows, rowRows)
				sameProbe(t, name, rowProbe, batchProbe)
			}
		})
	}
}

// TestScanBatchStops verifies a false-returning batch yield stops the scan
// exactly like a false-returning row yield, reporting incompleteness.
func TestScanBatchStops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tab := randomTable(rng, 2000, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	complete := g.ScanBatch(index.Full(2), func(b *index.Batch) bool {
		calls++
		return false
	}, nil)
	if complete || calls != 1 {
		t.Fatalf("complete=%v after %d yields, want aborted after 1", complete, calls)
	}

	// An abort hook fires at page granularity even when nothing matches.
	var p index.Probe
	p.Abort = func() bool { return true }
	if g.ScanBatch(index.Full(2), func(*index.Batch) bool { return true }, &p) {
		t.Fatal("aborted scan reported complete")
	}
}

// TestScanBatchSelectionInvariants checks the bitmap contract every fold
// relies on: tail bits past Rows are zero and Selected agrees with Each.
func TestScanBatchSelectionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tab := randomTable(rng, 3000, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i += 2 {
		g.Delete(tab.Row(i))
	}
	r := workload.RandRect(rng, tab)
	g.ScanBatch(r, func(b *index.Batch) bool {
		if b.Rows < 1 || b.Rows > index.BatchRows {
			t.Fatalf("batch carries %d rows", b.Rows)
		}
		if len(b.Sel) != index.BatchWords(b.Rows) {
			t.Fatalf("%d selection words for %d rows", len(b.Sel), b.Rows)
		}
		if tail := b.Rows & 63; tail != 0 {
			if b.Sel[len(b.Sel)-1]&^(1<<uint(tail)-1) != 0 {
				t.Fatal("selection bits set past Rows")
			}
		}
		n := 0
		b.Each(func(row []float64) bool {
			if !r.Contains(row) {
				t.Fatalf("selected row %v outside %v", row, r)
			}
			n++
			return true
		})
		if n != b.Selected() {
			t.Fatalf("Each visited %d rows, Selected says %d", n, b.Selected())
		}
		return true
	}, nil)
}
