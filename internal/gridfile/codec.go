package gridfile

import (
	"fmt"
	"sort"

	"github.com/coax-index/coax/internal/binio"
)

// Snapshot codec. A grid file serializes as its configuration, the
// per-dimension boundary vectors, the per-cell offset table, the contiguous
// row payload, and any live overflow pages (so saving does not force a
// Compact on an index that concurrent readers may be using). Strides are
// recomputed on decode rather than trusted from the payload.

// Encode appends the complete grid file state to w.
func (g *GridFile) Encode(w *binio.Writer) {
	w.Ints(g.cfg.GridDims)
	w.Int(g.cfg.SortDim)
	w.Int(g.cfg.CellsPerDim)
	w.Int(int(g.cfg.Mode))
	w.String(g.cfg.Label)
	w.Int(g.dims)
	w.Int(g.n)
	w.Uint64(uint64(len(g.bounds)))
	for _, b := range g.bounds {
		w.Float64s(b)
	}
	w.Int64s(g.offsets)
	if g.store == nil {
		w.Float64s(g.data)
	} else {
		// Store-backed (memory-mapped) pages: emit the payload cell by cell
		// through cellPage — byte-identical to Float64s over the resident
		// concatenation — without materializing a contiguous copy or
		// mutating any state under a read lock.
		w.Uint64(uint64(g.mainRows() * g.dims))
		for c := 0; c < g.NumCells(); c++ {
			w.RawFloat64s(g.cellPage(c))
		}
	}

	cells := make([]int, 0, len(g.overflow))
	for c := range g.overflow {
		cells = append(cells, c)
	}
	sort.Ints(cells)
	w.Uint64(uint64(len(cells)))
	for _, c := range cells {
		w.Int(c)
		w.Float64s(g.overflow[c].data)
	}
}

// Decode reads a grid file written by Encode, revalidating every structural
// invariant so a corrupted payload yields an error rather than an index
// that panics at query time.
func Decode(r *binio.Reader) (*GridFile, error) {
	g := &GridFile{}
	g.cfg.GridDims = r.Ints()
	g.cfg.SortDim = r.Int()
	g.cfg.CellsPerDim = r.Int()
	g.cfg.Mode = BoundsMode(r.Int())
	g.cfg.Label = r.String()
	g.dims = r.Int()
	g.n = r.Int()
	nBounds := r.Uint64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if nBounds != uint64(len(g.cfg.GridDims)) {
		return nil, fmt.Errorf("gridfile: %d boundary vectors for %d grid dims", nBounds, len(g.cfg.GridDims))
	}
	g.bounds = make([][]float64, nBounds)
	for i := range g.bounds {
		g.bounds[i] = r.Float64s()
	}
	g.offsets = r.Int64s()
	g.data = r.Float64s()

	nOverflow := r.Uint64()
	if r.Err() != nil {
		return nil, r.Err()
	}
	for i := uint64(0); i < nOverflow; i++ {
		c := r.Int()
		page := r.Float64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if g.overflow == nil {
			g.overflow = make(map[int]*overflowPage)
		}
		if _, dup := g.overflow[c]; dup {
			return nil, fmt.Errorf("gridfile: overflow page for cell %d listed twice", c)
		}
		g.overflow[c] = &overflowPage{data: page}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := g.validateDecoded(true); err != nil {
		return nil, err
	}
	return g, nil
}

// validateDecoded checks the invariants Build guarantees by construction.
// verifyPages additionally proves every main page sorted on the sort
// dimension — an O(rows) pass a lazily-decoded (store-backed) grid file
// defers to per-page decode time instead.
func (g *GridFile) validateDecoded(verifyPages bool) error {
	if g.dims < 1 {
		return fmt.Errorf("gridfile: dims %d < 1", g.dims)
	}
	if g.cfg.CellsPerDim < 1 {
		return fmt.Errorf("gridfile: CellsPerDim %d < 1", g.cfg.CellsPerDim)
	}
	if g.cfg.Mode != Quantile && g.cfg.Mode != Uniform {
		return fmt.Errorf("gridfile: unknown bounds mode %d", g.cfg.Mode)
	}
	seen := make(map[int]bool, len(g.cfg.GridDims))
	for _, d := range g.cfg.GridDims {
		if d < 0 || d >= g.dims {
			return fmt.Errorf("gridfile: grid dimension %d out of range [0,%d)", d, g.dims)
		}
		if seen[d] {
			return fmt.Errorf("gridfile: grid dimension %d listed twice", d)
		}
		seen[d] = true
	}
	if g.cfg.SortDim >= g.dims || g.cfg.SortDim < -1 {
		return fmt.Errorf("gridfile: sort dimension %d out of range", g.cfg.SortDim)
	}
	if g.cfg.SortDim >= 0 && seen[g.cfg.SortDim] {
		return fmt.Errorf("gridfile: sort dimension %d is also a grid dimension", g.cfg.SortDim)
	}

	nCells := 1
	g.strides = make([]int, len(g.cfg.GridDims))
	for i := len(g.cfg.GridDims) - 1; i >= 0; i-- {
		g.strides[i] = nCells
		next := nCells * g.cfg.CellsPerDim
		if next/g.cfg.CellsPerDim != nCells {
			return fmt.Errorf("gridfile: cell lattice overflows int")
		}
		nCells = next
	}
	for i, b := range g.bounds {
		if len(b) != g.cfg.CellsPerDim+1 {
			return fmt.Errorf("gridfile: boundary vector %d has %d entries, want %d", i, len(b), g.cfg.CellsPerDim+1)
		}
		for j := 1; j < len(b); j++ {
			if !(b[j] >= b[j-1]) { // also rejects NaN
				return fmt.Errorf("gridfile: boundaries of grid dim %d not ascending at %d", i, j)
			}
		}
	}
	if len(g.offsets) != nCells+1 {
		return fmt.Errorf("gridfile: offset table has %d entries, want %d", len(g.offsets), nCells+1)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("gridfile: offsets must start at 0, got %d", g.offsets[0])
	}
	for c := 1; c <= nCells; c++ {
		if g.offsets[c] < g.offsets[c-1] {
			return fmt.Errorf("gridfile: offsets not monotone at cell %d", c)
		}
	}
	mainRows := int(g.offsets[nCells])
	if g.store == nil {
		if len(g.data)%g.dims != 0 {
			return fmt.Errorf("gridfile: payload length %d not divisible by dims %d", len(g.data), g.dims)
		}
		if len(g.data)/g.dims != mainRows {
			return fmt.Errorf("gridfile: offsets cover %d rows, payload has %d", g.offsets[nCells], len(g.data)/g.dims)
		}
	}
	overflowRows := 0
	for c, page := range g.overflow {
		if c < 0 || c >= nCells {
			return fmt.Errorf("gridfile: overflow cell %d out of range [0,%d)", c, nCells)
		}
		if len(page.data)%g.dims != 0 {
			return fmt.Errorf("gridfile: overflow page %d length %d not divisible by dims %d", c, len(page.data), g.dims)
		}
		overflowRows += len(page.data) / g.dims
	}
	g.inserted = overflowRows
	if g.n != mainRows+overflowRows {
		return fmt.Errorf("gridfile: row count %d does not match payload %d + overflow %d", g.n, mainRows, overflowRows)
	}
	// The query path binary-searches cell pages on the sort dimension; an
	// unsorted page would silently drop matching rows, so the invariant is
	// load-bearing and must be checked, not trusted.
	if sd := g.cfg.SortDim; sd >= 0 {
		if verifyPages {
			for c := 0; c < nCells; c++ {
				if !pageSorted(g.cellPage(c), g.dims, sd) {
					return fmt.Errorf("gridfile: cell %d not sorted on dimension %d", c, sd)
				}
			}
		}
		for c, page := range g.overflow {
			if !pageSorted(page.data, g.dims, sd) {
				return fmt.Errorf("gridfile: overflow page %d not sorted on dimension %d", c, sd)
			}
		}
	}
	return nil
}

// pageSorted reports whether a row-major page is non-descending on key.
func pageSorted(page []float64, dims, key int) bool {
	for i := dims + key; i < len(page); i += dims {
		if page[i] < page[i-dims] {
			return false
		}
	}
	return true
}
