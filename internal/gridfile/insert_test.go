package gridfile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func TestInsertVisibleImmediately(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, 1000, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{3.5, -7.25}
	if err := g.Insert(row); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1001 {
		t.Errorf("Len = %d, want 1001", g.Len())
	}
	if g.Inserted() != 1 {
		t.Errorf("Inserted = %d, want 1", g.Inserted())
	}
	if index.Count(g, index.Point(row)) != 1 {
		t.Error("inserted row not found by point query")
	}
	// Insert copies: mutating the source must not corrupt the page.
	row[0] = 999
	if index.Count(g, index.Point([]float64{3.5, -7.25})) != 1 {
		t.Error("Insert must copy the row")
	}
}

func TestInsertWrongArity(t *testing.T) {
	tab := randomTable(rand.New(rand.NewSource(2)), 10, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: -1, CellsPerDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Insert([]float64{1}); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestInsertThenQueryMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := randomTable(rng, 2000, 3)
	extra := randomTable(rng, 1000, 3)

	g, err := Build(base, Config{GridDims: []int{0, 1}, SortDim: 2, CellsPerDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	all := dataset.NewTable(base.Cols)
	for i := 0; i < base.Len(); i++ {
		all.Append(base.Row(i))
	}
	for i := 0; i < extra.Len(); i++ {
		if err := g.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
		all.Append(extra.Row(i))
	}
	oracle := scan.New(all)
	for trial := 0; trial < 40; trial++ {
		r := randQueryRect(rng, 3)
		if got, want := index.Count(g, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}

	// Compact and re-verify: results must be identical, overflow gone.
	g.Compact()
	if g.Inserted() != 0 {
		t.Errorf("Inserted after Compact = %d", g.Inserted())
	}
	if g.Len() != 3000 {
		t.Errorf("Len after Compact = %d", g.Len())
	}
	for trial := 0; trial < 40; trial++ {
		r := randQueryRect(rng, 3)
		if got, want := index.Count(g, r), index.Count(oracle, r); got != want {
			t.Fatalf("post-compact trial %d: %d, want %d", trial, got, want)
		}
	}
	sizes := g.CellSizes()
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	if sum != 3000 {
		t.Errorf("cell sizes sum to %d after Compact, want 3000", sum)
	}
}

func TestCompactNoopWithoutInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := randomTable(rng, 500, 2)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	before := index.Count(g, index.Full(2))
	g.Compact()
	if after := index.Count(g, index.Full(2)); after != before {
		t.Errorf("Compact noop changed results: %d vs %d", after, before)
	}
}

func TestInsertOutsideOriginalBounds(t *testing.T) {
	// Rows beyond the original boundary range land in edge cells and must
	// remain findable.
	tab := dataset.NewTable([]string{"x", "y"})
	for i := 0; i < 100; i++ {
		tab.Append([]float64{float64(i), float64(i)})
	}
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4})
	if err != nil {
		t.Fatal(err)
	}
	far := [][]float64{{-1000, 5}, {1e9, -3}, {50, 1e12}}
	for _, row := range far {
		if err := g.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	for _, row := range far {
		if index.Count(g, index.Point(row)) != 1 {
			t.Errorf("out-of-bounds insert %v lost", row)
		}
	}
	g.Compact()
	for _, row := range far {
		if index.Count(g, index.Point(row)) != 1 {
			t.Errorf("out-of-bounds insert %v lost after Compact", row)
		}
	}
}

func TestOverflowKeepsSortOrder(t *testing.T) {
	tab := dataset.NewTable([]string{"x", "y"})
	tab.Append([]float64{0, 0})
	g, err := Build(tab, Config{GridDims: nil, SortDim: 1, CellsPerDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		if err := g.Insert([]float64{rng.Float64(), rng.NormFloat64() * 100}); err != nil {
			t.Fatal(err)
		}
	}
	// A narrow sort-dim range query exercises the overflow binary search.
	r := index.Full(2)
	r.Min[1], r.Max[1] = -10, 10
	got := index.Collect(g, r)
	for _, row := range got {
		if row[1] < -10 || row[1] > 10 {
			t.Fatalf("overflow binary search returned out-of-range row %v", row)
		}
	}
	// Cross-check the count against a manual filter.
	want := 0
	if v := 0.0; v >= -10 && v <= 10 {
		want++ // the seed row {0,0}
	}
	rng = rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		rng.Float64()
		if v := rng.NormFloat64() * 100; v >= -10 && v <= 10 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("overflow range count %d, want %d", len(got), want)
	}
}

// Property: interleaved builds, inserts, and compactions always agree with
// the oracle.
func TestInsertEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(3)
		base := randomTable(rng, 50+rng.Intn(200), dims)
		g, err := Build(base, Config{
			GridDims:    gridDimsFor(dims, rng),
			SortDim:     -1,
			CellsPerDim: 1 + rng.Intn(6),
			Mode:        Quantile,
		})
		if err != nil {
			return false
		}
		all := dataset.NewTable(base.Cols)
		for i := 0; i < base.Len(); i++ {
			all.Append(base.Row(i))
		}
		for batch := 0; batch < 3; batch++ {
			extra := randomTable(rng, 20+rng.Intn(50), dims)
			for i := 0; i < extra.Len(); i++ {
				if err := g.Insert(extra.Row(i)); err != nil {
					return false
				}
				all.Append(extra.Row(i))
			}
			if rng.Float64() < 0.5 {
				g.Compact()
			}
			oracle := scan.New(all)
			for trial := 0; trial < 5; trial++ {
				r := randQueryRect(rng, dims)
				if index.Count(g, r) != index.Count(oracle, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func gridDimsFor(dims int, rng *rand.Rand) []int {
	var out []int
	for d := 0; d < dims; d++ {
		if rng.Float64() < 0.7 {
			out = append(out, d)
		}
	}
	return out
}
