package gridfile

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

func testTable(n, dims int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, dims)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	t := dataset.NewTable(cols)
	row := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := range row {
			row[d] = rng.NormFloat64() * float64(d+1)
		}
		t.Append(row)
	}
	return t
}

func roundTrip(t *testing.T, g *GridFile) *GridFile {
	t.Helper()
	w := binio.NewWriter()
	g.Encode(w)
	r := binio.NewReader(w.Bytes())
	got, err := Decode(r)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return got
}

func requireSameQueries(t *testing.T, want, got index.Interface, tab *dataset.Table) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 50; q++ {
		r := index.Full(tab.Dims())
		for d := 0; d < tab.Dims(); d++ {
			if rng.Intn(2) == 0 {
				continue
			}
			a, b := rng.NormFloat64()*float64(d+1), rng.NormFloat64()*float64(d+1)
			if a > b {
				a, b = b, a
			}
			r.Min[d], r.Max[d] = a, b
		}
		if w, g := index.Count(want, r), index.Count(got, r); w != g {
			t.Fatalf("query %d %v: %d != %d", q, r, w, g)
		}
	}
	if w, g := index.Count(want, index.Full(tab.Dims())), got.Len(); w != g {
		t.Fatalf("full scan %d != Len %d", w, g)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tab := testTable(5000, 3, 1)
	g, err := Build(tab, Config{GridDims: []int{0, 2}, SortDim: 1, CellsPerDim: 8, Mode: Quantile, Label: "test"})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, g)
	if got.Name() != "test" || got.Len() != g.Len() || got.Dims() != g.Dims() || got.NumCells() != g.NumCells() {
		t.Fatalf("metadata mismatch after round trip")
	}
	requireSameQueries(t, g, got, tab)
}

func TestCodecRoundTripWithOverflow(t *testing.T) {
	tab := testTable(2000, 3, 2)
	g, err := Build(tab, Config{GridDims: []int{0, 1}, SortDim: 2, CellsPerDim: 4, Mode: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	extra := testTable(200, 3, 4)
	for i := 0; i < extra.Len(); i++ {
		if err := g.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
		tab.Append(extra.Row(i))
	}
	got := roundTrip(t, g)
	if got.Inserted() != g.Inserted() {
		t.Fatalf("Inserted %d != %d", got.Inserted(), g.Inserted())
	}
	requireSameQueries(t, g, got, tab)
	// The decoded index must stay mutable: Compact and further inserts.
	got.Compact()
	if got.Inserted() != 0 || got.Len() != g.Len() {
		t.Fatalf("Compact broke decoded grid: inserted=%d len=%d", got.Inserted(), got.Len())
	}
	requireSameQueries(t, g, got, tab)
}

// TestCodecRejectsCorruptStructure hand-corrupts decoded-field invariants
// that a CRC pass cannot rule out (the CRC guards bit rot, these guard
// adversarial or buggy writers).
func TestCodecRejectsCorruptStructure(t *testing.T) {
	tab := testTable(500, 2, 5)
	g, err := Build(tab, Config{GridDims: []int{0}, SortDim: 1, CellsPerDim: 4, Mode: Quantile})
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*GridFile){
		"row count":      func(m *GridFile) { m.n++ },
		"sort==grid dim": func(m *GridFile) { m.cfg.SortDim = 0 },
		"offset start":   func(m *GridFile) { m.offsets[0] = 1 },
		"offset order":   func(m *GridFile) { m.offsets[1] = m.offsets[len(m.offsets)-1] + 5 },
		"bounds order":   func(m *GridFile) { m.bounds[0][0] = m.bounds[0][len(m.bounds[0])-1] + 1 },
		"grid dim range": func(m *GridFile) { m.cfg.GridDims[0] = 7 },
		"unsorted cell": func(m *GridFile) {
			// Break the in-cell sort order of the first cell with ≥ 2 rows.
			for c := 0; c < m.NumCells(); c++ {
				if m.offsets[c+1]-m.offsets[c] >= 2 {
					page := m.cellPage(c)
					page[m.cfg.SortDim], page[m.dims+m.cfg.SortDim] = page[m.dims+m.cfg.SortDim]+1, page[m.cfg.SortDim]
					return
				}
			}
			panic("no cell with two rows")
		},
	}
	for name, mutate := range mutations {
		w := binio.NewWriter()
		clone := *g
		clone.cfg.GridDims = append([]int(nil), g.cfg.GridDims...)
		clone.bounds = make([][]float64, len(g.bounds))
		for i := range g.bounds {
			clone.bounds[i] = append([]float64(nil), g.bounds[i]...)
		}
		clone.offsets = append([]int64(nil), g.offsets...)
		clone.data = append([]float64(nil), g.data...)
		mutate(&clone)
		clone.Encode(w)
		if _, err := Decode(binio.NewReader(w.Bytes())); err == nil {
			t.Errorf("%s: Decode accepted corrupt structure", name)
		}
	}
}
