package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyTracker keeps a sliding window of per-node request durations and
// answers "what is this node's p99 right now". The router hedges a read —
// launches the same shards on the next replica — once a request has been
// outstanding longer than the node's p99: by definition ~1% of healthy
// requests trip it, so hedges are rare unless the node is actually slow.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyWindow]time.Duration
	n    int // total observations (ring holds min(n, latencyWindow))
	idx  int
}

const latencyWindow = 128

// hedge delay clamps: below the floor hedging fires on scheduler noise and
// doubles load for nothing; above the ceiling a genuinely stuck node holds
// the whole query hostage before the backup launches.
const (
	minHedgeDelay = 2 * time.Millisecond
	maxHedgeDelay = 2 * time.Second
	// defaultHedgeDelay serves until a node has enough observations for a
	// meaningful p99.
	defaultHedgeDelay = 50 * time.Millisecond
	minHedgeSamples   = 16
)

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.ring[t.idx] = d
	t.idx = (t.idx + 1) % latencyWindow
	t.n++
	t.mu.Unlock()
}

// p99 returns the 99th-percentile duration over the window, or 0 with too
// few samples to say anything.
func (t *latencyTracker) p99() time.Duration {
	t.mu.Lock()
	n := t.n
	if n > latencyWindow {
		n = latencyWindow
	}
	buf := make([]time.Duration, n)
	copy(buf, t.ring[:n])
	t.mu.Unlock()
	if n < minHedgeSamples {
		return 0
	}
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	return buf[(n*99)/100]
}

// hedgeDelay converts the node's current p99 into the delay before a
// hedged read launches, clamped into [minHedgeDelay, maxHedgeDelay] and
// defaulting while the window is still filling.
func (t *latencyTracker) hedgeDelay() time.Duration {
	d := t.p99()
	if d == 0 {
		return defaultHedgeDelay
	}
	if d < minHedgeDelay {
		return minHedgeDelay
	}
	if d > maxHedgeDelay {
		return maxHedgeDelay
	}
	return d
}
