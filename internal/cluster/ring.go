// Package cluster distributes the sharded COAX engine across processes: a
// consistent-hash ring places global shards onto nodes with R-way
// replication, a Node hosts its assigned shards behind the internal/wire
// protocol, and a Router scatter-gathers queries across nodes with the
// same atomic stop-flag semantics as the in-process fan-out in
// internal/shard — plus hedged replica reads and per-node circuit breaking
// that the single-process engine never needed.
//
// The unit of placement is the global shard: rows hash onto K global
// shards with shard.HashRow (the same row-identity hash the local engine
// uses), and each global shard is materialized as one local shard.Sharded
// on every replica that hosts it. K is fixed at cluster build time; nodes
// joining or leaving move whole global shards, never individual rows.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"github.com/coax-index/coax/internal/shard"
)

// RouteRow maps a row to its global shard in a K-shard cluster. It is the
// cluster-level analogue of the local engine's hash routing and uses the
// identical hash, so a row's global shard is a pure function of its values.
func RouteRow(row []float64, shards int) int {
	return int(shard.HashRow(row) % uint64(shards))
}

// DefaultVnodes is the number of ring points per node. More points smooth
// the balance between nodes at the cost of a larger (still tiny) ring.
const DefaultVnodes = 160

// Ring is a consistent-hash ring of nodes. It is immutable after
// construction — membership changes build a new Ring — which is what makes
// the placement property testable: two rings sharing nodes place shards
// identically wherever their point sets agree.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring of the given nodes with vnodes points each
// (DefaultVnodes when vnodes <= 0). Node names must be unique and
// non-empty; order does not affect placement.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*vnodes),
	}
	for i, n := range r.nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", n, v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// ringHash is FNV-1a 64 over s, finished with a splitmix64-style mixer.
// Raw FNV of near-identical strings ("node#1", "node#2", ...) clusters —
// consecutive vnodes land in one tight arc and the ring degenerates to a
// single owner — so the finalizer's full avalanche is load-bearing, not
// cosmetic. Placement never sees adversarial input; it only needs the mix.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Nodes returns the ring's membership (a copy, in construction order).
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replicas returns the rf distinct nodes hosting a global shard, in
// preference order: the shard's hash point is located on the ring and the
// walk clockwise collects the first rf distinct nodes. rf larger than the
// node count returns every node. The first entry is the shard's primary.
func (r *Ring) Replicas(gshard, rf int) []string {
	if rf > len(r.nodes) {
		rf = len(r.nodes)
	}
	if rf <= 0 {
		rf = 1
	}
	h := ringHash(fmt.Sprintf("shard:%d", gshard))
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, rf)
	taken := make(map[int]bool, rf)
	for i := 0; i < len(r.points) && len(out) < rf; i++ {
		p := r.points[(start+i)%len(r.points)]
		if taken[p.node] {
			continue
		}
		taken[p.node] = true
		out = append(out, r.nodes[p.node])
	}
	return out
}

// Placement returns, for each of the K global shards, its replica set on
// this ring (Replicas(g, rf) for g in 0..K-1).
func (r *Ring) Placement(shards, rf int) [][]string {
	out := make([][]string, shards)
	for g := range out {
		out[g] = r.Replicas(g, rf)
	}
	return out
}

// HostedShards returns the global shards whose replica set includes node,
// ascending — the set a node must materialize locally.
func (r *Ring) HostedShards(node string, shards, rf int) []int {
	var out []int
	for g := 0; g < shards; g++ {
		for _, n := range r.Replicas(g, rf) {
			if n == node {
				out = append(out, g)
				break
			}
		}
	}
	return out
}
