package cluster

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/wire"
)

// cancelGrace is how long a cancelled RPC waits for the node to terminate
// its stream with Done before force-closing the connection. The node
// notices a cancel within about one page of scan work, so the grace only
// expires when the node is wedged or the network ate the frames.
const cancelGrace = 2 * time.Second

// dialTimeout bounds connection establishment to a node.
const dialTimeout = 2 * time.Second

// client is the router's handle on one node: a pool of handshaken
// connections, the node's circuit breaker, and its latency window (the
// hedge-delay source). One RPC borrows one connection for its lifetime —
// streams never interleave, so a failed stream poisons only itself.
type client struct {
	addr    string
	breaker *breaker
	lat     *latencyTracker

	mu      sync.Mutex
	idle    []*nodeConn
	welcome *wire.Welcome // from the first successful handshake
	nextID  atomic.Uint64
	closed  bool
}

type nodeConn struct {
	raw net.Conn
	c   *wire.Conn
}

func newClient(addr string) *client {
	return &client{
		addr:    addr,
		breaker: newBreaker(0, 0),
		lat:     &latencyTracker{},
	}
}

// get borrows an idle connection or dials a new one.
func (cl *client) get() (*nodeConn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("cluster: client for %s closed", cl.addr)
	}
	if n := len(cl.idle); n > 0 {
		nc := cl.idle[n-1]
		cl.idle = cl.idle[:n-1]
		cl.mu.Unlock()
		return nc, nil
	}
	cl.mu.Unlock()

	raw, err := net.DialTimeout("tcp", cl.addr, dialTimeout)
	if err != nil {
		return nil, err
	}
	c := wire.NewConn(raw)
	w, err := wire.ClientHandshake(c)
	if err != nil {
		raw.Close()
		return nil, err
	}
	cl.mu.Lock()
	cl.welcome = w
	cl.mu.Unlock()
	return &nodeConn{raw: raw, c: c}, nil
}

// put returns a connection whose stream ended at a clean frame boundary.
func (cl *client) put(nc *nodeConn) {
	nc.raw.SetReadDeadline(time.Time{})
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		nc.raw.Close()
		return
	}
	cl.idle = append(cl.idle, nc)
	cl.mu.Unlock()
}

func (cl *client) close() {
	cl.mu.Lock()
	cl.closed = true
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, nc := range idle {
		nc.raw.Close()
	}
}

// id returns a connection-unique request id.
func (cl *client) id() uint64 { return cl.nextID.Add(1) }

// overloadedError is the wire-level overload signal translated into an
// error the router (and ultimately the HTTP layer) can act on.
type overloadedError struct {
	retryAfter time.Duration
}

func (e *overloadedError) Error() string {
	return fmt.Sprintf("cluster: node overloaded, retry after %s", e.retryAfter)
}

// remoteError is a non-overload Error frame: the node is healthy but
// refused the request (bad row, row not found, internal failure).
type remoteError struct {
	code uint8
	msg  string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("cluster: node error (code %d): %s", e.code, e.msg)
}

// stream runs one streaming RPC: send req, then dispatch response frames
// for the request's id to the handlers until Done (nil) or Error. stop is
// polled via a watcher that sends a Cancel frame the moment it fires;
// after a cancel the node still terminates with Done, bounded by
// cancelGrace before the connection is force-closed.
//
// onChunk/onEOF/onPart may be nil when the RPC cannot produce that frame.
// The returned bool is Done.Complete. Errors are classified for the
// breaker by the caller via isTransportErr.
func (cl *client) stream(req wire.Message, stopCh <-chan struct{}, onChunk func(*wire.RowChunk), onEOF func(*wire.ShardEOF), onPart func(*wire.AggPart)) (bool, error) {
	start := time.Now()
	nc, err := cl.get()
	if err != nil {
		cl.breaker.failure()
		obs.ClusterRPCs.Inc()
		obs.ClusterRPCErrors.Inc()
		return false, err
	}
	obs.ClusterRPCs.Inc()

	id, _ := requestID(req)
	if err := nc.c.Send(req); err != nil {
		nc.raw.Close()
		cl.breaker.failure()
		obs.ClusterRPCErrors.Inc()
		return false, err
	}

	// The cancel watcher shares the write side of the connection (writes
	// are frame-atomic), and arms the read deadline so a node that never
	// answers the cancel cannot hold this RPC forever.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-stopCh:
			nc.c.Send(&wire.Cancel{ID: id})
			nc.raw.SetReadDeadline(time.Now().Add(cancelGrace))
		case <-watchDone:
		}
	}()

	for {
		m, err := nc.c.Recv()
		if err != nil {
			nc.raw.Close()
			cl.breaker.failure()
			obs.ClusterRPCErrors.Inc()
			return false, err
		}
		switch f := m.(type) {
		case *wire.RowChunk:
			if f.ID == id && onChunk != nil {
				onChunk(f)
			}
		case *wire.ShardEOF:
			if f.ID == id && onEOF != nil {
				onEOF(f)
			}
		case *wire.AggPart:
			if f.ID == id && onPart != nil {
				onPart(f)
			}
		case *wire.Done:
			if f.ID != id {
				continue
			}
			cl.breaker.success()
			cl.lat.observe(time.Since(start))
			obs.ClusterRPCSeconds.Observe(time.Since(start).Seconds())
			cl.put(nc)
			return f.Complete, nil
		case *wire.Error:
			if f.ID != id && f.ID != 0 {
				continue
			}
			// The node answered: the transport works. Return the conn and
			// report the logical failure.
			cl.breaker.success()
			cl.put(nc)
			if f.Code == wire.CodeOverloaded {
				return false, &overloadedError{retryAfter: f.RetryAfter()}
			}
			return false, &remoteError{code: f.Code, msg: f.Msg}
		}
	}
}

// call runs one unary RPC (Mutate or Stats): send req, wait for its ack.
func (cl *client) call(req wire.Message) (wire.Message, error) {
	start := time.Now()
	nc, err := cl.get()
	if err != nil {
		cl.breaker.failure()
		obs.ClusterRPCs.Inc()
		obs.ClusterRPCErrors.Inc()
		return nil, err
	}
	obs.ClusterRPCs.Inc()
	id, _ := requestID(req)
	if err := nc.c.Send(req); err != nil {
		nc.raw.Close()
		cl.breaker.failure()
		obs.ClusterRPCErrors.Inc()
		return nil, err
	}
	nc.raw.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		m, err := nc.c.Recv()
		if err != nil {
			nc.raw.Close()
			cl.breaker.failure()
			obs.ClusterRPCErrors.Inc()
			return nil, err
		}
		switch f := m.(type) {
		case *wire.MutAck:
			if f.ID != id {
				continue
			}
			cl.breaker.success()
			cl.lat.observe(time.Since(start))
			obs.ClusterRPCSeconds.Observe(time.Since(start).Seconds())
			cl.put(nc)
			return f, nil
		case *wire.StatsRes:
			if f.ID != id {
				continue
			}
			cl.breaker.success()
			cl.put(nc)
			return f, nil
		case *wire.Error:
			if f.ID != id && f.ID != 0 {
				continue
			}
			cl.breaker.success()
			cl.put(nc)
			if f.Code == wire.CodeOverloaded {
				return nil, &overloadedError{retryAfter: f.RetryAfter()}
			}
			return nil, &remoteError{code: f.Code, msg: f.Msg}
		}
	}
}
