package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d.example:7000", i)
	}
	return out
}

// Property: placement balances within a tolerance — with vnode smoothing,
// no node hosts more than twice nor less than a third of its fair share.
func TestRingBalanceProperty(t *testing.T) {
	const shards = 256
	for _, nodes := range []int{2, 3, 5, 8} {
		for _, rf := range []int{1, 2, 3} {
			if rf > nodes {
				continue
			}
			r, err := NewRing(nodeNames(nodes), 0)
			if err != nil {
				t.Fatal(err)
			}
			load := make(map[string]int)
			for g := 0; g < shards; g++ {
				reps := r.Replicas(g, rf)
				if len(reps) != rf {
					t.Fatalf("nodes=%d rf=%d shard=%d: got %d replicas", nodes, rf, g, len(reps))
				}
				seen := make(map[string]bool)
				for _, n := range reps {
					if seen[n] {
						t.Fatalf("nodes=%d rf=%d shard=%d: duplicate replica %s", nodes, rf, g, n)
					}
					seen[n] = true
					load[n]++
				}
			}
			fair := float64(shards*rf) / float64(nodes)
			for n, c := range load {
				if float64(c) > 2*fair || float64(c) < fair/3 {
					t.Errorf("nodes=%d rf=%d: node %s hosts %d shards, fair share %.1f", nodes, rf, n, c, fair)
				}
			}
			if len(load) != nodes {
				t.Errorf("nodes=%d rf=%d: only %d nodes host anything", nodes, rf, len(load))
			}
		}
	}
}

// Property: a node joining moves only the shards it takes over — each
// shard's new replica set is a subset of its old set plus the new node,
// and at most one old replica is displaced.
func TestRingJoinMinimalMovement(t *testing.T) {
	const shards = 256
	names := nodeNames(9)
	for _, nodes := range []int{2, 4, 8} {
		for _, rf := range []int{1, 2} {
			old, err := NewRing(names[:nodes], 0)
			if err != nil {
				t.Fatal(err)
			}
			grown, err := NewRing(names[:nodes+1], 0)
			if err != nil {
				t.Fatal(err)
			}
			joined := names[nodes]
			moved := 0
			for g := 0; g < shards; g++ {
				oldSet := make(map[string]bool)
				for _, n := range old.Replicas(g, rf) {
					oldSet[n] = true
				}
				displaced := 0
				for _, n := range grown.Replicas(g, rf) {
					if n == joined {
						continue
					}
					if !oldSet[n] {
						t.Fatalf("nodes=%d rf=%d shard=%d: replica %s is neither old nor the joined node", nodes, rf, g, n)
					}
					delete(oldSet, n)
				}
				displaced = len(oldSet)
				if displaced > 1 {
					t.Errorf("nodes=%d rf=%d shard=%d: join displaced %d replicas", nodes, rf, g, displaced)
				}
				moved += displaced
			}
			// Expected movement is shards*rf/(nodes+1); allow 2.5x slack
			// for hash variance before calling the ring unstable.
			expect := float64(shards*rf) / float64(nodes+1)
			if float64(moved) > 2.5*expect {
				t.Errorf("nodes=%d rf=%d: join moved %d shard-replicas, expected about %.0f", nodes, rf, moved, expect)
			}
		}
	}
}

// Property: a node leaving keeps every surviving replica in place — the
// new set contains everything from the old set except the departed node.
func TestRingLeaveMinimalMovement(t *testing.T) {
	const shards = 256
	names := nodeNames(5)
	full, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	left := names[4]
	shrunk, err := NewRing(names[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rf := range []int{1, 2} {
		for g := 0; g < shards; g++ {
			newSet := make(map[string]bool)
			for _, n := range shrunk.Replicas(g, rf) {
				newSet[n] = true
			}
			for _, n := range full.Replicas(g, rf) {
				if n == left {
					continue
				}
				if !newSet[n] {
					t.Errorf("rf=%d shard=%d: survivor %s lost its replica on leave", rf, g, n)
				}
			}
		}
	}
}

// Placement must not depend on node list order.
func TestRingOrderIndependence(t *testing.T) {
	names := nodeNames(6)
	shuffled := append([]string(nil), names...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 64; g++ {
		ra, rb := a.Replicas(g, 2), b.Replicas(g, 2)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("shard %d: order-dependent placement %v vs %v", g, ra, rb)
			}
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty node name accepted")
	}
}

func TestHostedShards(t *testing.T) {
	names := nodeNames(3)
	r, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	const shards, rf = 64, 2
	count := 0
	for _, n := range names {
		hosted := r.HostedShards(n, shards, rf)
		count += len(hosted)
		for i := 1; i < len(hosted); i++ {
			if hosted[i] <= hosted[i-1] {
				t.Fatalf("HostedShards(%s) not ascending: %v", n, hosted)
			}
		}
	}
	if count != shards*rf {
		t.Errorf("hosted shard-replicas total %d, want %d", count, shards*rf)
	}
}
