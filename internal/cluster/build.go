package cluster

import (
	"fmt"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/shard"
)

// SplitTable partitions a table's rows onto K global shards with RouteRow.
// Every row lands on exactly one sub-table; a row's destination depends
// only on its values, so any process splitting the same table produces
// identical sub-tables.
func SplitTable(t *dataset.Table, shards int) []*dataset.Table {
	out := make([]*dataset.Table, shards)
	cols := t.Cols
	for g := range out {
		out[g] = dataset.NewTable(cols)
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		out[RouteRow(row, shards)].Append(row)
	}
	return out
}

// BuildShards materializes the listed global shards from a full table:
// each hosted shard's rows are split out and built into its own local
// shard.Sharded engine. Every global shard must be non-empty — the local
// engine cannot index an empty table, so K must be small enough relative
// to the row count that hashing leaves no shard bare (with the FNV row
// hash this holds in practice for K ≪ rows).
func BuildShards(t *dataset.Table, hosted []int, shards int, opt core.Options, so shard.Options) (map[int]*shard.Sharded, error) {
	hostSet := make(map[int]bool, len(hosted))
	for _, g := range hosted {
		if g < 0 || g >= shards {
			return nil, fmt.Errorf("cluster: hosted shard %d out of range [0,%d)", g, shards)
		}
		hostSet[g] = true
	}
	parts := SplitTable(t, shards)
	out := make(map[int]*shard.Sharded, len(hosted))
	for g := range hostSet {
		if parts[g].Len() == 0 {
			return nil, fmt.Errorf("cluster: global shard %d is empty (%d rows over %d shards); lower the shard count", g, t.Len(), shards)
		}
		s, err := shard.Build(parts[g], opt, so)
		if err != nil {
			return nil, fmt.Errorf("cluster: building global shard %d: %w", g, err)
		}
		out[g] = s
	}
	return out, nil
}
