package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/workload"
)

// testTable plants the repo's usual soft-FD shape (col1 ≈ 2·col0 + 50)
// with integer-valued aggregate and group columns, so distributed SUM/AVG
// results are exactly representable and compare bit-for-bit against the
// single-process oracle.
func testTable(rng *rand.Rand, n int) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u", "g"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < 0.05 {
			d = rng.Float64() * 2100
		} else {
			d = 2*x + 50 + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, math.Round(rng.Float64() * 100), float64(rng.Intn(8))})
	}
	return t
}

func coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 4000
	return opt
}

func localShardOptions() shard.Options {
	so := shard.DefaultOptions()
	so.NumShards = 2
	so.Workers = 2
	return so
}

// testCluster is an in-process cluster: N nodes on loopback TCP listeners
// plus a router, with a single-process oracle over the same table.
type testCluster struct {
	addrs  []string
	nodes  map[string]*Node
	router *Router
	oracle *shard.Sharded
	table  *dataset.Table
}

func startCluster(t *testing.T, table *dataset.Table, shards, nodes, rf int, opts ...RouterOption) *testCluster {
	t.Helper()
	lns := make([]net.Listener, nodes)
	addrs := make([]string, nodes)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{addrs: addrs, nodes: make(map[string]*Node), table: table}
	for i, addr := range addrs {
		hosted := ring.HostedShards(addr, shards, rf)
		if len(hosted) == 0 {
			t.Fatalf("node %s hosts no shards (shards=%d nodes=%d rf=%d)", addr, shards, nodes, rf)
		}
		engines, err := BuildShards(table, hosted, shards, coreOptions(), localShardOptions())
		if err != nil {
			t.Fatal(err)
		}
		n, err := NewNode(engines, shards)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[addr] = n
		go n.Serve(lns[i])
	}
	t.Cleanup(func() {
		if tc.router != nil {
			tc.router.Close()
		}
		for _, n := range tc.nodes {
			n.Close()
		}
	})
	rt, err := NewRouter(addrs, shards, rf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	oracle, err := shard.Build(table, coreOptions(), localShardOptions())
	if err != nil {
		t.Fatal(err)
	}
	tc.oracle = oracle
	return tc
}

func collectRouter(t *testing.T, rt *Router, r index.Rect, spec index.Spec) ([][]float64, bool) {
	t.Helper()
	var rows [][]float64
	complete, err := rt.Exec(r, spec, func(row []float64) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		t.Fatalf("router exec: %v", err)
	}
	return rows, complete
}

func collectOracle(s *shard.Sharded, r index.Rect, spec index.Spec) [][]float64 {
	var rows [][]float64
	s.Exec(r, spec, func(row []float64) bool {
		rows = append(rows, row)
		return true
	}, nil)
	return rows
}

func sortRows(rows [][]float64) {
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
}

func rowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// The distributed engine must answer every query with exactly the
// multiset of rows the single-process engine returns.
func TestClusterQueryOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tc := startCluster(t, testTable(rng, 4000), 16, 3, 2)
	for q := 0; q < 25; q++ {
		r := workload.RandRect(rng, tc.table)
		got, complete := collectRouter(t, tc.router, r, index.Spec{})
		want := collectOracle(tc.oracle, r, index.Spec{})
		if !complete {
			t.Fatalf("query %d: incomplete without a limit", q)
		}
		sortRows(got)
		sortRows(want)
		if !rowsEqual(got, want) {
			t.Fatalf("query %d: cluster returned %d rows, oracle %d", q, len(got), len(want))
		}
	}
}

// Limit(k) must deliver exactly k rows (when the full result has at
// least k), every one of them a member of the oracle's result set.
func TestClusterLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tc := startCluster(t, testTable(rng, 4000), 16, 3, 2)
	for q := 0; q < 10; q++ {
		r := workload.RandRect(rng, tc.table)
		want := collectOracle(tc.oracle, r, index.Spec{})
		if len(want) < 5 {
			continue
		}
		limit := 1 + rng.Intn(len(want))
		got, complete := collectRouter(t, tc.router, r, index.Spec{Limit: limit})
		if len(got) != limit {
			t.Fatalf("query %d: limit %d delivered %d rows", q, limit, len(got))
		}
		if complete && limit < len(want) {
			t.Fatalf("query %d: limited scan reported complete", q)
		}
		oracleSet := make(map[string]int, len(want))
		for _, row := range want {
			oracleSet[fmt.Sprint(row)]++
		}
		for _, row := range got {
			k := fmt.Sprint(row)
			if oracleSet[k] == 0 {
				t.Fatalf("query %d: limited row %v not in oracle result", q, row)
			}
			oracleSet[k]--
		}
	}
}

// A yield that declines stops the fan-out and reports incomplete.
func TestClusterYieldStops(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tc := startCluster(t, testTable(rng, 3000), 8, 2, 2)
	r := index.Rect{Min: []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		Max: []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}}
	seen := 0
	complete, err := tc.router.Exec(r, index.Spec{}, func([]float64) bool {
		seen++
		return seen < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("declined yield reported complete")
	}
	if seen != 10 {
		t.Errorf("yield saw %d rows, want 10", seen)
	}
}

// A cancelled context stops the distributed scan promptly.
func TestClusterCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tc := startCluster(t, testTable(rng, 3000), 8, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	r := index.Rect{Min: []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		Max: []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)}}
	seen := 0
	start := time.Now()
	complete, err := tc.router.Exec(r, index.Spec{Ctx: ctx}, func([]float64) bool {
		seen++
		if seen == 5 {
			cancel()
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Error("cancelled scan reported complete")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancel took %s to unwind", elapsed)
	}
}

// cellsMatch compares one aggregate cell against the oracle's: counts and
// extrema exactly; sums within floating-point merge-order slack (the
// distributed fold partitions rows differently than the oracle's local
// shards, so SUM can differ in the final bits — COUNT/MIN/MAX cannot).
func cellsMatch(op index.AggOp, got, want index.AggCell) bool {
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		return false
	}
	if got.Sum == want.Sum {
		return true
	}
	diff := math.Abs(got.Sum - want.Sum)
	scale := math.Max(math.Abs(got.Sum), math.Abs(want.Sum))
	return diff <= 1e-9*scale
}

// Aggregates must match the oracle: counts and extrema exactly, sums to
// within reassociation error (exact when the folded column is
// integer-valued, as columns 2 and 3 are).
func TestClusterAggOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tc := startCluster(t, testTable(rng, 4000), 16, 3, 2)
	specs := []index.AggSpec{
		{Op: index.AggCount, Col: -1, Group: -1},
		{Op: index.AggSum, Col: 2, Group: -1},
		{Op: index.AggMin, Col: 2, Group: -1},
		{Op: index.AggMax, Col: 0, Group: -1},
		{Op: index.AggAvg, Col: 2, Group: 3},
		{Op: index.AggCount, Col: -1, Group: 3},
	}
	for q := 0; q < 10; q++ {
		r := workload.RandRect(rng, tc.table)
		for _, aspec := range specs {
			got, complete, err := tc.router.ExecAgg(r, index.Spec{}, aspec)
			if err != nil {
				t.Fatalf("query %d %v: %v", q, aspec, err)
			}
			if !complete {
				t.Fatalf("query %d %v: incomplete", q, aspec)
			}
			want, _ := tc.oracle.ExecAgg(r, index.Spec{}, aspec, nil)
			if got.Rows() != want.Rows() {
				t.Fatalf("query %d %v: %d rows folded, oracle %d", q, aspec, got.Rows(), want.Rows())
			}
			if aspec.Group < 0 {
				if !cellsMatch(aspec.Op, got.All, want.All) {
					t.Fatalf("query %d %v: cell %+v, oracle %+v", q, aspec, got.All, want.All)
				}
				continue
			}
			gk, wk := got.GroupKeys(), want.GroupKeys()
			if len(gk) != len(wk) {
				t.Fatalf("query %d %v: %d groups, oracle %d", q, aspec, len(gk), len(wk))
			}
			for i, k := range gk {
				if k != wk[i] || !cellsMatch(aspec.Op, *got.Groups[k], *want.Groups[k]) {
					t.Fatalf("query %d %v group %v: cell %+v, oracle %+v", q, aspec, k, got.Groups[k], want.Groups[k])
				}
			}
		}
	}
}

// Mutations through the router must keep the cluster equivalent to an
// oracle receiving the same mutations — including a cross-shard update
// and the engine's logical error types surviving the network.
func TestClusterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	table := testTable(rng, 3000)
	tc := startCluster(t, table, 8, 3, 2)

	version0 := tc.router.ShardVersion(0)
	var inserted [][]float64
	for i := 0; i < 50; i++ {
		row := []float64{rng.Float64() * 1000, rng.Float64() * 2100, math.Round(rng.Float64() * 100), float64(rng.Intn(8))}
		if err := tc.router.Insert(row); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if err := tc.oracle.Insert(row); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, row)
	}
	for i := 0; i < 20; i++ {
		row := table.Row(rng.Intn(table.Len()))
		rowCopy := append([]float64(nil), row...)
		if err := tc.router.Delete(rowCopy); err != nil && !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("delete %d: %v", i, err)
		} else if err2 := tc.oracle.Delete(rowCopy); (err == nil) != (err2 == nil) {
			t.Fatalf("delete %d: cluster err %v, oracle err %v", i, err, err2)
		}
	}
	// Cross-shard update: the old and new rows almost surely hash apart.
	old := inserted[0]
	new1 := []float64{old[0] + 1, old[1] + 1, old[2], old[3]}
	if err := tc.router.Update(old, new1); err != nil {
		t.Fatalf("update: %v", err)
	}
	if err := tc.oracle.Update(old, new1); err != nil {
		t.Fatal(err)
	}

	// Logical errors round-trip the wire with their types intact.
	if err := tc.router.Delete([]float64{-1, -2, -3, -4}); !errors.Is(err, core.ErrNotFound) {
		t.Errorf("deleting a missing row: got %v, want core.ErrNotFound", err)
	}
	if err := tc.router.Insert([]float64{1, 2}); err == nil {
		t.Error("short row accepted")
	}
	if err := tc.router.Insert([]float64{math.NaN(), 1, 2, 3}); err == nil {
		t.Error("NaN row accepted")
	}

	bumped := false
	for g := 0; g < tc.router.NumShards(); g++ {
		if tc.router.ShardVersion(g) > 0 {
			bumped = true
		}
	}
	_ = version0
	if !bumped {
		t.Error("no shard version bumped by mutations")
	}

	for q := 0; q < 15; q++ {
		r := workload.RandRect(rng, tc.table)
		got, _ := collectRouter(t, tc.router, r, index.Spec{})
		want := collectOracle(tc.oracle, r, index.Spec{})
		sortRows(got)
		sortRows(want)
		if !rowsEqual(got, want) {
			t.Fatalf("after mutations, query %d: cluster %d rows, oracle %d", q, len(got), len(want))
		}
	}
}

// Killing a node mid-test must not change any answer: every shard fails
// over to its surviving replica.
func TestClusterFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tc := startCluster(t, testTable(rng, 4000), 16, 3, 2)

	// Warm queries against the full cluster first.
	r := workload.RandRect(rng, tc.table)
	collectRouter(t, tc.router, r, index.Spec{})

	tc.nodes[tc.addrs[0]].Close()

	for q := 0; q < 15; q++ {
		r := workload.RandRect(rng, tc.table)
		got, complete := collectRouter(t, tc.router, r, index.Spec{})
		want := collectOracle(tc.oracle, r, index.Spec{})
		if !complete {
			t.Fatalf("query %d incomplete after failover", q)
		}
		sortRows(got)
		sortRows(want)
		if !rowsEqual(got, want) {
			t.Fatalf("query %d after node kill: cluster %d rows, oracle %d", q, len(got), len(want))
		}
	}

	// Aggregates fail over too.
	st, complete, err := tc.router.ExecAgg(index.Rect{
		Min: []float64{math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)},
		Max: []float64{math.Inf(1), math.Inf(1), math.Inf(1), math.Inf(1)},
	}, index.Spec{}, index.AggSpec{Op: index.AggCount, Col: -1, Group: -1})
	if err != nil || !complete {
		t.Fatalf("agg after node kill: complete=%v err=%v", complete, err)
	}
	if st.All.Count != int64(tc.oracle.Len()) {
		t.Errorf("agg count after node kill: %d, oracle %d", st.All.Count, tc.oracle.Len())
	}
}

// With every replica shedding, the router surfaces an OverloadError
// carrying the maximum Retry-After across replicas; with only one node
// shedding (rf=2), queries keep succeeding on the other replica.
func TestClusterOverloadPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	tc := startCluster(t, testTable(rng, 3000), 8, 2, 2)
	r := workload.RandRect(rng, tc.table)

	tc.nodes[tc.addrs[0]].SetDraining(100 * time.Millisecond)
	if _, complete := collectRouter(t, tc.router, r, index.Spec{}); !complete {
		t.Fatal("query incomplete with one replica draining")
	}

	tc.nodes[tc.addrs[1]].SetDraining(250 * time.Millisecond)
	_, err := tc.router.Exec(r, index.Spec{}, func([]float64) bool { return true })
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want *OverloadError", err)
	}
	if oe.RetryAfter != 250*time.Millisecond {
		t.Errorf("RetryAfter = %s, want the max across replicas (250ms)", oe.RetryAfter)
	}

	// Mutations shed the same way.
	err = tc.router.Insert([]float64{1, 2, 3, 4})
	if !errors.As(err, &oe) {
		t.Fatalf("insert under full overload: got %v, want *OverloadError", err)
	}

	tc.nodes[tc.addrs[0]].SetDraining(0)
	tc.nodes[tc.addrs[1]].SetDraining(0)
	if _, complete := collectRouter(t, tc.router, r, index.Spec{}); !complete {
		t.Fatal("query incomplete after draining lifted")
	}
}

// An injected straggler must not hold queries hostage when hedging is on:
// the backup replica answers while the slow node sleeps.
func TestClusterHedging(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	tc := startCluster(t, testTable(rng, 3000), 8, 2, 2, WithHedgeDelay(10*time.Millisecond))
	r := workload.RandRect(rng, tc.table)
	want := collectOracle(tc.oracle, r, index.Spec{})

	tc.nodes[tc.addrs[0]].SetDelay(3 * time.Second)
	start := time.Now()
	got, complete := collectRouter(t, tc.router, r, index.Spec{})
	elapsed := time.Since(start)
	if !complete {
		t.Fatal("hedged query incomplete")
	}
	sortRows(got)
	sortRows(want)
	if !rowsEqual(got, want) {
		t.Fatalf("hedged query: %d rows, oracle %d", len(got), len(want))
	}
	if elapsed > 2*time.Second {
		t.Errorf("hedged query took %s; the straggler (3s) was not hedged around", elapsed)
	}
	tc.nodes[tc.addrs[0]].SetDelay(0)
}

// Stats must count every logical row exactly once despite replication.
func TestClusterStats(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	table := testTable(rng, 2500)
	tc := startCluster(t, table, 8, 3, 2)
	st := tc.router.Stats()
	if st.Rows != int64(table.Len()) {
		t.Errorf("stats rows %d, want %d", st.Rows, table.Len())
	}
	if st.Unanswered != 0 {
		t.Errorf("%d shards unanswered", st.Unanswered)
	}
	if len(st.Nodes) != 3 {
		t.Errorf("%d nodes in stats, want 3", len(st.Nodes))
	}
}
