package cluster

import (
	"sync"
	"time"

	"github.com/coax-index/coax/internal/obs"
)

// breaker is a per-node circuit breaker. Consecutive transport failures
// open it; while open, the router plans around the node (shards fail over
// to their surviving replicas without waiting for a dial timeout). After
// the cooldown one probe request is let through — a success closes the
// breaker, another failure re-opens it for a fresh cooldown.
//
// Only transport and protocol failures count: an Error frame from a
// healthy node (overload, row not found) proves the node is reachable and
// resets the streak.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injected in tests

	fails     int
	openUntil time.Time
	probing   bool // a half-open probe is in flight
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 2 * time.Second
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may be sent to the node. While open it
// admits exactly one half-open probe per cooldown window.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// success records a request the node answered (even with a logical error).
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure; reaching the threshold opens the
// breaker for one cooldown.
func (b *breaker) failure() {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		wasOpen := b.now().Before(b.openUntil)
		b.openUntil = b.now().Add(b.cooldown)
		if !wasOpen {
			obs.ClusterBreakerOpen.Inc()
		}
	}
	b.mu.Unlock()
}

// open reports whether the breaker is currently rejecting requests.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && b.now().Before(b.openUntil)
}
