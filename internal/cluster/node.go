package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/wire"
)

// nodeChunkRows is how many rows a node accumulates per RowChunk frame.
const nodeChunkRows = 512

// Node hosts a subset of the cluster's global shards — each materialized
// as one local shard.Sharded — behind the wire protocol. One Node serves
// any number of router connections; every request runs in its own
// goroutine and writes frame-atomically onto its connection, so a slow
// stream never blocks a Cancel from being read.
type Node struct {
	dims    int
	gshards int // K, the cluster-wide global shard count
	shards  map[int]*shard.Sharded
	hosted  []int // sorted keys of shards

	// adm, when non-nil, bounds concurrent requests exactly like the HTTP
	// serving tier; rejected requests answer an Overloaded error frame.
	adm *serve.Admission

	// delay is an injected per-request straggler latency (clusterbench's
	// slow-replica knob); draining, when > 0, rejects every request with
	// an Overloaded error carrying that many milliseconds of Retry-After
	// (a deterministic overload for tests and rolling restarts).
	delay    atomic.Int64
	draining atomic.Int64

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed atomic.Bool
	wg     sync.WaitGroup
}

// NodeOption configures a Node.
type NodeOption func(*Node)

// WithAdmission bounds the node's concurrent requests; nil disables.
func WithAdmission(adm *serve.Admission) NodeOption {
	return func(n *Node) { n.adm = adm }
}

// NewNode wraps the hosted global shards (global shard id → local engine).
// All engines must share one dimensionality, every id must be in
// [0, globalShards), and at least one shard must be hosted.
func NewNode(shards map[int]*shard.Sharded, globalShards int, opts ...NodeOption) (*Node, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: node hosts no shards")
	}
	n := &Node{
		gshards: globalShards,
		shards:  shards,
		conns:   make(map[net.Conn]struct{}),
	}
	for g, s := range shards {
		if g < 0 || g >= globalShards {
			return nil, fmt.Errorf("cluster: hosted shard %d out of range [0,%d)", g, globalShards)
		}
		if s == nil {
			return nil, fmt.Errorf("cluster: hosted shard %d has no engine", g)
		}
		if n.dims == 0 {
			n.dims = s.Dims()
		} else if s.Dims() != n.dims {
			return nil, fmt.Errorf("cluster: shard %d has %d dims, node has %d", g, s.Dims(), n.dims)
		}
		n.hosted = append(n.hosted, g)
	}
	sort.Ints(n.hosted)
	for _, o := range opts {
		o(n)
	}
	return n, nil
}

// SetDelay injects an artificial latency before every request — the
// straggler knob clusterbench uses to demonstrate hedged reads.
func (n *Node) SetDelay(d time.Duration) { n.delay.Store(int64(d)) }

// SetDraining makes the node reject every request with an Overloaded
// error carrying retryAfter; zero resumes serving.
func (n *Node) SetDraining(retryAfter time.Duration) {
	n.draining.Store(retryAfter.Milliseconds())
}

// Rows reports the node's total live rows across hosted shards.
func (n *Node) Rows() int64 {
	var total int64
	for _, g := range n.hosted {
		total += int64(n.shards[g].Len())
	}
	return total
}

// Serve accepts router connections on ln until Close. It always returns a
// non-nil error (net.ErrClosed after a clean Close).
func (n *Node) Serve(ln net.Listener) error {
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if n.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		n.mu.Lock()
		if n.closed.Load() {
			n.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		n.conns[c] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, c)
				n.mu.Unlock()
				c.Close()
			}()
			n.serveConn(c)
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for
// in-flight request goroutines to drain.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	n.mu.Lock()
	ln := n.ln
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	n.wg.Wait()
	return err
}

// connState is the per-connection request registry: Cancel frames and a
// dropped connection raise the stop flag of the requests they target.
type connState struct {
	mu    sync.Mutex
	stops map[uint64]*atomic.Bool
}

func (cs *connState) register(id uint64) *atomic.Bool {
	stop := &atomic.Bool{}
	cs.mu.Lock()
	cs.stops[id] = stop
	cs.mu.Unlock()
	return stop
}

func (cs *connState) unregister(id uint64) {
	cs.mu.Lock()
	delete(cs.stops, id)
	cs.mu.Unlock()
}

func (cs *connState) cancel(id uint64) {
	cs.mu.Lock()
	if stop := cs.stops[id]; stop != nil {
		stop.Store(true)
		obs.NodeCancelled.Inc()
	}
	cs.mu.Unlock()
}

func (cs *connState) cancelAll() {
	cs.mu.Lock()
	for _, stop := range cs.stops {
		stop.Store(true)
	}
	cs.mu.Unlock()
}

// serveConn drives one router connection: handshake, then a read loop
// that dispatches each request to its own goroutine. The loop returns on
// any read error; in-flight requests are stopped and awaited so their
// writes never race a closing connection.
func (n *Node) serveConn(raw net.Conn) {
	c := wire.NewConn(raw)
	if err := wire.ServerHandshake(c, n.dims, n.gshards, n.Rows()); err != nil {
		return
	}
	cs := &connState{stops: make(map[uint64]*atomic.Bool)}
	var reqs sync.WaitGroup
	defer func() {
		cs.cancelAll()
		reqs.Wait()
	}()
	for {
		m, err := c.Recv()
		if err != nil {
			return // clean EOF, dropped conn, or garbage: either way the conn is done
		}
		switch req := m.(type) {
		case *wire.Cancel:
			cs.cancel(req.ID)
			continue
		case *wire.Ping:
			c.Send(&wire.Pong{ID: req.ID})
			continue
		}
		id, ok := requestID(m)
		if !ok {
			c.Send(&wire.Error{Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unexpected %T frame", m)})
			return
		}
		obs.NodeRequests.Inc()
		if ra := n.draining.Load(); ra > 0 {
			obs.NodeShed.Inc()
			c.Send(&wire.Error{ID: id, Code: wire.CodeOverloaded, RetryAfterMillis: ra, Msg: "node draining"})
			continue
		}
		if n.adm != nil {
			if err := n.adm.Acquire(context.Background()); err != nil {
				obs.NodeShed.Inc()
				c.Send(&wire.Error{ID: id, Code: wire.CodeOverloaded,
					RetryAfterMillis: n.adm.RetryAfter().Milliseconds(), Msg: "node overloaded"})
				continue
			}
		}
		stop := cs.register(id)
		reqs.Add(1)
		go func(m wire.Message) {
			defer reqs.Done()
			defer cs.unregister(id)
			if n.adm != nil {
				defer n.adm.Release()
			}
			n.sleepDelay(stop)
			switch req := m.(type) {
			case *wire.Query:
				n.handleQuery(c, req, stop)
			case *wire.Agg:
				n.handleAgg(c, req, stop)
			case *wire.Mutate:
				n.handleMutate(c, req)
			case *wire.Stats:
				n.handleStats(c, req)
			}
		}(m)
	}
}

// requestID extracts the request id of a dispatchable frame.
func requestID(m wire.Message) (uint64, bool) {
	switch req := m.(type) {
	case *wire.Query:
		return req.ID, true
	case *wire.Agg:
		return req.ID, true
	case *wire.Mutate:
		return req.ID, true
	case *wire.Stats:
		return req.ID, true
	}
	return 0, false
}

// sleepDelay applies the injected straggler latency, waking early if the
// request is cancelled meanwhile.
func (n *Node) sleepDelay(stop *atomic.Bool) {
	d := time.Duration(n.delay.Load())
	if d <= 0 {
		return
	}
	const step = time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if stop.Load() {
			return
		}
		time.Sleep(min(step, d-waited))
	}
}

// engineFor resolves a requested global shard, answering BadShard when the
// node does not host it (a stale router placement).
func (n *Node) engineFor(c *wire.Conn, id uint64, g int) *shard.Sharded {
	if s := n.shards[g]; s != nil {
		return s
	}
	c.Send(&wire.Error{ID: id, Code: wire.CodeBadShard, Msg: fmt.Sprintf("shard %d not hosted", g)})
	return nil
}

// handleQuery streams each requested shard's matching rows as RowChunk
// frames, one ShardEOF per shard, and a final Done. The per-request stop
// flag rides into every local scan as its abort hook, so a Cancel frame
// stops remote work within about one page — the cluster-level mirror of
// the in-process contract.
func (n *Node) handleQuery(c *wire.Conn, q *wire.Query, stop *atomic.Bool) {
	r := index.Rect{Min: q.Min, Max: q.Max}
	if len(q.Min) != n.dims || len(q.Max) != n.dims {
		c.Send(&wire.Error{ID: q.ID, Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("rect has %d/%d dims, node has %d", len(q.Min), len(q.Max), n.dims)})
		return
	}
	complete := true
	chunk := make([]float64, 0, nodeChunkRows*n.dims)
	for _, g := range q.Shards {
		s := n.engineFor(c, q.ID, g)
		if s == nil {
			return
		}
		if stop.Load() {
			complete = false
			break
		}
		var rows int64
		spec := index.Spec{Limit: int(q.Limit), Abort: stop.Load}
		shardComplete := s.Exec(r, spec, func(row []float64) bool {
			chunk = append(chunk, row...)
			rows++
			if len(chunk) >= nodeChunkRows*n.dims {
				if err := c.Send(&wire.RowChunk{ID: q.ID, Shard: g, Rows: chunk}); err != nil {
					stop.Store(true)
					return false
				}
				chunk = chunk[:0]
			}
			return q.Limit <= 0 || rows < q.Limit
		}, nil)
		if len(chunk) > 0 {
			if err := c.Send(&wire.RowChunk{ID: q.ID, Shard: g, Rows: chunk}); err != nil {
				return
			}
			chunk = chunk[:0]
		}
		// A scan the limit stopped is still complete for the router's
		// purposes — it has every row it asked this shard for.
		limited := q.Limit > 0 && rows >= q.Limit
		shardComplete = shardComplete || limited
		if err := c.Send(&wire.ShardEOF{ID: q.ID, Shard: g, Rows: rows, Complete: shardComplete}); err != nil {
			return
		}
		complete = complete && shardComplete
	}
	c.Send(&wire.Done{ID: q.ID, Complete: complete && !stop.Load()})
}

// handleAgg folds each requested shard into one AggPart partial. Partials
// are exact per shard; the router merges them in global shard order, so
// repeated distributed executions are bit-identical to each other.
func (n *Node) handleAgg(c *wire.Conn, q *wire.Agg, stop *atomic.Bool) {
	r := index.Rect{Min: q.Min, Max: q.Max}
	if len(q.Min) != n.dims || len(q.Max) != n.dims {
		c.Send(&wire.Error{ID: q.ID, Code: wire.CodeBadRequest,
			Msg: fmt.Sprintf("rect has %d/%d dims, node has %d", len(q.Min), len(q.Max), n.dims)})
		return
	}
	aspec := index.AggSpec{Op: index.AggOp(q.Op), Col: q.Col, Group: q.Group}
	if err := aspec.Validate(n.dims); err != nil {
		c.Send(&wire.Error{ID: q.ID, Code: wire.CodeBadRequest, Msg: err.Error()})
		return
	}
	complete := true
	for _, g := range q.Shards {
		s := n.engineFor(c, q.ID, g)
		if s == nil {
			return
		}
		if stop.Load() {
			complete = false
			break
		}
		st, ok := s.ExecAgg(r, index.Spec{Abort: stop.Load}, aspec, nil)
		if err := c.Send(partFromState(q.ID, g, st, ok)); err != nil {
			return
		}
		complete = complete && ok
	}
	c.Send(&wire.Done{ID: q.ID, Complete: complete && !stop.Load()})
}

// partFromState flattens one shard's AggState into its wire partial:
// grouped states emit one cell per key in ascending key order (the
// deterministic order AggState.GroupKeys defines).
func partFromState(id uint64, g int, st *index.AggState, complete bool) *wire.AggPart {
	part := &wire.AggPart{ID: id, Shard: g, Grouped: st.Spec.Group >= 0, Complete: complete}
	if !part.Grouped {
		if st.All.Count > 0 {
			part.Cells = []wire.AggCell{{Count: st.All.Count, Sum: st.All.Sum, Min: st.All.Min, Max: st.All.Max}}
		}
		return part
	}
	for _, k := range st.GroupKeys() {
		cell := st.Groups[k]
		part.Cells = append(part.Cells, wire.AggCell{Key: k, Count: cell.Count, Sum: cell.Sum, Min: cell.Min, Max: cell.Max})
	}
	return part
}

// stateFromPart inverts partFromState on the router side.
func stateFromPart(spec index.AggSpec, p *wire.AggPart) *index.AggState {
	st := index.NewAggState(spec)
	if !p.Grouped {
		if len(p.Cells) > 0 {
			c := p.Cells[0]
			st.All = index.AggCell{Count: c.Count, Sum: c.Sum, Min: c.Min, Max: c.Max}
		}
		return st
	}
	for _, c := range p.Cells {
		st.Groups[c.Key] = &index.AggCell{Count: c.Count, Sum: c.Sum, Min: c.Min, Max: c.Max}
	}
	return st
}

// handleMutate applies one mutation to a hosted shard and acks with the
// node's live row count. Logical failures map to their own error codes so
// the router can translate them back into the engine's error types.
func (n *Node) handleMutate(c *wire.Conn, q *wire.Mutate) {
	s := n.engineFor(c, q.ID, q.Shard)
	if s == nil {
		return
	}
	var err error
	switch q.Op {
	case wire.MutInsert:
		err = s.Insert(q.Row)
	case wire.MutDelete:
		err = s.Delete(q.Row)
	case wire.MutUpdate:
		err = s.Update(q.Row, q.New)
	default:
		c.Send(&wire.Error{ID: q.ID, Code: wire.CodeBadRequest, Msg: fmt.Sprintf("unknown mutation op %d", q.Op)})
		return
	}
	if err != nil {
		c.Send(&wire.Error{ID: q.ID, Code: mutationCode(err), Msg: err.Error()})
		return
	}
	c.Send(&wire.MutAck{ID: q.ID, Rows: n.Rows()})
}

func mutationCode(err error) uint8 {
	var re *lifecycle.RowError
	switch {
	case errors.As(err, &re):
		return wire.CodeBadRow
	case errors.Is(err, core.ErrNotFound):
		return wire.CodeNotFound
	}
	return wire.CodeInternal
}

// handleStats reports the node's shape.
func (n *Node) handleStats(c *wire.Conn, q *wire.Stats) {
	res := &wire.StatsRes{ID: q.ID, Rows: n.Rows(), Hosted: append([]int(nil), n.hosted...)}
	for _, g := range res.Hosted {
		res.ShardRows = append(res.ShardRows, int64(n.shards[g].Len()))
	}
	c.Send(res)
}
