package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/wire"
)

// OverloadError reports that a request could not be served because every
// replica that could answer it is shedding load; RetryAfter is the largest
// hint any replica returned (the earliest time the whole request can
// succeed). The HTTP layer maps it to 429 + Retry-After.
type OverloadError struct {
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("cluster: all replicas overloaded, retry after %s", e.RetryAfter)
}

// Router scatter-gathers queries across the cluster's nodes. It mirrors
// the in-process fan-out of shard.Sharded.Exec — one shared stop signal,
// a context watcher, rows streamed to the caller as shards complete — and
// adds the failure modes a network introduces: per-node circuit breakers,
// failover to surviving replicas, and hedged reads that launch a shard's
// backup replica once its request has been outstanding longer than the
// node's observed p99.
//
// Rows are delivered to the yield only when their shard's stream
// completed (per-shard commit), so a node dying mid-stream never delivers
// a row twice: its shards are re-fetched from another replica from
// scratch and only one attempt's rows are ever handed over.
type Router struct {
	dims   int
	shards int // K global shards
	rf     int
	ring   *Ring

	clients  map[string]*client
	order    []string   // node addresses, construction order
	replicas [][]string // precomputed Replicas(g, rf) per global shard

	hedgeOff   bool
	hedgeDelay time.Duration // static override; 0 = adaptive per-node p99

	// vers are router-local per-global-shard mutation versions backing
	// serve.Invalidator. They are sound while every mutation flows through
	// this router — the deployment shape cmd/coaxserve sets up.
	vers []atomic.Uint64

	nextAttempt atomic.Uint64
}

// RouterOption configures a Router.
type RouterOption func(*Router)

// WithHedging disables (false) or enables (true, the default) hedged
// replica reads.
func WithHedging(on bool) RouterOption {
	return func(rt *Router) { rt.hedgeOff = !on }
}

// WithHedgeDelay pins the hedge delay instead of adapting to each node's
// observed p99 (useful for benchmarks that want a fixed policy).
func WithHedgeDelay(d time.Duration) RouterOption {
	return func(rt *Router) { rt.hedgeDelay = d }
}

// NewRouter connects to the given node addresses and validates that they
// agree with this router's shape (dimensionality, global shard count K,
// replication factor rf). Placement is consistent hashing over the
// addresses, so routers built from the same address set plan identically.
func NewRouter(addrs []string, shards, rf int, opts ...RouterOption) (*Router, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: router needs a positive global shard count")
	}
	if rf <= 0 {
		rf = 1
	}
	ring, err := NewRing(addrs, 0)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		shards:  shards,
		rf:      rf,
		ring:    ring,
		clients: make(map[string]*client, len(addrs)),
		order:   append([]string(nil), addrs...),
		vers:    make([]atomic.Uint64, shards),
	}
	for _, o := range opts {
		o(rt)
	}
	rt.replicas = ring.Placement(shards, rf)
	for _, a := range addrs {
		rt.clients[a] = newClient(a)
	}
	// One stats round-trip per node validates reachability and shape.
	for _, a := range addrs {
		cl := rt.clients[a]
		if _, err := cl.call(&wire.Stats{ID: cl.id()}); err != nil {
			rt.Close()
			return nil, fmt.Errorf("cluster: node %s: %w", a, err)
		}
		cl.mu.Lock()
		w := cl.welcome
		cl.mu.Unlock()
		if w.Shards != shards {
			rt.Close()
			return nil, fmt.Errorf("cluster: node %s built for %d global shards, router expects %d", a, w.Shards, shards)
		}
		if rt.dims == 0 {
			rt.dims = w.Dims
		} else if w.Dims != rt.dims {
			rt.Close()
			return nil, fmt.Errorf("cluster: node %s serves %d dims, cluster has %d", a, w.Dims, rt.dims)
		}
	}
	return rt, nil
}

// Close releases every node connection.
func (rt *Router) Close() {
	for _, cl := range rt.clients {
		cl.close()
	}
}

// Dims reports the cluster's row dimensionality.
func (rt *Router) Dims() int { return rt.dims }

// NumShards implements serve.Invalidator: the global shard count.
func (rt *Router) NumShards() int { return rt.shards }

// ShardVersion implements serve.Invalidator with the router-local
// mutation counters.
func (rt *Router) ShardVersion(i int) uint64 { return rt.vers[i].Load() }

// ShardSpan implements serve.Invalidator. Global shards are
// hash-partitioned, so no rectangle prunes: every query spans all of them.
func (rt *Router) ShardSpan(index.Rect) (lo, hi int) { return 0, rt.shards - 1 }

// --- scatter-gather execution ---

type eventKind int

const (
	evChunk eventKind = iota
	evEOF
	evPart
	evReqDone
	evHedge
)

type event struct {
	kind     eventKind
	attempt  uint64
	shard    int
	rows     []float64
	part     *wire.AggPart
	complete bool
	err      error
}

// attempt is one in-flight RPC to one node covering a set of shards.
type attempt struct {
	node   string
	shards map[int]bool // shards without an EOF/part yet
	hedged bool         // secondary read (hedge or failover)
	timer  *time.Timer  // hedge timer, primaries only
}

// shardState is the merge loop's per-global-shard bookkeeping.
type shardState struct {
	delivered bool
	failed    bool
	next      int                  // next replica index to try
	bufs      map[uint64][]float64 // per-attempt row accumulation (query mode)
}

// Exec scatter-gathers one rectangle query across the cluster under the
// v2 contract (see shard.Sharded.Exec): rows stream to yield on the
// calling goroutine, yield's return value stops every remote scan via
// cancel frames, spec.Ctx cancels promptly, and spec.Limit both caps
// delivery and lets each node stop its shards after Limit local matches.
// Rows handed to yield are stable copies. It reports whether the scan ran
// to completion, and a non-nil error when at least one global shard could
// not be answered by any replica (rows already yielded are a valid subset
// of the result).
func (rt *Router) Exec(r index.Rect, spec index.Spec, yield index.Yield) (bool, error) {
	track := obs.On()
	var start time.Time
	if track {
		start = time.Now()
		obs.Queries.Inc()
	}
	delivered := 0
	complete, err := rt.scatter(r, &spec, false, index.AggSpec{}, func(rows []float64, stopped *bool) {
		for off := 0; off+rt.dims <= len(rows); off += rt.dims {
			if spec.Limit > 0 && delivered >= spec.Limit {
				*stopped = true
				return
			}
			if !yield(rows[off : off+rt.dims : off+rt.dims]) {
				*stopped = true
				return
			}
			delivered++
		}
	}, nil)
	if track {
		obs.QuerySeconds.Observe(time.Since(start).Seconds())
		obs.QueryRows.Add(int64(delivered))
		switch {
		case spec.Done():
			obs.QueryCancelled.Inc()
		case !complete:
			obs.EarlyStops.Inc()
		}
	}
	return complete, err
}

// ExecAgg scatter-gathers one aggregation: each node folds its shards
// into exact partials, and the router merges them in global shard order —
// the same merge discipline as the in-process fan-out, so repeated
// executions are bit-identical. Against a single-process engine,
// COUNT/MIN/MAX agree exactly; SUM/AVG agree to within floating-point
// reassociation error, because the cluster partitions rows differently.
func (rt *Router) ExecAgg(r index.Rect, spec index.Spec, aspec index.AggSpec) (*index.AggState, bool, error) {
	if err := aspec.Validate(rt.dims); err != nil {
		return nil, false, err
	}
	track := obs.On()
	var start time.Time
	if track {
		start = time.Now()
		obs.Queries.Inc()
		obs.AggQueries.Inc()
	}
	parts := make([]*wire.AggPart, rt.shards)
	complete, err := rt.scatter(r, &spec, true, aspec, nil, func(p *wire.AggPart) {
		parts[p.Shard] = p
	})
	st := index.NewAggState(aspec)
	for _, p := range parts {
		if p != nil {
			st.Merge(stateFromPart(aspec, p))
		}
	}
	if track {
		obs.QuerySeconds.Observe(time.Since(start).Seconds())
		if spec.Done() {
			obs.QueryCancelled.Inc()
		}
	}
	return st, complete, err
}

// scatter is the shared merge loop behind Exec and ExecAgg. deliverRows
// (query mode) receives one shard's complete row set and may raise
// *stopped to halt the fan-out; deliverPart (agg mode) receives one
// shard's complete partial.
func (rt *Router) scatter(r index.Rect, spec *index.Spec, agg bool, aspec index.AggSpec, deliverRows func([]float64, *bool), deliverPart func(*wire.AggPart)) (bool, error) {
	events := make(chan event, 64)
	loopDone := make(chan struct{})
	defer close(loopDone)
	post := func(ev event) {
		select {
		case events <- ev:
		case <-loopDone:
		}
	}

	// stopCh is the cluster-wide stop signal — the remote analogue of the
	// in-process atomic stop flag. Closing it makes every in-flight RPC
	// send a Cancel frame; the context watcher below closes it the moment
	// the context is done, exactly like shard.Exec's watcher goroutine.
	stopCh := make(chan struct{})
	var stopOnce sync.Once
	raiseStop := func() { stopOnce.Do(func() { close(stopCh) }) }
	defer raiseStop()
	if spec.Ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-spec.Ctx.Done():
				raiseStop()
			case <-watchDone:
			}
		}()
	}

	states := make([]shardState, rt.shards)
	for g := range states {
		states[g].bufs = make(map[uint64][]float64)
	}
	attempts := make(map[uint64]*attempt)
	outstanding := 0
	remaining := rt.shards

	limit := int64(0)
	if !agg && spec.Limit > 0 {
		limit = int64(spec.Limit)
	}

	launch := func(node string, shards []int, hedged bool) {
		cl := rt.clients[node]
		attID := rt.nextAttempt.Add(1)
		att := &attempt{node: node, shards: make(map[int]bool, len(shards)), hedged: hedged}
		for _, g := range shards {
			att.shards[g] = true
		}
		attempts[attID] = att
		outstanding++
		if !hedged && !rt.hedgeOff && rt.rf > 1 && len(rt.order) > 1 {
			d := rt.hedgeDelay
			if d <= 0 {
				d = cl.lat.hedgeDelay()
			}
			att.timer = time.AfterFunc(d, func() { post(event{kind: evHedge, attempt: attID}) })
		}
		id := cl.id()
		var req wire.Message
		if agg {
			req = &wire.Agg{ID: id, Shards: shards, Min: r.Min, Max: r.Max,
				Op: uint8(aspec.Op), Col: aspec.Col, Group: aspec.Group}
		} else {
			req = &wire.Query{ID: id, Shards: shards, Min: r.Min, Max: r.Max, Limit: limit}
		}
		go func() {
			complete, err := cl.stream(req, stopCh,
				func(f *wire.RowChunk) { post(event{kind: evChunk, attempt: attID, shard: f.Shard, rows: f.Rows}) },
				func(f *wire.ShardEOF) { post(event{kind: evEOF, attempt: attID, shard: f.Shard, complete: f.Complete}) },
				func(f *wire.AggPart) {
					post(event{kind: evPart, attempt: attID, shard: f.Shard, part: f, complete: f.Complete})
				})
			post(event{kind: evReqDone, attempt: attID, complete: complete, err: err})
		}()
	}

	// planNext groups undelivered shards by the node that should serve
	// them next: each shard's next untried replica (st.next is the 0-based
	// index of it), preferring replicas whose breaker is closed. Replicas
	// skipped for an open breaker count as tried — a failover walks
	// forward, never back.
	planNext := func(shards []int) map[string][]int {
		plan := make(map[string][]int)
		for _, g := range shards {
			st := &states[g]
			reps := rt.replicas[g]
			chosen := -1
			for i := st.next; i < len(reps); i++ {
				if !rt.clients[reps[i]].breaker.open() {
					chosen = i
					break
				}
			}
			if chosen < 0 {
				// Every remaining replica's breaker is open: try the next
				// one anyway (it may half-open) rather than failing fast.
				chosen = st.next
				if chosen >= len(reps) {
					continue // exhausted; caller handles failure
				}
			}
			st.next = chosen + 1
			plan[reps[chosen]] = append(plan[reps[chosen]], g)
		}
		return plan
	}

	// Initial plan: every shard on its first live replica.
	{
		plan := make(map[string][]int)
		for g := 0; g < rt.shards; g++ {
			st := &states[g]
			reps := rt.replicas[g]
			chosen := 0
			for i, n := range reps {
				if !rt.clients[n].breaker.open() {
					chosen = i
					break
				}
			}
			st.next = chosen + 1
			plan[reps[chosen]] = append(plan[reps[chosen]], g)
		}
		for node, shards := range plan {
			sort.Ints(shards)
			launch(node, shards, false)
		}
	}

	stopped := false  // user-visible early stop: limit met or yield declined
	var failErr error // first non-overload shard failure
	failedOverload := 0
	failedOther := 0
	var maxRetryAfter time.Duration

	finishShard := func(st *shardState) {
		st.delivered = true
		st.bufs = nil
		remaining--
		if remaining == 0 {
			raiseStop() // everything answered; reel in duplicate attempts
		}
	}

	failShard := func(g int, st *shardState, err error) {
		st.failed = true
		if oe, ok := err.(*overloadedError); ok {
			failedOverload++
			if oe.retryAfter > maxRetryAfter {
				maxRetryAfter = oe.retryAfter
			}
		} else {
			failedOther++
			if failErr == nil {
				if err == nil {
					err = fmt.Errorf("cluster: shard %d: stream ended without result", g)
				}
				failErr = fmt.Errorf("cluster: shard %d unavailable: %w", g, err)
			}
		}
		finishShard(st)
	}

	// retry re-plans a set of undelivered shards onto their next replicas
	// (failover); shards with no replicas left fail.
	retry := func(shards []int, cause error) {
		var live []int
		for _, g := range shards {
			st := &states[g]
			if st.delivered || st.failed {
				continue
			}
			if st.next >= len(rt.replicas[g]) {
				failShard(g, st, cause)
				continue
			}
			live = append(live, g)
		}
		if len(live) == 0 {
			return
		}
		plan := planNext(live)
		planned := make(map[int]bool)
		for node, shards := range plan {
			sort.Ints(shards)
			obs.ClusterFailovers.Add(int64(len(shards)))
			for _, g := range shards {
				planned[g] = true
			}
			launch(node, shards, true)
		}
		for _, g := range live {
			if !planned[g] {
				failShard(g, &states[g], cause)
			}
		}
	}

	for outstanding > 0 {
		ev := <-events
		switch ev.kind {
		case evChunk:
			st := &states[ev.shard]
			if st.delivered || st.failed {
				continue
			}
			st.bufs[ev.attempt] = append(st.bufs[ev.attempt], ev.rows...)

		case evEOF:
			att := attempts[ev.attempt]
			if att != nil {
				delete(att.shards, ev.shard)
			}
			st := &states[ev.shard]
			if st.delivered || st.failed {
				continue
			}
			rows := st.bufs[ev.attempt]
			delete(st.bufs, ev.attempt)
			if !ev.complete {
				// The node's scan stopped early. When we are stopping that
				// is expected — the shard is simply abandoned; otherwise
				// treat it as a failed attempt and fail over.
				if stopped || spec.Done() {
					finishShard(st)
				} else if att != nil {
					retry([]int{ev.shard}, fmt.Errorf("cluster: node %s returned an incomplete shard %d", att.node, ev.shard))
				}
				continue
			}
			if att != nil && att.hedged {
				obs.ClusterHedgeWins.Inc()
			}
			if deliverRows != nil && !stopped {
				deliverRows(rows, &stopped)
				if stopped {
					raiseStop()
				}
			}
			finishShard(st)

		case evPart:
			att := attempts[ev.attempt]
			if att != nil {
				delete(att.shards, ev.shard)
			}
			st := &states[ev.shard]
			if st.delivered || st.failed {
				continue
			}
			if !ev.complete {
				if stopped || spec.Done() {
					finishShard(st)
				} else if att != nil {
					retry([]int{ev.shard}, fmt.Errorf("cluster: node %s returned an incomplete partial for shard %d", att.node, ev.shard))
				}
				continue
			}
			if att != nil && att.hedged {
				obs.ClusterHedgeWins.Inc()
			}
			if deliverPart != nil {
				deliverPart(ev.part)
			}
			finishShard(st)

		case evReqDone:
			outstanding--
			att := attempts[ev.attempt]
			delete(attempts, ev.attempt)
			if att == nil {
				continue
			}
			if att.timer != nil {
				att.timer.Stop()
			}
			if len(att.shards) == 0 {
				continue
			}
			// The request ended with shards unanswered: a transport error,
			// a node-side Error frame, or a Done that skipped shards.
			pending := make([]int, 0, len(att.shards))
			for g := range att.shards {
				// Drop this attempt's partial buffers — its rows must never
				// mix with a retry's.
				if st := &states[g]; st.bufs != nil {
					delete(st.bufs, ev.attempt)
				}
				pending = append(pending, g)
			}
			sort.Ints(pending)
			if stopped || spec.Done() {
				for _, g := range pending {
					st := &states[g]
					if !st.delivered && !st.failed {
						finishShard(st)
					}
				}
				continue
			}
			retry(pending, ev.err)

		case evHedge:
			att := attempts[ev.attempt]
			if att == nil || stopped || spec.Done() || len(att.shards) == 0 {
				continue
			}
			var hedgeable []int
			for g := range att.shards {
				st := &states[g]
				if !st.delivered && !st.failed && st.next < len(rt.replicas[g]) {
					hedgeable = append(hedgeable, g)
				}
			}
			if len(hedgeable) == 0 {
				continue
			}
			sort.Ints(hedgeable)
			plan := planNext(hedgeable)
			for node, shards := range plan {
				sort.Ints(shards)
				obs.ClusterHedges.Inc()
				launch(node, shards, true)
			}
		}
	}

	cancelled := spec.Done()
	complete := !stopped && !cancelled && failedOverload == 0 && failedOther == 0 && remaining == 0
	if stopped || cancelled {
		return false, nil
	}
	if failedOther > 0 {
		return false, failErr
	}
	if failedOverload > 0 {
		return false, &OverloadError{RetryAfter: maxRetryAfter}
	}
	return complete, nil
}

// --- mutations ---

// Insert routes row to its global shard and writes it to every replica.
// The mutation succeeds when at least one replica acknowledged it.
func (rt *Router) Insert(row []float64) error {
	if err := lifecycle.ValidateRow(rt.dims, row); err != nil {
		return err
	}
	g := RouteRow(row, rt.shards)
	return rt.mutate(g, wire.MutInsert, row, nil)
}

// Delete removes row from every replica of its global shard.
func (rt *Router) Delete(row []float64) error {
	if err := lifecycle.ValidateRow(rt.dims, row); err != nil {
		return err
	}
	g := RouteRow(row, rt.shards)
	return rt.mutate(g, wire.MutDelete, row, nil)
}

// Update replaces old with new. When the rows hash to different global
// shards the update decomposes into delete + insert across the two
// replica sets, with a best-effort re-insert of the old row if the insert
// half fails.
func (rt *Router) Update(old, new []float64) error {
	if err := lifecycle.ValidateRow(rt.dims, old); err != nil {
		return err
	}
	if err := lifecycle.ValidateRow(rt.dims, new); err != nil {
		return err
	}
	g1, g2 := RouteRow(old, rt.shards), RouteRow(new, rt.shards)
	if g1 == g2 {
		return rt.mutate(g1, wire.MutUpdate, old, new)
	}
	if err := rt.mutate(g1, wire.MutDelete, old, nil); err != nil {
		return err
	}
	if err := rt.mutate(g2, wire.MutInsert, new, nil); err != nil {
		rt.mutate(g1, wire.MutInsert, old, nil) // best-effort rollback
		return err
	}
	return nil
}

// mutate writes one mutation to every replica of a global shard in
// parallel. Success requires at least one acknowledging replica; the
// router-local shard version bumps on success so cached reads invalidate.
func (rt *Router) mutate(g int, op uint8, row, newRow []float64) error {
	reps := rt.replicas[g]
	errs := make([]error, len(reps))
	var wg sync.WaitGroup
	for i, node := range reps {
		wg.Add(1)
		go func(i int, node string) {
			defer wg.Done()
			cl := rt.clients[node]
			m := &wire.Mutate{ID: cl.id(), Op: op, Shard: g, Row: row, New: newRow}
			_, errs[i] = cl.call(m)
		}(i, node)
	}
	wg.Wait()

	acked := 0
	var firstErr error
	allOverload := true
	var maxRetryAfter time.Duration
	for _, err := range errs {
		if err == nil {
			acked++
			continue
		}
		if oe, ok := err.(*overloadedError); ok {
			if oe.retryAfter > maxRetryAfter {
				maxRetryAfter = oe.retryAfter
			}
		} else {
			allOverload = false
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if acked > 0 {
		rt.vers[g].Add(1)
		return nil
	}
	if allOverload {
		return &OverloadError{RetryAfter: maxRetryAfter}
	}
	return engineError(firstErr)
}

// engineError translates a node's logical error back into the engine
// error types the serving layer already maps to HTTP statuses.
func engineError(err error) error {
	re, ok := err.(*remoteError)
	if !ok {
		return err
	}
	switch re.code {
	case wire.CodeNotFound:
		return fmt.Errorf("%w (via cluster)", core.ErrNotFound)
	case wire.CodeBadRow:
		return &lifecycle.RowError{Reason: re.msg + " (via cluster)"}
	}
	return err
}

// --- stats ---

// NodeStats is one node's view of itself.
type NodeStats struct {
	Addr   string  `json:"addr"`
	Rows   int64   `json:"rows"`
	Hosted []int   `json:"hosted_shards"`
	Err    string  `json:"error,omitempty"`
	P99Ms  float64 `json:"p99_ms"`
	Open   bool    `json:"breaker_open"`
}

// ClusterStats is the router's view of the cluster.
type ClusterStats struct {
	Rows       int64       `json:"rows"`
	Shards     int         `json:"global_shards"`
	Replicas   int         `json:"replication_factor"`
	Nodes      []NodeStats `json:"nodes"`
	ShardRows  []int64     `json:"shard_rows"`
	Unanswered int         `json:"unanswered_shards"`
}

// Stats polls every node and assembles the cluster shape. Each global
// shard's row count is taken from the first replica that answered, so the
// total counts every logical row exactly once regardless of rf.
func (rt *Router) Stats() ClusterStats {
	st := ClusterStats{Shards: rt.shards, Replicas: rt.rf, ShardRows: make([]int64, rt.shards)}
	perNode := make(map[string]map[int]int64, len(rt.order))
	for _, addr := range rt.order {
		cl := rt.clients[addr]
		ns := NodeStats{Addr: addr, Open: cl.breaker.open(), P99Ms: float64(cl.lat.p99()) / float64(time.Millisecond)}
		res, err := cl.call(&wire.Stats{ID: cl.id()})
		if err != nil {
			ns.Err = err.Error()
		} else if sr, ok := res.(*wire.StatsRes); ok {
			ns.Rows = sr.Rows
			ns.Hosted = sr.Hosted
			m := make(map[int]int64, len(sr.Hosted))
			for i, g := range sr.Hosted {
				if i < len(sr.ShardRows) {
					m[g] = sr.ShardRows[i]
				}
			}
			perNode[addr] = m
		}
		st.Nodes = append(st.Nodes, ns)
	}
	for g := 0; g < rt.shards; g++ {
		counted := false
		for _, node := range rt.replicas[g] {
			if m, ok := perNode[node]; ok {
				if rows, hosted := m[g]; hosted {
					st.ShardRows[g] = rows
					st.Rows += rows
					counted = true
					break
				}
			}
		}
		if !counted {
			st.Unanswered++
		}
	}
	return st
}
