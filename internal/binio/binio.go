// Package binio provides the little-endian binary primitives shared by the
// per-layer snapshot codecs (gridfile, rtree, model, softfd, dataset, core).
// A Writer appends into an in-memory buffer so section lengths and checksums
// can be computed before framing; a Reader parses a byte slice with strict
// bounds checking so corrupted or truncated input surfaces as an error from
// Err/Close, never as a panic or an oversized allocation.
package binio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer accumulates little-endian encoded values in memory.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded payload. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint32 appends a fixed-width 32-bit value.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a fixed-width 64-bit value.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Int appends a signed integer as a fixed-width 64-bit two's-complement
// value; the full int range round-trips.
func (w *Writer) Int(v int) { w.Uint64(uint64(int64(v))) }

// Int64 appends a signed 64-bit value.
func (w *Writer) Int64(v int64) { w.Uint64(uint64(v)) }

// Bool appends one byte: 0 or 1.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Float64 appends an IEEE-754 value bit pattern.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (w *Writer) String(s string) {
	w.Uint64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Float64s appends a length-prefixed float64 slice.
func (w *Writer) Float64s(vs []float64) {
	w.Uint64(uint64(len(vs)))
	for _, v := range vs {
		w.Float64(v)
	}
}

// Ints appends a length-prefixed int slice.
func (w *Writer) Ints(vs []int) {
	w.Uint64(uint64(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// Int64s appends a length-prefixed int64 slice.
func (w *Writer) Int64s(vs []int64) {
	w.Uint64(uint64(len(vs)))
	for _, v := range vs {
		w.Int64(v)
	}
}

// Align pads the buffer with zero bytes until its length is a multiple of
// n. Snapshot v3 page sections use it to place fixed-width regions on
// 64-byte boundaries so they can be aliased directly out of an mmap'd file.
func (w *Writer) Align(n int) {
	if n <= 1 {
		return
	}
	for len(w.buf)%n != 0 {
		w.buf = append(w.buf, 0)
	}
}

// RawBytes appends bytes with no length prefix. The caller frames them.
func (w *Writer) RawBytes(b []byte) { w.buf = append(w.buf, b...) }

// RawFloat64s appends float64 bit patterns with no length prefix. Combined
// with a separately written length, a sequence of RawFloat64s calls is
// byte-identical to one Float64s call over the concatenation — the grid
// codec uses this to emit per-cell pages without materializing a contiguous
// copy.
func (w *Writer) RawFloat64s(vs []float64) {
	for _, v := range vs {
		w.Float64(v)
	}
}

// RawUint64s appends fixed-width 64-bit values with no length prefix.
func (w *Writer) RawUint64s(vs []uint64) {
	for _, v := range vs {
		w.Uint64(v)
	}
}

// RawInt64s appends signed 64-bit values with no length prefix.
func (w *Writer) RawInt64s(vs []int64) {
	for _, v := range vs {
		w.Int64(v)
	}
}

// Reader parses a byte slice written by Writer. The first decoding error
// sticks: every subsequent call returns zero values, so codecs can decode a
// whole structure and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps payload for decoding.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close verifies the payload was consumed exactly: it returns the sticky
// decoding error if any, or an error if trailing bytes remain.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if n := r.Remaining(); n != 0 {
		return fmt.Errorf("binio: %d trailing bytes after decode", n)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, or nil after recording an error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(fmt.Errorf("binio: need %d bytes, have %d: %w", n, r.Remaining(), io.ErrUnexpectedEOF))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint32 reads a fixed-width 32-bit value.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width 64-bit value.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads a signed integer written by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Int64 reads a signed 64-bit value.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// Bool reads one byte and requires it to be 0 or 1.
func (r *Reader) Bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("binio: invalid bool byte %#x", b[0]))
		return false
	}
}

// Float64 reads an IEEE-754 value.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// length reads a length prefix and bounds it by the bytes actually present
// (elemSize bytes per element), so a corrupted length cannot drive a huge
// allocation.
func (r *Reader) length(elemSize int) int {
	n := r.Uint64()
	if r.err != nil {
		return 0
	}
	if max := uint64(r.Remaining() / elemSize); n > max {
		r.fail(fmt.Errorf("binio: declared length %d exceeds remaining payload (%d elems): %w", n, max, io.ErrUnexpectedEOF))
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.length(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Float64s reads a length-prefixed float64 slice; a zero length yields nil.
func (r *Reader) Float64s() []float64 {
	n := r.length(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// Ints reads a length-prefixed int slice; a zero length yields nil.
func (r *Reader) Ints() []int {
	n := r.length(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Int64s reads a length-prefixed int64 slice; a zero length yields nil.
func (r *Reader) Int64s() []int64 {
	n := r.length(8)
	if n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int64()
	}
	return out
}
