package binio

import (
	"errors"
	"io"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Uint32(0xDEADBEEF)
	w.Uint64(1 << 62)
	w.Int(-42)
	w.Int64(math.MinInt64)
	w.Bool(true)
	w.Bool(false)
	w.Float64(math.Pi)
	w.Float64(math.Inf(-1))
	w.String("grid file")
	w.String("")
	w.Float64s([]float64{1.5, -2.5, math.NaN()})
	w.Ints([]int{3, -7, 0})
	w.Int64s([]int64{9, -9})

	r := NewReader(w.Bytes())
	if v := r.Uint32(); v != 0xDEADBEEF {
		t.Fatalf("Uint32 = %#x", v)
	}
	if v := r.Uint64(); v != 1<<62 {
		t.Fatalf("Uint64 = %d", v)
	}
	if v := r.Int(); v != -42 {
		t.Fatalf("Int = %d", v)
	}
	if v := r.Int64(); v != math.MinInt64 {
		t.Fatalf("Int64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("Bool order wrong")
	}
	if v := r.Float64(); v != math.Pi {
		t.Fatalf("Float64 = %v", v)
	}
	if v := r.Float64(); !math.IsInf(v, -1) {
		t.Fatalf("Float64 inf = %v", v)
	}
	if v := r.String(); v != "grid file" {
		t.Fatalf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("empty String = %q", v)
	}
	fs := r.Float64s()
	if len(fs) != 3 || fs[0] != 1.5 || fs[1] != -2.5 || !math.IsNaN(fs[2]) {
		t.Fatalf("Float64s = %v", fs)
	}
	if is := r.Ints(); len(is) != 3 || is[0] != 3 || is[1] != -7 || is[2] != 0 {
		t.Fatalf("Ints = %v", is)
	}
	if is := r.Int64s(); len(is) != 2 || is[0] != 9 || is[1] != -9 {
		t.Fatalf("Int64s = %v", is)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReaderShortInput(t *testing.T) {
	w := NewWriter()
	w.Uint64(7)
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		_ = r.Uint64()
		if !errors.Is(r.Err(), io.ErrUnexpectedEOF) {
			t.Fatalf("prefix %d: err = %v", n, r.Err())
		}
	}
}

// TestReaderHugeLength ensures a corrupted length prefix cannot drive a
// giant allocation: it must fail against the actual remaining payload.
func TestReaderHugeLength(t *testing.T) {
	w := NewWriter()
	w.Uint64(1 << 60) // claimed element count
	w.Float64(1)      // 8 real bytes
	r := NewReader(w.Bytes())
	if vs := r.Float64s(); vs != nil {
		t.Fatalf("Float64s returned %d elems", len(vs))
	}
	if r.Err() == nil {
		t.Fatal("no error for huge declared length")
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint64() // fails
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	_ = r.Bool() // would succeed on byte 0, but the error sticks
	if r.Err() != first {
		t.Fatalf("error replaced: %v", r.Err())
	}
}

func TestReaderBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	_ = r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestCloseTrailing(t *testing.T) {
	r := NewReader([]byte{0, 0})
	_ = r.Bool()
	if err := r.Close(); err == nil {
		t.Fatal("Close ignored trailing byte")
	}
}
