package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"reflect"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
	"github.com/coax-index/coax/internal/workload"
)

// mutateIndex drives a mixed workload into idx so the snapshot has
// tombstones, overflow pages, and non-zero drift counters; it returns the
// mirror of the live rows.
func mutateIndex(t *testing.T, idx *core.COAX, tab *dataset.Table, seed int64) *dataset.Table {
	t.Helper()
	mix := workload.NewMixGenerator(tab, seed, workload.MixConfig{
		InsertWeight: 2, DeleteWeight: 2, UpdateWeight: 1,
		OutlierFrac: 0.3,
	})
	for i := 0; i < 1500; i++ {
		op := mix.Next()
		var err error
		switch op.Kind {
		case workload.OpInsert:
			err = idx.Insert(op.Row)
		case workload.OpDelete:
			err = idx.Delete(op.Row)
		case workload.OpUpdate:
			err = idx.Update(op.Old, op.New)
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	mirror := dataset.NewTable(tab.Cols)
	view := mix.LiveView()
	for i := 0; i < view.Len(); i++ {
		mirror.Append(view.Row(i))
	}
	return mirror
}

// TestLifecycleSectionRoundTrip saves a heavily mutated index and checks
// the loaded one resumes mid-lifecycle: same live rows, same tombstones,
// same drift counters, same staleness verdict.
func TestLifecycleSectionRoundTrip(t *testing.T) {
	for _, kind := range []core.OutlierIndexKind{core.OutlierGrid, core.OutlierRTree} {
		kind := kind
		name := map[core.OutlierIndexKind]string{core.OutlierGrid: "grid", core.OutlierRTree: "rtree"}[kind]
		t.Run(name, func(t *testing.T) {
			tab := testTable(t, "osm", 6000)
			idx := buildIndex(t, tab, kind)
			mirror := mutateIndex(t, idx, tab, 51)

			blob := saveToBytes(t, idx)
			back, err := snapshot.Decode(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}

			want := idx.LifecycleStats()
			got := back.LifecycleStats()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("lifecycle stats changed across the round trip:\nsaved  %+v\nloaded %+v", want, got)
			}
			if got.Mutations() == 0 || got.Tombstones == 0 {
				t.Fatalf("test did not exercise a mid-lifecycle state: %+v", got)
			}

			oracle := scan.New(mirror)
			rng := rand.New(rand.NewSource(52))
			for q := 0; q < 100; q++ {
				r := workload.RandRect(rng, mirror)
				if gotN, wantN := index.Count(back, r), index.Count(oracle, r); gotN != wantN {
					t.Fatalf("query %d: loaded index %d rows, oracle %d", q, gotN, wantN)
				}
			}

			// The loaded index keeps mutating from where it left off.
			row := append([]float64(nil), mirror.Row(0)...)
			if err := back.Delete(row); err != nil {
				t.Fatalf("delete after load: %v", err)
			}
			after := back.LifecycleStats()
			if after.Deletes != got.Deletes+1 {
				t.Fatalf("delete counter did not resume: %d → %d", got.Deletes, after.Deletes)
			}
		})
	}
}

// TestVersion1Compat synthesises a version-1 file — the current format
// minus the trailing "life" section, with the header patched — and checks
// it still decodes, starting a fresh lifecycle.
func TestVersion1Compat(t *testing.T) {
	tab := testTable(t, "airline", 4000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)

	info, err := snapshot.Inspect(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	// Strip the trailing framed sections (id + length + payload + crc)
	// that postdate version 1 — "life" and the additive "cols" — and patch
	// the header: version → 1, section count reduced to match.
	sections := info.Sections
	v1 := append([]byte(nil), blob...)
	for len(sections) > 0 {
		last := sections[len(sections)-1]
		if last.ID != "life" && last.ID != "cols" {
			break
		}
		framed := 4 + 8 + int(last.Len) + 4
		v1 = v1[:len(v1)-framed]
		sections = sections[:len(sections)-1]
	}
	if len(sections) == len(info.Sections) {
		t.Fatalf("no post-v1 sections found in %v", info.Sections)
	}
	binary.LittleEndian.PutUint32(v1[8:], 1)
	binary.LittleEndian.PutUint32(v1[12:], uint32(len(sections)))

	back, err := snapshot.Decode(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("decoding synthesised v1 file: %v", err)
	}
	if back.Len() != idx.Len() {
		t.Fatalf("v1 decode: %d rows, want %d", back.Len(), idx.Len())
	}
	s := back.LifecycleStats()
	if s.Mutations() != 0 || s.Tombstones != 0 || s.Epoch != 0 {
		t.Fatalf("v1 file did not start a fresh lifecycle: %+v", s)
	}
	// And it can rebuild and mutate like any current index.
	if err := back.Insert(append([]float64(nil), tab.Row(0)...)); err != nil {
		t.Fatalf("insert after v1 load: %v", err)
	}
	if _, err := back.Rebuild(); err != nil {
		t.Fatalf("rebuild after v1 load: %v", err)
	}
}

// TestShardedLifecycleRoundTrip saves a sharded engine mid-lifecycle (with
// per-shard epochs from a rebuild) and checks the loaded engine reports
// the same aggregate state and keeps serving mutations.
func TestShardedLifecycleRoundTrip(t *testing.T) {
	tab := testTable(t, "osm", 8000)
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	s, err := shard.Build(tab, opt, shard.Options{NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.NewMixGenerator(tab, 53, workload.MixConfig{
		InsertWeight: 2, DeleteWeight: 1, UpdateWeight: 1, OutlierFrac: 0.4,
	})
	for i := 0; i < 2000; i++ {
		op := mix.Next()
		var err error
		switch op.Kind {
		case workload.OpInsert:
			err = s.Insert(op.Row)
		case workload.OpDelete:
			err = s.Delete(op.Row)
		case workload.OpUpdate:
			err = s.Update(op.Old, op.New)
		}
		if err != nil {
			t.Fatalf("mutation %d: %v", i, err)
		}
	}
	if err := s.RebuildShard(1); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := snapshot.EncodeSharded(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := snapshot.DecodeSharded(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	want, got := s.LifecycleStats(), back.LifecycleStats()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("aggregate lifecycle changed:\nsaved  %+v\nloaded %+v", want, got)
	}
	if got.Epoch != 1 {
		t.Fatalf("epoch %d, want 1 (one shard rebuilt before save)", got.Epoch)
	}
	view := mix.LiveView()
	if back.Len() != view.Len() {
		t.Fatalf("loaded %d rows, want %d", back.Len(), view.Len())
	}
	oracle := scan.New(view)
	rng := rand.New(rand.NewSource(54))
	for q := 0; q < 60; q++ {
		r := workload.RandRect(rng, view)
		if gotN, wantN := index.Count(back, r), index.Count(oracle, r); gotN != wantN {
			t.Fatalf("query %d: %d rows, oracle %d", q, gotN, wantN)
		}
	}
}
