package snapshot_test

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/snapshot"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

// testTable builds a small synthetic table of the named benchmark dataset.
func testTable(t testing.TB, kind string, rows int) *dataset.Table {
	t.Helper()
	switch kind {
	case "osm":
		return dataset.GenerateOSM(dataset.DefaultOSMConfig(rows))
	case "airline":
		return dataset.GenerateAirline(dataset.DefaultAirlineConfig(rows))
	default:
		t.Fatalf("unknown dataset %q", kind)
		return nil
	}
}

func buildIndex(t testing.TB, tab *dataset.Table, kind core.OutlierIndexKind) *core.COAX {
	t.Helper()
	opt := core.DefaultOptions()
	opt.OutlierKind = kind
	opt.SoftFD.SampleCount = 5000 // keep detection fast in tests
	idx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

// testQueries mixes point, kNN-range, and partial-dimension rectangles so
// the round-trip comparison exercises primary, outlier, and translated
// probes.
func testQueries(tab *dataset.Table) []index.Rect {
	g := workload.NewGenerator(tab, 7)
	qs := g.PointQueries(25)
	qs = append(qs, g.KNNRects(25, 64)...)
	for d := 0; d < tab.Dims(); d++ {
		qs = append(qs, g.PartialRects(5, []int{d}, 0.2)...)
	}
	qs = append(qs, index.Full(tab.Dims()))
	return qs
}

func saveToBytes(t testing.TB, idx *core.COAX) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, idx); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

// sortRows canonicalises a Collect result for order-insensitive comparison.
func sortRows(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func requireSameResults(t *testing.T, want, got index.Interface, queries []index.Rect) {
	t.Helper()
	for qi, q := range queries {
		if w, g := index.Count(want, q), index.Count(got, q); w != g {
			t.Fatalf("query %d %v: Count %d != %d after round trip", qi, q, w, g)
		}
		wr, gr := index.Collect(want, q), index.Collect(got, q)
		sortRows(wr)
		sortRows(gr)
		if len(wr) != len(gr) {
			t.Fatalf("query %d: Collect %d rows != %d rows", qi, len(wr), len(gr))
		}
		for i := range wr {
			for k := range wr[i] {
				if wr[i][k] != gr[i][k] {
					t.Fatalf("query %d row %d: %v != %v", qi, i, wr[i], gr[i])
				}
			}
		}
	}
}

// TestRoundTrip is the acceptance-criteria property test: for both
// datasets and both outlier index kinds, a decoded snapshot must answer
// Count and Collect bit-identically to the freshly built index.
func TestRoundTrip(t *testing.T) {
	for _, ds := range []string{"osm", "airline"} {
		for _, kind := range []core.OutlierIndexKind{core.OutlierGrid, core.OutlierRTree} {
			name := fmt.Sprintf("%s/%v", ds, kindName(kind))
			t.Run(name, func(t *testing.T) {
				tab := testTable(t, ds, 20000)
				idx := buildIndex(t, tab, kind)
				blob := saveToBytes(t, idx)
				loaded, err := snapshot.Decode(bytes.NewReader(blob))
				if err != nil {
					t.Fatalf("Decode: %v", err)
				}
				if loaded.Len() != idx.Len() || loaded.Dims() != idx.Dims() {
					t.Fatalf("loaded shape %dx%d, want %dx%d", loaded.Len(), loaded.Dims(), idx.Len(), idx.Dims())
				}
				ws, ls := idx.BuildStats(), loaded.BuildStats()
				if ws.PrimaryRows != ls.PrimaryRows || ws.OutlierRows != ls.OutlierRows || ws.SortDim != ls.SortDim || len(ws.Groups) != len(ls.Groups) {
					t.Fatalf("loaded stats %+v diverge from built %+v", ls, ws)
				}
				requireSameResults(t, idx, loaded, testQueries(tab))
			})
		}
	}
}

func kindName(k core.OutlierIndexKind) string {
	if k == core.OutlierRTree {
		return "rtree"
	}
	return "grid"
}

// TestRoundTripAfterInserts covers live overflow pages: an index that has
// absorbed inserts since its build must snapshot without a forced Compact.
func TestRoundTripAfterInserts(t *testing.T) {
	tab := testTable(t, "osm", 10000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	extra := dataset.GenerateOSM(dataset.OSMConfig{
		N: 500, OutlierFrac: 0.3, NoiseFrac: 0.01, EditRate: 2.0,
		Clusters: 4, ClusterStd: 0.35, UniformFrac: 0.15, Seed: 99,
	})
	for i := 0; i < extra.Len(); i++ {
		if err := idx.Insert(extra.Row(i)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	loaded, err := snapshot.Decode(bytes.NewReader(saveToBytes(t, idx)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("loaded %d rows, want %d", loaded.Len(), idx.Len())
	}
	requireSameResults(t, idx, loaded, testQueries(tab))
}

// TestRoundTripSpline covers persisted spline models (§7.2 extension).
func TestRoundTripSpline(t *testing.T) {
	tab := testTable(t, "osm", 10000)
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	opt.SoftFD.Kind = softfd.ModelSpline
	idx, err := core.Build(tab, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	loaded, err := snapshot.Decode(bytes.NewReader(saveToBytes(t, idx)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	requireSameResults(t, idx, loaded, testQueries(tab))
}

// TestConcurrentReaders verifies a loaded index serves parallel readers:
// the structure must be fully materialised by Decode, with no lazy state
// mutated on the query path.
func TestConcurrentReaders(t *testing.T) {
	tab := testTable(t, "airline", 10000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	loaded, err := snapshot.Decode(bytes.NewReader(saveToBytes(t, idx)))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	queries := testQueries(tab)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = index.Count(idx, q)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				if got := index.Count(loaded, q); got != want[i] {
					errs <- fmt.Errorf("query %d: got %d, want %d", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDecodeTruncated feeds every interesting prefix of a valid snapshot
// to Decode; each must fail with an error — never panic, never succeed.
func TestDecodeTruncated(t *testing.T) {
	tab := testTable(t, "osm", 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)

	lengths := []int{0}
	for n := 1; n < len(blob); n *= 2 {
		lengths = append(lengths, n)
	}
	for n := 0; n < len(blob); n += 509 { // prime stride: hits all frame phases
		lengths = append(lengths, n)
	}
	lengths = append(lengths, len(blob)-1)
	for _, n := range lengths {
		if n >= len(blob) {
			continue
		}
		if _, err := snapshot.Decode(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("Decode of %d/%d-byte prefix succeeded", n, len(blob))
		}
	}
	if _, err := snapshot.Decode(bytes.NewReader(blob)); err != nil {
		t.Fatalf("Decode of intact snapshot failed: %v", err)
	}
}

// TestDecodeCorrupt flips single bytes throughout the file; CRC-32C must
// catch every payload flip and the frame checks every header flip.
func TestDecodeCorrupt(t *testing.T) {
	tab := testTable(t, "osm", 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)

	positions := []int{}
	for p := 0; p < len(blob); p += 251 {
		positions = append(positions, p)
	}
	positions = append(positions, len(blob)-1)
	for _, p := range positions {
		mutated := bytes.Clone(blob)
		mutated[p] ^= 0xFF
		if _, err := snapshot.Decode(bytes.NewReader(mutated)); err == nil {
			t.Fatalf("Decode accepted snapshot with byte %d flipped", p)
		}
	}
}

// TestDecodeBadCRC targets the checksum path specifically: corrupt one
// payload byte and require the sentinel ErrChecksum.
func TestDecodeBadCRC(t *testing.T) {
	tab := testTable(t, "osm", 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)
	// Byte 28 sits inside the first section's payload (16-byte header +
	// 12-byte section header).
	blob[28] ^= 0x01
	_, err := snapshot.Decode(bytes.NewReader(blob))
	if !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestDecodeVersionMismatch(t *testing.T) {
	tab := testTable(t, "osm", 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)
	blob[8] = snapshot.Version + 1 // little-endian version field at offset 8
	_, err := snapshot.Decode(bytes.NewReader(blob))
	if !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := snapshot.Decode(bytes.NewReader([]byte("NOTACOAXFILE....")))
	if !errors.Is(err, snapshot.ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestInspect(t *testing.T) {
	tab := testTable(t, "airline", 5000)
	idx := buildIndex(t, tab, core.OutlierRTree)
	blob := saveToBytes(t, idx)
	info, err := snapshot.Inspect(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Version != snapshot.Version {
		t.Fatalf("version %d, want %d", info.Version, snapshot.Version)
	}
	ids := make([]string, len(info.Sections))
	var total uint64
	for i, s := range info.Sections {
		ids[i] = s.ID
		total += s.Len
	}
	want := []string{"meta", "sofd", "prim", "outl", "life", "cols"}
	if fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Fatalf("sections %v, want %v", ids, want)
	}
	if total == 0 || total >= uint64(len(blob)) {
		t.Fatalf("implausible total payload %d for %d-byte file", total, len(blob))
	}
}

func TestTableRoundTrip(t *testing.T) {
	tab := testTable(t, "airline", 3000)
	var buf bytes.Buffer
	if err := snapshot.EncodeTable(&buf, tab); err != nil {
		t.Fatalf("EncodeTable: %v", err)
	}
	got, err := snapshot.DecodeTable(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("DecodeTable: %v", err)
	}
	if got.Len() != tab.Len() || got.Dims() != tab.Dims() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Dims(), tab.Len(), tab.Dims())
	}
	for i, c := range tab.Cols {
		if got.Cols[i] != c {
			t.Fatalf("column %d named %q, want %q", i, got.Cols[i], c)
		}
	}
	for i := range tab.Data {
		if got.Data[i] != tab.Data[i] {
			t.Fatalf("payload differs at %d", i)
		}
	}
}
