package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
)

func buildSharded(t testing.TB, so shard.Options) (*shard.Sharded, []index.Rect) {
	t.Helper()
	tab := testTable(t, "osm", 12000)
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	s, err := shard.Build(tab, opt, so)
	if err != nil {
		t.Fatalf("shard.Build: %v", err)
	}
	return s, testQueries(tab)
}

func shardedToBytes(t testing.TB, s *shard.Sharded) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snapshot.EncodeSharded(&buf, s); err != nil {
		t.Fatalf("EncodeSharded: %v", err)
	}
	return buf.Bytes()
}

func TestShardedRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		so   shard.Options
	}{
		{"range4", shard.Options{NumShards: 4, Partition: shard.ByRange, Column: -1}},
		{"hash3", shard.Options{NumShards: 3, Partition: shard.ByHash}},
		{"single", shard.Options{NumShards: 1, Partition: shard.ByRange, Column: 0}},
		{"manyShards", shard.Options{NumShards: 17, Partition: shard.ByRange, Column: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, queries := buildSharded(t, tc.so)
			blob := shardedToBytes(t, s)
			loaded, err := snapshot.DecodeSharded(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("DecodeSharded: %v", err)
			}
			if loaded.NumShards() != s.NumShards() || loaded.Len() != s.Len() || loaded.Dims() != s.Dims() {
				t.Fatalf("shape changed: %d/%d/%d vs %d/%d/%d",
					loaded.NumShards(), loaded.Len(), loaded.Dims(), s.NumShards(), s.Len(), s.Dims())
			}
			if loaded.Partition() != s.Partition() || loaded.RangeColumn() != s.RangeColumn() {
				t.Fatalf("routing state changed: %v/%d vs %v/%d",
					loaded.Partition(), loaded.RangeColumn(), s.Partition(), s.RangeColumn())
			}
			requireSameResults(t, s, loaded, queries)

			// A loaded index must keep accepting inserts routed like the
			// original: equal counts after the same insert on both.
			row := make([]float64, s.Dims())
			for i := range row {
				row[i] = float64(i + 1)
			}
			if err := s.Insert(row); err != nil {
				t.Fatalf("Insert original: %v", err)
			}
			if err := loaded.Insert(row); err != nil {
				t.Fatalf("Insert loaded: %v", err)
			}
			full := index.Full(s.Dims())
			if w, g := index.Count(s, full), index.Count(loaded, full); w != g {
				t.Fatalf("post-insert counts diverge: %d vs %d", w, g)
			}
		})
	}
}

// A shard count larger than the row variety leaves some shards empty; they
// must round-trip too (empty COAX skeletons, no prim/outl sections).
func TestShardedRoundTripEmptyShards(t *testing.T) {
	s, queries := buildSharded(t, shard.Options{NumShards: 64, Partition: shard.ByRange, Column: 3})
	blob := shardedToBytes(t, s)
	loaded, err := snapshot.DecodeSharded(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("DecodeSharded: %v", err)
	}
	requireSameResults(t, s, loaded, queries)
}

func TestDecodeShardedRejectsSingle(t *testing.T) {
	tab := testTable(t, "osm", 5000)
	idx := buildIndex(t, tab, core.OutlierGrid)
	blob := saveToBytes(t, idx)
	if _, err := snapshot.DecodeSharded(bytes.NewReader(blob)); !errors.Is(err, snapshot.ErrNotSharded) {
		t.Fatalf("err = %v, want ErrNotSharded", err)
	}
}

func TestDecodeRejectsSharded(t *testing.T) {
	s, _ := buildSharded(t, shard.Options{NumShards: 2})
	blob := shardedToBytes(t, s)
	if _, err := snapshot.Decode(bytes.NewReader(blob)); !errors.Is(err, snapshot.ErrSharded) {
		t.Fatalf("err = %v, want ErrSharded", err)
	}
}

func TestShardedDecodeCorruption(t *testing.T) {
	s, _ := buildSharded(t, shard.Options{NumShards: 3})
	blob := shardedToBytes(t, s)

	// Truncations at every framing-sensitive prefix must error, not panic.
	for _, cut := range []int{0, 4, 8, 16, 20, 28, len(blob) / 2, len(blob) - 1} {
		if _, err := snapshot.DecodeSharded(bytes.NewReader(blob[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Flipping payload bytes must fail the section checksum.
	for _, pos := range []int{40, len(blob) / 3, 2 * len(blob) / 3} {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0xff
		if _, err := snapshot.DecodeSharded(bytes.NewReader(mut)); err == nil {
			t.Errorf("corruption at %d accepted", pos)
		}
	}
}
