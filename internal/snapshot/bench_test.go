package snapshot_test

import (
	"bytes"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/snapshot"
)

// The benchmarks quantify the point of the subsystem: loading a snapshot
// must cost a small fraction of rebuilding the index from raw rows.
// Compare:
//
//	go test ./internal/snapshot -bench 'Build|Save|Load' -benchtime 5x

func benchRows(b *testing.B) int {
	if testing.Short() {
		return 20000
	}
	return 200000
}

func benchIndex(b *testing.B) (*dataset.Table, *core.COAX) {
	b.Helper()
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(benchRows(b)))
	idx := buildIndex(b, tab, core.OutlierGrid)
	return tab, idx
}

func BenchmarkBuild(b *testing.B) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(benchRows(b)))
	opt := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(tab, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSave(b *testing.B) {
	_, idx := benchIndex(b)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := snapshot.Encode(&buf, idx); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func BenchmarkLoad(b *testing.B) {
	_, idx := benchIndex(b)
	var buf bytes.Buffer
	if err := snapshot.Encode(&buf, idx); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snapshot.Decode(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
}
