package snapshot_test

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/snapshot"
)

// fuzzSeedTable is a small correlated table whose snapshots exercise every
// section kind: soft-FD models, a primary grid, and an outlier index.
func fuzzSeedTable() *dataset.Table {
	rng := rand.New(rand.NewSource(99))
	t := dataset.NewTable([]string{"x", "d", "u"})
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 100
		d := 3*x + 7 + rng.NormFloat64()
		if rng.Float64() < 0.2 {
			d = rng.Float64() * 400
		}
		t.Append([]float64{x, d, rng.Float64() * 10})
	}
	return t
}

// FuzzSnapshotDecode drives every snapshot entry point with arbitrary
// bytes. Decoders must return errors for anything malformed — never panic,
// hang, or produce an index that panics when queried. Seeds cover all
// container shapes (single index with grid and R-tree outliers, sharded,
// standalone table) plus truncated and bit-flipped variants, so the fuzzer
// starts inside the format rather than fighting the magic number.
func FuzzSnapshotDecode(f *testing.F) {
	tab := fuzzSeedTable()
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 400

	var seeds [][]byte
	for _, kind := range []core.OutlierIndexKind{core.OutlierGrid, core.OutlierRTree} {
		o := opt
		o.OutlierKind = kind
		idx, err := core.Build(tab, o)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := snapshot.Encode(&buf, idx); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	sharded, err := shard.Build(tab, opt, shard.Options{NumShards: 3, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	var shardBuf bytes.Buffer
	if err := snapshot.EncodeSharded(&shardBuf, sharded); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, shardBuf.Bytes())
	var tabBuf bytes.Buffer
	if err := snapshot.EncodeTable(&tabBuf, tab); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, tabBuf.Bytes())

	for _, blob := range seeds {
		f.Add(blob)
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:len(blob)-1])
		mut := append([]byte(nil), blob...)
		mut[len(mut)/3] ^= 0x40
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("COAXSNAP"))
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if idx, err := snapshot.Decode(bytes.NewReader(data)); err == nil {
			exerciseQueries(idx)
		}
		if s, err := snapshot.DecodeSharded(bytes.NewReader(data)); err == nil {
			exerciseQueries(s)
		}
		if tab, err := snapshot.DecodeTable(bytes.NewReader(data)); err == nil {
			_ = tab.Validate()
		}
		snapshot.Inspect(bytes.NewReader(data))
	})
}

// exerciseQueries runs the probe paths of a decoded index; a decode that
// validated must answer without panicking.
func exerciseQueries(idx index.Interface) {
	dims := idx.Dims()
	index.Count(idx, index.Full(dims))
	r := index.Full(dims)
	for d := 0; d < dims; d++ {
		r.Min[d], r.Max[d] = -1, 1
	}
	index.Count(idx, r)
	index.Count(idx, index.Point(make([]float64, dims)))
}
