// Package snapshot persists a built COAX index to a versioned,
// self-describing binary file and loads it back, so the expensive build —
// soft-FD detection, inlier/outlier split, grid-file and R-tree
// construction — runs once while every subsequent process start is a
// sequential read.
//
// # On-disk format (version 2)
//
// All integers are little-endian; floats are IEEE-754 bit patterns.
//
//	header:
//	  magic          [8]byte  "COAXSNAP"
//	  formatVersion  uint32   currently 2
//	  sectionCount   uint32
//	sectionCount × section:
//	  id             [4]byte  ASCII section tag
//	  payloadLen     uint64
//	  payload        [payloadLen]byte
//	  crc32c         uint32   Castagnoli CRC of payload
//
// A COAX snapshot carries, in order: "meta" (scalar state, partition
// bounds, build parameters), "sofd" (soft-FD groups, pair models, and
// margins — loading it is what makes re-detection unnecessary), "prim"
// (the primary grid file; omitted when every row was an outlier), "outl"
// (the outlier grid file or R-tree; omitted when every row was an
// inlier), and "life" (the lifecycle state added in version 2: rebuild
// epoch, staleness baseline, mutation/drift counters, and the tombstone
// slots of both grids, so a loaded index resumes mid-lifecycle). An
// in-flight epoch rebuild is not persisted: the serving epoch already
// holds every mutation its delta log records, so after a load the
// compactor re-detects staleness and restarts the rebuild from scratch.
// When the build table carried column names, an additive "cols" section
// preserves them so a loaded index answers name-based Query API v2
// queries; files without it load with positional columns only.
// A standalone table snapshot carries a single "tabl" section with the
// column-major payload of internal/dataset.EncodeTable.
//
// Version 1 files (written before the mutation layer existed) decode
// unchanged: they simply lack the "life" section, so the loaded index
// starts a fresh lifecycle with zero tombstones and zeroed counters.
//
// A sharded snapshot (internal/shard) reuses the same container: a "shmt"
// section records the shard layout (shard count, partition scheme, range
// column, cut points), followed by one section per shard — ids "s000",
// "s001", … (the ordinal in hex) — whose payload is itself a complete
// single-index snapshot. Each shard therefore round-trips through the
// exact codecs above, and every layer stays independently checksummed.
//
// Section payloads are produced and consumed by the per-layer codecs
// (internal/core, internal/softfd, internal/gridfile, internal/rtree,
// internal/dataset over internal/binio primitives); this package owns only
// the framing: magic, version, per-section lengths, and checksums. Decode
// verifies every checksum before parsing a byte of payload, so truncation
// and corruption surface as errors — never panics — and unknown trailing
// sections written by a future minor revision are skipped, not fatal.
package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/shard"
)

// Version is the current snapshot format version; MinVersion is the oldest
// format this build still reads (version 1 predates the "life" section).
const (
	Version    = 2
	MinVersion = 1
)

var magic = [8]byte{'C', 'O', 'A', 'X', 'S', 'N', 'A', 'P'}

// Section tags of format version 1.
const (
	secMeta      = "meta"
	secSoftFD    = "sofd"
	secPrimary   = "prim"
	secOutliers  = "outl"
	secLifecycle = "life"
	secTable     = "tabl"
	secShardMeta = "shmt"
	// secColumns is an additive section carrying the build table's column
	// names so loaded snapshots answer name-based (Query API v2) queries.
	// It is omitted when the table had no names; readers predating it skip
	// it as an unknown trailing section.
	secColumns = "cols"
)

// shardSection names the section holding shard i: "s" plus the ordinal in
// three hex digits, which covers shard.MaxShards.
func shardSection(i int) string { return fmt.Sprintf("s%03x", i) }

// Sentinel errors; Decode wraps them with positional detail.
var (
	ErrBadMagic  = errors.New("snapshot: bad magic (not a COAX snapshot)")
	ErrVersion   = errors.New("snapshot: unsupported format version")
	ErrChecksum  = errors.New("snapshot: section checksum mismatch")
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrSharded is returned by Decode for a file holding a sharded index.
	ErrSharded = errors.New("snapshot: file holds a sharded index (use DecodeSharded)")
	// ErrNotSharded is returned by DecodeSharded for a single-index file.
	ErrNotSharded = errors.New("snapshot: file holds a single index (use Decode)")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode writes idx to w in snapshot format.
func Encode(w io.Writer, idx *core.COAX) error {
	type section struct {
		id   string
		emit func(*binio.Writer) error
	}
	sections := []section{
		{secMeta, func(bw *binio.Writer) error { idx.EncodeMeta(bw); return nil }},
		{secSoftFD, func(bw *binio.Writer) error { idx.EncodeFD(bw); return nil }},
	}
	if idx.HasPrimary() {
		sections = append(sections, section{secPrimary, func(bw *binio.Writer) error { idx.EncodePrimary(bw); return nil }})
	}
	if idx.HasOutliers() {
		sections = append(sections, section{secOutliers, idx.EncodeOutliers})
	}
	sections = append(sections, section{secLifecycle, func(bw *binio.Writer) error { idx.EncodeLifecycle(bw); return nil }})
	if idx.HasColumnNames() {
		sections = append(sections, section{secColumns, func(bw *binio.Writer) error { idx.EncodeColumns(bw); return nil }})
	}

	if err := writeHeader(w, len(sections)); err != nil {
		return err
	}
	for _, s := range sections {
		bw := binio.NewWriter()
		if err := s.emit(bw); err != nil {
			return err
		}
		if err := writeSection(w, s.id, bw.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads a COAX snapshot and reassembles the index. The returned
// index answers queries identically to the one that was saved and is safe
// for concurrent readers.
func Decode(r io.Reader) (*core.COAX, error) {
	sections, err := readFile(r)
	if err != nil {
		return nil, err
	}
	if _, ok := sections[secShardMeta]; ok {
		return nil, ErrSharded
	}
	metaPayload, ok := sections[secMeta]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing %q section", secMeta)
	}
	idx, err := decodeSection(secMeta, metaPayload, core.DecodeMeta)
	if err != nil {
		return nil, err
	}
	fdPayload, ok := sections[secSoftFD]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing %q section", secSoftFD)
	}
	if err := attachSection(secSoftFD, fdPayload, idx.DecodeAttachFD); err != nil {
		return nil, err
	}
	if payload, ok := sections[secPrimary]; ok {
		if err := attachSection(secPrimary, payload, idx.DecodeAttachPrimary); err != nil {
			return nil, err
		}
	}
	if payload, ok := sections[secOutliers]; ok {
		if err := attachSection(secOutliers, payload, idx.DecodeAttachOutliers); err != nil {
			return nil, err
		}
	}
	// The lifecycle section must attach after the grids so its tombstone
	// slots have pages to land in; version-1 files simply lack it.
	if payload, ok := sections[secLifecycle]; ok {
		if err := attachSection(secLifecycle, payload, idx.DecodeAttachLifecycle); err != nil {
			return nil, err
		}
	}
	// Column names are optional: snapshots of unnamed tables (and files
	// written before the section existed) load with positional columns only.
	if payload, ok := sections[secColumns]; ok {
		if err := attachSection(secColumns, payload, idx.DecodeAttachColumns); err != nil {
			return nil, err
		}
	}
	if err := idx.FinishDecode(); err != nil {
		return nil, err
	}
	return idx, nil
}

// EncodeSharded writes a sharded index to w: one "shmt" layout section,
// then one section per shard whose payload is a complete single-index
// snapshot. Each shard is serialised under its read lock, so encoding is
// safe while the index keeps serving queries and inserts; shards encoded
// earlier may miss inserts that land later during the write (the snapshot
// is per-shard consistent, not a global point-in-time cut).
func EncodeSharded(w io.Writer, s *shard.Sharded) error {
	k := s.NumShards()
	if err := writeHeader(w, 1+k); err != nil {
		return err
	}

	layout := binio.NewWriter()
	layout.Int(k)
	layout.Int(int(s.Partition()))
	layout.Int(s.RangeColumn())
	layout.Float64s(s.Cuts())
	layout.Int(s.Dims())
	if err := writeSection(w, secShardMeta, layout.Bytes()); err != nil {
		return err
	}

	for i := 0; i < k; i++ {
		var buf bytes.Buffer
		err := s.WithShard(i, func(idx *core.COAX) error { return Encode(&buf, idx) })
		if err != nil {
			return fmt.Errorf("snapshot: encoding shard %d: %w", i, err)
		}
		if err := writeSection(w, shardSection(i), buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// DecodeSharded reads a snapshot written by EncodeSharded and reassembles
// the sharded index. The result answers queries identically to the index
// that was saved and is immediately safe for concurrent use.
func DecodeSharded(r io.Reader) (*shard.Sharded, error) {
	sections, err := readFile(r)
	if err != nil {
		return nil, err
	}
	layout, ok := sections[secShardMeta]
	if !ok {
		if _, single := sections[secMeta]; single {
			return nil, ErrNotSharded
		}
		return nil, fmt.Errorf("snapshot: missing %q section", secShardMeta)
	}
	br := binio.NewReader(layout)
	k := br.Int()
	partition := shard.Partition(br.Int())
	col := br.Int()
	cuts := br.Float64s()
	dims := br.Int()
	if err := br.Close(); err != nil {
		return nil, fmt.Errorf("snapshot: section %q: %w", secShardMeta, err)
	}
	if k < 1 || k > shard.MaxShards {
		return nil, fmt.Errorf("snapshot: shard count %d out of range [1,%d]", k, shard.MaxShards)
	}

	shards := make([]*core.COAX, k)
	for i := range shards {
		id := shardSection(i)
		payload, ok := sections[id]
		if !ok {
			return nil, fmt.Errorf("snapshot: missing shard section %q", id)
		}
		idx, err := Decode(bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("snapshot: shard %d: %w", i, err)
		}
		if idx.Dims() != dims {
			return nil, fmt.Errorf("snapshot: shard %d has %d dims, layout says %d", i, idx.Dims(), dims)
		}
		shards[i] = idx
	}
	s, err := shard.Reassemble(shards, partition, col, cuts, 0)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return s, nil
}

// EncodeTable writes a standalone table snapshot — the column-major
// payload used to persist datasets alongside their indexes.
func EncodeTable(w io.Writer, t *dataset.Table) error {
	bw := binio.NewWriter()
	dataset.EncodeTable(bw, t)
	if err := writeHeader(w, 1); err != nil {
		return err
	}
	return writeSection(w, secTable, bw.Bytes())
}

// DecodeTable reads a table snapshot written by EncodeTable.
func DecodeTable(r io.Reader) (*dataset.Table, error) {
	sections, err := readFile(r)
	if err != nil {
		return nil, err
	}
	payload, ok := sections[secTable]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing %q section", secTable)
	}
	return decodeSection(secTable, payload, dataset.DecodeTable)
}

// SectionInfo describes one framed section without decoding its payload.
type SectionInfo struct {
	ID  string
	Len uint64
	CRC uint32
}

// Info is the frame-level description returned by Inspect.
type Info struct {
	Version  uint32
	Sections []SectionInfo
}

// Inspect reads and checksums the snapshot frame without reassembling the
// index; coaxstore's info subcommand uses it to describe a file cheaply.
func Inspect(r io.Reader) (Info, error) {
	version, count, err := readHeader(r)
	if err != nil {
		return Info{}, err
	}
	info := Info{Version: version}
	for i := uint32(0); i < count; i++ {
		id, payload, crc, err := readSection(r)
		if err != nil {
			return Info{}, err
		}
		info.Sections = append(info.Sections, SectionInfo{
			ID:  id,
			Len: uint64(len(payload)),
			CRC: crc,
		})
	}
	return info, nil
}

// --- framing ---

func writeHeader(w io.Writer, sections int) error {
	bw := binio.NewWriter()
	bw.Uint32(Version)
	bw.Uint32(uint32(sections))
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	_, err := w.Write(bw.Bytes())
	return err
}

func writeSection(w io.Writer, id string, payload []byte) error {
	if len(id) != 4 {
		return fmt.Errorf("snapshot: section id %q must be 4 bytes", id)
	}
	bw := binio.NewWriter()
	bw.Uint64(uint64(len(payload)))
	if _, err := io.WriteString(w, id); err != nil {
		return err
	}
	if _, err := w.Write(bw.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	tail := binio.NewWriter()
	tail.Uint32(crc32.Checksum(payload, castagnoli))
	_, err := w.Write(tail.Bytes())
	return err
}

func readHeader(r io.Reader) (version, sections uint32, err error) {
	var head [16]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if !bytes.Equal(head[:8], magic[:]) {
		return 0, 0, ErrBadMagic
	}
	hr := binio.NewReader(head[8:])
	version = hr.Uint32()
	sections = hr.Uint32()
	if version == Version+1 {
		// Version 3 is the memory-mapped page format: a different container
		// (TOC-framed, 64-byte-aligned sections) read by internal/mmapsnap.
		return 0, 0, fmt.Errorf("%w: file has version %d (memory-mapped format; open it with coax.OpenFile or internal/mmapsnap)", ErrVersion, version)
	}
	if version < MinVersion || version > Version {
		return 0, 0, fmt.Errorf("%w: file has version %d, this build reads %d–%d", ErrVersion, version, MinVersion, Version)
	}
	return version, sections, nil
}

// readSection reads one framed section, verifying its checksum before the
// payload is handed to any parser; the verified CRC is returned so callers
// need not recompute it.
func readSection(r io.Reader) (id string, payload []byte, crc uint32, err error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return "", nil, 0, fmt.Errorf("%w: reading section header: %v", ErrTruncated, err)
	}
	id = string(head[:4])
	length := binio.NewReader(head[4:]).Uint64()
	// Copy incrementally rather than pre-allocating `length` bytes: a
	// corrupted length then costs at most the real file size before the
	// truncation error fires.
	var buf bytes.Buffer
	if n, err := io.CopyN(&buf, r, int64(length)); err != nil || uint64(n) != length {
		return "", nil, 0, fmt.Errorf("%w: section %q declares %d payload bytes, read %d", ErrTruncated, id, length, buf.Len())
	}
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return "", nil, 0, fmt.Errorf("%w: reading section %q checksum: %v", ErrTruncated, id, err)
	}
	payload = buf.Bytes()
	want := binio.NewReader(tail[:]).Uint32()
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return "", nil, 0, fmt.Errorf("%w: section %q has CRC %#08x, want %#08x", ErrChecksum, id, got, want)
	}
	return id, payload, want, nil
}

// readFile reads the whole frame into a section map. Duplicate sections are
// rejected; unknown ids are tolerated (forward compatibility for additive
// revisions that keep the major version).
func readFile(r io.Reader) (map[string][]byte, error) {
	_, count, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	// The declared section count is untrusted input: a crafted header can
	// claim 2³² sections, so it must not size an allocation up front (found
	// by fuzzing). Truncation errors cap the loop at the real section count.
	sections := make(map[string][]byte, min(count, 64))
	for i := uint32(0); i < count; i++ {
		id, payload, _, err := readSection(r)
		if err != nil {
			return nil, err
		}
		if _, dup := sections[id]; dup {
			return nil, fmt.Errorf("snapshot: duplicate section %q", id)
		}
		sections[id] = payload
	}
	return sections, nil
}

// decodeSection parses one payload with a constructor-style codec and
// requires the payload to be consumed exactly.
func decodeSection[T any](id string, payload []byte, parse func(*binio.Reader) (T, error)) (T, error) {
	br := binio.NewReader(payload)
	v, err := parse(br)
	if err != nil {
		var zero T
		return zero, fmt.Errorf("snapshot: section %q: %w", id, err)
	}
	if err := br.Close(); err != nil {
		var zero T
		return zero, fmt.Errorf("snapshot: section %q: %w", id, err)
	}
	return v, nil
}

// attachSection parses one payload with an attach-style codec.
func attachSection(id string, payload []byte, attach func(*binio.Reader) error) error {
	br := binio.NewReader(payload)
	if err := attach(br); err != nil {
		return fmt.Errorf("snapshot: section %q: %w", id, err)
	}
	if err := br.Close(); err != nil {
		return fmt.Errorf("snapshot: section %q: %w", id, err)
	}
	return nil
}
