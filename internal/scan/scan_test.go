package scan

import (
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

func TestScanBasics(t *testing.T) {
	tab := dataset.NewTable([]string{"a", "b"})
	tab.Append([]float64{1, 10})
	tab.Append([]float64{2, 20})
	tab.Append([]float64{3, 30})
	s := New(tab)
	if s.Name() != "FullScan" || s.Len() != 3 || s.Dims() != 2 || s.MemoryOverhead() != 0 {
		t.Error("identity accessors broken")
	}
	r := index.NewRect([]float64{1.5, 0}, []float64{3, 25})
	if got := index.Count(s, r); got != 1 {
		t.Errorf("Count = %d, want 1 (only row {2,20})", got)
	}
	if got := index.Count(s, index.Full(2)); got != 3 {
		t.Errorf("full rect Count = %d, want 3", got)
	}
}

func TestScanEmptyRect(t *testing.T) {
	tab := dataset.NewTable([]string{"a"})
	tab.Append([]float64{1})
	s := New(tab)
	r := index.NewRect([]float64{2}, []float64{1})
	if index.Count(s, r) != 0 {
		t.Error("empty rect must match nothing")
	}
}

func TestScanVisitsRowsInOrder(t *testing.T) {
	tab := dataset.NewTable([]string{"a"})
	for i := 0; i < 5; i++ {
		tab.Append([]float64{float64(i)})
	}
	s := New(tab)
	var got []float64
	s.Query(index.Full(1), func(row []float64) { got = append(got, row[0]) })
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("scan order broken: %v", got)
		}
	}
}
