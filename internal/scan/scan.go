// Package scan provides the full-scan baseline: every row is checked
// against the query rectangle. It has zero directory overhead and serves as
// both the slowest baseline of Figure 6 and the correctness oracle for the
// property-based tests of every other index.
package scan

import (
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

// Scan wraps a table as an index.Interface.
type Scan struct {
	t *dataset.Table
}

var _ index.Interface = (*Scan)(nil)

// New creates a full-scan "index" over t. The table is referenced, not
// copied.
func New(t *dataset.Table) *Scan { return &Scan{t: t} }

// Name implements index.Interface.
func (s *Scan) Name() string { return "FullScan" }

// Len implements index.Interface.
func (s *Scan) Len() int { return s.t.Len() }

// Dims implements index.Interface.
func (s *Scan) Dims() int { return s.t.Dims() }

// MemoryOverhead implements index.Interface; a scan keeps no directory.
func (s *Scan) MemoryOverhead() int64 { return 0 }

// Query implements index.Interface: the legacy run-to-completion shim over
// Scan.
func (s *Scan) Query(r index.Rect, visit index.Visitor) {
	s.Scan(r, index.AsYield(visit), nil)
}

// BatchKernel implements index.Kernel.
func (s *Scan) BatchKernel() string { return "fullscan-batch" }

var _ index.ScanBatcher = (*Scan)(nil)

// ScanBatch implements index.ScanBatcher directly over the table's
// contiguous row-major slab: each window of index.BatchRows rows gets its
// selection bitmap from per-column range loops, with no per-row calls at
// all. Probe counters match Scan exactly (one page, every row scanned,
// matches counted); the abort hook is polled per batch.
func (s *Scan) ScanBatch(r index.Rect, yield index.BatchYield, probe *index.Probe) bool {
	if r.Empty() {
		return true
	}
	dims := s.t.Dims()
	data := s.t.Data
	rows := s.t.Len()
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(rows)
	}
	sel := make([]uint64, index.BatchWords(index.BatchRows))
	for off := 0; off < rows; off += index.BatchRows {
		if probe.Aborted() {
			return false
		}
		n := rows - off
		if n > index.BatchRows {
			n = index.BatchRows
		}
		b := index.Batch{
			Page: data[off*dims : (off+n)*dims],
			Dims: dims,
			Rows: n,
			Sel:  sel[:index.BatchWords(n)],
		}
		index.SelectRect(b.Page, dims, n, r, b.Sel)
		if probe != nil {
			probe.Matched += int64(b.Selected())
			probe.Batches++
		}
		if !yield(&b) {
			return false
		}
	}
	return true
}

// Scan implements index.Interface by testing every row until yield stops
// the scan.
func (s *Scan) Scan(r index.Rect, yield index.Yield, probe *index.Probe) bool {
	if r.Empty() {
		return true
	}
	dims := s.t.Dims()
	data := s.t.Data
	if probe != nil {
		probe.Pages++
		probe.Scanned += int64(s.t.Len())
	}
	// A full scan has no pages; poll the abort hook every pageRows rows so
	// cancellation still lands at page-ish granularity.
	const pageRows = 4096
	sinceAbort := 0
	for off := 0; off < len(data); off += dims {
		if sinceAbort++; sinceAbort >= pageRows {
			sinceAbort = 0
			if probe.Aborted() {
				return false
			}
		}
		row := data[off : off+dims : off+dims]
		if r.Contains(row) {
			if probe != nil {
				probe.Matched++
			}
			if !yield(row) {
				return false
			}
		}
	}
	return true
}
