package serve

import "sync"

// Single-flight coalescing: identical concurrent misses share one compute
// call instead of each fanning out across the engine. Minimal reimplementation
// of the well-known pattern (golang.org/x/sync/singleflight) so the layer
// stays dependency-free.

// flightCall is one in-flight compute shared by its coalesced callers.
type flightCall struct {
	wg  sync.WaitGroup
	val any
	err error
}

// flightGroup deduplicates concurrent calls by key. The zero value is
// ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// Do executes fn once per key among concurrent callers: the first caller
// (the leader) runs fn; callers arriving while it runs block and receive
// the same result with shared=true. Once the leader finishes, the key is
// forgotten — a later Do starts fresh.
func (g *flightGroup) Do(key string, fn func() (any, error)) (v any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
