package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Admission.Acquire when a request is shed:
// every execution slot is busy and the wait queue is full, or the slot
// wait exceeded the deadline. The HTTP layer maps it to 429 + Retry-After.
var ErrOverloaded = errors.New("serve: overloaded, retry later")

// Admission is the serving tier's overload valve: a semaphore of
// maxInflight execution slots fronted by a bounded wait queue with a
// deadline. Requests beyond the slots wait up to maxWait for one; requests
// beyond slots+queue — or whose wait times out — are shed immediately with
// ErrOverloaded, so overload degrades into fast 429s instead of a
// convoying collapse of every in-flight query. A nil *Admission admits
// everything (the control is disabled).
type Admission struct {
	slots   chan struct{}
	queued  atomic.Int64
	maxQ    int64
	maxWait time.Duration
}

// NewAdmission builds an admission controller with maxInflight execution
// slots, a wait queue of maxQueue requests, and a queue deadline of
// maxWait. maxInflight must be ≥ 1; maxQueue ≤ 0 disables queueing (over-
// limit requests shed immediately); maxWait ≤ 0 falls back to one second.
// The inflight/queued gauges are (re-)registered over this controller.
func NewAdmission(maxInflight, maxQueue int, maxWait time.Duration) *Admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxWait <= 0 {
		maxWait = time.Second
	}
	a := &Admission{
		slots:   make(chan struct{}, maxInflight),
		maxQ:    int64(maxQueue),
		maxWait: maxWait,
	}
	obs := a // capture for the gauges; latest registration wins
	admInflight.SetFunc(func() float64 { return float64(len(obs.slots)) })
	admQueued.SetFunc(func() float64 { return float64(obs.queued.Load()) })
	return a
}

// Acquire admits the request or sheds it. It returns nil once an execution
// slot is held (pair with Release), ErrOverloaded when the request is shed,
// or the context's error when the caller went away while queued.
func (a *Admission) Acquire(ctx context.Context) error {
	if a == nil {
		return nil
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	// Every slot is busy: join the bounded queue or shed. The CAS loop
	// bounds the queue without a lock — competitors past the bound fail
	// fast rather than serialise.
	for {
		n := a.queued.Load()
		if n >= a.maxQ {
			admShedQueueFull.Inc()
			return ErrOverloaded
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer a.queued.Add(-1)
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	start := time.Now()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case a.slots <- struct{}{}:
		admQueueWait.Observe(time.Since(start).Seconds())
		return nil
	case <-timer.C:
		admShedTimeout.Inc()
		return ErrOverloaded
	case <-done:
		return ctx.Err()
	}
}

// Release returns the slot taken by a successful Acquire.
func (a *Admission) Release() {
	if a == nil {
		return
	}
	<-a.slots
}

// RetryAfter suggests how long a shed client should back off: the queue
// deadline, the horizon after which a freed slot would have admitted it.
func (a *Admission) RetryAfter() time.Duration {
	if a == nil {
		return 0
	}
	return a.maxWait
}

// AdmissionStats is the /stats view of the controller.
type AdmissionStats struct {
	MaxInflight   int     `json:"max_inflight"`
	Inflight      int     `json:"inflight"`
	MaxQueue      int     `json:"max_queue"`
	Queued        int     `json:"queued"`
	ShedQueueFull int64   `json:"shed_queue_full"`
	ShedTimeout   int64   `json:"shed_timeout"`
	QueueWaitMS   float64 `json:"queue_wait_deadline_ms"`
}

// Stats snapshots the controller. Shed counters are process-global (they
// are metric families), so across multiple controllers in one process they
// report the combined total.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		MaxInflight:   cap(a.slots),
		Inflight:      len(a.slots),
		MaxQueue:      int(a.maxQ),
		Queued:        int(a.queued.Load()),
		ShedQueueFull: admShedQueueFull.Value(),
		ShedTimeout:   admShedTimeout.Value(),
		QueueWaitMS:   float64(a.maxWait) / float64(time.Millisecond),
	}
}
