package serve

import "github.com/coax-index/coax/internal/obs"

// Serving-tier metric families: result cache, request coalescing, and
// admission control. Cache and coalescing counters are process-global
// (multiple caches in one process — tests, the bench's in-process server —
// sum into them; per-instance numbers come from Cache.Stats). The gauges
// are callback-backed and follow the registry's latest-structure-wins
// replacement rule.
var (
	cacheHits        = obs.NewCounter("coax_cache_hits_total", "Result-cache lookups answered from a valid cached entry.")
	cacheMisses      = obs.NewCounter("coax_cache_misses_total", "Result-cache lookups that had to execute the query (includes stale evictions).")
	cacheStaleEvicts = obs.NewCounter("coax_cache_stale_evictions_total", "Cached entries evicted because a shard mutation version moved past their capture.")
	cacheEvicts      = obs.NewCounter("coax_cache_lru_evictions_total", "Cached entries evicted by LRU capacity pressure.")

	coalescedRequests = obs.NewCounter("coax_coalesced_requests_total", "Requests that shared another identical in-flight query's execution instead of running their own.")

	admInflight      = obs.NewGauge("coax_admission_inflight", "Execution slots currently held by admitted requests.")
	admQueued        = obs.NewGauge("coax_admission_queued", "Requests currently waiting for an execution slot.")
	admShedQueueFull = obs.NewCounter("coax_admission_shed_total", "Requests shed by admission control.", obs.Label{Key: "reason", Value: "queue_full"})
	admShedTimeout   = obs.NewCounter("coax_admission_shed_total", "Requests shed by admission control.", obs.Label{Key: "reason", Value: "timeout"})
	admQueueWait     = obs.NewHistogram("coax_admission_queue_wait_seconds", "Time admitted requests spent waiting for an execution slot.", 1e-6, 60)
)
