package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/coax-index/coax/internal/index"
)

// fakeInv is a hand-cranked Invalidator: the test bumps shard versions to
// simulate mutations. Every rect spans all shards unless span is set.
type fakeInv struct {
	vers []atomic.Uint64
	span func(r index.Rect) (int, int)
}

func newFakeInv(shards int) *fakeInv { return &fakeInv{vers: make([]atomic.Uint64, shards)} }

func (f *fakeInv) NumShards() int            { return len(f.vers) }
func (f *fakeInv) ShardVersion(i int) uint64 { return f.vers[i].Load() }
func (f *fakeInv) ShardSpan(r index.Rect) (int, int) {
	if f.span != nil {
		return f.span(r)
	}
	return 0, len(f.vers) - 1
}

func rect2(x0, y0, x1, y1 float64) index.Rect {
	return index.Rect{Min: []float64{x0, y0}, Max: []float64{x1, y1}}
}

func TestKeyCanonicalization(t *testing.T) {
	r := rect2(1, 2, 3, 4)
	base := Key(r, 100, false, "")
	if Key(rect2(1, 2, 3, 4), 100, false, "") != base {
		t.Error("identical queries produced different keys")
	}
	distinct := []string{
		Key(rect2(1.5, 2, 3, 4), 100, false, ""),
		Key(rect2(1, 2, 3, 4.5), 100, false, ""),
		Key(r, 101, false, ""),
		Key(r, -1, false, ""),
		Key(r, 100, true, ""),
	}
	seen := map[string]bool{base: true}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("variant %d collided with another key", i)
		}
		seen[k] = true
	}
	// -0 and +0 have different bit patterns, so they are different keys;
	// both are answered correctly, just without sharing a cache line.
	if Key(rect2(0, 2, 3, 4), 100, false, "") == Key(rect2(math.Copysign(0, -1), 2, 3, 4), 100, false, "") {
		t.Error("negative zero folded into positive zero")
	}
}

func TestCacheStaleInvalidation(t *testing.T) {
	inv := newFakeInv(4)
	c := NewCache(inv, 64)
	key := Key(rect2(0, 0, 1, 1), -1, false, "")

	c.Put(key, 1, []uint64{inv.ShardVersion(1), inv.ShardVersion(2)}, "answer")
	if v, ok := c.Get(key); !ok || v != "answer" {
		t.Fatalf("expected hit, got (%v, %v)", v, ok)
	}
	// A mutation on a shard outside the captured span leaves the entry valid.
	inv.vers[0].Add(1)
	inv.vers[3].Add(1)
	if _, ok := c.Get(key); !ok {
		t.Fatal("mutation outside the span invalidated the entry")
	}
	// A mutation inside the span evicts it — permanently.
	inv.vers[2].Add(1)
	if _, ok := c.Get(key); ok {
		t.Fatal("stale entry was served")
	}
	if c.Len() != 0 {
		t.Fatalf("stale entry not evicted: len=%d", c.Len())
	}
	st := c.Stats()
	if st.Hits != 2 || st.StaleEvictions != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits, 1 stale eviction, 1 miss", st)
	}
}

func TestCacheLRUBound(t *testing.T) {
	inv := newFakeInv(1)
	cap := 32
	c := NewCache(inv, cap)
	for i := 0; i < 50*cap; i++ {
		c.Put(fmt.Sprintf("key-%d", i), 0, []uint64{0}, i)
	}
	if c.Len() > cap {
		t.Fatalf("cache holds %d entries, capacity %d", c.Len(), cap)
	}
	if ev := c.Stats().LRUEvictions; ev == 0 {
		t.Fatal("no LRU evictions recorded despite overfill")
	}
	// Replacing an existing key must not grow the cache.
	before := c.Len()
	c.Put("key-1599", 0, []uint64{0}, "replaced")
	if c.Len() != before {
		t.Fatalf("replacement changed len from %d to %d", before, c.Len())
	}
}

func TestCacheLRUKeepsRecent(t *testing.T) {
	inv := newFakeInv(1)
	// Single-entry stripes: every stripe holds exactly its most recent key.
	c := NewCache(inv, 1)
	c.Put("a", 0, []uint64{0}, 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	// A second key on the same stripe evicts "a"; on a different stripe both
	// live. Either way the most recently inserted key must be present.
	c.Put("b", 0, []uint64{0}, 2)
	if _, ok := c.Get("b"); !ok {
		t.Fatal("most recent entry evicted")
	}
}

func TestSingleFlightCoalesces(t *testing.T) {
	var g flightGroup
	const n = 8
	gate := make(chan struct{})
	arrived := make(chan struct{}, n)
	var execs, shared atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, wasShared := g.Do("k", func() (any, error) {
				arrived <- struct{}{}
				<-gate // hold the flight open until every goroutine has joined
				execs.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%v, %v)", v, err)
			}
			if wasShared {
				shared.Add(1)
			}
		}()
	}
	<-arrived // the leader is inside fn; joiners now pile onto the same call
	// Give the joiners a moment to register before releasing the leader.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", execs.Load())
	}
	if shared.Load() != n-1 {
		t.Fatalf("%d callers saw shared=true, want %d", shared.Load(), n-1)
	}
}

func TestQueryCacheDo(t *testing.T) {
	inv := newFakeInv(2)
	qc := NewQueryCache(inv, 16)
	r := rect2(0, 0, 1, 1)
	key := Key(r, 10, false, "")
	var computes atomic.Int64
	compute := func() (any, error) {
		computes.Add(1)
		return "result", nil
	}

	v, fromCache, err := qc.Do(key, r, compute)
	if err != nil || v != "result" || fromCache {
		t.Fatalf("first Do = (%v, %v, %v)", v, fromCache, err)
	}
	v, fromCache, err = qc.Do(key, r, compute)
	if err != nil || v != "result" || !fromCache {
		t.Fatalf("second Do = (%v, %v, %v), want cache hit", v, fromCache, err)
	}
	if computes.Load() != 1 {
		t.Fatalf("computed %d times, want 1", computes.Load())
	}

	// A mutation invalidates; the next Do recomputes.
	inv.vers[1].Add(1)
	_, fromCache, _ = qc.Do(key, r, compute)
	if fromCache {
		t.Fatal("stale entry served after version bump")
	}
	if computes.Load() != 2 {
		t.Fatalf("computed %d times after invalidation, want 2", computes.Load())
	}

	// Errors are not cached.
	boom := errors.New("boom")
	_, _, err = qc.Do(Key(r, 11, false, ""), r, func() (any, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	var computed atomic.Int64
	_, fromCache, _ = qc.Do(Key(r, 11, false, ""), r, func() (any, error) { computed.Add(1); return 1, nil })
	if fromCache || computed.Load() != 1 {
		t.Fatal("a failed compute left a cache entry behind")
	}
}

// A mutation that lands while the compute is running must poison the entry:
// the versions were captured before the scan, so the post-mutation lookup
// sees a mismatch even though the cached value was stored after the bump.
func TestQueryCacheMidScanMutation(t *testing.T) {
	inv := newFakeInv(1)
	qc := NewQueryCache(inv, 16)
	r := rect2(0, 0, 1, 1)
	key := Key(r, -1, false, "")
	_, _, err := qc.Do(key, r, func() (any, error) {
		inv.vers[0].Add(1) // mutation overlaps the scan
		return "possibly-torn", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, fromCache, _ := qc.Do(key, r, func() (any, error) { return "fresh", nil }); fromCache {
		t.Fatal("entry stored during an overlapping mutation was served")
	}
}

func TestAdmissionNilAdmitsAll(t *testing.T) {
	var a *Admission
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Release()
	if a.RetryAfter() != 0 {
		t.Fatal("nil admission has a retry hint")
	}
}

func TestAdmissionShedAndQueue(t *testing.T) {
	a := NewAdmission(1, 1, 200*time.Millisecond)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One request fits the queue and admits once the slot frees.
	admitted := make(chan error, 1)
	go func() { admitted <- a.Acquire(context.Background()) }()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })

	// The queue is full: the next request sheds immediately.
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue overflow returned %v, want ErrOverloaded", err)
	}

	a.Release()
	if err := <-admitted; err != nil {
		t.Fatalf("queued request not admitted after release: %v", err)
	}
	a.Release()

	st := a.Stats()
	if st.ShedQueueFull < 1 {
		t.Fatalf("stats = %+v, want at least one queue-full shed", st)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := NewAdmission(1, 4, 30*time.Millisecond)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	start := time.Now()
	if err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("timed-out wait returned %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("shed after %v, before the deadline", elapsed)
	}
}

func TestAdmissionContextCancel(t *testing.T) {
	a := NewAdmission(1, 4, time.Minute)
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Acquire(ctx) }()
	waitFor(t, func() bool { return a.Stats().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait returned %v, want context.Canceled", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
