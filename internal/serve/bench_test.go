package serve

// Microbenchmarks for the serving-tier hot paths — the benchstat targets
// the CI perf-regression gate watches. Each one isolates a single layer:
// key canonicalization, cache hit/miss/validation, single-flight overhead,
// and the admission fast path.

import (
	"context"
	"fmt"
	"testing"

	"github.com/coax-index/coax/internal/index"
)

func benchRect() index.Rect {
	return index.Rect{Min: []float64{1, 2, 3, 4}, Max: []float64{5, 6, 7, 8}}
}

func BenchmarkKey(b *testing.B) {
	r := benchRect()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Key(r, 100, false, "")
	}
}

func BenchmarkCacheHit(b *testing.B) {
	inv := newFakeInv(8)
	c := NewCache(inv, 1024)
	key := Key(benchRect(), 100, false, "")
	c.Put(key, 0, []uint64{0, 0, 0, 0, 0, 0, 0, 0}, "answer")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

func BenchmarkCacheMiss(b *testing.B) {
	inv := newFakeInv(8)
	c := NewCache(inv, 1024)
	key := Key(benchRect(), 100, false, "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(key); ok {
			b.Fatal("unexpected hit")
		}
	}
}

func BenchmarkCachePutEvict(b *testing.B) {
	inv := newFakeInv(1)
	c := NewCache(inv, 256)
	vers := []uint64{0}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(keys[i%len(keys)], 0, vers, i)
	}
}

func BenchmarkQueryCacheHitParallel(b *testing.B) {
	inv := newFakeInv(8)
	qc := NewQueryCache(inv, 1024)
	r := benchRect()
	key := Key(r, 100, false, "")
	if _, _, err := qc.Do(key, r, func() (any, error) { return "answer", nil }); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, fromCache, _ := qc.Do(key, r, func() (any, error) { return "answer", nil }); !fromCache {
				b.Fatal("unexpected miss")
			}
		}
	})
}

func BenchmarkSingleFlightUncontended(b *testing.B) {
	var g flightGroup
	fn := func() (any, error) { return 1, nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Do("k", fn)
	}
}

func BenchmarkAdmissionAcquireRelease(b *testing.B) {
	a := NewAdmission(64, 64, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		a.Release()
	}
}
