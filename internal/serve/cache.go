package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheShards is the lock-striping factor of the result cache. Sixteen
// stripes keep lock contention negligible at serving concurrency without
// fragmenting a small capacity into useless per-stripe quotas.
const cacheShards = 16

// entry is one cached answer plus the invalidation capture that guards it:
// the versions of shards [lo, lo+len(vers)) at the moment the computing
// query began.
type entry struct {
	key  string
	lo   int
	vers []uint64
	val  any
}

// cacheStripe is one LRU stripe: a map for lookup and an intrusive list
// for recency, both under one mutex.
type cacheStripe struct {
	mu    sync.Mutex
	elems map[string]*list.Element
	lru   *list.List // front = most recently used
	cap   int
}

// Cache is a bounded, sharded-LRU result cache whose entries are
// invalidated by the engine's per-shard mutation versions. Get validates
// on every lookup (two atomic loads per spanned shard) rather than on
// mutation, so the mutation path pays nothing for the cache's existence.
type Cache struct {
	src     Invalidator
	stripes [cacheShards]cacheStripe
	entries atomic.Int64
	cap     int

	hits, misses, stale, evicts atomic.Int64
}

// NewCache builds a cache holding at most capacity entries (minimum one
// per stripe) validated against src.
func NewCache(src Invalidator, capacity int) *Cache {
	c := &Cache{src: src, cap: capacity}
	per := capacity / cacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.stripes {
		c.stripes[i].elems = make(map[string]*list.Element)
		c.stripes[i].lru = list.New()
		c.stripes[i].cap = per
	}
	return c
}

// fnv64 is FNV-1a over the key, selecting the stripe.
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Get returns the cached value for key when one exists and its version
// capture still matches the engine. A mismatch evicts the entry (it can
// never become valid again — versions only grow) and reports a miss.
func (c *Cache) Get(key string) (any, bool) {
	st := &c.stripes[fnv64(key)%cacheShards]
	st.mu.Lock()
	el, ok := st.elems[key]
	if !ok {
		st.mu.Unlock()
		c.misses.Add(1)
		cacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*entry)
	for i, v := range e.vers {
		if c.src.ShardVersion(e.lo+i) != v {
			st.lru.Remove(el)
			delete(st.elems, key)
			st.mu.Unlock()
			c.entries.Add(-1)
			c.stale.Add(1)
			c.misses.Add(1)
			cacheStaleEvicts.Inc()
			cacheMisses.Inc()
			return nil, false
		}
	}
	st.lru.MoveToFront(el)
	val := e.val
	st.mu.Unlock()
	c.hits.Add(1)
	cacheHits.Inc()
	return val, true
}

// Put stores val for key with its version capture: vers holds the
// mutation versions of shards [lo, lo+len(vers)) read before the value was
// computed. An existing entry for key is replaced; over-capacity stripes
// evict their least-recently-used entry.
func (c *Cache) Put(key string, lo int, vers []uint64, val any) {
	st := &c.stripes[fnv64(key)%cacheShards]
	st.mu.Lock()
	if el, ok := st.elems[key]; ok {
		e := el.Value.(*entry)
		e.lo, e.vers, e.val = lo, vers, val
		st.lru.MoveToFront(el)
		st.mu.Unlock()
		return
	}
	st.elems[key] = st.lru.PushFront(&entry{key: key, lo: lo, vers: vers, val: val})
	evicted := 0
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		st.lru.Remove(back)
		delete(st.elems, back.Value.(*entry).key)
		evicted++
	}
	st.mu.Unlock()
	c.entries.Add(int64(1 - evicted))
	if evicted > 0 {
		c.evicts.Add(int64(evicted))
		cacheEvicts.Add(int64(evicted))
	}
}

// Len reports the entries currently held.
func (c *Cache) Len() int { return int(c.entries.Load()) }

// CacheStats is the /stats view of the cache.
type CacheStats struct {
	Entries        int   `json:"entries"`
	Capacity       int   `json:"capacity"`
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	StaleEvictions int64 `json:"stale_evictions"`
	LRUEvictions   int64 `json:"lru_evictions"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:        c.Len(),
		Capacity:       c.cap,
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		StaleEvictions: c.stale.Load(),
		LRUEvictions:   c.evicts.Load(),
	}
}
