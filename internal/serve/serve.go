// Package serve is the serving-tier hardening layer over the sharded
// engine: a bounded, epoch-invalidated result cache for hot queries,
// single-flight coalescing of identical in-flight queries, and admission
// control under overload. cmd/coaxserve mounts all three in front of its
// /query and /batch handlers; everything is instrumented through
// internal/obs so /metrics and /stats show hit rates, coalescing, and shed
// traffic.
//
// # Invalidation contract
//
// The cache never revalidates by re-executing a query; it relies on the
// engine's per-shard mutation versions (shard.Sharded.ShardVersion). Before
// a query executes, the versions of every shard its rectangle can probe
// (shard.Sharded.ShardSpan) are captured; the computed answer is cached
// together with that capture. A lookup serves the entry only while every
// captured version still reads the same — any insert, delete, update,
// compaction, or epoch-swap rebuild bumps the version of the shard it
// touches before releasing that shard's lock, so a changed version is
// visible to lookups before the mutation is acknowledged to its caller.
// Because the capture happens before the scan, a mutation that lands while
// the query is still running also forces a mismatch: the entry is stored
// already stale and is evicted on first touch instead of ever being served.
// The cost of the conservatism is only a lost cache slot, never a stale
// answer.
package serve

import (
	"encoding/binary"
	"math"

	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
)

// Invalidator is the slice of the sharded engine the cache needs: the
// per-shard mutation versions and the shard span a rectangle can probe.
// *shard.Sharded implements it.
type Invalidator interface {
	NumShards() int
	ShardVersion(i int) uint64
	ShardSpan(r index.Rect) (lo, hi int)
}

// Key canonicalizes one rectangle query into a cache/coalescing key: the
// bit patterns of every bound, the row limit, the early-termination flag,
// and a canonical aggregation descriptor (empty for row queries). Two
// requests producing the same key are answerable by the same response
// bytes, so the key is also the single-flight identity. Within one engine
// every rectangle has the same dimensionality, so row keys (fixed length)
// and agg keys (fixed length plus descriptor) can never collide.
func Key(r index.Rect, limit int, early bool, agg string) string {
	b := make([]byte, 0, 16*len(r.Min)+9+len(agg))
	var w [8]byte
	for _, v := range r.Min {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		b = append(b, w[:]...)
	}
	for _, v := range r.Max {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
		b = append(b, w[:]...)
	}
	binary.LittleEndian.PutUint64(w[:], uint64(int64(limit)))
	b = append(b, w[:]...)
	if early {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, agg...)
	return string(b)
}

// QueryCache composes the result cache with single-flight coalescing over
// one engine. Safe for fully concurrent use.
type QueryCache struct {
	src    Invalidator
	cache  *Cache
	flight flightGroup
}

// NewQueryCache builds a query cache of at most capacity entries over src
// and registers the cache-occupancy gauge (latest registration wins, like
// the index-health gauges).
func NewQueryCache(src Invalidator, capacity int) *QueryCache {
	qc := &QueryCache{src: src, cache: NewCache(src, capacity)}
	obs.NewGaugeFunc("coax_cache_entries", "Entries currently held by the result cache.",
		func() float64 { return float64(qc.cache.Len()) })
	return qc
}

// Do answers one canonicalized query: a valid cached entry is returned
// immediately; otherwise identical concurrent misses coalesce onto one
// compute call whose (shared, read-only) result every caller receives and
// the cache retains. compute's result must therefore never be mutated by
// callers. fromCache reports whether the value was served from the cache
// without running compute. A compute error is returned to every coalesced
// caller and nothing is cached — callers whose own context is still live
// should fall back to computing directly, since the error may belong to
// the leader's request (a disconnected client cancelling the shared scan).
func (qc *QueryCache) Do(key string, r index.Rect, compute func() (any, error)) (v any, fromCache bool, err error) {
	if v, ok := qc.cache.Get(key); ok {
		return v, true, nil
	}
	v, err, shared := qc.flight.Do(key, func() (any, error) {
		// Capture the span's versions BEFORE the scan: a mutation landing
		// mid-scan then mismatches at serve time (see the package comment).
		lo, hi := qc.src.ShardSpan(r)
		vers := make([]uint64, hi-lo+1)
		for i := range vers {
			vers[i] = qc.src.ShardVersion(lo + i)
		}
		val, cerr := compute()
		if cerr != nil {
			return nil, cerr
		}
		qc.cache.Put(key, lo, vers, val)
		return val, nil
	})
	if shared {
		coalescedRequests.Inc()
	}
	return v, false, err
}

// Stats snapshots the cache counters for /stats.
func (qc *QueryCache) Stats() CacheStats { return qc.cache.Stats() }
