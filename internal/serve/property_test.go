package serve_test

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/serve"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/workload"
)

// fdTable plants one soft FD (col1 ≈ 2·col0 + 50) with an outlier fraction
// and two independent columns — the standard property-test table shape.
func fdTable(rng *rand.Rand, n int, outlierFrac float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u", "v"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < outlierFrac {
			d = rng.Float64() * 2100
		} else {
			d = 2*x + 50 + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, rng.Float64() * 100, rng.NormFloat64() * 10})
	}
	return t
}

func coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 4000
	return opt
}

func sortRows(rows [][]float64) {
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
}

func rowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// collect runs r against the engine, copying every row — the compute
// function the cache retains.
func collect(s *shard.Sharded, r index.Rect) [][]float64 {
	var out [][]float64
	s.Query(r, func(row []float64) {
		out = append(out, append([]float64(nil), row...))
	})
	return out
}

// Property: with the result cache in front of the sharded engine, a mixed
// stream of queries, inserts, deletes, updates, compactions, and epoch-swap
// rebuilds never observes a stale cached answer. Every query — whether
// computed, coalesced, or served from cache — must equal a full scan of the
// generator's live multiset at that instant. A rect pool replays earlier
// rectangles so the cache actually serves hits across epoch bumps rather
// than being a pass-through.
func TestCacheNeverServesStaleProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 800 + rng.Intn(1600)
		tab := fdTable(rng, n, 0.15)
		so := shard.Options{NumShards: 1 + rng.Intn(4), Workers: 1 + rng.Intn(3), Partition: shard.ByRange, Column: -1}
		if rng.Float64() < 0.4 {
			so.Partition = shard.ByHash
		}
		s, err := shard.Build(tab, coreOptions(), so)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}

		gen := workload.NewMixGenerator(tab, seed+1, workload.DefaultMixConfig())
		qc := serve.NewQueryCache(s, 128)
		var pool []index.Rect

		ops := 300
		if testing.Short() {
			ops = 120
		}
		for i := 0; i < ops; i++ {
			op := gen.Next()
			switch op.Kind {
			case workload.OpInsert:
				if err := s.Insert(op.Row); err != nil {
					t.Logf("seed %d op %d: insert: %v", seed, i, err)
					return false
				}
			case workload.OpDelete:
				if err := s.Delete(op.Row); err != nil {
					t.Logf("seed %d op %d: delete: %v", seed, i, err)
					return false
				}
			case workload.OpUpdate:
				if err := s.Update(op.Old, op.New); err != nil {
					t.Logf("seed %d op %d: update: %v", seed, i, err)
					return false
				}
			case workload.OpQuery:
				r := op.Rect
				if len(pool) > 0 && rng.Float64() < 0.7 {
					r = pool[rng.Intn(len(pool))] // replay: give the cache hits to serve
				} else if len(pool) < 32 {
					pool = append(pool, r)
				}
				v, _, err := qc.Do(serve.Key(r, -1, false, ""), r, func() (any, error) {
					return collect(s, r), nil
				})
				if err != nil {
					t.Logf("seed %d op %d: query: %v", seed, i, err)
					return false
				}
				// The cached value is shared — copy the top-level slice
				// before sorting instead of reordering it in place.
				got := append([][]float64(nil), v.([][]float64)...)
				want := index.Collect(scan.New(gen.LiveView()), r)
				sortRows(got)
				sortRows(want)
				if !rowsEqual(got, want) {
					t.Logf("seed %d op %d: rect %v: got %d rows, want %d (stale cache?)",
						seed, i, r, len(got), len(want))
					return false
				}
			}
			// Periodic lifecycle churn: epoch-swap rebuilds and tombstone
			// compactions bump shard versions exactly like organic mutations.
			if i%60 == 59 {
				if rng.Float64() < 0.5 {
					// A rebuild may legitimately fail on a drained shard;
					// failure leaves the old epoch serving, which is fine.
					_ = s.RebuildShard(rng.Intn(s.NumShards()))
				} else {
					s.Compact()
				}
			}
		}
		st := qc.Stats()
		if st.Hits == 0 {
			t.Logf("seed %d: cache never hit (hits=0, misses=%d) — the property exercised nothing", seed, st.Misses)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Concurrent smoke test under -race: readers serve a fixed rect pool
// through the cache while a writer mutates rows inside those rectangles and
// forces rebuilds. Each response must only contain rows inside its
// rectangle with the expected width — torn or stale-beyond-bounds results
// would surface here, and the race detector owns the memory-model half.
func TestQueryCacheConcurrentMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := fdTable(rng, 4000, 0.1)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4, Workers: 2, Partition: shard.ByRange, Column: -1})
	if err != nil {
		t.Fatal(err)
	}
	qc := serve.NewQueryCache(s, 64)

	pool := make([]index.Rect, 8)
	for i := range pool {
		pool[i] = workload.RandRect(rng, tab)
	}

	stop := make(chan struct{})
	var writerWG, readerWG sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer: insert/delete churn plus lifecycle churn
		defer writerWG.Done()
		wrng := rand.New(rand.NewSource(11))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			row := append([]float64(nil), tab.Row(wrng.Intn(4000))...)
			if err := s.Insert(row); err != nil {
				t.Error(err)
				return
			}
			if err := s.Delete(row); err != nil {
				t.Error(err)
				return
			}
			if i%50 == 49 {
				_ = s.RebuildShard(wrng.Intn(s.NumShards()))
			}
		}
	}()

	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func(g int) {
			defer readerWG.Done()
			qrng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 300; i++ {
				r := pool[qrng.Intn(len(pool))]
				v, _, err := qc.Do(serve.Key(r, -1, false, ""), r, func() (any, error) {
					return collect(s, r), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range v.([][]float64) {
					if len(row) != tab.Dims() || !r.Contains(row) {
						t.Errorf("reader %d: row %v outside rect %v", g, row, r)
						return
					}
				}
			}
		}(g)
	}
	readerWG.Wait() // readers run against a continuously mutating engine
	close(stop)
	writerWG.Wait()
}
