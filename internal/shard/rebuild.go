package shard

import (
	"errors"
	"fmt"
	"time"

	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
)

// Online epoch-swap rebuild. A shard whose drift counters mark it stale is
// rebuilt off the query path: the live rows are collected while queries
// keep running, a fresh COAX (new soft-FD detection, new split, new epoch)
// is built with no locks held, the mutations that landed in the meantime
// are replayed from the shard's delta log, and the new epoch is swapped in
// RCU-style under one write lock. Shards rebuild independently, so only
// the rebuilding shard ever blocks — never during the expensive
// detection/build step. The collect step is bounded by a memory copy of
// the shard's rows; the swap step holds the write lock for the delta-log
// replay, so its cost is proportional to the mutations that landed during
// the rebuild (a write-heavy shard pays a longer pause at swap time).

// ErrRebuildInProgress is returned by RebuildShard when the shard is
// already mid-rebuild.
var ErrRebuildInProgress = errors.New("shard: rebuild already in progress")

// RebuildShard rebuilds shard i online and swaps the new epoch in. Queries
// proceed throughout; the shard's mutations block only while live rows are
// collected and while the delta log is replayed into the new epoch just
// before the swap. Concurrent rebuilds of the same shard are rejected with
// ErrRebuildInProgress; different shards may rebuild concurrently.
func (s *Sharded) RebuildShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("shard: ordinal %d out of range [0,%d)", i, len(s.shards))
	}
	slot := s.shards[i]
	if !slot.rebuilding.CompareAndSwap(false, true) {
		return ErrRebuildInProgress
	}
	defer slot.rebuilding.Store(false)

	track := obs.On()
	var rebuildStart time.Time
	if track {
		rebuildStart = time.Now()
	}

	// Phase 1 — install the delta log and collect the live rows under one
	// read lock. Holding it excludes every mutator for the whole critical
	// section, so no mutation can slip between the log's creation and the
	// collection cut: every mutation from here on is both applied to the
	// old epoch and recorded for replay. Writing slot.delta under a read
	// lock is race-free because mutators only touch it write-locked.
	slot.mu.RLock()
	slot.delta = lifecycle.NewDeltaLog(s.dims)
	old := slot.idx
	live := old.LiveRows()
	slot.mu.RUnlock()

	// Phase 2 — build the replacement epoch with no locks held: soft-FD
	// detection and index construction run entirely off the query path.
	next, err := old.RebuildFrom(live)
	if err != nil {
		slot.mu.Lock()
		slot.delta = nil
		slot.mu.Unlock()
		if track {
			obs.RebuildFailures.Inc()
		}
		return err
	}

	// Phase 3 — catch up and swap under one write lock. Replay failure
	// aborts the swap and keeps the old epoch serving (the delta was also
	// applied to it, so nothing is lost).
	slot.mu.Lock()
	defer slot.mu.Unlock()
	replayOps := slot.delta.Len()
	err = slot.delta.Replay(next.Insert, next.Delete)
	slot.delta = nil
	if err != nil {
		if track {
			obs.RebuildFailures.Inc()
		}
		return fmt.Errorf("shard %d: %w", i, err)
	}
	slot.idx = next
	slot.ver.Add(1)
	if track {
		obs.Rebuilds.Inc()
		obs.RebuildSeconds.Observe(time.Since(rebuildStart).Seconds())
		obs.RebuildReplayOps.Observe(float64(replayOps))
	}
	return nil
}

// StaleShards lists the shards currently stale under th, in ascending
// order. Shards mid-rebuild are skipped — their staleness is already being
// fixed.
func (s *Sharded) StaleShards(th lifecycle.Thresholds) []int {
	var out []int
	for i, slot := range s.shards {
		if slot.rebuilding.Load() {
			continue
		}
		slot.mu.RLock()
		st := slot.idx.LifecycleStats()
		slot.mu.RUnlock()
		if stale, _ := st.Stale(th); stale {
			out = append(out, i)
		}
	}
	return out
}

// RebuildStale rebuilds every shard stale under th, returning the ordinals
// rebuilt and the first error encountered (remaining stale shards are
// still attempted).
func (s *Sharded) RebuildStale(th lifecycle.Thresholds) (rebuilt []int, err error) {
	for _, i := range s.StaleShards(th) {
		if rerr := s.RebuildShard(i); rerr != nil {
			if err == nil {
				err = rerr
			}
			continue
		}
		rebuilt = append(rebuilt, i)
	}
	return rebuilt, err
}

// RebuildAll force-rebuilds every shard regardless of staleness (the
// /compact?force=true path), returning the ordinals rebuilt and the first
// error.
func (s *Sharded) RebuildAll() (rebuilt []int, err error) {
	for i := range s.shards {
		if rerr := s.RebuildShard(i); rerr != nil {
			if err == nil {
				err = rerr
			}
			continue
		}
		rebuilt = append(rebuilt, i)
	}
	return rebuilt, err
}

// Compact merges every shard's delta pages and drops its tombstones in
// place (no re-detection, no epoch change) — the cheap maintenance step
// between full rebuilds.
func (s *Sharded) Compact() {
	for _, slot := range s.shards {
		slot.mu.Lock()
		slot.idx.Compact()
		slot.ver.Add(1)
		slot.mu.Unlock()
	}
}

// Epochs reports each shard's rebuild epoch — cheaper than a full
// per-shard stats pass when that is all a caller needs.
func (s *Sharded) Epochs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, slot := range s.shards {
		slot.mu.RLock()
		out[i] = slot.idx.Epoch()
		slot.mu.RUnlock()
	}
	return out
}

// ShardLifecycleStats reports each shard's lifecycle health snapshot.
func (s *Sharded) ShardLifecycleStats() []lifecycle.Stats {
	out := make([]lifecycle.Stats, len(s.shards))
	for i, slot := range s.shards {
		slot.mu.RLock()
		out[i] = slot.idx.LifecycleStats()
		slot.mu.RUnlock()
		out[i].Rebuilding = slot.rebuilding.Load()
	}
	return out
}

// LifecycleStats aggregates the per-shard snapshots into one engine-wide
// view (counts and epochs sum, ratios recompute, drift merges by column
// pair).
func (s *Sharded) LifecycleStats() lifecycle.Stats {
	return lifecycle.Merge(s.ShardLifecycleStats())
}

var _ lifecycle.Rebuildable = (*Sharded)(nil)
