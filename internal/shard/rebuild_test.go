package shard_test

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/workload"
)

// driftRow produces a row in a shifted linear regime (d = 2x + 5000) that
// the original model (d ≈ 2x + 50) rejects but a fresh detection fits.
func driftRow(rng *rand.Rand) []float64 {
	x := rng.Float64() * 1000
	return []float64{x, 2*x + 5000 + rng.NormFloat64()*4, rng.Float64() * 100, rng.NormFloat64() * 10}
}

func TestShardedMutationsMatchScanOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	tab := fdTable(rng, 6000, 0.05)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4, Partition: shard.ByRange, Column: -1})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.NewMixGenerator(tab, 42, workload.MixConfig{
		InsertWeight: 1, DeleteWeight: 1, UpdateWeight: 1, QueryWeight: 2,
		OutlierFrac: 0.15,
	})
	for op := 0; op < 3000; op++ {
		o := mix.Next()
		switch o.Kind {
		case workload.OpInsert:
			err = s.Insert(o.Row)
		case workload.OpDelete:
			err = s.Delete(o.Row)
		case workload.OpUpdate:
			err = s.Update(o.Old, o.New)
		case workload.OpQuery:
			got := index.Count(s, o.Rect)
			want := index.Count(scan.New(mix.LiveView()), o.Rect)
			if got != want {
				t.Fatalf("op %d query: got %d rows, oracle %d", op, got, want)
			}
		}
		if err != nil {
			t.Fatalf("op %d %v: %v", op, o.Kind, err)
		}
		if s.Len() != mix.LiveLen() {
			t.Fatalf("op %d: Len=%d, oracle %d", op, s.Len(), mix.LiveLen())
		}
	}
	// A mid-stream in-place Compact must not change any answer.
	s.Compact()
	oracle := scan.New(mix.LiveView())
	for q := 0; q < 100; q++ {
		r := workload.RandRect(rng, mix.LiveView())
		if got, want := index.Count(s, r), index.Count(oracle, r); got != want {
			t.Fatalf("post-compact query %d: got %d, oracle %d", q, got, want)
		}
	}
}

// TestRebuildShardSwapsEpochTransparently rebuilds every shard of a
// drifted engine and verifies epochs advance, the outlier ratio drops, and
// no query result changes across the swaps.
func TestRebuildShardSwapsEpochTransparently(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tab := fdTable(rng, 8000, 0.02)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	th := lifecycle.DefaultThresholds()

	live := append([]float64(nil), tab.Data...)
	for i := 0; i < 6000; i++ {
		row := driftRow(rng)
		if err := s.Insert(row); err != nil {
			t.Fatal(err)
		}
		live = append(live, row...)
	}
	before := s.LifecycleStats()
	if stale := s.StaleShards(th); len(stale) != s.NumShards() {
		t.Fatalf("only %d/%d shards stale after drift (stats %+v)", len(stale), s.NumShards(), before)
	}

	rebuilt, err := s.RebuildStale(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != s.NumShards() {
		t.Fatalf("rebuilt %v, want all %d shards", rebuilt, s.NumShards())
	}
	after := s.LifecycleStats()
	if after.Epoch != uint64(s.NumShards()) {
		t.Fatalf("aggregate epoch %d, want %d", after.Epoch, s.NumShards())
	}
	if after.OutlierRatio > before.OutlierRatio/2 {
		t.Fatalf("rebuild did not heal: outlier ratio %.3f → %.3f", before.OutlierRatio, after.OutlierRatio)
	}
	if stale := s.StaleShards(th); len(stale) != 0 {
		t.Fatalf("shards %v still stale after rebuild", stale)
	}

	// The swaps must be invisible to queries: the engine answers exactly
	// like a full scan over base + drift rows.
	view := dataset.View(tab.Cols, live)
	oracle := scan.New(view)
	for q := 0; q < 150; q++ {
		r := workload.RandRect(rng, view)
		if got, want := index.Count(s, r), index.Count(oracle, r); got != want {
			t.Fatalf("post-swap query %d: got %d, oracle %d", q, got, want)
		}
	}
}

// TestConcurrentMutationsDuringRebuild hammers one shard range with
// mutations and queries while rebuilds run, asserting the delta-log replay
// loses nothing: the final contents equal the mirror.
func TestConcurrentMutationsDuringRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tab := fdTable(rng, 6000, 0.05)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.NewMixGenerator(tab, 45, workload.MixConfig{
		InsertWeight: 2, DeleteWeight: 1, UpdateWeight: 1, QueryWeight: 0,
		OutlierFrac: 0.3,
	})

	// Sentinel rows parked far outside the mutation space: a concurrent
	// query loop must see exactly one copy of each at every instant,
	// through every epoch swap.
	sentinels := make([][]float64, 16)
	for i := range sentinels {
		sentinels[i] = []float64{-1e6 - float64(i), -1e6, -1e6, -1e6}
		if err := s.Insert(sentinels[i]); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop    atomic.Bool
		wrong   atomic.Int64
		queries atomic.Int64
		wg      sync.WaitGroup
	)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				sent := sentinels[qrng.Intn(len(sentinels))]
				if got := index.Count(s, index.Point(sent)); got != 1 {
					wrong.Add(1)
				}
				queries.Add(1)
			}
		}(int64(100 + w))
	}

	// Mutate and rebuild concurrently: every few hundred ops, force a
	// rebuild of a random shard on a separate goroutine.
	var rebuilds sync.WaitGroup
	for op := 0; op < 4000; op++ {
		o := mix.Next()
		switch o.Kind {
		case workload.OpInsert:
			err = s.Insert(o.Row)
		case workload.OpDelete:
			err = s.Delete(o.Row)
		case workload.OpUpdate:
			err = s.Update(o.Old, o.New)
		}
		if err != nil {
			t.Fatalf("op %d %v: %v", op, o.Kind, err)
		}
		if op%500 == 250 {
			si := rng.Intn(s.NumShards())
			rebuilds.Add(1)
			go func() {
				defer rebuilds.Done()
				if err := s.RebuildShard(si); err != nil && !errors.Is(err, shard.ErrRebuildInProgress) {
					t.Errorf("rebuild shard %d: %v", si, err)
				}
			}()
		}
	}
	rebuilds.Wait()
	stop.Store(true)
	wg.Wait()

	if q := queries.Load(); q == 0 {
		t.Fatal("query loop never ran")
	}
	if w := wrong.Load(); w != 0 {
		t.Fatalf("%d incorrect sentinel results during rebuilds (%d queries)", w, queries.Load())
	}

	// Final state: engine contents equal the mirror (plus sentinels).
	want := mix.LiveLen() + len(sentinels)
	if s.Len() != want {
		t.Fatalf("Len=%d, want %d", s.Len(), want)
	}
	full := index.Full(s.Dims())
	if got := index.Count(s, full); got != want {
		t.Fatalf("full scan %d rows, want %d", got, want)
	}
	oracle := scan.New(mix.LiveView())
	for q := 0; q < 100; q++ {
		r := workload.RandRect(rng, mix.LiveView())
		got := index.Count(s, r)
		want := index.Count(oracle, r)
		for _, sent := range sentinels {
			if r.Contains(sent) {
				want++
			}
		}
		if got != want {
			t.Fatalf("final query %d: got %d, oracle %d", q, got, want)
		}
	}
}

func TestRebuildShardValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tab := fdTable(rng, 500, 0.05)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RebuildShard(-1); err == nil {
		t.Fatal("negative ordinal accepted")
	}
	if err := s.RebuildShard(2); err == nil {
		t.Fatal("out-of-range ordinal accepted")
	}
	if _, err := s.RebuildAll(); err != nil {
		t.Fatalf("RebuildAll: %v", err)
	}
	st := s.ShardLifecycleStats()
	if len(st) != 2 || st[0].Epoch != 1 || st[1].Epoch != 1 {
		t.Fatalf("per-shard stats after RebuildAll: %+v", st)
	}
}
