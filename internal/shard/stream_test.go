package shard

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

func gatherSorted(idx index.Interface, r index.Rect) [][]float64 {
	var out [][]float64
	idx.Query(r, func(row []float64) {
		out = append(out, append([]float64(nil), row...))
	})
	sort.Slice(out, func(i, j int) bool {
		for d := range out[i] {
			if out[i][d] != out[j][d] {
				return out[i][d] < out[j][d]
			}
		}
		return false
	})
	return out
}

func identical(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

// TestShardStreamBuilderMatchesBuild streams the table chunk-wise through
// the direct-to-sharded builder and checks the result answers queries
// identically to the materialized sharded build, for both partitioners.
func TestShardStreamBuilderMatchesBuild(t *testing.T) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(24000))
	opt := core.DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		t.Fatal(err)
	}

	for _, part := range []Partition{ByRange, ByHash} {
		so := Options{NumShards: 4, Workers: 2, Partition: part, Column: -1}
		legacy, err := BuildWithFD(tab, fd, opt, so)
		if err != nil {
			t.Fatal(err)
		}

		sb, err := NewStreamBuilder(tab.Cols, fd, tab, opt, so, tab.Len())
		if err != nil {
			t.Fatal(err)
		}
		src := dataset.NewTableSource(tab, 1024)
		for {
			c, err := src.Next()
			if err != nil {
				break
			}
			if err := sb.Add(c); err != nil {
				t.Fatal(err)
			}
		}
		streamed, err := sb.Finish()
		if err != nil {
			t.Fatal(err)
		}

		if streamed.Len() != legacy.Len() || streamed.NumShards() != legacy.NumShards() {
			t.Fatalf("%v: shape mismatch: %d rows/%d shards vs %d/%d",
				part, streamed.Len(), streamed.NumShards(), legacy.Len(), legacy.NumShards())
		}
		if part == ByRange {
			// Cuts come from the same full-table sample, so routing must
			// agree and per-shard populations match exactly.
			ls, ss := legacy.BuildStats(), streamed.BuildStats()
			for i := range ls.RowsPerShard {
				if ls.RowsPerShard[i] != ss.RowsPerShard[i] {
					t.Fatalf("shard %d: %d streamed vs %d legacy rows",
						i, ss.RowsPerShard[i], ls.RowsPerShard[i])
				}
			}
		}
		rng := rand.New(rand.NewSource(21))
		for q := 0; q < 50; q++ {
			r := workload.RandRect(rng, tab)
			if !identical(gatherSorted(legacy, r), gatherSorted(streamed, r)) {
				t.Fatalf("%v: query %d differs", part, q)
			}
		}
	}
}

// TestShardStreamBuilderSampled uses a small reservoir-style sample for
// cuts, boundaries, and detection; results must remain exact.
func TestShardStreamBuilderSampled(t *testing.T) {
	tab := dataset.GenerateAirline(dataset.DefaultAirlineConfig(20000))
	opt := core.DefaultOptions()

	rng := rand.New(rand.NewSource(33))
	sample := dataset.NewTable(tab.Cols)
	for i := 0; i < tab.Len(); i++ {
		if rng.Float64() < 0.08 {
			sample.Append(tab.Row(i))
		}
	}
	fd, err := softfd.DetectSample(sample, opt.SoftFD)
	if err != nil {
		t.Fatal(err)
	}

	so := Options{NumShards: 3, Partition: ByRange, Column: -1}
	sb, err := NewStreamBuilder(tab.Cols, fd, sample, opt, so, -1)
	if err != nil {
		t.Fatal(err)
	}
	src := dataset.NewTableSource(tab, 700)
	for {
		c, err := src.Next()
		if err != nil {
			break
		}
		if err := sb.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := sb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != tab.Len() {
		t.Fatalf("streamed %d rows, want %d", streamed.Len(), tab.Len())
	}

	// Oracle: brute-force scan of the table.
	qrng := rand.New(rand.NewSource(55))
	for q := 0; q < 40; q++ {
		r := workload.RandRect(qrng, tab)
		want := 0
		for i := 0; i < tab.Len(); i++ {
			if r.Contains(tab.Row(i)) {
				want++
			}
		}
		got := 0
		streamed.Query(r, func([]float64) { got++ })
		if got != want {
			t.Fatalf("query %d: %d rows, oracle says %d", q, got, want)
		}
	}
}

func TestShardStreamBuilderEmptyStream(t *testing.T) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(500))
	opt := core.DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStreamBuilder(tab.Cols, fd, tab, opt, Options{NumShards: 2, Partition: ByHash}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Finish(); err == nil {
		t.Fatal("empty stream must not build")
	}
}
