// Direct-to-sharded streaming build: chunks are routed to one
// core.StreamBuilder per shard, each running on its own worker goroutine,
// so shard construction overlaps ingestion and the whole table is never
// materialized anywhere — not even partitioned staging tables. Range cut
// points come from the same row sample that seeded soft-FD detection, so
// routing is fixed before the first streamed row arrives.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/softfd"
)

// streamBatchRows is how many rows accumulate per shard before the batch is
// handed to that shard's build worker; bounded in-flight memory is
// (shards × channel depth × batch) rows.
const streamBatchRows = 1024

// router maps rows to shard ordinals using the same rules as a serving
// Sharded, before one exists.
type router struct {
	partition Partition
	col       int
	cuts      []float64
	k         int
}

func (r *router) route(row []float64) int {
	if r.partition == ByHash {
		return int(hashRow(row) % uint64(r.k))
	}
	v := row[r.col]
	return sort.Search(len(r.cuts), func(j int) bool { return r.cuts[j] > v })
}

// StreamBuilder constructs a Sharded index from a stream of rows. Add may
// only be called from one goroutine; placement itself runs on per-shard
// workers concurrently with ingestion.
type StreamBuilder struct {
	rt      router
	workers int

	builders []*core.StreamBuilder
	chans    []chan []float64 // flattened row batches; ownership transfers
	wg       sync.WaitGroup

	dims    int
	staging [][]float64 // per shard: partially filled batch
	n       int
}

// NewStreamBuilder prepares a direct-to-sharded streaming build. sample and
// fd play the same roles as in core.NewStreamBuilder; for range
// partitioning the cut points are quantiles of the sample's partition
// column. totalHint ≥ 0 sizes per-shard preallocation; -1 when unknown.
func NewStreamBuilder(cols []string, fd softfd.Result, sample *dataset.Table, opt core.Options, so Options, totalHint int) (*StreamBuilder, error) {
	k := so.NumShards
	if k == 0 {
		k = poolSize(0)
	}
	if k < 1 || k > MaxShards {
		return nil, fmt.Errorf("shard: NumShards %d out of range [1,%d]", k, MaxShards)
	}
	if sample.Len() == 0 {
		return nil, fmt.Errorf("shard: streaming build needs a non-empty sample")
	}

	b := &StreamBuilder{
		rt:      router{partition: so.Partition, col: -1, k: k},
		workers: poolSize(so.Workers),
		dims:    sample.Dims(),
	}
	switch so.Partition {
	case ByRange:
		col := so.Column
		if col < 0 {
			col = autoRangeColumn(fd)
		}
		if col >= sample.Dims() {
			return nil, fmt.Errorf("shard: range column %d out of range [0,%d)", col, sample.Dims())
		}
		b.rt.col = col
		b.rt.cuts = rangeCuts(sample.Column(col), k)
	case ByHash:
		// No routing state beyond the shard count.
	default:
		return nil, fmt.Errorf("shard: unknown partition kind %d", so.Partition)
	}

	perShard := -1
	if totalHint >= 0 {
		perShard = totalHint/k + 1
	}
	// Each shard estimates its grid boundaries from its own slab of the
	// sample — under range partitioning a shard sees only a slice of the
	// partition column, and global quantiles would leave most of its grid
	// cells empty. Shards whose slab sampled too thin fall back to the full
	// sample.
	slabs := make([]*dataset.Table, k)
	for i := range slabs {
		slabs[i] = dataset.NewTable(sample.Cols)
	}
	for i := 0; i < sample.Len(); i++ {
		row := sample.Row(i)
		slabs[b.rt.route(row)].Append(row)
	}
	minSlab := 2 * opt.PrimaryCellsPerDim
	if minSlab < 32 {
		minSlab = 32
	}
	b.builders = make([]*core.StreamBuilder, k)
	b.chans = make([]chan []float64, k)
	b.staging = make([][]float64, k)
	for i := 0; i < k; i++ {
		slab := slabs[i]
		if slab.Len() < minSlab {
			slab = sample
		}
		sb, err := core.NewStreamBuilder(cols, fd, slab, opt, perShard)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		b.builders[i] = sb
		b.chans[i] = make(chan []float64, 2)
	}
	for i := 0; i < k; i++ {
		b.wg.Add(1)
		go func(i int) {
			defer b.wg.Done()
			sb := b.builders[i]
			dims := b.dims
			for batch := range b.chans[i] {
				for o := 0; o+dims <= len(batch); o += dims {
					sb.Add(batch[o : o+dims])
				}
			}
		}(i)
	}
	return b, nil
}

// Add routes one chunk of rows to the shard workers. The chunk buffer may
// be reused by the caller immediately: rows are copied into batch buffers
// before they cross a goroutine boundary.
func (b *StreamBuilder) Add(c dataset.Chunk) error {
	if c.Cols != b.dims {
		return fmt.Errorf("shard: chunk has %d columns, builder has %d", c.Cols, b.dims)
	}
	for i := 0; i < c.Rows(); i++ {
		row := c.Row(i)
		si := b.rt.route(row)
		stage := b.staging[si]
		if stage == nil {
			stage = make([]float64, 0, streamBatchRows*b.dims)
		}
		stage = append(stage, row...)
		if len(stage) >= streamBatchRows*b.dims {
			b.chans[si] <- stage
			stage = nil
		}
		b.staging[si] = stage
	}
	b.n += c.Rows()
	return nil
}

// Rows reports how many rows have been routed so far.
func (b *StreamBuilder) Rows() int { return b.n }

// Finish flushes the remaining batches, waits for every shard worker, and
// assembles the serving Sharded index.
func (b *StreamBuilder) Finish() (*Sharded, error) {
	for si, stage := range b.staging {
		if len(stage) > 0 {
			b.chans[si] <- stage
			b.staging[si] = nil
		}
		close(b.chans[si])
	}
	b.wg.Wait()

	if b.n == 0 {
		return nil, fmt.Errorf("shard: cannot build over an empty stream")
	}
	idxs := make([]*core.COAX, len(b.builders))
	for i, sb := range b.builders {
		idx, err := sb.Finish()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		idxs[i] = idx
	}
	return Reassemble(idxs, b.rt.partition, b.rt.col, b.rt.cuts, b.workers)
}
