// Package shard is the concurrent serving layer over COAX: it partitions a
// table into K shards, builds an independent core.COAX per shard in
// parallel, and answers rectangle queries — one at a time or in batches —
// by fanning them across shards on a bounded worker pool and merging the
// results safely.
//
// Partitioning is either by range (quantile cut points on one column, so
// queries constraining that column probe only the shards whose slab
// overlaps) or by hash (FNV-1a over the row's bit pattern, which balances
// load under any distribution but prunes nothing). Soft-FD detection runs
// once over the whole table and every shard is built from the same learned
// dependencies, so the shards agree on query translation and the build
// parallelises over index construction, the expensive part.
//
// # Concurrency and visitor ownership
//
// A Sharded index is safe for concurrent use: Query, BatchQuery, and Insert
// may be called from any number of goroutines. Each shard is guarded by its
// own RWMutex — queries take read locks, inserts write-lock only the one
// shard the row routes to.
//
// Because rows are produced by worker goroutines and delivered to the
// caller's visitor afterwards, the fan-out cannot hand the visitor slices
// that alias live index internals. Workers therefore copy every matching
// row into a per-worker buffer at the merge boundary, and the visitor
// receives sub-slices of those buffers. This gives Sharded a stronger
// guarantee than index.Visitor's baseline contract: rows passed to the
// visitor are stable copies that remain valid after the call returns and
// are never overwritten by a later match.
//
// The flip side of copy-at-merge is that a fan-out buffers its complete
// result set before the first visitor call, so a query's memory cost is
// proportional to the rows it matches — a full-table rectangle buffers the
// whole table. Callers serving untrusted input should bound rectangle
// selectivity or batch width at their own layer (cmd/coaxserve caps
// request size and batch length).
package shard

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/softfd"
)

// MaxShards bounds the shard count; the snapshot container encodes the
// shard ordinal in a three-hex-digit section id.
const MaxShards = 4096

// Partition selects how rows are assigned to shards.
type Partition int

const (
	// ByRange splits one column into K quantile slabs. Queries that
	// constrain that column (directly — translated dependent constraints
	// apply only to inliers and cannot prune soundly) probe only the
	// overlapping shards.
	ByRange Partition = iota
	// ByHash routes each row by a hash of its bit pattern: perfectly
	// balanced, never pruned.
	ByHash
)

func (p Partition) String() string {
	switch p {
	case ByRange:
		return "range"
	case ByHash:
		return "hash"
	default:
		return fmt.Sprintf("Partition(%d)", int(p))
	}
}

// Options configures a sharded build. The zero value selects range
// partitioning on an automatically chosen column with one shard and one
// worker per CPU; start from DefaultOptions.
type Options struct {
	// NumShards is K; 0 means runtime.GOMAXPROCS(0).
	NumShards int
	// Workers bounds the query fan-out pool; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// BuildWorkers bounds the parallel shard construction; 0 means
	// runtime.GOMAXPROCS(0).
	BuildWorkers int
	// Partition selects range or hash row assignment.
	Partition Partition
	// Column is the range-partition column; -1 picks the predictor of the
	// largest detected soft-FD group (falling back to column 0), so range
	// pruning lines up with the column most queries constrain. Ignored for
	// ByHash.
	Column int
}

// DefaultOptions returns the recommended sharding configuration.
func DefaultOptions() Options {
	return Options{Partition: ByRange, Column: -1}
}

// shardSlot pairs one COAX with the lock that serialises its mutation and
// the epoch-swap state of an in-flight rebuild (see rebuild.go).
type shardSlot struct {
	mu  sync.RWMutex
	idx *core.COAX

	// delta records mutations that land while a replacement epoch is being
	// built; it is replayed into the new epoch before the swap. Mutators
	// read and append it under mu (write-locked); the rebuild goroutine
	// installs it under mu read-locked, which is race-free because a held
	// read lock excludes every writer (see RebuildShard).
	delta *lifecycle.DeltaLog
	// rebuilding serialises rebuilds of this shard without holding mu.
	rebuilding atomic.Bool

	// ver is the shard's mutation version: bumped — while the shard's
	// write lock is still held — by every successful insert, delete, and
	// update, by in-place compaction, and by an epoch-swap rebuild. It is
	// the exact invalidation signal result caches key on: a cached answer
	// computed when a shard's version was v is provably current as long as
	// the version still reads v, because every path that could change a
	// query's answer bumps it before releasing the lock. Readers load it
	// without taking the lock.
	ver atomic.Uint64
}

// Sharded is a partitioned COAX index. Build one with Build (or reassemble
// a decoded snapshot with Reassemble); it satisfies index.Interface, so it
// answers queries interchangeably with a single *core.COAX.
type Sharded struct {
	dims int
	n    atomic.Int64

	partition Partition
	col       int       // range column; -1 under ByHash
	cuts      []float64 // K-1 ascending cut points; shard j holds cuts[j-1] <= v < cuts[j]
	workers   int

	shards []*shardSlot
}

var _ index.Interface = (*Sharded)(nil)

// Build detects soft FDs once over t, partitions it into K shards, and
// builds every shard's COAX in parallel.
func Build(t *dataset.Table, opt core.Options, so Options) (*Sharded, error) {
	if t.Len() == 0 {
		return nil, fmt.Errorf("shard: cannot build over an empty table")
	}
	fd, err := softfd.Detect(t, opt.SoftFD)
	if err != nil {
		return nil, fmt.Errorf("shard: soft-FD detection: %w", err)
	}
	return BuildWithFD(t, fd, opt, so)
}

// BuildWithFD builds a sharded index from pre-detected dependencies.
func BuildWithFD(t *dataset.Table, fd softfd.Result, opt core.Options, so Options) (*Sharded, error) {
	k := so.NumShards
	if k == 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k < 1 || k > MaxShards {
		return nil, fmt.Errorf("shard: NumShards %d out of range [1,%d]", k, MaxShards)
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("shard: cannot build over an empty table")
	}
	s := &Sharded{
		dims:      t.Dims(),
		partition: so.Partition,
		col:       -1,
		workers:   poolSize(so.Workers),
	}

	switch so.Partition {
	case ByRange:
		col := so.Column
		if col < 0 {
			col = autoRangeColumn(fd)
		}
		if col >= t.Dims() {
			return nil, fmt.Errorf("shard: range column %d out of range [0,%d)", col, t.Dims())
		}
		s.col = col
		s.cuts = rangeCuts(t.Column(col), k)
	case ByHash:
		// No routing state beyond the shard count.
	default:
		return nil, fmt.Errorf("shard: unknown partition kind %d", so.Partition)
	}

	s.shards = make([]*shardSlot, k)
	for i := range s.shards {
		s.shards[i] = &shardSlot{}
	}

	// Partition rows. Shard tables may be empty (k > distinct values); an
	// empty shard still gets a COAX skeleton so inserts can land later.
	tabs := make([]*dataset.Table, k)
	for i := range tabs {
		tabs[i] = dataset.NewTable(t.Cols)
		tabs[i].Grow(t.Len()/k + 1)
	}
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		tabs[s.routeRow(row)].Append(row)
	}
	// Build shards in parallel on a bounded pool; construction is the
	// expensive step and each shard is independent.
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		buildErr error
	)
	work := make(chan int)
	for w := 0; w < min(poolSize(so.BuildWorkers), k); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				idx, err := core.BuildWithFD(tabs[i], fd, opt)
				if err != nil {
					errOnce.Do(func() { buildErr = fmt.Errorf("shard %d: %w", i, err) })
					continue
				}
				s.shards[i].idx = idx
			}
		}()
	}
	for i := 0; i < k; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	if buildErr != nil {
		return nil, buildErr
	}
	s.n.Store(int64(t.Len()))
	return s, nil
}

// Reassemble wires pre-built (typically snapshot-decoded) shard indexes
// into a serving Sharded. For ByRange, cuts must hold len(shards)-1
// ascending cut points and col must be a valid column; for ByHash, cuts
// must be empty and col is ignored (recorded as -1).
func Reassemble(shards []*core.COAX, partition Partition, col int, cuts []float64, workers int) (*Sharded, error) {
	if len(shards) < 1 || len(shards) > MaxShards {
		return nil, fmt.Errorf("shard: %d shards out of range [1,%d]", len(shards), MaxShards)
	}
	dims := shards[0].Dims()
	n := 0
	for i, idx := range shards {
		if idx == nil {
			return nil, fmt.Errorf("shard: shard %d is nil", i)
		}
		if idx.Dims() != dims {
			return nil, fmt.Errorf("shard: shard %d has %d dims, shard 0 has %d", i, idx.Dims(), dims)
		}
		n += idx.Len()
	}
	s := &Sharded{dims: dims, partition: partition, col: -1, workers: poolSize(workers)}
	switch partition {
	case ByRange:
		if col < 0 || col >= dims {
			return nil, fmt.Errorf("shard: range column %d out of range [0,%d)", col, dims)
		}
		if len(cuts) != len(shards)-1 {
			return nil, fmt.Errorf("shard: %d cut points for %d shards, want %d", len(cuts), len(shards), len(shards)-1)
		}
		if !sort.Float64sAreSorted(cuts) {
			return nil, fmt.Errorf("shard: cut points are not ascending")
		}
		s.col = col
		s.cuts = append([]float64(nil), cuts...)
	case ByHash:
		if len(cuts) != 0 {
			return nil, fmt.Errorf("shard: hash partition carries %d cut points, want 0", len(cuts))
		}
	default:
		return nil, fmt.Errorf("shard: unknown partition kind %d", partition)
	}
	s.shards = make([]*shardSlot, len(shards))
	for i, idx := range shards {
		s.shards[i] = &shardSlot{idx: idx}
	}
	s.n.Store(int64(n))
	return s, nil
}

// autoRangeColumn picks the predictor of the largest soft-FD group, the
// column range queries are most likely to constrain (directly or through
// translation of its dependents), falling back to column 0.
func autoRangeColumn(fd softfd.Result) int {
	best, bestSize := 0, 0
	for _, g := range fd.Groups {
		if len(g.Members) > bestSize {
			best, bestSize = g.Predictor, len(g.Members)
		}
	}
	return best
}

// rangeCuts places k-1 cut points on the quantiles of col.
func rangeCuts(col []float64, k int) []float64 {
	if k <= 1 {
		return nil
	}
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	cuts := make([]float64, k-1)
	for i := 1; i < k; i++ {
		cuts[i-1] = sorted[i*len(sorted)/k]
	}
	return cuts
}

func poolSize(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// routeRow maps a row to its shard ordinal.
func (s *Sharded) routeRow(row []float64) int {
	if s.partition == ByHash {
		return int(hashRow(row) % uint64(len(s.shards)))
	}
	return s.routeValue(row[s.col])
}

// routeValue maps a range-column value to its shard: the first shard whose
// upper cut exceeds v, so shard j holds cuts[j-1] <= v < cuts[j].
func (s *Sharded) routeValue(v float64) int {
	return sort.Search(len(s.cuts), func(j int) bool { return s.cuts[j] > v })
}

// HashRow exposes the row-identity hash used by hash partitioning.
// Anything that must agree with this engine on where a row lives — the
// cluster layer routes rows to global shards with it — uses this function,
// so a row hashes identically whether it is placed locally or remotely.
func HashRow(row []float64) uint64 { return hashRow(row) }

// hashRow is FNV-1a over the little-endian bit pattern of the row.
func hashRow(row []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range row {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= prime64
			bits >>= 8
		}
	}
	return h
}

// shardRange returns the inclusive shard interval a rectangle can match.
// Only the query's native constraint on the range column prunes: translated
// dependent constraints bound inliers, not the outliers that shards also
// hold, so using them here would drop rows.
func (s *Sharded) shardRange(r index.Rect) (lo, hi int) {
	lo, hi = 0, len(s.shards)-1
	if s.partition != ByRange || len(s.cuts) == 0 {
		return lo, hi
	}
	if v := r.Min[s.col]; !math.IsInf(v, -1) {
		lo = s.routeValue(v)
	}
	if v := r.Max[s.col]; !math.IsInf(v, 1) {
		hi = s.routeValue(v)
	}
	return lo, hi
}

// Name implements index.Interface.
func (s *Sharded) Name() string { return "COAX-sharded" }

// Len implements index.Interface.
func (s *Sharded) Len() int { return int(s.n.Load()) }

// Dims implements index.Interface.
func (s *Sharded) Dims() int { return s.dims }

// NumShards reports K.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Partition reports the row-assignment scheme.
func (s *Sharded) Partition() Partition { return s.partition }

// RangeColumn reports the range-partition column, or -1 under ByHash.
func (s *Sharded) RangeColumn() int { return s.col }

// Cuts returns a copy of the range cut points (nil under ByHash or K=1).
func (s *Sharded) Cuts() []float64 { return append([]float64(nil), s.cuts...) }

// MemoryOverhead implements index.Interface: the sum of the shard
// directories.
func (s *Sharded) MemoryOverhead() int64 {
	var b int64
	for _, slot := range s.shards {
		slot.mu.RLock()
		b += slot.idx.MemoryOverhead()
		slot.mu.RUnlock()
	}
	return b
}

// WithShard runs fn with shard i's index under its read lock; the snapshot
// encoder uses it to serialise a shard that may be receiving inserts.
func (s *Sharded) WithShard(i int, fn func(*core.COAX) error) error {
	slot := s.shards[i]
	slot.mu.RLock()
	defer slot.mu.RUnlock()
	return fn(slot.idx)
}

// Insert routes one row to its shard and inserts it under that shard's
// write lock; concurrent queries keep running against every other shard.
func (s *Sharded) Insert(row []float64) error {
	if err := lifecycle.ValidateRow(s.dims, row); err != nil {
		return err
	}
	slot := s.shards[s.routeRow(row)]
	slot.mu.Lock()
	err := slot.idx.Insert(row)
	if err == nil {
		if slot.delta != nil {
			slot.delta.Append(lifecycle.OpInsert, row)
		}
		slot.ver.Add(1)
	}
	slot.mu.Unlock()
	if err != nil {
		return err
	}
	s.n.Add(1)
	return nil
}

// Delete routes one row to its shard — mutation routing is deterministic,
// so the shard that received a row's insert is the one holding it — and
// removes the first live exact match under the shard's write lock. Returns
// core.ErrNotFound when no live row matches.
func (s *Sharded) Delete(row []float64) error {
	if err := lifecycle.ValidateRow(s.dims, row); err != nil {
		return err
	}
	slot := s.shards[s.routeRow(row)]
	slot.mu.Lock()
	err := slot.idx.Delete(row)
	if err == nil {
		if slot.delta != nil {
			slot.delta.Append(lifecycle.OpDelete, row)
		}
		slot.ver.Add(1)
	}
	slot.mu.Unlock()
	if err != nil {
		return err
	}
	s.n.Add(-1)
	return nil
}

// Update replaces one live row equal to old with new. When both rows route
// to the same shard the swap is atomic under that shard's write lock; when
// they route to different shards the delete and insert commit one shard at
// a time, so a concurrent query may briefly observe neither row (never
// both). Returns core.ErrNotFound (changing nothing) when old is absent.
func (s *Sharded) Update(old, new []float64) error {
	if err := lifecycle.ValidateRow(s.dims, old); err != nil {
		return err
	}
	if err := lifecycle.ValidateRow(s.dims, new); err != nil {
		return err
	}
	si, di := s.routeRow(old), s.routeRow(new)
	if si == di {
		slot := s.shards[si]
		slot.mu.Lock()
		err := slot.idx.Update(old, new)
		if err == nil {
			if slot.delta != nil {
				slot.delta.Append(lifecycle.OpDelete, old)
				slot.delta.Append(lifecycle.OpInsert, new)
			}
			slot.ver.Add(1)
		}
		slot.mu.Unlock()
		return err
	}

	// Cross-shard: commit the delete, then the insert, locking one shard
	// at a time (never both, so shard-ordinal lock ordering is moot).
	src := s.shards[si]
	src.mu.Lock()
	err := src.idx.Delete(old)
	if err == nil {
		if src.delta != nil {
			src.delta.Append(lifecycle.OpDelete, old)
		}
		src.ver.Add(1)
	}
	src.mu.Unlock()
	if err != nil {
		return err
	}
	dst := s.shards[di]
	dst.mu.Lock()
	err = dst.idx.Insert(new)
	if err == nil {
		if dst.delta != nil {
			dst.delta.Append(lifecycle.OpInsert, new)
		}
		dst.ver.Add(1)
	}
	dst.mu.Unlock()
	if err != nil {
		// The insert can only fail on lazy index creation; restore the old
		// row so the update is all-or-nothing.
		src.mu.Lock()
		rerr := src.idx.Insert(old)
		if rerr == nil {
			if src.delta != nil {
				src.delta.Append(lifecycle.OpInsert, old)
			}
			src.ver.Add(1)
		}
		src.mu.Unlock()
		if rerr != nil {
			s.n.Add(-1)
			return fmt.Errorf("shard: update lost row: %w", errors.Join(err, rerr))
		}
		return err
	}
	return nil
}

// BatchVisitor receives one matching row per call together with the batch
// position of the query it matched. The row slice is a stable copy (see the
// package comment on visitor ownership).
type BatchVisitor func(qi int, row []float64)

// task is one (query, shard) probe of a fan-out.
type task struct {
	qi, si int
	rows   []float64 // matching rows, flattened; filled by a worker
}

// Query implements index.Interface by fanning r across the shards it can
// match. Rows are delivered on the calling goroutine.
func (s *Sharded) Query(r index.Rect, visit index.Visitor) {
	s.BatchQuery([]index.Rect{r}, func(_ int, row []float64) { visit(row) })
}

// BatchQuery answers a batch of rectangles in one fan-out: every (query,
// overlapping shard) pair becomes a task, tasks run on a bounded worker
// pool, and results are merged back in batch order on the calling
// goroutine. Rows handed to visit are stable copies. Every query of the
// batch is answered exactly, including duplicates and empty rectangles.
func (s *Sharded) BatchQuery(rs []index.Rect, visit BatchVisitor) {
	// The batch path owns its queries end to end, so it counts them here
	// (one per rectangle) and observes one batch latency per call; the
	// per-probe page/row counters are folded in runTask.
	track := obs.On()
	var start time.Time
	if track {
		start = time.Now()
		obs.Queries.Add(int64(len(rs)))
		defer func() {
			obs.BatchSeconds.Observe(time.Since(start).Seconds())
		}()
	}

	tasks := make([]task, 0, len(rs))
	for qi, r := range rs {
		if r.Empty() {
			continue
		}
		lo, hi := s.shardRange(r)
		for si := lo; si <= hi; si++ {
			tasks = append(tasks, task{qi: qi, si: si})
		}
	}
	if track {
		obs.ShardsProbed.Add(int64(len(tasks)))
		obs.ShardsPruned.Add(int64(len(rs)*len(s.shards) - len(tasks)))
	}
	if len(tasks) == 0 {
		return
	}

	// Execute shard-major (counting sort by shard): consecutive probes hit
	// the same shard's pages, keeping large batches cache-resident per
	// shard. Merge order is unaffected — it walks tasks, which stays
	// query-major.
	order := make([]int, len(tasks))
	starts := make([]int, len(s.shards)+1)
	for i := range tasks {
		starts[tasks[i].si+1]++
	}
	for si := 1; si <= len(s.shards); si++ {
		starts[si] += starts[si-1]
	}
	for ti := range tasks {
		order[starts[tasks[ti].si]] = ti
		starts[tasks[ti].si]++
	}

	workers := min(s.workers, len(tasks))
	if workers <= 1 {
		for _, ti := range order {
			s.runTask(rs, &tasks[ti])
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ti := range work {
					s.runTask(rs, &tasks[ti])
				}
			}()
		}
		for _, ti := range order {
			work <- ti
		}
		close(work)
		wg.Wait()
	}

	// Merge: tasks were appended in (qi, si) order, so delivery is
	// deterministic. Full-capacity sub-slices keep a retaining visitor from
	// reaching neighbouring rows through append.
	var delivered int64
	for _, t := range tasks {
		for o := 0; o+s.dims <= len(t.rows); o += s.dims {
			visit(t.qi, t.rows[o:o+s.dims:o+s.dims])
			delivered++
		}
	}
	if track {
		obs.QueryRows.Add(delivered)
	}
}

// runTask probes one shard with one rectangle, copying matches into the
// task's buffer — the merge-boundary copy that makes the delivered slices
// stable.
func (s *Sharded) runTask(rs []index.Rect, t *task) {
	track := obs.On()
	var crep *core.ProbeReport
	var start time.Time
	if track {
		crep = &core.ProbeReport{}
		start = time.Now()
	}
	slot := s.shards[t.si]
	slot.mu.RLock()
	slot.idx.Exec(rs[t.qi], index.Spec{}, func(row []float64) bool {
		t.rows = append(t.rows, row...)
		return true
	}, crep)
	slot.mu.RUnlock()
	if track {
		obs.ShardScanSeconds.Observe(time.Since(start).Seconds())
		core.ObserveProbe(crep)
	}
}

// ShardVersion reports shard i's current mutation version without taking
// the shard lock. Together with ShardSpan this is the serving tier's cache
// invalidation contract: capture the versions of a query's span before
// executing it, and the answer is provably current for as long as every
// captured version still reads the same — any mutation that could change
// the answer bumps the version of the shard it lands on before its lock is
// released.
func (s *Sharded) ShardVersion(i int) uint64 { return s.shards[i].ver.Load() }

// Versions returns every shard's mutation version (see ShardVersion).
func (s *Sharded) Versions() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, slot := range s.shards {
		out[i] = slot.ver.Load()
	}
	return out
}

// ShardSpan reports the inclusive shard interval [lo, hi] a rectangle can
// match — the shards whose mutation versions govern the freshness of a
// cached answer to r. Rectangles constraining the range column span fewer
// shards; everything else (and any hash-partitioned index) spans all of
// them.
func (s *Sharded) ShardSpan(r index.Rect) (lo, hi int) { return s.shardRange(r) }

// Stats summarises the sharded build.
type Stats struct {
	Shards          int
	Rows            int
	Dims            int
	Partition       string
	RangeColumn     int // -1 under ByHash
	RowsPerShard    []int
	MemoryOverheadB int64
}

// BuildStats reports the current shape of the sharded index.
func (s *Sharded) BuildStats() Stats {
	st := Stats{
		Shards:      len(s.shards),
		Rows:        s.Len(),
		Dims:        s.dims,
		Partition:   s.partition.String(),
		RangeColumn: s.col,
	}
	st.RowsPerShard = make([]int, len(s.shards))
	for i, slot := range s.shards {
		slot.mu.RLock()
		st.RowsPerShard[i] = slot.idx.Len()
		st.MemoryOverheadB += slot.idx.MemoryOverhead()
		slot.mu.RUnlock()
	}
	return st
}
