package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
)

// Query execution v2 for the sharded engine. Unlike the legacy
// Query/BatchQuery path — which buffers each probe's complete result set
// and merges deterministically afterwards — Exec streams rows to the caller
// while the fan-out is still running, so a satisfied limit, a false-
// returning yield, or a cancelled context stops every worker promptly:
// workers observe a shared atomic stop flag before producing each row, and
// a context watcher raises the same flag the moment the context is done.
// The price of streaming is delivery order: rows arrive in whatever order
// the shards produce them.

// scanChunkRows is how many rows a worker accumulates before handing a
// chunk to the merge loop; limited scans shrink it to the limit so the
// first satisfying rows are delivered (and the fan-out stopped) as early as
// possible.
const scanChunkRows = 128

// Report describes one v2 fan-out: how many shards the rectangle pruned
// versus probed, plus the aggregated per-shard execution report
// (translations are recorded once — every shard shares the same learned
// models, so they translate identically).
type Report struct {
	ShardsProbed int
	ShardsPruned int
	Core         core.ProbeReport
}

// Columns returns the column names of the underlying table (empty when the
// build table carried none).
func (s *Sharded) Columns() []string {
	slot := s.shards[0]
	slot.mu.RLock()
	defer slot.mu.RUnlock()
	return slot.idx.Columns()
}

// Scan implements index.Interface over Exec.
func (s *Sharded) Scan(r index.Rect, yield index.Yield, probe *index.Probe) bool {
	var rep *Report
	if probe != nil {
		rep = &Report{}
	}
	complete := s.Exec(r, index.Spec{}, yield, rep)
	if probe != nil {
		probe.Add(rep.Core.Primary)
		probe.Add(rep.Core.Outlier)
	}
	return complete
}

// Exec fans r across the shards it can match under the v2 contract: rows
// are delivered to yield on the calling goroutine as workers produce them,
// yield's return value stops the whole fan-out, spec.Ctx cancels it within
// about one page (chunk) of work, and spec.Limit lets each worker stop its
// shard after that many local matches (any Limit matching rows satisfy the
// caller, so a shard that alone found enough need not keep scanning). Rows
// handed to yield are always stable copies — the merge-boundary copy makes
// spec.Stable free here. The visitor must not mutate this index (Insert /
// Delete / Update / rebuilds) from inside the call: probes hold shard read
// locks while the visitor runs, so a reentrant write deadlocks; the legacy
// Query/BatchQuery path, which buffers every row before visiting, remains
// the surface for that pattern. A non-nil rep is filled with the fan-out
// report. Exec reports whether the scan ran to completion (false: stopped
// early by yield or cancellation).
func (s *Sharded) Exec(r index.Rect, spec index.Spec, yield index.Yield, rep *Report) bool {
	// This layer owns the whole query, so it is where queries are counted
	// exactly once (core.Exec runs once per probed shard and must not
	// count). With instrumentation on, per-shard reports are created even
	// when the caller asked for none, so page/row/translation counters are
	// fed from the same ProbeReport plumbing EXPLAIN uses.
	track := obs.On()
	var start time.Time
	var delivered int64
	if track {
		start = time.Now()
		obs.Queries.Inc()
		inner := yield
		yield = func(row []float64) bool {
			delivered++
			return inner(row)
		}
	}

	if r.Empty() {
		if rep != nil {
			rep.ShardsPruned = len(s.shards)
		}
		if track {
			obs.ShardsPruned.Add(int64(len(s.shards)))
			obs.QuerySeconds.Observe(time.Since(start).Seconds())
		}
		return true
	}
	lo, hi := s.shardRange(r)
	probes := hi - lo + 1
	if rep != nil {
		rep.ShardsProbed = probes
		rep.ShardsPruned = len(s.shards) - probes
	}

	var stop atomic.Bool
	if spec.Ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-spec.Ctx.Done():
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	var reps []*core.ProbeReport
	if rep != nil || track || spec.Trace != nil {
		reps = make([]*core.ProbeReport, probes)
		for i := range reps {
			reps[i] = &core.ProbeReport{}
		}
	}

	complete := s.execStream(r, spec, yield, reps, &stop, lo, hi)
	cancelled := spec.Done()
	if cancelled {
		complete = false
	}

	if rep != nil {
		for _, crep := range reps {
			rep.Core.Add(crep)
		}
	}
	if track {
		obs.QuerySeconds.Observe(time.Since(start).Seconds())
		obs.QueryRows.Add(delivered)
		obs.ShardsProbed.Add(int64(probes))
		obs.ShardsPruned.Add(int64(len(s.shards) - probes))
		switch {
		case cancelled:
			obs.QueryCancelled.Inc()
		case !complete:
			obs.EarlyStops.Inc()
		}
		for _, crep := range reps {
			core.ObserveProbe(crep)
		}
	}
	return complete
}

// execStream is the fan-out behind Exec: workers copy matching rows into
// chunks at the merge boundary and hand them to the calling goroutine over
// a channel; the caller yields rows as chunks arrive and raises the stop
// flag — observed by every worker before each row — as soon as the yield
// declines, the limit hint is met, or the context is done. Two rules keep
// it deadlock-free: the caller always drains the channel to completion, so
// workers never block on a departed consumer; and a worker never does a
// blocking send while holding its shard's read lock — chunks that cannot
// be sent immediately accumulate locally and are flushed after the probe
// releases the lock, so a stalled consumer delays delivery, not the lock.
func (s *Sharded) execStream(r index.Rect, spec index.Spec, yield index.Yield, reps []*core.ProbeReport, stop *atomic.Bool, lo, hi int) bool {
	chunkRows := scanChunkRows
	if spec.Limit > 0 && spec.Limit < chunkRows {
		chunkRows = spec.Limit
	}
	chunkLen := chunkRows * s.dims
	workers := min(s.workers, hi-lo+1)

	out := make(chan []float64, workers)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			track := obs.On()
			for si := range work {
				var crep *core.ProbeReport
				if reps != nil {
					crep = reps[si-lo]
				}
				var pending [][]float64
				flush := func(buf []float64) {
					select {
					case out <- buf:
					default:
						pending = append(pending, buf)
					}
				}
				var probeStart time.Time
				if track || spec.Trace != nil {
					probeStart = time.Now()
				}
				slot := s.shards[si]
				slot.mu.RLock()
				buf := make([]float64, 0, chunkLen)
				produced := 0
				// The shared stop flag rides in as the per-page abort hook,
				// so a probe whose pages match nothing still notices a met
				// limit or a cancelled context within one page.
				slot.idx.Exec(r, index.Spec{Abort: stop.Load}, func(row []float64) bool {
					if stop.Load() {
						return false
					}
					buf = append(buf, row...) // the merge-boundary copy
					produced++
					if len(buf) >= chunkLen {
						flush(buf)
						buf = make([]float64, 0, chunkLen)
					}
					// Any spec.Limit matching rows satisfy the caller, so
					// this shard alone has produced enough: stop it.
					return spec.Limit <= 0 || produced < spec.Limit
				}, crep)
				if len(buf) > 0 {
					flush(buf)
				}
				slot.mu.RUnlock()
				if track || spec.Trace != nil {
					elapsed := time.Since(probeStart)
					if track {
						obs.ShardScanSeconds.Observe(elapsed.Seconds())
					}
					if spec.Trace != nil && crep != nil {
						spec.Trace.AddSpan(fmt.Sprintf("shard-%02d", si), elapsed,
							crep.Primary.Pages+crep.Outlier.Pages,
							crep.Primary.Scanned+crep.Outlier.Scanned)
					}
				}
				// Deliver what the non-blocking sends could not; no lock is
				// held now, and the caller drains until close, so these
				// sends always terminate. A raised stop flag means the
				// caller discards everything anyway — skip the handoff.
				for _, p := range pending {
					if stop.Load() {
						break
					}
					out <- p
				}
			}
		}()
	}
	go func() {
		for si := lo; si <= hi; si++ {
			work <- si
		}
		close(work)
		wg.Wait()
		close(out)
	}()

	complete := true
	for buf := range out {
		// The context is checked once per chunk — the "about one page"
		// cancellation granularity — while the stop flag (set by the
		// watcher, a declined yield, or a met limit) is checked per row.
		// Exec's final Done() check turns any cancellation into an
		// incomplete result.
		if spec.Done() {
			stop.Store(true)
		}
		for off := 0; off+s.dims <= len(buf); off += s.dims {
			if stop.Load() {
				break // stopping: discard the rest of the chunk
			}
			// Full-capacity sub-slices keep a retaining caller from
			// reaching neighbouring rows through append.
			if !yield(buf[off : off+s.dims : off+s.dims]) {
				stop.Store(true)
				complete = false
				break
			}
		}
	}
	return complete
}
