package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
)

// Aggregation fan-out: ExecAgg is Exec's sibling for queries that want an
// aggregate instead of rows. Each worker folds its shard's rows into a
// private index.AggState through the shard's batch kernels (core.ExecAgg),
// so no rows cross goroutines at all — the merge boundary carries one
// partial aggregate per shard instead of row chunks. Partials are merged
// at the gather point in shard order, making the floating-point result
// deterministic run to run for a fixed shard layout. Cancellation uses the
// same shared atomic stop flag and context watcher as Exec, observed by
// every shard probe at page granularity.

// ExecAgg fans the aggregation described by aspec across the shards r can
// match and returns the merged state. spec.Ctx cancels the fan-out within
// about one page of work per worker (Limit and Stable are ignored —
// aggregates consume every matching row). A non-nil rep is filled with the
// fan-out report, including the kernels dispatched. The boolean reports
// whether every shard ran to completion; false (cancellation) leaves a
// partial fold in the returned state.
func (s *Sharded) ExecAgg(r index.Rect, spec index.Spec, aspec index.AggSpec, rep *Report) (*index.AggState, bool) {
	// This layer owns the whole query: count it exactly once, like Exec.
	track := obs.On()
	var start time.Time
	if track {
		start = time.Now()
		obs.Queries.Inc()
		obs.AggQueries.Inc()
	}
	total := index.NewAggState(aspec)

	if r.Empty() {
		if rep != nil {
			rep.ShardsPruned = len(s.shards)
		}
		if track {
			obs.ShardsPruned.Add(int64(len(s.shards)))
			obs.QuerySeconds.Observe(time.Since(start).Seconds())
		}
		return total, true
	}
	lo, hi := s.shardRange(r)
	probes := hi - lo + 1
	if rep != nil {
		rep.ShardsProbed = probes
		rep.ShardsPruned = len(s.shards) - probes
	}

	var stop atomic.Bool
	if spec.Ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-spec.Ctx.Done():
				stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	var reps []*core.ProbeReport
	if rep != nil || track || spec.Trace != nil {
		reps = make([]*core.ProbeReport, probes)
		for i := range reps {
			reps[i] = &core.ProbeReport{}
		}
	}
	parts := make([]*index.AggState, probes)

	var incomplete atomic.Bool
	workers := min(s.workers, probes)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wtrack := obs.On()
			for si := range work {
				var crep *core.ProbeReport
				if reps != nil {
					crep = reps[si-lo]
				}
				st := index.NewAggState(aspec)
				parts[si-lo] = st
				var probeStart time.Time
				if wtrack || spec.Trace != nil {
					probeStart = time.Now()
				}
				slot := s.shards[si]
				slot.mu.RLock()
				// The shared stop flag rides in as the per-page abort hook,
				// so every shard notices a cancelled context promptly even
				// when its pages match nothing.
				if !slot.idx.ExecAgg(r, index.Spec{Abort: stop.Load}, st, crep) {
					incomplete.Store(true)
				}
				slot.mu.RUnlock()
				if wtrack || spec.Trace != nil {
					elapsed := time.Since(probeStart)
					if wtrack {
						obs.ShardScanSeconds.Observe(elapsed.Seconds())
					}
					if spec.Trace != nil && crep != nil {
						spec.Trace.AddSpan(fmt.Sprintf("shard-%02d", si), elapsed,
							crep.Primary.Pages+crep.Outlier.Pages,
							crep.Primary.Scanned+crep.Outlier.Scanned)
					}
				}
			}
		}()
	}
	for si := lo; si <= hi; si++ {
		work <- si
	}
	close(work)
	wg.Wait()

	// Gather: merge partials in shard order — the deterministic association
	// that makes sums reproducible.
	for _, st := range parts {
		total.Merge(st)
	}

	complete := !incomplete.Load()
	cancelled := spec.Done()
	if cancelled {
		complete = false
	}
	if rep != nil {
		for _, crep := range reps {
			rep.Core.Add(crep)
		}
	}
	if track {
		obs.QuerySeconds.Observe(time.Since(start).Seconds())
		obs.ShardsProbed.Add(int64(probes))
		obs.ShardsPruned.Add(int64(len(s.shards) - probes))
		if cancelled {
			obs.QueryCancelled.Inc()
		}
		for _, crep := range reps {
			core.ObserveProbe(crep)
			core.ObserveAggKernels(crep)
		}
	}
	return total, complete
}
