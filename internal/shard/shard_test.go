package shard_test

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/core"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/shard"
	"github.com/coax-index/coax/internal/workload"
)

// fdTable plants one soft FD (col1 ≈ 2·col0 + 50) with an outlier fraction
// and two independent columns — the same shape internal/core tests use.
func fdTable(rng *rand.Rand, n int, outlierFrac float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u", "v"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < outlierFrac {
			d = rng.Float64() * 2100
		} else {
			d = 2*x + 50 + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, rng.Float64() * 100, rng.NormFloat64() * 10})
	}
	return t
}

func coreOptions() core.Options {
	opt := core.DefaultOptions()
	opt.SoftFD.SampleCount = 4000
	return opt
}

// sortRows orders rows lexicographically so result sets compare as
// multisets.
func sortRows(rows [][]float64) {
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for i := range ra {
			if ra[i] != rb[i] {
				return ra[i] < rb[i]
			}
		}
		return false
	})
}

func rowsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Property: for random tables, shard counts, partition schemes, and
// workloads, ShardedIndex.Query and BatchQuery return exactly the multiset
// of rows a single-shard core.COAX returns.
func TestShardedEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 500 + rng.Intn(3000)
		tab := fdTable(rng, n, rng.Float64()*0.3)
		opt := coreOptions()
		opt.PrimaryCellsPerDim = 1 + rng.Intn(12)

		single, err := core.Build(tab, opt)
		if err != nil {
			t.Logf("seed %d: single build: %v", seed, err)
			return false
		}
		so := shard.Options{
			NumShards: 1 + rng.Intn(8),
			Workers:   1 + rng.Intn(4),
			Partition: shard.ByRange,
			Column:    -1,
		}
		if rng.Float64() < 0.4 {
			so.Partition = shard.ByHash
		} else if rng.Float64() < 0.5 {
			so.Column = rng.Intn(tab.Dims())
		}
		sharded, err := shard.BuildWithFD(tab, single.FD(), opt, so)
		if err != nil {
			t.Logf("seed %d: sharded build: %v", seed, err)
			return false
		}
		if sharded.Len() != single.Len() || sharded.Dims() != single.Dims() {
			t.Logf("seed %d: len/dims mismatch", seed)
			return false
		}

		queries := make([]index.Rect, 6)
		for i := range queries {
			queries[i] = workload.RandRect(rng, tab)
		}
		queries = append(queries, index.Full(tab.Dims()), index.Point(tab.Row(rng.Intn(n))))

		// Query path: per-rectangle multiset equality.
		for _, r := range queries {
			want := index.Collect(single, r)
			got := index.Collect(sharded, r)
			sortRows(want)
			sortRows(got)
			if !rowsEqual(want, got) {
				t.Logf("seed %d: Query rect %v: got %d rows, want %d", seed, r, len(got), len(want))
				return false
			}
		}

		// BatchQuery path: the whole batch at once, grouped per query.
		got := make([][][]float64, len(queries))
		sharded.BatchQuery(queries, func(qi int, row []float64) {
			got[qi] = append(got[qi], append([]float64(nil), row...))
		})
		for qi, r := range queries {
			want := index.Collect(single, r)
			sortRows(want)
			sortRows(got[qi])
			if !rowsEqual(want, got[qi]) {
				t.Logf("seed %d: BatchQuery query %d: got %d rows, want %d", seed, qi, len(got[qi]), len(want))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBatchQuerySkipsEmptyRects(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tab := fdTable(rng, 2000, 0.1)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	empty := index.Full(4)
	empty.Min[0], empty.Max[0] = 5, 1 // Min > Max: matches nothing
	full := index.Full(4)
	counts := make([]int, 3)
	s.BatchQuery([]index.Rect{empty, full, full}, func(qi int, _ []float64) { counts[qi]++ })
	if counts[0] != 0 {
		t.Errorf("empty rect matched %d rows", counts[0])
	}
	if counts[1] != tab.Len() || counts[2] != tab.Len() {
		t.Errorf("duplicate full rects matched %d/%d rows, want %d each", counts[1], counts[2], tab.Len())
	}
}

func TestInsertThenQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tab := fdTable(rng, 3000, 0.15)
	for _, part := range []shard.Partition{shard.ByRange, shard.ByHash} {
		s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 5, Workers: 3, Partition: part, Column: -1})
		if err != nil {
			t.Fatal(err)
		}
		combined := tab.Slice(0, tab.Len())
		extra := fdTable(rng, 500, 0.3)
		for i := 0; i < extra.Len(); i++ {
			row := extra.Row(i)
			if err := s.Insert(row); err != nil {
				t.Fatalf("%v: insert: %v", part, err)
			}
			combined.Append(row)
		}
		if s.Len() != combined.Len() {
			t.Fatalf("%v: Len = %d, want %d", part, s.Len(), combined.Len())
		}
		oracle := scan.New(combined)
		for trial := 0; trial < 40; trial++ {
			r := workload.RandRect(rng, combined)
			if got, want := index.Count(s, r), index.Count(oracle, r); got != want {
				t.Fatalf("%v: trial %d rect %v: count %d, want %d", part, trial, r, got, want)
			}
		}
	}
}

// Regression for the visitor ownership contract: a visitor that retains
// every slice it is handed must observe uncorrupted rows afterwards. If the
// fan-out reused merge buffers between calls (or handed out slices still
// being written by workers), retained rows would be overwritten by later
// matches and the final comparison would fail.
func TestVisitorSliceRetentionNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := fdTable(rng, 4000, 0.2)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 6, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.New(tab)
	for trial := 0; trial < 20; trial++ {
		r := workload.RandRect(rng, tab)
		var retained [][]float64 // slices exactly as handed to the visitor
		var copies [][]float64   // deep copies taken at visit time
		s.Query(r, func(row []float64) {
			retained = append(retained, row)
			copies = append(copies, append([]float64(nil), row...))
		})
		for i := range retained {
			for j := range retained[i] {
				if retained[i][j] != copies[i][j] {
					t.Fatalf("trial %d: retained row %d mutated after visit: %v vs %v",
						trial, i, retained[i], copies[i])
				}
			}
		}
		// Retained rows must also be the true result multiset.
		want := index.Collect(oracle, r)
		sortRows(want)
		sortRows(retained)
		if !rowsEqual(want, retained) {
			t.Fatalf("trial %d: retained rows are not the query result", trial)
		}
		// Writing through one retained row must not reach another (no
		// hidden sharing beyond the documented per-task buffers' distinct
		// regions).
		if len(retained) >= 2 {
			a, b := retained[0], retained[1]
			save := b[0]
			a[0] = math.Inf(1)
			if b[0] != save && &a[0] != &b[0] {
				t.Fatal("distinct retained rows alias the same memory")
			}
			a[0] = copies[0][0]
		}
	}
}

// Exercised under -race in CI: queries on all shards while rows are being
// inserted concurrently must neither race nor miss settled data.
func TestConcurrentQueryDuringInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	tab := fdTable(rng, 3000, 0.15)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := tab.Len()
	full := index.Full(tab.Dims())

	const (
		readers          = 4
		inserts          = 400
		queriesPerReader = 60
	)
	extra := fdTable(rng, inserts, 0.3)
	rects := make([]index.Rect, queriesPerReader)
	for i := range rects {
		rects[i] = workload.RandRect(rng, tab)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load() && i < queriesPerReader; i++ {
				// Full scans observe between base and base+inserts rows;
				// anything else means the fan-out saw a torn shard.
				n := index.Count(s, full)
				if n < base || n > base+inserts {
					t.Errorf("reader %d: full count %d outside [%d,%d]", g, n, base, base+inserts)
					return
				}
				index.Count(s, rects[i])
				if i%7 == 0 {
					s.BatchQuery(rects[:4], func(int, []float64) {})
				}
			}
		}(g)
	}
	for i := 0; i < inserts; i++ {
		if err := s.Insert(extra.Row(i)); err != nil {
			t.Errorf("insert %d: %v", i, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()

	if got := index.Count(s, full); got != base+inserts {
		t.Errorf("settled count %d, want %d", got, base+inserts)
	}
}

func TestBuildValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tab := fdTable(rng, 200, 0.1)
	if _, err := shard.Build(dataset.NewTable([]string{"a"}), coreOptions(), shard.DefaultOptions()); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: shard.MaxShards + 1}); err == nil {
		t.Error("oversized shard count accepted")
	}
	if _, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 2, Column: 99}); err == nil {
		t.Error("out-of-range range column accepted")
	}
	if _, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 2, Partition: shard.Partition(9)}); err == nil {
		t.Error("unknown partition kind accepted")
	}
}

func TestReassembleValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	tab := fdTable(rng, 500, 0.1)
	idx, err := core.Build(tab, coreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Reassemble(nil, shard.ByHash, -1, nil, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := shard.Reassemble([]*core.COAX{idx, nil}, shard.ByHash, -1, nil, 0); err == nil {
		t.Error("nil shard accepted")
	}
	if _, err := shard.Reassemble([]*core.COAX{idx, idx}, shard.ByRange, 0, nil, 0); err == nil {
		t.Error("missing cuts accepted")
	}
	if _, err := shard.Reassemble([]*core.COAX{idx, idx}, shard.ByRange, 0, []float64{2, 1}, 0); err == nil {
		t.Error("unsorted cuts accepted")
	}
	if _, err := shard.Reassemble([]*core.COAX{idx, idx}, shard.ByRange, 99, []float64{5}, 0); err == nil {
		t.Error("bad range column accepted")
	}
	if _, err := shard.Reassemble([]*core.COAX{idx, idx}, shard.ByHash, -1, []float64{5}, 0); err == nil {
		t.Error("hash partition with cuts accepted")
	}
	s, err := shard.Reassemble([]*core.COAX{idx}, shard.ByRange, 0, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := index.Count(s, index.Full(tab.Dims())); got != tab.Len() {
		t.Errorf("reassembled single shard counts %d rows, want %d", got, tab.Len())
	}
}

func TestStatsShape(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	tab := fdTable(rng, 2000, 0.1)
	s, err := shard.Build(tab, coreOptions(), shard.Options{NumShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := s.BuildStats()
	if st.Shards != 4 || st.Rows != tab.Len() || st.Dims != 4 {
		t.Errorf("stats = %+v", st)
	}
	sum := 0
	for _, n := range st.RowsPerShard {
		sum += n
	}
	if sum != tab.Len() {
		t.Errorf("per-shard rows sum to %d, want %d", sum, tab.Len())
	}
	if st.MemoryOverheadB != s.MemoryOverhead() || st.MemoryOverheadB <= 0 {
		t.Errorf("overhead accounting inconsistent: %d vs %d", st.MemoryOverheadB, s.MemoryOverhead())
	}
	if s.Name() != "COAX-sharded" || s.NumShards() != 4 {
		t.Error("identity accessors broken")
	}
}
