package colfiles

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
)

// Column Files is a fixed configuration of the grid-file engine, so the
// gridfile snapshot codec persists it unchanged; this test wires the
// baseline into the snapshot subsystem.
func TestColumnFilesSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := dataset.NewTable([]string{"x", "y", "z"})
	row := make([]float64, 3)
	for i := 0; i < 4000; i++ {
		row[0] = rng.NormFloat64()
		row[1] = row[0]*3 + rng.NormFloat64()*0.1
		row[2] = rng.Float64() * 10
		tab.Append(row)
	}
	cf, err := Build(tab, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := binio.NewWriter()
	cf.Encode(w)
	r := binio.NewReader(w.Bytes())
	got, err := gridfile.Decode(r)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got.Name() != "ColumnFiles" || got.Len() != cf.Len() {
		t.Fatalf("decoded %q with %d rows, want ColumnFiles with %d", got.Name(), got.Len(), cf.Len())
	}
	for q := 0; q < 30; q++ {
		rect := index.Full(3)
		d := rng.Intn(3)
		a, b := rng.NormFloat64(), rng.NormFloat64()
		if a > b {
			a, b = b, a
		}
		rect.Min[d], rect.Max[d] = a, b
		if w, g := index.Count(cf, rect), index.Count(got, rect); w != g {
			t.Fatalf("query %d: %d != %d", q, w, g)
		}
	}
}
