// Package colfiles provides the "Column Files" baseline of §8.1.3: a
// non-uniform grid that aligns its cell boundaries with the CDF of the data
// (quantiles) and sorts the rows inside each cell on one attribute, thereby
// dropping that attribute's grid lines and reducing the index dimensionality
// by one. It is the same layout as Flood without workload awareness, and a
// fixed configuration of the grid-file engine. Because the built index IS a
// *gridfile.GridFile, the gridfile snapshot codec persists it unchanged —
// Column Files needs no serialization code of its own.
package colfiles

import (
	"fmt"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
)

// Build constructs column files over every column of t, sorting inside each
// cell on sortDim (which receives no grid lines).
func Build(t *dataset.Table, cellsPerDim, sortDim int) (*gridfile.GridFile, error) {
	if sortDim < 0 || sortDim >= t.Dims() {
		return nil, fmt.Errorf("colfiles: sort dimension %d out of range [0,%d)", sortDim, t.Dims())
	}
	dims := make([]int, 0, t.Dims()-1)
	for i := 0; i < t.Dims(); i++ {
		if i != sortDim {
			dims = append(dims, i)
		}
	}
	return gridfile.Build(t, gridfile.Config{
		GridDims:    dims,
		SortDim:     sortDim,
		CellsPerDim: cellsPerDim,
		Mode:        gridfile.Quantile,
		Label:       "ColumnFiles",
	})
}
