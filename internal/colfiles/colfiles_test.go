package colfiles

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func TestColumnFilesMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := dataset.NewTable([]string{"a", "b", "c"})
	for i := 0; i < 3000; i++ {
		tab.Append([]float64{rng.Float64() * 100, rng.NormFloat64() * 10, rng.ExpFloat64()})
	}
	g, err := Build(tab, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "ColumnFiles" {
		t.Errorf("Name = %q", g.Name())
	}
	// Sort dim 2 gets no grid lines: 8×8 cells only.
	if g.NumCells() != 64 {
		t.Errorf("NumCells = %d, want 64", g.NumCells())
	}
	oracle := scan.New(tab)
	for trial := 0; trial < 40; trial++ {
		r := index.Full(3)
		for d := 0; d < 3; d++ {
			a, b := tab.Row(rng.Intn(tab.Len()))[d], tab.Row(rng.Intn(tab.Len()))[d]
			if a > b {
				a, b = b, a
			}
			r.Min[d], r.Max[d] = a, b
		}
		if got, want := index.Count(g, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestColumnFilesSortDimValidation(t *testing.T) {
	tab := dataset.NewTable([]string{"a"})
	tab.Append([]float64{1})
	if _, err := Build(tab, 4, -1); err == nil {
		t.Error("negative sort dim accepted")
	}
	if _, err := Build(tab, 4, 1); err == nil {
		t.Error("out-of-range sort dim accepted")
	}
}
