package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/workload"
)

// TestMutationsMatchScanOracle interleaves Insert/Delete/Update/Query from
// the mixed-workload generator against both outlier-index kinds and checks
// every query against a full scan of the generator's live multiset.
func TestMutationsMatchScanOracle(t *testing.T) {
	for _, kind := range []OutlierIndexKind{OutlierGrid, OutlierRTree} {
		kind := kind
		name := map[OutlierIndexKind]string{OutlierGrid: "grid", OutlierRTree: "rtree"}[kind]
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			tab := fdTable(rng, 4000, 0.05)
			opt := testOptions()
			opt.OutlierKind = kind
			c, err := Build(tab, opt)
			if err != nil {
				t.Fatal(err)
			}
			mix := workload.NewMixGenerator(tab, 32, workload.MixConfig{
				InsertWeight: 1, DeleteWeight: 1, UpdateWeight: 1, QueryWeight: 2,
				OutlierFrac: 0.2,
			})
			for op := 0; op < 4000; op++ {
				o := mix.Next()
				switch o.Kind {
				case workload.OpInsert:
					if err := c.Insert(o.Row); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
				case workload.OpDelete:
					if err := c.Delete(o.Row); err != nil {
						t.Fatalf("op %d delete %v: %v", op, o.Row, err)
					}
				case workload.OpUpdate:
					if err := c.Update(o.Old, o.New); err != nil {
						t.Fatalf("op %d update: %v", op, err)
					}
				case workload.OpQuery:
					got := index.Count(c, o.Rect)
					want := index.Count(scan.New(mix.LiveView()), o.Rect)
					if got != want {
						t.Fatalf("op %d query: got %d rows, oracle %d", op, got, want)
					}
				}
				if op == 2000 {
					c.Compact() // mid-stream compaction must not change results
				}
				if c.Len() != mix.LiveLen() {
					t.Fatalf("op %d: Len=%d, oracle %d", op, c.Len(), mix.LiveLen())
				}
			}
		})
	}
}

func TestDeleteAndUpdateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tab := fdTable(rng, 1000, 0.05)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := c.Len()

	if err := c.Delete([]float64{1, 2}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := c.Delete([]float64{math.NaN(), 0, 0, 0}); err == nil {
		t.Fatal("NaN row accepted")
	}
	missing := []float64{-1e9, -1e9, -1e9, -1e9}
	if err := c.Delete(missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v, want ErrNotFound", err)
	}
	if err := c.Update(missing, tab.Row(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v, want ErrNotFound", err)
	}
	if c.Len() != n {
		t.Fatalf("failed mutations changed Len to %d (was %d)", c.Len(), n)
	}
	s := c.LifecycleStats()
	if s.Deletes != 0 || s.Updates != 0 {
		t.Fatalf("failed mutations were counted: %+v", s)
	}
}

func TestLifecycleStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tab := fdTable(rng, 8000, 0.02)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) != 1 {
		t.Skip("FD not detected")
	}
	pm := c.BuildStats().Groups[0].Models[0]

	// One clean inlier, one gross outlier.
	x := 500.0
	inlier := []float64{0, 0, 1, 2}
	inlier[pm.X] = x
	inlier[pm.D] = pm.Model.Predict(x)
	outlier := append([]float64(nil), inlier...)
	outlier[pm.D] += 1e6
	if err := c.Insert(inlier); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(outlier); err != nil {
		t.Fatal(err)
	}
	// Delete an original row: it lives in a main page, so the delete
	// tombstones rather than removing physically.
	if err := c.Delete(tab.Row(0)); err != nil {
		t.Fatal(err)
	}

	s := c.LifecycleStats()
	if s.Inserts != 2 || s.InsertOutliers != 1 || s.Deletes != 1 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Tombstones != 1 || s.StoredRows != s.LiveRows+1 {
		t.Fatalf("tombstones: %+v", s)
	}
	if s.TombstoneRatio <= 0 || s.OutlierRatio <= 0 {
		t.Fatalf("ratios: %+v", s)
	}
	if len(s.Drift) != 1 || s.Drift[0].Samples != 2 {
		t.Fatalf("drift: %+v", s.Drift)
	}
	// The outlier insert drags the mean residual way past the margin.
	if s.MaxDrift() < 1 {
		t.Fatalf("MaxDrift = %v, want > 1", s.MaxDrift())
	}
}

// TestRebuildHealsDrift drives the planted-FD table out of shape with
// model-violating inserts, checks the staleness rules fire, rebuilds, and
// verifies the fresh epoch restores a small outlier set while answering
// queries identically.
func TestRebuildHealsDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tab := fdTable(rng, 6000, 0.02)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) != 1 {
		t.Skip("FD not detected")
	}
	th := lifecycle.DefaultThresholds()

	// Drift: inserts whose dependent column is shifted by a constant — a
	// new regime the old model rejects wholesale but a fresh detection can
	// fit (it is still a clean linear dependency).
	mirror := mirrorOf(c, tab)
	for i := 0; i < 4000; i++ {
		x := rng.Float64() * 1000
		row := []float64{x, 2*x + 5000 + rng.NormFloat64()*4, rng.Float64() * 100, rng.NormFloat64() * 10}
		if err := c.Insert(row); err != nil {
			t.Fatal(err)
		}
		mirror.Append(row)
	}
	s := c.LifecycleStats()
	if stale, reasons := s.Stale(th); !stale {
		t.Fatalf("drifted index not stale: %+v", s)
	} else if len(reasons) == 0 {
		t.Fatal("stale with no reasons")
	}

	next, err := c.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != c.Epoch()+1 {
		t.Fatalf("epoch %d, want %d", next.Epoch(), c.Epoch()+1)
	}
	ns := next.LifecycleStats()
	if ns.Mutations() != 0 || ns.Tombstones != 0 {
		t.Fatalf("fresh epoch carries old counters: %+v", ns)
	}
	if ns.OutlierRatio > s.OutlierRatio/2 {
		t.Fatalf("rebuild did not shrink the outlier set: %.3f → %.3f", s.OutlierRatio, ns.OutlierRatio)
	}
	if stale, reasons := ns.Stale(th); stale {
		t.Fatalf("fresh epoch still stale: %v", reasons)
	}

	// The swap must be invisible to queries.
	oracle := scan.New(mirror)
	for q := 0; q < 200; q++ {
		r := randQuery(rng, mirror)
		want := index.Count(oracle, r)
		if got := index.Count(c, r); got != want {
			t.Fatalf("old epoch query %d: got %d, oracle %d", q, got, want)
		}
		if got := index.Count(next, r); got != want {
			t.Fatalf("new epoch query %d: got %d, oracle %d", q, got, want)
		}
	}
}

// mirrorOf clones the index's current live rows into a table for oracle
// comparisons.
func mirrorOf(c *COAX, tab *dataset.Table) *dataset.Table {
	m := dataset.NewTable(tab.Cols)
	for i := 0; i < tab.Len(); i++ {
		m.Append(tab.Row(i))
	}
	return m
}

func TestRebuildEmptyAndTinyIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	tab := fdTable(rng, 200, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Delete everything, then rebuild: the empty index must survive and
	// keep accepting inserts.
	for i := 0; i < tab.Len(); i++ {
		if err := c.Delete(tab.Row(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len=%d after deleting everything", c.Len())
	}
	next, err := c.Rebuild()
	if err != nil {
		t.Fatalf("rebuilding an emptied index: %v", err)
	}
	if next.Len() != 0 || next.Epoch() != 1 {
		t.Fatalf("empty rebuild: Len=%d Epoch=%d", next.Len(), next.Epoch())
	}
	if err := next.Insert(tab.Row(0)); err != nil {
		t.Fatalf("insert into rebuilt empty index: %v", err)
	}
	if index.Count(next, index.Point(tab.Row(0))) != 1 {
		t.Fatal("inserted row not found")
	}
}
