// Package core assembles COAX, the paper's primary contribution: it runs
// soft-FD detection, splits the table into inliers and outliers, builds a
// reduced-dimensionality grid-file primary index plus a conventional
// multidimensional outlier index, and answers range/point queries by
// translating constraints on dependent attributes into constraints on
// their predictors (paper §3, §4, Eq. 2).
package core

import (
	"fmt"
	"math"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/softfd"
)

// OutlierIndexKind selects the structure holding the records that violate
// the learned dependencies.
type OutlierIndexKind int

const (
	// OutlierGrid stores outliers in a quantile grid file over all
	// dimensions — the layout sketched in the paper's Figure 1 and the
	// default. The resolution obeys the directory-size rule, so the
	// outlier directory stays proportional to the (small) outlier set.
	OutlierGrid OutlierIndexKind = iota
	// OutlierRTree stores outliers in a bulk-loaded R-tree; an ablation
	// alternative that trades directory size for tighter pruning.
	OutlierRTree
)

// Options configures a COAX build. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// SoftFD configures dependency detection.
	SoftFD softfd.Config
	// PrimaryCellsPerDim is the grid resolution of the primary index.
	PrimaryCellsPerDim int
	// OutlierCellsPerDim is the grid resolution of the outlier index when
	// OutlierKind == OutlierGrid; 0 sizes it automatically so the outlier
	// directory never exceeds the outlier data (the paper's memory rule).
	OutlierCellsPerDim int
	// OutlierKind selects the outlier structure.
	OutlierKind OutlierIndexKind
	// OutlierRTreeCapacity is the R-tree node capacity when OutlierKind ==
	// OutlierRTree.
	OutlierRTreeCapacity int
	// SortDim forces the in-cell sort dimension of the primary index; -1
	// selects it automatically (the predictor of the largest group).
	SortDim int
	// DisableSortDim turns off in-cell sorting entirely (ablation: without
	// it the primary grid must give the sort dimension its own grid lines).
	DisableSortDim bool
}

// DefaultOptions returns the settings used by the benchmarks.
func DefaultOptions() Options {
	return Options{
		SoftFD:               softfd.DefaultConfig(),
		PrimaryCellsPerDim:   24,
		OutlierCellsPerDim:   0, // auto
		OutlierKind:          OutlierGrid,
		OutlierRTreeCapacity: 10,
		SortDim:              -1,
	}
}

// COAX is the built index.
type COAX struct {
	dims int
	n    int
	cols []string // column names from the build table; may be all-empty

	fd      softfd.Result
	depends []*softfd.PairModel // by column; nil when the column is indexed
	sortDim int

	primary  *gridfile.GridFile // nil when every row is an outlier
	outliers index.Interface    // nil when every row is an inlier

	// Bounding boxes of each partition (§8.2.3: "check whether the query
	// intersects with the primary, the outlier, or both indexes"). Queries
	// that miss a partition's box skip its probe entirely.
	primaryBounds      index.Rect
	outlierBounds      index.Rect
	primaryN, outlierN int

	// Build parameters retained for lazy index creation on Insert.
	primaryCells    int
	outlierKind     OutlierIndexKind
	outlierRTreeCap int

	// Lifecycle state (see mutate.go): the full build options retained for
	// Rebuild, the mutation/drift tracker, the rebuild generation, and the
	// outlier ratio measured at build time (the staleness baseline).
	opt              Options
	tracker          *lifecycle.Tracker
	epoch            uint64
	baseOutlierRatio float64
}

var _ index.Interface = (*COAX)(nil)

// Build constructs COAX over t.
func Build(t *dataset.Table, opt Options) (*COAX, error) {
	if opt.PrimaryCellsPerDim < 1 {
		return nil, fmt.Errorf("core: PrimaryCellsPerDim must be ≥ 1, got %d", opt.PrimaryCellsPerDim)
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("core: cannot build over an empty table")
	}

	fd, err := softfd.Detect(t, opt.SoftFD)
	if err != nil {
		return nil, fmt.Errorf("core: soft-FD detection: %w", err)
	}
	return BuildWithFD(t, fd, opt)
}

// newSkeleton assembles the model-dependent state shared by the in-memory
// and streaming builds: dependency routing, the mutation tracker, and the
// sort dimension. The caller still owes row counts and index structures.
func newSkeleton(cols []string, dims int, fd softfd.Result, opt Options) (*COAX, error) {
	c := &COAX{
		dims:            dims,
		cols:            append([]string(nil), cols...),
		fd:              fd,
		primaryCells:    opt.PrimaryCellsPerDim,
		outlierKind:     opt.OutlierKind,
		outlierRTreeCap: opt.OutlierRTreeCapacity,
		opt:             opt,
	}
	if c.primaryCells < 1 {
		c.primaryCells = 1
	}
	if c.outlierRTreeCap < 2 {
		c.outlierRTreeCap = 10
	}
	c.depends = make([]*softfd.PairModel, dims)
	for gi := range fd.Groups {
		g := &fd.Groups[gi]
		for mi := range g.Models {
			m := &g.Models[mi]
			c.depends[m.D] = m
		}
	}
	c.initTracker()

	if err := c.pickSortDim(opt); err != nil {
		return nil, err
	}
	return c, nil
}

// BuildWithFD constructs COAX from pre-detected dependencies; used by tests
// and by tools that detect once and build several variants.
func BuildWithFD(t *dataset.Table, fd softfd.Result, opt Options) (*COAX, error) {
	c, err := newSkeleton(t.Cols, t.Dims(), fd, opt)
	if err != nil {
		return nil, err
	}
	c.n = t.Len()

	primaryTab, outlierTab := c.split(t)
	c.primaryN, c.outlierN = primaryTab.Len(), outlierTab.Len()
	if c.n > 0 {
		c.baseOutlierRatio = float64(c.outlierN) / float64(c.n)
	}

	if primaryTab.Len() > 0 {
		cfg := gridfile.Config{
			GridDims:    c.primaryGridDims(),
			SortDim:     c.sortDim,
			CellsPerDim: opt.PrimaryCellsPerDim,
			Mode:        gridfile.Quantile,
			Label:       "COAX-primary",
		}
		p, err := gridfile.Build(primaryTab, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: building primary index: %w", err)
		}
		c.primary = p
	}

	if outlierTab.Len() > 0 {
		out, err := buildOutlierIndex(outlierTab, opt)
		if err != nil {
			return nil, fmt.Errorf("core: building outlier index: %w", err)
		}
		c.outliers = out
	}
	return c, nil
}

func buildOutlierIndex(t *dataset.Table, opt Options) (index.Interface, error) {
	switch opt.OutlierKind {
	case OutlierRTree:
		capEntries := opt.OutlierRTreeCapacity
		if capEntries < 2 {
			capEntries = 10
		}
		return rtree.Bulk(t, rtree.Config{MaxEntries: capEntries})
	case OutlierGrid:
		cells := opt.OutlierCellsPerDim
		if cells < 1 {
			cells = gridfile.DirectoryBoundedCells(t.Dims(), t.SizeBytes())
		}
		dims := make([]int, t.Dims())
		for i := range dims {
			dims[i] = i
		}
		return gridfile.Build(t, gridfile.Config{
			GridDims:    dims,
			SortDim:     -1,
			CellsPerDim: cells,
			Mode:        gridfile.Quantile,
			Label:       "COAX-outliers",
		})
	default:
		return nil, fmt.Errorf("core: unknown outlier index kind %d", opt.OutlierKind)
	}
}

// pickSortDim decides the in-cell sort dimension of the primary index.
func (c *COAX) pickSortDim(opt Options) error {
	if opt.DisableSortDim {
		c.sortDim = -1
		return nil
	}
	if opt.SortDim >= 0 {
		if opt.SortDim >= c.dims {
			return fmt.Errorf("core: SortDim %d out of range [0,%d)", opt.SortDim, c.dims)
		}
		if c.depends[opt.SortDim] != nil {
			return fmt.Errorf("core: SortDim %d is a dependent column and is not stored in the primary grid", opt.SortDim)
		}
		c.sortDim = opt.SortDim
		return nil
	}
	// Auto: the predictor of the largest group benefits most from binary
	// search because translated constraints land on it.
	best, bestSize := -1, 0
	for _, g := range c.fd.Groups {
		if len(g.Members) > bestSize {
			best, bestSize = g.Predictor, len(g.Members)
		}
	}
	if best < 0 {
		// No dependencies: fall back to the first column (column-files
		// layout over all dimensions).
		best = 0
	}
	c.sortDim = best
	return nil
}

// primaryGridDims lists the columns that receive grid lines in the primary
// index: everything except dependents and the sort dimension — the paper's
// n − m − 1 dimensions.
func (c *COAX) primaryGridDims() []int {
	var dims []int
	for d := 0; d < c.dims; d++ {
		if c.depends[d] != nil || d == c.sortDim {
			continue
		}
		dims = append(dims, d)
	}
	return dims
}

// split partitions rows into inliers (within every group model's margins)
// and outliers, tracking each partition's bounding box for probe pruning.
func (c *COAX) split(t *dataset.Table) (primary, outliers *dataset.Table) {
	primary = dataset.NewTable(t.Cols)
	outliers = dataset.NewTable(t.Cols)
	c.primaryBounds = emptyBounds(c.dims)
	c.outlierBounds = emptyBounds(c.dims)
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		if c.rowIsInlier(row) {
			primary.Append(row)
			extendBounds(&c.primaryBounds, row)
		} else {
			outliers.Append(row)
			extendBounds(&c.outlierBounds, row)
		}
	}
	return primary, outliers
}

// emptyBounds is the identity element for extendBounds: an inverted box
// that overlaps nothing.
func emptyBounds(dims int) index.Rect {
	b := index.Rect{Min: make([]float64, dims), Max: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		b.Min[d] = math.Inf(1)
		b.Max[d] = math.Inf(-1)
	}
	return b
}

func extendBounds(b *index.Rect, row []float64) {
	for d, v := range row {
		if v < b.Min[d] {
			b.Min[d] = v
		}
		if v > b.Max[d] {
			b.Max[d] = v
		}
	}
}

func (c *COAX) rowIsInlier(row []float64) bool {
	for d, pm := range c.depends {
		if pm == nil {
			continue
		}
		if !pm.Within(row[pm.X], row[d]) {
			return false
		}
	}
	return true
}

// Name implements index.Interface.
func (c *COAX) Name() string { return "COAX" }

// Len implements index.Interface.
func (c *COAX) Len() int { return c.n }

// Dims implements index.Interface.
func (c *COAX) Dims() int { return c.dims }

// Columns returns a copy of the column names the index was built over; the
// slice is empty (or all-empty strings) when the build table carried no
// names — name-based queries then need positional predicates instead.
func (c *COAX) Columns() []string { return append([]string(nil), c.cols...) }

// MemoryOverhead implements index.Interface: primary directory + outlier
// directory + learned model parameters.
func (c *COAX) MemoryOverhead() int64 {
	var b int64 = c.fd.ModelBytes()
	if c.primary != nil {
		b += c.primary.MemoryOverhead()
	}
	if c.outliers != nil {
		b += c.outliers.MemoryOverhead()
	}
	return b
}

// PrimaryMemoryOverhead reports the primary directory plus model bytes
// (the "COAX (primary)" series of Figure 8).
func (c *COAX) PrimaryMemoryOverhead() int64 {
	b := c.fd.ModelBytes()
	if c.primary != nil {
		b += c.primary.MemoryOverhead()
	}
	return b
}

// OutlierMemoryOverhead reports the outlier directory (the "COAX
// (outliers)" series of Figure 8).
func (c *COAX) OutlierMemoryOverhead() int64 {
	if c.outliers == nil {
		return 0
	}
	return c.outliers.MemoryOverhead()
}

// Query implements index.Interface: translated primary probe + outlier
// probe, results merged. It is the legacy run-to-completion shim over Scan.
func (c *COAX) Query(r index.Rect, visit index.Visitor) {
	c.Scan(r, index.AsYield(visit), nil)
}

// QueryPrimary answers r from the primary index only (the "COAX (primary)"
// series in Figures 6–8). Results are exact over the inlier partition.
func (c *COAX) QueryPrimary(r index.Rect, visit index.Visitor) {
	c.scanPrimary(r, index.AsYield(visit), nil, nil)
}

// QueryOutliers answers r from the outlier index only.
func (c *COAX) QueryOutliers(r index.Rect, visit index.Visitor) {
	c.scanOutliers(r, index.AsYield(visit), nil, nil)
}

// Translate converts r into the rectangle probed against the primary index
// (Eq. 2): every constraint on a dependent attribute Cd is mapped through
// its model ψ̂ and margins into a constraint on the predictor Cx and
// intersected with Cx's native constraint; the dependent dimensions are
// then left unconstrained for routing (matching rows are still re-checked
// against the original rectangle). feasible is false when the translated
// constraints prove no inlier can match, letting the caller skip the
// primary probe entirely.
func (c *COAX) Translate(r index.Rect) (routed index.Rect, feasible bool) {
	return c.translate(r, nil)
}

// Stats summarises the build for Table 1 and the experiment reports.
type Stats struct {
	Rows             int
	Dims             int
	Groups           []softfd.Group
	DependentDims    int
	IndexedDims      int // dims receiving grid lines or the sort position
	GridDims         int // primary grid dimensionality (n − m − 1)
	SortDim          int
	PrimaryRows      int
	OutlierRows      int
	PrimaryRatio     float64
	PrimaryCells     int
	PrimaryOverheadB int64
	OutlierOverheadB int64
	ModelOverheadB   int64
}

// BuildStats reports the statistics of this build.
func (c *COAX) BuildStats() Stats {
	s := Stats{
		Rows:           c.n,
		Dims:           c.dims,
		Groups:         c.fd.Groups,
		SortDim:        c.sortDim,
		PrimaryRows:    c.primaryN,
		OutlierRows:    c.outlierN,
		ModelOverheadB: c.fd.ModelBytes(),
	}
	for _, pm := range c.depends {
		if pm != nil {
			s.DependentDims++
		}
	}
	s.IndexedDims = c.dims - s.DependentDims
	s.GridDims = len(c.primaryGridDims())
	if c.n > 0 {
		s.PrimaryRatio = float64(c.primaryN) / float64(c.n)
	}
	if c.primary != nil {
		s.PrimaryCells = c.primary.NumCells()
		s.PrimaryOverheadB = c.primary.MemoryOverhead()
	}
	if c.outliers != nil {
		s.OutlierOverheadB = c.outliers.MemoryOverhead()
	}
	return s
}

// FD exposes the detection result (read-only by convention).
func (c *COAX) FD() softfd.Result { return c.fd }

// Primary exposes the primary grid file (nil when all rows are outliers);
// used by the Figure 4a experiment to read cell-size distributions.
func (c *COAX) Primary() *gridfile.GridFile { return c.primary }

// Outliers exposes the outlier index (nil when all rows are inliers); the
// snapshot v3 encoder dispatches on its concrete type.
func (c *COAX) Outliers() index.Interface { return c.outliers }

// OutlierKind reports which outlier index kind the build selected.
func (c *COAX) OutlierKind() OutlierIndexKind { return c.outlierKind }
