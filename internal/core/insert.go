package core

import (
	"fmt"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/rtree"
)

// Insert adds one row to the index — the update path the paper defers to
// future work (§9) built on the mechanism it sketches in §5: the learned
// models stay fixed (they were trained on a sample and remain valid while
// the data distribution holds), the row is classified against the existing
// margins, and it lands either in the primary grid's delta pages or in the
// outlier index. Call Compact after a batch of inserts to restore fully
// contiguous primary cells; rebuild the index entirely if the data
// distribution drifts enough that the dependency models stop fitting (the
// primary ratio of BuildStats is the signal to watch).
func (c *COAX) Insert(row []float64) error {
	if len(row) != c.dims {
		return fmt.Errorf("core: row has %d values, index has %d dims", len(row), c.dims)
	}
	if c.rowIsInlier(row) {
		if c.primary == nil {
			if err := c.initPrimary(row); err != nil {
				return err
			}
		} else if err := c.primary.Insert(row); err != nil {
			return err
		}
		extendBounds(&c.primaryBounds, row)
		c.primaryN++
	} else {
		if c.outliers == nil {
			if err := c.initOutliers(row); err != nil {
				return err
			}
		} else {
			ins, ok := c.outliers.(inserter)
			if !ok {
				return fmt.Errorf("core: outlier index %T does not support inserts", c.outliers)
			}
			if err := ins.Insert(row); err != nil {
				return err
			}
		}
		extendBounds(&c.outlierBounds, row)
		c.outlierN++
	}
	c.n++
	return nil
}

// inserter is satisfied by both outlier index kinds.
type inserter interface {
	Insert(row []float64) error
}

// Compact merges the primary index's delta pages into its main storage.
func (c *COAX) Compact() {
	if c.primary != nil {
		c.primary.Compact()
	}
}

// initPrimary lazily creates the primary grid when the original build saw
// only outliers. The single seed row defines degenerate boundaries; the
// grid still answers correctly because rows are re-checked against every
// query rectangle.
func (c *COAX) initPrimary(row []float64) error {
	seed := dataset.NewTable(make([]string, c.dims))
	seed.Append(row)
	p, err := gridfile.Build(seed, gridfile.Config{
		GridDims:    c.primaryGridDims(),
		SortDim:     c.sortDim,
		CellsPerDim: c.primaryCells,
		Mode:        gridfile.Quantile,
		Label:       "COAX-primary",
	})
	if err != nil {
		return fmt.Errorf("core: lazily creating primary index: %w", err)
	}
	c.primary = p
	return nil
}

// initOutliers lazily creates the outlier index on the first outlying
// insert.
func (c *COAX) initOutliers(row []float64) error {
	seed := dataset.NewTable(make([]string, c.dims))
	seed.Append(row)
	switch c.outlierKind {
	case OutlierRTree:
		rt, err := rtree.Bulk(seed, rtree.Config{MaxEntries: c.outlierRTreeCap})
		if err != nil {
			return fmt.Errorf("core: lazily creating outlier R-tree: %w", err)
		}
		c.outliers = rt
	default:
		dims := make([]int, c.dims)
		for i := range dims {
			dims[i] = i
		}
		g, err := gridfile.Build(seed, gridfile.Config{
			GridDims:    dims,
			SortDim:     -1,
			CellsPerDim: 2,
			Mode:        gridfile.Quantile,
			Label:       "COAX-outliers",
		})
		if err != nil {
			return fmt.Errorf("core: lazily creating outlier grid: %w", err)
		}
		c.outliers = g
	}
	return nil
}
