package core

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

func sortedRows(idx index.Interface, r index.Rect) [][]float64 {
	var out [][]float64
	idx.Query(r, func(row []float64) {
		out = append(out, append([]float64(nil), row...))
	})
	sort.Slice(out, func(i, j int) bool {
		for d := range out[i] {
			if out[i][d] != out[j][d] {
				return out[i][d] < out[j][d]
			}
		}
		return false
	})
	return out
}

func sameRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				return false
			}
		}
	}
	return true
}

// TestStreamBuilderFullSampleMatchesBuild drives the streaming build with
// the whole table as its sample: classification, boundaries, and outlier
// structure must then agree exactly with the in-memory build, so the two
// indexes answer every query identically and report the same partition
// split.
func TestStreamBuilderFullSampleMatchesBuild(t *testing.T) {
	for _, kind := range []OutlierIndexKind{OutlierGrid, OutlierRTree} {
		tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(20000))
		opt := DefaultOptions()
		opt.OutlierKind = kind

		legacy, err := Build(tab, opt)
		if err != nil {
			t.Fatal(err)
		}
		fd := legacy.FD()

		sb, err := NewStreamBuilder(tab.Cols, fd, tab, opt, tab.Len())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tab.Len(); i++ {
			sb.Add(tab.Row(i))
		}
		streamed, err := sb.Finish()
		if err != nil {
			t.Fatal(err)
		}

		ls, ss := legacy.BuildStats(), streamed.BuildStats()
		if ls.PrimaryRows != ss.PrimaryRows || ls.OutlierRows != ss.OutlierRows {
			t.Fatalf("kind %d: split %d/%d streamed vs %d/%d legacy",
				kind, ss.PrimaryRows, ss.OutlierRows, ls.PrimaryRows, ls.OutlierRows)
		}
		if ls.SortDim != ss.SortDim || ls.GridDims != ss.GridDims {
			t.Fatalf("kind %d: layout mismatch", kind)
		}
		rng := rand.New(rand.NewSource(5))
		for q := 0; q < 60; q++ {
			r := workload.RandRect(rng, tab)
			if !sameRows(sortedRows(legacy, r), sortedRows(streamed, r)) {
				t.Fatalf("kind %d: query %d differs", kind, q)
			}
		}
	}
}

// TestStreamBuilderSampledStaysExact samples 5% of the stream for
// detection and boundaries; the models (and so the inlier/outlier split)
// may differ from the full-scan build, but query answers must not — COAX
// is exact regardless of where rows land.
func TestStreamBuilderSampledStaysExact(t *testing.T) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(30000))
	opt := DefaultOptions()

	legacy, err := Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}

	// 5% uniform sample.
	rng := rand.New(rand.NewSource(9))
	sample := dataset.NewTable(tab.Cols)
	for i := 0; i < tab.Len(); i++ {
		if rng.Float64() < 0.05 {
			sample.Append(tab.Row(i))
		}
	}
	fd, err := softfd.DetectSample(sample, opt.SoftFD)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStreamBuilder(tab.Cols, fd, sample, opt, tab.Len())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Len(); i++ {
		sb.Add(tab.Row(i))
	}
	streamed, err := sb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if streamed.Len() != tab.Len() {
		t.Fatalf("streamed index holds %d rows, want %d", streamed.Len(), tab.Len())
	}

	qrng := rand.New(rand.NewSource(13))
	for q := 0; q < 80; q++ {
		r := workload.RandRect(qrng, tab)
		if !sameRows(sortedRows(legacy, r), sortedRows(streamed, r)) {
			t.Fatalf("query %d differs between sampled-stream and legacy builds", q)
		}
	}
}

func TestStreamBuilderEmptyFinishYieldsSkeleton(t *testing.T) {
	tab := dataset.GenerateOSM(dataset.DefaultOSMConfig(200))
	opt := DefaultOptions()
	fd, err := softfd.Detect(tab, opt.SoftFD)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewStreamBuilder(tab.Cols, fd, tab, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := sb.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 0 {
		t.Fatalf("empty build holds %d rows", idx.Len())
	}
	// The skeleton must accept inserts, mirroring empty shards of a
	// sharded build.
	if err := idx.Insert(tab.Row(0)); err != nil {
		t.Fatalf("Insert into empty skeleton: %v", err)
	}
	if idx.Len() != 1 {
		t.Fatalf("Len after insert = %d", idx.Len())
	}
}
