package core

import (
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
)

// Aggregation pushdown: ExecAgg is Exec's sibling for queries that want an
// aggregate instead of rows. It runs the same two-partition plan —
// translate, probe the primary grid with the routed rectangle, probe the
// outlier index with the original — but drives each partition through its
// vectorized ScanBatch kernel when one exists, folding selection bitmaps
// straight into an index.AggState: no row materialization, no visitor
// callbacks. Probe counters accumulate exactly as on the row path (same
// pages, rows scanned, matches, tombstones), so EXPLAIN output is stable
// across the two paths.

// ExecAgg answers r by folding every matching row into st. spec.Ctx and
// spec.Abort cancel at page granularity exactly as in Exec (Limit and
// Stable are meaningless for aggregates and ignored); a non-nil rep is
// filled with the execution report, including the kernel dispatched per
// partition. It reports whether the scan ran to completion (false: it was
// aborted, and st holds a partial fold).
func (c *COAX) ExecAgg(r index.Rect, spec index.Spec, st *index.AggState, rep *ProbeReport) bool {
	abort := spec.Abort
	if spec.Ctx != nil {
		ctx, prev := spec.Ctx, abort
		abort = func() bool {
			return (prev != nil && prev()) || ctx.Err() != nil
		}
	}
	if !c.aggPrimary(r, st, rep, abort) {
		return false
	}
	if abort != nil && abort() {
		return false
	}
	return c.aggOutliers(r, st, rep, abort)
}

// aggPrimary mirrors scanPrimary. The batch kernel cannot re-check rows
// after the fact the way the row path's wrapper does, so it scans with the
// intersection of the routed and original rectangles instead: routed
// widens the dependent columns to ±∞ and tightens the predictors, so
// routed ∩ original restores the dependent constraints while keeping the
// tightened predictor intervals — membership in it is exactly "matched the
// routed rectangle and the original". Grid routing and the sort-dimension
// span only read grid and sort dimensions, which translation never
// loosens, so the cells walked, spans scanned, and rows matched are
// identical to the row path's.
func (c *COAX) aggPrimary(r index.Rect, st *index.AggState, rep *ProbeReport, abort func() bool) bool {
	pruned := c.primary == nil || r.Empty() || !r.Overlaps(c.primaryBounds)
	if pruned && rep == nil {
		return true
	}
	routed, feasible := c.translate(r, rep)
	if pruned || !feasible {
		return true
	}
	if rep != nil {
		rep.PrimaryProbed = true
	}
	probe := partitionProbe(repPrimary(rep), rep != nil, abort)
	complete := c.primary.ScanBatch(routed.Intersect(r), func(b *index.Batch) bool {
		st.FoldBatch(b)
		return true
	}, probe)
	if rep != nil {
		rep.PrimaryKernel = c.primary.BatchKernel()
	}
	return complete
}

// aggOutliers mirrors scanOutliers, dispatching the outlier index's batch
// kernel when it has one and falling back to a row-at-a-time fold
// otherwise.
func (c *COAX) aggOutliers(r index.Rect, st *index.AggState, rep *ProbeReport, abort func() bool) bool {
	if c.outliers == nil || r.Empty() || !r.Overlaps(c.outlierBounds) {
		return true
	}
	if rep != nil {
		rep.OutlierProbed = true
	}
	probe := partitionProbe(repOutlier(rep), rep != nil, abort)
	complete, kernel := scanBatchInto(c.outliers, r, st, probe)
	if rep != nil {
		rep.OutlierKernel = kernel
	}
	return complete
}

// scanBatchInto folds every row of idx inside r into st through the
// index's batch kernel when it implements one, or the row path otherwise,
// returning completion and the kernel name dispatched.
func scanBatchInto(idx index.Interface, r index.Rect, st *index.AggState, probe *index.Probe) (complete bool, kernel string) {
	if bs, ok := idx.(index.ScanBatcher); ok {
		kernel = "batch"
		if k, ok := idx.(index.Kernel); ok {
			kernel = k.BatchKernel()
		}
		return bs.ScanBatch(r, func(b *index.Batch) bool {
			st.FoldBatch(b)
			return true
		}, probe), kernel
	}
	return idx.Scan(r, func(row []float64) bool {
		st.FoldRow(row)
		return true
	}, probe), "row-fallback"
}

// ObserveAggKernels folds one finished aggregation's kernel usage into the
// batch-kernel metrics: a dispatch count per partition kernel and the
// bitmap-selected row total for the partitions a batch kernel answered.
// Callers gate on obs.On(); like ObserveProbe it is called once per
// underlying ProbeReport by the layer owning the whole query.
func ObserveAggKernels(rep *ProbeReport) {
	if rep == nil {
		return
	}
	if rep.PrimaryKernel != "" {
		obs.KernelDispatch(rep.PrimaryKernel).Inc()
		if rep.PrimaryKernel != "row-fallback" {
			obs.BatchRowsSelected.Add(rep.Primary.Matched)
		}
	}
	if rep.OutlierKernel != "" {
		obs.KernelDispatch(rep.OutlierKernel).Inc()
		if rep.OutlierKernel != "row-fallback" {
			obs.BatchRowsSelected.Add(rep.Outlier.Matched)
		}
	}
}
