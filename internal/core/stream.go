// Two-phase streaming build (ingestion API v2). Phase one — sampling and
// soft-FD detection — happens before a StreamBuilder exists: the caller
// draws a row sample (reservoir or prefix), detects dependencies on it, and
// hands both here. Phase two streams every row exactly once: inliers go
// straight into the primary grid file's own storage through a
// gridfile.Streamer whose cell boundaries are quantile estimates from the
// sample, and outliers either stream the same way (grid outlier index) or
// accumulate in a staging table (R-tree, whose bulk load needs all rows —
// bounded by construction: an accepted dependency keeps at least
// MinInlierFrac of the data primary). Nothing ever holds the full table.
package core

import (
	"fmt"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/softfd"
)

// StreamBuilder constructs a COAX index from a stream of rows against
// pre-detected dependencies. It is single-goroutine; the sharded streaming
// build runs one per shard.
type StreamBuilder struct {
	c          *COAX
	primary    *gridfile.Streamer
	outStream  *gridfile.Streamer // grid outliers: streamed like the primary
	outStaging *dataset.Table     // r-tree outliers: buffered for bulk load
	n          int
}

// NewStreamBuilder prepares a streaming build. sample must be a non-empty
// row sample of the incoming stream (it seeds the primary and outlier grid
// boundaries); fd holds the dependencies detected on that sample.
// totalHint ≥ 0 preallocates for the expected stream length and sizes the
// outlier grid directory; pass -1 when unknown (grid outliers then fall
// back to staging, since the directory rule needs a size estimate).
func NewStreamBuilder(cols []string, fd softfd.Result, sample *dataset.Table, opt Options, totalHint int) (*StreamBuilder, error) {
	if opt.PrimaryCellsPerDim < 1 {
		return nil, fmt.Errorf("core: PrimaryCellsPerDim must be ≥ 1, got %d", opt.PrimaryCellsPerDim)
	}
	if sample.Len() == 0 {
		return nil, fmt.Errorf("core: streaming build needs a non-empty sample")
	}
	if len(cols) != sample.Dims() {
		return nil, fmt.Errorf("core: %d column names for a %d-column sample", len(cols), sample.Dims())
	}
	c, err := newSkeleton(cols, sample.Dims(), fd, opt)
	if err != nil {
		return nil, err
	}
	c.primaryBounds = emptyBounds(c.dims)
	c.outlierBounds = emptyBounds(c.dims)

	b := &StreamBuilder{c: c}

	// Classify the sample once: its inlier rows seed the primary grid
	// boundaries (the same population the in-memory build computes exact
	// quantiles over) and its outlier rate sizes the outlier structures.
	inlier := make([]bool, sample.Len())
	inliers := 0
	for i := range inlier {
		if c.rowIsInlier(sample.Row(i)) {
			inlier[i] = true
			inliers++
		}
	}
	inlierFrac := float64(inliers) / float64(sample.Len())

	primaryCfg := gridfile.Config{
		GridDims:    c.primaryGridDims(),
		SortDim:     c.sortDim,
		CellsPerDim: opt.PrimaryCellsPerDim,
		Mode:        gridfile.Quantile,
		Label:       "COAX-primary",
	}
	// Capacity hints carry slack: the sampled inlier fraction is an
	// estimate, and a hint that undershoots by even one row would trigger
	// an append-growth whose copy transiently doubles the largest buffer —
	// the exact spike streaming exists to avoid. Both are clamped to the
	// stream length.
	primaryHint := -1
	outlierHint := -1
	if totalHint >= 0 {
		primaryHint = int(float64(totalHint)*inlierFrac*1.05) + 4096
		outlierHint = int(float64(totalHint)*(1-inlierFrac)*1.25) + 4096
		if primaryHint > totalHint+1 {
			primaryHint = totalHint + 1
		}
		if outlierHint > totalHint+1 {
			outlierHint = totalHint + 1
		}
	}
	b.primary, err = newSampleStreamer(sample, inlier, true, primaryCfg, primaryHint)
	if err != nil {
		return nil, fmt.Errorf("core: preparing primary streamer: %w", err)
	}

	// Outliers: a grid outlier index streams against sample-estimated
	// boundaries whenever its resolution is known up front — explicitly
	// configured, or derivable from the directory-size rule and a stream
	// length estimate. Otherwise (R-tree bulk load, unknown length) rows
	// stage in a table whose size the accepted dependencies bound.
	if opt.OutlierKind == OutlierGrid && (opt.OutlierCellsPerDim >= 1 || totalHint >= 0) {
		cells := opt.OutlierCellsPerDim
		if cells < 1 {
			estBytes := int64(outlierHint) * int64(c.dims) * 8
			cells = gridfile.DirectoryBoundedCells(c.dims, estBytes)
		}
		allDims := make([]int, c.dims)
		for i := range allDims {
			allDims[i] = i
		}
		outCfg := gridfile.Config{
			GridDims:    allDims,
			SortDim:     -1,
			CellsPerDim: cells,
			Mode:        gridfile.Quantile,
			Label:       "COAX-outliers",
		}
		b.outStream, err = newSampleStreamer(sample, inlier, false, outCfg, outlierHint)
		if err != nil {
			return nil, fmt.Errorf("core: preparing outlier streamer: %w", err)
		}
	} else {
		b.outStaging = dataset.NewTable(sample.Cols)
		if outlierHint > 0 {
			b.outStaging.Grow(outlierHint)
		}
	}
	return b, nil
}

// newSampleStreamer builds a gridfile.Streamer whose boundaries are
// quantiles of the sample rows in the wanted class (inliers for the
// primary, outliers for the outlier grid), falling back to the whole
// sample when that class sampled empty — boundary clamping keeps any later
// value routable.
func newSampleStreamer(sample *dataset.Table, inlier []bool, wantInlier bool, cfg gridfile.Config, capacityRows int) (*gridfile.Streamer, error) {
	matching := 0
	for _, in := range inlier {
		if in == wantInlier {
			matching++
		}
	}
	bounds := make([][]float64, len(cfg.GridDims))
	vals := make([]float64, 0, sample.Len())
	for bi, d := range cfg.GridDims {
		vals = vals[:0]
		for i := 0; i < sample.Len(); i++ {
			if matching == 0 || inlier[i] == wantInlier {
				vals = append(vals, sample.Row(i)[d])
			}
		}
		bd, err := gridfile.SampleBounds(vals, cfg)
		if err != nil {
			return nil, err
		}
		bounds[bi] = bd
	}
	return gridfile.NewStreamer(sample.Dims(), cfg, bounds, capacityRows)
}

// Add streams one row (copied) into the build, classifying it against the
// learned dependencies exactly as the in-memory build's split pass does.
func (b *StreamBuilder) Add(row []float64) {
	if len(row) != b.c.dims {
		panic(fmt.Sprintf("core: row has %d values, builder has %d dims", len(row), b.c.dims))
	}
	b.n++
	if b.c.rowIsInlier(row) {
		b.primary.Add(row)
		extendBounds(&b.c.primaryBounds, row)
		return
	}
	if b.outStream != nil {
		b.outStream.Add(row)
	} else {
		b.outStaging.Append(row)
	}
	extendBounds(&b.c.outlierBounds, row)
}

// Rows reports how many rows have been streamed in.
func (b *StreamBuilder) Rows() int { return b.n }

// Finish assembles the index. A builder that received no rows yields an
// empty skeleton (mirroring BuildWithFD over an empty shard table) so
// sharded builds can keep empty shards insertable; the public API rejects
// zero-row single builds before calling Finish.
func (b *StreamBuilder) Finish() (*COAX, error) {
	c := b.c
	c.n = b.n
	c.primaryN = b.primary.Rows()
	c.outlierN = c.n - c.primaryN
	if c.n > 0 {
		c.baseOutlierRatio = float64(c.outlierN) / float64(c.n)
	}

	if c.primaryN > 0 {
		p, err := b.primary.Finish()
		if err != nil {
			return nil, fmt.Errorf("core: building primary index: %w", err)
		}
		c.primary = p
	}
	b.primary = nil

	if c.outlierN > 0 {
		if b.outStream != nil {
			out, err := b.outStream.Finish()
			if err != nil {
				return nil, fmt.Errorf("core: building outlier index: %w", err)
			}
			c.outliers = out
		} else {
			out, err := buildOutlierIndex(b.outStaging, c.opt)
			if err != nil {
				return nil, fmt.Errorf("core: building outlier index: %w", err)
			}
			c.outliers = out
		}
	}
	b.outStream, b.outStaging = nil, nil
	return c, nil
}
