package core

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/softfd"
)

// nonlinearFDTable plants d = 0.002·x² + noise with an outlier fraction,
// plus an independent column.
func nonlinearFDTable(rng *rand.Rand, n int, outlierFrac float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < outlierFrac {
			d = rng.Float64() * 2000
		} else {
			d = 0.002*x*x + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, rng.Float64() * 100})
	}
	return t
}

func splineOptions() Options {
	opt := DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	opt.SoftFD.Kind = softfd.ModelSpline
	return opt
}

func TestSplineCOAXMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := nonlinearFDTable(rng, 20000, 0.1)
	oracle := scan.New(tab)
	c, err := Build(tab, splineOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if len(st.Groups) != 1 {
		t.Fatalf("spline groups = %d, want 1", len(st.Groups))
	}
	if st.Groups[0].Models[0].Spline == nil {
		t.Fatal("expected a spline model in the group")
	}
	for trial := 0; trial < 100; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
	// Dependent-only queries drive the spline inversion path.
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 2000
		hi := lo + rng.Float64()*200
		r := index.Full(3)
		r.Min[1], r.Max[1] = lo, hi
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("dependent-only [%g,%g]: %d, want %d", lo, hi, got, want)
		}
	}
}

func TestSplineBeatsLinearOnCurvedData(t *testing.T) {
	// On curved data the linear detector can only reach a high primary
	// ratio by accepting wide margins (it must swallow the systematic
	// curvature error); the spline tracks the curve, so its margins — and
	// therefore the range every translated query scans (Eq. 5) — are far
	// tighter.
	rng := rand.New(rand.NewSource(2))
	tab := nonlinearFDTable(rng, 20000, 0.05)

	linOpt := DefaultOptions()
	linOpt.SoftFD.SampleCount = 5000
	linIdx, err := Build(tab, linOpt)
	if err != nil {
		t.Fatal(err)
	}
	spIdx, err := Build(tab, splineOptions())
	if err != nil {
		t.Fatal(err)
	}
	spSt := spIdx.BuildStats()
	if len(spSt.Groups) == 0 {
		t.Fatal("spline detector missed the curved dependency entirely")
	}
	spM := spSt.Groups[0].Models[0]
	if spM.Spline == nil {
		t.Fatal("expected a spline model")
	}
	linSt := linIdx.BuildStats()
	if len(linSt.Groups) > 0 {
		linM := linSt.Groups[0].Models[0]
		linWidth := linM.EpsLB + linM.EpsUB
		spWidth := spM.EpsLB + spM.EpsUB
		if spWidth > linWidth/2 {
			t.Errorf("spline margin width %g not clearly tighter than linear %g",
				spWidth, linWidth)
		}
	}
	// The spline's primary ratio must still be competitive.
	if spSt.PrimaryRatio < 0.85 {
		t.Errorf("spline primary ratio = %g", spSt.PrimaryRatio)
	}
}

func TestSplineInsertRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := nonlinearFDTable(rng, 15000, 0.05)
	c, err := Build(tab, splineOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) != 1 {
		t.Skip("spline FD not detected")
	}
	pm := c.BuildStats().Groups[0].Models[0]
	x := 400.0
	inlier := []float64{x, pm.Predict(x), 1}
	outlier := []float64{x, pm.Predict(x) + (pm.EpsUB+1)*50, 2}
	before := c.BuildStats()
	if err := c.Insert(inlier); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(outlier); err != nil {
		t.Fatal(err)
	}
	after := c.BuildStats()
	if after.PrimaryRows != before.PrimaryRows+1 || after.OutlierRows != before.OutlierRows+1 {
		t.Errorf("insert routing off: %+v -> %+v", before, after)
	}
}
