package core

import (
	"math"

	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/obs"
)

// Query execution v2: the stop-aware, instrumented entry points behind the
// public query builder. Exec is the real engine; Scan adapts it to
// index.Interface, and the legacy Query/QueryPrimary/QueryOutliers methods
// in coax.go are run-to-completion shims over the same code, so every
// caller exercises one scan path.

// Translation records one application of the paper's Eq. 2 during query
// planning: the constraint on a dependent column mapped through its learned
// model ψ̂ and margins into an interval on the predictor column.
type Translation struct {
	// Dependent and Predictor are the column ordinals of the soft FD.
	Dependent int
	Predictor int
	// DepMin/DepMax is the query's original constraint on the dependent.
	DepMin, DepMax float64
	// PredMin/PredMax is the derived predictor interval — the x-range that
	// can map into the dependent band under ψ̂ ± ε (before intersection
	// with any native predictor constraint).
	PredMin, PredMax float64
	// Feasible is false when the inversion proved no inlier can satisfy
	// the dependent constraint.
	Feasible bool
}

// ProbeReport is the execution report of one COAX probe — the per-index
// half of an EXPLAIN.
type ProbeReport struct {
	// Translations holds one entry per dependent column the query
	// constrains, in column order.
	Translations []Translation
	// PrimaryFeasible is false when translation proved no inlier can match
	// (the primary probe was skipped entirely).
	PrimaryFeasible bool
	// PrimaryProbed/OutlierProbed report whether the query rectangle
	// overlapped each partition's bounding box; a false value means that
	// partition's probe was pruned without touching a page.
	PrimaryProbed bool
	OutlierProbed bool
	// Primary and Outlier hold the page/row counters of each partition's
	// scan.
	Primary index.Probe
	Outlier index.Probe
	// PrimaryKernel and OutlierKernel name the scan kernel an aggregation
	// execution dispatched per partition ("grid-batch", "rtree-batch",
	// "row-fallback", ...); empty when the partition was pruned or the
	// query ran the plain row path.
	PrimaryKernel string
	OutlierKernel string
}

// Add accumulates o's counters and probe flags into p; translations are
// kept from the receiver (they are rectangle-level and identical for every
// index sharing the same learned models, as the shards of one table do).
func (p *ProbeReport) Add(o *ProbeReport) {
	if len(p.Translations) == 0 {
		p.Translations = o.Translations
		p.PrimaryFeasible = o.PrimaryFeasible
	}
	p.PrimaryProbed = p.PrimaryProbed || o.PrimaryProbed
	p.OutlierProbed = p.OutlierProbed || o.OutlierProbed
	p.Primary.Add(o.Primary)
	p.Outlier.Add(o.Outlier)
	if p.PrimaryKernel == "" {
		p.PrimaryKernel = o.PrimaryKernel
	}
	if p.OutlierKernel == "" {
		p.OutlierKernel = o.OutlierKernel
	}
}

// ObserveProbe folds one finished probe's report into the package-level
// scan metrics. It lives here — not in obs — because obs must stay
// import-free of the engine packages; every layer that owns a complete
// query (shard fan-out, legacy batch path, the public single-index path)
// calls it once per underlying ProbeReport. Callers gate on obs.On().
func ObserveProbe(rep *ProbeReport) {
	if rep == nil {
		return
	}
	obs.ScanPagesPrimary.Add(rep.Primary.Pages)
	obs.ScanPagesOutlier.Add(rep.Outlier.Pages)
	obs.ScanRowsPrimary.Add(rep.Primary.Scanned)
	obs.ScanRowsOutlier.Add(rep.Outlier.Scanned)
	obs.ScanTombstones.Add(rep.Primary.Tombstones + rep.Outlier.Tombstones)
	obs.ScanBatches.Add(rep.Primary.Batches + rep.Outlier.Batches)
	obs.Translations.Add(int64(len(rep.Translations)))
	for _, tr := range rep.Translations {
		if !tr.Feasible {
			obs.TranslationsInfeas.Inc()
		}
	}
}

// Scan implements index.Interface over Exec.
func (c *COAX) Scan(r index.Rect, yield index.Yield, probe *index.Probe) bool {
	var rep *ProbeReport
	if probe != nil {
		rep = &ProbeReport{}
	}
	complete := c.Exec(r, index.Spec{}, yield, rep)
	if probe != nil {
		probe.Add(rep.Primary)
		probe.Add(rep.Outlier)
	}
	return complete
}

// Exec answers r under the v2 contract: yield's return value stops the
// scan, spec.Ctx cancels it at row granularity, spec.Stable makes every
// delivered row a private copy, and a non-nil rep is filled with the
// execution report (translations applied, partitions probed or pruned,
// pages/rows scanned, tombstones filtered). It reports whether the scan ran
// to completion.
func (c *COAX) Exec(r index.Rect, spec index.Spec, yield index.Yield, rep *ProbeReport) bool {
	if spec.Stable {
		inner := yield
		yield = func(row []float64) bool {
			cp := make([]float64, len(row))
			copy(cp, row)
			return inner(cp)
		}
	}
	// Cancellation reaches the scan through the probes' per-page abort
	// hook — a yield-side check alone would never fire on a scan whose
	// pages match nothing.
	abort := spec.Abort
	if spec.Ctx != nil {
		ctx, prev := spec.Ctx, abort
		abort = func() bool {
			return (prev != nil && prev()) || ctx.Err() != nil
		}
	}
	if !c.scanPrimary(r, yield, rep, abort) {
		return false
	}
	if abort != nil && abort() {
		return false
	}
	return c.scanOutliers(r, yield, rep, abort)
}

// partitionProbe returns the probe to hand a partition's scan: the
// report's counter block when a report is wanted, a throwaway otherwise —
// a probe must exist whenever an abort hook needs carrying.
func partitionProbe(slot *index.Probe, wantReport bool, abort func() bool) *index.Probe {
	if wantReport {
		slot.Abort = abort
		return slot
	}
	if abort != nil {
		return &index.Probe{Abort: abort}
	}
	return nil
}

// scanPrimary probes the primary grid with the translated rectangle,
// re-checking every candidate against the original constraints.
func (c *COAX) scanPrimary(r index.Rect, yield index.Yield, rep *ProbeReport, abort func() bool) bool {
	pruned := c.primary == nil || r.Empty() || !r.Overlaps(c.primaryBounds)
	if pruned && rep == nil {
		return true // skip the translation work the probe would not use
	}
	// Translation is rectangle-level planning: with a report requested it
	// runs even for a pruned probe, so an EXPLAIN always shows the derived
	// predictor intervals.
	routed, feasible := c.translate(r, rep)
	if pruned || !feasible {
		return true
	}
	if rep != nil {
		rep.PrimaryProbed = true
	}
	probe := partitionProbe(repPrimary(rep), rep != nil, abort)
	return c.primary.Scan(routed, func(row []float64) bool {
		if !r.Contains(row) {
			// Candidate matched the routed rectangle only; it is not a
			// result, so it must not count as one.
			if probe != nil {
				probe.Matched--
			}
			return true
		}
		return yield(row)
	}, probe)
}

// scanOutliers probes the outlier index with the original rectangle.
func (c *COAX) scanOutliers(r index.Rect, yield index.Yield, rep *ProbeReport, abort func() bool) bool {
	if c.outliers == nil || r.Empty() || !r.Overlaps(c.outlierBounds) {
		return true
	}
	if rep != nil {
		rep.OutlierProbed = true
	}
	probe := partitionProbe(repOutlier(rep), rep != nil, abort)
	return c.outliers.Scan(r, yield, probe)
}

func repPrimary(rep *ProbeReport) *index.Probe {
	if rep == nil {
		return nil
	}
	return &rep.Primary
}

func repOutlier(rep *ProbeReport) *index.Probe {
	if rep == nil {
		return nil
	}
	return &rep.Outlier
}

// translate implements Translate, optionally recording one Translation per
// constrained dependent column into rep. With rep == nil it returns on the
// first infeasible constraint exactly as the legacy path did; with a report
// it keeps going so the EXPLAIN shows every derived interval.
func (c *COAX) translate(r index.Rect, rep *ProbeReport) (routed index.Rect, feasible bool) {
	routed = r.Clone()
	feasible = true
	for d, pm := range c.depends {
		if pm == nil {
			continue
		}
		ql, qh := r.Min[d], r.Max[d]
		if math.IsInf(ql, -1) && math.IsInf(qh, 1) {
			continue // unconstrained dependent: nothing to translate
		}
		// Inliers satisfy ψ̂(x) − εLB ≤ d ≤ ψ̂(x) + εUB, so a match requires
		// ψ̂(x) ∈ [ql − εUB, qh + εLB]. InvertBand solves that for x under
		// either a linear or a spline model.
		xLo, xHi, ok := pm.InvertBand(ql-pm.EpsUB, qh+pm.EpsLB)
		if rep != nil {
			rep.Translations = append(rep.Translations, Translation{
				Dependent: d,
				Predictor: pm.X,
				DepMin:    ql,
				DepMax:    qh,
				PredMin:   xLo,
				PredMax:   xHi,
				Feasible:  ok,
			})
		}
		if !ok {
			feasible = false
			if rep == nil {
				return routed, false
			}
			continue
		}
		if xLo > routed.Min[pm.X] {
			routed.Min[pm.X] = xLo
		}
		if xHi < routed.Max[pm.X] {
			routed.Max[pm.X] = xHi
		}
		// Dependent constraints do not route the grid probe.
		routed.Min[d] = math.Inf(-1)
		routed.Max[d] = math.Inf(1)
		if routed.Min[pm.X] > routed.Max[pm.X] {
			feasible = false
			if rep == nil {
				return routed, false
			}
		}
	}
	if rep != nil {
		rep.PrimaryFeasible = feasible
	}
	return routed, feasible
}
