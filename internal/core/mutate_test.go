package core

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/softfd"
)

// fdResultWithBand hand-crafts a one-group detection result: column x
// predicts column d as d = slope·x + icept within ±eps.
func fdResultWithBand(x, d int, slope, icept, eps float64) softfd.Result {
	return softfd.Result{Groups: []softfd.Group{{
		Predictor: x,
		Members:   []int{x, d},
		Models: []softfd.PairModel{{
			X: x, D: d,
			Model: model.Linear{Slope: slope, Intercept: icept},
			EpsLB: eps, EpsUB: eps,
		}},
	}}}
}

func TestInsertRoutesInliersAndOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := fdTable(rng, 20000, 0.05)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) != 1 {
		t.Skip("FD not detected")
	}
	pm := c.BuildStats().Groups[0].Models[0]
	before := c.BuildStats()

	// An inlier row: exactly on the model line.
	x := 500.0
	inlier := make([]float64, 4)
	inlier[pm.X] = x
	inlier[pm.D] = pm.Model.Predict(x)
	inlier[2], inlier[3] = 1, 2
	if err := c.Insert(inlier); err != nil {
		t.Fatal(err)
	}

	// An outlier row: far off the line.
	outlier := make([]float64, 4)
	outlier[pm.X] = x
	outlier[pm.D] = pm.Model.Predict(x) + pm.EpsUB*100
	if err := c.Insert(outlier); err != nil {
		t.Fatal(err)
	}

	after := c.BuildStats()
	if after.PrimaryRows != before.PrimaryRows+1 {
		t.Errorf("primary rows %d, want %d", after.PrimaryRows, before.PrimaryRows+1)
	}
	if after.OutlierRows != before.OutlierRows+1 {
		t.Errorf("outlier rows %d, want %d", after.OutlierRows, before.OutlierRows+1)
	}
	if c.Len() != tab.Len()+2 {
		t.Errorf("Len = %d, want %d", c.Len(), tab.Len()+2)
	}

	// Both rows must be findable.
	if index.Count(c, index.Point(inlier)) < 1 {
		t.Error("inserted inlier not found")
	}
	if index.Count(c, index.Point(outlier)) < 1 {
		t.Error("inserted outlier not found")
	}
}

func TestInsertThenQueryMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := fdTable(rng, 10000, 0.1)
	c, err := Build(base, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	all := dataset.NewTable(base.Cols)
	for i := 0; i < base.Len(); i++ {
		all.Append(base.Row(i))
	}
	// Insert a mix drawn from the same distribution.
	extra := fdTable(rng, 2000, 0.1)
	for i := 0; i < extra.Len(); i++ {
		if err := c.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
		all.Append(extra.Row(i))
	}
	oracle := scan.New(all)
	for trial := 0; trial < 50; trial++ {
		r := randQuery(rng, all)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
	// Compact and re-verify.
	c.Compact()
	for trial := 0; trial < 50; trial++ {
		r := randQuery(rng, all)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("post-compact trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestInsertWrongArity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c, err := Build(fdTable(rng, 1000, 0.1), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert([]float64{1, 2}); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestInsertLazyOutlierCreation(t *testing.T) {
	// Build over FD-perfect data (no outliers), then insert an outlier:
	// the outlier index must be created on demand.
	tab := dataset.NewTable([]string{"x", "d"})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		x := rng.Float64() * 100
		tab.Append([]float64{x, 5 * x})
	}
	opt := testOptions()
	c, err := Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if len(st.Groups) != 1 {
		t.Skip("FD not detected")
	}
	if st.OutlierRows != 0 {
		t.Skipf("expected clean split, got %d outliers", st.OutlierRows)
	}
	bad := []float64{50, -12345}
	if err := c.Insert(bad); err != nil {
		t.Fatal(err)
	}
	if index.Count(c, index.Point(bad)) != 1 {
		t.Error("outlier inserted into lazily created index not found")
	}
	// Same path with an R-tree outlier index.
	optRT := testOptions()
	optRT.OutlierKind = OutlierRTree
	c2, err := Build(tab, optRT)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Insert(bad); err != nil {
		t.Fatal(err)
	}
	if index.Count(c2, index.Point(bad)) != 1 {
		t.Error("outlier not found in lazily created R-tree")
	}
}

func TestInsertLazyPrimaryCreation(t *testing.T) {
	// An all-outlier build (hand-crafted FD excludes every row) followed by
	// an inlier insert must create the primary index on demand.
	tab := dataset.NewTable([]string{"x", "d"})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		tab.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	fd := fdResultWithBand(0, 1, 1, 10000, 0.001)
	c, err := BuildWithFD(tab, fd, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if c.BuildStats().PrimaryRows != 0 {
		t.Skip("expected all-outlier build")
	}
	inlier := []float64{5, 10005} // on the shifted band
	if err := c.Insert(inlier); err != nil {
		t.Fatal(err)
	}
	if index.Count(c, index.Point(inlier)) != 1 {
		t.Error("inlier not found in lazily created primary")
	}
}

func TestBoundsPruning(t *testing.T) {
	// A query entirely outside the outlier bounding box must still return
	// exact results (pruning is an optimisation, not a semantics change),
	// and inserts beyond the old bounds must widen the box.
	rng := rand.New(rand.NewSource(6))
	tab := fdTable(rng, 10000, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	oracle := scan.New(tab)
	// Query far outside all data: both partitions pruned, empty result.
	far := index.NewRect(
		[]float64{1e9, 1e9, 1e9, 1e9},
		[]float64{2e9, 2e9, 2e9, 2e9})
	if got := index.Count(c, far); got != 0 {
		t.Errorf("far query returned %d rows", got)
	}
	// Random queries stay exact with pruning active.
	for trial := 0; trial < 30; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
	// Insert an outlier far outside the original box; it must be found.
	out := []float64{1.5e9, 1.5e9, 1.5e9, 1.5e9}
	if err := c.Insert(out); err != nil {
		t.Fatal(err)
	}
	if index.Count(c, far) != 1 {
		t.Error("insert outside old bounds not found (bounds not extended)")
	}
}
