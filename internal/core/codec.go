package core

import (
	"fmt"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/softfd"
)

// Snapshot codec. A COAX index persists as independent sections — meta
// scalars, the soft-FD result, the primary grid, the outlier index — so the
// container format (internal/snapshot) can frame, length-prefix, and
// checksum each layer separately. Decoding proceeds in the same order:
// DecodeMeta produces a skeleton, the Attach methods hang the decoded
// layers onto it, and FinishDecode re-verifies the cross-layer invariants
// that Build guarantees by construction.

// EncodeMeta appends the index's scalar state and partition bounds to w.
func (c *COAX) EncodeMeta(w *binio.Writer) {
	w.Int(c.dims)
	w.Int(c.n)
	w.Int(c.sortDim)
	w.Int(c.primaryN)
	w.Int(c.outlierN)
	w.Int(c.primaryCells)
	w.Int(int(c.outlierKind))
	w.Int(c.outlierRTreeCap)
	w.Bool(c.primary != nil)
	w.Bool(c.outliers != nil)
	w.Float64s(c.primaryBounds.Min)
	w.Float64s(c.primaryBounds.Max)
	w.Float64s(c.outlierBounds.Min)
	w.Float64s(c.outlierBounds.Max)
}

// HasColumnNames reports whether the build table carried any non-empty
// column name; the snapshot encoder omits the names section otherwise.
func (c *COAX) HasColumnNames() bool {
	for _, name := range c.cols {
		if name != "" {
			return true
		}
	}
	return false
}

// EncodeColumns appends the column names to w.
func (c *COAX) EncodeColumns(w *binio.Writer) {
	w.Int(len(c.cols))
	for _, name := range c.cols {
		w.String(name)
	}
}

// DecodeAttachColumns reads a column-names section written by EncodeColumns
// and installs it; the name count must match the index dimensionality.
func (c *COAX) DecodeAttachColumns(r *binio.Reader) error {
	n := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if n != c.dims {
		return fmt.Errorf("core: snapshot names %d columns, index has %d dims", n, c.dims)
	}
	cols := make([]string, n)
	for i := range cols {
		cols[i] = r.String()
	}
	if err := r.Err(); err != nil {
		return err
	}
	c.cols = cols
	return nil
}

// HasPrimary reports whether the index carries a primary grid (false only
// when every row was an outlier).
func (c *COAX) HasPrimary() bool { return c.primary != nil }

// HasOutliers reports whether the index carries an outlier index (false
// only when every row was an inlier).
func (c *COAX) HasOutliers() bool { return c.outliers != nil }

// EncodeFD appends the detection result to w.
func (c *COAX) EncodeFD(w *binio.Writer) { softfd.EncodeResult(w, c.fd) }

// EncodePrimary appends the primary grid file to w; the primary must exist.
func (c *COAX) EncodePrimary(w *binio.Writer) { c.primary.Encode(w) }

// EncodeOutliers appends the outlier index to w; it must exist. The
// concrete codec follows the outlier kind recorded in the meta section.
func (c *COAX) EncodeOutliers(w *binio.Writer) error {
	switch o := c.outliers.(type) {
	case *gridfile.GridFile:
		o.Encode(w)
		return nil
	case *rtree.RTree:
		o.Encode(w)
		return nil
	default:
		return fmt.Errorf("core: outlier index %T has no snapshot codec", c.outliers)
	}
}

// DecodeMeta reads a meta section written by EncodeMeta and returns a
// skeleton index awaiting its FD and index layers.
func DecodeMeta(r *binio.Reader) (*COAX, error) {
	c := &COAX{
		dims:            r.Int(),
		n:               r.Int(),
		sortDim:         r.Int(),
		primaryN:        r.Int(),
		outlierN:        r.Int(),
		primaryCells:    r.Int(),
		outlierKind:     OutlierIndexKind(r.Int()),
		outlierRTreeCap: r.Int(),
	}
	wantPrimary := r.Bool()
	wantOutliers := r.Bool()
	c.primaryBounds = index.Rect{Min: r.Float64s(), Max: r.Float64s()}
	c.outlierBounds = index.Rect{Min: r.Float64s(), Max: r.Float64s()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if c.dims < 1 {
		return nil, fmt.Errorf("core: dims %d < 1", c.dims)
	}
	if c.primaryN < 0 || c.outlierN < 0 || c.primaryN+c.outlierN != c.n {
		return nil, fmt.Errorf("core: partition counts %d+%d do not sum to %d rows", c.primaryN, c.outlierN, c.n)
	}
	if c.sortDim < -1 || c.sortDim >= c.dims {
		return nil, fmt.Errorf("core: sort dimension %d out of range", c.sortDim)
	}
	if c.outlierKind != OutlierGrid && c.outlierKind != OutlierRTree {
		return nil, fmt.Errorf("core: unknown outlier index kind %d", c.outlierKind)
	}
	if c.primaryCells < 1 || c.outlierRTreeCap < 2 {
		return nil, fmt.Errorf("core: invalid build parameters (cells=%d, rtree cap=%d)", c.primaryCells, c.outlierRTreeCap)
	}
	// A structure may outlive its last live row (deletes tombstone rather
	// than drop pages), so presence may exceed the live counts — but live
	// rows without a structure to hold them are corrupt.
	if (!wantPrimary && c.primaryN > 0) || (!wantOutliers && c.outlierN > 0) {
		return nil, fmt.Errorf("core: presence flags disagree with partition counts")
	}
	for _, b := range [][]float64{c.primaryBounds.Min, c.primaryBounds.Max, c.outlierBounds.Min, c.outlierBounds.Max} {
		if len(b) != c.dims {
			return nil, fmt.Errorf("core: partition bounds have %d dims, want %d", len(b), c.dims)
		}
	}
	return c, nil
}

// DecodeAttachFD reads an FD section and installs it, rebuilding the
// per-column dependency lookup exactly as BuildWithFD does.
func (c *COAX) DecodeAttachFD(r *binio.Reader) error {
	fd, err := softfd.DecodeResult(r, c.dims)
	if err != nil {
		return err
	}
	c.fd = fd
	c.depends = make([]*softfd.PairModel, c.dims)
	for gi := range c.fd.Groups {
		g := &c.fd.Groups[gi]
		for mi := range g.Models {
			m := &g.Models[mi]
			if c.depends[m.D] != nil {
				return fmt.Errorf("core: column %d is dependent in two groups", m.D)
			}
			c.depends[m.D] = m
		}
	}
	if c.sortDim >= 0 && c.depends[c.sortDim] != nil {
		return fmt.Errorf("core: sort dimension %d is a dependent column", c.sortDim)
	}
	return nil
}

// DecodeAttachPrimary reads a primary-grid section and installs it. The
// exact live-row count is checked in FinishDecode, after any lifecycle
// section has installed its tombstones; here only the stored count is
// bounded (stored rows can exceed the live count, never undercut it).
func (c *COAX) DecodeAttachPrimary(r *binio.Reader) error {
	g, err := gridfile.Decode(r)
	if err != nil {
		return err
	}
	return c.AttachPrimary(g)
}

// AttachPrimary installs an already-assembled primary grid (decoded from a
// binio payload or rebuilt around memory-mapped pages), applying the same
// bounds checks as DecodeAttachPrimary.
func (c *COAX) AttachPrimary(g *gridfile.GridFile) error {
	if g.Dims() != c.dims {
		return fmt.Errorf("core: primary grid has %d dims, index has %d", g.Dims(), c.dims)
	}
	if g.StoredRows() < c.primaryN {
		return fmt.Errorf("core: primary grid stores %d rows, meta says %d live", g.StoredRows(), c.primaryN)
	}
	c.primary = g
	return nil
}

// DecodeAttachOutliers reads an outlier-index section and installs it,
// dispatching on the kind recorded in the meta section. As with the
// primary, the exact live-row check waits for FinishDecode.
func (c *COAX) DecodeAttachOutliers(r *binio.Reader) error {
	var (
		idx index.Interface
		err error
	)
	switch c.outlierKind {
	case OutlierRTree:
		idx, err = rtree.Decode(r)
	default:
		idx, err = gridfile.Decode(r)
	}
	if err != nil {
		return err
	}
	return c.AttachOutliers(idx)
}

// AttachOutliers installs an already-assembled outlier index, applying the
// same bounds checks as DecodeAttachOutliers.
func (c *COAX) AttachOutliers(idx index.Interface) error {
	if idx.Dims() != c.dims {
		return fmt.Errorf("core: outlier index has %d dims, index has %d", idx.Dims(), c.dims)
	}
	if idx.Len() < c.outlierN {
		return fmt.Errorf("core: outlier index holds %d rows, meta says %d live", idx.Len(), c.outlierN)
	}
	c.outliers = idx
	return nil
}

// EncodeLifecycle appends the lifecycle section: the rebuild epoch, the
// staleness baseline, the mutation/drift tracker, and the tombstone slots
// of the primary and (grid-file) outlier indexes, so a loaded snapshot
// resumes mid-lifecycle instead of forgetting its drift history. An
// in-flight epoch rebuild is deliberately not persisted: the serving epoch
// already holds every mutation its delta log records, so after a load the
// compactor simply re-detects staleness and restarts the rebuild.
func (c *COAX) EncodeLifecycle(w *binio.Writer) {
	c.EncodeLifecycleScalars(w)
	var primaryDead, outlierDead []int64
	if c.primary != nil {
		primaryDead = c.primary.DeadSlots()
	}
	if g, ok := c.outliers.(*gridfile.GridFile); ok {
		outlierDead = g.DeadSlots()
	}
	w.Int64s(primaryDead)
	w.Int64s(outlierDead)
}

// DecodeAttachLifecycle reads a lifecycle section written by
// EncodeLifecycle and installs it; it must run after the primary and
// outlier sections are attached so the tombstone slots have pages to land
// in.
func (c *COAX) DecodeAttachLifecycle(r *binio.Reader) error {
	if err := c.DecodeAttachLifecycleScalars(r); err != nil {
		return err
	}
	primaryDead := r.Int64s()
	outlierDead := r.Int64s()
	if err := r.Err(); err != nil {
		return err
	}
	if len(primaryDead) > 0 {
		if c.primary == nil {
			return fmt.Errorf("core: lifecycle section tombstones a missing primary grid")
		}
		if err := c.primary.SetDeadSlots(primaryDead); err != nil {
			return err
		}
	}
	if len(outlierDead) > 0 {
		g, ok := c.outliers.(*gridfile.GridFile)
		if !ok {
			return fmt.Errorf("core: lifecycle section tombstones outliers of kind %d", c.outlierKind)
		}
		if err := g.SetDeadSlots(outlierDead); err != nil {
			return err
		}
	}
	return nil
}

// EncodeLifecycleScalars appends only the scalar lifecycle state — epoch,
// staleness baseline, mutation/drift tracker — without the tombstone slot
// lists. Snapshot v3 uses it: tombstones live as bitmaps inside the page
// sections there, not in the lifecycle section.
func (c *COAX) EncodeLifecycleScalars(w *binio.Writer) {
	w.Uint64(c.epoch)
	w.Float64(c.baseOutlierRatio)
	c.tracker.Encode(w)
}

// DecodeAttachLifecycleScalars reads the scalar lifecycle state written by
// EncodeLifecycleScalars and installs it.
func (c *COAX) DecodeAttachLifecycleScalars(r *binio.Reader) error {
	c.epoch = r.Uint64()
	c.baseOutlierRatio = r.Float64()
	if err := r.Err(); err != nil {
		return err
	}
	if c.baseOutlierRatio < 0 || c.baseOutlierRatio > 1 {
		return fmt.Errorf("core: base outlier ratio %v out of range [0,1]", c.baseOutlierRatio)
	}
	tr, err := lifecycle.DecodeTracker(r, c.dims)
	if err != nil {
		return err
	}
	c.tracker = tr
	return nil
}

// FinishDecode verifies the assembled index is complete and internally
// consistent; it must be called after the attach steps (including the
// lifecycle section, whose tombstones the live-row checks account for).
func (c *COAX) FinishDecode() error {
	if c.depends == nil {
		return fmt.Errorf("core: snapshot is missing its FD section")
	}
	if c.primary == nil && c.primaryN > 0 {
		return fmt.Errorf("core: meta declares %d primary rows but no primary section", c.primaryN)
	}
	if c.outliers == nil && c.outlierN > 0 {
		return fmt.Errorf("core: meta declares %d outlier rows but no outlier section", c.outlierN)
	}
	if c.primary != nil && c.primary.Len() != c.primaryN {
		return fmt.Errorf("core: primary grid holds %d live rows, meta says %d", c.primary.Len(), c.primaryN)
	}
	if c.outliers != nil && c.outliers.Len() != c.outlierN {
		return fmt.Errorf("core: outlier index holds %d live rows, meta says %d", c.outliers.Len(), c.outlierN)
	}
	// Pre-lifecycle snapshots carry no tracker; start a fresh lifecycle at
	// the loaded state (the current outlier ratio becomes the baseline).
	if c.tracker == nil {
		c.initTracker()
		if c.n > 0 {
			c.baseOutlierRatio = float64(c.outlierN) / float64(c.n)
		}
	}
	// Rebuild needs the full options; the snapshot records the structural
	// parameters, so reconstruct those and fall back to the default
	// detector configuration (SortDim re-picks automatically on rebuild).
	c.opt = Options{
		SoftFD:               softfd.DefaultConfig(),
		PrimaryCellsPerDim:   c.primaryCells,
		OutlierKind:          c.outlierKind,
		OutlierRTreeCapacity: c.outlierRTreeCap,
		SortDim:              -1,
	}
	if c.primary != nil {
		wantDims := c.primaryGridDims()
		gotDims := c.primary.GridDims()
		if len(gotDims) != len(wantDims) {
			return fmt.Errorf("core: primary grid indexes %d dims, FD layout implies %d", len(gotDims), len(wantDims))
		}
		for i := range wantDims {
			if gotDims[i] != wantDims[i] {
				return fmt.Errorf("core: primary grid dimension %d is column %d, FD layout implies %d", i, gotDims[i], wantDims[i])
			}
		}
		if sd := c.primary.SortDim(); sd != c.sortDim {
			return fmt.Errorf("core: primary grid sorts on %d, meta says %d", sd, c.sortDim)
		}
	}
	return nil
}
