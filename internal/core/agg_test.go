package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

// copyTable deep-copies a table so per-kind mutations stay independent.
func copyTable(t *dataset.Table) *dataset.Table {
	cp := dataset.NewTable(t.Cols)
	for i := 0; i < t.Len(); i++ {
		cp.Append(t.Row(i))
	}
	return cp
}

// foldRowPath runs the row-at-a-time execution and folds the same
// aggregate in the visitor — the oracle the pushdown must reproduce.
func foldRowPath(c *COAX, r index.Rect, spec index.AggSpec) (*index.AggState, *ProbeReport) {
	st := index.NewAggState(spec)
	rep := &ProbeReport{}
	c.Exec(r, index.Spec{}, func(row []float64) bool {
		st.FoldRow(row)
		return true
	}, rep)
	return st, rep
}

// TestExecAggMatchesExec is the probe-parity regression test: on both
// outlier-index kinds, across fresh/tombstoned/compacted states, ExecAgg
// must produce bit-identical aggregates AND a ProbeReport identical to the
// row path's — same pages, rows scanned, tombstones skipped, rows matched —
// with Batches and the kernel names as the only batch-path additions.
func TestExecAggMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := fdTable(rng, 20000, 0.12)

	kinds := map[string]OutlierIndexKind{
		"grid-outliers":  OutlierGrid,
		"rtree-outliers": OutlierRTree,
	}
	for kname, kind := range kinds {
		t.Run(kname, func(t *testing.T) {
			opt := testOptions()
			opt.OutlierKind = kind
			c, err := Build(copyTable(tab), opt)
			if err != nil {
				t.Fatal(err)
			}
			states := []struct {
				name string
				prep func()
			}{
				{"fresh", func() {}},
				{"tombstoned", func() {
					for i := 0; i < 2000; i += 2 {
						if err := c.Delete(tab.Row(i)); err != nil {
							t.Fatal(err)
						}
					}
				}},
				{"compacted", func() { c.Compact() }},
			}
			specs := []index.AggSpec{
				{Op: index.AggCount, Col: -1, Group: -1},
				{Op: index.AggSum, Col: 3, Group: -1},
				{Op: index.AggMin, Col: 1, Group: -1},
				{Op: index.AggMax, Col: 0, Group: -1},
				{Op: index.AggAvg, Col: 3, Group: -1},
			}
			for _, state := range states {
				state.prep()
				for qi := 0; qi < 30; qi++ {
					r := randQuery(rng, tab)
					for _, spec := range specs {
						want, wantRep := foldRowPath(c, r, spec)
						got := index.NewAggState(spec)
						gotRep := &ProbeReport{}
						if !c.ExecAgg(r, index.Spec{}, got, gotRep) {
							t.Fatalf("%s: unaborted ExecAgg incomplete", state.name)
						}
						sameAggState(t, state.name, spec, got, want)
						sameReport(t, state.name, gotRep, wantRep)
					}
				}
			}
		})
	}
}

// sameAggState requires bit-identical fold results: the batch path visits
// rows in exactly the row path's order, so even SUM must match to the bit.
func sameAggState(t *testing.T, label string, spec index.AggSpec, got, want *index.AggState) {
	t.Helper()
	eq := func(a, b index.AggCell) bool {
		return a.Count == b.Count &&
			math.Float64bits(a.Sum) == math.Float64bits(b.Sum) &&
			(a.Count == 0 || (math.Float64bits(a.Min) == math.Float64bits(b.Min) &&
				math.Float64bits(a.Max) == math.Float64bits(b.Max)))
	}
	if !eq(got.All, want.All) {
		t.Fatalf("%s op %v: batch fold %+v vs row fold %+v", label, spec.Op, got.All, want.All)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("%s: %d groups batched vs %d row-folded", label, len(got.Groups), len(want.Groups))
	}
	for k, w := range want.Groups {
		g := got.Groups[k]
		if g == nil || !eq(*g, *w) {
			t.Fatalf("%s group %g: batch fold %+v vs row fold %+v", label, k, g, w)
		}
	}
}

// sameReport compares the two execution reports field by field. Batches
// and the kernel names exist only on the batch path; everything else —
// translations, pruning flags, and every per-partition counter — must be
// identical.
func sameReport(t *testing.T, label string, got, want *ProbeReport) {
	t.Helper()
	g, w := *got, *want
	g.Primary.Batches, g.Outlier.Batches = 0, 0
	w.Primary.Batches, w.Outlier.Batches = 0, 0
	g.PrimaryKernel, g.OutlierKernel = "", ""
	w.PrimaryKernel, w.OutlierKernel = "", ""
	if !reflect.DeepEqual(g.Translations, w.Translations) ||
		g.PrimaryFeasible != w.PrimaryFeasible ||
		g.PrimaryProbed != w.PrimaryProbed || g.OutlierProbed != w.OutlierProbed {
		t.Fatalf("%s: plan diverged: batch %+v vs row %+v", label, g, w)
	}
	sameCounters := func(a, b index.Probe) bool {
		return a.Pages == b.Pages && a.Scanned == b.Scanned &&
			a.Matched == b.Matched && a.Tombstones == b.Tombstones
	}
	if !sameCounters(g.Primary, w.Primary) || !sameCounters(g.Outlier, w.Outlier) {
		t.Fatalf("%s: counters diverged:\nbatch primary %+v outlier %+v\nrow   primary %+v outlier %+v",
			label, g.Primary, g.Outlier, w.Primary, w.Outlier)
	}
	if got.PrimaryProbed && got.PrimaryKernel == "" {
		t.Fatalf("%s: probed primary reported no kernel", label)
	}
}

// TestExecAggGrouped exercises the grouped fold against a visitor-built
// oracle map on a categorical synthetic column.
func TestExecAggGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := fdTable(rng, 15000, 0.1)
	// Make column 2 categorical so groups are meaningful.
	for i := 0; i < tab.Len(); i++ {
		tab.Row(i)[2] = math.Floor(tab.Row(i)[2] / 10)
	}
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	spec := index.AggSpec{Op: index.AggSum, Col: 3, Group: 2}
	for qi := 0; qi < 20; qi++ {
		r := randQuery(rng, tab)
		want, _ := foldRowPath(c, r, spec)
		got := index.NewAggState(spec)
		if !c.ExecAgg(r, index.Spec{}, got, nil) {
			t.Fatal("unaborted ExecAgg incomplete")
		}
		sameAggState(t, "grouped", spec, got, want)
	}
}

// TestExecAggCancellation verifies a cancelled context stops the fold and
// reports incompleteness, mirroring Exec.
func TestExecAggCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := fdTable(rng, 20000, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st := index.NewAggState(index.AggSpec{Op: index.AggCount, Col: -1, Group: -1})
	if c.ExecAgg(index.Full(4), index.Spec{Ctx: ctx}, st, nil) {
		t.Fatal("cancelled ExecAgg reported complete")
	}
	full := index.NewAggState(index.AggSpec{Op: index.AggCount, Col: -1, Group: -1})
	if !c.ExecAgg(index.Full(4), index.Spec{}, full, nil) {
		t.Fatal("live ExecAgg incomplete")
	}
	if st.All.Count >= full.All.Count {
		t.Fatalf("cancelled fold counted %d of %d rows", st.All.Count, full.All.Count)
	}
}
