package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/model"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/softfd"
	"github.com/coax-index/coax/internal/workload"
)

// fdTable builds a 4-column table with one planted FD (col1 ≈ 2·col0 + 50),
// an outlier fraction, and two independent columns.
func fdTable(rng *rand.Rand, n int, outlierFrac float64) *dataset.Table {
	t := dataset.NewTable([]string{"x", "d", "u", "v"})
	for i := 0; i < n; i++ {
		x := rng.Float64() * 1000
		var d float64
		if rng.Float64() < outlierFrac {
			d = rng.Float64() * 2100
		} else {
			d = 2*x + 50 + rng.NormFloat64()*4
		}
		t.Append([]float64{x, d, rng.Float64() * 100, rng.NormFloat64() * 10})
	}
	return t
}

func testOptions() Options {
	opt := DefaultOptions()
	opt.SoftFD.SampleCount = 5000
	return opt
}

func randQuery(rng *rand.Rand, t *dataset.Table) index.Rect {
	return workload.RandRect(rng, t)
}

func TestBuildDetectsFDAndSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := fdTable(rng, 20000, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if len(st.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(st.Groups))
	}
	if st.DependentDims != 1 {
		t.Fatalf("dependent dims = %d, want 1", st.DependentDims)
	}
	// 10% planted outliers plus margin trimming: primary ratio must be
	// high but below 1.
	if st.PrimaryRatio < 0.80 || st.PrimaryRatio >= 1.0 {
		t.Errorf("primary ratio = %g", st.PrimaryRatio)
	}
	if st.PrimaryRows+st.OutlierRows != tab.Len() {
		t.Errorf("split loses rows: %d + %d != %d", st.PrimaryRows, st.OutlierRows, tab.Len())
	}
	// 4 dims, 1 dependent, 1 sort dim → 2 grid dims.
	if st.GridDims != 2 {
		t.Errorf("grid dims = %d, want 2", st.GridDims)
	}
	if c.Name() != "COAX" || c.Len() != tab.Len() || c.Dims() != 4 {
		t.Error("identity accessors broken")
	}
}

func TestQueryMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := fdTable(rng, 20000, 0.15)
	oracle := scan.New(tab)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		r := randQuery(rng, tab)
		got, want := index.Count(c, r), index.Count(oracle, r)
		if got != want {
			t.Fatalf("trial %d rect %v: count %d, want %d", trial, r, got, want)
		}
	}
	// Point queries on existing rows must always find them.
	for trial := 0; trial < 50; trial++ {
		p := index.Point(tab.Row(rng.Intn(tab.Len())))
		if index.Count(c, p) < 1 {
			t.Fatal("point query lost its own row")
		}
	}
}

func TestQueryDependentOnlyConstraint(t *testing.T) {
	// Queries constraining ONLY the dependent column exercise the
	// translation path end to end.
	rng := rand.New(rand.NewSource(3))
	tab := fdTable(rng, 20000, 0.1)
	oracle := scan.New(tab)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		lo := rng.Float64() * 2000
		hi := lo + rng.Float64()*300
		r := index.Full(4)
		r.Min[1], r.Max[1] = lo, hi
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("dependent-only query [%g,%g]: %d, want %d", lo, hi, got, want)
		}
	}
}

func TestTranslateTightensPredictor(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := fdTable(rng, 20000, 0.05)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) != 1 {
		t.Skip("FD not detected; translation unexercised")
	}
	pm := c.BuildStats().Groups[0].Models[0]

	// d ∈ [500, 600] should translate to x ≈ [(500−εUB−50)/2, (600+εLB−50)/2].
	r := index.Full(4)
	r.Min[pm.D], r.Max[pm.D] = 500, 600
	routed, feasible := c.Translate(r)
	if !feasible {
		t.Fatal("feasible query reported infeasible")
	}
	if math.IsInf(routed.Min[pm.X], -1) || math.IsInf(routed.Max[pm.X], 1) {
		t.Fatal("translation left the predictor unconstrained")
	}
	wantLo, _ := pm.Model.Invert(500 - pm.EpsUB)
	wantHi, _ := pm.Model.Invert(600 + pm.EpsLB)
	if math.Abs(routed.Min[pm.X]-wantLo) > 1e-9 || math.Abs(routed.Max[pm.X]-wantHi) > 1e-9 {
		t.Errorf("translated range [%g,%g], want [%g,%g]",
			routed.Min[pm.X], routed.Max[pm.X], wantLo, wantHi)
	}
	// The dependent dimension must be released for routing.
	if !math.IsInf(routed.Min[pm.D], -1) || !math.IsInf(routed.Max[pm.D], 1) {
		t.Error("dependent dimension should be unconstrained in the routed rect")
	}
}

func TestTranslateInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := fdTable(rng, 20000, 0.05)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if len(st.Groups) != 1 {
		t.Skip("FD not detected")
	}
	pm := st.Groups[0].Models[0]
	// Contradictory constraints: x forced high, d forced low. With slope 2
	// and intercept 50, x ∈ [900, 1000] predicts d ≈ [1850, 2050]; asking
	// for d ∈ [0, 10] cannot be satisfied by any inlier.
	r := index.Full(4)
	r.Min[pm.X], r.Max[pm.X] = 900, 1000
	r.Min[pm.D], r.Max[pm.D] = 0, 10
	_, feasible := c.Translate(r)
	if feasible {
		t.Error("contradictory query should be infeasible for the primary index")
	}
	// The overall query still returns exactly the scan result (outliers may
	// match).
	oracle := scan.New(tab)
	if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
		t.Errorf("infeasible-primary query: %d, want %d", got, want)
	}
}

func TestNoCorrelationFallback(t *testing.T) {
	// Independent columns: COAX degenerates to a plain grid file and must
	// still answer correctly.
	rng := rand.New(rand.NewSource(6))
	tab := dataset.NewTable([]string{"a", "b", "c"})
	for i := 0; i < 5000; i++ {
		tab.Append([]float64{rng.Float64() * 10, rng.NormFloat64(), rng.Float64()})
	}
	oracle := scan.New(tab)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if len(st.Groups) != 0 {
		t.Fatalf("unexpected groups: %+v", st.Groups)
	}
	if st.PrimaryRatio != 1.0 {
		t.Errorf("no-FD build should put everything in the primary: %g", st.PrimaryRatio)
	}
	for trial := 0; trial < 50; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestOutlierGridVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := fdTable(rng, 10000, 0.2)
	oracle := scan.New(tab)
	opt := testOptions()
	opt.OutlierKind = OutlierGrid
	c, err := Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestDisableSortDimAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := fdTable(rng, 10000, 0.1)
	oracle := scan.New(tab)
	opt := testOptions()
	opt.DisableSortDim = true
	c, err := Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if st.SortDim != -1 {
		t.Errorf("sort dim = %d, want -1", st.SortDim)
	}
	// Without a sort dim the grid has one more dimension.
	if len(st.Groups) == 1 && st.GridDims != 3 {
		t.Errorf("grid dims = %d, want 3 when sorting disabled", st.GridDims)
	}
	for trial := 0; trial < 30; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: %d, want %d", trial, got, want)
		}
	}
}

func TestExplicitSortDim(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tab := fdTable(rng, 8000, 0.1)
	opt := testOptions()
	opt.SortDim = 2
	c, err := Build(tab, opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.BuildStats().SortDim != 2 {
		t.Errorf("SortDim = %d, want 2", c.BuildStats().SortDim)
	}
	// Requesting a dependent column as sort dim must fail.
	if len(c.BuildStats().Groups) == 1 {
		bad := testOptions()
		bad.SortDim = c.BuildStats().Groups[0].Models[0].D
		if _, err := Build(tab, bad); err == nil {
			t.Error("dependent sort dim accepted")
		}
	}
	bad := testOptions()
	bad.SortDim = 99
	if _, err := Build(tab, bad); err == nil {
		t.Error("out-of-range sort dim accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	tab := dataset.NewTable([]string{"a"})
	if _, err := Build(tab, testOptions()); err == nil {
		t.Error("empty table accepted")
	}
	tab.Append([]float64{1})
	opt := testOptions()
	opt.PrimaryCellsPerDim = 0
	if _, err := Build(tab, opt); err == nil {
		t.Error("zero cells accepted")
	}
}

func TestMemoryOverheadAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tab := fdTable(rng, 10000, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	total := c.MemoryOverhead()
	parts := c.PrimaryMemoryOverhead() + c.OutlierMemoryOverhead()
	if total != parts {
		t.Errorf("total overhead %d != primary+outlier %d", total, parts)
	}
	if total <= 0 {
		t.Error("overhead must be positive")
	}
}

func TestQuerySplitPrimaryOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := fdTable(rng, 10000, 0.2)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := randQuery(rng, tab)
	var np, no, nall int
	c.QueryPrimary(r, func([]float64) { np++ })
	c.QueryOutliers(r, func([]float64) { no++ })
	c.Query(r, func([]float64) { nall++ })
	if np+no != nall {
		t.Errorf("primary %d + outliers %d != total %d", np, no, nall)
	}
}

// Property: COAX is exactly equivalent to a full scan for random tables
// with random FD structure, outlier rates, and queries.
func TestCOAXEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + rng.Intn(4000)
		outlierFrac := rng.Float64() * 0.3
		slope := rng.Float64()*8 - 4
		if math.Abs(slope) < 0.2 {
			slope = 0.5
		}
		tab := dataset.NewTable([]string{"x", "d", "u"})
		for i := 0; i < n; i++ {
			x := rng.Float64() * 500
			var d float64
			if rng.Float64() < outlierFrac {
				d = rng.Float64()*2000 - 1000
			} else {
				d = slope*x + rng.NormFloat64()*2
			}
			tab.Append([]float64{x, d, rng.Float64() * 50})
		}
		opt := testOptions()
		opt.SoftFD.SampleCount = 2000
		opt.PrimaryCellsPerDim = 1 + rng.Intn(16)
		if rng.Float64() < 0.5 {
			opt.OutlierKind = OutlierGrid
		}
		c, err := Build(tab, opt)
		if err != nil {
			return false
		}
		oracle := scan.New(tab)
		for trial := 0; trial < 8; trial++ {
			r := randQuery(rng, tab)
			if index.Count(c, r) != index.Count(oracle, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the routed rectangle never excludes an inlier row that matches
// the original query (translation only widens, never narrows).
func TestTranslationSupersetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := fdTable(rng, 20000, 0.1)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.BuildStats().Groups) == 0 {
		t.Skip("FD not detected")
	}
	for trial := 0; trial < 200; trial++ {
		r := randQuery(rng, tab)
		routed, feasible := c.Translate(r)
		for probe := 0; probe < 20; probe++ {
			row := tab.Row(rng.Intn(tab.Len()))
			if !c.rowIsInlier(row) || !r.Contains(row) {
				continue
			}
			if !feasible {
				t.Fatalf("inlier %v matches %v but translation says infeasible", row, r)
			}
			if !routed.Contains(row) {
				t.Fatalf("inlier %v matches %v but routed %v excludes it", row, r, routed)
			}
		}
	}
}

func TestBuildWithFDRejectsBadPrimary(t *testing.T) {
	// A hand-crafted FD whose margins exclude every row: all rows become
	// outliers and the primary index is nil; queries must still work.
	tab := dataset.NewTable([]string{"x", "d"})
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		tab.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	fd := softfd.Result{Groups: []softfd.Group{{
		Predictor: 0,
		Members:   []int{0, 1},
		Models: []softfd.PairModel{{
			X: 0, D: 1,
			// Slope/intercept placing the band far away from all data.
			Model: model.Linear{Slope: 1, Intercept: 10000},
			EpsLB: 0.001, EpsUB: 0.001,
		}},
	}}}
	c, err := BuildWithFD(tab, fd, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := c.BuildStats()
	if st.PrimaryRows != 0 || st.OutlierRows != 1000 {
		t.Fatalf("split = %d/%d, want 0/1000", st.PrimaryRows, st.OutlierRows)
	}
	oracle := scan.New(tab)
	for trial := 0; trial < 20; trial++ {
		r := randQuery(rng, tab)
		if got, want := index.Count(c, r), index.Count(oracle, r); got != want {
			t.Fatalf("all-outlier build: %d, want %d", got, want)
		}
	}
}

func TestFullRectReturnsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	tab := fdTable(rng, 5000, 0.15)
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := index.Count(c, index.Full(4)); got != tab.Len() {
		t.Errorf("full-range query returned %d of %d rows", got, tab.Len())
	}
}

func TestSingleRowTable(t *testing.T) {
	tab := dataset.NewTable([]string{"a", "b"})
	tab.Append([]float64{1, 2})
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if index.Count(c, index.Point([]float64{1, 2})) != 1 {
		t.Error("single row not found")
	}
	if index.Count(c, index.Point([]float64{1, 3})) != 0 {
		t.Error("phantom row found")
	}
}

func TestDuplicateRowsAllReturned(t *testing.T) {
	tab := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < 300; i++ {
		tab.Append([]float64{7, 11})
	}
	for i := 0; i < 300; i++ {
		tab.Append([]float64{float64(i), float64(i * 2)})
	}
	c, err := Build(tab, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := index.Count(c, index.Point([]float64{7, 11})); got != 300 {
		t.Errorf("duplicate rows: got %d, want 300", got)
	}
}
