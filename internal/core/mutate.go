package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/gridfile"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/lifecycle"
	"github.com/coax-index/coax/internal/obs"
	"github.com/coax-index/coax/internal/rtree"
	"github.com/coax-index/coax/internal/softfd"
)

// Mutation layer. The paper defers updates to future work (§9) but sketches
// the mechanism in §5: the learned models stay fixed (they were trained on
// a sample and remain valid while the data distribution holds), each row is
// classified against the existing margins, and it lands in — or is removed
// from — either the primary grid or the outlier index. Every mutation
// routes through the shared lifecycle.ValidateRow check and is recorded in
// the lifecycle tracker, whose drift counters tell the maintenance layer
// when the distribution has moved enough that the index is stale and due
// for a Rebuild (internal/lifecycle; the sharded engine swaps rebuilt
// epochs in online).

// ErrNotFound is returned by Delete and Update when no live row equals the
// given one.
var ErrNotFound = errors.New("core: row not found")

// initTracker creates the mutation/drift tracker with one residual
// accumulator per learned dependency; Build and the snapshot decoder both
// call it once the dependency layout is known.
func (c *COAX) initTracker() {
	c.tracker = lifecycle.NewTracker()
	for d, pm := range c.depends {
		if pm != nil {
			c.tracker.Track(d, pm.X, (pm.EpsLB+pm.EpsUB)/2)
		}
	}
}

// Insert adds one row to the index: inliers land in the primary grid's
// delta pages, model violators in the outlier index. Call Compact after a
// batch of mutations to restore fully contiguous primary cells; watch
// LifecycleStats for the drift signals that warrant a full Rebuild.
func (c *COAX) Insert(row []float64) error {
	if err := lifecycle.ValidateRow(c.dims, row); err != nil {
		return err
	}
	outlier, err := c.applyInsert(row)
	if err != nil {
		return err
	}
	c.tracker.ObserveInsert(outlier)
	c.observeResiduals(row)
	if obs.On() {
		obs.Inserts.Inc()
		if outlier {
			obs.InsertOutliers.Inc()
		}
	}
	return nil
}

// Delete removes the one live row exactly equal to row (bit-for-bit on all
// dimensions); with duplicates exactly one is removed per call. Main-page
// matches are tombstoned and filtered from every query at the visitor
// boundary until Compact or Rebuild drops them. Returns ErrNotFound when no
// live row matches.
func (c *COAX) Delete(row []float64) error {
	if err := lifecycle.ValidateRow(c.dims, row); err != nil {
		return err
	}
	if err := c.applyDelete(row); err != nil {
		return err
	}
	c.tracker.ObserveDelete()
	if obs.On() {
		obs.Deletes.Inc()
	}
	return nil
}

// Update atomically replaces one live row equal to old with new: the pair
// of partition changes happens before Update returns, and no query running
// after it can see both rows or neither (the single-index COAX is
// single-writer; the sharded engine serialises mutations per shard).
// Returns ErrNotFound (and changes nothing) when old is absent.
func (c *COAX) Update(old, new []float64) error {
	if err := lifecycle.ValidateRow(c.dims, old); err != nil {
		return err
	}
	if err := lifecycle.ValidateRow(c.dims, new); err != nil {
		return err
	}
	if err := c.applyDelete(old); err != nil {
		return err
	}
	if _, err := c.applyInsert(new); err != nil {
		// Lazy index creation failed: put the old row back so the update is
		// all-or-nothing. Re-insert can only fail the same lazy-init path,
		// and the structure it targets is the one the delete just touched,
		// which therefore exists.
		if _, rerr := c.applyInsert(old); rerr != nil {
			return fmt.Errorf("core: update lost row %v: %w", old, errors.Join(err, rerr))
		}
		return err
	}
	c.tracker.ObserveUpdate()
	c.observeResiduals(new)
	if obs.On() {
		obs.Updates.Inc()
	}
	return nil
}

// applyInsert classifies and stores one validated row, reporting whether it
// landed in the outlier partition.
func (c *COAX) applyInsert(row []float64) (outlier bool, err error) {
	if c.rowIsInlier(row) {
		if c.primary == nil {
			if err := c.initPrimary(row); err != nil {
				return false, err
			}
		} else if err := c.primary.Insert(row); err != nil {
			return false, err
		}
		extendBounds(&c.primaryBounds, row)
		c.primaryN++
		c.n++
		return false, nil
	}
	if c.outliers == nil {
		if err := c.initOutliers(row); err != nil {
			return true, err
		}
	} else {
		ins, ok := c.outliers.(inserter)
		if !ok {
			return true, fmt.Errorf("core: outlier index %T does not support inserts", c.outliers)
		}
		if err := ins.Insert(row); err != nil {
			return true, err
		}
	}
	extendBounds(&c.outlierBounds, row)
	c.outlierN++
	c.n++
	return true, nil
}

// applyDelete removes one validated row from the partition its
// classification routes it to — the same deterministic routing Insert
// used, since the models are fixed between rebuilds.
func (c *COAX) applyDelete(row []float64) error {
	if c.rowIsInlier(row) {
		if c.primary == nil || !c.primary.Delete(row) {
			return ErrNotFound
		}
		c.primaryN--
		c.n--
		return nil
	}
	del, ok := c.outliers.(deleter)
	if c.outliers == nil || !ok || !del.Delete(row) {
		return ErrNotFound
	}
	c.outlierN--
	c.n--
	return nil
}

// observeResiduals scores one inserted row against every learned model so
// LifecycleStats can report residual drift.
func (c *COAX) observeResiduals(row []float64) {
	for d, pm := range c.depends {
		if pm == nil {
			continue
		}
		c.tracker.ObserveResidual(d, math.Abs(row[d]-pm.Predict(row[pm.X])))
	}
}

// inserter is satisfied by both outlier index kinds.
type inserter interface {
	Insert(row []float64) error
}

// deleter is satisfied by both outlier index kinds.
type deleter interface {
	Delete(row []float64) bool
}

// Compact merges delta pages into main storage and drops tombstoned rows in
// the primary grid and, when the outliers live in a grid file, the outlier
// index too (R-tree outliers delete in place and need no compaction).
func (c *COAX) Compact() {
	track := obs.On()
	var start time.Time
	if track {
		start = time.Now()
	}
	if c.primary != nil {
		c.primary.Compact()
	}
	if g, ok := c.outliers.(*gridfile.GridFile); ok {
		g.Compact()
	}
	if track {
		obs.Compactions.Inc()
		obs.CompactSeconds.Observe(time.Since(start).Seconds())
	}
}

// Epoch reports how many rebuilds this index lineage has been through.
func (c *COAX) Epoch() uint64 { return c.epoch }

// LiveRows collects every live row into a fresh table — the input a Rebuild
// re-indexes. Row order is storage order, not insertion order. Column names
// carry over, so a rebuilt epoch keeps answering name-based queries.
func (c *COAX) LiveRows() *dataset.Table {
	cols := c.cols
	if len(cols) != c.dims {
		cols = make([]string, c.dims)
	}
	t := dataset.NewTable(cols)
	full := index.Full(c.dims)
	collect := func(row []float64) { t.Append(row) }
	if c.primary != nil {
		c.primary.Query(full, collect)
	}
	if c.outliers != nil {
		c.outliers.Query(full, collect)
	}
	return t
}

// minDetectRows is the smallest live set worth re-running soft-FD detection
// on; below it (or when detection fails) a Rebuild reuses the current
// models, so a rebuilt index always exists.
const minDetectRows = 64

// Rebuild constructs a fresh COAX over the live rows with the original
// build options, re-running soft-FD detection so the models, margins, and
// inlier/outlier split track the data that is actually there now. The
// receiver is not modified; the caller swaps the result in (the sharded
// engine does this RCU-style per shard). The new index starts a new
// lifecycle epoch with cleared mutation counters and a fresh staleness
// baseline.
func (c *COAX) Rebuild() (*COAX, error) {
	return c.RebuildFrom(c.LiveRows())
}

// RebuildFrom is Rebuild over a pre-collected live-row table — the sharded
// engine collects under its shard lock and builds with no locks held, so
// collection and construction must be separable.
func (c *COAX) RebuildFrom(live *dataset.Table) (*COAX, error) {
	fd := c.fd
	opt := c.opt
	if live.Len() >= minDetectRows {
		if fresh, err := softfd.Detect(live, opt.SoftFD); err == nil {
			fd = fresh
			// A forced sort dimension may have become dependent under the
			// fresh models; re-pick it from the new layout instead.
			opt.SortDim = -1
		}
	}
	next, err := BuildWithFD(live, fd, opt)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding epoch %d: %w", c.epoch+1, err)
	}
	next.epoch = c.epoch + 1
	return next, nil
}

// LifecycleStats reports the index's mutation and drift state — the health
// snapshot the staleness thresholds evaluate.
func (c *COAX) LifecycleStats() lifecycle.Stats {
	s := lifecycle.Stats{
		LiveRows:         c.n,
		PrimaryRows:      c.primaryN,
		OutlierRows:      c.outlierN,
		BaseOutlierRatio: c.baseOutlierRatio,
		Epoch:            c.epoch,
	}
	tomb := 0
	if c.primary != nil {
		tomb += c.primary.Tombstones()
	}
	if g, ok := c.outliers.(*gridfile.GridFile); ok {
		tomb += g.Tombstones()
	}
	s.Tombstones = tomb
	s.StoredRows = c.n + tomb
	if c.n > 0 {
		s.OutlierRatio = float64(c.outlierN) / float64(c.n)
	}
	if s.StoredRows > 0 {
		s.TombstoneRatio = float64(tomb) / float64(s.StoredRows)
	}
	c.tracker.Snapshot(&s)
	return s
}

// initPrimary lazily creates the primary grid when the original build saw
// only outliers. The single seed row defines degenerate boundaries; the
// grid still answers correctly because rows are re-checked against every
// query rectangle.
func (c *COAX) initPrimary(row []float64) error {
	seed := dataset.NewTable(make([]string, c.dims))
	seed.Append(row)
	p, err := gridfile.Build(seed, gridfile.Config{
		GridDims:    c.primaryGridDims(),
		SortDim:     c.sortDim,
		CellsPerDim: c.primaryCells,
		Mode:        gridfile.Quantile,
		Label:       "COAX-primary",
	})
	if err != nil {
		return fmt.Errorf("core: lazily creating primary index: %w", err)
	}
	c.primary = p
	return nil
}

// initOutliers lazily creates the outlier index on the first outlying
// insert.
func (c *COAX) initOutliers(row []float64) error {
	seed := dataset.NewTable(make([]string, c.dims))
	seed.Append(row)
	switch c.outlierKind {
	case OutlierRTree:
		rt, err := rtree.Bulk(seed, rtree.Config{MaxEntries: c.outlierRTreeCap})
		if err != nil {
			return fmt.Errorf("core: lazily creating outlier R-tree: %w", err)
		}
		c.outliers = rt
	default:
		dims := make([]int, c.dims)
		for i := range dims {
			dims[i] = i
		}
		g, err := gridfile.Build(seed, gridfile.Config{
			GridDims:    dims,
			SortDim:     -1,
			CellsPerDim: 2,
			Mode:        gridfile.Quantile,
			Label:       "COAX-outliers",
		})
		if err != nil {
			return fmt.Errorf("core: lazily creating outlier grid: %w", err)
		}
		c.outliers = g
	}
	return nil
}
