package rtree

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/binio"
	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

func codecTable(n, dims int, seed int64) *dataset.Table {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, dims)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	t := dataset.NewTable(cols)
	row := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := range row {
			row[d] = rng.Float64() * 100
		}
		t.Append(row)
	}
	return t
}

func TestCodecRoundTrip(t *testing.T) {
	tab := codecTable(3000, 3, 1)
	rt, err := Bulk(tab, Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := binio.NewWriter()
	rt.Encode(w)
	r := binio.NewReader(w.Bytes())
	got, err := Decode(r)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got.Len() != rt.Len() || got.Dims() != rt.Dims() || got.Height() != rt.Height() || got.NumNodes() != rt.NumNodes() {
		t.Fatalf("shape mismatch: len %d/%d height %d/%d nodes %d/%d",
			got.Len(), rt.Len(), got.Height(), rt.Height(), got.NumNodes(), rt.NumNodes())
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		r := index.Full(3)
		for d := 0; d < 3; d++ {
			a, b := rng.Float64()*100, rng.Float64()*100
			if a > b {
				a, b = b, a
			}
			r.Min[d], r.Max[d] = a, b
		}
		if w, g := index.Count(rt, r), index.Count(got, r); w != g {
			t.Fatalf("query %d: %d != %d", q, w, g)
		}
	}
	// The decoded tree must remain insertable (internal boxes were
	// recomputed, not trusted from the payload).
	if err := got.Insert([]float64{50, 50, 50}); err != nil {
		t.Fatalf("Insert into decoded tree: %v", err)
	}
	if got.Len() != rt.Len()+1 {
		t.Fatalf("Len after insert %d, want %d", got.Len(), rt.Len()+1)
	}
}

func TestCodecEmptyTree(t *testing.T) {
	rt, err := New(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w := binio.NewWriter()
	rt.Encode(w)
	got, err := Decode(binio.NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Len() != 0 || got.Height() != 1 {
		t.Fatalf("empty tree decoded to len %d height %d", got.Len(), got.Height())
	}
}

// TestCodecRejectsHugeCounts hand-crafts headers with absurd capacities and
// child counts: Decode must error before attempting the implied allocation.
func TestCodecRejectsHugeCounts(t *testing.T) {
	huge := binio.NewWriter()
	huge.Int(1 << 62) // MaxEntries
	huge.Int(0)       // MinEntries (defaulted)
	huge.Int(2)       // dims
	huge.Int(0)       // n
	huge.Int(2)       // height
	huge.Bool(false)  // internal root
	huge.Uint64(1 << 62)
	if _, err := Decode(binio.NewReader(huge.Bytes())); err == nil {
		t.Fatal("huge MaxEntries accepted")
	}

	manyChildren := binio.NewWriter()
	manyChildren.Int(1 << 19) // MaxEntries: passes the capacity cap
	manyChildren.Int(0)
	manyChildren.Int(2)
	manyChildren.Int(0)
	manyChildren.Int(2)
	manyChildren.Bool(false)
	manyChildren.Uint64(1 << 18) // children far beyond the remaining bytes
	if _, err := Decode(binio.NewReader(manyChildren.Bytes())); err == nil {
		t.Fatal("child count beyond payload accepted")
	}
}

func TestCodecRejectsCorruptStructure(t *testing.T) {
	tab := codecTable(200, 2, 3)
	rt, err := Bulk(tab, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*RTree){
		"row count": func(m *RTree) { m.n++ },
		"height":    func(m *RTree) { m.height++ },
		"capacity":  func(m *RTree) { m.cfg.MaxEntries = 2 },
	} {
		clone := *rt
		mutate(&clone)
		w := binio.NewWriter()
		clone.Encode(w)
		if _, err := Decode(binio.NewReader(w.Bytes())); err == nil {
			t.Errorf("%s: Decode accepted corrupt structure", name)
		}
	}
}
