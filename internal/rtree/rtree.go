// Package rtree implements the R-Tree baseline of §8.1.3: an in-memory
// R-tree over point data with Sort-Tile-Recursive (STR) bulk loading,
// Guttman quadratic-split insertion, and a tunable node capacity (the paper
// evaluates capacities from 2 to 32 and finds 8–12 best).
package rtree

import (
	"fmt"
	"math"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
)

// Config controls tree shape.
type Config struct {
	// MaxEntries is the node capacity M (leaf and internal). Must be ≥ 2.
	MaxEntries int
	// MinEntries is the underflow bound m used by the quadratic split;
	// defaults to ⌈MaxEntries/2⌉ when 0.
	MinEntries int
}

// DefaultConfig matches the paper's best-performing node size.
func DefaultConfig() Config { return Config{MaxEntries: 10} }

// entry is one slot in a node. For leaf entries min and max alias the same
// row slice (points have zero-extent boxes) and child is nil; for internal
// entries min/max are owned bounding-box arrays.
type entry struct {
	min, max []float64
	child    *node
}

type node struct {
	leaf    bool
	entries []entry
}

// RTree is the built index.
type RTree struct {
	cfg    Config
	dims   int
	n      int
	height int
	root   *node
}

var _ index.Interface = (*RTree)(nil)

// New creates an empty R-tree for rows of the given dimensionality.
func New(dims int, cfg Config) (*RTree, error) {
	if err := checkConfig(&cfg); err != nil {
		return nil, err
	}
	if dims < 1 {
		return nil, fmt.Errorf("rtree: dims must be ≥ 1, got %d", dims)
	}
	return &RTree{
		cfg:    cfg,
		dims:   dims,
		height: 1,
		root:   &node{leaf: true},
	}, nil
}

func checkConfig(cfg *Config) error {
	if cfg.MaxEntries < 2 {
		return fmt.Errorf("rtree: MaxEntries must be ≥ 2, got %d", cfg.MaxEntries)
	}
	if cfg.MinEntries == 0 {
		cfg.MinEntries = (cfg.MaxEntries + 1) / 2
	}
	if cfg.MinEntries < 1 || cfg.MinEntries > cfg.MaxEntries/2+1 {
		return fmt.Errorf("rtree: MinEntries %d invalid for MaxEntries %d", cfg.MinEntries, cfg.MaxEntries)
	}
	return nil
}

// Bulk builds an R-tree over every row of t using STR packing; this is how
// the benchmarks construct the baseline.
func Bulk(t *dataset.Table, cfg Config) (*RTree, error) {
	rt, err := New(t.Dims(), cfg)
	if err != nil {
		return nil, err
	}
	n := t.Len()
	if n == 0 {
		return rt, nil
	}
	leafEntries := make([]entry, n)
	for i := 0; i < n; i++ {
		row := t.Row(i)
		leafEntries[i] = entry{min: row, max: row}
	}
	rt.root, rt.height = strBuild(leafEntries, rt.dims, cfg.MaxEntries)
	rt.n = n
	return rt, nil
}

// Name implements index.Interface.
func (rt *RTree) Name() string { return "RTree" }

// Len implements index.Interface.
func (rt *RTree) Len() int { return rt.n }

// Dims implements index.Interface.
func (rt *RTree) Dims() int { return rt.dims }

// Height reports the number of levels (1 = a single leaf).
func (rt *RTree) Height() int { return rt.height }

// NumNodes counts every node in the tree.
func (rt *RTree) NumNodes() int { return countNodes(rt.root) }

func countNodes(nd *node) int {
	c := 1
	if !nd.leaf {
		for _, e := range nd.entries {
			c += countNodes(e.child)
		}
	}
	return c
}

// MemoryOverhead implements index.Interface. The accounting model charges
// every node a fixed header, every entry its slot, and every *internal*
// entry its owned bounding-box arrays; leaf entry boxes alias row data and
// are therefore payload, not directory.
func (rt *RTree) MemoryOverhead() int64 {
	const nodeHeader = 48 // leaf flag + slice header + padding
	const entrySlot = 56  // two slice headers + child pointer
	var walk func(nd *node) int64
	walk = func(nd *node) int64 {
		b := int64(nodeHeader + entrySlot*len(nd.entries))
		if !nd.leaf {
			for _, e := range nd.entries {
				b += int64(16 * rt.dims) // owned min+max float64 arrays
				b += walk(e.child)
			}
		}
		return b
	}
	return walk(rt.root)
}

// Query implements index.Interface: the legacy run-to-completion shim over
// Scan.
func (rt *RTree) Query(r index.Rect, visit index.Visitor) {
	rt.Scan(r, index.AsYield(visit), nil)
}

// Scan implements index.Interface with the standard recursive search; the
// recursion unwinds — pruning every unvisited subtree — as soon as yield
// returns false.
func (rt *RTree) Scan(r index.Rect, yield index.Yield, probe *index.Probe) bool {
	if r.Empty() || rt.n == 0 {
		return true
	}
	return rt.search(rt.root, r, yield, probe)
}

func (rt *RTree) search(nd *node, r index.Rect, yield index.Yield, probe *index.Probe) bool {
	if probe.Aborted() {
		return false // cancelled: stop even if no node ever matches
	}
	if probe != nil {
		probe.Pages++
	}
	if nd.leaf {
		if probe != nil {
			probe.Scanned += int64(len(nd.entries))
		}
		for i := range nd.entries {
			if r.Contains(nd.entries[i].min) {
				if probe != nil {
					probe.Matched++
				}
				if !yield(nd.entries[i].min) {
					return false
				}
			}
		}
		return true
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		if overlaps(r, e.min, e.max) {
			if !rt.search(e.child, r, yield, probe) {
				return false
			}
		}
	}
	return true
}

func overlaps(r index.Rect, min, max []float64) bool {
	for i := range r.Min {
		if r.Min[i] > max[i] || min[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// mbrOf computes the bounding box of a node's entries into fresh arrays.
func mbrOf(nd *node, dims int) (min, max []float64) {
	min = make([]float64, dims)
	max = make([]float64, dims)
	for d := 0; d < dims; d++ {
		min[d] = math.Inf(1)
		max[d] = math.Inf(-1)
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		for d := 0; d < dims; d++ {
			if e.min[d] < min[d] {
				min[d] = e.min[d]
			}
			if e.max[d] > max[d] {
				max[d] = e.max[d]
			}
		}
	}
	return min, max
}

func area(min, max []float64) float64 {
	a := 1.0
	for d := range min {
		a *= max[d] - min[d]
	}
	return a
}

// enlargement returns how much the box (min,max) must grow to absorb
// (emin,emax).
func enlargement(min, max, emin, emax []float64) float64 {
	grown := 1.0
	orig := 1.0
	for d := range min {
		lo, hi := min[d], max[d]
		orig *= hi - lo
		if emin[d] < lo {
			lo = emin[d]
		}
		if emax[d] > hi {
			hi = emax[d]
		}
		grown *= hi - lo
	}
	return grown - orig
}
