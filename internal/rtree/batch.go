package rtree

import "github.com/coax-index/coax/internal/index"

// Batch-at-a-time scanning for the R-tree. Leaf entries are scattered
// across small nodes, so unlike the grid file there is no contiguous page
// to bitmap in place; instead candidate rows are gathered into a reusable
// row-major slab and the rectangle is evaluated per column over the slab
// once it fills — the copies cost one memmove per candidate but remove the
// per-row interface call and Contains re-check, which dominate on the
// outlier path. Probe counters match the row path exactly: one page per
// node visited, every leaf entry scanned, matches counted via the bitmap.

// BatchKernel implements index.Kernel.
func (rt *RTree) BatchKernel() string { return "rtree-batch" }

var _ index.ScanBatcher = (*RTree)(nil)

// rtGather accumulates candidate leaf rows until a batch is full.
type rtGather struct {
	page []float64
	rows int
	sel  []uint64
	r    index.Rect
	dims int
}

// emit evaluates and yields the gathered batch, then resets the gather.
// It reports whether the scan should continue.
func (g *rtGather) emit(yield index.BatchYield, probe *index.Probe) bool {
	if g.rows == 0 {
		return true
	}
	b := index.Batch{
		Page: g.page,
		Dims: g.dims,
		Rows: g.rows,
		Sel:  g.sel[:index.BatchWords(g.rows)],
	}
	index.SelectRect(b.Page, g.dims, g.rows, g.r, b.Sel)
	if probe != nil {
		probe.Matched += int64(b.Selected())
		probe.Batches++
	}
	g.page = g.page[:0]
	g.rows = 0
	return yield(&b)
}

// ScanBatch implements index.ScanBatcher: it visits exactly the rows
// Scan(r, ...) yields, with identical pages/rows-scanned/matched counters,
// plus Probe.Batches. The recursion unwinds as soon as yield declines a
// batch or the probe's abort hook fires.
func (rt *RTree) ScanBatch(r index.Rect, yield index.BatchYield, probe *index.Probe) bool {
	if r.Empty() || rt.n == 0 {
		return true
	}
	g := &rtGather{
		page: make([]float64, 0, index.BatchRows*rt.dims),
		sel:  make([]uint64, index.BatchWords(index.BatchRows)),
		r:    r,
		dims: rt.dims,
	}
	if !rt.searchBatch(rt.root, r, g, yield, probe) {
		return false
	}
	return g.emit(yield, probe) // flush the final partial batch
}

func (rt *RTree) searchBatch(nd *node, r index.Rect, g *rtGather, yield index.BatchYield, probe *index.Probe) bool {
	if probe.Aborted() {
		return false // cancelled: stop even if no node ever matches
	}
	if probe != nil {
		probe.Pages++
	}
	if nd.leaf {
		if probe != nil {
			probe.Scanned += int64(len(nd.entries))
		}
		for i := range nd.entries {
			g.page = append(g.page, nd.entries[i].min...)
			g.rows++
			if g.rows == index.BatchRows {
				if !g.emit(yield, probe) {
					return false
				}
			}
		}
		return true
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		if overlaps(r, e.min, e.max) {
			if !rt.searchBatch(e.child, r, g, yield, probe) {
				return false
			}
		}
	}
	return true
}
