package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
)

func randomTable(rng *rand.Rand, n, dims int) *dataset.Table {
	cols := make([]string, dims)
	for i := range cols {
		cols[i] = string(rune('a' + i))
	}
	t := dataset.NewTable(cols)
	row := make([]float64, dims)
	for i := 0; i < n; i++ {
		for d := range row {
			row[d] = rng.Float64() * 100
		}
		t.Append(row)
	}
	return t
}

func randRect(rng *rand.Rand, dims int) index.Rect {
	r := index.Full(dims)
	for d := 0; d < dims; d++ {
		a := rng.Float64() * 100
		b := rng.Float64() * 100
		if a > b {
			a, b = b, a
		}
		r.Min[d], r.Max[d] = a, b
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(2, Config{MaxEntries: 1}); err == nil {
		t.Error("MaxEntries 1 must be rejected")
	}
	if _, err := New(0, Config{MaxEntries: 4}); err == nil {
		t.Error("zero dims must be rejected")
	}
	if _, err := New(2, Config{MaxEntries: 8, MinEntries: 7}); err == nil {
		t.Error("MinEntries > M/2+1 must be rejected")
	}
	rt, err := New(2, Config{MaxEntries: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rt.cfg.MinEntries != 5 {
		t.Errorf("defaulted MinEntries = %d, want 5", rt.cfg.MinEntries)
	}
}

func TestBulkMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, 5000, 3)
	oracle := scan.New(tab)
	rt, err := Bulk(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 5000 || rt.Dims() != 3 {
		t.Fatalf("Len=%d Dims=%d", rt.Len(), rt.Dims())
	}
	for trial := 0; trial < 50; trial++ {
		r := randRect(rng, 3)
		if got, want := index.Count(rt, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: count %d, want %d", trial, got, want)
		}
	}
	// Point queries on existing rows.
	for trial := 0; trial < 30; trial++ {
		p := index.Point(tab.Row(rng.Intn(tab.Len())))
		if index.Count(rt, p) < 1 {
			t.Fatal("point query lost its own row")
		}
	}
}

func TestBulkHeightReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := randomTable(rng, 10000, 2)
	rt, err := Bulk(tab, Config{MaxEntries: 10})
	if err != nil {
		t.Fatal(err)
	}
	// 10000 rows at fanout 10 needs height 4 (10^4); STR packs tightly.
	if rt.Height() < 3 || rt.Height() > 6 {
		t.Errorf("height = %d, want 4±2", rt.Height())
	}
	if rt.NumNodes() < 1000 {
		t.Errorf("NumNodes = %d; leaves alone should exceed 1000", rt.NumNodes())
	}
}

func TestBulkEmpty(t *testing.T) {
	tab := dataset.NewTable([]string{"x"})
	rt, err := Bulk(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 0 {
		t.Errorf("Len = %d", rt.Len())
	}
	if got := index.Count(rt, index.Full(1)); got != 0 {
		t.Errorf("empty tree returned %d rows", got)
	}
}

func TestInsertMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := randomTable(rng, 2000, 2)
	oracle := scan.New(tab)
	rt, err := New(2, Config{MaxEntries: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Len(); i++ {
		if err := rt.Insert(tab.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Len() != 2000 {
		t.Fatalf("Len = %d", rt.Len())
	}
	for trial := 0; trial < 50; trial++ {
		r := randRect(rng, 2)
		if got, want := index.Count(rt, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: count %d, want %d", trial, got, want)
		}
	}
}

func TestInsertCopiesRow(t *testing.T) {
	rt, err := New(1, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{5}
	if err := rt.Insert(row); err != nil {
		t.Fatal(err)
	}
	row[0] = 99
	if index.Count(rt, index.Point([]float64{5})) != 1 {
		t.Error("Insert must copy the row")
	}
}

func TestInsertWrongArity(t *testing.T) {
	rt, err := New(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Insert([]float64{1}); err == nil {
		t.Error("wrong arity must error")
	}
}

func TestInsertIntoBulkTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := randomTable(rng, 1000, 2)
	rt, err := Bulk(tab, Config{MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	extra := randomTable(rng, 500, 2)
	for i := 0; i < extra.Len(); i++ {
		if err := rt.Insert(extra.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Len() != 1500 {
		t.Fatalf("Len = %d", rt.Len())
	}
	// Merge both tables for the oracle.
	all := dataset.NewTable([]string{"a", "b"})
	for i := 0; i < tab.Len(); i++ {
		all.Append(tab.Row(i))
	}
	for i := 0; i < extra.Len(); i++ {
		all.Append(extra.Row(i))
	}
	oracle := scan.New(all)
	for trial := 0; trial < 30; trial++ {
		r := randRect(rng, 2)
		if got, want := index.Count(rt, r), index.Count(oracle, r); got != want {
			t.Fatalf("trial %d: count %d, want %d", trial, got, want)
		}
	}
}

func TestMemoryOverheadScalesWithCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng, 5000, 2)
	small, err := Bulk(tab, Config{MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Bulk(tab, Config{MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Lower fanout means more nodes and more directory bytes.
	if small.MemoryOverhead() <= big.MemoryOverhead() {
		t.Errorf("fanout-4 overhead %d should exceed fanout-32 overhead %d",
			small.MemoryOverhead(), big.MemoryOverhead())
	}
}

func TestName(t *testing.T) {
	rt, err := New(1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "RTree" {
		t.Errorf("Name = %q", rt.Name())
	}
}

// Property: bulk-loaded and incrementally built trees both agree with the
// oracle for arbitrary data and node capacities.
func TestRTreeEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(4)
		n := 20 + rng.Intn(400)
		tab := randomTable(rng, n, dims)
		oracle := scan.New(tab)
		capEntries := 2 + rng.Intn(14)

		bulk, err := Bulk(tab, Config{MaxEntries: capEntries})
		if err != nil {
			return false
		}
		inc, err := New(dims, Config{MaxEntries: capEntries})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if err := inc.Insert(tab.Row(i)); err != nil {
				return false
			}
		}
		for trial := 0; trial < 8; trial++ {
			r := randRect(rng, dims)
			want := index.Count(oracle, r)
			if index.Count(bulk, r) != want || index.Count(inc, r) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
