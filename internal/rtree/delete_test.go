package rtree

import (
	"math/rand"
	"testing"

	"github.com/coax-index/coax/internal/dataset"
	"github.com/coax-index/coax/internal/index"
	"github.com/coax-index/coax/internal/scan"
	"github.com/coax-index/coax/internal/workload"
)

func TestDeleteAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cols := []string{"x", "y", "z"}
	tab := dataset.NewTable(cols)
	row := make([]float64, 3)
	for i := 0; i < 800; i++ {
		for d := range row {
			row[d] = rng.NormFloat64() * 5
		}
		tab.Append(row)
	}
	rt, err := Bulk(tab, Config{MaxEntries: 6})
	if err != nil {
		t.Fatal(err)
	}

	mirror := dataset.NewTable(cols)
	deleted := map[int]bool{}
	for i := 0; i < 250; i++ {
		deleted[rng.Intn(tab.Len())] = true
	}
	for i := 0; i < tab.Len(); i++ {
		if deleted[i] {
			if !rt.Delete(tab.Row(i)) {
				t.Fatalf("delete row %d failed", i)
			}
		} else {
			mirror.Append(tab.Row(i))
		}
	}
	if rt.Len() != mirror.Len() {
		t.Fatalf("Len=%d, want %d", rt.Len(), mirror.Len())
	}
	// Absent rows are not deleted.
	if rt.Delete([]float64{1e9, 1e9, 1e9}) {
		t.Fatal("Delete invented a row")
	}

	oracle := scan.New(mirror)
	for q := 0; q < 100; q++ {
		r := workload.RandRect(rng, mirror)
		if got, want := index.Count(rt, r), index.Count(oracle, r); got != want {
			t.Fatalf("rect %d: got %d, oracle %d", q, got, want)
		}
	}

	// Inserts after deletes keep working (overflow the freed slots).
	for i := 0; i < 100; i++ {
		for d := range row {
			row[d] = rng.NormFloat64() * 5
		}
		if err := rt.Insert(row); err != nil {
			t.Fatal(err)
		}
		mirror.Append(row)
	}
	oracle = scan.New(mirror)
	for q := 0; q < 50; q++ {
		r := workload.RandRect(rng, mirror)
		if got, want := index.Count(rt, r), index.Count(oracle, r); got != want {
			t.Fatalf("post-insert rect %d: got %d, oracle %d", q, got, want)
		}
	}
}

func TestDeleteDuplicates(t *testing.T) {
	tab := dataset.NewTable([]string{"x", "y"})
	for i := 0; i < 3; i++ {
		tab.Append([]float64{7, 7})
	}
	rt, err := Bulk(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for want := 2; want >= 0; want-- {
		if !rt.Delete([]float64{7, 7}) {
			t.Fatalf("delete with %d copies left failed", want+1)
		}
		if got := index.Count(rt, index.Point([]float64{7, 7})); got != want {
			t.Fatalf("%d copies remain, want %d", got, want)
		}
	}
	if rt.Delete([]float64{7, 7}) {
		t.Fatal("deleted from an empty tree")
	}
}
