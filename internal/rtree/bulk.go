package rtree

import (
	"math"
	"sort"
)

// strBuild packs leaf entries into a complete tree using Sort-Tile-Recursive
// and returns the root together with the tree height.
func strBuild(items []entry, dims, m int) (*node, int) {
	groups := strPartition(items, 0, dims, m)
	level := make([]*node, len(groups))
	for i, g := range groups {
		level[i] = &node{leaf: true, entries: g}
	}
	height := 1
	for len(level) > 1 {
		level = packParents(level, dims, m)
		height++
	}
	return level[0], height
}

// strPartition recursively tiles items into groups of at most m entries:
// sort by the centre of dimension dim, cut into vertical slabs sized so the
// final tiles are square-ish, and recurse on the next dimension inside each
// slab.
func strPartition(items []entry, dim, dims, m int) [][]entry {
	n := len(items)
	if n == 0 {
		return nil
	}
	if n <= m {
		// Clamp capacity: node entry slices must own their tails so that a
		// later Insert cannot grow one leaf into its sibling's storage.
		return [][]entry{items[:n:n]}
	}
	if dim == dims-1 {
		// Last dimension: plain consecutive chunks of m.
		sortByCenter(items, dim)
		out := make([][]entry, 0, (n+m-1)/m)
		for i := 0; i < n; i += m {
			j := i + m
			if j > n {
				j = n
			}
			out = append(out, items[i:j:j])
		}
		return out
	}
	pages := int(math.Ceil(float64(n) / float64(m)))
	remaining := dims - dim
	slabs := int(math.Ceil(math.Pow(float64(pages), 1.0/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (n + slabs - 1) / slabs
	sortByCenter(items, dim)
	var out [][]entry
	for i := 0; i < n; i += slabSize {
		j := i + slabSize
		if j > n {
			j = n
		}
		out = append(out, strPartition(items[i:j], dim+1, dims, m)...)
	}
	return out
}

func sortByCenter(items []entry, dim int) {
	sort.Slice(items, func(a, b int) bool {
		ca := items[a].min[dim] + items[a].max[dim]
		cb := items[b].min[dim] + items[b].max[dim]
		return ca < cb
	})
}

// packParents groups one tree level's nodes into parents, reusing the STR
// tiling over the children's bounding-box centres.
func packParents(level []*node, dims, m int) []*node {
	items := make([]entry, len(level))
	for i, nd := range level {
		min, max := mbrOf(nd, dims)
		items[i] = entry{min: min, max: max, child: nd}
	}
	groups := strPartition(items, 0, dims, m)
	parents := make([]*node, len(groups))
	for i, g := range groups {
		parents[i] = &node{leaf: false, entries: g}
	}
	return parents
}
