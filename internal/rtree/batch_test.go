package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/coax-index/coax/internal/index"
)

// TestScanBatchMatchesScan drives the row path and the gather-based batch
// kernel over the same tree — bulk-loaded, then with inserts and deletes —
// and requires identical row multisets and identical probe counters.
func TestScanBatchMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 3000, 3)
	rt, err := Bulk(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string) {
		for i := 0; i < 40; i++ {
			r := randRect(rng, 3)
			if i == 0 {
				r = index.Full(3)
			}
			var rowRows, batchRows [][]float64
			var rowProbe, batchProbe index.Probe
			rt.Scan(r, func(row []float64) bool {
				rowRows = append(rowRows, append([]float64(nil), row...))
				return true
			}, &rowProbe)
			rt.ScanBatch(r, func(b *index.Batch) bool {
				return b.Each(func(row []float64) bool {
					batchRows = append(batchRows, append([]float64(nil), row...))
					return true
				})
			}, &batchProbe)
			if len(rowRows) != len(batchRows) {
				t.Fatalf("%s: %d rows batched vs %d scanned", label, len(batchRows), len(rowRows))
			}
			sortRows(rowRows)
			sortRows(batchRows)
			for j := range rowRows {
				for d := range rowRows[j] {
					if rowRows[j][d] != batchRows[j][d] {
						t.Fatalf("%s: row %d differs: %v vs %v", label, j, batchRows[j], rowRows[j])
					}
				}
			}
			if batchProbe.Pages != rowProbe.Pages || batchProbe.Scanned != rowProbe.Scanned ||
				batchProbe.Matched != rowProbe.Matched || batchProbe.Tombstones != rowProbe.Tombstones {
				t.Fatalf("%s: batch probe %+v vs row probe %+v", label, batchProbe, rowProbe)
			}
			if rowProbe.Batches != 0 {
				t.Fatalf("%s: row path counted batches", label)
			}
		}
	}
	check("bulk")

	for i := 0; i < 500; i++ {
		rt.Insert([]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100})
	}
	check("inserted")

	for i := 0; i < 900; i += 3 {
		rt.Delete(tab.Row(i))
	}
	check("deleted")
}

// TestScanBatchStops verifies batch-yield and abort-hook termination.
func TestScanBatchStops(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tab := randomTable(rng, 5000, 2)
	rt, err := Bulk(tab, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if rt.ScanBatch(index.Full(2), func(*index.Batch) bool { calls++; return false }, nil) {
		t.Fatal("stopped scan reported complete")
	}
	if calls != 1 {
		t.Fatalf("yield ran %d times after returning false", calls)
	}
	var p index.Probe
	p.Abort = func() bool { return true }
	if rt.ScanBatch(index.Full(2), func(*index.Batch) bool { return true }, &p) {
		t.Fatal("aborted scan reported complete")
	}
}

func sortRows(rows [][]float64) {
	sort.Slice(rows, func(i, j int) bool {
		for d := range rows[i] {
			if rows[i][d] != rows[j][d] {
				return rows[i][d] < rows[j][d]
			}
		}
		return false
	})
}
