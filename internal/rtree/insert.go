package rtree

import "fmt"

// Insert adds one row (copied) to the tree using Guttman's ChooseLeaf and
// quadratic split. COAX itself is a static index in the paper, but the
// baseline supports dynamic insertion so that tuning experiments can grow
// trees incrementally and so the package is usable standalone.
func (rt *RTree) Insert(row []float64) error {
	if len(row) != rt.dims {
		return fmt.Errorf("rtree: row has %d values, tree has %d dims", len(row), rt.dims)
	}
	cp := make([]float64, rt.dims)
	copy(cp, row)
	e := entry{min: cp, max: cp}

	split := rt.insertAt(rt.root, e)
	if split != nil {
		// Root overflowed: grow the tree by one level.
		oldRoot := rt.root
		lmin, lmax := mbrOf(oldRoot, rt.dims)
		rmin, rmax := mbrOf(split, rt.dims)
		rt.root = &node{leaf: false, entries: []entry{
			{min: lmin, max: lmax, child: oldRoot},
			{min: rmin, max: rmax, child: split},
		}}
		rt.height++
	}
	rt.n++
	return nil
}

// insertAt pushes e into the subtree rooted at nd; when nd overflows it
// splits and the new sibling is returned for the caller to link in.
func (rt *RTree) insertAt(nd *node, e entry) *node {
	if nd.leaf {
		nd.entries = append(nd.entries, e)
		if len(nd.entries) > rt.cfg.MaxEntries {
			return rt.quadraticSplit(nd)
		}
		return nil
	}

	best := rt.chooseSubtree(nd, e)
	child := nd.entries[best].child
	sibling := rt.insertAt(child, e)

	// Refresh the chosen entry's box to absorb the new data.
	nd.entries[best].min, nd.entries[best].max = mbrOf(child, rt.dims)
	if sibling != nil {
		smin, smax := mbrOf(sibling, rt.dims)
		nd.entries = append(nd.entries, entry{min: smin, max: smax, child: sibling})
		if len(nd.entries) > rt.cfg.MaxEntries {
			return rt.quadraticSplit(nd)
		}
	}
	return nil
}

// chooseSubtree picks the entry whose box needs the least enlargement to
// cover e, breaking ties by smallest area.
func (rt *RTree) chooseSubtree(nd *node, e entry) int {
	best := 0
	bestEnl := enlargement(nd.entries[0].min, nd.entries[0].max, e.min, e.max)
	bestArea := area(nd.entries[0].min, nd.entries[0].max)
	for i := 1; i < len(nd.entries); i++ {
		enl := enlargement(nd.entries[i].min, nd.entries[i].max, e.min, e.max)
		a := area(nd.entries[i].min, nd.entries[i].max)
		if enl < bestEnl || (enl == bestEnl && a < bestArea) {
			best, bestEnl, bestArea = i, enl, a
		}
	}
	return best
}

// quadraticSplit splits an overflowing node in place and returns the new
// sibling holding the second group.
func (rt *RTree) quadraticSplit(nd *node) *node {
	entries := nd.entries
	seedA, seedB := pickSeeds(entries, rt.dims)

	groupA := []entry{entries[seedA]}
	groupB := []entry{entries[seedB]}
	aMin, aMax := cloneBox(entries[seedA])
	bMin, bMax := cloneBox(entries[seedB])

	rest := make([]entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, entries[i])
		}
	}

	for len(rest) > 0 {
		// Underflow guard: if one group must take everything left, do so.
		if len(groupA)+len(rest) <= rt.cfg.MinEntries {
			for _, e := range rest {
				groupA = append(groupA, e)
				extend(aMin, aMax, e)
			}
			break
		}
		if len(groupB)+len(rest) <= rt.cfg.MinEntries {
			for _, e := range rest {
				groupB = append(groupB, e)
				extend(bMin, bMax, e)
			}
			break
		}

		// PickNext: the entry with the greatest preference difference.
		bestIdx, bestDiff := 0, -1.0
		var bestDA, bestDB float64
		for i, e := range rest {
			da := enlargement(aMin, aMax, e.min, e.max)
			db := enlargement(bMin, bMax, e.min, e.max)
			diff := da - db
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestIdx, bestDiff, bestDA, bestDB = i, diff, da, db
			}
		}
		e := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		if bestDA < bestDB || (bestDA == bestDB && len(groupA) < len(groupB)) {
			groupA = append(groupA, e)
			extend(aMin, aMax, e)
		} else {
			groupB = append(groupB, e)
			extend(bMin, bMax, e)
		}
	}

	nd.entries = groupA
	return &node{leaf: nd.leaf, entries: groupB}
}

// pickSeeds returns the pair of entries wasting the most area if grouped
// together (Guttman's quadratic PickSeeds).
func pickSeeds(entries []entry, dims int) (int, int) {
	sa, sb := 0, 1
	worst := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := pairWaste(entries[i], entries[j], dims)
			if waste > worst {
				worst, sa, sb = waste, i, j
			}
		}
	}
	return sa, sb
}

func pairWaste(a, b entry, dims int) float64 {
	combined := 1.0
	for d := 0; d < dims; d++ {
		lo := a.min[d]
		if b.min[d] < lo {
			lo = b.min[d]
		}
		hi := a.max[d]
		if b.max[d] > hi {
			hi = b.max[d]
		}
		combined *= hi - lo
	}
	return combined - area(a.min, a.max) - area(b.min, b.max)
}

func cloneBox(e entry) (min, max []float64) {
	min = append([]float64(nil), e.min...)
	max = append([]float64(nil), e.max...)
	return min, max
}

func extend(min, max []float64, e entry) {
	for d := range min {
		if e.min[d] < min[d] {
			min[d] = e.min[d]
		}
		if e.max[d] > max[d] {
			max[d] = e.max[d]
		}
	}
}
