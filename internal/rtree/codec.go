package rtree

import (
	"fmt"

	"github.com/coax-index/coax/internal/binio"
)

// Snapshot codec. The tree serializes pre-order: each node writes a leaf
// flag and its entries — leaves as one contiguous row payload (leaf entry
// boxes alias the row, so only the row is stored), internal nodes by
// recursing into each child. Internal bounding boxes are recomputed on
// decode rather than trusted from the payload.

// Encode appends the complete R-tree state to w.
func (rt *RTree) Encode(w *binio.Writer) {
	w.Int(rt.cfg.MaxEntries)
	w.Int(rt.cfg.MinEntries)
	w.Int(rt.dims)
	w.Int(rt.n)
	w.Int(rt.height)
	encodeNode(w, rt.root, rt.dims)
}

func encodeNode(w *binio.Writer, nd *node, dims int) {
	w.Bool(nd.leaf)
	if nd.leaf {
		rows := make([]float64, 0, len(nd.entries)*dims)
		for i := range nd.entries {
			rows = append(rows, nd.entries[i].min...)
		}
		w.Float64s(rows)
		return
	}
	w.Uint64(uint64(len(nd.entries)))
	for i := range nd.entries {
		encodeNode(w, nd.entries[i].child, dims)
	}
}

// Decode reads an R-tree written by Encode. Structural invariants — node
// fan-out, uniform leaf depth, total row count — are revalidated so corrupt
// payloads fail cleanly.
func Decode(r *binio.Reader) (*RTree, error) {
	rt := &RTree{}
	rt.cfg.MaxEntries = r.Int()
	rt.cfg.MinEntries = r.Int()
	rt.dims = r.Int()
	rt.n = r.Int()
	rt.height = r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := checkConfig(&rt.cfg); err != nil {
		return nil, err
	}
	if rt.cfg.MaxEntries > 1<<20 {
		return nil, fmt.Errorf("rtree: implausible node capacity %d", rt.cfg.MaxEntries)
	}
	if rt.dims < 1 {
		return nil, fmt.Errorf("rtree: dims %d < 1", rt.dims)
	}
	if rt.n < 0 {
		return nil, fmt.Errorf("rtree: negative row count %d", rt.n)
	}
	if rt.height < 1 || rt.height > 64 {
		return nil, fmt.Errorf("rtree: implausible height %d", rt.height)
	}
	rows := 0
	root, err := decodeNode(r, rt, rt.height, &rows)
	if err != nil {
		return nil, err
	}
	if rows != rt.n {
		return nil, fmt.Errorf("rtree: leaves hold %d rows, header says %d", rows, rt.n)
	}
	rt.root = root
	return rt, nil
}

// decodeNode reads one node at the given remaining depth (1 = must be a
// leaf, matching the uniform leaf depth of an R-tree).
func decodeNode(r *binio.Reader, rt *RTree, depth int, rows *int) (*node, error) {
	leaf := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if leaf != (depth == 1) {
		return nil, fmt.Errorf("rtree: leaf flag %v at depth-from-bottom %d", leaf, depth)
	}
	nd := &node{leaf: leaf}
	if leaf {
		payload := r.Float64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if len(payload)%rt.dims != 0 {
			return nil, fmt.Errorf("rtree: leaf payload %d not divisible by dims %d", len(payload), rt.dims)
		}
		n := len(payload) / rt.dims
		if n > rt.cfg.MaxEntries {
			return nil, fmt.Errorf("rtree: leaf holds %d entries, capacity %d", n, rt.cfg.MaxEntries)
		}
		nd.entries = make([]entry, n)
		for i := 0; i < n; i++ {
			row := payload[i*rt.dims : (i+1)*rt.dims : (i+1)*rt.dims]
			nd.entries[i] = entry{min: row, max: row}
		}
		*rows += n
		return nd, nil
	}
	nChildren := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nChildren < 1 || nChildren > uint64(rt.cfg.MaxEntries) {
		return nil, fmt.Errorf("rtree: internal node has %d children, capacity %d", nChildren, rt.cfg.MaxEntries)
	}
	// Every child costs at least 9 bytes (leaf flag + a length prefix), so
	// a declared count beyond that is corrupt — checked before allocating.
	if nChildren > uint64(r.Remaining()/9) {
		return nil, fmt.Errorf("rtree: %d children exceed remaining payload", nChildren)
	}
	nd.entries = make([]entry, nChildren)
	for i := range nd.entries {
		child, err := decodeNode(r, rt, depth-1, rows)
		if err != nil {
			return nil, err
		}
		min, max := mbrOf(child, rt.dims)
		nd.entries[i] = entry{min: min, max: max, child: child}
	}
	return nd, nil
}
