package rtree

import "github.com/coax-index/coax/internal/lifecycle"

// Delete removes one leaf entry whose point equals row exactly (all
// dimensions compared bit-for-bit) and reports whether one was found. The
// entry is removed from its leaf in place; ancestor bounding boxes are left
// unshrunk, which keeps every query correct (boxes stay conservative) at
// the cost of slightly looser pruning until the tree is rebuilt — the
// outlier set is small by the paper's memory rule, so COAX rebuilds it
// rather than maintaining R-tree condensation.
func (rt *RTree) Delete(row []float64) bool {
	if len(row) != rt.dims || rt.n == 0 {
		return false
	}
	if rt.deleteAt(rt.root, row) {
		rt.n--
		return true
	}
	return false
}

func (rt *RTree) deleteAt(nd *node, row []float64) bool {
	if nd.leaf {
		for i := range nd.entries {
			if lifecycle.RowsEqual(nd.entries[i].min, row) {
				nd.entries = append(nd.entries[:i], nd.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		if boxContains(e.min, e.max, row) && rt.deleteAt(e.child, row) {
			return true
		}
	}
	return false
}

func boxContains(min, max, p []float64) bool {
	for i := range p {
		if p[i] < min[i] || p[i] > max[i] {
			return false
		}
	}
	return true
}
