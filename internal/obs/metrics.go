package obs

import (
	"expvar"
	"sync"
)

// The repository's metric families, one var block per instrumented plane.
// Everything lives in the Default registry; families that split by constant
// label (partition, phase) register one series per value so the hot path
// never formats labels. Ordering inside a block is ordering on the
// /metrics page.

// Query plane — updated by internal/shard (fan-out and legacy batch paths)
// and by coax.Query.Run for single-index and generic execution. Queries are
// counted exactly once, at the layer that owns the whole query: shard.Exec,
// shard.BatchQuery, or coax.Run — never in core, which shards invoke once
// per probed shard.
var (
	Queries        = NewCounter("coax_queries_total", "Queries executed (all paths: streaming, batch, generic).")
	QuerySeconds   = NewHistogram("coax_query_seconds", "End-to-end query latency in seconds.", 1e-6, 10)
	BatchSeconds   = NewHistogram("coax_batch_seconds", "End-to-end batch latency in seconds (one observation per BatchQuery call).", 1e-6, 10)
	QueryRows      = NewCounter("coax_query_rows_total", "Rows delivered to query callers.")
	EarlyStops     = NewCounter("coax_query_early_stops_total", "Queries stopped early by a met limit or a declining visitor.")
	QueryCancelled = NewCounter("coax_query_cancelled_total", "Queries stopped by context cancellation.")

	ShardScanSeconds = NewHistogram("coax_shard_scan_seconds", "Per-shard probe latency in seconds.", 1e-7, 10)
	ShardsProbed     = NewCounter("coax_shards_probed_total", "Shard probes issued by fan-outs.")
	ShardsPruned     = NewCounter("coax_shards_pruned_total", "Shards skipped by fan-out range pruning.")

	ScanPagesPrimary   = NewCounter("coax_scan_pages_total", "Index pages touched by scans.", Label{"partition", "primary"})
	ScanPagesOutlier   = NewCounter("coax_scan_pages_total", "Index pages touched by scans.", Label{"partition", "outlier"})
	ScanRowsPrimary    = NewCounter("coax_scan_rows_total", "Rows examined by scans (before residual filtering).", Label{"partition", "primary"})
	ScanRowsOutlier    = NewCounter("coax_scan_rows_total", "Rows examined by scans (before residual filtering).", Label{"partition", "outlier"})
	ScanTombstones     = NewCounter("coax_scan_tombstones_total", "Tombstoned rows skipped by scans.")
	Translations       = NewCounter("coax_translations_total", "Soft-FD constraint translations performed.")
	TranslationsInfeas = NewCounter("coax_translations_infeasible_total", "Translations yielding an empty predictor interval (query answered from the outlier partition alone).")
)

// Batch-kernel plane — updated by the layers that own whole queries when
// an execution ran the vectorized scan kernels (core.ObserveProbe folds
// Probe.Batches; the aggregation paths count dispatches and selected
// rows). One dispatch series is pre-registered per kernel name so the hot
// path never formats labels.
var (
	AggQueries        = NewCounter("coax_agg_queries_total", "Aggregation queries executed through the pushdown path.")
	ScanBatches       = NewCounter("coax_scan_batches_total", "Selection-bitmap batches processed by vectorized scan kernels.")
	BatchRowsSelected = NewCounter("coax_scan_batch_rows_selected_total", "Rows selected by batch kernels' bitmaps (popcount over selection words).")

	KernelGridBatch     = NewCounter("coax_kernel_dispatch_total", "Scan-kernel dispatches by kernel name.", Label{"kernel", "grid-batch"})
	KernelRTreeBatch    = NewCounter("coax_kernel_dispatch_total", "Scan-kernel dispatches by kernel name.", Label{"kernel", "rtree-batch"})
	KernelFullScanBatch = NewCounter("coax_kernel_dispatch_total", "Scan-kernel dispatches by kernel name.", Label{"kernel", "fullscan-batch"})
	KernelRowFallback   = NewCounter("coax_kernel_dispatch_total", "Scan-kernel dispatches by kernel name.", Label{"kernel", "row-fallback"})
	KernelOtherBatch    = NewCounter("coax_kernel_dispatch_total", "Scan-kernel dispatches by kernel name.", Label{"kernel", "batch"})
)

// KernelDispatch returns the dispatch counter for a kernel name; unknown
// batch kernels share the generic "batch" series.
func KernelDispatch(name string) *Counter {
	switch name {
	case "grid-batch":
		return KernelGridBatch
	case "rtree-batch":
		return KernelRTreeBatch
	case "fullscan-batch":
		return KernelFullScanBatch
	case "row-fallback":
		return KernelRowFallback
	}
	return KernelOtherBatch
}

// Mutation plane — updated by internal/core on successful mutations (the
// serving layer counts rejected mutations separately, so validation
// failures are not double-counted here).
var (
	Inserts        = NewCounter("coax_inserts_total", "Rows inserted (engine-level: includes delta-log replay during rebuilds; subtract coax_rebuild_replay_ops for the caller-facing rate).")
	Deletes        = NewCounter("coax_deletes_total", "Rows deleted (engine-level: includes delta-log replay during rebuilds).")
	Updates        = NewCounter("coax_updates_total", "Rows updated.")
	InsertOutliers = NewCounter("coax_insert_outliers_total", "Inserted rows placed in the outlier partition (model miss).")
	Compactions    = NewCounter("coax_compactions_total", "In-place compactions (delta merge + tombstone drop).")
	CompactSeconds = NewHistogram("coax_compact_seconds", "In-place compaction latency in seconds.", 1e-6, 100)
)

// Lifecycle plane — updated by internal/shard's epoch-swap rebuild and by
// the lifecycle compactor's sweeps.
var (
	Rebuilds         = NewCounter("coax_rebuilds_total", "Online epoch-swap shard rebuilds completed.")
	RebuildFailures  = NewCounter("coax_rebuild_failures_total", "Shard rebuilds that failed and kept the old epoch serving.")
	RebuildSeconds   = NewHistogram("coax_rebuild_seconds", "Epoch-swap rebuild duration in seconds (collect + build + replay).", 1e-3, 1000)
	RebuildReplayOps = NewHistogram("coax_rebuild_replay_ops", "Delta-log operations replayed into the new epoch at swap time.", 1, 1e7)
	CompactorSweeps  = NewCounter("coax_compactor_sweeps_total", "Background compactor sweeps completed.")
	CompactorLast    = NewGauge("coax_compactor_last_sweep_timestamp_seconds", "Unix time of the last completed compactor sweep.")
)

// Build plane — updated by the coax.Builder pipeline.
var (
	Builds           = NewCounter("coax_builds_total", "Index builds completed.")
	BuildRows        = NewCounter("coax_build_rows_total", "Rows ingested by index builds.")
	BuildSeconds     = NewHistogram("coax_build_seconds", "End-to-end build duration in seconds.", 1e-3, 10000)
	BuildPhaseSample = NewHistogram("coax_build_phase_seconds", "Per-phase build duration in seconds.", 1e-4, 10000, Label{"phase", "sample"})
	BuildPhaseDetect = NewHistogram("coax_build_phase_seconds", "Per-phase build duration in seconds.", 1e-4, 10000, Label{"phase", "detect"})
	BuildPhasePlace  = NewHistogram("coax_build_phase_seconds", "Per-phase build duration in seconds.", 1e-4, 10000, Label{"phase", "place"})
	BuildPhaseFinish = NewHistogram("coax_build_phase_seconds", "Per-phase build duration in seconds.", 1e-4, 10000, Label{"phase", "finish"})
	BuildReservoir   = NewGauge("coax_build_reservoir_fill_ratio", "Fraction of the sampling reservoir filled by the last build's sample phase.")
	BuildPeakHeap    = NewGauge("coax_build_peak_heap_bytes", "Peak heap (runtime.MemStats.HeapAlloc) sampled during the last build's place phase.")
)

// BuildPhase returns the per-phase build histogram for a Builder phase
// name, or nil for an unknown phase.
func BuildPhase(phase string) *Histogram {
	switch phase {
	case "sample":
		return BuildPhaseSample
	case "detect":
		return BuildPhaseDetect
	case "place":
		return BuildPhasePlace
	case "finish":
		return BuildPhaseFinish
	}
	return nil
}

// Cluster plane — updated by internal/wire (frame accounting on every
// connection) and internal/cluster (router scatter-gather, hedging,
// failover, breaker state, node request serving).
var (
	WireBytesSent  = NewCounter("coax_wire_bytes_sent_total", "Bytes written to cluster wire-protocol connections (including framing).")
	WireBytesRecv  = NewCounter("coax_wire_bytes_recv_total", "Bytes read from cluster wire-protocol connections (including framing).")
	WireFramesSent = NewCounter("coax_wire_frames_sent_total", "Frames written to cluster wire-protocol connections.")
	WireFramesRecv = NewCounter("coax_wire_frames_recv_total", "Frames read from cluster wire-protocol connections.")

	ClusterRPCs        = NewCounter("coax_cluster_rpcs_total", "Node RPCs issued by the router (queries, aggregates, mutations, stats).")
	ClusterRPCErrors   = NewCounter("coax_cluster_rpc_errors_total", "Node RPCs that failed with a transport or protocol error.")
	ClusterRPCSeconds  = NewHistogram("coax_cluster_rpc_seconds", "Per-node RPC latency in seconds, as seen by the router.", 1e-6, 100)
	ClusterHedges      = NewCounter("coax_cluster_hedged_reads_total", "Hedged replica reads launched after the hedge delay elapsed.")
	ClusterHedgeWins   = NewCounter("coax_cluster_hedge_wins_total", "Shards whose first completed scan came from a hedged replica.")
	ClusterFailovers   = NewCounter("coax_cluster_failovers_total", "Shards re-fetched from another replica after a node failure.")
	ClusterBreakerOpen = NewCounter("coax_cluster_breaker_opens_total", "Per-node circuit breaker transitions into the open state.")

	NodeRequests  = NewCounter("coax_node_requests_total", "Requests served by this process's cluster node listener.")
	NodeShed      = NewCounter("coax_node_shed_total", "Node requests rejected with an overload error.")
	NodeCancelled = NewCounter("coax_node_cancelled_total", "Node requests stopped early by a client cancel frame or dropped connection.")
)

var publishOnce sync.Once

// PublishExpvar publishes the Default registry under the expvar key
// "coax". Safe to call more than once; the expvar variable re-snapshots on
// every read.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("coax", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
