package obs

import (
	"sync"
	"time"
)

// Trace is a lightweight per-query trace: instrumented layers append named
// spans (one per shard probe, typically) as the query executes, and the
// caller reads them back once the query finishes — EXPLAIN renders them as
// a per-shard breakdown. A Trace is opt-in: query paths only touch it when
// the caller attached one to the index.Spec, so the default path pays a
// single nil check.
type Trace struct {
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// Span is one timed unit of work inside a query.
type Span struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Pages   int64         `json:"pages"`
	Rows    int64         `json:"rows"`
}

// NewTrace starts a trace clocked from now.
func NewTrace() *Trace {
	return &Trace{start: time.Now()}
}

// AddSpan records one completed unit of work. Safe for concurrent use —
// shard workers append from their own goroutines.
func (t *Trace) AddSpan(name string, elapsed time.Duration, pages, rows int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Elapsed: elapsed, Pages: pages, Rows: rows})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in arrival order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Elapsed is the time since the trace started.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}
