package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Idempotent registration returns the same series.
	if again := r.Counter("t_counter", "help"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	if again := r.Counter("t_counter", "help", Label{"k", "v"}); again == c {
		t.Fatal("different labels must be a different series")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("t_gauge", "help")
	g.Set(1.5)
	g.Add(1.0)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value = %g, want 2.5", got)
	}
	gf := r.GaugeFunc("t_gauge_fn", "help", func() float64 { return 7 })
	if got := gf.Value(); got != 7 {
		t.Fatalf("GaugeFunc Value = %g, want 7", got)
	}
	// Re-registering a GaugeFunc replaces the callback.
	r.GaugeFunc("t_gauge_fn", "help", func() float64 { return 9 })
	if got := gf.Value(); got != 9 {
		t.Fatalf("GaugeFunc after replace = %g, want 9", got)
	}
}

func TestLogLinearBounds(t *testing.T) {
	b := LogLinearBounds(1e-6, 10)
	if len(b) == 0 {
		t.Fatal("no bounds")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending: %v", b)
		}
	}
	if b[0] > 1e-6 {
		t.Fatalf("first bound %g does not cover min 1e-6", b[0])
	}
	if b[len(b)-1] < 10 {
		t.Fatalf("last bound %g does not cover max 10", b[len(b)-1])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "help", 1, 1000)
	// Uniform 1..1000: p50 ≈ 500, p99 ≈ 990. Log-linear buckets bound the
	// relative error by the bucket width, so allow a loose band.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if want := 500500.0; math.Abs(s.Sum-want) > 1e-6 {
		t.Fatalf("Sum = %g, want %g", s.Sum, want)
	}
	if s.P50 < 300 || s.P50 > 700 {
		t.Fatalf("P50 = %g, want ~500", s.P50)
	}
	if s.P99 < 800 || s.P99 > 1100 {
		t.Fatalf("P99 = %g, want ~990", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

func TestHistogramOverflow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist_over", "help", 1, 10)
	h.Observe(1e9) // far past the last bound: lands in the overflow bucket
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("Count = %d, want 1", s.Count)
	}
	var b strings.Builder
	h.writeSamples(&b)
	out := b.String()
	if !strings.Contains(out, `le="+Inf"`+"} 1") && !strings.Contains(out, `le="+Inf"} 1`) {
		t.Fatalf("overflow observation missing from +Inf bucket:\n%s", out)
	}
}

// TestConcurrentHammer updates counters, gauges, and a histogram from many
// goroutines while snapshots run concurrently, then checks the exact final
// totals. Run under -race this is the data-race test the issue asks for.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_hammer_counter", "help")
	g := r.Gauge("t_hammer_gauge", "help")
	h := r.Histogram("t_hammer_hist", "help", 1e-6, 10)

	const goroutines = 16
	const ops = 5000

	var wg sync.WaitGroup
	stopSnap := make(chan struct{})
	// Concurrent snapshotters: read while writers write.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopSnap:
					return
				default:
					_ = h.Snapshot()
					_ = c.Value()
					_ = r.Snapshot()
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for j := 0; j < ops; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%1000) * 1e-5)
			}
		}(i)
	}
	writers.Wait()
	close(stopSnap)
	wg.Wait()

	if got := c.Value(); got != goroutines*ops {
		t.Fatalf("counter = %d, want %d", got, goroutines*ops)
	}
	if got := g.Value(); got != goroutines*ops {
		t.Fatalf("gauge = %g, want %d", got, goroutines*ops)
	}
	if got := h.Snapshot().Count; got != goroutines*ops {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*ops)
	}
}

// TestPrometheusFormat checks the exposition-format invariants: HELP/TYPE
// per family (once, even with multiple labelled series), cumulative
// monotone histogram buckets, +Inf bucket equal to _count.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_fmt_counter", "counter help")
	c.Add(3)
	r.Counter("t_fmt_labelled", "labelled", Label{"partition", "primary"}).Add(1)
	r.Counter("t_fmt_labelled", "labelled", Label{"partition", "outlier"}).Add(2)
	g := r.Gauge("t_fmt_gauge", "gauge help")
	g.Set(0.25)
	h := r.Histogram("t_fmt_hist", "hist help", 1, 100)
	for _, v := range []float64{0.5, 3, 42, 9000} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP t_fmt_counter counter help\n",
		"# TYPE t_fmt_counter counter\n",
		"t_fmt_counter 3\n",
		"# TYPE t_fmt_labelled counter\n",
		`t_fmt_labelled{partition="primary"} 1` + "\n",
		`t_fmt_labelled{partition="outlier"} 2` + "\n",
		"# TYPE t_fmt_gauge gauge\n",
		"t_fmt_gauge 0.25\n",
		"# TYPE t_fmt_hist histogram\n",
		"t_fmt_hist_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE t_fmt_labelled counter\n"); n != 1 {
		t.Errorf("TYPE header for labelled family appears %d times, want 1", n)
	}

	// Histogram buckets must be cumulative and monotone, with +Inf == count.
	var last int64 = -1
	var inf int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "t_fmt_hist_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		last = v
		if strings.Contains(line, `le="+Inf"`) {
			inf = v
		}
	}
	if inf != 4 {
		t.Fatalf("+Inf bucket = %d, want 4", inf)
	}
}

func TestEnableSwitch(t *testing.T) {
	if !On() {
		t.Fatal("obs should be enabled by default")
	}
	SetEnabled(false)
	if On() {
		t.Fatal("SetEnabled(false) did not disable")
	}
	SetEnabled(true)
	if !On() {
		t.Fatal("SetEnabled(true) did not re-enable")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_kind", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("t_kind", "help")
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.AddSpan(fmt.Sprintf("shard-%02d", i), 0, int64(i), int64(i*2))
		}(i)
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != 8 {
		t.Fatalf("got %d spans, want 8", len(spans))
	}
	// nil traces are inert.
	var nilTrace *Trace
	nilTrace.AddSpan("x", 0, 0, 0)
	if nilTrace.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
}
